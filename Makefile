# Flood — learned multi-dimensional index (reproduction of "Learning
# Multi-Dimensional Indexes", SIGMOD 2020).

GO ?= go

.PHONY: all build test vet bench bench-full clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# bench runs the scan-kernel, build, and parallel-execution benchmarks that
# gate perf PRs and records them in BENCH_scan.json so the trajectory is
# diffable in git.
bench:
	$(GO) test ./internal/core -run '^$$' \
		-bench 'Residual|WideRect|SteadyState|Build1M|Build200k|Ablation|Parallel|Batch' \
		-benchmem -benchtime=1s | tee /tmp/bench_scan.txt
	$(GO) run ./cmd/benchjson < /tmp/bench_scan.txt > BENCH_scan.json

# bench-full additionally covers the colstore micro-benchmarks.
bench-full: bench
	$(GO) test ./internal/colstore -run '^$$' -bench . -benchmem -benchtime=1s

clean:
	rm -f /tmp/bench_scan.txt
