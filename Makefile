# Flood — learned multi-dimensional index (reproduction of "Learning
# Multi-Dimensional Indexes", SIGMOD 2020).

GO ?= go

.PHONY: all build test vet docs bench bench-serve bench-full fuzz-smoke clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# docs gates the documentation: vet plus a lint that fails on undocumented
# exported identifiers in the public API surface (root package, the SQL and
# data-generation packages, and the internal packages the architecture docs
# walk through). CI runs this on every push.
docs: vet
	$(GO) run ./cmd/doclint . ./floodsql ./datagen \
		./internal/core ./internal/query ./internal/colstore ./internal/encode \
		./internal/wal ./internal/faultfs ./internal/modeltest \
		./internal/server ./internal/loadgen ./internal/shard

# bench runs the scan-kernel, build, parallel-execution, row-retrieval, and
# context/limit benchmarks that gate perf PRs and records them in
# BENCH_scan.json so the trajectory is diffable in git. SelectLimit10From1M
# proves the LIMIT pushdown short-circuits (compare rows scanned against
# SelectRows1M); Execute1M vs ExecuteContext1M is the context-plumbing
# overhead-parity pair.
bench:
	$(GO) test ./internal/core -run '^$$' \
		-bench 'Residual|WideRect|SteadyState|Build1M|Build200k|Ablation|Parallel|Batch|DeleteHeavy' \
		-benchmem -benchtime=1s | tee /tmp/bench_scan.txt
	$(GO) test . -run '^$$' -bench '^BenchmarkSelect|^BenchmarkExecute|^BenchmarkSaveLoad|^BenchmarkDictEq|^BenchmarkSharded' \
		-benchmem -benchtime=1s | tee -a /tmp/bench_scan.txt
	$(GO) test ./internal/wal -run '^$$' -bench 'WALAppend' \
		-benchmem -benchtime=1s | tee -a /tmp/bench_scan.txt
	$(GO) run ./cmd/benchjson < /tmp/bench_scan.txt > BENCH_scan.json

# bench-serve records serving-tier latency under load: floodload starts an
# in-process floodserver over a 1M-row sales dataset and drives a fixed-QPS
# zipfian open-loop run, writing coordinated-omission-safe p50/p99 latency,
# throughput, shed rate, cache hit rate, and the server-side batching stats
# to BENCH_serve.json (interpreted in docs/BENCHMARKS.md). -compare-shards 4
# repeats the identical run against a 4-shard store and embeds it as the
# document's "sharded" variant, with per-shard routing counts and the
# observed shard skew. To merge with the microbenchmark snapshot into one
# document, pass it to benchjson:
# `go run ./cmd/benchjson -serve BENCH_serve.json < /tmp/bench_scan.txt`.
bench-serve:
	$(GO) run ./cmd/floodload -inprocess 1000000 -qps 2000 -duration 30s \
		-dist zipfian -server-batch-window 2ms -compare-shards 4 \
		-out BENCH_serve.json

# fuzz-smoke gives each fuzz target a short coverage-guided run (also a CI
# job). Minimization is capped so single-CPU runners keep mutating instead
# of shrinking corpus entries for 60s each.
fuzz-smoke:
	$(GO) test . -run '^$$' -fuzz '^FuzzWireDecode$$' \
		-fuzztime 30s -fuzzminimizetime 10x
	$(GO) test ./floodsql -run '^$$' -fuzz '^FuzzFloodSQLParse$$' \
		-fuzztime 30s -fuzzminimizetime 10x

# bench-full additionally covers the colstore micro-benchmarks.
bench-full: bench
	$(GO) test ./internal/colstore -run '^$$' -bench . -benchmem -benchtime=1s

clean:
	rm -f /tmp/bench_scan.txt
