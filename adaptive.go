package flood

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flood/internal/colstore"
	"flood/internal/core"
	"flood/internal/query"
	"flood/internal/wal"
	"flood/internal/workload"
)

// AdaptiveConfig tunes an AdaptiveIndex. The zero value (or nil) picks
// defaults suitable for analytical serving; every threshold can be tightened
// for tests or latency-sensitive deployments.
type AdaptiveConfig struct {
	// WindowSize is the drift monitor's sliding window in queries
	// (default 64). See Monitor.
	WindowSize int
	// DriftFactor triggers a relearn when the window's average query time
	// exceeds this multiple of the reference cost (default 3).
	DriftFactor float64
	// SampleSize bounds the reservoir sample of live queries that a
	// relearn trains on (default 512).
	SampleSize int
	// MinRelearnQueries is the minimum number of sampled queries before a
	// drift signal may start a relearn (default 32). Forced relearns
	// require only one.
	MinRelearnQueries int
	// MergeFraction schedules automatic delta merges: once the pending
	// insert log exceeds this fraction of the base row count, a background
	// merge folds it into the base layout. 0 picks the default (0.125);
	// negative disables auto-merging.
	MergeFraction float64
	// Build supplies the options used when relearning a layout. When its
	// CostModel is nil, the current index's model is reused, so the
	// expensive calibration step never runs on the serving path.
	Build *Options
	// Seed fixes the reservoir's sampling sequence (and, combined with
	// Build.Seed, makes relearns reproducible).
	Seed int64
}

func (c *AdaptiveConfig) withDefaults() AdaptiveConfig {
	out := AdaptiveConfig{}
	if c != nil {
		out = *c
	}
	if out.WindowSize <= 0 {
		out.WindowSize = 64
	}
	if out.DriftFactor <= 1 {
		out.DriftFactor = 3
	}
	if out.SampleSize <= 0 {
		out.SampleSize = 512
	}
	if out.MinRelearnQueries <= 0 {
		out.MinRelearnQueries = 32
	}
	if out.MergeFraction == 0 {
		out.MergeFraction = 0.125
	}
	return out
}

// AdaptiveStats is a point-in-time view of an AdaptiveIndex's lifecycle.
type AdaptiveStats struct {
	// Queries is the total number of queries served (batch queries count
	// individually).
	Queries int64
	// BaseRows and PendingRows split the stored data into the learned base
	// index and the unmerged insert log.
	BaseRows    int
	PendingRows int
	// SampledQueries is the current size of the workload reservoir.
	SampledQueries int
	// Relearns and Merges count completed background rebuilds by kind.
	Relearns int64
	Merges   int64
	// Rebuilding reports whether a background rebuild is in flight.
	Rebuilding bool
	// LastSwap is the wall time of the most recent index swap (zero before
	// the first).
	LastSwap time.Time
	// LastError is the most recent background rebuild failure, if any.
	LastError error
	// Reference and WindowAverage expose the drift monitor's state in
	// nanoseconds per query (see Monitor).
	Reference     float64
	WindowAverage float64
}

// rebuildKind distinguishes the two background rebuild flavors: a relearn
// searches for a new layout against the sampled workload, a merge keeps the
// layout and folds the insert log into the base.
type rebuildKind int

const (
	rebuildRelearn rebuildKind = iota
	rebuildMerge
)

// adaptiveEpoch is one immutable serving generation: a built index, the
// append-only insert log layered on top of it, and the drift monitor born
// with it. Swapping generations is a single atomic pointer store, so readers
// never take a lock to find the current index.
type adaptiveEpoch struct {
	flood *Flood
	log   *sideLog
	mon   *Monitor
}

// AdaptiveIndex is a concurrent serving facade that closes the relearn loop
// of §8 ("Shifting workloads"): it serves queries and inserts continuously,
// samples the live workload into a reservoir, watches for drift with a
// Monitor, and — when the layout has gone stale or the insert log has grown
// past its merge threshold — rebuilds in the background and publishes the
// fresh index with an atomic pointer swap. Queries are never blocked: the
// old generation keeps serving until the instant the new one is visible.
//
// Concurrency contract: Execute, ExecuteBatch, Insert, Stats, and the
// trigger methods may all be called from any number of goroutines. The hot
// read path takes no locks — it loads the current generation with one atomic
// pointer read and scans the insert log through an atomically published row
// count. At most one background rebuild runs at a time; concurrent triggers
// (drift signals, merge thresholds, forced calls) coalesce into it.
//
//	idx, _ := flood.Build(tbl, train, nil)
//	a := flood.NewAdaptiveIndex(idx, nil)
//	defer a.Close()
//	// any number of goroutines:
//	stats := a.Execute(q, flood.NewCount())
//	_ = a.Insert(row)
type AdaptiveIndex struct {
	cfg    AdaptiveConfig
	schema *Schema // inherited from the wrapped index at construction
	epoch  atomic.Pointer[adaptiveEpoch]
	sample *workload.Reservoir

	// mu serializes writers: Insert appends under it, and a finishing
	// rebuild holds it across the swap so the insert-log tail it carries
	// forward is exact. Readers never touch it.
	mu sync.Mutex

	// walLog, when set, receives a record for every insert before the row
	// is published; guarded by mu (a durable checkpoint swaps it while
	// quiescing writers). The fsync wait happens outside mu, so appends
	// stay cheap and concurrent inserts group-commit.
	walLog *wal.Log

	// Deferred deletions, guarded by mu. A background rebuild compacts a
	// captured image of base+log; a delete landing after that capture
	// affects rows the fresh index will resurrect unless re-applied. While
	// deferring is set, every delete of a captured row (base, or log row
	// below deferFrozen) also records its value tuple here; the swap
	// re-applies the tuples to the fresh epoch before publishing it, so no
	// reader ever observes a deleted row coming back.
	deferring   bool
	deferFrozen int64
	deferred    [][]int64

	// rebuildMu guards the single-rebuild-in-flight state. It is taken
	// only when a trigger fires or a waiter blocks, never on the query
	// hot path.
	rebuildMu     sync.Mutex
	rebuildActive bool
	rebuildDone   chan struct{}
	closed        bool
	lastErr       error

	queries  atomic.Int64
	relearns atomic.Int64
	merges   atomic.Int64
	lastSwap atomic.Int64 // UnixNano; 0 = never swapped
	epochGen atomic.Int64 // completed swaps; strictly monotonic

	// testHookBuilt, when set, runs after a background build finishes but
	// before the swap — tests use it to hold the rebuilding state open.
	testHookBuilt func()
}

// NewAdaptiveIndex wraps a built index in the adaptive serving facade.
// The index takes ownership of serving: run queries and inserts through it
// rather than through base directly. Call Close to stop background work.
func NewAdaptiveIndex(base *Flood, cfg *AdaptiveConfig) *AdaptiveIndex {
	c := cfg.withDefaults()
	a := &AdaptiveIndex{
		cfg:    c,
		schema: base.schema,
		sample: workload.NewReservoir(c.SampleSize, c.Seed),
	}
	a.epoch.Store(a.newEpoch(base))
	return a
}

func (a *AdaptiveIndex) newEpoch(f *Flood) *adaptiveEpoch {
	return &adaptiveEpoch{
		flood: f,
		log:   newSideLog(f.Table().Names()),
		mon:   NewMonitor(f, a.cfg.WindowSize, a.cfg.DriftFactor),
	}
}

// Execute serves one query against the current generation — learned base
// plus insert log — records it in the workload sample and drift monitor, and
// starts a background relearn if drift is detected. Safe for unlimited
// concurrency; never blocks on rebuilds.
func (a *AdaptiveIndex) Execute(q Query, agg Aggregator) Stats {
	ep := a.epoch.Load()
	st := executeEpoch(ep, q, agg)
	a.observe(ep, q, st)
	return st
}

// executeEpoch runs q against one generation (base index plus insert log)
// with no lifecycle bookkeeping.
func executeEpoch(ep *adaptiveEpoch, q Query, agg Aggregator) Stats {
	st := ep.flood.Execute(q, agg)
	if n := ep.log.rows(); n > 0 {
		st.Add(ep.log.scan(q, n, agg, nil))
	}
	return st
}

// executeEpochControl is executeEpoch threaded with an externally owned
// control: base scan and insert-log scan share the cancellation signal and
// the limit budget, and a stop during the base scan skips the log entirely.
func executeEpochControl(ep *adaptiveEpoch, ctl *query.Control, q Query, agg Aggregator, cutover int) Stats {
	st := ep.flood.idx.ExecuteControl(ctl, q, agg, cutover)
	if ctl.Stopped() {
		return st
	}
	if n := ep.log.rows(); n > 0 {
		st.Add(ep.log.scan(q, n, agg, ctl))
	}
	return st
}

// ExecuteBatch serves queries[i] into aggs[i] with inter-query parallelism
// over the shared worker pool (see Flood.ExecuteBatch), all against one
// consistent generation. len(queries) must equal len(aggs).
func (a *AdaptiveIndex) ExecuteBatch(queries []Query, aggs []Aggregator) []Stats {
	ep := a.epoch.Load()
	stats := executeBatchEpoch(ep, queries, aggs)
	for i := range queries {
		a.observe(ep, queries[i], stats[i])
	}
	return stats
}

// executeBatchEpoch is ExecuteBatch against one generation, minus the
// lifecycle bookkeeping.
func executeBatchEpoch(ep *adaptiveEpoch, queries []Query, aggs []Aggregator) []Stats {
	if len(queries) != len(aggs) {
		panic(fmt.Sprintf("flood: ExecuteBatch got %d queries but %d aggregators", len(queries), len(aggs)))
	}
	n := ep.log.rows()
	stats := make([]Stats, len(queries))
	core.RunBatch(len(queries), func(i int) {
		stats[i] = ep.flood.idx.ExecuteSequential(queries[i], aggs[i])
		if n > 0 {
			stats[i].Add(ep.log.scan(queries[i], n, aggs[i], nil))
		}
	})
	return stats
}

// ExecuteOr evaluates a disjunction (OR) of conjunctive queries against one
// consistent generation, decomposing the rectangles into disjoint pieces so
// every matching row counts exactly once (the package-level ExecuteOr routes
// here automatically). The disjunction counts as one served query and its
// conjunctive rectangles feed the workload sample, but the decomposed pieces
// bypass the drift monitor: per-piece times are fractions of a query and
// would dilute the window average against the per-query reference cost.
func (a *AdaptiveIndex) ExecuteOr(queries []Query, agg Aggregator) Stats {
	st := query.ExecuteDisjunction(adaptiveRaw{a: a, ep: a.epoch.Load()}, queries, agg)
	a.queries.Add(1)
	for _, q := range queries {
		a.sample.Add(q)
	}
	return st
}

// adaptiveRaw exposes bookkeeping-free execution pinned to one generation,
// so disjunction decomposition runs against a consistent snapshot without
// polluting the drift monitor or the workload sample.
type adaptiveRaw struct {
	a  *AdaptiveIndex
	ep *adaptiveEpoch
}

// Name implements query.Index.
func (r adaptiveRaw) Name() string { return r.a.Name() }

// SizeBytes implements query.Index.
func (r adaptiveRaw) SizeBytes() int64 { return r.a.SizeBytes() }

// Execute implements query.Index against the pinned generation.
func (r adaptiveRaw) Execute(q Query, agg Aggregator) Stats {
	return executeEpoch(r.ep, q, agg)
}

// ExecuteContext implements query.Index against the pinned generation.
func (r adaptiveRaw) ExecuteContext(ctx context.Context, q Query, agg Aggregator) (Stats, error) {
	return query.RunContext(ctx, q, agg, func(ctl *query.Control, q Query, agg Aggregator) Stats {
		return executeEpochControl(r.ep, ctl, q, agg, 0)
	})
}

// ExecuteBatch implements query.BatchIndex against the pinned generation.
func (r adaptiveRaw) ExecuteBatch(queries []Query, aggs []Aggregator) []Stats {
	return executeBatchEpoch(r.ep, queries, aggs)
}

// ExecuteBatchContext implements query.BatchIndex against the pinned
// generation: one cancellation stops every query in the batch, queries not
// yet started are skipped.
func (r adaptiveRaw) ExecuteBatchContext(ctx context.Context, queries []Query, aggs []Aggregator) ([]Stats, error) {
	ctl, err := getControl(ctx, nil)
	if err != nil {
		return make([]Stats, len(queries)), err
	}
	if ctl == nil {
		return r.ExecuteBatch(queries, aggs), nil
	}
	stats := executeBatchEpochControl(r.ep, ctl, queries, aggs)
	err = ctl.Finish()
	ctl.Release()
	return stats, err
}

// observe is the bookkeeping tail of every query: sample it, feed the drift
// monitor, and kick off a relearn when the monitor signals.
func (a *AdaptiveIndex) observe(ep *adaptiveEpoch, q Query, st Stats) {
	a.queries.Add(1)
	a.sample.Add(q)
	if ep.mon.Record(st) {
		a.tryRebuild(rebuildRelearn, a.cfg.MinRelearnQueries)
	}
}

// AttachWAL routes every subsequent Insert through an append to l before the
// row is acknowledged, so acknowledged inserts survive a crash. Safe to call
// concurrently with inserts; the durable checkpoint uses that to rotate
// segments without stopping writers for more than the swap.
func (a *AdaptiveIndex) AttachWAL(l *wal.Log) {
	a.mu.Lock()
	a.walLog = l
	a.mu.Unlock()
}

// Insert appends one row (one value per dimension). The row is visible to
// queries as soon as Insert returns; with a WAL attached it is also logged
// before the append and acknowledged per the log's sync policy. When the
// insert log exceeds MergeFraction of the base, a background merge is
// scheduled; Insert itself never blocks on index building.
func (a *AdaptiveIndex) Insert(row []int64) error {
	a.mu.Lock()
	ep := a.epoch.Load()
	w := a.walLog
	var target int64
	if w != nil {
		// Validate before logging so a malformed row is rejected, not
		// replayed forever.
		if cols := ep.flood.Table().NumCols(); len(row) != cols {
			a.mu.Unlock()
			return fmt.Errorf("flood: row has %d values, table has %d dimensions", len(row), cols)
		}
		var err error
		if target, err = w.AppendAsync(encodeWALRow(row)); err != nil {
			a.mu.Unlock()
			return fmt.Errorf("flood: wal append: %w", err)
		}
	}
	if err := ep.log.append(row); err != nil {
		a.mu.Unlock()
		return err
	}
	pending := ep.log.rows()
	a.mu.Unlock()
	if w != nil {
		if err := w.WaitDurable(target); err != nil {
			return fmt.Errorf("flood: wal sync: %w", err)
		}
	}
	base := ep.flood.Table().NumRows()
	if a.cfg.MergeFraction > 0 && float64(pending) >= a.cfg.MergeFraction*float64(base) {
		a.tryRebuild(rebuildMerge, 0)
	}
	return nil
}

// Delete tombstones every live row matching q — base index and insert log —
// and returns how many rows were newly deleted. With a WAL attached the
// deletion is logged (as resolved row values, which replay identically
// against any rebuilt physical layout) before the tombstones are published,
// and acknowledged per the log's sync policy. Safe to call concurrently with
// queries and background rebuilds; concurrent mutators serialize on the
// writer lock.
func (a *AdaptiveIndex) Delete(q Query) (int64, error) {
	a.mu.Lock()
	ep := a.epoch.Load()
	baseRows := ep.flood.idx.CollectWhere(q)
	n := ep.log.rows()
	logRows := ep.log.matchRows(q, n)
	cnt, target, w, err := a.applyDelete(ep, baseRows, logRows, n, nil)
	a.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if w != nil {
		if err := w.WaitDurable(target); err != nil {
			return cnt, fmt.Errorf("flood: wal sync: %w", err)
		}
	}
	return cnt, nil
}

// DeleteRows tombstones rows by their Select ids — base rows tile first
// [0, base), insert-log rows follow — and returns how many were newly
// deleted. Ids already dead, duplicated, or out of range are skipped. Same
// concurrency and durability contract as Delete, with one caveat: ids are
// physical positions in the epoch that produced them, so they are only
// meaningful until the next layout swap — a merge or relearn (including the
// autonomous ones MergeFraction and drift scheduling trigger) renumbers
// rows, and stale ids will delete the wrong rows or none. Callers that
// cannot bracket Select→DeleteRows against rebuilds should use the
// predicate form, which is layout-independent.
func (a *AdaptiveIndex) DeleteRows(ids []int64) (int64, error) {
	a.mu.Lock()
	ep := a.epoch.Load()
	baseN := int64(ep.flood.Table().NumRows())
	n := ep.log.rows()
	bt := ep.flood.idx.Tombstones()
	lt := ep.log.tomb.Load()
	seen := make(map[int64]struct{}, len(ids))
	var baseRows, logRows []int
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		switch {
		case id < 0 || id >= baseN+n:
		case id < baseN:
			if !bt.Has(int(id)) {
				baseRows = append(baseRows, int(id))
			}
		default:
			if !lt.Has(int(id - baseN)) {
				logRows = append(logRows, int(id-baseN))
			}
		}
	}
	cnt, target, w, err := a.applyDelete(ep, baseRows, logRows, n, nil)
	a.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if w != nil {
		if err := w.WaitDurable(target); err != nil {
			return cnt, fmt.Errorf("flood: wal sync: %w", err)
		}
	}
	return cnt, nil
}

// Update rewrites every live row matching q with the assignments applied:
// old versions are tombstoned and modified copies are appended to the insert
// log, all under one writer-lock hold. With a WAL attached, the delete
// record and the re-inserted rows are logged in that order, so replay
// reproduces the rewrite. Returns the number of rows updated. Same
// concurrency contract as Delete; a concurrent reader may observe the
// instant between the tombstoning and a re-insert (mutations are atomic
// per structure, not transactional — see docs/MUTATIONS.md).
func (a *AdaptiveIndex) Update(q Query, set []Assignment) (int64, error) {
	a.mu.Lock()
	ep := a.epoch.Load()
	cols := ep.flood.Table().NumCols()
	baseRows := ep.flood.idx.CollectWhere(q)
	n := ep.log.rows()
	logRows := ep.log.matchRows(q, n)
	if len(baseRows)+len(logRows) == 0 {
		a.mu.Unlock()
		return 0, nil
	}
	tuples := resolveTuples(ep, baseRows, logRows)
	newRows := make([][]int64, len(tuples))
	for i, tp := range tuples {
		nr, err := applyAssignments(tp, set, cols)
		if err != nil {
			a.mu.Unlock()
			return 0, err
		}
		newRows[i] = nr
	}
	cnt, target, w, err := a.applyDelete(ep, baseRows, logRows, n, tuples)
	if err != nil {
		a.mu.Unlock()
		return 0, err
	}
	for _, row := range newRows {
		if w != nil {
			if target, err = w.AppendAsync(encodeWALRow(row)); err != nil {
				a.mu.Unlock()
				return cnt, fmt.Errorf("flood: wal append: %w", err)
			}
		}
		if err := ep.log.append(row); err != nil {
			a.mu.Unlock()
			return cnt, err
		}
	}
	pending := ep.log.rows()
	a.mu.Unlock()
	if w != nil {
		if err := w.WaitDurable(target); err != nil {
			return cnt, fmt.Errorf("flood: wal sync: %w", err)
		}
	}
	base := ep.flood.Table().NumRows()
	if a.cfg.MergeFraction > 0 && float64(pending) >= a.cfg.MergeFraction*float64(base) {
		a.tryRebuild(rebuildMerge, 0)
	}
	return cnt, nil
}

// applyDelete logs (when a WAL is attached) and applies a deletion already
// resolved to live base rows and live log rows. Caller holds mu. tuples, when
// non-nil, are the pre-resolved row values in baseRows-then-logRows order;
// nil resolves them on demand. Returns the count, the WAL durability target,
// and the WAL to wait on outside the lock.
func (a *AdaptiveIndex) applyDelete(ep *adaptiveEpoch, baseRows, logRows []int, n int64, tuples [][]int64) (int64, int64, *wal.Log, error) {
	if len(baseRows)+len(logRows) == 0 {
		return 0, 0, nil, nil
	}
	w := a.walLog
	if tuples == nil && (w != nil || a.deferring) {
		tuples = resolveTuples(ep, baseRows, logRows)
	}
	var target int64
	if w != nil {
		var err error
		if target, err = w.AppendAsync(encodeWALDelete(tuples)); err != nil {
			return 0, 0, nil, fmt.Errorf("flood: wal append: %w", err)
		}
	}
	if a.deferring {
		// The in-flight rebuild's captured image includes these rows; rows
		// past its frozen point carry over by bitmap at the swap, the rest
		// must be re-deleted by value (see the swap in rebuild).
		for i := range baseRows {
			a.deferred = append(a.deferred, tuples[i])
		}
		for i, r := range logRows {
			if int64(r) < a.deferFrozen {
				a.deferred = append(a.deferred, tuples[len(baseRows)+i])
			}
		}
	}
	cnt := int64(ep.flood.idx.DeleteRows(baseRows))
	cnt += int64(ep.log.deleteRows(logRows, n))
	return cnt, target, w, nil
}

// resolveTuples materializes the values of live base rows and log rows, in
// that order. Caller holds mu (or the epoch is otherwise private).
func resolveTuples(ep *adaptiveEpoch, baseRows, logRows []int) [][]int64 {
	t := ep.flood.Table()
	cols := *ep.log.cols.Load()
	out := make([][]int64, 0, len(baseRows)+len(logRows))
	for _, r := range baseRows {
		out = append(out, rowValues(t, r))
	}
	for _, r := range logRows {
		row := make([]int64, len(cols))
		for c := range cols {
			row[c] = cols[c][r]
		}
		out = append(out, row)
	}
	return out
}

// deleteTuples deletes one live row per value tuple — multiset semantics:
// k copies of a tuple delete k matching rows — scanning base rows first,
// then the log, in physical order. It is how value-logged deletions (WAL
// replay, deferred re-application at an epoch swap) apply against a state
// whose physical row ids differ from the state the deletion was resolved
// on. Returns the number of rows deleted; tuples with no remaining live
// match are ignored (the row was already compacted away).
func deleteTuples(ep *adaptiveEpoch, tuples [][]int64) int {
	if len(tuples) == 0 {
		return 0
	}
	want := make(map[string]int, len(tuples))
	for _, tp := range tuples {
		want[tupleKey(tp)]++
	}
	remaining := len(tuples)
	t := ep.flood.Table()
	bt := ep.flood.idx.Tombstones()
	buf := make([]int64, t.NumCols())
	var baseDel []int
	for r := 0; r < t.NumRows() && remaining > 0; r++ {
		if bt.Has(r) {
			continue
		}
		for c := range buf {
			buf[c] = t.Get(c, r)
		}
		if k := tupleKey(buf); want[k] > 0 {
			want[k]--
			remaining--
			baseDel = append(baseDel, r)
		}
	}
	n := ep.log.rows()
	cols := *ep.log.cols.Load()
	lt := ep.log.tomb.Load()
	var logDel []int
	for r := 0; int64(r) < n && remaining > 0; r++ {
		if lt.Has(r) {
			continue
		}
		for c := range buf {
			buf[c] = cols[c][r]
		}
		if k := tupleKey(buf); want[k] > 0 {
			want[k]--
			remaining--
			logDel = append(logDel, r)
		}
	}
	cnt := ep.flood.idx.DeleteRows(baseDel)
	cnt += ep.log.deleteRows(logDel, n)
	return cnt
}

// TriggerRelearn forces a background relearn as if drift had been detected,
// as long as at least one query has been sampled to train on. It reports
// whether a rebuild was started; false means one was already in flight (the
// trigger coalesces), the sample is empty, or the index is closed.
func (a *AdaptiveIndex) TriggerRelearn() bool { return a.tryRebuild(rebuildRelearn, 1) }

// TriggerMerge forces a background merge of the insert log into the base
// layout. It reports whether a rebuild was started; false means nothing is
// pending, one was already in flight, or the index is closed.
func (a *AdaptiveIndex) TriggerMerge() bool {
	if a.epoch.Load().log.rows() == 0 {
		return false
	}
	return a.tryRebuild(rebuildMerge, 0)
}

// tryRebuild starts a background rebuild unless one is already running (the
// backpressure rule: at most one in flight, extra triggers coalesce). For
// relearns, minSamples gates on the reservoir so there is always a workload
// to train on.
func (a *AdaptiveIndex) tryRebuild(kind rebuildKind, minSamples int) bool {
	if kind == rebuildRelearn && a.sample.Len() < max(minSamples, 1) {
		return false
	}
	a.rebuildMu.Lock()
	if a.closed || a.rebuildActive {
		a.rebuildMu.Unlock()
		return false
	}
	a.rebuildActive = true
	done := make(chan struct{})
	a.rebuildDone = done
	a.rebuildMu.Unlock()
	go a.rebuild(kind, done)
	return true
}

// rebuild runs in the background: snapshot base+delta and the sampled
// workload, build a fresh index (relearned layout or same-layout merge), and
// swap it in. Serving continues on the old generation throughout; the swap
// itself is one atomic store under the writer lock.
func (a *AdaptiveIndex) rebuild(kind rebuildKind, done chan struct{}) {
	var err error
	defer func() {
		a.rebuildMu.Lock()
		a.rebuildActive = false
		a.lastErr = err
		a.rebuildMu.Unlock()
		close(done)
	}()

	// Snapshot: rows below the published count are immutable, so the
	// frozen prefix of the log plus the (immutable) base table is a
	// consistent image of the data without stopping writers. The tombstone
	// sets are captured under the writer lock together with the frozen
	// count — and deferring is raised in the same critical section — so
	// every deletion is either compacted by this build or deferred for
	// re-application at the swap, never both.
	a.mu.Lock()
	ep := a.epoch.Load()
	frozen := ep.log.rows()
	extra := ep.log.columns(frozen)
	baseTomb := ep.flood.idx.Tombstones()
	logTomb := ep.log.tomb.Load()
	a.deferring = true
	a.deferFrozen = frozen
	a.mu.Unlock()

	swapped := false
	defer func() {
		if !swapped {
			a.mu.Lock()
			a.deferring = false
			a.deferred = nil
			a.mu.Unlock()
		}
	}()

	var fresh *Flood
	switch kind {
	case rebuildRelearn:
		train := a.sample.Snapshot()
		if len(train) == 0 {
			// The trigger raced with a finishing relearn's sample reset;
			// there is no workload to train on, so this cycle is a no-op
			// rather than an error — the next drift signal retries.
			return
		}
		var merged *Table
		merged, err = core.MergeRowsLive(ep.flood.idx.Table(), baseTomb, extra, logTomb)
		if err == nil {
			opts := a.relearnOptions(ep)
			fresh, err = Build(merged, train, &opts)
		}
	case rebuildMerge:
		var idx *core.Flood
		idx, err = ep.flood.idx.RebuildCompact(extra, baseTomb, logTomb)
		if err == nil {
			// The optimizer's predicted cost described the pre-merge table;
			// zero it so the new epoch's monitor rebases its reference from
			// the first observed window instead of flagging honest data
			// growth as workload drift.
			res := ep.flood.result
			res.PredictedCost = 0
			fresh = &Flood{idx: idx, result: res, model: ep.flood.model, schema: ep.flood.schema}
		}
	}
	if a.testHookBuilt != nil {
		a.testHookBuilt()
	}
	if err != nil {
		return
	}

	// Swap: under the writer lock the log cannot grow, so the tail
	// inserted while we were building is exactly rows [frozen, total).
	// It seeds the new generation's log column-major in O(dims) pointer
	// work — the tail slices are immutable, so they are aliased, not
	// copied, and writers stall only for the swap itself. In-flight
	// readers of the old generation stay correct — their base+log image
	// is immutable.
	a.mu.Lock()
	cur := a.epoch.Load()
	next := a.newEpoch(fresh)
	total := cur.log.rows()
	next.log.seed(cur.log.columnsRange(frozen, total), total-frozen)
	// Deletions that landed during the build: tail-row deletions carry by
	// re-marking the same rows at their re-based log positions; deletions
	// of rows the build compacted re-apply by value. Both happen before
	// the epoch pointer is stored, so no reader ever observes a deleted
	// row transiently resurrected.
	if lt := cur.log.tomb.Load(); lt.Dead() > 0 && total > frozen {
		var carry []int
		for r := frozen; r < total; r++ {
			if lt.Has(int(r)) {
				carry = append(carry, int(r-frozen))
			}
		}
		next.log.deleteRows(carry, total-frozen)
	}
	deleteTuples(next, a.deferred)
	a.deferred = nil
	a.deferring = false
	swapped = true
	a.epoch.Store(next)
	a.epochGen.Add(1)
	a.mu.Unlock()

	a.lastSwap.Store(time.Now().UnixNano())
	if kind == rebuildRelearn {
		a.relearns.Add(1)
		// The new layout answers the sampled workload; start sampling
		// the next era fresh so a future relearn sees current queries.
		a.sample.Reset()
	} else {
		a.merges.Add(1)
	}
}

// relearnOptions resolves the build options for a relearn, reusing the
// serving index's calibrated cost model unless the config supplies one.
func (a *AdaptiveIndex) relearnOptions(ep *adaptiveEpoch) Options {
	opts := a.cfg.Build.orDefault()
	if opts.CostModel == nil {
		opts.CostModel = ep.flood.Model()
	}
	if opts.Schema == nil {
		opts.Schema = ep.flood.schema
	}
	return opts
}

// Wait blocks until no background rebuild is in flight. Intended for tests
// and orderly shutdown; serving code never needs it.
func (a *AdaptiveIndex) Wait() {
	for {
		a.rebuildMu.Lock()
		if !a.rebuildActive {
			a.rebuildMu.Unlock()
			return
		}
		ch := a.rebuildDone
		a.rebuildMu.Unlock()
		<-ch
	}
}

// Close stops accepting rebuild triggers and waits for any in-flight rebuild
// to finish. Queries and inserts remain valid after Close; they just stop
// adapting.
func (a *AdaptiveIndex) Close() {
	a.rebuildMu.Lock()
	a.closed = true
	a.rebuildMu.Unlock()
	a.Wait()
}

// Stats returns a consistent snapshot of the adaptive lifecycle.
func (a *AdaptiveIndex) Stats() AdaptiveStats {
	ep := a.epoch.Load()
	a.rebuildMu.Lock()
	rebuilding := a.rebuildActive
	lastErr := a.lastErr
	a.rebuildMu.Unlock()
	st := AdaptiveStats{
		Queries:        a.queries.Load(),
		BaseRows:       ep.flood.Table().NumRows(),
		PendingRows:    int(ep.log.rows()),
		SampledQueries: a.sample.Len(),
		Relearns:       a.relearns.Load(),
		Merges:         a.merges.Load(),
		Rebuilding:     rebuilding,
		LastError:      lastErr,
		Reference:      ep.mon.Reference(),
		WindowAverage:  ep.mon.WindowAverage(),
	}
	if ns := a.lastSwap.Load(); ns != 0 {
		st.LastSwap = time.Unix(0, ns)
	}
	return st
}

// Name implements Index.
func (a *AdaptiveIndex) Name() string { return "Flood+Adaptive" }

// SizeBytes implements Index: current base metadata plus the insert log.
func (a *AdaptiveIndex) SizeBytes() int64 {
	ep := a.epoch.Load()
	return ep.flood.SizeBytes() + ep.log.rows()*int64(ep.flood.Table().NumCols())*8
}

// NumRows returns the total row count (base + pending inserts), including
// tombstoned rows not yet compacted; LiveRows excludes them.
func (a *AdaptiveIndex) NumRows() int {
	ep := a.epoch.Load()
	return ep.flood.Table().NumRows() + int(ep.log.rows())
}

// Deleted returns the number of tombstoned (not yet compacted) rows across
// the base index and the insert log. Approximate under concurrent mutation.
func (a *AdaptiveIndex) Deleted() int {
	ep := a.epoch.Load()
	return ep.flood.idx.Deleted() + ep.log.tomb.Load().Dead()
}

// LiveRows returns the number of rows queries can observe: physical rows
// minus tombstoned rows. Approximate under concurrent mutation.
func (a *AdaptiveIndex) LiveRows() int {
	ep := a.epoch.Load()
	return ep.flood.Table().NumRows() + int(ep.log.rows()) -
		ep.flood.idx.Deleted() - ep.log.tomb.Load().Dead()
}

// Epoch returns the number of completed generation swaps. It is strictly
// monotonic: concurrent readers can assert they never observe the epoch
// counter move backwards across a relearn or merge.
func (a *AdaptiveIndex) Epoch() int64 { return a.epochGen.Load() }

// Layout returns the currently serving layout (it changes after a relearn).
func (a *AdaptiveIndex) Layout() Layout { return a.epoch.Load().flood.Layout() }

// Index returns the currently serving Flood index. The returned index is
// immutable but goes stale at the next swap; use it for inspection, not as
// a serving handle.
func (a *AdaptiveIndex) Index() *Flood { return a.epoch.Load().flood }

var (
	_ Index            = (*AdaptiveIndex)(nil)
	_ query.BatchIndex = (*AdaptiveIndex)(nil)
	_ Deleter          = (*AdaptiveIndex)(nil)
	_ Updater          = (*AdaptiveIndex)(nil)
)

// sideLog is the insert side of a generation: an append-only column-major
// log whose published prefix is immutable. Writers (serialized by the
// facade's writer lock) append a row and then advance the atomic row count;
// readers load the count once and may scan any prefix up to it without
// locking — the count's release/acquire ordering guarantees those rows are
// fully written. Scans reuse the block-skipping scan kernel by encoding the
// log into immutable logViewStep-sized segment tables, sealed lazily as the
// log grows; every row is encoded into a sealed segment exactly once, and
// only the short unsealed suffix is encoded transiently per scan.
type sideLog struct {
	names []string
	cols  atomic.Pointer[[][]int64] // column-major; rows [0, count) published
	count atomic.Int64
	segs  atomic.Pointer[[]*logSegment] // sealed, contiguous from row 0
	// tomb marks deleted log rows. Published values are immutable; a scan
	// captures the pointer once, so its whole pass over segments and suffix
	// masks against one consistent deletion snapshot. Segments start at
	// multiples of logViewStep — a multiple of 64 — so each segment's mask
	// is a word-aligned alias into the captured words (Tombstones.Slice).
	tomb atomic.Pointer[colstore.Tombstones]
}

// logSegment is one sealed, encoded chunk of the log: rows [start, end).
type logSegment struct {
	start, end int64
	t          *colstore.Table
}

func newSideLog(names []string) *sideLog {
	l := &sideLog{names: names}
	cols := make([][]int64, len(names))
	l.cols.Store(&cols)
	segs := []*logSegment{}
	l.segs.Store(&segs)
	return l
}

// rows returns the published row count; rows below it are immutable.
func (l *sideLog) rows() int64 { return l.count.Load() }

// append adds one row. Callers must serialize appends (the facade's writer
// lock); readers are never blocked. The column headers are republished
// copy-on-write before the count advances, so a reader that observes count n
// always observes headers covering at least n rows.
func (l *sideLog) append(row []int64) error {
	cur := *l.cols.Load()
	if len(row) != len(cur) {
		return fmt.Errorf("flood: row has %d values, table has %d dimensions", len(row), len(cur))
	}
	next := make([][]int64, len(cur))
	for c := range cur {
		next[c] = append(cur[c], row[c])
	}
	l.cols.Store(&next)
	l.count.Add(1)
	return nil
}

// columns returns the column-major slices of the first n rows, aliasing the
// log's immutable prefix — valid forever, copy-free.
func (l *sideLog) columns(n int64) [][]int64 { return l.columnsRange(0, n) }

// columnsRange returns the column-major slices of rows [from, to), aliasing
// the log's immutable prefix with capacity capped at the slice itself, so a
// successor log seeded from them reallocates on its first append instead of
// writing into this log's storage.
func (l *sideLog) columnsRange(from, to int64) [][]int64 {
	if to <= from {
		return nil
	}
	cols := *l.cols.Load()
	out := make([][]int64, len(cols))
	for c := range cols {
		out[c] = cols[c][from:to:to]
	}
	return out
}

// seed installs n pre-published rows. Only valid before the log's epoch is
// visible to any other goroutine (the swap holds the writer lock and the
// epoch pointer is not yet stored).
func (l *sideLog) seed(cols [][]int64, n int64) {
	if n == 0 {
		return
	}
	l.cols.Store(&cols)
	l.count.Store(n)
}

// logViewStep is the sealed-segment granularity: once that many rows sit
// past the last sealed segment, a scan seals them into encoded tables. Each
// row is sealed exactly once — O(1) amortized over inserts — and the
// transient suffix a scan encodes on the fly stays under one step, so
// queries never absorb O(pending) encoding work.
const logViewStep = 2048

// scan filters the log's first n rows against q through the shared scan
// kernel, accumulating matches into agg and returning delta-scan stats.
// ctl, when non-nil, threads the query's cancellation signal and limit
// budget into the segment scans, stopping between segments once latched.
func (l *sideLog) scan(q Query, n int64, agg Aggregator, ctl *query.Control) Stats {
	var st Stats
	t0 := time.Now()
	dims := q.FilteredDims()
	tw := l.tomb.Load()
	l.seal(n)
	covered := int64(0)
	for _, sg := range *l.segs.Load() {
		if sg.end > n || ctl.Stopped() {
			break
		}
		sc := query.GetScanner(sg.t)
		sc.SetControl(ctl)
		sc.SetTombstones(tw.Slice(int(sg.start) >> 6))
		s, m := sc.ScanRange(q, dims, 0, int(sg.end-sg.start), agg)
		sc.Release()
		st.Scanned += s
		st.Matched += m
		covered = sg.end
	}
	if n > covered && !ctl.Stopped() {
		t := colstore.MustNewTable(l.names, l.columnsRange(covered, n))
		sc := query.GetScanner(t)
		sc.SetControl(ctl)
		sc.SetTombstones(tw.Slice(int(covered) >> 6))
		s, m := sc.ScanRange(q, dims, 0, int(n-covered), agg)
		sc.Release()
		st.Scanned += s
		st.Matched += m
	}
	st.ScanTime = time.Since(t0)
	st.Total = st.ScanTime
	return st
}

// deleteRows tombstones the given log rows (indices below n, the caller's
// published-count snapshot) and returns how many were newly deleted. Callers
// serialize with appends (the facade's writer lock); readers are never
// blocked — they capture the previous tombstone version and keep a
// consistent snapshot.
func (l *sideLog) deleteRows(rows []int, n int64) int {
	if len(rows) == 0 {
		return 0
	}
	nt, added := colstore.AddTombstones(l.tomb.Load(), int(n), rows)
	if added > 0 {
		l.tomb.Store(nt)
	}
	return added
}

// matchRows returns the live log rows among the first n that satisfy q, by
// brute-force evaluation (the log is small by construction). Caller holds
// the facade's writer lock, so rows below n and the tombstone set are
// stable.
func (l *sideLog) matchRows(q Query, n int64) []int {
	if n == 0 {
		return nil
	}
	cols := *l.cols.Load()
	tw := l.tomb.Load()
	var rows []int
	for i := 0; i < int(n); i++ {
		if !tw.Has(i) && matchColumns(q, cols, i) {
			rows = append(rows, i)
		}
	}
	return rows
}

// seal encodes any full logViewStep-sized chunks of the first n rows into
// immutable segment tables. Safe from any goroutine: the segment list is
// copy-on-write and CAS-published, and concurrent sealers at worst encode
// the same immutable rows twice. Returns quickly when there is nothing to
// seal (one atomic load).
func (l *sideLog) seal(n int64) {
	for {
		cur := l.segs.Load()
		segs := *cur
		start := int64(0)
		if len(segs) > 0 {
			start = segs[len(segs)-1].end
		}
		if n-start < logViewStep {
			return
		}
		out := append([]*logSegment{}, segs...)
		for n-start >= logViewStep {
			end := start + logViewStep
			out = append(out, &logSegment{
				start: start, end: end,
				t: colstore.MustNewTable(l.names, l.columnsRange(start, end)),
			})
			start = end
		}
		if l.segs.CompareAndSwap(cur, &out) {
			return
		}
	}
}
