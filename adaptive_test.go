package flood

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flood/internal/dataset"
	"flood/internal/workload"
)

// adaptiveUnderTest builds a small serving stack with cheap relearn options
// (the calibrated cost model is reused, so background relearns skip
// calibration) and drift detection effectively disabled unless the test
// drives it by hand.
func adaptiveUnderTest(t *testing.T, cfg *AdaptiveConfig) (*AdaptiveIndex, *dataset.Dataset, []Query) {
	t.Helper()
	idx, ds, queries := buildSmall(t)
	if cfg == nil {
		cfg = &AdaptiveConfig{}
	}
	if cfg.DriftFactor == 0 {
		cfg.DriftFactor = 1e9 // monitor never fires on its own
	}
	if cfg.Build == nil {
		cfg.Build = &Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 207}
	}
	a := NewAdaptiveIndex(idx, cfg)
	t.Cleanup(a.Close)
	return a, ds, queries
}

// markerRow clones a random dataset row and stamps the date dimension with a
// value far outside the original domain, so marker rows are isolatable.
func markerRow(ds *dataset.Dataset, rng *rand.Rand, dateCol int, i int) []int64 {
	src := rng.Intn(ds.Table.NumRows())
	row := make([]int64, ds.Table.NumCols())
	for c := range row {
		row[c] = ds.Cols[c][src]
	}
	row[dateCol] = 5000 + int64(i%500)
	return row
}

func countOf(t *testing.T, idx Index, q Query) int64 {
	t.Helper()
	agg := NewCount()
	idx.Execute(q, agg)
	return agg.Result()
}

// TestAdaptiveSwapEquivalence pins the core swap-safety property: a forced
// background relearn folds the delta in, swaps layouts, and every query
// returns exactly what it returned before the swap.
func TestAdaptiveSwapEquivalence(t *testing.T) {
	a, ds, queries := adaptiveUnderTest(t, &AdaptiveConfig{MergeFraction: -1})
	dateCol := ds.ColumnIndex("date")
	rng := rand.New(rand.NewSource(301))
	const added = 200
	for i := 0; i < added; i++ {
		if err := a.Insert(markerRow(ds, rng, dateCol, i)); err != nil {
			t.Fatal(err)
		}
	}
	marker := NewQuery(ds.Table.NumCols()).WithRange(dateCol, 5000, 6000)
	probes := append([]Query{marker}, queries[:10]...)
	before := make([]int64, len(probes))
	for i, q := range probes {
		before[i] = countOf(t, a, q)
	}
	if before[0] != added {
		t.Fatalf("marker query found %d before swap, want %d", before[0], added)
	}
	oldLayout := a.Layout().String()

	if !a.TriggerRelearn() {
		t.Fatal("forced relearn did not start")
	}
	a.Wait()

	st := a.Stats()
	if st.Relearns != 1 {
		t.Fatalf("relearns = %d, want 1 (last error: %v)", st.Relearns, st.LastError)
	}
	if st.LastError != nil {
		t.Fatalf("relearn failed: %v", st.LastError)
	}
	if st.LastSwap.IsZero() {
		t.Fatal("LastSwap not recorded")
	}
	if st.PendingRows != 0 {
		t.Fatalf("relearn left %d rows pending; the delta should fold in", st.PendingRows)
	}
	if st.BaseRows != ds.Table.NumRows()+added {
		t.Fatalf("base has %d rows after swap, want %d", st.BaseRows, ds.Table.NumRows()+added)
	}
	for i, q := range probes {
		if after := countOf(t, a, q); after != before[i] {
			t.Fatalf("probe %d: count %d after swap, want %d (layout %s -> %s)",
				i, after, before[i], oldLayout, a.Layout())
		}
	}
}

// TestAdaptiveConcurrentServeDuringRelearn is the zero-downtime acceptance
// test: readers and a writer hammer the index while a background relearn
// (stretched by a test hook) completes and swaps the layout. Run under
// -race. Every reader sees monotonically non-decreasing counts (rows never
// vanish mid-swap), nobody blocks, and after the dust settles the count is
// exact — no stale reads after the swap.
func TestAdaptiveConcurrentServeDuringRelearn(t *testing.T) {
	a, ds, queries := adaptiveUnderTest(t, &AdaptiveConfig{MergeFraction: -1})
	a.testHookBuilt = func() { time.Sleep(30 * time.Millisecond) }
	dateCol := ds.ColumnIndex("date")
	marker := NewQuery(ds.Table.NumCols()).WithRange(dateCol, 5000, 6000)
	if got := countOf(t, a, marker); got != 0 {
		t.Fatalf("marker query found %d rows before any insert", got)
	}

	const (
		readers = 4
		inserts = 400
	)
	var (
		wg       sync.WaitGroup
		inserted atomic.Int64
		stop     atomic.Bool
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var prev int64
			for i := 0; !stop.Load(); i++ {
				low := inserted.Load() // rows inserted before this Execute must be visible
				agg := NewCount()
				a.Execute(marker, agg)
				got := agg.Result()
				if got < prev {
					t.Errorf("reader %d: count went backwards: %d -> %d", r, prev, got)
					return
				}
				if got < low {
					t.Errorf("reader %d: stale read: saw %d rows, %d were already inserted", r, got, low)
					return
				}
				prev = got
				// Mix in real workload queries so the reservoir and
				// monitor see realistic traffic.
				if i%8 == 0 {
					a.Execute(queries[i%len(queries)], NewCount())
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(302))
		for i := 0; i < inserts; i++ {
			row := markerRow(ds, rng, dateCol, i)
			if err := a.Insert(row); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
			inserted.Add(1)
		}
	}()

	// Let traffic build up, then force the relearn mid-stream.
	for a.Stats().Queries < 50 {
		time.Sleep(time.Millisecond)
	}
	if !a.TriggerRelearn() {
		t.Fatal("forced relearn did not start")
	}
	a.Wait()
	stop.Store(true)
	wg.Wait()
	a.Wait() // a reader's monitor observation cannot trigger here (factor 1e9), but be safe

	st := a.Stats()
	if st.Relearns != 1 {
		t.Fatalf("relearns = %d, want 1 (last error: %v)", st.Relearns, st.LastError)
	}
	if got := countOf(t, a, marker); got != inserts {
		t.Fatalf("after swap: marker count %d, want %d (pending %d, base %d)",
			got, inserts, st.PendingRows, st.BaseRows)
	}
	if a.NumRows() != ds.Table.NumRows()+inserts {
		t.Fatalf("NumRows = %d, want %d", a.NumRows(), ds.Table.NumRows()+inserts)
	}
}

// TestAdaptiveTriggerCoalescing pins the backpressure rule: at most one
// rebuild in flight, and every trigger that arrives while it runs coalesces
// into it instead of queueing another.
func TestAdaptiveTriggerCoalescing(t *testing.T) {
	a, _, queries := adaptiveUnderTest(t, &AdaptiveConfig{MergeFraction: -1})
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	a.testHookBuilt = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	a.Execute(queries[0], NewCount()) // seed the reservoir

	if !a.TriggerRelearn() {
		t.Fatal("first trigger should start a rebuild")
	}
	<-entered // the rebuild is now provably in flight
	if !a.Stats().Rebuilding {
		t.Fatal("Stats should report an in-flight rebuild")
	}
	var extra atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if a.TriggerRelearn() {
				extra.Add(1)
			}
			if a.TriggerMerge() {
				extra.Add(1)
			}
		}()
	}
	wg.Wait()
	if extra.Load() != 0 {
		t.Fatalf("%d triggers started rebuilds while one was in flight", extra.Load())
	}
	close(release)
	a.Wait()
	if st := a.Stats(); st.Relearns != 1 || st.Merges != 0 {
		t.Fatalf("relearns=%d merges=%d after coalesced triggers, want 1/0", st.Relearns, st.Merges)
	}
}

// TestAdaptiveAutoMerge pins merge-threshold scheduling: once the insert log
// exceeds MergeFraction of the base, a background merge folds it in without
// being asked.
func TestAdaptiveAutoMerge(t *testing.T) {
	a, ds, _ := adaptiveUnderTest(t, &AdaptiveConfig{MergeFraction: 0.01}) // 6000 rows -> merge at 60
	dateCol := ds.ColumnIndex("date")
	rng := rand.New(rand.NewSource(303))
	const added = 150
	for i := 0; i < added; i++ {
		if err := a.Insert(markerRow(ds, rng, dateCol, i)); err != nil {
			t.Fatal(err)
		}
	}
	a.Wait()
	st := a.Stats()
	if st.Merges == 0 {
		t.Fatalf("no auto-merge after %d inserts at threshold %d", added, 60)
	}
	if st.Relearns != 0 {
		t.Fatalf("auto-merge must not relearn the layout (relearns=%d)", st.Relearns)
	}
	if st.PendingRows >= added {
		t.Fatalf("pending=%d; merges should have drained the log", st.PendingRows)
	}
	marker := NewQuery(ds.Table.NumCols()).WithRange(dateCol, 5000, 6000)
	if got := countOf(t, a, marker); got != added {
		t.Fatalf("marker count %d after auto-merge, want %d", got, added)
	}
}

// TestAdaptiveMonitorDrivenRelearn drives the monitor with synthetic slow
// stats and verifies the drift signal starts a relearn on its own — the
// serving-loop path, without forced triggers.
func TestAdaptiveMonitorDrivenRelearn(t *testing.T) {
	a, _, queries := adaptiveUnderTest(t, &AdaptiveConfig{
		WindowSize:        8,
		DriftFactor:       2,
		MinRelearnQueries: 4,
	})
	ep := a.epoch.Load()
	ref := ep.mon.Reference()
	if ref <= 0 {
		t.Fatal("monitor should seed its reference from the predicted cost")
	}
	slow := Stats{Total: time.Duration(ref*100) * time.Nanosecond}
	for i := 0; i < 32 && a.Stats().Relearns == 0; i++ {
		a.observe(ep, queries[i%len(queries)], slow)
		a.Wait()
	}
	if st := a.Stats(); st.Relearns == 0 {
		t.Fatalf("sustained 100x regression never triggered a relearn (last error: %v)", st.LastError)
	}
	// The swap reset the monitor: the fresh window must not re-fire on
	// normal traffic.
	ep = a.epoch.Load()
	fast := Stats{Total: time.Duration(ep.mon.Reference()) * time.Nanosecond}
	for i := 0; i < 16; i++ {
		a.observe(ep, queries[i%len(queries)], fast)
	}
	a.Wait()
	if st := a.Stats(); st.Relearns != 1 {
		t.Fatalf("monitor re-fired on normal traffic after the swap (relearns=%d)", st.Relearns)
	}
}

// TestAdaptiveExecuteBatch pins the batched serving path: same results as
// one-at-a-time execution, including pending insert-log rows.
func TestAdaptiveExecuteBatch(t *testing.T) {
	a, ds, queries := adaptiveUnderTest(t, &AdaptiveConfig{MergeFraction: -1})
	dateCol := ds.ColumnIndex("date")
	rng := rand.New(rand.NewSource(304))
	for i := 0; i < 80; i++ {
		if err := a.Insert(markerRow(ds, rng, dateCol, i)); err != nil {
			t.Fatal(err)
		}
	}
	batch := append([]Query{NewQuery(ds.Table.NumCols()).WithRange(dateCol, 5000, 6000)}, queries[:12]...)
	aggs := make([]Aggregator, len(batch))
	for i := range aggs {
		aggs[i] = NewCount()
	}
	stats := a.ExecuteBatch(batch, aggs)
	if len(stats) != len(batch) {
		t.Fatalf("got %d stats for %d queries", len(stats), len(batch))
	}
	for i, q := range batch {
		if want := countOf(t, a, q); aggs[i].Result() != want {
			t.Fatalf("batch query %d: count %d, want %d", i, aggs[i].Result(), want)
		}
	}
}

// TestAdaptiveExecuteOr pins disjunction serving: exact union counts (each
// row once, despite overlap and pending insert-log rows), one served query
// per disjunction, and no drift-monitor pollution from decomposed pieces.
func TestAdaptiveExecuteOr(t *testing.T) {
	a, ds, _ := adaptiveUnderTest(t, &AdaptiveConfig{MergeFraction: -1})
	dateCol := ds.ColumnIndex("date")
	rng := rand.New(rand.NewSource(305))
	const added = 120
	for i := 0; i < added; i++ {
		if err := a.Insert(markerRow(ds, rng, dateCol, i)); err != nil {
			t.Fatal(err)
		}
	}
	nd := ds.Table.NumCols()
	or := []Query{
		NewQuery(nd).WithRange(dateCol, 5000, 5300), // overlaps the next piece
		NewQuery(nd).WithRange(dateCol, 5200, 6000),
		NewQuery(nd).WithRange(dateCol, 5100, 5400),
	}
	union := countOf(t, a, NewQuery(nd).WithRange(dateCol, 5000, 6000))
	q0 := a.Stats().Queries
	agg := NewCount()
	ExecuteOr(a, or, agg)
	if agg.Result() != union {
		t.Fatalf("OR counted %d, union is %d", agg.Result(), union)
	}
	if got := a.Stats().Queries - q0; got != 1 {
		t.Fatalf("one disjunction recorded %d served queries; pieces must not count", got)
	}
	if avg := a.Stats().WindowAverage; avg != 0 {
		// The marker/union Executes above did feed the monitor; what must
		// not happen is the OR's decomposed pieces shifting it further.
		before := avg
		ExecuteOr(a, or, NewCount())
		if after := a.Stats().WindowAverage; after != before {
			t.Fatalf("disjunction pieces moved the drift window: %v -> %v", before, after)
		}
	}
}

// TestAdaptiveSideLogSegments pushes the insert log well past the sealing
// granularity so scans cross multiple sealed segments plus the transient
// suffix, and stay exact.
func TestAdaptiveSideLogSegments(t *testing.T) {
	a, ds, _ := adaptiveUnderTest(t, &AdaptiveConfig{MergeFraction: -1})
	dateCol := ds.ColumnIndex("date")
	marker := NewQuery(ds.Table.NumCols()).WithRange(dateCol, 5000, 6000)
	rng := rand.New(rand.NewSource(306))
	const added = 5000 // > 2 sealed segments at logViewStep=2048
	for i := 0; i < added; i++ {
		if err := a.Insert(markerRow(ds, rng, dateCol, i)); err != nil {
			t.Fatal(err)
		}
		if i%1500 == 0 { // interleave reads so sealing happens mid-growth
			a.Execute(marker, NewCount())
		}
	}
	if got := countOf(t, a, marker); got != added {
		t.Fatalf("segmented log scan found %d, want %d", got, added)
	}
	if segs := *a.epoch.Load().log.segs.Load(); len(segs) < 2 {
		t.Fatalf("expected >=2 sealed segments for %d rows, got %d", added, len(segs))
	}
}

// TestAdaptiveInsertValidation pins row-width checking and post-Close
// serving behavior.
func TestAdaptiveInsertValidation(t *testing.T) {
	a, ds, queries := adaptiveUnderTest(t, nil)
	if err := a.Insert([]int64{1, 2}); err == nil {
		t.Fatal("short row should fail")
	}
	if a.TriggerMerge() {
		t.Fatal("merge with nothing pending should not start")
	}
	a.Close()
	if a.TriggerRelearn() {
		t.Fatal("closed index should refuse rebuilds")
	}
	// Serving still works after Close; it just stops adapting.
	if got := countOf(t, a, queries[0]); got < 0 {
		t.Fatal("unreachable")
	}
	_ = ds
}

// TestReservoirSampling pins the workload reservoir: bounded size, uniform
// composition, copy-safe snapshots, and era reset.
func TestReservoirSampling(t *testing.T) {
	r := workload.NewReservoir(50, 7)
	d := 3
	for i := 0; i < 1000; i++ {
		q := NewQuery(d).WithEquals(0, int64(i))
		r.Add(q)
	}
	if r.Len() != 50 {
		t.Fatalf("reservoir holds %d, want 50", r.Len())
	}
	if r.Seen() != 1000 {
		t.Fatalf("seen %d, want 1000", r.Seen())
	}
	snap := r.Snapshot()
	late := 0
	for _, q := range snap {
		if q.Ranges[0].Min >= 500 {
			late++
		}
	}
	// A uniform sample of 50 from 1000 has ~25 from the second half; 10-40
	// is a >6-sigma window.
	if late < 10 || late > 40 {
		t.Fatalf("sample badly skewed: %d/50 from the second half of the stream", late)
	}
	r.Reset()
	if r.Len() != 0 || r.Seen() != 0 {
		t.Fatal("reset did not clear the reservoir")
	}
	if len(snap) != 50 {
		t.Fatal("snapshot must survive a reset")
	}
}

// TestReservoirCopiesRanges pins the deep-copy contract: queries whose
// Ranges live in reused scratch (the pooled disjunction arena hands such
// queries to AdaptiveIndex.ExecuteBatch) must not corrupt the sample when
// the scratch is recycled.
func TestReservoirCopiesRanges(t *testing.T) {
	r := workload.NewReservoir(4, 7)
	arena := []Range{{Min: 10, Max: 20, Present: true}}
	r.Add(Query{Ranges: arena})
	arena[0] = Range{Min: -1, Max: -1, Present: true} // scratch reuse
	got := r.Snapshot()[0].Ranges[0]
	if got.Min != 10 || got.Max != 20 {
		t.Fatalf("sampled query aliases caller scratch: %+v", got)
	}
}
