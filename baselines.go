package flood

import (
	"fmt"

	"flood/internal/baseline/clustered"
	"flood/internal/baseline/fullscan"
	"flood/internal/baseline/gridfile"
	"flood/internal/baseline/kdtree"
	"flood/internal/baseline/octree"
	"flood/internal/baseline/rstar"
	"flood/internal/baseline/ubtree"
	"flood/internal/baseline/zorder"
)

// BaselineKind names the baseline indexes of §7.2.
type BaselineKind string

// The available baselines.
const (
	FullScan    BaselineKind = "fullscan"
	Clustered   BaselineKind = "clustered"
	GridFile    BaselineKind = "gridfile"
	ZOrder      BaselineKind = "zorder"
	UBTree      BaselineKind = "ubtree"
	Hyperoctree BaselineKind = "octree"
	KDTree      BaselineKind = "kdtree"
	RStarTree   BaselineKind = "rstar"
)

// Baselines lists every baseline kind in the paper's order.
func Baselines() []BaselineKind {
	return []BaselineKind{FullScan, Clustered, GridFile, ZOrder, UBTree, Hyperoctree, KDTree, RStarTree}
}

// BaselineOptions tunes baseline construction. Dims orders the indexed
// dimensions from most to least selective — pass the output of a workload
// analysis for a tuned index. PageSize applies to page-based baselines.
type BaselineOptions struct {
	// Dims lists indexed dimensions, most selective first. Defaults to
	// all dimensions in table order.
	Dims []int
	// PageSize bounds pages/buckets/leaves (default per baseline).
	PageSize int
	// RMILeaves overrides the clustered baseline's leaf count.
	RMILeaves int
}

// BuildBaseline constructs one of the paper's baseline indexes over tbl on
// the shared column-store substrate, with the same scan optimizations Flood
// enjoys (§7.1).
func BuildBaseline(kind BaselineKind, tbl *Table, opts BaselineOptions) (Index, error) {
	dims := opts.Dims
	if len(dims) == 0 {
		dims = make([]int, tbl.NumCols())
		for i := range dims {
			dims[i] = i
		}
	}
	switch kind {
	case FullScan:
		return fullscan.New(tbl), nil
	case Clustered:
		return clustered.Build(tbl, dims[0], clustered.Options{Leaves: opts.RMILeaves})
	case GridFile:
		return gridfile.Build(tbl, dims, opts.PageSize)
	case ZOrder:
		return zorder.Build(tbl, dims, opts.PageSize)
	case UBTree:
		return ubtree.Build(tbl, dims, opts.PageSize)
	case Hyperoctree:
		return octree.Build(tbl, dims, opts.PageSize)
	case KDTree:
		return kdtree.Build(tbl, dims, opts.PageSize)
	case RStarTree:
		return rstar.Build(tbl, dims, opts.PageSize)
	default:
		return nil, fmt.Errorf("flood: unknown baseline %q", kind)
	}
}
