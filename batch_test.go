package flood

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestFloodExecuteBatchMatchesExecute pins the public batched serving path:
// same results and per-query scan stats as one-at-a-time execution.
func TestFloodExecuteBatchMatchesExecute(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	idx, _, queries := buildSmall(t)
	batchAggs := make([]Aggregator, len(queries))
	for i := range batchAggs {
		batchAggs[i] = NewCount()
	}
	batchStats := idx.ExecuteBatch(queries, batchAggs)
	for i, q := range queries {
		agg := NewCount()
		st := idx.Execute(q, agg)
		if batchAggs[i].Result() != agg.Result() {
			t.Fatalf("query %d: batch count %d != sequential %d", i, batchAggs[i].Result(), agg.Result())
		}
		if batchStats[i].Scanned != st.Scanned || batchStats[i].Matched != st.Matched {
			t.Fatalf("query %d: batch stats (scanned=%d matched=%d) != sequential (scanned=%d matched=%d)",
				i, batchStats[i].Scanned, batchStats[i].Matched, st.Scanned, st.Matched)
		}
	}
}

// TestDeltaIndexExecuteBatchWithPending checks the batched path through the
// delta index while rows are buffered: base + pending must both be visible,
// identically to sequential Execute.
func TestDeltaIndexExecuteBatchWithPending(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	idx, ds, queries := buildSmall(t)
	d := NewDeltaIndex(idx, 0)
	rng := rand.New(rand.NewSource(401))
	for i := 0; i < 500; i++ {
		src := rng.Intn(6000)
		row := make([]int64, ds.Table.NumCols())
		for c := range row {
			row[c] = ds.Cols[c][src]
		}
		if err := d.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if d.Pending() != 500 {
		t.Fatalf("pending = %d, want 500", d.Pending())
	}
	batchAggs := make([]Aggregator, len(queries))
	for i := range batchAggs {
		batchAggs[i] = NewCount()
	}
	batchStats := d.ExecuteBatch(queries, batchAggs)
	for i, q := range queries {
		agg := NewCount()
		st := d.Execute(q, agg)
		if batchAggs[i].Result() != agg.Result() {
			t.Fatalf("query %d: delta batch count %d != sequential %d", i, batchAggs[i].Result(), agg.Result())
		}
		if batchStats[i].Scanned != st.Scanned || batchStats[i].Matched != st.Matched {
			t.Fatalf("query %d: delta batch stats (scanned=%d matched=%d) != sequential (scanned=%d matched=%d)",
				i, batchStats[i].Scanned, batchStats[i].Matched, st.Scanned, st.Matched)
		}
	}
	// After merging, the batched path still agrees.
	if err := d.Merge(); err != nil {
		t.Fatal(err)
	}
	post := make([]Aggregator, len(queries))
	for i := range post {
		post[i] = NewCount()
	}
	d.ExecuteBatch(queries, post)
	for i := range queries {
		if post[i].Result() != batchAggs[i].Result() {
			t.Fatalf("query %d: post-merge batch count %d != pre-merge %d",
				i, post[i].Result(), batchAggs[i].Result())
		}
	}
}

// TestDeltaIndexConcurrentReads pins the lazily-built delta table's
// construction guard: many goroutines executing against a DeltaIndex with
// pending rows (the documented read contract) must build the buffer view
// exactly once and agree on results; the race detector covers the rest.
func TestDeltaIndexConcurrentReads(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	idx, ds, queries := buildSmall(t)
	d := NewDeltaIndex(idx, 0)
	row := make([]int64, ds.Table.NumCols())
	for c := range row {
		row[c] = ds.Cols[c][0]
	}
	for i := 0; i < 50; i++ {
		if err := d.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	q := queries[0]
	want := NewCount()
	d.Execute(q, want)
	d = func() *DeltaIndex { // fresh index so the delta table is unbuilt
		nd := NewDeltaIndex(idx, 0)
		for i := 0; i < 50; i++ {
			if err := nd.Insert(row); err != nil {
				t.Fatal(err)
			}
		}
		return nd
	}()
	var wg sync.WaitGroup
	results := make([]int64, 8)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			agg := NewCount()
			d.Execute(q, agg)
			results[g] = agg.Result()
		}(g)
	}
	wg.Wait()
	for g, r := range results {
		if r != want.Result() {
			t.Fatalf("goroutine %d: count %d != %d", g, r, want.Result())
		}
	}
}

// TestExecuteOrBatchedMatchesSequentialIndex runs the same disjunction
// through Flood (a BatchIndex, so the pieces run as one batch) and through a
// wrapper that hides the batched path; both must agree.
func TestExecuteOrBatchedMatchesSequentialIndex(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	idx, ds, _ := buildSmall(t)
	rng := rand.New(rand.NewSource(402))
	nd := ds.Table.NumCols()
	for trial := 0; trial < 10; trial++ {
		var rects []Query
		for i := 0; i < 2+rng.Intn(3); i++ {
			d := rng.Intn(nd)
			lo := ds.Cols[d][rng.Intn(len(ds.Cols[d]))]
			hi := ds.Cols[d][rng.Intn(len(ds.Cols[d]))]
			if lo > hi {
				lo, hi = hi, lo
			}
			rects = append(rects, NewQuery(nd).WithRange(d, lo, hi))
		}
		batched, plain := NewCount(), NewCount()
		ExecuteOr(idx, rects, batched)
		ExecuteOr(indexOnly{idx}, rects, plain)
		if batched.Result() != plain.Result() {
			t.Fatalf("trial %d: batched ExecuteOr %d != sequential %d", trial, batched.Result(), plain.Result())
		}
	}
}

// indexOnly hides Flood's ExecuteBatch so ExecuteOr takes the sequential
// route.
type indexOnly struct{ idx *Flood }

func (w indexOnly) Name() string                          { return w.idx.Name() }
func (w indexOnly) SizeBytes() int64                      { return w.idx.SizeBytes() }
func (w indexOnly) Execute(q Query, agg Aggregator) Stats { return w.idx.Execute(q, agg) }
func (w indexOnly) ExecuteContext(ctx context.Context, q Query, agg Aggregator) (Stats, error) {
	return w.idx.ExecuteContext(ctx, q, agg)
}

// TestMonitorConcurrentRecord hammers Record from many goroutines — the
// situation batched serving creates — and relies on the race detector (CI
// runs this package under -race) to catch unsynchronized window access.
func TestMonitorConcurrentRecord(t *testing.T) {
	mon := NewMonitor(nil, 32, 2.0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				mon.Record(Stats{Total: time.Duration(1+g) * time.Microsecond})
				_ = mon.WindowAverage()
				_ = mon.Reference()
			}
		}(g)
	}
	wg.Wait()
	if mon.Reference() == 0 {
		t.Fatal("reference should be established after 4000 records")
	}
	if avg := mon.WindowAverage(); avg < float64(time.Microsecond) || avg > float64(9*time.Microsecond) {
		t.Fatalf("window average %v outside recorded range", time.Duration(avg))
	}
}
