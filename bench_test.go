package flood

// One Go benchmark per paper artifact (table/figure). Each benchmark drives
// the corresponding experiment from internal/bench at a reduced scale; run
// cmd/floodbench with -scale for full-size reproductions. The benchmark
// output (stderr tables) is the regenerated artifact; ns/op reflects the
// end-to-end experiment cost, not a single query.

import (
	"io"
	"testing"

	"flood/internal/bench"
	"flood/internal/dataset"
	"flood/internal/workload"
)

func benchCfg(out io.Writer) bench.Config {
	return bench.Config{
		Scale:              30_000,
		Queries:            40,
		Seed:               2020,
		CalibrationLayouts: 3,
		PageSizes:          []int{1024},
		Fast:               true,
		Out:                out,
	}.WithDefaults()
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		// Reports go to the CLI (cmd/floodbench); benchmarks only time
		// the experiment.
		if err := e.Run(benchCfg(io.Discard)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Datasets(b *testing.B)     { runExperiment(b, "table1") }
func BenchmarkFig5ScanWeight(b *testing.B)     { runExperiment(b, "fig5") }
func BenchmarkFig7Overall(b *testing.B)        { runExperiment(b, "fig7") }
func BenchmarkFig8Pareto(b *testing.B)         { runExperiment(b, "fig8") }
func BenchmarkFig9Workloads(b *testing.B)      { runExperiment(b, "fig9") }
func BenchmarkFig10Dynamic(b *testing.B)       { runExperiment(b, "fig10") }
func BenchmarkFig11Ablation(b *testing.B)      { runExperiment(b, "fig11") }
func BenchmarkFig12DatasetSize(b *testing.B)   { runExperiment(b, "fig12a") }
func BenchmarkFig12Selectivity(b *testing.B)   { runExperiment(b, "fig12b") }
func BenchmarkFig13Dimensions(b *testing.B)    { runExperiment(b, "fig13") }
func BenchmarkFig14CostTradeoff(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFig15SampleRecords(b *testing.B) { runExperiment(b, "fig15") }
func BenchmarkFig16SampleQueries(b *testing.B) { runExperiment(b, "fig16") }
func BenchmarkFig17PerCellModels(b *testing.B) { runExperiment(b, "fig17a") }
func BenchmarkFig17DeltaTradeoff(b *testing.B) { runExperiment(b, "fig17b") }
func BenchmarkTable2Breakdown(b *testing.B)    { runExperiment(b, "table2") }
func BenchmarkTable3Robustness(b *testing.B)   { runExperiment(b, "table3") }
func BenchmarkTable4Creation(b *testing.B)     { runExperiment(b, "table4") }

// BenchmarkQueryFlood measures steady-state per-query latency of a learned
// index on the TPC-H workload — the unit the paper's figures report.
func BenchmarkQueryFlood(b *testing.B) { benchQuery(b, "") }

// BenchmarkQueryClustered is the per-query latency of the strongest
// single-dimensional baseline on the same workload.
func BenchmarkQueryClustered(b *testing.B) { benchQuery(b, Clustered) }

// BenchmarkQueryFullScan is the per-query latency of a full scan on the same
// workload.
func BenchmarkQueryFullScan(b *testing.B) { benchQuery(b, FullScan) }

func benchQuery(b *testing.B, kind BaselineKind) {
	ds := dataset.TPCH(100_000, 2020)
	queries := workload.Standard(ds, 64, 2021)
	var idx Index
	var err error
	if kind == "" {
		idx, err = Build(ds.Table, queries, &Options{CalibrationLayouts: 3, GDSteps: 8, Seed: 1})
	} else {
		idx, err = BuildBaseline(kind, ds.Table, BaselineOptions{})
	}
	if err != nil {
		b.Fatal(err)
	}
	agg := NewCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Reset()
		idx.Execute(queries[i%len(queries)], agg)
	}
}
