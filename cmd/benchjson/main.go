// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark runs can be archived (BENCH_scan.json)
// and diffed across commits by CI and future PRs.
//
// Usage:
//
//	go test ./internal/core -bench X -benchmem -run '^$' | go run ./cmd/benchjson > BENCH_scan.json
//
// With -serve FILE, the serving benchmark document written by floodload
// (BENCH_serve.json) is embedded alongside the parsed microbenchmarks, so
// one merged document carries both scan and serving numbers:
//
//	... | go run ./cmd/benchjson -serve BENCH_serve.json > BENCH_all.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Serve embeds a floodload serving report (-serve FILE), verbatim.
	Serve json.RawMessage `json:"serve,omitempty"`
}

func main() {
	servePath := flag.String("serve", "", "embed this floodload BENCH_serve.json document in the output")
	flag.Parse()
	var rep Report
	if *servePath != "" {
		raw, err := os.ReadFile(*servePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if !json.Valid(raw) {
			fmt.Fprintf(os.Stderr, "benchjson: %s is not valid JSON\n", *servePath)
			os.Exit(1)
		}
		rep.Serve = json.RawMessage(raw)
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses e.g.
//
//	BenchmarkResidualFilterScan-8   25027   49475 ns/op   0 B/op   0 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Benchmark{}, false
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	b := Benchmark{Name: name, Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		}
	}
	return b, true
}
