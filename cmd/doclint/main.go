// Command doclint fails when a package exports identifiers without doc
// comments, keeping `go doc flood` coherent as the API grows. It is the lint
// step behind `make docs` and the CI docs gate.
//
// Usage:
//
//	go run ./cmd/doclint [package-dir ...]
//
// With no arguments the current directory is linted. For every exported
// top-level type, function, method, constant, and variable, either the
// declaration or its enclosing declaration group must carry a doc comment;
// each package must also have a package comment. Test files are ignored.
// Findings print as file:line: messages and the exit status is 1 when any
// exist.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	var findings []finding
	for _, dir := range dirs {
		fs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos.Filename != findings[j].pos.Filename {
			return findings[i].pos.Filename < findings[j].pos.Filename
		}
		return findings[i].pos.Line < findings[j].pos.Line
	})
	for _, f := range findings {
		fmt.Printf("%s:%d: %s\n", f.pos.Filename, f.pos.Line, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifier(s)\n", len(findings))
		os.Exit(1)
	}
}

type finding struct {
	pos token.Position
	msg string
}

// lintDir parses one directory's non-test files and reports undocumented
// exported identifiers.
func lintDir(dir string) ([]finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []finding
	for _, pkg := range pkgs {
		out = append(out, lintPackage(fset, pkg)...)
	}
	return out, nil
}

func lintPackage(fset *token.FileSet, pkg *ast.Package) []finding {
	var out []finding
	hasPkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		// Anchor the finding to the lexically first file for a stable,
		// clickable location.
		names := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		out = append(out, finding{
			pos: fset.Position(pkg.Files[names[0]].Package),
			msg: fmt.Sprintf("package %s has no package comment", pkg.Name),
		})
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			out = append(out, lintDecl(fset, decl)...)
		}
	}
	return out
}

func lintDecl(fset *token.FileSet, decl ast.Decl) []finding {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Doc != nil || !d.Name.IsExported() || isExportedMethodOfUnexported(d) {
			return nil
		}
		kind := "function"
		name := d.Name.Name
		if d.Recv != nil {
			kind = "method"
			name = recvTypeName(d.Recv) + "." + name
		}
		return []finding{{fset.Position(d.Pos()), fmt.Sprintf("exported %s %s is undocumented", kind, name)}}
	case *ast.GenDecl:
		var out []finding
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
					out = append(out, finding{fset.Position(s.Pos()),
						fmt.Sprintf("exported type %s is undocumented", s.Name.Name)})
				}
			case *ast.ValueSpec:
				// A doc comment on the const/var group covers its members,
				// matching idiomatic grouped declarations.
				if s.Doc != nil || s.Comment != nil || d.Doc != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						out = append(out, finding{fset.Position(n.Pos()),
							fmt.Sprintf("exported %s %s is undocumented", kindOf(d.Tok), n.Name)})
					}
				}
			}
		}
		return out
	}
	return nil
}

// isExportedMethodOfUnexported reports whether d is a method on an
// unexported receiver type; such methods never surface in go doc, so they
// are exempt.
func isExportedMethodOfUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil {
		return false
	}
	name := recvTypeName(d.Recv)
	return name != "" && !ast.IsExported(name)
}

func recvTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "constant"
	}
	return "variable"
}
