// Command floodbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	floodbench -list
//	floodbench -experiment fig7 -scale 500000
//	floodbench -experiment all -fast
//
// Each experiment prints the same rows/series as the corresponding paper
// artifact; see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flood/internal/bench"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		exp     = flag.String("experiment", "", "experiment ID to run, or \"all\"")
		scale   = flag.Int("scale", 0, "base dataset rows (default 150000)")
		queries = flag.Int("queries", 0, "queries per workload (default 120)")
		seed    = flag.Int64("seed", 0, "random seed (default 2020)")
		fast    = flag.Bool("fast", false, "trim sweeps for a quick smoke run")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := bench.Config{
		Scale:   *scale,
		Queries: *queries,
		Seed:    *seed,
		Fast:    *fast,
		Out:     os.Stdout,
	}

	runOne := func(e bench.Experiment) {
		fmt.Fprintf(os.Stderr, "[floodbench] running %s: %s\n", e.ID, e.Title)
		t0 := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "[floodbench] %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[floodbench] %s done in %v\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range bench.Experiments() {
			runOne(e)
		}
		return
	}
	e, ok := bench.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	runOne(e)
}
