// Command floodcli builds a learned index over a CSV file and runs SQL
// aggregations against it.
//
//	floodcli -csv orders.csv -train "day BETWEEN 0 AND 14; store = 3" \
//	         -query "SELECT COUNT(*) FROM t WHERE day BETWEEN 100 AND 113 AND store = 7"
//
// Columns are typed automatically: integer columns load directly, decimal
// columns are scaled to integers (§7.1), and string columns are
// dictionary-encoded with order-preserving codes. The -train flag lists
// sample predicates (semicolon-separated WHERE clauses) describing the
// expected workload; Flood learns its layout from them. The -timeout flag
// bounds query execution: past the deadline the scan stops cooperatively
// and the command reports how far it got.
//
// A learned index can be persisted and served without rebuilding: -save
// writes a checksummed snapshot (atomic temp-file + rename + fsync), and
// -load restores one — including its typed layout and models — so later
// runs skip both the CSV parse and layout learning:
//
//	floodcli -csv orders.csv -train "day BETWEEN 0 AND 14" -save orders.flood
//	floodcli -load orders.flood -query "SELECT COUNT(*) FROM t WHERE day < 7"
//
// With -addr, floodcli becomes a client for a running floodserver instead
// of building anything locally: -query runs one statement remotely, and
// without -query statements are read line by line from stdin:
//
//	floodcli -addr http://localhost:8080 -query "SELECT COUNT(*) FROM t WHERE day < 7"
//	floodcli -addr http://localhost:8080   # then type statements, one per line
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	flood "flood"
	"flood/floodsql"
	"flood/internal/encode"
)

func main() {
	var (
		csvPath  = flag.String("csv", "", "input CSV file with a header row")
		train    = flag.String("train", "", "semicolon-separated sample WHERE clauses describing the workload")
		query    = flag.String("query", "", "SQL statement to run (SELECT COUNT/SUM/MIN ... WHERE ...)")
		seed     = flag.Int64("seed", 1, "random seed for layout learning")
		timeout  = flag.Duration("timeout", 0, "query execution deadline (e.g. 500ms; 0 = none); a query over deadline returns its partial result and an error")
		savePath = flag.String("save", "", "write the built index to this snapshot file (atomic write + fsync)")
		loadPath = flag.String("load", "", "load a snapshot written by -save instead of building from -csv")
		addr     = flag.String("addr", "", "run statements against a floodserver at this base URL instead of a local index")
	)
	flag.Parse()
	if *addr != "" {
		if err := runRemote(*addr, *query, *timeout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if (*csvPath == "" && *loadPath == "") || (*query == "" && *savePath == "") {
		fmt.Fprintln(os.Stderr, "usage: floodcli -csv FILE [-train \"pred; pred\"] [-save SNAP] -query SQL\n       floodcli -load SNAP -query SQL")
		os.Exit(2)
	}

	var (
		idx flood.Index
		tbl *flood.Table
	)
	if *loadPath != "" {
		t0 := time.Now()
		learned, rep, err := flood.LoadFileWithReport(*loadPath)
		if err != nil {
			log.Fatalf("loading snapshot %s: %v", *loadPath, err)
		}
		for _, w := range rep.Warnings {
			fmt.Fprintf(os.Stderr, "recovery: %s\n", w)
		}
		tbl = learned.Table()
		idx = learned
		fmt.Printf("loaded snapshot %s: %d rows x %d columns, layout %s in %v\n",
			*loadPath, tbl.NumRows(), tbl.NumCols(), learned.Layout(), time.Since(t0).Round(time.Millisecond))
	} else {
		var report string
		var err error
		tbl, report, err = loadCSV(*csvPath)
		if err != nil {
			log.Fatalf("loading %s: %v", *csvPath, err)
		}
		fmt.Printf("loaded %d rows x %d columns (%s)\n", tbl.NumRows(), tbl.NumCols(), report)

		if *train == "" {
			fmt.Println("no -train workload: using a full-scan execution plan")
			idx, err = flood.BuildBaseline(flood.FullScan, tbl, flood.BaselineOptions{})
			if err != nil {
				log.Fatal(err)
			}
		} else {
			queries, err := parseTrain(*train, tbl)
			if err != nil {
				log.Fatalf("parsing -train: %v", err)
			}
			t0 := time.Now()
			learned, err := flood.Build(tbl, queries, &flood.Options{Seed: *seed})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("learned layout %s in %v\n", learned.Layout(), time.Since(t0).Round(time.Millisecond))
			idx = learned
		}
	}

	if *savePath != "" {
		learned, ok := idx.(*flood.Flood)
		if !ok {
			log.Fatal("-save needs a learned index: provide a -train workload")
		}
		if err := learned.SaveFile(*savePath); err != nil {
			log.Fatalf("saving snapshot: %v", err)
		}
		fi, err := os.Stat(*savePath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved snapshot %s (%d bytes, checksummed)\n", *savePath, fi.Size())
		if *query == "" {
			return
		}
	}

	st, err := floodsql.Parse(*query, tbl)
	if err != nil {
		log.Fatalf("parsing -query: %v", err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	v, stats, err := st.RunContext(ctx, idx)
	if errors.Is(err, flood.ErrCanceled) {
		log.Fatalf("query exceeded -timeout %v after scanning %d rows", *timeout, stats.Scanned)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n  = %d\n  (%v, scanned %d of %d rows)\n",
		*query, v, stats.Total.Round(time.Microsecond), stats.Scanned, tbl.NumRows())
}

// runRemote speaks to a floodserver: one statement with -query, or a
// line-per-statement loop over stdin without it.
func runRemote(addr, query string, timeout time.Duration) error {
	client := &http.Client{}
	run := func(sql string) error {
		req := struct {
			SQL           string `json:"sql"`
			TimeoutMillis int64  `json:"timeout_ms,omitempty"`
		}{SQL: sql, TimeoutMillis: timeout.Milliseconds()}
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := client.Post(addr+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			json.NewDecoder(resp.Body).Decode(&e)
			if e.Error == "" {
				e.Error = resp.Status
			}
			return fmt.Errorf("server: %s", e.Error)
		}
		var r struct {
			Kind      string   `json:"kind"`
			Value     int64    `json:"value"`
			Typed     any      `json:"typed"`
			Matched   int64    `json:"matched"`
			Cached    bool     `json:"cached"`
			Columns   []string `json:"columns"`
			Rows      [][]any  `json:"rows"`
			Truncated bool     `json:"truncated"`
			Affected  int64    `json:"affected"`
			ElapsedUS int64    `json:"elapsed_us"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			return err
		}
		switch r.Kind {
		case "agg":
			note := ""
			if r.Cached {
				note = ", cached"
			}
			fmt.Printf("  = %v (matched %d rows in %dµs%s)\n", r.Typed, r.Matched, r.ElapsedUS, note)
		case "rows":
			fmt.Println("  " + strings.Join(r.Columns, "\t"))
			for _, row := range r.Rows {
				parts := make([]string, len(row))
				for i, v := range row {
					parts[i] = fmt.Sprint(v)
				}
				fmt.Println("  " + strings.Join(parts, "\t"))
			}
			if r.Truncated {
				fmt.Printf("  (truncated at %d rows)\n", len(r.Rows))
			}
		case "exec":
			fmt.Printf("  %d rows affected (%dµs)\n", r.Affected, r.ElapsedUS)
		default:
			fmt.Printf("  %+v\n", r)
		}
		return nil
	}
	dispatch := func(sql string) error {
		if sql == `\stats` {
			return printServerStats(client, addr)
		}
		return run(sql)
	}
	if query != "" {
		fmt.Println(query)
		return dispatch(query)
	}
	fmt.Fprintf(os.Stderr, "connected to %s; one statement per line (\\stats for server stats, ctrl-D to exit)\n", addr)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		sql := strings.TrimSpace(sc.Text())
		if sql == "" {
			continue
		}
		if err := dispatch(sql); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
	return sc.Err()
}

// printServerStats fetches GET /stats and renders the serving counters, the
// index lifecycle, and — on a sharded server — the per-shard block.
func printServerStats(client *http.Client, addr string) error {
	resp, err := client.Get(addr + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: %s", resp.Status)
	}
	var st struct {
		Requests    int64 `json:"requests"`
		AggQueries  int64 `json:"agg_queries"`
		Selects     int64 `json:"selects"`
		Mutations   int64 `json:"mutations"`
		CacheHits   int64 `json:"cache_hits"`
		CacheMisses int64 `json:"cache_misses"`
		IndexEpoch  int64 `json:"index_epoch"`
		BaseRows    int64 `json:"base_rows"`
		PendingRows int64 `json:"pending_rows"`
		Relearns    int64 `json:"relearns"`
		Merges      int64 `json:"merges"`
		Rebuilding  bool  `json:"rebuilding"`
		Shards      []struct {
			Shard    int   `json:"shard"`
			Lo       int64 `json:"lo"`
			Hi       int64 `json:"hi"`
			Rows     int64 `json:"rows"`
			Pending  int64 `json:"pending"`
			Epoch    int64 `json:"epoch"`
			Relearns int64 `json:"relearns"`
			Queries  int64 `json:"queries"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Printf("  requests %d (agg %d, select %d, mutate %d), cache %d/%d hit\n",
		st.Requests, st.AggQueries, st.Selects, st.Mutations,
		st.CacheHits, st.CacheHits+st.CacheMisses)
	fmt.Printf("  index: epoch %d, %d rows (+%d pending), %d relearns, %d merges, rebuilding=%v\n",
		st.IndexEpoch, st.BaseRows, st.PendingRows, st.Relearns, st.Merges, st.Rebuilding)
	for _, sh := range st.Shards {
		fmt.Printf("  shard %d [%d, %d]: %d rows (+%d pending), epoch %d, %d relearns, %d queries\n",
			sh.Shard, sh.Lo, sh.Hi, sh.Rows, sh.Pending, sh.Epoch, sh.Relearns, sh.Queries)
	}
	return nil
}

// parseTrain turns "pred; pred; ..." into sample queries by parsing each
// predicate as a WHERE clause of a COUNT statement.
func parseTrain(train string, tbl *flood.Table) ([]flood.Query, error) {
	var out []flood.Query
	for _, pred := range strings.Split(train, ";") {
		pred = strings.TrimSpace(pred)
		if pred == "" {
			continue
		}
		st, err := floodsql.Parse("SELECT COUNT(*) FROM t WHERE "+pred, tbl)
		if err != nil {
			return nil, fmt.Errorf("predicate %q: %w", pred, err)
		}
		out = append(out, st.Disjuncts...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no usable predicates in %q", train)
	}
	return out, nil
}

// loadCSV reads a headered CSV and encodes every column to int64 per §7.1.
func loadCSV(path string) (*flood.Table, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.ReuseRecord = true
	header, err := r.Read()
	if err != nil {
		return nil, "", fmt.Errorf("reading header: %w", err)
	}
	names := append([]string(nil), header...)
	raw := make([][]string, len(names))
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, "", err
		}
		if len(rec) != len(names) {
			return nil, "", fmt.Errorf("row has %d fields, header has %d", len(rec), len(names))
		}
		for c, v := range rec {
			raw[c] = append(raw[c], strings.TrimSpace(v))
		}
	}
	if len(raw[0]) == 0 {
		return nil, "", fmt.Errorf("no data rows")
	}
	cols := make([][]int64, len(names))
	kinds := make([]string, len(names))
	for c := range raw {
		col, kind, err := encodeColumn(raw[c])
		if err != nil {
			return nil, "", fmt.Errorf("column %q: %w", names[c], err)
		}
		cols[c] = col
		kinds[c] = fmt.Sprintf("%s:%s", names[c], kind)
	}
	tbl, err := flood.NewTable(names, cols)
	if err != nil {
		return nil, "", err
	}
	return tbl, strings.Join(kinds, " "), nil
}

// encodeColumn picks the §7.1 encoding: int64 directly, decimal-scaled
// float, or order-preserving dictionary codes.
func encodeColumn(vals []string) ([]int64, string, error) {
	// Try integers.
	ints := make([]int64, len(vals))
	ok := true
	for i, s := range vals {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			ok = false
			break
		}
		ints[i] = v
	}
	if ok {
		return ints, "int", nil
	}
	// Try decimals.
	floats := make([]float64, len(vals))
	ok = true
	for i, s := range vals {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			ok = false
			break
		}
		floats[i] = v
	}
	if ok {
		scaler, err := encode.InferDecimalScaler(floats, 6)
		if err != nil {
			return nil, "", err
		}
		col, err := scaler.Encode(floats)
		if err != nil {
			return nil, "", err
		}
		return col, fmt.Sprintf("decimal(%d)", scaler.Digits()), nil
	}
	// Fall back to a dictionary.
	dict := encode.BuildDictionary(vals)
	col, err := dict.Encode(vals)
	if err != nil {
		return nil, "", err
	}
	return col, fmt.Sprintf("dict(%d)", dict.Len()), nil
}
