// Command floodload drives an open-loop workload against a floodserver and
// reports coordinated-omission-safe latency quantiles, throughput, shed
// rate, and cache hit rate as JSON (see docs/SERVING.md).
//
// The arrival schedule is fixed (request i is due at start + i/qps) and
// latency is measured from the scheduled time, so a slow server is charged
// its backlog instead of quietly slowing the offered load. Query shapes
// are drawn over a predicate column's domain (fetched from GET /schema)
// with zipfian, hotspot, or uniform skew; hot shapes repeat as identical
// SQL, exercising the server's result cache like real dashboard traffic.
//
//	floodload -addr http://localhost:8080 -qps 2000 -duration 30s \
//	          -dist zipfian -column price -out BENCH_serve.json
//
// With -inprocess N, floodload starts its own floodserver over a fresh
// N-row sales dataset on a loopback listener and drives it through real
// HTTP — the one-command form used by `make bench-serve`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	flood "flood"
	"flood/datagen"
	"flood/internal/loadgen"
	"flood/internal/server"
)

// output is the BENCH_serve.json document: the runner's report plus the
// run's configuration and the server-side stats delta.
type output struct {
	// Config echoes the run parameters.
	Config struct {
		Addr     string  `json:"addr"`
		QPS      float64 `json:"qps"`
		Duration string  `json:"duration"`
		Dist     string  `json:"dist"`
		Column   string  `json:"column"`
		Workers  int     `json:"workers"`
		Warmup   string  `json:"warmup"`
		Rows     int     `json:"rows,omitempty"`
		Shards   int     `json:"shards,omitempty"`
	} `json:"config"`
	// Report is the client-side measurement.
	Report loadgen.Report `json:"report"`
	// Server is the server-side stats delta across the run (when the
	// /stats endpoint was reachable).
	Server *server.Stats `json:"server,omitempty"`
	// ShardSkew is the max/mean ratio of per-shard queries served during
	// the run: 1.0 is perfectly balanced routing, k is every query landing
	// on one of k shards. Absent for an unsharded server.
	ShardSkew float64 `json:"shard_skew,omitempty"`
	// Sharded is the -compare-shards repeat of the same run against an
	// in-process sharded server, for side-by-side flat-vs-sharded latency.
	Sharded *output `json:"sharded,omitempty"`
}

// runParams carries the measurement knobs through a single load run.
type runParams struct {
	qps           float64
	duration      time.Duration
	warmup        time.Duration
	workers       int
	dist          string
	column        string
	buckets, span int
	seed, timeout int64
	shards        int
}

// runLoad drives one complete measurement against base: wait for readiness,
// fetch the schema, draw shapes, run the open-loop schedule, and delta the
// server-side stats.
func runLoad(ctx context.Context, base string, p runParams) output {
	client := &loadgen.Client{
		Base:          base,
		TimeoutMillis: p.timeout,
		HTTP: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        p.workers * 2,
			MaxIdleConnsPerHost: p.workers * 2,
		}},
	}
	if err := client.WaitReady(ctx, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	schema, err := client.Schema(ctx)
	if err != nil {
		log.Fatalf("fetching /schema: %v", err)
	}
	col, err := pickColumn(schema, p.column)
	if err != nil {
		log.Fatal(err)
	}

	total := int(p.qps * p.duration.Seconds() * 1.1)
	if total < 1024 {
		total = 1024
	}
	shapes, err := loadgen.Shapes(loadgen.ShapeConfig{
		Table: "t", Column: col.Name, Min: col.Min, Max: col.Max,
		Buckets: p.buckets, SpanBuckets: p.span,
		Dist: loadgen.Dist(p.dist), Seed: p.seed,
	}, total)
	if err != nil {
		log.Fatal(err)
	}

	before, statsOK := serverStats(ctx, client)
	log.Printf("driving %s: %.0f qps for %v (%s over %s [%d,%d])",
		base, p.qps, p.duration, p.dist, col.Name, col.Min, col.Max)
	rep, err := loadgen.Run(ctx, &loadgen.RunConfig{
		QPS: p.qps, Duration: p.duration, Workers: p.workers, Warmup: p.warmup,
	}, shapes, client.Query)
	if err != nil {
		log.Fatal(err)
	}

	var doc output
	doc.Config.Addr = base
	doc.Config.QPS = p.qps
	doc.Config.Duration = p.duration.String()
	doc.Config.Dist = p.dist
	doc.Config.Column = col.Name
	doc.Config.Workers = p.workers
	doc.Config.Warmup = p.warmup.String()
	doc.Config.Rows = schema.Rows
	doc.Config.Shards = p.shards
	doc.Report = rep
	if after, ok := serverStats(ctx, client); ok && statsOK {
		delta := statsDelta(before, after)
		doc.Server = &delta
		doc.ShardSkew = shardSkew(delta.Shards)
		if doc.ShardSkew > 0 {
			log.Printf("shard skew: %.2f (max/mean of per-shard queries across %d shards)",
				doc.ShardSkew, len(delta.Shards))
		}
	}
	log.Printf("run done: %d sent, %.0f qps achieved, p50 %dµs p99 %dµs, shed %.2f%%, cache hit %.1f%%",
		rep.Sent, rep.Throughput, rep.P50, rep.P99, 100*rep.ShedRate, 100*rep.CacheHitRate)
	return doc
}

func main() {
	var (
		addr      = flag.String("addr", "", "floodserver base URL, e.g. http://localhost:8080")
		inprocess = flag.Int("inprocess", 0, "start an in-process floodserver over a sales dataset with this many rows instead of -addr")
		shardsN   = flag.Int("shards", 0, "partition the in-process store into N range shards (0 = flat; -inprocess only)")
		compare   = flag.Int("compare-shards", 0, "after the primary run, repeat it against an in-process N-shard server and embed the result as .sharded (-inprocess only)")
		qps       = flag.Float64("qps", 1000, "open-loop arrival rate")
		duration  = flag.Duration("duration", 10*time.Second, "scheduled load duration")
		workers   = flag.Int("workers", 64, "client-side in-flight bound")
		warmup    = flag.Duration("warmup", time.Second, "leading portion excluded from latency quantiles")
		dist      = flag.String("dist", "zipfian", "shape distribution: zipfian, hotspot, uniform")
		column    = flag.String("column", "", "predicate column (default: first int64 column from /schema)")
		buckets   = flag.Int("buckets", 256, "domain buckets for shape alignment")
		span      = flag.Int("span", 4, "buckets covered by one predicate")
		seed      = flag.Int64("seed", 1, "shape-drawing seed")
		timeout   = flag.Int64("timeout-ms", 2000, "per-request timeout_ms sent to the server")
		out       = flag.String("out", "", "write the JSON report here (default stdout)")
		srvWindow = flag.Duration("server-batch-window", time.Millisecond, "in-process server's micro-batch gather window (-inprocess only)")
		srvCache  = flag.Int("server-cache", 0, "in-process server's result-cache entries (0 = default, negative disables; -inprocess only)")
	)
	flag.Parse()
	if *addr == "" && *inprocess <= 0 {
		fmt.Fprintln(os.Stderr, "usage: floodload -addr URL [flags]\n       floodload -inprocess ROWS [flags]")
		os.Exit(2)
	}

	if *compare > 0 && *inprocess <= 0 {
		log.Fatal("-compare-shards needs -inprocess (it builds its own sharded server)")
	}

	ctx := context.Background()
	p := runParams{
		qps: *qps, duration: *duration, warmup: *warmup, workers: *workers,
		dist: *dist, column: *column, buckets: *buckets, span: *span,
		seed: *seed, timeout: *timeout, shards: *shardsN,
	}
	cfg := &server.Config{BatchWindow: *srvWindow, CacheEntries: *srvCache}

	base := *addr
	if *inprocess > 0 {
		hs, srv := startInProcess(*inprocess, *shardsN, *seed, cfg)
		defer func() {
			hs.Close()
			if err := srv.Close(); err != nil {
				log.Printf("server close: %v", err)
			}
		}()
		base = hs.URL
	}

	doc := runLoad(ctx, base, p)

	if *compare > 0 {
		hs, srv := startInProcess(*inprocess, *compare, *seed, cfg)
		ps := p
		ps.shards = *compare
		sharded := runLoad(ctx, hs.URL, ps)
		doc.Sharded = &sharded
		hs.Close()
		if err := srv.Close(); err != nil {
			log.Printf("sharded server close: %v", err)
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
}

// startInProcess builds a sales index — flat, or sharded when shards > 0 —
// and serves it on a loopback listener (real HTTP, in this process).
func startInProcess(rows, shards int, seed int64, cfg *server.Config) (*httptest.Server, *server.Server) {
	ds := datagen.Sales(rows, seed)
	queries := datagen.StandardWorkload(ds, 40, seed+1)
	t0 := time.Now()
	var srv *server.Server
	if shards > 0 {
		sh, err := flood.NewSharded(ds.Table, queries,
			&flood.ShardedOptions{Shards: shards, Build: &flood.Options{Seed: seed + 2}})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("built sales (%d rows): %d shards split on %s in %v",
			rows, sh.NumShards(), ds.Table.Name(sh.SplitDim()), time.Since(t0).Round(time.Millisecond))
		srv = server.NewSharded(sh, cfg)
	} else {
		idx, err := flood.Build(ds.Table, queries, &flood.Options{Seed: seed + 2})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("built sales (%d rows): layout %s in %v", rows, idx.Layout(), time.Since(t0).Round(time.Millisecond))
		srv = server.New(flood.NewAdaptiveIndex(idx, nil), cfg)
	}
	hs := httptest.NewServer(srv.Handler())
	return hs, srv
}

// pickColumn resolves the predicate column: the named one, or the first
// int64 column with a non-degenerate domain.
func pickColumn(schema server.SchemaResponse, name string) (server.ColumnInfo, error) {
	if name != "" {
		for _, c := range schema.Columns {
			if c.Name == name {
				return c, nil
			}
		}
		return server.ColumnInfo{}, fmt.Errorf("column %q not in server schema", name)
	}
	for _, c := range schema.Columns {
		if c.Kind == "int64" && c.Max > c.Min {
			return c, nil
		}
	}
	for _, c := range schema.Columns {
		if c.Max > c.Min {
			return c, nil
		}
	}
	return server.ColumnInfo{}, fmt.Errorf("no usable predicate column in server schema")
}

func serverStats(ctx context.Context, c *loadgen.Client) (server.Stats, bool) {
	st, err := c.Stats(ctx)
	if err != nil {
		log.Printf("fetching /stats: %v", err)
		return server.Stats{}, false
	}
	return st, true
}

// shardSkew is the max/mean ratio of per-shard queries in a stats delta's
// shard block (0 when unsharded or no shard saw a query).
func shardSkew(shards []server.ShardInfo) float64 {
	if len(shards) == 0 {
		return 0
	}
	var sum, max int64
	for _, s := range shards {
		sum += s.Queries
		if s.Queries > max {
			max = s.Queries
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(len(shards)) / float64(sum)
}

// statsDelta subtracts counter fields so the report shows only this run's
// server-side activity; gauges (in-flight, epoch, rows) keep their final
// value. Per-shard query/relearn/merge counters are deltaed the same way
// so the skew reflects only this run's routing.
func statsDelta(before, after server.Stats) server.Stats {
	d := after
	d.Requests -= before.Requests
	d.AggQueries -= before.AggQueries
	d.Selects -= before.Selects
	d.Mutations -= before.Mutations
	d.InsertedRows -= before.InsertedRows
	d.Shed -= before.Shed
	d.Timeouts -= before.Timeouts
	d.Errors -= before.Errors
	d.QueuedRequests -= before.QueuedRequests
	d.QueueWaitMicros -= before.QueueWaitMicros
	d.Batches -= before.Batches
	d.BatchedQueries -= before.BatchedQueries
	d.MultiBatches -= before.MultiBatches
	d.CacheHits -= before.CacheHits
	d.CacheMisses -= before.CacheMisses
	if len(before.Shards) == len(after.Shards) {
		d.Shards = append([]server.ShardInfo(nil), after.Shards...)
		for i := range d.Shards {
			d.Shards[i].Queries -= before.Shards[i].Queries
			d.Shards[i].Relearns -= before.Shards[i].Relearns
			d.Shards[i].Merges -= before.Shards[i].Merges
		}
	}
	if d.Batches > 0 {
		d.AvgBatch = float64(d.BatchedQueries) / float64(d.Batches)
	} else {
		d.AvgBatch = 0
	}
	return d
}
