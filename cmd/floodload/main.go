// Command floodload drives an open-loop workload against a floodserver and
// reports coordinated-omission-safe latency quantiles, throughput, shed
// rate, and cache hit rate as JSON (see docs/SERVING.md).
//
// The arrival schedule is fixed (request i is due at start + i/qps) and
// latency is measured from the scheduled time, so a slow server is charged
// its backlog instead of quietly slowing the offered load. Query shapes
// are drawn over a predicate column's domain (fetched from GET /schema)
// with zipfian, hotspot, or uniform skew; hot shapes repeat as identical
// SQL, exercising the server's result cache like real dashboard traffic.
//
//	floodload -addr http://localhost:8080 -qps 2000 -duration 30s \
//	          -dist zipfian -column price -out BENCH_serve.json
//
// With -inprocess N, floodload starts its own floodserver over a fresh
// N-row sales dataset on a loopback listener and drives it through real
// HTTP — the one-command form used by `make bench-serve`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	flood "flood"
	"flood/datagen"
	"flood/internal/loadgen"
	"flood/internal/server"
)

// output is the BENCH_serve.json document: the runner's report plus the
// run's configuration and the server-side stats delta.
type output struct {
	// Config echoes the run parameters.
	Config struct {
		Addr     string  `json:"addr"`
		QPS      float64 `json:"qps"`
		Duration string  `json:"duration"`
		Dist     string  `json:"dist"`
		Column   string  `json:"column"`
		Workers  int     `json:"workers"`
		Warmup   string  `json:"warmup"`
		Rows     int     `json:"rows,omitempty"`
	} `json:"config"`
	// Report is the client-side measurement.
	Report loadgen.Report `json:"report"`
	// Server is the server-side stats delta across the run (when the
	// /stats endpoint was reachable).
	Server *server.Stats `json:"server,omitempty"`
}

func main() {
	var (
		addr      = flag.String("addr", "", "floodserver base URL, e.g. http://localhost:8080")
		inprocess = flag.Int("inprocess", 0, "start an in-process floodserver over a sales dataset with this many rows instead of -addr")
		qps       = flag.Float64("qps", 1000, "open-loop arrival rate")
		duration  = flag.Duration("duration", 10*time.Second, "scheduled load duration")
		workers   = flag.Int("workers", 64, "client-side in-flight bound")
		warmup    = flag.Duration("warmup", time.Second, "leading portion excluded from latency quantiles")
		dist      = flag.String("dist", "zipfian", "shape distribution: zipfian, hotspot, uniform")
		column    = flag.String("column", "", "predicate column (default: first int64 column from /schema)")
		buckets   = flag.Int("buckets", 256, "domain buckets for shape alignment")
		span      = flag.Int("span", 4, "buckets covered by one predicate")
		seed      = flag.Int64("seed", 1, "shape-drawing seed")
		timeout   = flag.Int64("timeout-ms", 2000, "per-request timeout_ms sent to the server")
		out       = flag.String("out", "", "write the JSON report here (default stdout)")
		srvWindow = flag.Duration("server-batch-window", time.Millisecond, "in-process server's micro-batch gather window (-inprocess only)")
		srvCache  = flag.Int("server-cache", 0, "in-process server's result-cache entries (0 = default, negative disables; -inprocess only)")
	)
	flag.Parse()
	if *addr == "" && *inprocess <= 0 {
		fmt.Fprintln(os.Stderr, "usage: floodload -addr URL [flags]\n       floodload -inprocess ROWS [flags]")
		os.Exit(2)
	}

	ctx := context.Background()
	base := *addr
	if *inprocess > 0 {
		hs, srv := startInProcess(*inprocess, *seed, &server.Config{
			BatchWindow:  *srvWindow,
			CacheEntries: *srvCache,
		})
		defer func() {
			hs.Close()
			if err := srv.Close(); err != nil {
				log.Printf("server close: %v", err)
			}
		}()
		base = hs.URL
	}

	client := &loadgen.Client{
		Base:          base,
		TimeoutMillis: *timeout,
		HTTP: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        *workers * 2,
			MaxIdleConnsPerHost: *workers * 2,
		}},
	}
	if err := client.WaitReady(ctx, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	schema, err := client.Schema(ctx)
	if err != nil {
		log.Fatalf("fetching /schema: %v", err)
	}
	col, err := pickColumn(schema, *column)
	if err != nil {
		log.Fatal(err)
	}

	total := int(*qps * duration.Seconds() * 1.1)
	if total < 1024 {
		total = 1024
	}
	shapes, err := loadgen.Shapes(loadgen.ShapeConfig{
		Table: "t", Column: col.Name, Min: col.Min, Max: col.Max,
		Buckets: *buckets, SpanBuckets: *span,
		Dist: loadgen.Dist(*dist), Seed: *seed,
	}, total)
	if err != nil {
		log.Fatal(err)
	}

	before, statsOK := serverStats(ctx, client)
	log.Printf("driving %s: %.0f qps for %v (%s over %s [%d,%d])",
		base, *qps, *duration, *dist, col.Name, col.Min, col.Max)
	rep, err := loadgen.Run(ctx, &loadgen.RunConfig{
		QPS: *qps, Duration: *duration, Workers: *workers, Warmup: *warmup,
	}, shapes, client.Query)
	if err != nil {
		log.Fatal(err)
	}

	var doc output
	doc.Config.Addr = base
	doc.Config.QPS = *qps
	doc.Config.Duration = duration.String()
	doc.Config.Dist = *dist
	doc.Config.Column = col.Name
	doc.Config.Workers = *workers
	doc.Config.Warmup = warmup.String()
	doc.Config.Rows = schema.Rows
	doc.Report = rep
	if after, ok := serverStats(ctx, client); ok && statsOK {
		delta := statsDelta(before, after)
		doc.Server = &delta
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("done: %d sent, %.0f qps achieved, p50 %dµs p99 %dµs, shed %.2f%%, cache hit %.1f%%",
		rep.Sent, rep.Throughput, rep.P50, rep.P99, 100*rep.ShedRate, 100*rep.CacheHitRate)
}

// startInProcess builds a sales index and serves it on a loopback listener
// (real HTTP, in this process).
func startInProcess(rows int, seed int64, cfg *server.Config) (*httptest.Server, *server.Server) {
	ds := datagen.Sales(rows, seed)
	queries := datagen.StandardWorkload(ds, 40, seed+1)
	t0 := time.Now()
	idx, err := flood.Build(ds.Table, queries, &flood.Options{Seed: seed + 2})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("built sales (%d rows): layout %s in %v", rows, idx.Layout(), time.Since(t0).Round(time.Millisecond))
	srv := server.New(flood.NewAdaptiveIndex(idx, nil), cfg)
	hs := httptest.NewServer(srv.Handler())
	return hs, srv
}

// pickColumn resolves the predicate column: the named one, or the first
// int64 column with a non-degenerate domain.
func pickColumn(schema server.SchemaResponse, name string) (server.ColumnInfo, error) {
	if name != "" {
		for _, c := range schema.Columns {
			if c.Name == name {
				return c, nil
			}
		}
		return server.ColumnInfo{}, fmt.Errorf("column %q not in server schema", name)
	}
	for _, c := range schema.Columns {
		if c.Kind == "int64" && c.Max > c.Min {
			return c, nil
		}
	}
	for _, c := range schema.Columns {
		if c.Max > c.Min {
			return c, nil
		}
	}
	return server.ColumnInfo{}, fmt.Errorf("no usable predicate column in server schema")
}

func serverStats(ctx context.Context, c *loadgen.Client) (server.Stats, bool) {
	st, err := c.Stats(ctx)
	if err != nil {
		log.Printf("fetching /stats: %v", err)
		return server.Stats{}, false
	}
	return st, true
}

// statsDelta subtracts counter fields so the report shows only this run's
// server-side activity; gauges (in-flight, epoch, rows) keep their final
// value.
func statsDelta(before, after server.Stats) server.Stats {
	d := after
	d.Requests -= before.Requests
	d.AggQueries -= before.AggQueries
	d.Selects -= before.Selects
	d.Mutations -= before.Mutations
	d.InsertedRows -= before.InsertedRows
	d.Shed -= before.Shed
	d.Timeouts -= before.Timeouts
	d.Errors -= before.Errors
	d.QueuedRequests -= before.QueuedRequests
	d.QueueWaitMicros -= before.QueueWaitMicros
	d.Batches -= before.Batches
	d.BatchedQueries -= before.BatchedQueries
	d.MultiBatches -= before.MultiBatches
	d.CacheHits -= before.CacheHits
	d.CacheMisses -= before.CacheMisses
	if d.Batches > 0 {
		d.AvgBatch = float64(d.BatchedQueries) / float64(d.Batches)
	} else {
		d.AvgBatch = 0
	}
	return d
}
