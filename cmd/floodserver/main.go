// Command floodserver serves floodsql over HTTP against a learned adaptive
// index, with micro-batched execution, admission control, per-request
// deadlines, and an epoch-keyed result cache (see docs/SERVING.md).
//
// The store comes from one of three places: a synthetic dataset built at
// startup (-dataset/-rows), a snapshot written by floodcli -save (-load),
// or a durable directory (-dir) that is opened if it exists and created
// otherwise — in durable mode every acknowledged write is WAL-fsynced and
// shutdown checkpoints before closing.
//
// -shards N partitions the store into N range shards with learned-CDF
// splits (see docs/SHARDING.md): queries prune to the shards their split-
// dimension predicate can touch, and GET /stats grows a per-shard block.
// A durable directory remembers its own partitioning — a dir with a shard
// manifest reopens sharded regardless of the flag.
//
//	floodserver -addr :8080 -dataset sales -rows 1000000
//	floodserver -addr :8080 -dataset sales -rows 1000000 -shards 4
//	floodserver -addr :8080 -load orders.flood
//	floodserver -addr :8080 -dataset sales -rows 100000 -dir /var/lib/flood
//
// Endpoints: POST /query, POST /insert, GET /schema, GET /stats,
// GET /healthz. SIGINT/SIGTERM triggers a graceful drain: the listener
// stops accepting, in-flight requests and gathered batches finish, and the
// store is checkpointed (durable) or closed (in-memory).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	flood "flood"
	"flood/datagen"
	"flood/internal/server"
	"flood/internal/shard"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		datasetName = flag.String("dataset", "sales", "synthetic dataset to build when no -load/-dir store exists (sales, tpch, osm, perfmon)")
		rows        = flag.Int("rows", 200000, "synthetic dataset row count")
		seed        = flag.Int64("seed", 1, "dataset and layout-learning seed")
		loadPath    = flag.String("load", "", "serve a snapshot written by floodcli -save")
		dir         = flag.String("dir", "", "durable directory: open if it has a snapshot, else create from the built/loaded index; writes are WAL-acknowledged")
		shards      = flag.Int("shards", 0, "partition the store into N range shards with learned-CDF splits (0 = flat; incompatible with -load)")
		window      = flag.Duration("batch-window", 250*time.Microsecond, "micro-batch gather window")
		batchMax    = flag.Int("batch-max", 64, "max queries per execution batch")
		inflight    = flag.Int("max-inflight", 256, "admission-control in-flight bound")
		queueWait   = flag.Duration("queue-wait", 2*time.Millisecond, "max admission queue wait before shedding with 429")
		cacheSize   = flag.Int("cache", 1024, "result cache entries (0 = default, negative disables)")
		reqTimeout  = flag.Duration("request-timeout", 5*time.Second, "per-request execution deadline")
		maxRows     = flag.Int("max-rows", 10000, "row cap for one SELECT response")
	)
	flag.Parse()

	cfg := &server.Config{
		BatchWindow:    *window,
		BatchMax:       *batchMax,
		MaxInFlight:    *inflight,
		QueueWait:      *queueWait,
		CacheEntries:   *cacheSize,
		RequestTimeout: *reqTimeout,
		MaxResultRows:  *maxRows,
	}

	srv, err := buildServer(*datasetName, *rows, *seed, *loadPath, *dir, *shards, cfg)
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("floodserver listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight requests finish, then
	// flush batches and checkpoint/close the store.
	log.Printf("shutting down: draining requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Fatalf("store shutdown: %v", err)
	}
	log.Printf("shutdown complete")
}

// buildServer resolves the store precedence: durable directory (reopened or
// created), then snapshot, then a freshly built synthetic dataset. A
// durable directory's own layout wins over the -shards flag: a shard
// manifest reopens sharded, a flat snapshot reopens flat.
func buildServer(datasetName string, rows int, seed int64, loadPath, dir string, shards int, cfg *server.Config) (*server.Server, error) {
	if shards > 0 && loadPath != "" {
		return nil, errors.New("-shards cannot repartition a flat snapshot; use -dataset/-rows or a sharded -dir")
	}
	if dir != "" {
		if _, err := os.Stat(filepath.Join(dir, shard.ManifestName)); err == nil {
			t0 := time.Now()
			sh, rep, err := flood.OpenShardedDurable(dir, nil)
			if err != nil {
				return nil, fmt.Errorf("opening sharded dir %s: %w", dir, err)
			}
			for i, sr := range rep.Shards {
				for _, w := range sr.Warnings {
					log.Printf("recovery shard %d: %s", i, w)
				}
			}
			if shards > 0 && sh.NumShards() != shards {
				log.Printf("-shards %d ignored: %s already holds %d shards", shards, dir, sh.NumShards())
			}
			log.Printf("opened sharded store %s: %d shards, %d rows in %v",
				dir, sh.NumShards(), sh.NumRows(), time.Since(t0).Round(time.Millisecond))
			return server.NewSharded(sh, cfg), nil
		}
		if _, err := os.Stat(filepath.Join(dir, "snapshot.flood")); err == nil {
			if shards > 0 {
				return nil, fmt.Errorf("-shards %d: %s already holds a flat store; point -dir at an empty directory", shards, dir)
			}
			t0 := time.Now()
			d, rep, err := flood.OpenDurable(dir, nil)
			if err != nil {
				return nil, fmt.Errorf("opening durable dir %s: %w", dir, err)
			}
			for _, w := range rep.Warnings {
				log.Printf("recovery: %s", w)
			}
			log.Printf("opened durable store %s: %d snapshot rows + %d replayed in %v",
				dir, rep.SnapshotRows, rep.ReplayedRows, time.Since(t0).Round(time.Millisecond))
			return server.NewDurable(d, cfg), nil
		}
		if shards > 0 {
			ds, queries, err := syntheticWorkload(datasetName, rows, seed)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			sh, err := flood.CreateShardedDurable(dir, ds.Table, queries,
				&flood.ShardedOptions{Shards: shards, Build: &flood.Options{Seed: seed + 2}}, nil)
			if err != nil {
				return nil, fmt.Errorf("creating sharded dir %s: %w", dir, err)
			}
			log.Printf("created sharded store %s: %d shards over %d rows in %v",
				dir, sh.NumShards(), sh.NumRows(), time.Since(t0).Round(time.Millisecond))
			return server.NewSharded(sh, cfg), nil
		}
		base, err := buildBase(datasetName, rows, seed, loadPath)
		if err != nil {
			return nil, err
		}
		d, err := flood.CreateDurable(dir, base, nil)
		if err != nil {
			return nil, fmt.Errorf("creating durable dir %s: %w", dir, err)
		}
		log.Printf("created durable store %s", dir)
		return server.NewDurable(d, cfg), nil
	}
	if shards > 0 {
		ds, queries, err := syntheticWorkload(datasetName, rows, seed)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		sh, err := flood.NewSharded(ds.Table, queries,
			&flood.ShardedOptions{Shards: shards, Build: &flood.Options{Seed: seed + 2}})
		if err != nil {
			return nil, err
		}
		log.Printf("built sharded %s (%d rows): %d shards split on %s in %v",
			datasetName, sh.NumRows(), sh.NumShards(), ds.Table.Name(sh.SplitDim()), time.Since(t0).Round(time.Millisecond))
		return server.NewSharded(sh, cfg), nil
	}
	base, err := buildBase(datasetName, rows, seed, loadPath)
	if err != nil {
		return nil, err
	}
	return server.New(flood.NewAdaptiveIndex(base, nil), cfg), nil
}

// syntheticWorkload materializes the named dataset and its standard training
// workload for the sharded build paths, which partition the raw table.
func syntheticWorkload(datasetName string, rows int, seed int64) (*datagen.Dataset, []flood.Query, error) {
	ds := datagen.ByName(datasetName, rows, seed)
	if ds == nil {
		return nil, nil, errors.New("unknown -dataset " + datasetName + " (try: sales, tpch, osm, perfmon)")
	}
	return ds, datagen.StandardWorkload(ds, 40, seed+1), nil
}

// buildBase loads the snapshot or builds a learned index over a synthetic
// dataset's standard workload.
func buildBase(datasetName string, rows int, seed int64, loadPath string) (*flood.Flood, error) {
	if loadPath != "" {
		t0 := time.Now()
		idx, rep, err := flood.LoadFileWithReport(loadPath)
		if err != nil {
			return nil, fmt.Errorf("loading snapshot %s: %w", loadPath, err)
		}
		for _, w := range rep.Warnings {
			log.Printf("recovery: %s", w)
		}
		log.Printf("loaded snapshot %s: %d rows, layout %s in %v",
			loadPath, idx.Table().NumRows(), idx.Layout(), time.Since(t0).Round(time.Millisecond))
		return idx, nil
	}
	ds := datagen.ByName(datasetName, rows, seed)
	if ds == nil {
		return nil, errors.New("unknown -dataset " + datasetName + " (try: sales, tpch, osm, perfmon)")
	}
	queries := datagen.StandardWorkload(ds, 40, seed+1)
	t0 := time.Now()
	idx, err := flood.Build(ds.Table, queries, &flood.Options{Seed: seed + 2})
	if err != nil {
		return nil, err
	}
	log.Printf("built %s (%d rows): layout %s in %v",
		datasetName, ds.Table.NumRows(), idx.Layout(), time.Since(t0).Round(time.Millisecond))
	return idx, nil
}
