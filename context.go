// Context-aware execution: cancellation, deadlines, and LIMIT pushdown.
//
// Every index in this package (Flood, DeltaIndex, AdaptiveIndex, and the
// baselines behind the Index interface) executes queries under a caller's
// context.Context: ExecuteContext, ExecuteBatchContext, and SelectContext
// stop cooperatively once the context is canceled or a deadline passes,
// returning the partial Stats (rows seen before the stop) together with
// ErrCanceled. Cancellation is polled at morsel-claim boundaries on the
// parallel path and every few storage blocks (~1K rows) in the sequential
// scan kernel, so the cost on uncanceled queries is a fraction of a
// nanosecond per row and the response bound is about a thousand rows.
//
// SelectContext additionally pushes QueryOptions.Limit down into the scan:
// the shared row budget is drawn before survivors reach the row collector,
// so a `LIMIT 10` over a million rows stops scanning after the tenth match
// instead of materializing the full result and truncating it.
package flood

import (
	"context"
	"fmt"
	"time"

	"flood/internal/core"
	"flood/internal/query"
)

// Sentinel errors returned by context-aware execution. Both accompany
// partial results: the Stats describe the work actually done, and any
// aggregator or row cursor holds the rows delivered before the stop.
var (
	// ErrCanceled reports that execution stopped because the context was
	// canceled or a deadline (the context's or QueryOptions.Deadline)
	// passed. Inspect ctx.Err() to distinguish the two.
	ErrCanceled = query.ErrCanceled
	// ErrLimitReached reports that execution stopped because the
	// QueryOptions.Limit row budget was exhausted. The Select paths treat
	// it as success (a satisfied LIMIT is the requested outcome); it
	// surfaces only from aggregate execution under an explicit limit.
	ErrLimitReached = query.ErrLimitReached
)

// QueryOptions tunes one context-aware execution. The zero value (or nil)
// applies no limit, no deadline, and the index's own parallel cutover.
type QueryOptions struct {
	// Limit stops execution once this many rows have matched (0 =
	// unlimited). The budget is pushed down into the scan kernel and
	// shared by every worker and every sub-scan (base + delta, OR
	// pieces), so at most Limit rows are ever delivered and scanning
	// stops as soon as the budget is drawn dry.
	Limit int
	// Deadline stops execution once the wall clock passes it (zero =
	// none). It composes with the context's own deadline — whichever
	// fires first wins — and is cheaper than deriving a context when the
	// caller already has an absolute time.
	Deadline time.Time
	// ParallelCutoverRows overrides the index's Options.ParallelCutoverRows
	// for this query only: 0 keeps the index default, a positive value is
	// the estimated scanned-row count at which the scan fans out over the
	// worker pool, and a negative value pins the query to the sequential
	// path (useful under a small Limit, where parallel workers would race
	// the budget).
	ParallelCutoverRows int
}

// limit returns the configured row limit (0 when opts is nil).
func (o *QueryOptions) limit() int {
	if o == nil {
		return 0
	}
	return o.Limit
}

// cutover returns the per-query parallel-cutover override (0 when opts is
// nil).
func (o *QueryOptions) cutover() int {
	if o == nil {
		return 0
	}
	return o.ParallelCutoverRows
}

// getControl derives the pooled execution control for (ctx, opts). It
// returns (nil, nil) when nothing can ever fire — the caller then runs the
// plain unconditioned path — and (nil, ErrCanceled) when the context or the
// options deadline has already expired, so execution returns promptly
// without scanning.
func getControl(ctx context.Context, opts *QueryOptions) (*query.Control, error) {
	if ctx.Err() != nil {
		return nil, ErrCanceled
	}
	var deadline time.Time
	if opts != nil {
		deadline = opts.Deadline
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return nil, ErrCanceled
		}
	}
	return query.GetControl(ctx.Done(), opts.limit(), deadline), nil
}

// runExecute is the shared control lifecycle of the scalar ExecuteContext /
// ExecuteOrContext variants: derive the pooled control (opts-less — these
// entry points carry no limit), run the plain unconditioned path when
// nothing can fire, otherwise run the control-threaded path, poll
// cancellation one last time, and release. rows.go's runSelect is the
// options-aware sibling for the Select paths.
func runExecute(ctx context.Context, plain func() Stats, controlled func(*query.Control) Stats) (Stats, error) {
	ctl, err := getControl(ctx, nil)
	if err != nil {
		return Stats{}, err
	}
	if ctl == nil {
		return plain(), nil
	}
	st := controlled(ctl)
	err = ctl.Finish()
	ctl.Release()
	return st, err
}

// runExecuteBatch is runExecute for the batch variants; n sizes the zero
// stats returned on an already-expired context.
func runExecuteBatch(ctx context.Context, n int, plain func() []Stats, controlled func(*query.Control) []Stats) ([]Stats, error) {
	ctl, err := getControl(ctx, nil)
	if err != nil {
		return make([]Stats, n), err
	}
	if ctl == nil {
		return plain(), nil
	}
	stats := controlled(ctl)
	err = ctl.Finish()
	ctl.Release()
	return stats, err
}

// --- Flood ---

// ExecuteContext is Execute under ctx: execution stops cooperatively once
// ctx is canceled or its deadline passes, returning the partial Stats
// together with ErrCanceled. An already-expired context returns promptly
// without scanning. With context.Background() the call is identical to
// Execute — same path, same zero-allocation steady state.
func (f *Flood) ExecuteContext(ctx context.Context, q Query, agg Aggregator) (Stats, error) {
	return f.idx.ExecuteContext(ctx, q, agg)
}

// ExecuteBatchContext is ExecuteBatch under ctx: one cancellation stops
// every query in the batch, queries not yet started are skipped (their
// Stats stay zero), and the partial per-query stats return with
// ErrCanceled.
func (f *Flood) ExecuteBatchContext(ctx context.Context, queries []Query, aggs []Aggregator) ([]Stats, error) {
	return f.idx.ExecuteBatchContext(ctx, queries, aggs)
}

// executeControl threads an externally owned control (shared cancellation
// signal and limit budget) into one execution; the root-package building
// block behind SelectContext and ExecuteOrContext.
func (f *Flood) executeControl(ctl *query.Control, q Query, agg Aggregator, cutover int) Stats {
	return f.idx.ExecuteControl(ctl, q, agg, cutover)
}

// --- DeltaIndex ---

// ExecuteContext is Execute under ctx: the base-index scan and the
// pending-row scan share one cancellation signal, and a stop during either
// returns the partial Stats with ErrCanceled. See Flood.ExecuteContext.
func (d *DeltaIndex) ExecuteContext(ctx context.Context, q Query, agg Aggregator) (Stats, error) {
	return runExecute(ctx,
		func() Stats { return d.Execute(q, agg) },
		func(ctl *query.Control) Stats { return d.executeControl(ctl, q, agg, 0) })
}

// executeControl runs base then delta under one shared control.
func (d *DeltaIndex) executeControl(ctl *query.Control, q Query, agg Aggregator, cutover int) Stats {
	st := d.base.ExecuteControl(ctl, q, agg, cutover)
	if d.pending == 0 || ctl.Stopped() {
		return st
	}
	st.Add(d.scanDelta(d.ensureDeltaTable(), d.tombDelta.Words(), q, agg, ctl))
	return st
}

// ExecuteBatchContext is ExecuteBatch under ctx: one cancellation stops
// every query in the batch. See Flood.ExecuteBatchContext.
func (d *DeltaIndex) ExecuteBatchContext(ctx context.Context, queries []Query, aggs []Aggregator) ([]Stats, error) {
	if len(queries) != len(aggs) {
		panic(fmt.Sprintf("flood: ExecuteBatch got %d queries but %d aggregators", len(queries), len(aggs)))
	}
	return runExecuteBatch(ctx, len(queries),
		func() []Stats { return d.ExecuteBatch(queries, aggs) },
		func(ctl *query.Control) []Stats {
			pending := d.pending
			var delta *Table
			var tomb []uint64
			if pending > 0 {
				delta = d.ensureDeltaTable()
				tomb = d.tombDelta.Words()
			}
			stats := make([]Stats, len(queries))
			core.RunBatch(len(queries), func(i int) {
				if ctl.Stopped() {
					return
				}
				stats[i] = d.base.ExecuteSequentialControl(ctl, queries[i], aggs[i])
				if pending > 0 && !ctl.Stopped() {
					stats[i].Add(d.scanDelta(delta, tomb, queries[i], aggs[i], ctl))
				}
			})
			return stats
		})
}

// --- AdaptiveIndex ---

// ExecuteContext is Execute under ctx against one consistent generation:
// base index and insert log share the cancellation signal, and a canceled
// query returns partial Stats with ErrCanceled. Canceled executions bypass
// the drift monitor and the workload sample — their truncated timings would
// poison the window average — so adaptation sees only completed queries.
func (a *AdaptiveIndex) ExecuteContext(ctx context.Context, q Query, agg Aggregator) (Stats, error) {
	ep := a.epoch.Load()
	st, err := runExecute(ctx,
		func() Stats { return executeEpoch(ep, q, agg) },
		func(ctl *query.Control) Stats { return executeEpochControl(ep, ctl, q, agg, 0) })
	if err == nil {
		a.observe(ep, q, st)
	}
	return st, err
}

// ExecuteBatchContext is ExecuteBatch under ctx against one consistent
// generation; one cancellation stops every query in the batch, and only a
// fully completed batch feeds the drift monitor.
func (a *AdaptiveIndex) ExecuteBatchContext(ctx context.Context, queries []Query, aggs []Aggregator) ([]Stats, error) {
	ep := a.epoch.Load()
	stats, err := runExecuteBatch(ctx, len(queries),
		func() []Stats { return executeBatchEpoch(ep, queries, aggs) },
		func(ctl *query.Control) []Stats { return executeBatchEpochControl(ep, ctl, queries, aggs) })
	if err == nil {
		for i := range queries {
			a.observe(ep, queries[i], stats[i])
		}
	}
	return stats, err
}

// executeBatchEpochControl is executeBatchEpoch threaded with a shared
// control: the per-query building block of the context-aware adaptive batch
// paths (the facade's and the pinned-generation adaptiveRaw's).
func executeBatchEpochControl(ep *adaptiveEpoch, ctl *query.Control, queries []Query, aggs []Aggregator) []Stats {
	if len(queries) != len(aggs) {
		panic(fmt.Sprintf("flood: ExecuteBatch got %d queries but %d aggregators", len(queries), len(aggs)))
	}
	n := ep.log.rows()
	stats := make([]Stats, len(queries))
	core.RunBatch(len(queries), func(i int) {
		if ctl.Stopped() {
			return
		}
		stats[i] = ep.flood.idx.ExecuteSequentialControl(ctl, queries[i], aggs[i])
		if n > 0 && !ctl.Stopped() {
			stats[i].Add(ep.log.scan(queries[i], n, aggs[i], ctl))
		}
	})
	return stats
}

// ExecuteOrContext evaluates a disjunction under ctx against one consistent
// generation (see ExecuteOr); the decomposed pieces share the cancellation
// signal, and only a completed disjunction feeds the workload sample.
func (a *AdaptiveIndex) ExecuteOrContext(ctx context.Context, queries []Query, agg Aggregator) (Stats, error) {
	ctl, err := getControl(ctx, nil)
	if err != nil {
		return Stats{}, err
	}
	if ctl == nil {
		return a.ExecuteOr(queries, agg), nil
	}
	st := a.executeOrControl(ctl, queries, agg, 0)
	err = ctl.Finish()
	ctl.Release()
	if err == nil {
		a.queries.Add(1)
		for _, q := range queries {
			a.sample.Add(q)
		}
	}
	return st, err
}

// executeOrControl runs the decomposed pieces of a disjunction against one
// pinned generation under a shared control and per-query cutover override.
func (a *AdaptiveIndex) executeOrControl(ctl *query.Control, queries []Query, agg Aggregator, cutover int) Stats {
	ep := a.epoch.Load()
	var total Stats
	for _, piece := range query.Disjoint(queries) {
		if ctl.Stopped() {
			break
		}
		total.Add(executeEpochControl(ep, ctl, piece, agg, cutover))
	}
	return total
}

// --- package-level helpers ---

// ExecuteOrContext is ExecuteOr under ctx: the disjoint pieces of the
// disjunction share one cancellation signal, a stop between or inside
// pieces returns the partial Stats with ErrCanceled, and rows accumulated
// before the stop remain in agg. Indexes with their own context-aware
// disjunction handling (AdaptiveIndex) route through it.
func ExecuteOrContext(ctx context.Context, idx Index, queries []Query, agg Aggregator) (Stats, error) {
	if oi, ok := idx.(interface {
		ExecuteOrContext(context.Context, []Query, Aggregator) (Stats, error)
	}); ok {
		return oi.ExecuteOrContext(ctx, queries, agg)
	}
	return runExecute(ctx,
		func() Stats { return ExecuteOr(idx, queries, agg) },
		func(ctl *query.Control) Stats { return executeOrControl(idx, ctl, queries, agg, 0) })
}

// executeOrControl decomposes the disjunction and runs each disjoint piece
// under the shared control and per-query cutover override, stopping as soon
// as the control latches.
func executeOrControl(idx Index, ctl *query.Control, queries []Query, agg Aggregator, cutover int) Stats {
	var total Stats
	for _, piece := range query.Disjoint(queries) {
		if ctl.Stopped() {
			break
		}
		total.Add(executeControl(idx, ctl, piece, agg, cutover))
	}
	return total
}

// executeControl routes one control-threaded execution to the index's
// control path: the concrete types of this package (which also honor the
// per-query cutover override), any baseline (via query.ControlIndex), and —
// for foreign Index implementations without a control path — plain Execute
// behind a budget-enforcing aggregator wrapper, so the "at most Limit rows
// delivered" contract holds even though the foreign scan itself cannot be
// stopped early (its Stats count the full scan).
func executeControl(idx Index, ctl *query.Control, q Query, agg Aggregator, cutover int) Stats {
	switch t := idx.(type) {
	case *Flood:
		return t.executeControl(ctl, q, agg, cutover)
	case *DeltaIndex:
		return t.executeControl(ctl, q, agg, cutover)
	case *AdaptiveIndex:
		return executeEpochControl(t.epoch.Load(), ctl, q, agg, cutover)
	case *ShardedIndex:
		return t.executeControl(ctl, q, agg, cutover)
	}
	if ctl == nil {
		return idx.Execute(q, agg)
	}
	if ci, ok := idx.(query.ControlIndex); ok {
		return ci.ExecuteControl(ctl, q, agg)
	}
	return idx.Execute(q, query.ControlledAggregator(ctl, agg))
}
