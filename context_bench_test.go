package flood

import (
	"context"
	"testing"
)

// BenchmarkSelectLimit10From1M proves the LIMIT pushdown short-circuits: a
// LIMIT 10 select over the shared 1M-row typed table (same predicate as
// BenchmarkSelectRows1M, which materializes ~3.7K rows) stops scanning
// after the tenth match. Recorded in BENCH_scan.json by `make bench`;
// compare rows/op and ns/op against BenchmarkSelectRows1M.
func BenchmarkSelectLimit10From1M(b *testing.B) {
	idx, q := selectBenchSetup(b)
	opts := &QueryOptions{Limit: 10}
	ctx := context.Background()
	var rowsOut, scanned int64
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, st, err := idx.SelectContext(ctx, q, opts, "ts")
		if err != nil {
			b.Fatal(err)
		}
		for rows.Next() {
			sink += rows.Int64(0)
		}
		rowsOut += int64(rows.Len())
		scanned += st.Scanned
		rows.Close()
	}
	b.StopTimer()
	if rowsOut != int64(b.N)*10 {
		b.Fatalf("limited select returned %d rows over %d ops, want 10 each", rowsOut, b.N)
	}
	b.ReportMetric(float64(rowsOut)/float64(b.N), "rows/op")
	b.ReportMetric(float64(scanned)/float64(b.N), "scanned/op")
	_ = sink
}

// BenchmarkExecute1M is the plain-Execute half of the overhead-parity pair:
// the same sequential aggregate query as BenchmarkExecuteContext1M, so the
// two ns/op numbers in BENCH_scan.json measure what the context plumbing
// costs on the hot path (the acceptance bar is "within noise").
func BenchmarkExecute1M(b *testing.B) {
	idx, q := selectBenchSetup(b)
	cnt := NewCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt.Reset()
		idx.Execute(q, cnt)
	}
	b.StopTimer()
	if cnt.Result() == 0 {
		b.Fatal("benchmark query matched nothing")
	}
}

// BenchmarkExecuteContext1M is the ExecuteContext half of the parity pair:
// a background context derives no control, so this must track
// BenchmarkExecute1M within noise and stay at 0 allocs/op.
func BenchmarkExecuteContext1M(b *testing.B) {
	idx, q := selectBenchSetup(b)
	cnt := NewCount()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt.Reset()
		if _, err := idx.ExecuteContext(ctx, q, cnt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if cnt.Result() == 0 {
		b.Fatal("benchmark query matched nothing")
	}
}
