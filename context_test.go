package flood

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flood/internal/query"
)

// canceledCtx returns a context that is already canceled.
func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestExecuteContextPreCanceled pins the prompt-return contract: an already
// canceled context returns ErrCanceled without scanning a single row, on
// every index type behind the Index interface.
func TestExecuteContextPreCanceled(t *testing.T) {
	idx, ds, queries := buildSmall(t)
	d := NewDeltaIndex(idx, 0)
	a := NewAdaptiveIndex(idx, nil)
	defer a.Close()
	fs, err := BuildBaseline(FullScan, ds.Table, BaselineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	kd, err := BuildBaseline(KDTree, ds.Table, BaselineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := queries[0]
	for _, idx := range []Index{idx, d, a, fs, kd} {
		agg := NewCount()
		st, err := idx.ExecuteContext(canceledCtx(), q, agg)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s: pre-canceled ExecuteContext err = %v, want ErrCanceled", idx.Name(), err)
		}
		if st.Scanned != 0 || agg.Result() != 0 {
			t.Fatalf("%s: pre-canceled ExecuteContext scanned %d rows, delivered %d", idx.Name(), st.Scanned, agg.Result())
		}
	}
	// Batch and Select variants share the contract.
	if _, err := idx.ExecuteBatchContext(canceledCtx(), queries[:2], []Aggregator{NewCount(), NewCount()}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled ExecuteBatchContext err = %v", err)
	}
	rows, st, err := idx.SelectContext(canceledCtx(), q, nil)
	if !errors.Is(err, ErrCanceled) || st.Scanned != 0 || rows.Len() != 0 {
		t.Fatalf("pre-canceled SelectContext = (%d rows, %d scanned, %v)", rows.Len(), st.Scanned, err)
	}
	rows.Close()
	// An options deadline already in the past behaves the same.
	rows, st, err = idx.SelectContext(context.Background(), q, &QueryOptions{Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, ErrCanceled) || st.Scanned != 0 || rows.Len() != 0 {
		t.Fatalf("expired-deadline SelectContext = (%d rows, %d scanned, %v)", rows.Len(), st.Scanned, err)
	}
	rows.Close()
	if _, err := ExecuteOrContext(canceledCtx(), idx, queries[:2], NewCount()); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled ExecuteOrContext err = %v", err)
	}
}

// TestExecuteContextBackgroundMatchesExecute pins overhead-parity semantics:
// with a background context, ExecuteContext returns identical results and
// scan counters to Execute, for the learned index and every baseline.
func TestExecuteContextBackgroundMatchesExecute(t *testing.T) {
	idx, ds, queries := buildSmall(t)
	indexes := []Index{idx}
	for _, kind := range Baselines() {
		b, err := BuildBaseline(kind, ds.Table, BaselineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		indexes = append(indexes, b)
	}
	for _, ix := range indexes {
		for _, q := range queries[:8] {
			plain, ctxed := NewCount(), NewCount()
			st1 := ix.Execute(q, plain)
			st2, err := ix.ExecuteContext(context.Background(), q, ctxed)
			if err != nil {
				t.Fatalf("%s: ExecuteContext err = %v", ix.Name(), err)
			}
			if plain.Result() != ctxed.Result() {
				t.Fatalf("%s: ExecuteContext count %d != Execute %d", ix.Name(), ctxed.Result(), plain.Result())
			}
			if st1.Scanned != st2.Scanned || st1.Matched != st2.Matched {
				t.Fatalf("%s: ExecuteContext stats (%d/%d) != Execute (%d/%d)",
					ix.Name(), st2.Scanned, st2.Matched, st1.Scanned, st1.Matched)
			}
		}
	}
}

// TestExecuteContextZeroAllocSequential pins the acceptance criterion: the
// context-aware entry points with a background context keep the sequential
// path allocation-free in steady state.
func TestExecuteContextZeroAllocSequential(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	fx := newTypedFixture(t, 20_000, 31)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema, ParallelCutoverRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	q := fx.schema.Where().WithFloatRange("fare", 10, 80).Query()
	cnt := NewCount()
	if _, err := idx.ExecuteContext(context.Background(), q, cnt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		cnt.Reset()
		if _, err := idx.ExecuteContext(context.Background(), q, cnt); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ExecuteContext(Background) allocated %.1f times per op, want 0", allocs)
	}
	// SelectContext with nil options shares the unconditioned path.
	rows, _, _ := idx.SelectContext(context.Background(), q, nil, "ts")
	rows.Close()
	allocs = testing.AllocsPerRun(50, func() {
		rows, _, err := idx.SelectContext(context.Background(), q, nil, "ts")
		if err != nil {
			panic(err)
		}
		rows.Close()
	})
	if allocs != 0 {
		t.Fatalf("SelectContext(Background, nil) allocated %.1f times per op, want 0", allocs)
	}
}

// TestSelectContextLimitPushdown pins the acceptance criterion: a LIMIT k
// select scans strictly fewer rows than the unlimited select (asserted via
// Stats), returns exactly k rows, and — on the deterministic sequential
// path — returns the first k rows of the unlimited result.
func TestSelectContextLimitPushdown(t *testing.T) {
	fx := newTypedFixture(t, 50_000, 33)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema, ParallelCutoverRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	q := fx.schema.Where().WithStringEquals("city", "nyc").Query()
	full, fullSt := idx.Select(q, "ts")
	fullIDs := make([]int64, 0, full.Len())
	for full.Next() {
		fullIDs = append(fullIDs, full.RowID())
	}
	full.Close()
	if len(fullIDs) <= 10 {
		t.Fatalf("fixture query matches only %d rows", len(fullIDs))
	}

	const k = 10
	rows, st, err := idx.SelectContext(context.Background(), q, &QueryOptions{Limit: k}, "ts")
	if err != nil {
		t.Fatalf("limited SelectContext err = %v (a satisfied limit is success)", err)
	}
	if rows.Len() != k {
		t.Fatalf("LIMIT %d returned %d rows", k, rows.Len())
	}
	if st.Scanned >= fullSt.Scanned {
		t.Fatalf("LIMIT %d scanned %d rows, not fewer than unlimited %d", k, st.Scanned, fullSt.Scanned)
	}
	for i := 0; rows.Next(); i++ {
		if rows.RowID() != fullIDs[i] {
			t.Fatalf("limited row %d has id %d, want prefix id %d", i, rows.RowID(), fullIDs[i])
		}
	}
	rows.Close()

	// A limit larger than the result set returns everything with no error.
	rows, _, err = idx.SelectContext(context.Background(), q, &QueryOptions{Limit: len(fullIDs) + 100}, "ts")
	if err != nil || rows.Len() != len(fullIDs) {
		t.Fatalf("oversized limit returned %d rows (err %v), want %d", rows.Len(), err, len(fullIDs))
	}
	rows.Close()
}

// TestSelectContextLimitAcrossDelta pins the shared budget across the base
// index and the pending-row buffer: base rows fill the limit first, and a
// limit inside the base row count never scans the delta.
func TestSelectContextLimitAcrossDelta(t *testing.T) {
	fx := newTypedFixture(t, 10_000, 35)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema, ParallelCutoverRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeltaIndex(idx, 0)
	// Insert rows that all match the probe query.
	enc, err := fx.schema.EncodeRow(int64(50), 5.00, "nyc", time.Date(2023, 1, 2, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	const added = 64
	for i := 0; i < added; i++ {
		if err := d.Insert(enc); err != nil {
			t.Fatal(err)
		}
	}
	q := fx.schema.Where().WithStringEquals("city", "nyc").Query()
	all, _, err := d.SelectContext(context.Background(), q, nil, "city")
	if err != nil {
		t.Fatal(err)
	}
	total := all.Len()
	all.Close()
	baseRows := int64(idx.Table().NumRows())

	const k = 5 // well inside the base matches
	rows, _, err := d.SelectContext(context.Background(), q, &QueryOptions{Limit: k}, "city")
	if err != nil || rows.Len() != k {
		t.Fatalf("delta LIMIT %d returned %d rows (err %v)", k, rows.Len(), err)
	}
	for rows.Next() {
		if rows.RowID() >= baseRows {
			t.Fatalf("limit satisfiable from base delivered delta row id %d", rows.RowID())
		}
	}
	rows.Close()

	// A limit past the base matches draws the remainder from the delta.
	big := total - added/2
	rows, _, err = d.SelectContext(context.Background(), q, &QueryOptions{Limit: big}, "city")
	if err != nil || rows.Len() != big {
		t.Fatalf("delta-spanning LIMIT %d returned %d rows (err %v)", big, rows.Len(), err)
	}
	rows.Close()
}

// cancelOnDeliver is a Count that cancels a context on its first delivery;
// clones share the trigger so the morsel engine's workers race it safely.
type cancelOnDeliver struct {
	n      int64
	cancel context.CancelFunc
	once   *sync.Once
}

func (c *cancelOnDeliver) fire() { c.once.Do(c.cancel) }

func (c *cancelOnDeliver) Reset() { c.n = 0 }

func (c *cancelOnDeliver) Add(_ *Table, _ int) {
	c.fire()
	c.n++
}

func (c *cancelOnDeliver) AddExactRange(_ *Table, start, end int) {
	c.fire()
	c.n += int64(end - start)
}

func (c *cancelOnDeliver) Result() int64 { return c.n }

func (c *cancelOnDeliver) CloneEmpty() query.Mergeable {
	return &cancelOnDeliver{cancel: c.cancel, once: c.once}
}

func (c *cancelOnDeliver) Merge(o query.Mergeable) { c.n += o.(*cancelOnDeliver).n }

// TestExecuteContextCancelMidScanParallel cancels a context from inside the
// first aggregator delivery of a forced-parallel execution: the morsel
// engine must observe the stop at claim boundaries, drain the remaining
// morsels without scanning them, merge every partial cleanly (the race
// detector guards the shared state), leak no goroutines, and report the
// sentinel with partial stats.
func TestExecuteContextCancelMidScanParallel(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	fx := newTypedFixture(t, 200_000, 37)
	// A tiny cutover forces the morsel engine for the broad query below.
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema, ParallelCutoverRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := fx.schema.Where().Query() // unfiltered: the whole table matches

	// Warm the worker pool so resident pool goroutines are part of the
	// baseline, then measure goroutines around the canceled runs.
	warm := NewCount()
	idx.Execute(q, warm)
	total := warm.Result()
	baseline := runtime.NumGoroutine()

	for trial := 0; trial < 5; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		agg := &cancelOnDeliver{cancel: cancel, once: &sync.Once{}}
		st, err := idx.ExecuteContext(ctx, q, agg)
		cancel()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("trial %d: mid-scan cancel err = %v, want ErrCanceled", trial, err)
		}
		if st.Scanned >= total {
			t.Fatalf("trial %d: canceled execution scanned all %d rows", trial, st.Scanned)
		}
		if agg.Result() > st.Matched || agg.Result() == 0 {
			t.Fatalf("trial %d: partial aggregate %d inconsistent with matched %d", trial, agg.Result(), st.Matched)
		}
	}

	// The persistent pool keeps its resident workers; nothing beyond them
	// may linger once the canceled jobs drained.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after canceled parallel executions: %d > baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdaptiveExecuteContextCancelDuringRelearn hammers ExecuteContext with
// mixed canceled/live contexts while a background relearn builds and swaps
// the epoch. Under -race this pins the swap-safety of the control path: the
// sentinel comes back for canceled calls, completed calls stay exact across
// the swap, and canceled partials never corrupt shared state.
func TestAdaptiveExecuteContextCancelDuringRelearn(t *testing.T) {
	idx, ds, queries := buildSmall(t)
	a := NewAdaptiveIndex(idx, &AdaptiveConfig{Build: &Options{GDSteps: 2, QuerySampleSize: 10}})
	defer a.Close()
	nd := ds.Table.NumCols()
	// A full-domain filter: every row matches, so completed counts are
	// exactly the table size, while the filter keeps the sampled workload
	// well-formed for the background relearn.
	probe := NewQuery(nd).WithRange(0, NegInf, PosInf)
	want := int64(ds.Table.NumRows())
	for _, q := range queries[:8] {
		a.Execute(q, NewCount()) // seed the workload sample
	}

	var wrong atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				agg := NewCount()
				if g%2 == 0 && i%3 == 0 {
					// Cancel mid-flight from a racing goroutine.
					ctx, cancel := context.WithCancel(context.Background())
					go cancel()
					_, err := a.ExecuteContext(ctx, probe, agg)
					if err == nil && agg.Result() != want {
						wrong.Add(1)
					}
					cancel()
					continue
				}
				st, err := a.ExecuteContext(context.Background(), probe, agg)
				if err != nil || agg.Result() != want || st.Matched != want {
					wrong.Add(1)
				}
			}
		}(g)
	}
	if !a.TriggerRelearn() {
		t.Fatal("TriggerRelearn did not start")
	}
	a.Wait()
	close(stop)
	wg.Wait()
	if wrong.Load() != 0 {
		t.Fatalf("%d executions returned wrong results across the relearn swap", wrong.Load())
	}
	// At least the forced relearn must have landed; the live query stream
	// may legitimately trigger further drift relearns after the swap.
	if st := a.Stats(); st.Relearns < 1 {
		t.Fatalf("relearns = %d, want >= 1 (last error %v)", st.Relearns, st.LastError)
	}
	a.Wait() // drain any follow-on drift relearn before the final exact check
	// After the dust settles the index still answers exactly.
	agg := NewCount()
	if _, err := a.ExecuteContext(context.Background(), probe, agg); err != nil || agg.Result() != want {
		t.Fatalf("post-swap count = %d (err %v), want %d", agg.Result(), err, want)
	}
}

// TestSelectOrContextSharedLimit pins the global LIMIT budget across the
// disjoint pieces of an OR: the union never exceeds the limit.
func TestSelectOrContextSharedLimit(t *testing.T) {
	fx := newTypedFixture(t, 20_000, 41)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema, ParallelCutoverRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	or := []Query{
		fx.schema.Where().WithStringEquals("city", "nyc").Query(),
		fx.schema.Where().WithStringEquals("city", "boston").Query(),
	}
	full, fullSt := fx.schema.SelectOr(idx, or, "city")
	totalRows := full.Len()
	full.Close()
	const k = 7
	rows, st, err := fx.schema.SelectOrContext(context.Background(), idx, or, &QueryOptions{Limit: k}, "city")
	if err != nil {
		t.Fatalf("SelectOrContext err = %v", err)
	}
	if rows.Len() != k {
		t.Fatalf("OR LIMIT %d returned %d rows (full union %d)", k, rows.Len(), totalRows)
	}
	if st.Scanned >= fullSt.Scanned {
		t.Fatalf("OR LIMIT scanned %d, not fewer than unlimited %d", st.Scanned, fullSt.Scanned)
	}
	rows.Close()
}

// TestExecuteBatchContextCancel checks that one cancellation stops a whole
// batch: stats for unstarted queries stay zero and the sentinel is shared.
func TestExecuteBatchContextCancel(t *testing.T) {
	idx, _, queries := buildSmall(t)
	// Lead the batch with a query that definitely delivers rows, so the
	// canceling aggregator's trigger fires.
	for i, q := range queries {
		probe := NewCount()
		if idx.Execute(q, probe); probe.Result() > 0 {
			queries[0], queries[i] = queries[i], queries[0]
			break
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	aggs := make([]Aggregator, len(queries))
	canceler := &cancelOnDeliver{cancel: cancel, once: &sync.Once{}}
	aggs[0] = canceler
	for i := 1; i < len(aggs); i++ {
		aggs[i] = NewCount()
	}
	stats, err := idx.ExecuteBatchContext(ctx, queries, aggs)
	cancel()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("batch cancel err = %v", err)
	}
	if len(stats) != len(queries) {
		t.Fatalf("batch returned %d stats for %d queries", len(stats), len(queries))
	}
}

// TestControlIndexBaselines runs a mid-scan cancellation through every
// baseline's ExecuteContext: each must stop early with the sentinel rather
// than scanning to completion.
func TestControlIndexBaselines(t *testing.T) {
	_, ds, _ := buildSmall(t)
	total := int64(ds.Table.NumRows())
	// A near-full range on a non-leading dimension: almost every row
	// matches, but no baseline can treat the whole table as one contained
	// exact range, so deliveries happen page by page and the cancel fired
	// by the first delivery must cut the scan short.
	col := ds.Cols[1]
	minV, maxV := col[0], col[0]
	for _, v := range col {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if minV == maxV {
		t.Fatal("fixture column 1 is constant")
	}
	probe := NewQuery(ds.Table.NumCols()).WithRange(1, minV, maxV-1)
	for _, kind := range Baselines() {
		b, err := BuildBaseline(kind, ds.Table, BaselineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		agg := &cancelOnDeliver{cancel: cancel, once: &sync.Once{}}
		st, err := b.ExecuteContext(ctx, probe, agg)
		cancel()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s: mid-scan cancel err = %v, want ErrCanceled", b.Name(), err)
		}
		if st.Scanned >= total {
			t.Fatalf("%s: canceled scan visited all %d rows", b.Name(), st.Scanned)
		}
	}
}

// TestRowsMisuseDeterministic pins the cursor misuse contract: accessors
// before the first Next, after the cursor is exhausted, and after Close
// return zero values deterministically instead of touching pooled memory.
func TestRowsMisuseDeterministic(t *testing.T) {
	fx := newTypedFixture(t, 2_000, 43)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	q := fx.schema.Where().WithStringEquals("city", "nyc").Query()
	rows, _ := idx.Select(q, "ts", "fare", "city", "pickup")
	if rows.Len() == 0 {
		t.Fatal("fixture query matched nothing")
	}
	assertZero := func(stage string) {
		t.Helper()
		if v := rows.Int64(0); v != 0 {
			t.Fatalf("%s: Int64 = %d, want 0", stage, v)
		}
		if v := rows.Float64(1); v != 0 {
			t.Fatalf("%s: Float64 = %v, want 0", stage, v)
		}
		if v := rows.String(2); v != "" {
			t.Fatalf("%s: String = %q, want empty", stage, v)
		}
		if v := rows.Time(3); !v.IsZero() {
			t.Fatalf("%s: Time = %v, want zero", stage, v)
		}
		if v := rows.Value(0); v != nil {
			t.Fatalf("%s: Value = %v, want nil", stage, v)
		}
		if v := rows.RowID(); v != 0 {
			t.Fatalf("%s: RowID = %d, want 0", stage, v)
		}
	}
	assertZero("before first Next")
	n := 0
	for rows.Next() {
		if rows.String(2) != "nyc" {
			t.Fatal("live row decoded wrong")
		}
		n++
	}
	if n != rows.Len() {
		t.Fatalf("iterated %d rows, Len %d", n, rows.Len())
	}
	assertZero("after exhaustion")
	if rows.Next() {
		t.Fatal("Next after exhaustion returned true")
	}
	rows.Close()
	if rows.Next() {
		t.Fatal("Next after Close returned true")
	}
	assertZero("after Close")
	if rows.Len() != 0 || rows.Columns() != nil {
		t.Fatalf("closed cursor Len=%d Columns=%v, want 0/nil", rows.Len(), rows.Columns())
	}
	if got := rows.OrderBy("fare", 3); got != rows {
		t.Fatal("OrderBy on closed cursor is not a no-op")
	}
	rows.Close() // immediate double Close stays a no-op
}

// TestSelectContextForeignIndexLimit pins the fallback contract: an Index
// implementation from outside this package (no ControlIndex path, no
// SelectContext of its own) still honors QueryOptions.Limit — the budget is
// enforced at the aggregator boundary even though its scan cannot be
// stopped early.
func TestSelectContextForeignIndexLimit(t *testing.T) {
	fx := newTypedFixture(t, 5_000, 47)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema, ParallelCutoverRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	foreign := indexOnly{idx} // hides every control path
	q := fx.schema.Where().WithStringEquals("city", "nyc").Query()
	full, _, err := fx.schema.SelectContext(context.Background(), foreign, q, nil, "city")
	if err != nil {
		t.Fatal(err)
	}
	total := full.Len()
	full.Close()
	if total <= 3 {
		t.Fatalf("fixture query matches only %d rows", total)
	}
	rows, _, err := fx.schema.SelectContext(context.Background(), foreign, q, &QueryOptions{Limit: 3}, "city")
	if err != nil {
		t.Fatalf("foreign-index limited select err = %v", err)
	}
	if rows.Len() != 3 {
		t.Fatalf("foreign-index LIMIT 3 returned %d rows (full %d)", rows.Len(), total)
	}
	for rows.Next() {
		if rows.String(0) != "nyc" {
			t.Fatal("limited row decoded wrong")
		}
	}
	rows.Close()
}
