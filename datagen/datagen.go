// Package datagen exposes the repository's dataset and workload generators
// for use by examples, benchmarks, and downstream experimentation. The
// datasets mirror the paper's evaluation suite (§7.3): a sales-database
// stand-in, TPC-H lineitem, an OpenStreetMap stand-in, a performance
// monitoring log stand-in, and uniform synthetic data.
package datagen

import (
	flood "flood"
	"flood/internal/dataset"
	"flood/internal/workload"
)

// Dataset is a generated table plus its raw columns for ground-truth checks.
type Dataset = dataset.Dataset

// Sales generates the 6-attribute sales dataset stand-in.
func Sales(n int, seed int64) *Dataset { return dataset.Sales(n, seed) }

// TPCH generates the 7-column lineitem fact table at the given row count.
func TPCH(n int, seed int64) *Dataset { return dataset.TPCH(n, seed) }

// OSM generates the 6-attribute OpenStreetMap stand-in.
func OSM(n int, seed int64) *Dataset { return dataset.OSM(n, seed) }

// Perfmon generates the 6-attribute performance-monitoring stand-in.
func Perfmon(n int, seed int64) *Dataset { return dataset.Perfmon(n, seed) }

// Uniform generates n rows of d-dimensional uniform data (§7.5).
func Uniform(n, d int, seed int64) *Dataset { return dataset.Uniform(n, d, seed) }

// DatasetNames lists the four evaluation datasets in the paper's order.
func DatasetNames() []string { return dataset.Names() }

// ByName builds a named evaluation dataset; nil for unknown names.
func ByName(name string, n int, seed int64) *Dataset { return dataset.ByName(name, n, seed) }

// StandardWorkload draws the dataset's analyst-style OLAP mix (§7.3),
// calibrated to ~0.1% average selectivity.
func StandardWorkload(ds *Dataset, n int, seed int64) []flood.Query {
	return workload.Standard(ds, n, seed)
}

// WorkloadWithSelectivity is StandardWorkload at an explicit selectivity.
func WorkloadWithSelectivity(ds *Dataset, n int, target float64, seed int64) []flood.Query {
	return workload.StandardWithSelectivity(ds, n, target, seed)
}

// ArchetypeKind names the Fig. 9 workload archetypes (FD, MD, OO, O, Ou,
// O1, O2, ST).
type ArchetypeKind = workload.ArchetypeKind

// Archetypes lists the Fig. 9 workload kinds.
func Archetypes() []ArchetypeKind { return workload.Archetypes() }

// ArchetypeWorkload draws a Fig. 9 workload of the given kind.
func ArchetypeWorkload(ds *Dataset, kind ArchetypeKind, n int, seed int64) []flood.Query {
	return workload.Archetype(ds, kind, n, seed)
}

// RandomWorkload draws one of the Fig. 10 random workloads.
func RandomWorkload(ds *Dataset, n int, seed int64) []flood.Query {
	return workload.Random(ds, n, seed)
}

// SelectivityOrder returns the dataset's dimensions ordered from most to
// least selective under the given workload — the ordering used to tune the
// baseline indexes.
func SelectivityOrder(ds *Dataset, queries []flood.Query, seed int64) []int {
	g := workload.NewGenerator(ds, seed)
	return workload.OrderBySelectivity(g, queries)
}

// SplitTrainTest partitions a workload into train and test sets.
func SplitTrainTest(queries []flood.Query, trainFrac float64, seed int64) (train, test []flood.Query) {
	return workload.SplitTrainTest(queries, trainFrac, seed)
}
