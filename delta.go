package flood

import (
	"fmt"
	"time"

	"flood/internal/colstore"
	"flood/internal/core"
	"flood/internal/query"
)

// DeltaIndex adds insert support to a read-optimized Flood index using the
// differential-file scheme sketched in §8 ("Insertions"): updates are
// buffered in a small delta store that every query additionally scans, and
// are periodically merged into a rebuilt base index. The base layout is
// reused on merge — relearning remains an explicit, separate decision (see
// Monitor).
//
// A DeltaIndex is not safe for concurrent use.
type DeltaIndex struct {
	base       *core.Flood
	layout     Layout
	opts       Options
	buffer     [][]int64 // column-major pending rows
	pending    int
	deltaTable *Table // lazily built view of the buffer
	// MergeThreshold triggers an automatic Merge once this many rows are
	// buffered (0 disables auto-merging).
	MergeThreshold int
}

// NewDeltaIndex wraps a built Flood index with an insertion buffer.
func NewDeltaIndex(base *Flood, mergeThreshold int) *DeltaIndex {
	d := &DeltaIndex{
		base:           base.idx,
		layout:         base.Layout(),
		buffer:         make([][]int64, base.Table().NumCols()),
		MergeThreshold: mergeThreshold,
	}
	return d
}

// Name implements Index.
func (d *DeltaIndex) Name() string { return "Flood+Delta" }

// SizeBytes implements Index: base metadata plus the buffered rows.
func (d *DeltaIndex) SizeBytes() int64 {
	return d.base.SizeBytes() + int64(d.pending)*int64(len(d.buffer))*8
}

// Pending returns the number of buffered (unmerged) rows.
func (d *DeltaIndex) Pending() int { return d.pending }

// NumRows returns the total row count (base + buffered).
func (d *DeltaIndex) NumRows() int { return d.base.Table().NumRows() + d.pending }

// Insert buffers one row (one value per dimension). The row becomes visible
// to queries immediately.
func (d *DeltaIndex) Insert(row []int64) error {
	if len(row) != len(d.buffer) {
		return fmt.Errorf("flood: row has %d values, table has %d dimensions", len(row), len(d.buffer))
	}
	for c, v := range row {
		d.buffer[c] = append(d.buffer[c], v)
	}
	d.pending++
	d.deltaTable = nil
	if d.MergeThreshold > 0 && d.pending >= d.MergeThreshold {
		return d.Merge()
	}
	return nil
}

// Execute runs q against the base index and the delta buffer, combining
// results. Buffered rows are filtered with a plain scan (the delta is small
// by construction).
func (d *DeltaIndex) Execute(q Query, agg Aggregator) Stats {
	st := d.base.Execute(q, agg)
	if d.pending == 0 {
		return st
	}
	t0 := time.Now()
	if d.deltaTable == nil {
		d.deltaTable = colstore.MustNewTable(d.base.Table().Names(), d.buffer)
	}
	sc := query.NewScanner(d.deltaTable)
	s, m := sc.ScanRange(q, q.FilteredDims(), 0, d.pending, agg)
	st.Scanned += s
	st.Matched += m
	st.ScanTime += time.Since(t0)
	st.Total += time.Since(t0)
	return st
}

// Merge folds the buffered rows into a rebuilt base index with the same
// layout and clears the buffer.
func (d *DeltaIndex) Merge() error {
	if d.pending == 0 {
		return nil
	}
	old := d.base.Table()
	n := old.NumRows()
	cols := make([][]int64, old.NumCols())
	for c := range cols {
		cols[c] = make([]int64, 0, n+d.pending)
		cols[c] = append(cols[c], old.Raw(c)...)
		cols[c] = append(cols[c], d.buffer[c]...)
	}
	merged, err := colstore.NewTable(old.Names(), cols)
	if err != nil {
		return fmt.Errorf("flood: merging delta: %w", err)
	}
	for c := 0; c < old.NumCols(); c++ {
		if old.HasAggregate(c) {
			merged.EnableAggregate(c)
		}
	}
	base, err := core.Build(merged, d.layout, core.Options{Delta: d.opts.Delta})
	if err != nil {
		return fmt.Errorf("flood: rebuilding base: %w", err)
	}
	d.base = base
	for c := range d.buffer {
		d.buffer[c] = d.buffer[c][:0]
	}
	d.pending = 0
	d.deltaTable = nil
	return nil
}

var _ Index = (*DeltaIndex)(nil)

// Neighbor is one k-nearest-neighbor result: a physical row in the index's
// reordered table and its squared distance in flattened grid coordinates.
type Neighbor = core.Neighbor

// KNN returns the k nearest neighbors of point under the scale-free
// flattened metric of the index's grid dimensions (§6). See core.Flood.KNN.
func (f *Flood) KNN(point []int64, k int) ([]Neighbor, error) {
	return f.idx.KNN(point, k)
}
