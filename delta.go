package flood

import (
	"fmt"
	"sync"
	"time"

	"flood/internal/colstore"
	"flood/internal/core"
	"flood/internal/query"
	"flood/internal/wal"
)

// DeltaIndex adds insert support to a read-optimized Flood index using the
// differential-file scheme sketched in §8 ("Insertions"): updates are
// buffered in a small delta store that every query additionally scans, and
// are periodically merged into a rebuilt base index. The base layout is
// reused on merge — relearning remains an explicit, separate decision (see
// Monitor).
//
// A DeltaIndex is not safe for concurrent mutation: Insert and Merge must
// not run while any Execute or ExecuteBatch call is in flight. Reads are
// internally parallel (ExecuteBatch fans out over the shared worker pool).
type DeltaIndex struct {
	base    *core.Flood
	schema  *Schema   // inherited from the wrapped index at construction
	buffer  [][]int64 // column-major pending rows
	pending int

	// deltaTable is the lazily built view of the buffer; mu guards its
	// construction so concurrent reads (Execute from several goroutines,
	// or batch workers) build it exactly once. Insert and Merge clear it
	// under the single-writer contract, so no lock is needed there.
	mu         sync.Mutex
	deltaTable *Table
	// MergeThreshold triggers an automatic Merge once this many rows are
	// buffered (0 disables auto-merging).
	MergeThreshold int

	// tombDelta marks deleted buffered rows (base deletions live in the
	// base index's own tombstone set). Plain field under the single-writer
	// contract; published values are immutable, so a scan that captured the
	// words keeps its snapshot.
	tombDelta *colstore.Tombstones

	wal *wal.Log // optional: Insert logs each row before acknowledging
}

// NewDeltaIndex wraps a built Flood index with an insertion buffer.
func NewDeltaIndex(base *Flood, mergeThreshold int) *DeltaIndex {
	d := &DeltaIndex{
		base:           base.idx,
		schema:         base.schema,
		buffer:         make([][]int64, base.Table().NumCols()),
		MergeThreshold: mergeThreshold,
	}
	return d
}

// Base returns the current base index as a Flood handle (it changes after a
// Merge) — use it to Save the merged index or inspect its layout.
func (d *DeltaIndex) Base() *Flood { return &Flood{idx: d.base, schema: d.schema} }

// Name implements Index.
func (d *DeltaIndex) Name() string { return "Flood+Delta" }

// SizeBytes implements Index: base metadata plus the buffered rows. The
// buffer is charged at slice capacity, not just pending length — append
// doubling means a large insert burst can reserve nearly twice its row
// count, and memory reporting must not under-count that.
func (d *DeltaIndex) SizeBytes() int64 {
	s := d.base.SizeBytes()
	for _, col := range d.buffer {
		s += int64(cap(col)) * 8
	}
	return s
}

// Pending returns the number of buffered (unmerged) rows.
func (d *DeltaIndex) Pending() int { return d.pending }

// NumRows returns the total row count (base + buffered).
func (d *DeltaIndex) NumRows() int { return d.base.Table().NumRows() + d.pending }

// AttachWAL routes every subsequent Insert through an append to l before the
// row is acknowledged, so acknowledged inserts survive a crash and can be
// replayed onto a reloaded base snapshot. Follows the index's single-writer
// contract: attach before serving inserts.
func (d *DeltaIndex) AttachWAL(l *wal.Log) { d.wal = l }

// Insert buffers one row (one value per dimension). The row becomes visible
// to queries immediately. With a WAL attached the row is logged first and
// acknowledged only per the log's sync policy.
func (d *DeltaIndex) Insert(row []int64) error {
	if len(row) != len(d.buffer) {
		return fmt.Errorf("flood: row has %d values, table has %d dimensions", len(row), len(d.buffer))
	}
	if d.wal != nil {
		if err := d.wal.Append(encodeWALRow(row)); err != nil {
			return fmt.Errorf("flood: wal append: %w", err)
		}
	}
	for c, v := range row {
		d.buffer[c] = append(d.buffer[c], v)
	}
	d.pending++
	d.deltaTable = nil
	if d.MergeThreshold > 0 && d.pending >= d.MergeThreshold {
		return d.Merge()
	}
	return nil
}

// Execute runs q against the base index and the delta buffer, combining
// results. Buffered rows are filtered with a plain scan through a pooled
// scanner (the delta is small by construction).
func (d *DeltaIndex) Execute(q Query, agg Aggregator) Stats {
	st := d.base.Execute(q, agg)
	if d.pending == 0 {
		return st
	}
	st.Add(d.scanDelta(d.ensureDeltaTable(), d.tombDelta.Words(), q, agg, nil))
	return st
}

// ensureDeltaTable builds the buffer view exactly once between mutations and
// returns it; safe to call from concurrent readers.
func (d *DeltaIndex) ensureDeltaTable() *Table {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.deltaTable == nil {
		d.deltaTable = colstore.MustNewTable(d.base.Table().Names(), d.buffer)
	}
	return d.deltaTable
}

// scanDelta filters the buffered rows against q. The delta table is
// immutable once built, so concurrent calls (one per batched query) are
// safe; the scan bound comes from the table itself, not the live pending
// counter, so a batch stays self-consistent. tomb is the tombstone word
// snapshot captured alongside the table (nil when nothing is deleted). ctl,
// when non-nil, threads the query's cancellation signal and limit budget
// into the scan.
func (d *DeltaIndex) scanDelta(delta *Table, tomb []uint64, q Query, agg Aggregator, ctl *query.Control) Stats {
	var st Stats
	t0 := time.Now()
	sc := query.GetScanner(delta)
	sc.SetControl(ctl)
	sc.SetTombstones(tomb)
	s, m := sc.ScanRange(q, q.FilteredDims(), 0, delta.NumRows(), agg)
	sc.Release()
	st.Scanned = s
	st.Matched = m
	st.ScanTime = time.Since(t0)
	st.Total = st.ScanTime
	return st
}

// ExecuteBatch executes queries[i] into aggs[i], fanning the batch out over
// the worker pool shared with the base index: each query scans the base and
// then the pending-row buffer sequentially, and the batch supplies the
// parallelism. len(queries) must equal len(aggs). No Insert or Merge may run
// concurrently (the usual single-writer contract).
func (d *DeltaIndex) ExecuteBatch(queries []Query, aggs []Aggregator) []Stats {
	if len(queries) != len(aggs) {
		panic(fmt.Sprintf("flood: ExecuteBatch got %d queries but %d aggregators", len(queries), len(aggs)))
	}
	pending := d.pending
	var delta *Table
	var tomb []uint64
	if pending > 0 {
		delta = d.ensureDeltaTable()
		tomb = d.tombDelta.Words()
	}
	stats := make([]Stats, len(queries))
	core.RunBatch(len(queries), func(i int) {
		stats[i] = d.base.ExecuteSequential(queries[i], aggs[i])
		if pending > 0 {
			stats[i].Add(d.scanDelta(delta, tomb, queries[i], aggs[i], nil))
		}
	})
	return stats
}

// Merge folds the buffered rows into a rebuilt base index with the same
// layout and clears the buffer. Tombstoned rows — buffered or base — are
// compacted away: the merged index starts with an empty tombstone set.
func (d *DeltaIndex) Merge() error {
	if d.pending == 0 && d.base.Deleted() == 0 {
		return nil
	}
	base, err := d.base.RebuildLive(d.buffer, d.tombDelta)
	if err != nil {
		return fmt.Errorf("flood: merging delta: %w", err)
	}
	d.base = base
	for c := range d.buffer {
		d.buffer[c] = d.buffer[c][:0]
	}
	d.pending = 0
	d.deltaTable = nil
	d.tombDelta = nil
	return nil
}

// Deleted returns the number of tombstoned (not yet compacted) rows across
// the base index and the insert buffer.
func (d *DeltaIndex) Deleted() int { return d.base.Deleted() + d.tombDelta.Dead() }

// LiveRows returns the number of rows queries can observe: physical rows
// minus tombstoned rows.
func (d *DeltaIndex) LiveRows() int { return d.NumRows() - d.Deleted() }

// Delete tombstones every live row matching q — in the base index and the
// insert buffer — and returns how many rows were newly deleted. With a WAL
// attached, the deletion is logged (as resolved row values) before it is
// acknowledged. Single-writer, like Insert.
func (d *DeltaIndex) Delete(q Query) (int64, error) {
	baseRows := d.base.CollectWhere(q)
	var bufRows []int
	for i := 0; i < d.pending; i++ {
		if !d.tombDelta.Has(i) && matchColumns(q, d.buffer, i) {
			bufRows = append(bufRows, i)
		}
	}
	return d.deleteResolved(baseRows, bufRows)
}

// DeleteRows tombstones rows by their Select ids — base rows tile first
// [0, base), buffered rows follow [base, base+pending) — and returns how
// many were newly deleted. Ids already dead or out of range are skipped.
func (d *DeltaIndex) DeleteRows(ids []int64) (int64, error) {
	baseN := d.base.Table().NumRows()
	var baseRows, bufRows []int
	for _, id := range ids {
		switch {
		case id < 0 || id >= int64(baseN+d.pending):
		case id < int64(baseN):
			baseRows = append(baseRows, int(id))
		default:
			bufRows = append(bufRows, int(id)-baseN)
		}
	}
	return d.deleteResolved(baseRows, bufRows)
}

// deleteResolved logs (when a WAL is attached) and applies a deletion that
// has already been resolved to live base rows and live buffer rows.
func (d *DeltaIndex) deleteResolved(baseRows, bufRows []int) (int64, error) {
	if len(baseRows)+len(bufRows) == 0 {
		return 0, nil
	}
	if d.wal != nil {
		tuples := make([][]int64, 0, len(baseRows)+len(bufRows))
		t := d.base.Table()
		for _, r := range baseRows {
			tuples = append(tuples, rowValues(t, r))
		}
		for _, r := range bufRows {
			row := make([]int64, len(d.buffer))
			for c := range d.buffer {
				row[c] = d.buffer[c][r]
			}
			tuples = append(tuples, row)
		}
		if err := d.wal.Append(encodeWALDelete(tuples)); err != nil {
			return 0, fmt.Errorf("flood: wal append: %w", err)
		}
	}
	n := int64(d.base.DeleteRows(baseRows))
	if len(bufRows) > 0 {
		nt, added := colstore.AddTombstones(d.tombDelta, d.pending, bufRows)
		d.tombDelta = nt
		n += int64(added)
	}
	return n, nil
}

// Update rewrites every live row matching q with the assignments applied:
// the old versions are tombstoned and modified copies are re-inserted
// through the normal insert path (so they are WAL-logged, buffered, and may
// trigger an automatic Merge). Returns the number of rows updated.
// Single-writer, like Insert.
func (d *DeltaIndex) Update(q Query, set []Assignment) (int64, error) {
	cols := len(d.buffer)
	baseRows := d.base.CollectWhere(q)
	var bufRows []int
	for i := 0; i < d.pending; i++ {
		if !d.tombDelta.Has(i) && matchColumns(q, d.buffer, i) {
			bufRows = append(bufRows, i)
		}
	}
	if len(baseRows)+len(bufRows) == 0 {
		return 0, nil
	}
	newRows := make([][]int64, 0, len(baseRows)+len(bufRows))
	t := d.base.Table()
	for _, r := range baseRows {
		nr, err := applyAssignments(rowValues(t, r), set, cols)
		if err != nil {
			return 0, err
		}
		newRows = append(newRows, nr)
	}
	for _, r := range bufRows {
		row := make([]int64, cols)
		for c := range d.buffer {
			row[c] = d.buffer[c][r]
		}
		nr, err := applyAssignments(row, set, cols)
		if err != nil {
			return 0, err
		}
		newRows = append(newRows, nr)
	}
	n, err := d.deleteResolved(baseRows, bufRows)
	if err != nil {
		return 0, err
	}
	for _, row := range newRows {
		if err := d.Insert(row); err != nil {
			return n, err
		}
	}
	return n, nil
}

// rowValues materializes one stored row as a value tuple.
func rowValues(t *Table, r int) []int64 {
	row := make([]int64, t.NumCols())
	for c := range row {
		row[c] = t.Get(c, r)
	}
	return row
}

var (
	_ Index            = (*DeltaIndex)(nil)
	_ query.BatchIndex = (*DeltaIndex)(nil)
	_ Deleter          = (*DeltaIndex)(nil)
	_ Updater          = (*DeltaIndex)(nil)
)

// Neighbor is one k-nearest-neighbor result: a physical row in the index's
// reordered table and its squared distance in flattened grid coordinates.
type Neighbor = core.Neighbor

// KNN returns the k nearest neighbors of point under the scale-free
// flattened metric of the index's grid dimensions (§6). See core.Flood.KNN.
func (f *Flood) KNN(point []int64, k int) ([]Neighbor, error) {
	return f.idx.KNN(point, k)
}
