package flood

import (
	"math/rand"
	"sync"
	"testing"
)

// dictEqBenchState holds the paired 1M-row indexes for the dictionary-
// equality benchmark: one built with bitmap indexes (the default), one with
// them disabled so the same predicate runs as a residual decode-and-compare.
var dictEqBenchState struct {
	once    sync.Once
	schema  *Schema
	bitmap  *Flood
	residue *Flood
}

func dictEqBenchSetup(b *testing.B) {
	b.Helper()
	s := &dictEqBenchState
	s.once.Do(func() {
		const n = 1_000_000
		rng := rand.New(rand.NewSource(2024))
		cities := []string{"atlanta", "boston", "chicago", "denver", "houston", "miami", "nyc", "seattle"}
		ts := make([]int64, n)
		fare := make([]float64, n)
		city := make([]string, n)
		for i := 0; i < n; i++ {
			ts[i] = rng.Int63n(1_000_000)
			fare[i] = float64(rng.Intn(10_000)) / 100
			city[i] = cities[rng.Intn(len(cities))]
		}
		s.schema = NewSchema().Int64("ts").Float64("fare", 2).String("city")
		tb := s.schema.NewTableBuilder()
		if err := tb.SetInt64Column("ts", ts); err != nil {
			panic(err)
		}
		if err := tb.SetFloat64Column("fare", fare); err != nil {
			panic(err)
		}
		if err := tb.SetStringColumn("city", city); err != nil {
			panic(err)
		}
		tbl, err := tb.Build()
		if err != nil {
			panic(err)
		}
		// The city column stays out of the grid so its equality predicate is
		// a residual filter on every scanned block — the case the bitmap
		// index accelerates.
		layout := Layout{GridDims: []int{0}, GridCols: []int{64}, SortDim: 1, Flatten: true}
		if s.bitmap, err = BuildWithLayout(tbl, layout, &Options{Schema: s.schema}); err != nil {
			panic(err)
		}
		if s.residue, err = BuildWithLayout(tbl, layout, &Options{
			Schema:                    s.schema,
			BitmapIndexMaxCardinality: -1,
		}); err != nil {
			panic(err)
		}
	})
}

// BenchmarkDictEqScan1M measures a dictionary-equality predicate over 1M rows
// (city = 'nyc' AND a 10% ts band) with the city filter resolved by the
// low-cardinality bitmap index versus the residual decode-and-compare scan.
// The pair is recorded in BENCH_scan.json by `make bench`; the prepared
// predicate keeps the per-query dictionary hash lookup out of the loop.
func BenchmarkDictEqScan1M(b *testing.B) {
	dictEqBenchSetup(b)
	s := &dictEqBenchState
	nyc := s.schema.PrepareString("city", "nyc")
	run := func(b *testing.B, idx *Flood) {
		q := s.schema.Where().
			WithPreparedString(nyc).
			WithIntRange("ts", 400_000, 500_000).
			Query()
		agg := NewCount()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			agg.Reset()
			idx.Execute(q, agg)
		}
		b.StopTimer()
		if agg.Result() == 0 {
			b.Fatal("benchmark query matched nothing")
		}
	}
	b.Run("bitmapindex", func(b *testing.B) { run(b, s.bitmap) })
	b.Run("residualscan", func(b *testing.B) { run(b, s.residue) })
}
