package flood

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"flood/internal/faultfs"
	"flood/internal/wal"
)

// corruptionTyped reports whether err wraps one of the typed corruption
// sentinels — the only acceptable failure mode for damaged persistent state.
func corruptionTyped(err error) bool {
	return errors.Is(err, ErrTruncated) || errors.Is(err, ErrChecksum) || errors.Is(err, ErrVersion)
}

// queryCounts runs the fixture queries against an index and returns the
// match counts.
func queryCounts(fx *typedFixture, idx Index) []int64 {
	qs := fixtureQueries(fx)
	out := make([]int64, len(qs))
	for i, tc := range qs {
		agg := NewCount()
		idx.Execute(tc.q, agg)
		out[i] = agg.Result()
	}
	return out
}

// TestSnapshotEveryTruncationAndFlip is the snapshot half of the
// fault-injection property: for EVERY prefix truncation and EVERY
// single-byte corruption of a saved snapshot, Load must either return a
// typed corruption error or an index that answers queries exactly like the
// original (the models section may retrain) — never panic, never silently
// wrong rows.
func TestSnapshotEveryTruncationAndFlip(t *testing.T) {
	fx := newTypedFixture(t, 64, 41)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	want := queryCounts(fx, idx)

	check := func(kind string, pos int, data []byte) {
		t.Helper()
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			if !corruptionTyped(err) {
				t.Fatalf("%s at %d: untyped error %v", kind, pos, err)
			}
			return
		}
		got := queryCounts(fx, loaded)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s at %d: loaded index silently wrong (query %d: %d != %d)",
					kind, pos, i, got[i], want[i])
			}
		}
	}

	for cut := 0; cut <= len(snap); cut += corruptionStride {
		check("truncation", cut, snap[:cut])
	}
	for off := 0; off < len(snap); off += corruptionStride {
		check("flip", off, faultfs.Flip(snap, off))
	}
}

// corruptionStride walks every byte normally; under the race detector's
// ~10x slowdown the exhaustive sweeps sample a coprime stride instead, so
// the race CI lanes still cross every section boundary region.
var corruptionStride = func() int {
	if raceEnabled {
		return 13
	}
	return 1
}()

// TestSnapshotModelDamageRetrains pins the graceful-degradation contract at
// the public API: a flip inside the models section loads with Retrained set
// and correct results.
func TestSnapshotModelDamageRetrains(t *testing.T) {
	fx := newTypedFixture(t, 500, 42)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	want := queryCounts(fx, idx)

	// The models section is written last; damage its final payload byte
	// (just before the trailing 4-byte CRC).
	loaded, rep, err := LoadWithReport(bytes.NewReader(faultfs.Flip(snap, len(snap)-5)))
	if err != nil {
		t.Fatalf("model-section flip should degrade, got %v", err)
	}
	if !rep.Retrained || len(rep.Warnings) == 0 {
		t.Fatalf("expected retrain report, got %+v", rep)
	}
	if loaded.Schema() == nil {
		t.Fatal("schema lost during degraded load")
	}
	got := queryCounts(fx, loaded)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("retrained index wrong on query %d: %d != %d", i, got[i], want[i])
		}
	}
}

// TestSaveFileLoadFileAtomic exercises the atomic file helpers: round-trip,
// overwrite, and no temp-file litter or target damage when a write fails.
func TestSaveFileLoadFileAtomic(t *testing.T) {
	fx := newTypedFixture(t, 300, 43)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.flood")
	for i := 0; i < 2; i++ { // second pass overwrites
		if err := idx.SaveFile(path); err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Schema() == nil {
		t.Fatal("schema not restored from file")
	}
	want, got := queryCounts(fx, idx), queryCounts(fx, loaded)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: %d != %d", i, got[i], want[i])
		}
	}
	// A failing write must leave no temp litter and not clobber the target.
	if err := WriteFileAtomic(path, func(io.Writer) error { return errors.New("boom") }); err == nil {
		t.Fatal("injected write error lost")
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp file litter: %v", entries)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("failed overwrite clobbered the snapshot: %v", err)
	}
}

// Inserted rows carry ts = insertBase+i — distinct values far above the
// fixture's ts range [0, 100k) — so recovery can be checked as an exact
// prefix of the acknowledged sequence by count and sum arithmetic.
const insertBase = 1_000_000

func insertedRow(fx *typedFixture, i int) []int64 {
	row, err := fx.schema.EncodeRow(int64(insertBase+i), 4.25, fx.city[i%len(fx.city)], fx.pickup[i%len(fx.pickup)])
	if err != nil {
		panic(err)
	}
	return row
}

// recoveredInserts counts the recovered inserted rows and fails the test
// unless they form an exact prefix {0..j-1} of the acknowledged sequence
// (checked via the arithmetic-series sum of their ts values).
func recoveredInserts(t *testing.T, idx Index) int64 {
	t.Helper()
	q := NewQuery(4).WithRange(0, insertBase, insertBase+1_000_000)
	cnt, sum := NewCount(), NewSum(0)
	idx.Execute(q, cnt)
	idx.Execute(q, sum)
	j := cnt.Result()
	wantSum := j*insertBase + j*(j-1)/2
	if got := sum.Result(); got != wantSum {
		t.Fatalf("recovered inserts are not the exact prefix: count %d, ts-sum %d != %d", j, got, wantSum)
	}
	return j
}

// baseRows counts the rows that came from the original fixture (ts below
// insertBase), so WAL damage can be distinguished from base-data damage.
func baseRows(idx Index) int64 {
	agg := NewCount()
	idx.Execute(NewQuery(4).WithRange(0, 0, insertBase-1), agg)
	return agg.Result()
}

// copyDir clones the durable directory so each corruption trial starts from
// the same on-disk state.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestDurableRecoverEveryWALCorruption is the WAL half of the property: a
// durable directory with acknowledged inserts is corrupted at every byte of
// the live segment (every truncation, every flip) and reopened. Recovery
// must always succeed — tail damage on the newest segment is the expected
// crash artifact — and must always yield an exact prefix of the
// acknowledged inserts with the base data intact: never a panic, never a
// row that was not inserted.
func TestDurableRecoverEveryWALCorruption(t *testing.T) {
	fx := newTypedFixture(t, 64, 44)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	master := t.TempDir()
	d, err := CreateDurable(master, idx, &DurableOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const inserts = 24
	for i := 0; i < inserts; i++ {
		if err := d.Insert(insertedRow(fx, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate kill -9: abandon d without Close. SyncAlways means every
	// acknowledged record already reached the disk.
	segName := wal.SegmentName(1)
	fi, err := os.Stat(filepath.Join(master, segName))
	if err != nil {
		t.Fatal(err)
	}
	segSize := fi.Size()

	verify := func(kind string, pos int64, dir string, wantFull bool) {
		t.Helper()
		re, _, err := OpenDurable(dir, nil)
		if err != nil {
			t.Fatalf("%s at %d: open failed: %v", kind, pos, err)
		}
		defer re.Close()
		j := recoveredInserts(t, re)
		if wantFull && j != inserts {
			t.Fatalf("%s at %d: recovered %d of %d acked inserts", kind, pos, j, inserts)
		}
		if n := baseRows(re); n != 64 {
			t.Fatalf("%s at %d: base data damaged: %d of 64 rows", kind, pos, n)
		}
	}

	// Sanity: the uncorrupted directory recovers everything.
	verify("clean", -1, copyDir(t, master), true)

	for cut := int64(0); cut <= segSize; cut += int64(corruptionStride) {
		dir := copyDir(t, master)
		if err := faultfs.TruncateFile(filepath.Join(dir, segName), cut); err != nil {
			t.Fatal(err)
		}
		verify("truncation", cut, dir, false)
	}
	for off := int64(0); off < segSize; off += int64(corruptionStride) {
		dir := copyDir(t, master)
		if err := faultfs.FlipByteInFile(filepath.Join(dir, segName), off); err != nil {
			t.Fatal(err)
		}
		verify("flip", off, dir, false)
	}
}

// TestDurableSnapshotCorruptionIsTypedOrRecovered flips every byte of the
// snapshot file in a durable directory: OpenDurable must either fail with a
// typed corruption error or recover a fully correct index (models retrain,
// WAL replay still applies every acknowledged insert).
func TestDurableSnapshotCorruptionIsTypedOrRecovered(t *testing.T) {
	fx := newTypedFixture(t, 48, 45)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	master := t.TempDir()
	d, err := CreateDurable(master, idx, &DurableOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const inserts = 8
	for i := 0; i < inserts; i++ {
		if err := d.Insert(insertedRow(fx, i)); err != nil {
			t.Fatal(err)
		}
	}
	fi, err := os.Stat(filepath.Join(master, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	for off := int64(0); off < fi.Size(); off += int64(corruptionStride) {
		dir := copyDir(t, master)
		if err := faultfs.FlipByteInFile(filepath.Join(dir, snapshotFile), off); err != nil {
			t.Fatal(err)
		}
		re, _, err := OpenDurable(dir, nil)
		if err != nil {
			if !corruptionTyped(err) {
				t.Fatalf("flip at %d: untyped error %v", off, err)
			}
			continue
		}
		if j := recoveredInserts(t, re); j != inserts {
			t.Fatalf("flip at %d: recovered %d of %d acked inserts", off, j, inserts)
		}
		if n := baseRows(re); n != 48 {
			t.Fatalf("flip at %d: base data silently wrong: %d of 48 rows", off, n)
		}
		re.Close()
	}
}

// TestCheckpointKillPoints crashes a checkpoint at every stage boundary
// (after WAL rotation, after closing the old segment, after the snapshot
// rename) and verifies the directory recovers every acknowledged insert and
// keeps working afterwards.
func TestCheckpointKillPoints(t *testing.T) {
	for _, stage := range []string{"rotated", "old-closed", "snapshot"} {
		t.Run(stage, func(t *testing.T) {
			fx := newTypedFixture(t, 64, 46)
			idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			d, err := CreateDurable(dir, idx, &DurableOptions{Sync: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := d.Insert(insertedRow(fx, i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Checkpoint(); err != nil { // clean checkpoint first
				t.Fatal(err)
			}
			for i := 10; i < 20; i++ {
				if err := d.Insert(insertedRow(fx, i)); err != nil {
					t.Fatal(err)
				}
			}
			d.crashPoint = func(s string) {
				if s == stage {
					panic("crash:" + stage)
				}
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("crash point did not fire")
					}
				}()
				d.Checkpoint() //nolint:errcheck // panics by design
			}()

			re, rep, err := OpenDurable(dir, nil)
			if err != nil {
				t.Fatalf("recovery after crash at %q: %v", stage, err)
			}
			if j := recoveredInserts(t, re); j != 20 {
				t.Fatalf("crash at %q: recovered %d of 20 acked inserts (report %+v)", stage, j, rep)
			}
			// The recovered index keeps working: insert, checkpoint, reopen.
			if err := re.Insert(insertedRow(fx, 20)); err != nil {
				t.Fatal(err)
			}
			if err := re.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			re2, _, err := OpenDurable(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			if j := recoveredInserts(t, re2); j != 21 {
				t.Fatalf("post-recovery checkpoint lost rows: %d of 21", j)
			}
		})
	}
}

// TestCheckpointConcurrentServing races Execute and Insert against repeated
// checkpoints (runs in the CI race matrix), then recovers the directory and
// checks every acknowledged insert survived.
func TestCheckpointConcurrentServing(t *testing.T) {
	fx := newTypedFixture(t, 256, 47)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	d, err := CreateDurable(dir, idx, &DurableOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 4, 40
	var next atomic.Int64
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < per; i++ {
				n := next.Add(1) - 1
				if err := d.Insert(insertedRow(fx, int(n))); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}()
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			q := fx.schema.Where().WithFloatRange("fare", 1.0, 9.0).Query()
			for {
				select {
				case <-stop:
					return
				default:
					d.Execute(q, NewCount())
				}
			}
		}()
	}
	ckErr := make(chan error, 1)
	writers.Add(1)
	go func() {
		defer writers.Done()
		for c := 0; c < 5; c++ {
			if err := d.Checkpoint(); err != nil {
				ckErr <- err
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	select {
	case err := <-ckErr:
		t.Fatal(err)
	default:
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, _, err := OpenDurable(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if j := recoveredInserts(t, re); j != workers*per {
		t.Fatalf("recovered %d of %d acked inserts", j, workers*per)
	}
}

// TestDurableSchemaTypedQueriesAfterRecovery verifies a reopened durable
// index serves typed queries through the snapshot-restored schema with no
// SetSchema call.
func TestDurableSchemaTypedQueriesAfterRecovery(t *testing.T) {
	fx := newTypedFixture(t, 400, 48)
	idx, err := BuildWithLayout(fx.tbl, fixtureLayout(fx), &Options{Schema: fx.schema})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	d, err := CreateDurable(dir, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, _, err := OpenDurable(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	s := re.Adaptive().Index().Schema()
	if s == nil {
		t.Fatal("schema not restored")
	}
	q := s.Where().WithStringEquals("city", "denver").Query()
	agg := NewCount()
	re.Execute(q, agg)
	want := int64(0)
	for _, c := range fx.city {
		if c == "denver" {
			want++
		}
	}
	if got := agg.Result(); got != want {
		t.Fatalf("typed query through restored schema: %d != %d", got, want)
	}
}
