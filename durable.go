package flood

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"flood/internal/colstore"
	"flood/internal/core"
	"flood/internal/wal"
	"flood/internal/wire"
)

// SyncPolicy re-exports the WAL sync policies at the public API surface.
type SyncPolicy = wal.SyncPolicy

// The sync policies, ordered from most to least durable; see the internal
// wal package for exact guarantees.
const (
	// SyncAlways fsyncs before each Insert returns.
	SyncAlways = wal.SyncAlways
	// SyncEveryInterval fsyncs on a background timer.
	SyncEveryInterval = wal.SyncInterval
	// SyncNever leaves flushing to the OS until checkpoint or Close.
	SyncNever = wal.SyncNone
)

// Durable directory layout: one snapshot plus numbered WAL segments.
//
//	snapshot.flood   checksummed v2 snapshot; its "wmrk" section holds the
//	                 generation g whose segments it absorbs (all gens <= g)
//	wal-%06d.log     insert log segments; replay applies gens > g in order
const (
	snapshotFile = "snapshot.flood"
	// sectionDelta persists the side-log rows a checkpoint captured beyond
	// the base index, so a checkpoint never pays a base rebuild.
	sectionDelta = "dlta"
	// sectionMarker persists the absorbed WAL generation.
	sectionMarker = "wmrk"
	// sectionTomb persists the deletion state: the base index's tombstone
	// words plus the dead rows of the captured side-log prefix. Unlike the
	// bitmap-index section, damage here is a hard load error, not a
	// degrade-and-rebuild: tombstones are not reconstructible from the data
	// sections, and silently dropping them would resurrect acknowledged
	// deletes.
	sectionTomb = "tomb"
)

// DurableOptions configures a DurableIndex.
type DurableOptions struct {
	// Sync selects the WAL sync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the flush period under SyncEveryInterval (default 50ms).
	SyncEvery time.Duration
	// Adaptive tunes the wrapped AdaptiveIndex (nil picks its defaults).
	Adaptive *AdaptiveConfig
}

func (o *DurableOptions) orDefault() DurableOptions {
	if o == nil {
		return DurableOptions{}
	}
	return *o
}

func (o DurableOptions) walOptions() wal.Options {
	return wal.Options{Policy: o.Sync, Interval: o.SyncEvery}
}

// RecoveryReport describes what OpenDurable reconstructed.
type RecoveryReport struct {
	// Retrained and Warnings carry the snapshot's degraded-recovery report
	// (see LoadReport).
	Retrained bool
	Warnings  []string
	// SnapshotRows is the row count restored from the snapshot (base index
	// plus its captured side rows).
	SnapshotRows int
	// ReplayedRows is the number of inserts recovered from WAL segments.
	ReplayedRows int
	// TruncatedTail reports that the newest WAL segment ended in a torn or
	// corrupt record and was cut back to its last valid record — the
	// expected artifact of a crash mid-append.
	TruncatedTail bool
}

// DurableIndex is a crash-safe serving index over a directory: an
// AdaptiveIndex whose inserts are write-ahead logged and whose state is
// periodically absorbed into an atomic, checksummed snapshot. After kill -9
// or power loss, OpenDurable restores the snapshot and replays the log tail,
// recovering every acknowledged insert up to the sync policy's window.
//
//	d, err := flood.CreateDurable(dir, idx, nil)
//	d.Insert(row)            // logged, then visible
//	d.Checkpoint()           // absorb the log into the snapshot
//	d.Close()
//	d, rep, err := flood.OpenDurable(dir, nil)   // after a crash
//
// Concurrency matches AdaptiveIndex: Execute, ExecuteBatch, and Insert from
// any number of goroutines; Checkpoint runs concurrently with all of them
// (writers stall only for a pointer swap).
type DurableIndex struct {
	dir  string
	a    *AdaptiveIndex
	opts DurableOptions

	// ckptMu serializes checkpoints; gen is the current WAL generation,
	// mutated only under it.
	ckptMu sync.Mutex
	gen    uint64

	// crashPoint, when set, runs at named stages of a checkpoint; the
	// fault-injection tests panic from it to simulate a crash between any
	// two durability steps.
	crashPoint func(stage string)
}

// CreateDurable initializes dir (created if needed) with a snapshot of base
// and an empty WAL segment, and returns the serving index. The directory
// must not already contain a snapshot.
func CreateDurable(dir string, base *Flood, opts *DurableOptions) (*DurableIndex, error) {
	o := opts.orDefault()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err == nil {
		return nil, fmt.Errorf("flood: %s already contains a snapshot (use OpenDurable)", dir)
	}
	d := &DurableIndex{dir: dir, a: NewAdaptiveIndex(base, o.Adaptive), opts: o}
	if err := d.writeSnapshot(0, base.idx, base.schema, nil, 0, base.idx.Tombstones(), nil); err != nil {
		return nil, err
	}
	l, err := wal.Create(filepath.Join(dir, wal.SegmentName(1)), 1, o.walOptions())
	if err != nil {
		return nil, err
	}
	d.gen = 1
	d.a.AttachWAL(l)
	return d, nil
}

// OpenDurable recovers the index persisted in dir: it loads the snapshot
// (with Load's corruption tolerance), replays every WAL segment past the
// snapshot's marker in generation order, truncates a damaged tail on the
// newest segment, rotates to a fresh segment, and resumes serving. Damage
// anywhere acknowledged data could be lost — a corrupt snapshot data
// section, a damaged non-newest segment, a missing segment generation —
// surfaces as a typed error instead of a silently wrong index.
func OpenDurable(dir string, opts *DurableOptions) (*DurableIndex, RecoveryReport, error) {
	o := opts.orDefault()
	var rep RecoveryReport

	f, err := os.Open(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, rep, err
	}
	res, err := core.LoadSections(bufio.NewReaderSize(f, 1<<20))
	f.Close()
	if err != nil {
		return nil, rep, err
	}
	rep.Retrained = res.Retrained
	rep.Warnings = res.Warnings

	fl, err := floodFromLoadResult(res)
	if err != nil {
		return nil, rep, err
	}
	marker := uint64(0)
	if p, ok := res.Extra[sectionMarker]; ok {
		r := wire.NewReaderBytes(p)
		marker = r.U64()
		if err := r.Err(); err != nil {
			return nil, rep, fmt.Errorf("flood: snapshot marker: %w", err)
		}
	}
	d := &DurableIndex{dir: dir, a: NewAdaptiveIndex(fl, o.Adaptive), opts: o}

	// Seed the side log with the checkpoint-captured rows.
	if p, ok := res.Extra[sectionDelta]; ok {
		cols, n, err := decodeSideRows(p, fl.Table().NumCols())
		if err != nil {
			return nil, rep, err
		}
		d.a.epoch.Load().log.seed(cols, n)
		rep.SnapshotRows = fl.Table().NumRows() + int(n)
	} else {
		rep.SnapshotRows = fl.Table().NumRows()
	}

	// Restore the deletion state. The base tombstones were installed by
	// floodFromLoadResult; the side-log dead rows apply after seeding.
	if p, ok := res.Extra[sectionTomb]; ok {
		_, logDead, err := decodeTombSection(p, fl.Table().NumRows())
		if err != nil {
			return nil, rep, err
		}
		if len(logDead) > 0 {
			log := d.a.epoch.Load().log
			n := log.rows()
			rows := make([]int, 0, len(logDead))
			for _, r := range logDead {
				if r < 0 || r >= n {
					return nil, rep, fmt.Errorf("flood: snapshot tombstones mark side row %d of %d: %w", r, n, ErrChecksum)
				}
				rows = append(rows, int(r))
			}
			log.deleteRows(rows, n)
		}
	}

	// Replay WAL segments beyond the marker, oldest first. Generations at
	// or below the marker are absorbed by the snapshot; a crash between
	// snapshot rename and segment deletion can leave them behind, so they
	// are cleaned up here.
	gens, err := listSegments(dir)
	if err != nil {
		return nil, rep, err
	}
	var replay []uint64
	for _, g := range gens {
		if g > marker {
			replay = append(replay, g)
		}
	}
	for i, g := range replay {
		if want := marker + 1 + uint64(i); g != want {
			return nil, rep, fmt.Errorf("flood: wal segment %s missing: %w", wal.SegmentName(want), ErrTruncated)
		}
		path := filepath.Join(dir, wal.SegmentName(g))
		ep := d.a.epoch.Load()
		r, err := wal.Replay(path, func(payload []byte) error {
			if isWALDelete(payload) {
				tuples, err := decodeWALDelete(payload, fl.Table().NumCols())
				if err != nil {
					return err
				}
				deleteTuples(ep, tuples)
				return nil
			}
			row, err := decodeWALRow(payload, fl.Table().NumCols())
			if err != nil {
				return err
			}
			return ep.log.append(row)
		})
		if err != nil {
			return nil, rep, fmt.Errorf("flood: replaying %s: %w", wal.SegmentName(g), err)
		}
		rep.ReplayedRows += r.Records
		if r.Damaged {
			if i != len(replay)-1 {
				// Damage before the newest segment means acknowledged,
				// synced inserts are gone — that must never be silent.
				return nil, rep, fmt.Errorf("flood: wal segment %s: %w", wal.SegmentName(g), r.Err)
			}
			if err := wal.TruncateTail(path, r.ValidSize); err != nil {
				return nil, rep, err
			}
			rep.TruncatedTail = true
		}
	}

	// Resume on a fresh segment; replayed segments are never appended to.
	next := marker + uint64(len(replay)) + 1
	l, err := wal.Create(filepath.Join(dir, wal.SegmentName(next)), next, o.walOptions())
	if err != nil {
		return nil, rep, err
	}
	d.gen = next
	d.a.AttachWAL(l)
	d.removeSegmentsThrough(marker, gens)
	return d, rep, nil
}

// Checkpoint absorbs the WAL into a fresh atomic snapshot: it rotates
// inserts onto a new segment, captures the current base index plus the
// frozen side-log prefix, writes them as the new snapshot, and deletes the
// absorbed segments. Serving continues throughout; a crash at any point
// leaves a directory OpenDurable recovers completely.
func (d *DurableIndex) Checkpoint() error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()

	newGen := d.gen + 1
	nl, err := wal.Create(filepath.Join(d.dir, wal.SegmentName(newGen)), newGen, d.opts.walOptions())
	if err != nil {
		return err
	}

	// Quiesce writers just long enough to capture a consistent image and
	// swap the log: rows [0, frozen) of the side log plus the (immutable)
	// base are exactly the inserts acknowledged against segments <= oldGen;
	// later inserts land in the new segment.
	a := d.a
	a.mu.Lock()
	ep := a.epoch.Load()
	frozen := ep.log.rows()
	cols := ep.log.columns(frozen)
	idx := ep.flood.idx
	// Deletions are WAL-appended and tombstone-published under one writer
	// lock hold, so relative to this capture every delete is either fully
	// before (its marks are in these pinned tombstone versions, its record
	// in an absorbed segment) or fully after (record in the new segment,
	// replayed on open) — never half in each, which would double-delete.
	baseTomb := idx.Tombstones()
	logTomb := ep.log.tomb.Load()
	old := a.walLog
	a.walLog = nl
	a.mu.Unlock()
	oldGen := d.gen
	d.gen = newGen
	d.crash("rotated")

	if old != nil {
		if err := old.Close(); err != nil {
			return fmt.Errorf("flood: closing wal segment: %w", err)
		}
	}
	d.crash("old-closed")

	// Every mark in the captured log tombstones is on a row that existed
	// when the mark was published, hence below frozen.
	var logDead []int64
	for r := int64(0); r < frozen; r++ {
		if logTomb.Has(int(r)) {
			logDead = append(logDead, r)
		}
	}
	if err := d.writeSnapshot(oldGen, idx, a.schema, cols, frozen, baseTomb, logDead); err != nil {
		return err
	}
	d.crash("snapshot")

	gens, err := listSegments(d.dir)
	if err != nil {
		return err
	}
	d.removeSegmentsThrough(oldGen, gens)
	return nil
}

// Close checkpoints nothing; it syncs and closes the active WAL segment and
// stops the adaptive index's background work. The directory remains openable
// with OpenDurable.
func (d *DurableIndex) Close() error {
	d.a.Close()
	d.a.mu.Lock()
	l := d.a.walLog
	d.a.walLog = nil
	d.a.mu.Unlock()
	if l == nil {
		return nil
	}
	return l.Close()
}

// Adaptive returns the wrapped serving index for its full API (stats,
// triggers, typed selects).
func (d *DurableIndex) Adaptive() *AdaptiveIndex { return d.a }

// Execute serves one query; see AdaptiveIndex.Execute.
func (d *DurableIndex) Execute(q Query, agg Aggregator) Stats { return d.a.Execute(q, agg) }

// ExecuteBatch serves a batch; see AdaptiveIndex.ExecuteBatch.
func (d *DurableIndex) ExecuteBatch(queries []Query, aggs []Aggregator) []Stats {
	return d.a.ExecuteBatch(queries, aggs)
}

// Insert logs and applies one row; acknowledged inserts survive a crash per
// the sync policy. See AdaptiveIndex.Insert.
func (d *DurableIndex) Insert(row []int64) error { return d.a.Insert(row) }

// Delete tombstones every live row matching q; the deletion is WAL-logged
// before it is acknowledged, so acknowledged deletes survive a crash at any
// point (they are either replayed from the log or absorbed into a snapshot's
// tombstone section). See AdaptiveIndex.Delete.
func (d *DurableIndex) Delete(q Query) (int64, error) { return d.a.Delete(q) }

// DeleteRows tombstones rows by their Select ids, with Delete's durability
// contract. See AdaptiveIndex.DeleteRows.
func (d *DurableIndex) DeleteRows(ids []int64) (int64, error) { return d.a.DeleteRows(ids) }

// Update rewrites every live row matching q with the assignments applied,
// logging the delete record and the re-inserted rows before acknowledging.
// See AdaptiveIndex.Update.
func (d *DurableIndex) Update(q Query, set []Assignment) (int64, error) { return d.a.Update(q, set) }

// Deleted returns the number of tombstoned (not yet compacted) rows.
func (d *DurableIndex) Deleted() int { return d.a.Deleted() }

// LiveRows returns the number of rows queries can observe.
func (d *DurableIndex) LiveRows() int { return d.a.LiveRows() }

// SetCrashPoint installs fn to run at the named stages of a checkpoint
// ("rotated", "old-closed", "snapshot"). Fault-injection harnesses panic
// from it to simulate a crash between any two durability steps; pass nil to
// clear. Not for production use.
func (d *DurableIndex) SetCrashPoint(fn func(stage string)) { d.crashPoint = fn }

// ExecuteContext serves one query with cancellation and limit support; see
// AdaptiveIndex.ExecuteContext.
func (d *DurableIndex) ExecuteContext(ctx context.Context, q Query, agg Aggregator) (Stats, error) {
	return d.a.ExecuteContext(ctx, q, agg)
}

// NumRows returns the total row count (base + pending inserts).
func (d *DurableIndex) NumRows() int { return d.a.NumRows() }

// Name implements Index.
func (d *DurableIndex) Name() string { return "Flood+Durable" }

// SizeBytes implements Index.
func (d *DurableIndex) SizeBytes() int64 { return d.a.SizeBytes() }

var (
	_ Index   = (*DurableIndex)(nil)
	_ Deleter = (*DurableIndex)(nil)
	_ Updater = (*DurableIndex)(nil)
)

func (d *DurableIndex) crash(stage string) {
	if d.crashPoint != nil {
		d.crashPoint(stage)
	}
}

// writeSnapshot atomically replaces the snapshot file with the captured
// image: base index, schema, side rows, deletion state, and the
// absorbed-generation marker. baseTomb and logDead must be the versions
// pinned at the same instant as cols/rows, never re-read at encode time — a
// delete landing between capture and encode belongs to the new WAL segment.
func (d *DurableIndex) writeSnapshot(marker uint64, idx *core.Flood, schema *Schema, cols [][]int64, rows int64, baseTomb *colstore.Tombstones, logDead []int64) error {
	return WriteFileAtomic(filepath.Join(d.dir, snapshotFile), func(w io.Writer) error {
		var extra []core.ExtraSection
		if schema != nil {
			extra = append(extra, core.ExtraSection{Tag: sectionSchema, Encode: schema.encodeSchema})
		}
		if rows > 0 {
			extra = append(extra, core.ExtraSection{Tag: sectionDelta, Encode: func(fw *wire.Writer) {
				fw.Int(len(cols))
				fw.I64(rows)
				for _, c := range cols {
					fw.I64s(c)
				}
			}})
		}
		if baseTomb.Dead() > 0 || len(logDead) > 0 {
			extra = append(extra, core.ExtraSection{Tag: sectionTomb, Encode: encodeTombSection(baseTomb, logDead)})
		}
		extra = append(extra, core.ExtraSection{Tag: sectionMarker, Encode: func(fw *wire.Writer) {
			fw.U64(marker)
		}})
		return idx.SaveSections(w, extra)
	})
}

// encodeTombSection serializes the deletion state: the covered base row
// count with the packed bitmap words, then the dead side-log row indices.
func encodeTombSection(baseTomb *colstore.Tombstones, logDead []int64) func(*wire.Writer) {
	return func(fw *wire.Writer) {
		if baseTomb.Dead() > 0 {
			fw.Int(baseTomb.Len())
			fw.U64s(baseTomb.Words())
		} else {
			fw.Int(0)
			fw.U64s(nil)
		}
		fw.I64s(logDead)
	}
}

// decodeTombSection parses the deletion state, validating the bitmap's
// structural invariants against the loaded table so corruption that survives
// the section checksum still cannot produce phantom deletions.
func decodeTombSection(payload []byte, baseRows int) (*colstore.Tombstones, []int64, error) {
	r := wire.NewReaderBytes(payload)
	n := r.Int()
	words := r.U64s()
	logDead := r.I64s()
	if err := r.Err(); err != nil {
		return nil, nil, fmt.Errorf("flood: snapshot tombstones: %w", err)
	}
	if n == 0 && len(words) == 0 {
		return nil, logDead, nil
	}
	if n != baseRows {
		return nil, nil, fmt.Errorf("flood: snapshot tombstones cover %d rows, base has %d: %w", n, baseRows, ErrChecksum)
	}
	t, ok := colstore.TombstonesFromWords(n, words)
	if !ok {
		return nil, nil, fmt.Errorf("flood: snapshot tombstones are structurally invalid: %w", ErrChecksum)
	}
	return t, logDead, nil
}

// decodeSideRows reads the checkpoint-captured side-log rows.
func decodeSideRows(payload []byte, wantCols int) ([][]int64, int64, error) {
	r := wire.NewReaderBytes(payload)
	nc := r.Int()
	n := r.I64()
	if err := r.Err(); err != nil {
		return nil, 0, fmt.Errorf("flood: snapshot side rows: %w", err)
	}
	if nc != wantCols || n < 0 {
		return nil, 0, fmt.Errorf("flood: snapshot side rows declare %d columns of %d rows, table has %d columns", nc, n, wantCols)
	}
	cols := make([][]int64, nc)
	for c := range cols {
		cols[c] = r.I64s()
		if err := r.Err(); err != nil {
			return nil, 0, fmt.Errorf("flood: snapshot side rows: %w", err)
		}
		if int64(len(cols[c])) != n {
			return nil, 0, fmt.Errorf("flood: snapshot side column %d has %d rows, expected %d", c, len(cols[c]), n)
		}
	}
	return cols, n, nil
}

// listSegments returns the WAL generations present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		if g, ok := wal.ParseSegmentName(e.Name()); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// removeSegmentsThrough deletes segments with generation <= g and fsyncs the
// directory. Deletion failures are ignored: a leftover absorbed segment is
// re-collected by the next open or checkpoint.
func (d *DurableIndex) removeSegmentsThrough(g uint64, gens []uint64) {
	removed := false
	for _, gen := range gens {
		if gen <= g {
			os.Remove(filepath.Join(d.dir, wal.SegmentName(gen)))
			removed = true
		}
	}
	if removed {
		SyncDir(d.dir)
	}
}

// encodeWALRow serializes one inserted row as a WAL record payload.
func encodeWALRow(row []int64) []byte {
	buf := make([]byte, 8*len(row))
	for i, v := range row {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
	}
	return buf
}

// decodeWALRow parses a WAL record payload back into a row, validating the
// dimensionality against the serving table.
func decodeWALRow(payload []byte, wantCols int) ([]int64, error) {
	if len(payload) != 8*wantCols {
		return nil, fmt.Errorf("flood: wal record of %d bytes for a %d-column table: %w",
			len(payload), wantCols, ErrChecksum)
	}
	row := make([]int64, wantCols)
	for i := range row {
		row[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return row, nil
}
