// Command adaptive demonstrates Flood's headline property (§7.4, Fig. 10):
// when the query workload shifts, relearning the layout restores
// performance, while static indexes stay tuned for yesterday's queries. The
// cost model is calibrated once and reused across relearns (§7.6).
package main

import (
	"fmt"
	"log"
	"time"

	flood "flood"
	"flood/datagen"
)

func main() {
	const rows = 200_000
	ds := datagen.TPCH(rows, 31)

	// Calibrate the cost model once (a per-machine cost, reused below).
	calib := datagen.StandardWorkload(ds, 100, 32)
	fmt.Println("calibrating cost model (one-time)...")
	model, err := flood.Calibrate(ds.Table, calib, &flood.Options{Seed: 33})
	if err != nil {
		log.Fatal(err)
	}

	avgTime := func(idx flood.Index, queries []flood.Query) time.Duration {
		var total time.Duration
		for _, q := range queries {
			agg := flood.NewCount()
			total += idx.Execute(q, agg).Total
		}
		return (total / time.Duration(len(queries))).Round(time.Microsecond)
	}

	// Three workload "eras", each with different filter dimensions. The
	// index learned for one era serves the next era's queries until it is
	// relearned.
	var current *flood.Flood
	for era, seed := range []int64{41, 42, 43} {
		queries := datagen.RandomWorkload(ds, 120, seed)
		train, test := datagen.SplitTrainTest(queries, 0.6, seed)

		if current == nil {
			start := time.Now()
			current, err = flood.Build(ds.Table, train, &flood.Options{CostModel: model, Seed: seed})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("era %d: built %s in %v; avg query %v\n",
				era, current.Layout(), time.Since(start).Round(time.Millisecond), avgTime(current, test))
			continue
		}

		staleTime := avgTime(current, test)
		start := time.Now()
		fresh, err := flood.Build(ds.Table, train, &flood.Options{CostModel: model, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		relearn := time.Since(start).Round(time.Millisecond)
		freshTime := avgTime(fresh, test)
		speedup := float64(staleTime) / float64(freshTime)
		fmt.Printf("era %d: stale layout served %v/query -> relearned %s in %v -> %v/query (%.1fx)\n",
			era, staleTime, fresh.Layout(), relearn, freshTime, speedup)
		current = fresh
	}
}
