// Command adaptive demonstrates the adaptive index lifecycle (§8, "Shifting
// workloads"): an AdaptiveIndex serves queries continuously while it samples
// the live workload, detects drift with its monitor, relearns the layout in
// the background, and swaps the fresh index in atomically — no query ever
// blocks on the rebuild. The cost model is calibrated once and reused across
// every relearn (§7.6).
package main

import (
	"fmt"
	"log"
	"time"

	flood "flood"
	"flood/datagen"
)

const (
	rows      = 200_000
	maxPasses = 40
)

// serve runs one pass of queries through the index and returns the average
// end-to-end latency.
func serve(a *flood.AdaptiveIndex, queries []flood.Query) time.Duration {
	var total time.Duration
	for _, q := range queries {
		total += a.Execute(q, flood.NewCount()).Total
	}
	return (total / time.Duration(len(queries))).Round(time.Microsecond)
}

// serveEra keeps serving an era's queries until the adaptive loop relearns
// (or the pass budget runs out, when a relearn is forced so the demo always
// completes). It returns the stale-layout latency from the first pass and
// the fresh-layout latency measured after the swap.
func serveEra(a *flood.AdaptiveIndex, queries []flood.Query) (stale, fresh time.Duration, passes int, forced bool) {
	before := a.Stats().Relearns
	stale = serve(a, queries)
	for passes = 1; passes < maxPasses && a.Stats().Relearns == before; passes++ {
		serve(a, queries)
	}
	if a.Stats().Relearns == before {
		forced = a.TriggerRelearn()
	}
	a.Wait()
	fresh = serve(a, queries)
	return stale, fresh, passes, forced
}

func main() {
	ds := datagen.TPCH(rows, 31)

	fmt.Println("calibrating cost model (one-time, reused by every relearn)...")
	calib := datagen.StandardWorkload(ds, 100, 32)
	model, err := flood.Calibrate(ds.Table, calib, &flood.Options{Seed: 33})
	if err != nil {
		log.Fatal(err)
	}

	// Era 0: learn an initial layout for the first workload.
	era0 := datagen.RandomWorkload(ds, 120, 41)
	train, test := datagen.SplitTrainTest(era0, 0.6, 41)
	start := time.Now()
	idx, err := flood.Build(ds.Table, train, &flood.Options{CostModel: model, Seed: 41})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("era 0: built %s in %v\n", idx.Layout(), time.Since(start).Round(time.Millisecond))

	a := flood.NewAdaptiveIndex(idx, &flood.AdaptiveConfig{
		WindowSize:        32,
		DriftFactor:       1.5,
		MinRelearnQueries: 20,
		Build:             &flood.Options{CostModel: model, Seed: 41},
	})
	defer a.Close()
	fmt.Printf("era 0: serving at %v/query\n", serve(a, test))

	// Eras 1 and 2: the workload shifts to different filter dimensions.
	// The stale layout slows down, the monitor notices, and a background
	// relearn swaps in a layout tuned for the new queries — while this
	// same loop keeps serving without interruption.
	for era, seed := range []int64{42, 43} {
		queries := datagen.RandomWorkload(ds, 120, seed)
		_, test := datagen.SplitTrainTest(queries, 0.6, seed)
		stale, fresh, passes, forced := serveEra(a, test)
		trigger := fmt.Sprintf("drift detected after %d pass(es)", passes)
		if forced {
			trigger = "relearn forced (drift below threshold on this machine)"
		}
		speedup := float64(stale) / float64(fresh)
		fmt.Printf("era %d: stale layout served %v/query -> %s -> relearned %s in background -> %v/query (%.1fx)\n",
			era+1, stale, trigger, a.Layout(), fresh, speedup)
	}

	st := a.Stats()
	fmt.Printf("lifecycle: %d queries served, %d relearns, %d merges, %d sampled queries, last swap %v ago\n",
		st.Queries, st.Relearns, st.Merges, st.SampledQueries,
		time.Since(st.LastSwap).Round(time.Millisecond))
}
