// Command analytics reproduces the paper's motivating scenario on TPC-H
// lineitem data (§7.3): analytical aggregations with multi-attribute range
// predicates, comparing the learned Flood index against a tuned clustered
// single-dimensional index and a full scan.
package main

import (
	"fmt"
	"log"
	"time"

	flood "flood"
	"flood/datagen"
)

func main() {
	const rows = 400_000
	fmt.Printf("generating %d lineitem rows...\n", rows)
	ds := datagen.TPCH(rows, 7)
	price := ds.ColumnIndex("extendedprice")
	ds.Table.EnableAggregate(price)

	train := datagen.StandardWorkload(ds, 200, 8)
	test := datagen.StandardWorkload(ds, 100, 9)

	fmt.Println("learning Flood layout from the training workload...")
	start := time.Now()
	idx, err := flood.Build(ds.Table, train, &flood.Options{Seed: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  learned %s in %v (metadata %dKB)\n",
		idx.Layout(), time.Since(start).Round(time.Millisecond), idx.SizeBytes()/1024)

	// Tune the clustered baseline the way an admin would: cluster on the
	// workload's most selective dimension.
	order := datagen.SelectivityOrder(ds, train, 11)
	cl, err := flood.BuildBaseline(flood.Clustered, ds.Table, flood.BaselineOptions{Dims: order})
	if err != nil {
		log.Fatal(err)
	}
	fs, err := flood.BuildBaseline(flood.FullScan, ds.Table, flood.BaselineOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nrunning %d test queries (SUM(extendedprice) with range predicates):\n", len(test))
	for _, e := range []flood.Index{idx, cl, fs} {
		var total time.Duration
		var scanned int64
		var check int64
		for _, q := range test {
			agg := flood.NewSum(price)
			st := e.Execute(q, agg)
			total += st.Total
			scanned += st.Scanned
			check += agg.Result()
		}
		fmt.Printf("  %-10s avg %-12v scanned/query %-10d (checksum %d)\n",
			e.Name(), (total / time.Duration(len(test))).Round(time.Microsecond),
			scanned/int64(len(test)), check)
	}
}
