// Command geospatial runs OSM-style spatial analytics (§7.3): "how many
// landmarks of a given category fall in this lat-lon rectangle, edited in
// this time window?" — comparing Flood's learned grid against a k-d tree,
// the strongest traditional spatial baseline on this workload.
package main

import (
	"fmt"
	"log"
	"time"

	flood "flood"
	"flood/datagen"
)

func main() {
	const rows = 300_000
	fmt.Printf("generating %d OSM-style records...\n", rows)
	ds := datagen.OSM(rows, 21)
	lat, lon := ds.ColumnIndex("lat"), ds.ColumnIndex("lon")
	tsCol, cat := ds.ColumnIndex("timestamp"), ds.ColumnIndex("category")

	train := datagen.StandardWorkload(ds, 150, 22)
	idx, err := flood.Build(ds.Table, train, &flood.Options{Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned layout: %s\n", idx.Layout())

	order := datagen.SelectivityOrder(ds, train, 24)
	kd, err := flood.BuildBaseline(flood.KDTree, ds.Table, flood.BaselineOptions{Dims: order, PageSize: 512})
	if err != nil {
		log.Fatal(err)
	}

	// A Manhattan-ish query rectangle around NYC with a category filter.
	nyc := flood.NewQuery(ds.Table.NumCols()).
		WithRange(lat, 40_600_000, 40_850_000).
		WithRange(lon, -74_050_000, -73_900_000).
		WithEquals(cat, 1)
	// A temporal slice: recent edits across the whole region.
	recent := flood.NewQuery(ds.Table.NumCols()).
		WithRange(tsCol, 9*365*24*3600, 10*365*24*3600)

	for name, q := range map[string]flood.Query{"nyc-rectangle": nyc, "recent-edits": recent} {
		fmt.Printf("\nquery %s:\n", name)
		for _, e := range []flood.Index{idx, kd} {
			agg := flood.NewCount()
			st := e.Execute(q, agg)
			fmt.Printf("  %-8s -> %8d records, %v (scan overhead %.1fx)\n",
				e.Name(), agg.Result(), st.Total.Round(time.Microsecond), st.ScanOverhead())
		}
	}

	// Throughput over the full test workload.
	test := datagen.StandardWorkload(ds, 100, 25)
	fmt.Printf("\nworkload of %d analytics queries:\n", len(test))
	for _, e := range []flood.Index{idx, kd} {
		var total time.Duration
		for _, q := range test {
			agg := flood.NewCount()
			total += e.Execute(q, agg).Total
		}
		fmt.Printf("  %-8s avg %v/query\n", e.Name(), (total / time.Duration(len(test))).Round(time.Microsecond))
	}
}
