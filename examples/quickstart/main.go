// Command quickstart shows the smallest end-to-end use of the flood package:
// load a table, describe the expected query workload, build a learned index,
// and run aggregation queries against it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	flood "flood"
)

func main() {
	// A tiny orders table: 100k rows, 4 columns, all int64 (dates as day
	// offsets, money as cents).
	const n = 100_000
	rng := rand.New(rand.NewSource(1))
	day := make([]int64, n)
	store := make([]int64, n)
	amount := make([]int64, n)
	items := make([]int64, n)
	for i := 0; i < n; i++ {
		day[i] = rng.Int63n(365)
		store[i] = rng.Int63n(50)
		amount[i] = 500 + rng.Int63n(100_000)
		items[i] = 1 + rng.Int63n(20)
	}
	tbl, err := flood.NewTable([]string{"day", "store", "amount", "items"},
		[][]int64{day, store, amount, items})
	if err != nil {
		log.Fatal(err)
	}

	// Describe the workload Flood should optimize for: mostly day-range +
	// store-equality filters, occasionally amount slices.
	var train []flood.Query
	for i := 0; i < 50; i++ {
		d0 := rng.Int63n(300)
		q := flood.NewQuery(4).WithRange(0, d0, d0+14).WithEquals(1, rng.Int63n(50))
		train = append(train, q)
	}
	for i := 0; i < 10; i++ {
		a0 := rng.Int63n(80_000)
		train = append(train, flood.NewQuery(4).WithRange(2, a0, a0+2_000))
	}

	idx, err := flood.Build(tbl, train, &flood.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned layout: %s (index metadata: %d bytes)\n",
		idx.Layout(), idx.SizeBytes())

	// COUNT orders at store 7 in a two-week window.
	count := flood.NewCount()
	q := flood.NewQuery(4).WithRange(0, 100, 113).WithEquals(1, 7)
	st := idx.Execute(q, count)
	fmt.Printf("orders at store 7, days 100-113: %d (scanned %d points in %v)\n",
		count.Result(), st.Scanned, st.Total)

	// SUM revenue over the same window.
	sum := flood.NewSum(2)
	idx.Execute(q, sum)
	fmt.Printf("revenue: $%.2f\n", float64(sum.Result())/100)

	// Compare with a plain full scan.
	fs, err := flood.BuildBaseline(flood.FullScan, tbl, flood.BaselineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	count2 := flood.NewCount()
	st2 := fs.Execute(q, count2)
	fmt.Printf("full scan agrees: %v (scanned %d points in %v)\n",
		count.Result() == count2.Result(), st2.Scanned, st2.Total)
}
