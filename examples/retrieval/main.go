// Command retrieval shows the typed schema and row-retrieval API end to
// end: declare a schema with string, float, and time columns, load logical
// rows through a TableBuilder, build a learned index, and get matching rows
// back out — via typed predicates, via SQL with projection, and as a top-k
// ordered cursor. Contrast with examples/quickstart, which stops at
// aggregates over raw int64 columns.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	flood "flood"
	"flood/floodsql"
)

func main() {
	// --- 1. Declare the logical schema -------------------------------
	// Physically everything is int64 (§7.1 of the paper): the schema
	// carries the encoders — a lexicographic dictionary for city, a
	// 2-decimal-digit scaler for fare, epoch seconds for pickup — and
	// decodes results back.
	schema := flood.NewSchema().
		String("city").
		Float64("fare", 2).
		Int64("dist").
		TimeUnit("pickup", time.Second)

	// --- 2. Load rides through the TableBuilder ----------------------
	rng := rand.New(rand.NewSource(7))
	cities := []string{"austin", "boston", "chicago", "nyc", "seattle"}
	day0 := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	b := schema.NewTableBuilder()
	const n = 200_000
	for i := 0; i < n; i++ {
		err := b.AppendRow(
			cities[rng.Intn(len(cities))],
			float64(rng.Intn(8000))/100, // fare: 0.00 .. 79.99
			int64(rng.Intn(300)),        // dist: blocks
			day0.Add(time.Duration(rng.Intn(14*24*3600))*time.Second),
		)
		if err != nil {
			log.Fatal(err)
		}
	}
	tbl, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// --- 3. Build the learned index for the expected workload --------
	var train []flood.Query
	for i := 0; i < 40; i++ {
		t0 := day0.Add(time.Duration(rng.Intn(10*24*3600)) * time.Second)
		train = append(train, schema.Where().
			WithStringEquals("city", cities[rng.Intn(len(cities))]).
			WithTimeRange("pickup", t0, t0.Add(24*time.Hour)).
			Query())
	}
	idx, err := flood.Build(tbl, train, &flood.Options{Schema: schema, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned layout %s over %d rides\n\n", idx.Layout(), n)

	// --- 4. Typed predicates + Select: get the rows back -------------
	day3 := day0.Add(3 * 24 * time.Hour)
	q := schema.Where().
		WithStringEquals("city", "nyc").
		WithFloatRange("fare", 1.50, 9.99).
		WithTimeRange("pickup", day3, day3.Add(24*time.Hour)).
		Query()
	rows, st := idx.Select(q, "city", "fare", "pickup")
	fmt.Printf("cheap nyc rides on day 3: %d (scanned %d points in %v)\n",
		rows.Len(), st.Scanned, st.Total)
	for i := 0; rows.Next() && i < 3; i++ {
		fmt.Printf("  %s  $%.2f  %s\n",
			rows.String(0), rows.Float64(1), rows.Time(2).Format(time.RFC3339))
	}
	rows.Close()

	// --- 5. Top-k: the 5 cheapest matching rides ---------------------
	rows, _ = idx.Select(q, "fare", "dist")
	rows.OrderBy("fare", 5)
	fmt.Println("\n5 cheapest of those rides:")
	for rows.Next() {
		fmt.Printf("  $%.2f over %d blocks\n", rows.Float64(0), rows.Int64(1))
	}
	rows.Close()

	// --- 6. The same through SQL with projection ---------------------
	stmt, err := floodsql.ParseTyped(
		"SELECT city, fare FROM rides WHERE city = 'seattle' AND fare BETWEEN 1.5 AND 9.99 AND dist >= 250",
		schema)
	if err != nil {
		log.Fatal(err)
	}
	rows, _, err = stmt.Select(idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSQL projection matched %d long cheap seattle rides; first 3:\n", rows.Len())
	for i := 0; rows.Next() && i < 3; i++ {
		fmt.Printf("  %s  $%.2f\n", rows.String(0), rows.Float64(1))
	}
	rows.Close()

	// --- 7. Parse errors point at the offending token ----------------
	_, err = floodsql.ParseTyped("SELECT city FROM rides WHERE fare BETWEEEN 1 AND 2", schema)
	fmt.Printf("\nmalformed SQL: %v\n", err)

	// --- 8. SelectContext: deadline + LIMIT pushdown -----------------
	// Serving code bounds every query: the context (or
	// QueryOptions.Deadline) caps wall time, and Limit stops the scan
	// after the k-th match instead of materializing the full result —
	// note how many fewer rows are scanned than in step 4.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rows, lst, err := idx.SelectContext(ctx, q, &flood.QueryOptions{Limit: 5}, "city", "fare")
	if err != nil {
		log.Fatal(err) // ErrCanceled would mean the deadline fired mid-scan
	}
	fmt.Printf("\nLIMIT 5 with a 50ms deadline: %d rows, scanned %d points (full query scanned %d)\n",
		rows.Len(), lst.Scanned, st.Scanned)
	for rows.Next() {
		fmt.Printf("  %s  $%.2f\n", rows.String(0), rows.Float64(1))
	}
	rows.Close()

	// The same bound through SQL: LIMIT rides the pushdown. A fresh
	// deadline — the previous context's 50ms may already be spent on the
	// query above and the printing between.
	stmt, err = floodsql.ParseTyped(
		"SELECT city, fare FROM rides WHERE city = 'nyc' LIMIT 3", schema)
	if err != nil {
		log.Fatal(err)
	}
	sqlCtx, sqlCancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer sqlCancel()
	rows, lst, err = stmt.SelectContext(sqlCtx, idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SQL LIMIT 3: %d rows, scanned %d points\n", rows.Len(), lst.Scanned)
	rows.Close()
}
