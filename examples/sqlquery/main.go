// Command sqlquery runs SQL aggregations (the fragment of §3) against a
// learned index through the floodsql front end, including OR predicates that
// are decomposed into disjoint rectangles before execution.
package main

import (
	"fmt"
	"log"
	"time"

	flood "flood"
	"flood/datagen"
	"flood/floodsql"
)

func main() {
	ds := datagen.TPCH(200_000, 51)
	train := datagen.StandardWorkload(ds, 150, 52)
	idx, err := flood.Build(ds.Table, train, &flood.Options{Seed: 53})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned layout: %s\n\n", idx.Layout())

	queries := []string{
		"SELECT COUNT(*) FROM lineitem WHERE shipdate BETWEEN 800 AND 830 AND discount >= 5",
		"SELECT SUM(extendedprice) FROM lineitem WHERE quantity < 10 AND shipdate >= 2000",
		"SELECT COUNT(*) FROM lineitem WHERE quantity = 1 OR quantity = 50",
		"SELECT MIN(extendedprice) FROM lineitem WHERE (discount = 0 OR discount = 10) AND quantity >= 45",
	}
	for _, sql := range queries {
		st, err := floodsql.Parse(sql, ds.Table)
		if err != nil {
			log.Fatal(err)
		}
		v, stats, err := st.Run(idx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  = %d   (%v, scanned %d rows over %d disjuncts)\n\n",
			sql, v, stats.Total.Round(time.Microsecond), stats.Scanned, max(1, len(st.Disjuncts)))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
