package flood

import (
	"math/rand"
	"testing"
	"time"

	"flood/internal/dataset"
	"flood/internal/workload"
)

func buildSmall(t *testing.T) (*Flood, *dataset.Dataset, []Query) {
	t.Helper()
	ds := dataset.Sales(6000, 201)
	queries := workload.Standard(ds, 30, 202)
	idx, err := Build(ds.Table, queries, &Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 203})
	if err != nil {
		t.Fatal(err)
	}
	return idx, ds, queries
}

func TestDeltaIndexInsertAndQuery(t *testing.T) {
	idx, ds, queries := buildSmall(t)
	d := NewDeltaIndex(idx, 0)
	if d.NumRows() != 6000 || d.Pending() != 0 {
		t.Fatal("fresh delta index counts wrong")
	}
	// Insert rows cloned from the dataset with a recognizable marker on
	// the date dimension.
	dateCol := ds.ColumnIndex("date")
	rng := rand.New(rand.NewSource(204))
	const added = 300
	for i := 0; i < added; i++ {
		src := rng.Intn(6000)
		row := make([]int64, ds.Table.NumCols())
		for c := range row {
			row[c] = ds.Cols[c][src]
		}
		row[dateCol] = 5000 + int64(i) // far outside the original domain
		if err := d.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if d.Pending() != added || d.NumRows() != 6000+added {
		t.Fatalf("pending %d rows, want %d", d.Pending(), added)
	}
	// A query isolating the inserted rows.
	agg := NewCount()
	d.Execute(NewQuery(ds.Table.NumCols()).WithRange(dateCol, 5000, 6000), agg)
	if agg.Result() != added {
		t.Fatalf("inserted-row query found %d, want %d", agg.Result(), added)
	}
	// Pre-existing queries still agree with the bare index plus delta.
	for _, q := range queries[:5] {
		if q.Ranges[dateCol].Present && q.Ranges[dateCol].Max >= 5000 {
			continue
		}
		a1, a2 := NewCount(), NewCount()
		idx.Execute(q, a1)
		d.Execute(q, a2)
		if a2.Result() < a1.Result() {
			t.Fatalf("delta query lost rows: %d < %d", a2.Result(), a1.Result())
		}
	}
	// Merge folds everything into the base.
	if err := d.Merge(); err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 0 || d.NumRows() != 6000+added {
		t.Fatalf("after merge: pending %d, rows %d", d.Pending(), d.NumRows())
	}
	agg.Reset()
	d.Execute(NewQuery(ds.Table.NumCols()).WithRange(dateCol, 5000, 6000), agg)
	if agg.Result() != added {
		t.Fatalf("post-merge query found %d, want %d", agg.Result(), added)
	}
}

func TestDeltaIndexAutoMerge(t *testing.T) {
	idx, ds, _ := buildSmall(t)
	d := NewDeltaIndex(idx, 50)
	row := make([]int64, ds.Table.NumCols())
	for i := 0; i < 120; i++ {
		if err := d.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if d.Pending() >= 50 {
		t.Fatalf("auto-merge did not fire: %d pending", d.Pending())
	}
	if d.NumRows() != 6120 {
		t.Fatalf("rows = %d, want 6120", d.NumRows())
	}
}

func TestDeltaIndexValidation(t *testing.T) {
	idx, _, _ := buildSmall(t)
	d := NewDeltaIndex(idx, 0)
	if err := d.Insert([]int64{1, 2}); err == nil {
		t.Fatal("short row should fail")
	}
	if err := d.Merge(); err != nil {
		t.Fatal("empty merge should be a no-op")
	}
}

func TestKNNPublicAPI(t *testing.T) {
	idx, ds, _ := buildSmall(t)
	point := make([]int64, ds.Table.NumCols())
	for c := range point {
		point[c] = ds.Cols[c][42]
	}
	nbrs, err := idx.KNN(point, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 5 {
		t.Fatalf("got %d neighbors", len(nbrs))
	}
	// The query point exists in the data, so the nearest distance is 0.
	if nbrs[0].Dist != 0 {
		t.Fatalf("nearest neighbor of an existing point should be at distance 0, got %f", nbrs[0].Dist)
	}
}

func TestMonitorDetectsDrift(t *testing.T) {
	m := NewMonitor(nil, 10, 2)
	// Establish a ~100µs reference window.
	for i := 0; i < 10; i++ {
		if m.Record(Stats{Total: 100 * time.Microsecond}) {
			t.Fatal("monitor fired while establishing reference")
		}
	}
	if m.Reference() == 0 {
		t.Fatal("reference not established")
	}
	// Mild noise must not fire.
	for i := 0; i < 10; i++ {
		if m.Record(Stats{Total: 150 * time.Microsecond}) {
			t.Fatal("monitor fired on mild noise")
		}
	}
	// A sustained 5x regression must fire within a window.
	fired := false
	for i := 0; i < 10; i++ {
		if m.Record(Stats{Total: 500 * time.Microsecond}) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("monitor failed to detect a 5x regression")
	}
}

func TestMonitorUsesPredictedCost(t *testing.T) {
	idx, _, _ := buildSmall(t)
	m := NewMonitor(idx, 4, 1000) // absurd factor: never fires
	if m.Reference() != idx.PredictedCost() {
		t.Fatal("monitor should seed its reference from the predicted cost")
	}
	for i := 0; i < 20; i++ {
		if m.Record(Stats{Total: time.Millisecond}) {
			t.Fatal("factor 1000 should never fire here")
		}
	}
}
