// Package flood is a learned multi-dimensional in-memory index, a Go
// implementation of "Learning Multi-dimensional Indexes" (Nathan, Ding,
// Alizadeh, Kraska — SIGMOD 2020).
//
// Flood speeds up analytical range scans with predicates over several
// attributes by jointly optimizing the data storage layout and the index
// structure for a target dataset and query workload. It lays the table out
// as a d-1 dimensional grid whose column boundaries are learned from the
// data's per-dimension CDFs ("flattening") and whose shape — which dimension
// sorts each cell, and how many columns each grid dimension gets — is chosen
// by gradient descent over a machine-learned cost model trained on a sample
// workload.
//
// Basic usage — declare a typed schema, load rows, build, and query for
// aggregates or for the matching rows themselves:
//
//	s := flood.NewSchema().Int64("ts").Float64("fare", 2).String("city")
//	b := s.NewTableBuilder()
//	b.AppendRow(int64(1000), 12.50, "nyc")          // ... one call per row
//	tbl, _ := b.Build()                             // fits dicts + scalers
//	idx, _ := flood.Build(tbl, trainQueries, &flood.Options{Schema: s})
//
//	q := s.Where().WithStringEquals("city", "nyc").
//		WithFloatRange("fare", 1.5, 9.99).Query()
//	stats := idx.Execute(q, flood.NewCount())       // aggregate ...
//	rows, _ := idx.Select(q, "city", "fare")        // ... or retrieve rows
//	for rows.Next() { _ = rows.String(0); _ = rows.Float64(1) }
//	rows.Close()
//
// Tables can also be built directly from int64 column-major data with
// NewTable, skipping the schema; Select then serves raw int64 values.
//
// Serving code bounds every query with the context-aware twins of each
// entry point: ExecuteContext and SelectContext honor cancellation and
// deadlines (stopping cooperatively mid-scan with ErrCanceled and partial
// Stats), and QueryOptions.Limit is pushed down into the scan kernel so a
// LIMIT k retrieval stops at the k-th match instead of materializing the
// full result.
//
// For production serving, AdaptiveIndex wraps a built index in the adaptive
// lifecycle of §8: it serves queries and inserts concurrently, samples the
// live workload, detects drift with a Monitor, relearns the layout in the
// background, and swaps the fresh index in atomically with zero downtime.
// DeltaIndex is the single-writer building block for insert buffering, and
// Save/Load persist a built index.
//
// The package also exposes the paper's seven baseline multi-dimensional
// indexes (see BuildBaseline) on the same column-store substrate, which is
// what the benchmark harness in cmd/floodbench uses to regenerate the
// paper's evaluation. Architecture and lifecycle documentation lives under
// docs/ in the repository.
package flood

import (
	"fmt"

	"flood/internal/colstore"
	"flood/internal/core"
	"flood/internal/costmodel"
	"flood/internal/optimizer"
	"flood/internal/query"
)

// Table is an immutable in-memory column store with block-delta compression
// (128-value blocks, §7.1). All values are int64: encode strings with a
// dictionary and scale decimals to integers before loading.
type Table = colstore.Table

// NewTable builds a table from column-major int64 data.
func NewTable(names []string, cols [][]int64) (*Table, error) {
	return colstore.NewTable(names, cols)
}

// Query is a conjunction of per-dimension ranges (a hyper-rectangle).
type Query = query.Query

// Range is one inclusive filter interval.
type Range = query.Range

// Stats instruments one query execution (scan overhead, per-phase times).
type Stats = query.Stats

// Aggregator accumulates a statistic over matching rows.
type Aggregator = query.Aggregator

// Index is the contract shared by Flood and every baseline.
type Index = query.Index

// Layout describes a Flood grid shape; obtain one from a built index via
// Layout(), or construct manually for BuildWithLayout.
type Layout = core.Layout

// CostModel is a calibrated query-time model, reusable across datasets
// (§7.6, Table 3).
type CostModel = costmodel.Model

// Unbounded range endpoints: a one-sided filter spans to NegInf or PosInf
// (§3.2.1).
const (
	NegInf = query.NegInf
	PosInf = query.PosInf
)

// NewQuery returns an unfiltered query over nDims dimensions. Add filters
// with WithRange / WithEquals.
func NewQuery(nDims int) Query { return query.NewQuery(nDims) }

// NewCount returns a COUNT(*) aggregator.
func NewCount() Aggregator { return query.NewCount() }

// NewSum returns a SUM(col) aggregator. Call Table.EnableAggregate(col)
// first to let exact sub-ranges resolve via cumulative aggregates (§7.1).
func NewSum(col int) Aggregator { return query.NewSum(col) }

// NewMin returns a MIN(col) aggregator.
func NewMin(col int) Aggregator { return query.NewMin(col) }

// NewMax returns a MAX(col) aggregator.
func NewMax(col int) Aggregator { return query.NewMax(col) }

// ExecuteOr evaluates a disjunction (OR) of conjunctive queries against any
// index, decomposing the rectangles into disjoint pieces first so every
// matching row is accumulated exactly once (§3). Against an index with a
// batched path (Flood, DeltaIndex) and a mergeable aggregator, the pieces
// execute as one batch over the shared worker pool. Indexes with their own
// disjunction handling — AdaptiveIndex, whose drift monitoring must not see
// the decomposed pieces — route through their ExecuteOr method instead.
func ExecuteOr(idx Index, queries []Query, agg Aggregator) Stats {
	if oi, ok := idx.(interface {
		ExecuteOr([]Query, Aggregator) Stats
	}); ok {
		return oi.ExecuteOr(queries, agg)
	}
	return query.ExecuteDisjunction(idx, queries, agg)
}

// Options tunes learned-index construction. The zero value (or nil) picks
// the paper's defaults.
type Options struct {
	// CostModel reuses a previously calibrated model; nil calibrates one
	// on the build table and workload (slower but self-contained).
	CostModel *CostModel
	// CalibrationLayouts is the number of random layouts used when
	// calibrating (default 10, §4.1.1).
	CalibrationLayouts int
	// DataSampleSize / QuerySampleSize bound the layout-search samples
	// (§7.7; defaults 2000 rows / 50 queries).
	DataSampleSize  int
	QuerySampleSize int
	// GDSteps is the number of gradient-descent steps per restart.
	GDSteps int
	// Delta is the per-cell refinement model error budget (§7.8,
	// default 50).
	Delta float64
	// ParallelCutoverRows is the estimated scanned-row count at or above
	// which Execute switches from the zero-allocation sequential scan to
	// the morsel-driven parallel engine. 0 picks the default (32K rows);
	// negative keeps every query sequential.
	ParallelCutoverRows int
	// BitmapIndexMaxCardinality is the largest per-column value spread
	// (max-min+1) for which Build creates a bitmap index. Residual filters
	// on bitmap-indexed columns — dictionary-coded strings, enums, flags —
	// resolve as precomputed-bitmap ANDs in the scan kernel instead of
	// decode-and-compare passes. 0 picks the default (64 distinct values);
	// negative disables bitmap indexes.
	BitmapIndexMaxCardinality int
	// Schema attaches the typed schema the table was built with, enabling
	// typed accessors on Select results. Equivalent to SetSchema after
	// Build.
	Schema *Schema
	// Seed makes builds reproducible.
	Seed int64
}

func (o Options) coreOptions() core.Options {
	return core.Options{
		Delta:                o.Delta,
		ParallelCutover:      o.ParallelCutoverRows,
		BitmapMaxCardinality: o.BitmapIndexMaxCardinality,
	}
}

func (o *Options) orDefault() Options {
	if o == nil {
		return Options{}
	}
	return *o
}

// Flood is a built learned index.
type Flood struct {
	idx    *core.Flood
	result optimizer.Result
	model  *CostModel
	schema *Schema // optional: decodes Select results (see SetSchema)
}

// Build learns a layout for tbl from the sample workload and constructs the
// index. The input table is not modified; the index holds a reordered copy.
func Build(tbl *Table, train []Query, opts *Options) (*Flood, error) {
	o := opts.orDefault()
	if len(train) == 0 {
		return nil, fmt.Errorf("flood: Build needs a sample query workload; use BuildWithLayout for manual layouts")
	}
	m := o.CostModel
	if m == nil {
		var err error
		m, err = costmodel.Calibrate(tbl, train, costmodel.CalibrationConfig{
			NumLayouts: o.CalibrationLayouts,
			Seed:       o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("flood: calibrating cost model: %w", err)
		}
	}
	res, err := optimizer.FindOptimalLayout(tbl, train, m, optimizer.Config{
		DataSampleSize:  o.DataSampleSize,
		QuerySampleSize: o.QuerySampleSize,
		GDSteps:         o.GDSteps,
		Seed:            o.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("flood: optimizing layout: %w", err)
	}
	idx, err := core.Build(tbl, res.Layout, o.coreOptions())
	if err != nil {
		return nil, fmt.Errorf("flood: building layout: %w", err)
	}
	return &Flood{idx: idx, result: res, model: m, schema: o.Schema}, nil
}

// Calibrate trains a reusable cost model on any dataset and workload
// (possibly synthetic); calibration is a once-per-machine cost (§7.6).
func Calibrate(tbl *Table, queries []Query, opts *Options) (*CostModel, error) {
	o := opts.orDefault()
	return costmodel.Calibrate(tbl, queries, costmodel.CalibrationConfig{
		NumLayouts: o.CalibrationLayouts,
		Seed:       o.Seed,
	})
}

// BuildWithLayout constructs a Flood index with an explicit layout, skipping
// learning. Useful for ablations and tests.
func BuildWithLayout(tbl *Table, layout Layout, opts *Options) (*Flood, error) {
	o := opts.orDefault()
	idx, err := core.Build(tbl, layout, o.coreOptions())
	if err != nil {
		return nil, err
	}
	return &Flood{idx: idx, result: optimizer.Result{Layout: layout}, schema: o.Schema}, nil
}

// Execute runs q through projection, refinement, and scan, feeding matching
// rows to agg. The aggregator is not reset: callers reset it between
// queries. Small queries run a zero-allocation sequential scan; queries
// whose refined ranges clear Options.ParallelCutoverRows fan out over a
// process-wide worker pool when the aggregator supports merging (all
// built-in aggregators do). The index is read-only after Build, so Execute
// may be called from any number of goroutines.
func (f *Flood) Execute(q Query, agg Aggregator) Stats { return f.idx.Execute(q, agg) }

// ExecuteBatch executes queries[i] into aggs[i] and returns per-query stats.
// The batch shares one worker pool across queries — each runs its zero-alloc
// sequential path while the batch fans out across cores — which is the
// highest-throughput arrangement for serving many concurrent queries.
// len(queries) must equal len(aggs); aggregators are not reset.
func (f *Flood) ExecuteBatch(queries []Query, aggs []Aggregator) []Stats {
	return f.idx.ExecuteBatch(queries, aggs)
}

// Name implements Index.
func (f *Flood) Name() string { return f.idx.Name() }

// SizeBytes reports index metadata size (cell table + models), excluding
// the stored data.
func (f *Flood) SizeBytes() int64 { return f.idx.SizeBytes() }

// Layout returns the (learned or supplied) layout.
func (f *Flood) Layout() Layout { return f.idx.Layout() }

// Model returns the cost model used to learn the layout (nil when the index
// was built with BuildWithLayout).
func (f *Flood) Model() *CostModel { return f.model }

// PredictedCost returns the model's predicted average query time in
// nanoseconds (0 when the layout was supplied manually).
func (f *Flood) PredictedCost() float64 { return f.result.PredictedCost }

// Table returns the index's reordered copy of the data.
func (f *Flood) Table() *Table { return f.idx.Table() }

// SetSchema attaches the typed schema the table was built with, so Select
// results decode floats, strings, and timestamps. Wrappers constructed from
// this index (NewDeltaIndex, NewAdaptiveIndex) inherit the schema at
// construction; set it before wrapping.
func (f *Flood) SetSchema(s *Schema) { f.schema = s }

// Schema returns the attached typed schema (nil when the index was built
// from raw int64 columns).
func (f *Flood) Schema() *Schema { return f.schema }

var (
	_ Index            = (*Flood)(nil)
	_ query.BatchIndex = (*Flood)(nil)
)
