package flood

import (
	"math/rand"
	"testing"

	"flood/internal/dataset"
	"flood/internal/workload"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	ds := dataset.TPCH(15000, 71)
	queries := workload.Standard(ds, 40, 72)
	idx, err := Build(ds.Table, queries, &Options{CalibrationLayouts: 3, GDSteps: 6, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Name() != "Flood" || idx.SizeBytes() <= 0 {
		t.Fatal("index metadata wrong")
	}
	if idx.PredictedCost() <= 0 || idx.Model() == nil {
		t.Fatal("learning metadata missing")
	}
	point := make([]int64, ds.Table.NumCols())
	for _, q := range queries[:15] {
		agg := NewCount()
		st := idx.Execute(q, agg)
		var want int64
		for i := 0; i < ds.Table.NumRows(); i++ {
			for d := range ds.Cols {
				point[d] = ds.Cols[d][i]
			}
			if q.Matches(point) {
				want++
			}
		}
		if agg.Result() != want {
			t.Fatalf("count = %d, want %d", agg.Result(), want)
		}
		if st.Total <= 0 {
			t.Fatal("stats missing timing")
		}
	}
}

func TestBuildRequiresWorkload(t *testing.T) {
	ds := dataset.Sales(500, 74)
	if _, err := Build(ds.Table, nil, nil); err == nil {
		t.Fatal("Build without workload should fail")
	}
}

func TestBuildWithLayoutAndReuseModel(t *testing.T) {
	ds := dataset.OSM(8000, 75)
	queries := workload.Standard(ds, 30, 76)
	m, err := Calibrate(ds.Table, queries, &Options{CalibrationLayouts: 3, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ds.Table, queries, &Options{CostModel: m, GDSteps: 5, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	manual, err := BuildWithLayout(ds.Table, Layout{GridDims: []int{2}, GridCols: []int{8}, SortDim: 3, Flatten: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if manual.PredictedCost() != 0 || manual.Model() != nil {
		t.Fatal("manual build should carry no learning metadata")
	}
	for _, q := range queries[:5] {
		a1, a2 := NewCount(), NewCount()
		idx.Execute(q, a1)
		manual.Execute(q, a2)
		if a1.Result() != a2.Result() {
			t.Fatalf("learned and manual layouts disagree: %d vs %d", a1.Result(), a2.Result())
		}
	}
}

func TestBuildBaselineKinds(t *testing.T) {
	ds := dataset.Sales(4000, 79)
	rng := rand.New(rand.NewSource(80))
	queries := workload.Standard(ds, 20, 81)
	for _, kind := range Baselines() {
		idx, err := BuildBaseline(kind, ds.Table, BaselineOptions{PageSize: 256})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		q := queries[rng.Intn(len(queries))]
		agg := NewCount()
		idx.Execute(q, agg)
		var want int64
		point := make([]int64, ds.Table.NumCols())
		for i := 0; i < ds.Table.NumRows(); i++ {
			for d := range ds.Cols {
				point[d] = ds.Cols[d][i]
			}
			if q.Matches(point) {
				want++
			}
		}
		if agg.Result() != want {
			t.Fatalf("%s: count = %d, want %d", kind, agg.Result(), want)
		}
	}
	if _, err := BuildBaseline("nope", ds.Table, BaselineOptions{}); err == nil {
		t.Fatal("unknown baseline should error")
	}
}

func TestSumWithAggregateColumn(t *testing.T) {
	ds := dataset.TPCH(6000, 82)
	priceCol := ds.ColumnIndex("extendedprice")
	ds.Table.EnableAggregate(priceCol)
	queries := workload.Standard(ds, 20, 83)
	idx, err := Build(ds.Table, queries, &Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 84})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries[:8] {
		agg := NewSum(priceCol)
		idx.Execute(q, agg)
		var want int64
		point := make([]int64, ds.Table.NumCols())
		for i := 0; i < ds.Table.NumRows(); i++ {
			for d := range ds.Cols {
				point[d] = ds.Cols[d][i]
			}
			if q.Matches(point) {
				want += ds.Cols[priceCol][i]
			}
		}
		if agg.Result() != want {
			t.Fatalf("sum = %d, want %d", agg.Result(), want)
		}
	}
}
