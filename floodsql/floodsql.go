// Package floodsql translates the SQL fragment the paper targets (§3) into
// flood queries:
//
//	SELECT SUM(R.X) FROM MyTable
//	WHERE (a <= R.Y AND R.Y <= b) AND (c <= R.Z AND R.Z <= d)
//
// The supported grammar covers single-table aggregations with conjunctive
// and disjunctive range predicates over integer-valued columns:
//
//	stmt   := SELECT agg FROM ident [WHERE pred]
//	agg    := COUNT(*) | SUM(col) | MIN(col) | MAX(col)
//	pred   := or
//	or     := and (OR and)*
//	and    := atom (AND atom)*
//	atom   := '(' pred ')' | col op value | col BETWEEN value AND value
//	op     := = | < | <= | > | >=
//
// Predicates are normalized to disjunctive normal form; disjuncts execute
// through flood.ExecuteOr, which decomposes them into disjoint rectangles so
// rows are never double-counted (§3: OR clauses "can be decomposed into
// multiple queries over disjoint attribute ranges").
package floodsql

import (
	"fmt"
	"strconv"
	"strings"

	flood "flood"
)

// Statement is a parsed, table-resolved aggregation query.
type Statement struct {
	// Agg is "count", "sum", "min", or "max".
	Agg string
	// AggCol is the aggregated column index (-1 for COUNT(*)).
	AggCol int
	// Table is the FROM identifier (informational; resolution happens
	// against the table passed to Parse).
	Table string
	// Disjuncts is the predicate in disjunctive normal form: the result
	// set is the union of these hyper-rectangles. An empty slice means
	// no WHERE clause (match everything).
	Disjuncts []flood.Query
	nDims     int
}

// Parse compiles a SQL string against tbl's schema.
func Parse(sql string, tbl *flood.Table) (*Statement, error) {
	p := &parser{lex: newLexer(sql), tbl: tbl}
	st, err := p.statement()
	if err != nil {
		return nil, fmt.Errorf("floodsql: %w", err)
	}
	return st, nil
}

// Run executes the statement against any index built over the same table.
func (s *Statement) Run(idx flood.Index) (int64, flood.Stats, error) {
	var agg flood.Aggregator
	switch s.Agg {
	case "count":
		agg = flood.NewCount()
	case "sum":
		agg = flood.NewSum(s.AggCol)
	case "min":
		agg = flood.NewMin(s.AggCol)
	case "max":
		agg = flood.NewMax(s.AggCol)
	default:
		return 0, flood.Stats{}, fmt.Errorf("floodsql: unknown aggregate %q", s.Agg)
	}
	queries := s.Disjuncts
	if len(queries) == 0 {
		queries = []flood.Query{flood.NewQuery(s.nDims)}
	}
	st := flood.ExecuteOr(idx, queries, agg)
	return agg.Result(), st, nil
}

// --- lexer ---

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokSymbol // ( ) , * =  < <= > >=
)

type token struct {
	kind tokenKind
	text string
}

type lexer struct {
	src string
	pos int
	tok token
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.next()
	return l
}

func (l *lexer) next() {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		l.tok = token{kind: tokEOF}
		return
	}
	c := l.src[l.pos]
	switch {
	case isAlpha(c):
		start := l.pos
		for l.pos < len(l.src) && (isAlpha(l.src[l.pos]) || isDigit(l.src[l.pos]) || l.src[l.pos] == '_' || l.src[l.pos] == '.') {
			l.pos++
		}
		l.tok = token{kind: tokIdent, text: l.src[start:l.pos]}
	case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		start := l.pos
		l.pos++
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		l.tok = token{kind: tokNumber, text: l.src[start:l.pos]}
	case c == '<' || c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.tok = token{kind: tokSymbol, text: l.src[l.pos : l.pos+2]}
			l.pos += 2
		} else {
			l.tok = token{kind: tokSymbol, text: string(c)}
			l.pos++
		}
	case c == '(' || c == ')' || c == ',' || c == '*' || c == '=':
		l.tok = token{kind: tokSymbol, text: string(c)}
		l.pos++
	default:
		l.tok = token{kind: tokSymbol, text: string(c)}
		l.pos++
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// --- parser ---

type parser struct {
	lex *lexer
	tbl *flood.Table
}

func (p *parser) statement() (*Statement, error) {
	if err := p.keyword("SELECT"); err != nil {
		return nil, err
	}
	st := &Statement{AggCol: -1, nDims: p.tbl.NumCols()}
	aggName, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Agg = strings.ToLower(aggName)
	if st.Agg != "count" && st.Agg != "sum" && st.Agg != "min" && st.Agg != "max" {
		return nil, fmt.Errorf("unsupported aggregate %q (want COUNT, SUM, MIN, or MAX)", aggName)
	}
	if err := p.symbol("("); err != nil {
		return nil, err
	}
	if st.Agg == "count" {
		if err := p.symbol("*"); err != nil {
			return nil, err
		}
	} else {
		col, err := p.column()
		if err != nil {
			return nil, err
		}
		st.AggCol = col
	}
	if err := p.symbol(")"); err != nil {
		return nil, err
	}
	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if p.lex.tok.kind == tokEOF {
		return st, nil
	}
	if err := p.keyword("WHERE"); err != nil {
		return nil, err
	}
	dnf, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.lex.tok.kind != tokEOF {
		return nil, fmt.Errorf("unexpected trailing input %q", p.lex.tok.text)
	}
	st.Disjuncts = dnf
	return st, nil
}

// orExpr returns the predicate as a DNF list of conjunctive queries.
func (p *parser) orExpr() ([]flood.Query, error) {
	out, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		p.lex.next()
		rhs, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, rhs...)
	}
	return out, nil
}

func (p *parser) andExpr() ([]flood.Query, error) {
	out, err := p.atom()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		p.lex.next()
		rhs, err := p.atom()
		if err != nil {
			return nil, err
		}
		// Distribute: (A1 ∨ A2) ∧ (B1 ∨ B2) = ∨_{i,j} (Ai ∧ Bj).
		var merged []flood.Query
		for _, a := range out {
			for _, b := range rhs {
				if q, ok := intersect(a, b); ok {
					merged = append(merged, q)
				}
			}
		}
		out = merged
		if len(out) == 0 {
			// Contradictory predicate: empty result, keep one
			// unsatisfiable query for well-formed execution.
			return []flood.Query{flood.NewQuery(p.tbl.NumCols()).WithRange(0, 1, 0)}, nil
		}
	}
	return out, nil
}

func (p *parser) atom() ([]flood.Query, error) {
	if p.lex.tok.kind == tokSymbol && p.lex.tok.text == "(" {
		p.lex.next()
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.symbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	col, err := p.column()
	if err != nil {
		return nil, err
	}
	if p.isKeyword("BETWEEN") {
		p.lex.next()
		lo, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.keyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.number()
		if err != nil {
			return nil, err
		}
		return []flood.Query{flood.NewQuery(p.tbl.NumCols()).WithRange(col, lo, hi)}, nil
	}
	if p.lex.tok.kind != tokSymbol {
		return nil, fmt.Errorf("expected comparison operator, found %q", p.lex.tok.text)
	}
	op := p.lex.tok.text
	p.lex.next()
	v, err := p.number()
	if err != nil {
		return nil, err
	}
	q := flood.NewQuery(p.tbl.NumCols())
	switch op {
	case "=":
		q = q.WithEquals(col, v)
	case "<":
		q = q.WithRange(col, minInt64, v-1)
	case "<=":
		q = q.WithRange(col, minInt64, v)
	case ">":
		q = q.WithRange(col, v+1, maxInt64)
	case ">=":
		q = q.WithRange(col, v, maxInt64)
	default:
		return nil, fmt.Errorf("unsupported operator %q", op)
	}
	return []flood.Query{q}, nil
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// intersect combines two conjunctive queries; ok is false when the
// conjunction is unsatisfiable.
func intersect(a, b flood.Query) (flood.Query, bool) {
	out := flood.Query{Ranges: append([]flood.Range(nil), a.Ranges...)}
	for d := range out.Ranges {
		rb := b.Ranges[d]
		if !rb.Present {
			continue
		}
		ra := out.Ranges[d]
		if !ra.Present {
			out.Ranges[d] = rb
			continue
		}
		if rb.Min > ra.Min {
			ra.Min = rb.Min
		}
		if rb.Max < ra.Max {
			ra.Max = rb.Max
		}
		if ra.Min > ra.Max {
			return out, false
		}
		out.Ranges[d] = ra
	}
	return out, true
}

func (p *parser) keyword(kw string) error {
	if !p.isKeyword(kw) {
		return fmt.Errorf("expected %s, found %q", kw, p.lex.tok.text)
	}
	p.lex.next()
	return nil
}

func (p *parser) isKeyword(kw string) bool {
	return p.lex.tok.kind == tokIdent && strings.EqualFold(p.lex.tok.text, kw)
}

func (p *parser) symbol(s string) error {
	if p.lex.tok.kind != tokSymbol || p.lex.tok.text != s {
		return fmt.Errorf("expected %q, found %q", s, p.lex.tok.text)
	}
	p.lex.next()
	return nil
}

func (p *parser) ident() (string, error) {
	if p.lex.tok.kind != tokIdent {
		return "", fmt.Errorf("expected identifier, found %q", p.lex.tok.text)
	}
	t := p.lex.tok.text
	p.lex.next()
	return t, nil
}

// column parses an identifier (optionally qualified, e.g. R.price) and
// resolves it against the table schema.
func (p *parser) column() (int, error) {
	name, err := p.ident()
	if err != nil {
		return 0, err
	}
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	col := p.tbl.ColumnIndex(name)
	if col < 0 {
		return 0, fmt.Errorf("unknown column %q", name)
	}
	return col, nil
}

func (p *parser) number() (int64, error) {
	if p.lex.tok.kind != tokNumber {
		return 0, fmt.Errorf("expected number, found %q", p.lex.tok.text)
	}
	t := strings.ReplaceAll(p.lex.tok.text, "_", "")
	p.lex.next()
	v, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q: %w", t, err)
	}
	return v, nil
}
