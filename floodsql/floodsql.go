// Package floodsql translates the SQL fragment the paper targets (§3) into
// flood queries:
//
//	SELECT SUM(R.X) FROM MyTable
//	WHERE (a <= R.Y AND R.Y <= b) AND (c <= R.Z AND R.Z <= d)
//
// The supported grammar covers single-table aggregations, row-retrieval
// projections, and mutations, with conjunctive and disjunctive predicates:
//
//	stmt    := select | delete | update
//	select  := SELECT target FROM ident [WHERE pred] [LIMIT n]
//	delete  := DELETE FROM ident [WHERE pred]
//	update  := UPDATE ident SET assign (',' assign)* [WHERE pred]
//	assign  := col = value
//	target  := agg | proj
//	agg     := COUNT(*) | SUM(col) | MIN(col) | MAX(col)
//	proj    := * | col (',' col)*
//	pred    := or
//	or      := and (OR and)*
//	and     := atom (AND atom)*
//	atom    := '(' pred ')' | col op value | col BETWEEN value AND value
//	         | col LIKE 'prefix%'
//	op      := = | < | <= | > | >=
//	value   := integer | float | 'string'
//
// DELETE and UPDATE execute through Statement.Exec against any index facade
// implementing flood.Deleter / flood.Updater; SET literals are encoded
// through the schema exactly like predicate literals (an assigned string
// must already be in the column's fitted dictionary, an assigned float must
// be representable in the column's decimal scale).
//
// Statements parsed against a raw int64 table (Parse) accept only integer
// literals and aggregation targets. Statements parsed against a typed schema
// (ParseTyped) additionally support projections and resolve float and string
// literals through the schema's encoders — decimal scalers round range
// endpoints conservatively inward, string comparisons follow lexicographic
// dictionary order, and LIKE supports prefix patterns.
//
// Predicates are normalized to disjunctive normal form; disjuncts execute
// through flood.ExecuteOr, which decomposes them into disjoint rectangles so
// rows are never double-counted (§3: OR clauses "can be decomposed into
// multiple queries over disjoint attribute ranges"). Projections return a
// *flood.Rows cursor via Statement.Select.
//
// LIMIT n applies to projections only (an aggregate always yields one row)
// and n must be a positive integer — LIMIT 0 and negative limits are
// rejected at parse time with a positioned error. The limit is pushed down
// into the scan kernel, not applied to a materialized result: execution
// stops after the n-th matching row, and with an OR predicate the budget is
// shared across the disjoint pieces so at most n rows are gathered in
// total. RunContext and SelectContext run statements under a caller's
// context for cancellation and deadlines.
//
// Parse errors carry the byte offset and the offending token:
//
//	floodsql: at byte 34 near "BETWEEEN": expected comparison operator
package floodsql

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	flood "flood"
)

// Statement is a parsed, table-resolved query: an aggregation
// (Agg = "count", "sum", "min", "max") executed with Run, a projection
// (Agg = "select") executed with Select, or a mutation (Agg = "insert",
// "delete", "update") executed with Exec.
type Statement struct {
	// Agg is "count", "sum", "min", "max", "select" for projections, or
	// "insert" / "delete" / "update" for mutations.
	Agg string
	// AggCol is the aggregated column index (-1 for COUNT(*) and
	// projections).
	AggCol int
	// Projection lists the selected column names for Agg == "select"
	// (resolved; SELECT * expands to every column in schema order).
	Projection []string
	// Table is the FROM identifier (informational; resolution happens
	// against the table or schema passed at parse time).
	Table string
	// Disjuncts is the predicate in disjunctive normal form: the result
	// set is the union of these hyper-rectangles. An empty slice means
	// no WHERE clause (match everything).
	Disjuncts []flood.Query
	// Limit is the LIMIT clause's row count (0 = no LIMIT). Select pushes
	// it down into the scan, stopping execution after the Limit-th match.
	Limit int
	// Assignments is the UPDATE statement's SET list, with literals already
	// encoded into the physical int64 domain.
	Assignments []flood.Assignment
	// InsertRows holds the INSERT statement's rows, already encoded into
	// the physical int64 domain in schema column order.
	InsertRows [][]int64
	nDims      int
	schema     *flood.Schema // non-nil for ParseTyped statements
}

// Parse compiles a SQL string against tbl's raw int64 schema. Only integer
// literals are accepted; use ParseTyped for float and string predicates and
// typed projections.
func Parse(sql string, tbl *flood.Table) (*Statement, error) {
	p := &parser{lex: newLexer(sql), cols: tbl}
	return p.run()
}

// ParseTyped compiles a SQL string against a typed schema (fitted by its
// TableBuilder), resolving float and string literals through the schema's
// encoders. Projections decode through the same schema when executed.
func ParseTyped(sql string, schema *flood.Schema) (*Statement, error) {
	p := &parser{lex: newLexer(sql), cols: schema, schema: schema}
	return p.run()
}

func (p *parser) run() (*Statement, error) {
	st, err := p.statement()
	if err != nil {
		return nil, fmt.Errorf("floodsql: %w", err)
	}
	return st, nil
}

// aggregator constructs the statement's aggregator, or errors for
// projection statements (which execute via Select).
func (s *Statement) aggregator() (flood.Aggregator, error) {
	switch s.Agg {
	case "count":
		return flood.NewCount(), nil
	case "sum":
		return flood.NewSum(s.AggCol), nil
	case "min":
		return flood.NewMin(s.AggCol), nil
	case "max":
		return flood.NewMax(s.AggCol), nil
	case "select":
		return nil, fmt.Errorf("floodsql: projection statements execute via Select, not Run")
	case "insert", "delete", "update":
		return nil, fmt.Errorf("floodsql: mutation statements execute via Exec, not Run")
	default:
		return nil, fmt.Errorf("floodsql: unknown aggregate %q", s.Agg)
	}
}

// Exec executes an INSERT, DELETE, or UPDATE statement against an index
// facade that supports mutation (flood.Inserter / flood.Deleter /
// flood.Updater: DeltaIndex, AdaptiveIndex, DurableIndex; plain Flood
// supports DELETE only). It returns
// the number of rows affected. An OR predicate executes one mutation per
// disjunct: deletes are idempotent so overlapping disjuncts never
// double-count, while an UPDATE whose rewritten rows still match a later
// disjunct rewrites them again (same final values — assignments are
// constants — but the affected count can exceed the distinct row count).
func (s *Statement) Exec(idx flood.Index) (int64, error) {
	switch s.Agg {
	case "delete":
		del, ok := idx.(flood.Deleter)
		if !ok {
			return 0, fmt.Errorf("floodsql: index %s does not support DELETE", idx.Name())
		}
		var total int64
		for _, q := range s.queries() {
			n, err := del.Delete(q)
			total += n
			if err != nil {
				return total, err
			}
		}
		return total, nil
	case "update":
		up, ok := idx.(flood.Updater)
		if !ok {
			return 0, fmt.Errorf("floodsql: index %s does not support UPDATE", idx.Name())
		}
		var total int64
		for _, q := range s.queries() {
			n, err := up.Update(q, s.Assignments)
			total += n
			if err != nil {
				return total, err
			}
		}
		return total, nil
	case "insert":
		ins, ok := idx.(flood.Inserter)
		if !ok {
			return 0, fmt.Errorf("floodsql: index %s does not support INSERT", idx.Name())
		}
		var total int64
		for _, row := range s.InsertRows {
			if err := ins.Insert(row); err != nil {
				return total, err
			}
			total++
		}
		return total, nil
	default:
		return 0, fmt.Errorf("floodsql: %s statements execute via Run or Select, not Exec", strings.ToUpper(s.Agg))
	}
}

// Run executes an aggregation statement against any index built over the
// same table, returning the result in the physical int64 domain (SUM/MIN/MAX
// over a decimal-scaled float column return the scaled integer — use
// RunTyped for the decoded logical value). Projection statements must run
// through Select instead.
func (s *Statement) Run(idx flood.Index) (int64, flood.Stats, error) {
	agg, err := s.aggregator()
	if err != nil {
		return 0, flood.Stats{}, err
	}
	st := flood.ExecuteOr(idx, s.queries(), agg)
	return agg.Result(), st, nil
}

// RunContext is Run under ctx: a canceled context or expired deadline stops
// execution cooperatively, returning the partial aggregate and Stats with
// flood.ErrCanceled.
func (s *Statement) RunContext(ctx context.Context, idx flood.Index) (int64, flood.Stats, error) {
	agg, err := s.aggregator()
	if err != nil {
		return 0, flood.Stats{}, err
	}
	st, err := flood.ExecuteOrContext(ctx, idx, s.queries(), agg)
	return agg.Result(), st, err
}

// RunTyped executes an aggregation like Run and decodes the result into the
// aggregated column's logical type: COUNT(*) yields int64, SUM/MIN/MAX over
// a float column yield float64 (decimal scaling is linear, so SUM decodes
// exactly), MIN/MAX over a time column yield time.Time. Requires a
// ParseTyped statement. A MIN/MAX that matched no rows returns a nil value
// (the raw sentinel has no meaningful decoding).
func (s *Statement) RunTyped(idx flood.Index) (any, flood.Stats, error) {
	v, st, err := s.Run(idx)
	if err != nil || s.schema == nil || s.AggCol < 0 {
		return v, st, err
	}
	if (s.Agg == "min" || s.Agg == "max") && st.Matched == 0 {
		// No rows matched: there is no extremum (checking the matched count
		// rather than the sentinel keeps a legitimate MIN of MaxInt64
		// distinguishable from an empty result).
		return nil, st, nil
	}
	return s.schema.DecodeValue(s.AggCol, v), st, nil
}

// Select executes a projection statement against any index built over the
// same table, returning a typed row cursor (close it when done). The
// statement must come from ParseTyped so results decode through the schema.
// A LIMIT clause rides the scan-level pushdown: execution stops after the
// limit-th matching row instead of truncating a materialized result.
func (s *Statement) Select(idx flood.Index) (*flood.Rows, flood.Stats, error) {
	return s.SelectContext(context.Background(), idx)
}

// SelectContext is Select under ctx: cancellation and deadlines stop the
// scan cooperatively (the rows gathered so far return with
// flood.ErrCanceled), and the statement's LIMIT is pushed down into the
// scan kernel, its budget shared across the disjoint pieces of an OR.
func (s *Statement) SelectContext(ctx context.Context, idx flood.Index) (*flood.Rows, flood.Stats, error) {
	if s.Agg != "select" {
		return nil, flood.Stats{}, fmt.Errorf("floodsql: aggregation statements execute via Run, not Select")
	}
	if s.schema == nil {
		return nil, flood.Stats{}, fmt.Errorf("floodsql: projection needs a typed schema; parse with ParseTyped")
	}
	return s.schema.SelectOrContext(ctx, idx, s.queries(), &flood.QueryOptions{Limit: s.Limit}, s.Projection...)
}

// queries returns the DNF rectangles, or one unfiltered query when there is
// no WHERE clause.
func (s *Statement) queries() []flood.Query {
	if len(s.Disjuncts) == 0 {
		return []flood.Query{flood.NewQuery(s.nDims)}
	}
	return s.Disjuncts
}

// --- column resolution ---

// columns abstracts the two name-resolution targets; *flood.Table and
// *flood.Schema both satisfy it directly.
type columns interface {
	ColumnIndex(name string) int
	Name(i int) string
	NumCols() int
}

// --- lexer ---

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber // integer or decimal literal
	tokString // '...' literal (text holds the unquoted value)
	tokSymbol // ( ) , * =  < <= > >=
)

type token struct {
	kind tokenKind
	text string
	off  int // byte offset of the token's first character
}

// describe renders a token for error messages.
func (t token) describe() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src string
	pos int
	tok token
	err error // first lexical error (unterminated string)
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.next()
	return l
}

func (l *lexer) next() {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		l.tok = token{kind: tokEOF, off: start}
		return
	}
	c := l.src[l.pos]
	switch {
	case isAlpha(c):
		for l.pos < len(l.src) && (isAlpha(l.src[l.pos]) || isDigit(l.src[l.pos]) || l.src[l.pos] == '_' || l.src[l.pos] == '.') {
			l.pos++
		}
		l.tok = token{kind: tokIdent, text: l.src[start:l.pos], off: start}
	case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		l.pos++
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && isDigit(l.src[l.pos+1]) {
			l.pos++
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
		l.tok = token{kind: tokNumber, text: l.src[start:l.pos], off: start}
	case c == '\'':
		// String literal; '' escapes a quote.
		var sb strings.Builder
		l.pos++
		for {
			if l.pos >= len(l.src) {
				l.tok = token{kind: tokEOF, off: start}
				if l.err == nil {
					l.err = fmt.Errorf("at byte %d: unterminated string literal", start)
				}
				return
			}
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		l.tok = token{kind: tokString, text: sb.String(), off: start}
	case c == '<' || c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.tok = token{kind: tokSymbol, text: l.src[l.pos : l.pos+2], off: start}
			l.pos += 2
		} else {
			l.tok = token{kind: tokSymbol, text: string(c), off: start}
			l.pos++
		}
	default:
		l.tok = token{kind: tokSymbol, text: string(c), off: start}
		l.pos++
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// --- parser ---

type parser struct {
	lex    *lexer
	cols   columns
	schema *flood.Schema // nil when parsing against a raw table
}

// errAt is the shared error constructor: every parse error pins the byte
// offset and the offending token, so malformed WHERE clauses point at the
// exact spot.
func (p *parser) errAt(tok token, format string, args ...any) error {
	if p.lex.err != nil {
		return p.lex.err
	}
	return fmt.Errorf("at byte %d near %s: %s", tok.off, tok.describe(), fmt.Sprintf(format, args...))
}

func (p *parser) statement() (*Statement, error) {
	if p.isKeyword("DELETE") {
		return p.deleteStatement()
	}
	if p.isKeyword("UPDATE") {
		return p.updateStatement()
	}
	if p.isKeyword("INSERT") {
		return p.insertStatement()
	}
	if !p.isKeyword("SELECT") {
		return nil, p.errAt(p.lex.tok, "expected SELECT, INSERT, DELETE, or UPDATE")
	}
	p.lex.next()
	st := &Statement{AggCol: -1, nDims: p.cols.NumCols(), schema: p.schema}
	if err := p.target(st); err != nil {
		return nil, err
	}
	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	var err error
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if p.lex.tok.kind == tokEOF && p.lex.err == nil {
		return st, nil
	}
	if p.isKeyword("WHERE") {
		p.lex.next()
		dnf, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.Disjuncts = dnf
	} else if !p.isKeyword("LIMIT") {
		return nil, p.errAt(p.lex.tok, "expected WHERE")
	}
	if p.isKeyword("LIMIT") {
		if err := p.limitClause(st); err != nil {
			return nil, err
		}
	}
	if p.lex.tok.kind != tokEOF || p.lex.err != nil {
		return nil, p.errAt(p.lex.tok, "unexpected trailing input")
	}
	return st, nil
}

// deleteStatement parses `DELETE FROM table [WHERE pred]`.
func (p *parser) deleteStatement() (*Statement, error) {
	p.lex.next()
	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	st := &Statement{Agg: "delete", AggCol: -1, nDims: p.cols.NumCols(), schema: p.schema}
	var err error
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	return p.optionalWhere(st)
}

// updateStatement parses `UPDATE table SET col = lit, ... [WHERE pred]`.
func (p *parser) updateStatement() (*Statement, error) {
	p.lex.next()
	st := &Statement{Agg: "update", AggCol: -1, nDims: p.cols.NumCols(), schema: p.schema}
	var err error
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.keyword("SET"); err != nil {
		return nil, err
	}
	for {
		colTok := p.lex.tok
		col, err := p.column()
		if err != nil {
			return nil, err
		}
		if err := p.symbol("="); err != nil {
			return nil, err
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		enc, err := p.encodeAssign(col, colTok, v)
		if err != nil {
			return nil, err
		}
		st.Assignments = append(st.Assignments, flood.Assignment{Col: col, Value: enc})
		if p.lex.tok.kind == tokSymbol && p.lex.tok.text == "," {
			p.lex.next()
			continue
		}
		break
	}
	return p.optionalWhere(st)
}

// insertStatement parses
// `INSERT INTO table [(col, ...)] VALUES (lit, ...) [, (lit, ...)]...`.
// Literals encode exactly (encodeAssign semantics): a float that does not
// land on a representable code, or a string missing from the column's
// dictionary, is an error rather than a silently rounded neighbour. When a
// column list is given it must name every column exactly once — flood rows
// are dense, so there is no value a partial INSERT could leave behind.
func (p *parser) insertStatement() (*Statement, error) {
	p.lex.next()
	if err := p.keyword("INTO"); err != nil {
		return nil, err
	}
	st := &Statement{Agg: "insert", AggCol: -1, nDims: p.cols.NumCols(), schema: p.schema}
	var err error
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	// Optional column list: a permutation of all columns.
	order := make([]int, 0, st.nDims)
	if p.lex.tok.kind == tokSymbol && p.lex.tok.text == "(" {
		p.lex.next()
		seen := make(map[int]bool, st.nDims)
		for {
			colTok := p.lex.tok
			col, err := p.column()
			if err != nil {
				return nil, err
			}
			if seen[col] {
				return nil, p.errAt(colTok, "column %q listed twice", p.cols.Name(col))
			}
			seen[col] = true
			order = append(order, col)
			if p.lex.tok.kind == tokSymbol && p.lex.tok.text == "," {
				p.lex.next()
				continue
			}
			break
		}
		if err := p.symbol(")"); err != nil {
			return nil, err
		}
		if len(order) != st.nDims {
			return nil, p.errAt(p.lex.tok, "INSERT column list names %d of %d columns; rows are dense, list all columns or none", len(order), st.nDims)
		}
	} else {
		for i := 0; i < st.nDims; i++ {
			order = append(order, i)
		}
	}
	if err := p.keyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.symbol("("); err != nil {
			return nil, err
		}
		row := make([]int64, st.nDims)
		for i, col := range order {
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			colTok := v.tok
			enc, err := p.encodeAssign(col, colTok, v)
			if err != nil {
				return nil, err
			}
			row[col] = enc
			if i < len(order)-1 {
				if err := p.symbol(","); err != nil {
					return nil, err
				}
			}
		}
		if err := p.symbol(")"); err != nil {
			return nil, err
		}
		st.InsertRows = append(st.InsertRows, row)
		if p.lex.tok.kind == tokSymbol && p.lex.tok.text == "," {
			p.lex.next()
			continue
		}
		break
	}
	if p.lex.tok.kind != tokEOF || p.lex.err != nil {
		return nil, p.errAt(p.lex.tok, "unexpected trailing input")
	}
	return st, nil
}

// optionalWhere parses the optional WHERE clause of a mutation statement and
// rejects trailing input. Mutations take no LIMIT: "delete some of the
// matches" has no deterministic meaning.
func (p *parser) optionalWhere(st *Statement) (*Statement, error) {
	if p.isKeyword("WHERE") {
		p.lex.next()
		dnf, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.Disjuncts = dnf
	}
	if p.lex.tok.kind != tokEOF || p.lex.err != nil {
		return nil, p.errAt(p.lex.tok, "unexpected trailing input")
	}
	return st, nil
}

// encodeAssign converts an assignment literal to the column's storage
// encoding: dictionary code for strings, scaled integer for floats (the value
// must land exactly on a representable code), raw int64 otherwise. Unlike
// predicates — where a miss just selects nothing — an assignment that cannot
// be represented exactly is an error, because storing a rounded neighbour
// would silently change the written value.
func (p *parser) encodeAssign(col int, colTok token, v value) (int64, error) {
	kind := p.kindOf(col)
	switch {
	case v.kind == tokString:
		if kind != flood.KindString {
			return 0, p.errAt(v.tok, "string literal on non-string column %q", p.cols.Name(col))
		}
		d := p.schema.Dictionary(p.cols.Name(col))
		if d == nil {
			return 0, p.errAt(v.tok, "column %q has no fitted dictionary yet (build the table first)", p.cols.Name(col))
		}
		c, ok := d.Code(v.s)
		if !ok {
			return 0, p.errAt(v.tok, "value %q is not in column %q's dictionary", v.s, p.cols.Name(col))
		}
		return c, nil
	case kind == flood.KindString:
		return 0, p.errAt(v.tok, "string column %q needs a string literal", p.cols.Name(col))
	case v.isFloat || kind == flood.KindFloat64:
		if kind != flood.KindFloat64 {
			return 0, p.errAt(v.tok, "float literal on non-float column %q", p.cols.Name(col))
		}
		sc := p.schema.Scaler(p.cols.Name(col))
		if sc == nil {
			return 0, p.errAt(v.tok, "column %q has no fitted scaler yet (build the table first)", p.cols.Name(col))
		}
		lo, hi := sc.EncodeLower(v.f), sc.EncodeUpper(v.f)
		if lo != hi {
			return 0, p.errAt(v.tok, "value %v is not representable in column %q's scale", v.f, p.cols.Name(col))
		}
		return lo, nil
	default:
		// Int64 columns, and time columns assigned as raw ticks.
		return v.i, nil
	}
}

// limitClause parses `LIMIT n`. The count must be a positive integer —
// LIMIT 0 would make every statement a no-op and a negative limit has no
// meaning, so both are rejected where they appear — and the clause only
// attaches to projections: an aggregate produces a single row, so a LIMIT
// there is almost certainly a misplaced intent to bound the scan.
func (p *parser) limitClause(st *Statement) error {
	limTok := p.lex.tok
	p.lex.next()
	numTok := p.lex.tok
	if numTok.kind != tokNumber || strings.Contains(numTok.text, ".") {
		return p.errAt(numTok, "LIMIT needs an integer row count")
	}
	n, err := strconv.ParseInt(strings.ReplaceAll(numTok.text, "_", ""), 10, 64)
	if err != nil {
		return p.errAt(numTok, "bad LIMIT count: %v", err)
	}
	if n <= 0 {
		return p.errAt(numTok, "LIMIT must be positive, got %d", n)
	}
	if n > int64(^uint(0)>>1) {
		return p.errAt(numTok, "LIMIT %d overflows", n)
	}
	if st.Agg != "select" {
		return p.errAt(limTok, "LIMIT applies to projections, not aggregates")
	}
	p.lex.next()
	st.Limit = int(n)
	return nil
}

// target parses the SELECT list: an aggregate call, *, or a column list.
func (p *parser) target(st *Statement) error {
	// SELECT * FROM ...
	if p.lex.tok.kind == tokSymbol && p.lex.tok.text == "*" {
		if p.schema == nil {
			return p.errAt(p.lex.tok, "projection needs a typed schema; parse with ParseTyped")
		}
		p.lex.next()
		st.Agg = "select"
		for i := 0; i < p.cols.NumCols(); i++ {
			st.Projection = append(st.Projection, p.cols.Name(i))
		}
		return nil
	}
	firstTok := p.lex.tok
	first, err := p.ident()
	if err != nil {
		return err
	}
	if p.lex.tok.kind == tokSymbol && p.lex.tok.text == "(" {
		st.Agg = strings.ToLower(first)
		if st.Agg != "count" && st.Agg != "sum" && st.Agg != "min" && st.Agg != "max" {
			return p.errAt(firstTok, "unsupported aggregate %q (want COUNT, SUM, MIN, or MAX)", first)
		}
		p.lex.next()
		if st.Agg == "count" {
			if err := p.symbol("*"); err != nil {
				return err
			}
		} else {
			colTok := p.lex.tok
			col, err := p.column()
			if err != nil {
				return err
			}
			// Aggregating an encoded column must be meaningful in the
			// logical domain: dictionary codes never are; time ticks sum
			// to nothing sensible (MIN/MAX are fine).
			switch p.kindOf(col) {
			case flood.KindString:
				return p.errAt(colTok, "cannot aggregate string column %q", p.cols.Name(col))
			case flood.KindTime:
				if st.Agg == "sum" {
					return p.errAt(colTok, "cannot SUM time column %q", p.cols.Name(col))
				}
			}
			st.AggCol = col
		}
		return p.symbol(")")
	}
	if p.schema == nil {
		return p.errAt(firstTok, "projection needs a typed schema; parse with ParseTyped")
	}
	// Projection list: first is a column name; more follow after commas.
	st.Agg = "select"
	col, err := p.resolve(first, firstTok)
	if err != nil {
		return err
	}
	st.Projection = append(st.Projection, p.cols.Name(col))
	for p.lex.tok.kind == tokSymbol && p.lex.tok.text == "," {
		p.lex.next()
		col, err := p.column()
		if err != nil {
			return err
		}
		st.Projection = append(st.Projection, p.cols.Name(col))
	}
	return nil
}

// orExpr returns the predicate as a DNF list of conjunctive queries.
func (p *parser) orExpr() ([]flood.Query, error) {
	out, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		p.lex.next()
		rhs, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, rhs...)
	}
	return out, nil
}

func (p *parser) andExpr() ([]flood.Query, error) {
	out, err := p.atom()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		p.lex.next()
		rhs, err := p.atom()
		if err != nil {
			return nil, err
		}
		// Distribute: (A1 ∨ A2) ∧ (B1 ∨ B2) = ∨_{i,j} (Ai ∧ Bj).
		var merged []flood.Query
		for _, a := range out {
			for _, b := range rhs {
				if q, ok := intersect(a, b); ok {
					merged = append(merged, q)
				}
			}
		}
		out = merged
		if len(out) == 0 {
			// Contradictory predicate: empty result, keep one
			// unsatisfiable query for well-formed execution.
			return []flood.Query{p.unsatisfiable()}, nil
		}
	}
	return out, nil
}

func (p *parser) unsatisfiable() flood.Query {
	return flood.NewQuery(p.cols.NumCols()).WithRange(0, 1, 0)
}

// value is one parsed literal.
type value struct {
	tok     token
	i       int64
	f       float64
	s       string
	kind    tokenKind // tokNumber (i, and f when isFloat) or tokString (s)
	isFloat bool
}

func (p *parser) value() (value, error) {
	tok := p.lex.tok
	switch tok.kind {
	case tokNumber:
		t := strings.ReplaceAll(tok.text, "_", "")
		p.lex.next()
		if strings.Contains(t, ".") {
			f, err := strconv.ParseFloat(t, 64)
			if err != nil {
				return value{}, p.errAt(tok, "bad number: %v", err)
			}
			return value{tok: tok, f: f, kind: tokNumber, isFloat: true}, nil
		}
		v, err := strconv.ParseInt(t, 10, 64)
		if err != nil {
			return value{}, p.errAt(tok, "bad number: %v", err)
		}
		return value{tok: tok, i: v, f: float64(v), kind: tokNumber}, nil
	case tokString:
		p.lex.next()
		return value{tok: tok, s: tok.text, kind: tokString}, nil
	}
	return value{}, p.errAt(tok, "expected a literal value")
}

func (p *parser) atom() ([]flood.Query, error) {
	if p.lex.tok.kind == tokSymbol && p.lex.tok.text == "(" {
		p.lex.next()
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.symbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	colTok := p.lex.tok
	col, err := p.column()
	if err != nil {
		return nil, err
	}
	if p.isKeyword("BETWEEN") {
		p.lex.next()
		lo, err := p.value()
		if err != nil {
			return nil, err
		}
		if err := p.keyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.value()
		if err != nil {
			return nil, err
		}
		q, err := p.rangeQuery(col, lo, hi)
		if err != nil {
			return nil, err
		}
		return []flood.Query{q}, nil
	}
	if p.isKeyword("LIKE") {
		likeTok := p.lex.tok
		p.lex.next()
		pat, err := p.value()
		if err != nil {
			return nil, err
		}
		q, err := p.likeQuery(col, colTok, likeTok, pat)
		if err != nil {
			return nil, err
		}
		return []flood.Query{q}, nil
	}
	if p.lex.tok.kind != tokSymbol || !isCompareOp(p.lex.tok.text) {
		return nil, p.errAt(p.lex.tok, "expected comparison operator")
	}
	op := p.lex.tok.text
	p.lex.next()
	v, err := p.value()
	if err != nil {
		return nil, err
	}
	q, err := p.compareQuery(col, op, v)
	if err != nil {
		return nil, err
	}
	return []flood.Query{q}, nil
}

func isCompareOp(s string) bool {
	switch s {
	case "=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// intBounds converts (op, integer literal) to an inclusive physical range.
// Strict comparisons against the extreme int64 values return an inverted
// (unsatisfiable) range instead of wrapping around the domain.
func intBounds(op string, v int64) (lo, hi int64) {
	switch op {
	case "=":
		return v, v
	case "<":
		if v == flood.NegInf {
			return 1, 0
		}
		return flood.NegInf, v - 1
	case "<=":
		return flood.NegInf, v
	case ">":
		if v == flood.PosInf {
			return 1, 0
		}
		return v + 1, flood.PosInf
	default: // ">="
		return v, flood.PosInf
	}
}

// compareQuery builds the single-range query for `col op literal`,
// dispatching on the column's logical kind when a schema is present.
func (p *parser) compareQuery(col int, op string, v value) (flood.Query, error) {
	base := flood.NewQuery(p.cols.NumCols())
	kind := p.kindOf(col)
	switch {
	case v.kind == tokString:
		if kind != flood.KindString {
			return base, p.errAt(v.tok, "string literal on non-string column %q", p.cols.Name(col))
		}
		d := p.schema.Dictionary(p.cols.Name(col))
		if d == nil {
			return base, p.errAt(v.tok, "column %q has no fitted dictionary yet (build the table first)", p.cols.Name(col))
		}
		var lo, hi int64 = 0, int64(d.Len()) - 1
		switch op {
		case "=":
			c, ok := d.Code(v.s)
			if !ok {
				return p.unsatisfiable(), nil
			}
			lo, hi = c, c
		case "<":
			hi = d.LowerBound(v.s) - 1
		case "<=":
			hi = d.UpperBound(v.s) - 1
		case ">":
			lo = d.UpperBound(v.s)
		case ">=":
			lo = d.LowerBound(v.s)
		}
		if lo > hi {
			return p.unsatisfiable(), nil
		}
		return base.WithRange(col, lo, hi), nil
	case v.isFloat:
		if kind != flood.KindFloat64 {
			return base, p.errAt(v.tok, "float literal on non-float column %q", p.cols.Name(col))
		}
		return p.floatCompare(base, col, op, v.f, v.tok)
	case kind == flood.KindFloat64:
		// Integer literal on a float column: treat as a float endpoint.
		return p.floatCompare(base, col, op, v.f, v.tok)
	case kind == flood.KindString:
		return base, p.errAt(v.tok, "string column %q needs a string literal", p.cols.Name(col))
	default:
		// Int64 columns, and time columns compared as raw ticks.
		lo, hi := intBounds(op, v.i)
		return base.WithRange(col, lo, hi), nil
	}
}

// floatCompare encodes a float comparison through the column's decimal
// scaler with conservative directed rounding: lo is the smallest code whose
// decoded value is >= v, hi the largest <= v; they coincide exactly when v
// lands on a representable code, which is what strict bounds and equality
// pivot on.
func (p *parser) floatCompare(base flood.Query, col int, op string, v float64, tok token) (flood.Query, error) {
	sc := p.schema.Scaler(p.cols.Name(col))
	if sc == nil {
		return base, p.errAt(tok, "column %q has no fitted scaler yet (build the table first)", p.cols.Name(col))
	}
	lo, hi := sc.EncodeLower(v), sc.EncodeUpper(v)
	exact := lo == hi
	switch op {
	case "=":
		if !exact {
			return p.unsatisfiable(), nil
		}
		return base.WithRange(col, lo, lo), nil
	case "<=":
		return base.WithRange(col, flood.NegInf, hi), nil
	case ">=":
		return base.WithRange(col, lo, flood.PosInf), nil
	case "<":
		if exact {
			if hi == flood.NegInf { // endpoint clamped at the domain floor
				return p.unsatisfiable(), nil
			}
			hi--
		}
		return base.WithRange(col, flood.NegInf, hi), nil
	default: // ">"
		if exact {
			if lo == flood.PosInf { // endpoint clamped at the domain ceiling
				return p.unsatisfiable(), nil
			}
			lo++
		}
		return base.WithRange(col, lo, flood.PosInf), nil
	}
}

// rangeQuery builds `col BETWEEN lo AND hi`.
func (p *parser) rangeQuery(col int, lo, hi value) (flood.Query, error) {
	base := flood.NewQuery(p.cols.NumCols())
	kind := p.kindOf(col)
	switch {
	case lo.kind == tokString || hi.kind == tokString:
		if lo.kind != tokString || hi.kind != tokString {
			return base, p.errAt(hi.tok, "BETWEEN endpoints must share a type")
		}
		if kind != flood.KindString {
			return base, p.errAt(lo.tok, "string literal on non-string column %q", p.cols.Name(col))
		}
		d := p.schema.Dictionary(p.cols.Name(col))
		if d == nil {
			return base, p.errAt(lo.tok, "column %q has no fitted dictionary yet (build the table first)", p.cols.Name(col))
		}
		l, h, ok := d.RangeFor(lo.s, hi.s)
		if !ok {
			return p.unsatisfiable(), nil
		}
		return base.WithRange(col, l, h), nil
	case lo.isFloat || hi.isFloat || kind == flood.KindFloat64:
		if kind != flood.KindFloat64 {
			return base, p.errAt(lo.tok, "float literal on non-float column %q", p.cols.Name(col))
		}
		sc := p.schema.Scaler(p.cols.Name(col))
		if sc == nil {
			return base, p.errAt(lo.tok, "column %q has no fitted scaler yet (build the table first)", p.cols.Name(col))
		}
		l, h := sc.EncodeLower(lo.f), sc.EncodeUpper(hi.f)
		if l > h {
			return p.unsatisfiable(), nil
		}
		return base.WithRange(col, l, h), nil
	case kind == flood.KindString:
		return base, p.errAt(lo.tok, "string column %q needs string literals", p.cols.Name(col))
	default:
		// Int64 columns, and time columns bounded by raw ticks.
		return base.WithRange(col, lo.i, hi.i), nil
	}
}

// likeQuery builds `col LIKE 'prefix%'`; only prefix patterns (a literal
// followed by a single trailing %) are supported.
func (p *parser) likeQuery(col int, colTok token, likeTok token, pat value) (flood.Query, error) {
	base := flood.NewQuery(p.cols.NumCols())
	if pat.kind != tokString {
		return base, p.errAt(pat.tok, "LIKE needs a string pattern")
	}
	if p.kindOf(col) != flood.KindString {
		return base, p.errAt(colTok, "LIKE on non-string column %q", p.cols.Name(col))
	}
	if !strings.HasSuffix(pat.s, "%") || strings.ContainsAny(strings.TrimSuffix(pat.s, "%"), "%_") {
		return base, p.errAt(pat.tok, "only prefix LIKE patterns ('abc%%') are supported")
	}
	d := p.schema.Dictionary(p.cols.Name(col))
	if d == nil {
		return base, p.errAt(pat.tok, "column %q has no fitted dictionary yet (build the table first)", p.cols.Name(col))
	}
	l, h, ok := d.PrefixRange(strings.TrimSuffix(pat.s, "%"))
	if !ok {
		return p.unsatisfiable(), nil
	}
	return base.WithRange(col, l, h), nil
}

// kindOf returns the logical kind of col (KindInt64 when parsing against a
// raw table).
func (p *parser) kindOf(col int) flood.Kind {
	if p.schema == nil {
		return flood.KindInt64
	}
	return p.schema.KindAt(col)
}

// intersect combines two conjunctive queries; ok is false when the
// conjunction is unsatisfiable.
func intersect(a, b flood.Query) (flood.Query, bool) {
	out := flood.Query{Ranges: append([]flood.Range(nil), a.Ranges...)}
	for d := range out.Ranges {
		rb := b.Ranges[d]
		if !rb.Present {
			continue
		}
		ra := out.Ranges[d]
		if !ra.Present {
			out.Ranges[d] = rb
			continue
		}
		if rb.Min > ra.Min {
			ra.Min = rb.Min
		}
		if rb.Max < ra.Max {
			ra.Max = rb.Max
		}
		if ra.Min > ra.Max {
			return out, false
		}
		out.Ranges[d] = ra
	}
	return out, true
}

func (p *parser) keyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errAt(p.lex.tok, "expected %s", kw)
	}
	p.lex.next()
	return nil
}

func (p *parser) isKeyword(kw string) bool {
	return p.lex.tok.kind == tokIdent && strings.EqualFold(p.lex.tok.text, kw)
}

func (p *parser) symbol(s string) error {
	if p.lex.tok.kind != tokSymbol || p.lex.tok.text != s {
		return p.errAt(p.lex.tok, "expected %q", s)
	}
	p.lex.next()
	return nil
}

func (p *parser) ident() (string, error) {
	if p.lex.tok.kind != tokIdent {
		return "", p.errAt(p.lex.tok, "expected identifier")
	}
	t := p.lex.tok.text
	p.lex.next()
	return t, nil
}

// column parses an identifier (optionally qualified, e.g. R.price) and
// resolves it against the table or schema.
func (p *parser) column() (int, error) {
	tok := p.lex.tok
	name, err := p.ident()
	if err != nil {
		return 0, err
	}
	return p.resolve(name, tok)
}

// resolve maps a (possibly qualified) column name to its index.
func (p *parser) resolve(name string, tok token) (int, error) {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	col := p.cols.ColumnIndex(name)
	if col < 0 {
		return 0, p.errAt(tok, "unknown column %q", name)
	}
	return col, nil
}
