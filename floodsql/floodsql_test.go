package floodsql

import (
	"math/rand"
	"testing"

	flood "flood"
)

func testTable(t *testing.T) (*flood.Table, [][]int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	n := 3000
	cols := make([][]int64, 3)
	for c := range cols {
		cols[c] = make([]int64, n)
		for i := range cols[c] {
			cols[c][i] = rng.Int63n(1000)
		}
	}
	tbl, err := flood.NewTable([]string{"price", "qty", "day"}, cols)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, cols
}

func testIndex(t *testing.T, tbl *flood.Table) flood.Index {
	t.Helper()
	idx, err := flood.BuildWithLayout(tbl, flood.Layout{
		GridDims: []int{0, 1}, GridCols: []int{8, 4}, SortDim: 2, Flatten: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func mustRun(t *testing.T, idx flood.Index, tbl *flood.Table, sql string) int64 {
	t.Helper()
	st, err := Parse(sql, tbl)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	v, _, err := st.Run(idx)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return v
}

func TestSelectCountWhere(t *testing.T) {
	tbl, cols := testTable(t)
	idx := testIndex(t, tbl)
	got := mustRun(t, idx, tbl, "SELECT COUNT(*) FROM orders WHERE price BETWEEN 100 AND 300 AND qty >= 500")
	var want int64
	for i := range cols[0] {
		if cols[0][i] >= 100 && cols[0][i] <= 300 && cols[1][i] >= 500 {
			want++
		}
	}
	if got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

func TestSelectSumQualifiedColumns(t *testing.T) {
	tbl, cols := testTable(t)
	idx := testIndex(t, tbl)
	got := mustRun(t, idx, tbl, "select sum(R.price) from T where R.day < 100 and R.day > 10")
	var want int64
	for i := range cols[0] {
		if cols[2][i] < 100 && cols[2][i] > 10 {
			want += cols[0][i]
		}
	}
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestSelectMinNoWhere(t *testing.T) {
	tbl, cols := testTable(t)
	idx := testIndex(t, tbl)
	got := mustRun(t, idx, tbl, "SELECT MIN(qty) FROM t")
	want := cols[1][0]
	for _, v := range cols[1] {
		if v < want {
			want = v
		}
	}
	if got != want {
		t.Fatalf("min = %d, want %d", got, want)
	}
}

func TestSelectMaxWhere(t *testing.T) {
	tbl, cols := testTable(t)
	idx := testIndex(t, tbl)
	got := mustRun(t, idx, tbl, "SELECT MAX(price) FROM t WHERE qty <= 400 OR day > 900")
	want := int64(-1 << 63)
	for i := range cols[0] {
		if (cols[1][i] <= 400 || cols[2][i] > 900) && cols[0][i] > want {
			want = cols[0][i]
		}
	}
	if got != want {
		t.Fatalf("max = %d, want %d", got, want)
	}
}

func TestDisjunction(t *testing.T) {
	tbl, cols := testTable(t)
	idx := testIndex(t, tbl)
	got := mustRun(t, idx, tbl,
		"SELECT COUNT(*) FROM t WHERE price <= 50 OR (price >= 900 AND qty = 7) OR day = 3")
	var want int64
	for i := range cols[0] {
		if cols[0][i] <= 50 || (cols[0][i] >= 900 && cols[1][i] == 7) || cols[2][i] == 3 {
			want++
		}
	}
	if got != want {
		t.Fatalf("disjunction count = %d, want %d", got, want)
	}
}

func TestNestedParensDistribute(t *testing.T) {
	tbl, cols := testTable(t)
	idx := testIndex(t, tbl)
	got := mustRun(t, idx, tbl,
		"SELECT COUNT(*) FROM t WHERE (price < 100 OR price > 900) AND (qty < 50 OR qty > 950)")
	var want int64
	for i := range cols[0] {
		p, q := cols[0][i], cols[1][i]
		if (p < 100 || p > 900) && (q < 50 || q > 950) {
			want++
		}
	}
	if got != want {
		t.Fatalf("distributed count = %d, want %d", got, want)
	}
}

func TestContradictionIsEmpty(t *testing.T) {
	tbl, _ := testTable(t)
	idx := testIndex(t, tbl)
	if got := mustRun(t, idx, tbl, "SELECT COUNT(*) FROM t WHERE price < 10 AND price > 20"); got != 0 {
		t.Fatalf("contradiction matched %d rows", got)
	}
}

func TestParseErrors(t *testing.T) {
	tbl, _ := testTable(t)
	bad := []string{
		"",
		"SELECT",
		"SELECT AVG(price) FROM t",
		"SELECT COUNT(*) FROM",
		"SELECT COUNT(*) FROM t WHERE",
		"SELECT COUNT(*) FROM t WHERE nosuchcol = 5",
		"SELECT COUNT(*) FROM t WHERE price == 5 garbage",
		"SELECT COUNT(*) FROM t WHERE price BETWEEN 1",
		"SELECT SUM(*) FROM t",
		"SELECT COUNT(*) FROM t WHERE (price = 1",
		"SELECT COUNT(*) FROM t WHERE price = 99999999999999999999",
	}
	for _, sql := range bad {
		if _, err := Parse(sql, tbl); err == nil {
			t.Fatalf("Parse(%q) should fail", sql)
		}
	}
}

func TestAgainstFullScan(t *testing.T) {
	tbl, _ := testTable(t)
	idx := testIndex(t, tbl)
	fs, err := flood.BuildBaseline(flood.FullScan, tbl, flood.BaselineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT COUNT(*) FROM t WHERE price <= 500",
		"SELECT SUM(day) FROM t WHERE qty BETWEEN 100 AND 200 OR price = 42",
		"SELECT COUNT(*) FROM t WHERE day >= 990 OR day <= 10",
		"SELECT MIN(price) FROM t WHERE qty > 500 AND day < 500",
	}
	for _, sql := range queries {
		if a, b := mustRun(t, idx, tbl, sql), mustRun(t, fs, tbl, sql); a != b {
			t.Fatalf("%s: flood=%d fullscan=%d", sql, a, b)
		}
	}
}

func TestNegativeNumbersAndUnderscores(t *testing.T) {
	tbl, cols := testTable(t)
	idx := testIndex(t, tbl)
	got := mustRun(t, idx, tbl, "SELECT COUNT(*) FROM t WHERE price >= -1_0 AND price <= 1_000")
	if got != int64(len(cols[0])) {
		t.Fatalf("full-range count = %d, want %d", got, len(cols[0]))
	}
}
