package floodsql

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	flood "flood"
)

func testTable(t *testing.T) (*flood.Table, [][]int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	n := 3000
	cols := make([][]int64, 3)
	for c := range cols {
		cols[c] = make([]int64, n)
		for i := range cols[c] {
			cols[c][i] = rng.Int63n(1000)
		}
	}
	tbl, err := flood.NewTable([]string{"price", "qty", "day"}, cols)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, cols
}

func testIndex(t *testing.T, tbl *flood.Table) flood.Index {
	t.Helper()
	idx, err := flood.BuildWithLayout(tbl, flood.Layout{
		GridDims: []int{0, 1}, GridCols: []int{8, 4}, SortDim: 2, Flatten: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func mustRun(t *testing.T, idx flood.Index, tbl *flood.Table, sql string) int64 {
	t.Helper()
	st, err := Parse(sql, tbl)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	v, _, err := st.Run(idx)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return v
}

func TestSelectCountWhere(t *testing.T) {
	tbl, cols := testTable(t)
	idx := testIndex(t, tbl)
	got := mustRun(t, idx, tbl, "SELECT COUNT(*) FROM orders WHERE price BETWEEN 100 AND 300 AND qty >= 500")
	var want int64
	for i := range cols[0] {
		if cols[0][i] >= 100 && cols[0][i] <= 300 && cols[1][i] >= 500 {
			want++
		}
	}
	if got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

func TestSelectSumQualifiedColumns(t *testing.T) {
	tbl, cols := testTable(t)
	idx := testIndex(t, tbl)
	got := mustRun(t, idx, tbl, "select sum(R.price) from T where R.day < 100 and R.day > 10")
	var want int64
	for i := range cols[0] {
		if cols[2][i] < 100 && cols[2][i] > 10 {
			want += cols[0][i]
		}
	}
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestSelectMinNoWhere(t *testing.T) {
	tbl, cols := testTable(t)
	idx := testIndex(t, tbl)
	got := mustRun(t, idx, tbl, "SELECT MIN(qty) FROM t")
	want := cols[1][0]
	for _, v := range cols[1] {
		if v < want {
			want = v
		}
	}
	if got != want {
		t.Fatalf("min = %d, want %d", got, want)
	}
}

func TestSelectMaxWhere(t *testing.T) {
	tbl, cols := testTable(t)
	idx := testIndex(t, tbl)
	got := mustRun(t, idx, tbl, "SELECT MAX(price) FROM t WHERE qty <= 400 OR day > 900")
	want := int64(-1 << 63)
	for i := range cols[0] {
		if (cols[1][i] <= 400 || cols[2][i] > 900) && cols[0][i] > want {
			want = cols[0][i]
		}
	}
	if got != want {
		t.Fatalf("max = %d, want %d", got, want)
	}
}

func TestDisjunction(t *testing.T) {
	tbl, cols := testTable(t)
	idx := testIndex(t, tbl)
	got := mustRun(t, idx, tbl,
		"SELECT COUNT(*) FROM t WHERE price <= 50 OR (price >= 900 AND qty = 7) OR day = 3")
	var want int64
	for i := range cols[0] {
		if cols[0][i] <= 50 || (cols[0][i] >= 900 && cols[1][i] == 7) || cols[2][i] == 3 {
			want++
		}
	}
	if got != want {
		t.Fatalf("disjunction count = %d, want %d", got, want)
	}
}

func TestNestedParensDistribute(t *testing.T) {
	tbl, cols := testTable(t)
	idx := testIndex(t, tbl)
	got := mustRun(t, idx, tbl,
		"SELECT COUNT(*) FROM t WHERE (price < 100 OR price > 900) AND (qty < 50 OR qty > 950)")
	var want int64
	for i := range cols[0] {
		p, q := cols[0][i], cols[1][i]
		if (p < 100 || p > 900) && (q < 50 || q > 950) {
			want++
		}
	}
	if got != want {
		t.Fatalf("distributed count = %d, want %d", got, want)
	}
}

func TestContradictionIsEmpty(t *testing.T) {
	tbl, _ := testTable(t)
	idx := testIndex(t, tbl)
	if got := mustRun(t, idx, tbl, "SELECT COUNT(*) FROM t WHERE price < 10 AND price > 20"); got != 0 {
		t.Fatalf("contradiction matched %d rows", got)
	}
}

func TestParseErrors(t *testing.T) {
	tbl, _ := testTable(t)
	bad := []string{
		"",
		"SELECT",
		"SELECT AVG(price) FROM t",
		"SELECT COUNT(*) FROM",
		"SELECT COUNT(*) FROM t WHERE",
		"SELECT COUNT(*) FROM t WHERE nosuchcol = 5",
		"SELECT COUNT(*) FROM t WHERE price == 5 garbage",
		"SELECT COUNT(*) FROM t WHERE price BETWEEN 1",
		"SELECT SUM(*) FROM t",
		"SELECT COUNT(*) FROM t WHERE (price = 1",
		"SELECT COUNT(*) FROM t WHERE price = 99999999999999999999",
	}
	for _, sql := range bad {
		if _, err := Parse(sql, tbl); err == nil {
			t.Fatalf("Parse(%q) should fail", sql)
		}
	}
}

func TestAgainstFullScan(t *testing.T) {
	tbl, _ := testTable(t)
	idx := testIndex(t, tbl)
	fs, err := flood.BuildBaseline(flood.FullScan, tbl, flood.BaselineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT COUNT(*) FROM t WHERE price <= 500",
		"SELECT SUM(day) FROM t WHERE qty BETWEEN 100 AND 200 OR price = 42",
		"SELECT COUNT(*) FROM t WHERE day >= 990 OR day <= 10",
		"SELECT MIN(price) FROM t WHERE qty > 500 AND day < 500",
	}
	for _, sql := range queries {
		if a, b := mustRun(t, idx, tbl, sql), mustRun(t, fs, tbl, sql); a != b {
			t.Fatalf("%s: flood=%d fullscan=%d", sql, a, b)
		}
	}
}

func TestNegativeNumbersAndUnderscores(t *testing.T) {
	tbl, cols := testTable(t)
	idx := testIndex(t, tbl)
	got := mustRun(t, idx, tbl, "SELECT COUNT(*) FROM t WHERE price >= -1_0 AND price <= 1_000")
	if got != int64(len(cols[0])) {
		t.Fatalf("full-range count = %d, want %d", got, len(cols[0]))
	}
}

// typedFixture builds a typed taxi-style table (city string, fare float(2),
// dist int) with ground-truth logical columns.
func typedFixture(t *testing.T) (*flood.Schema, flood.Index, []string, []float64, []int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	cities := []string{"austin", "boston", "chicago", "nyc", "seattle"}
	n := 4000
	var city []string
	var fare []float64
	var dist []int64
	for i := 0; i < n; i++ {
		city = append(city, cities[rng.Intn(len(cities))])
		fare = append(fare, float64(rng.Intn(5000))/100)
		dist = append(dist, rng.Int63n(300))
	}
	s := flood.NewSchema().String("city").Float64("fare", 2).Int64("dist")
	b := s.NewTableBuilder()
	if err := b.SetStringColumn("city", city); err != nil {
		t.Fatal(err)
	}
	if err := b.SetFloat64Column("fare", fare); err != nil {
		t.Fatal(err)
	}
	if err := b.SetInt64Column("dist", dist); err != nil {
		t.Fatal(err)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := flood.BuildWithLayout(tbl, flood.Layout{
		GridDims: []int{0, 2}, GridCols: []int{5, 4}, SortDim: 1, Flatten: true,
	}, &flood.Options{Schema: s})
	if err != nil {
		t.Fatal(err)
	}
	return s, idx, city, fare, dist
}

func mustSelect(t *testing.T, s *flood.Schema, idx flood.Index, sql string) *flood.Rows {
	t.Helper()
	st, err := ParseTyped(sql, s)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	rows, _, err := st.Select(idx)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return rows
}

// TestProjectionTypedLiterals is the acceptance query: string equality plus
// a float BETWEEN, projected through the schema with typed decoding.
func TestProjectionTypedLiterals(t *testing.T) {
	s, idx, city, fare, _ := typedFixture(t)
	rows := mustSelect(t, s, idx,
		"SELECT city, fare FROM t WHERE city = 'nyc' AND fare BETWEEN 1.5 AND 9.99")
	defer rows.Close()
	want := 0
	for i := range city {
		if city[i] == "nyc" && fare[i] >= 1.5 && fare[i] <= 9.99 {
			want++
		}
	}
	if cols := rows.Columns(); len(cols) != 2 || cols[0] != "city" || cols[1] != "fare" {
		t.Fatalf("projection = %v", cols)
	}
	got := 0
	for rows.Next() {
		if rows.String(0) != "nyc" {
			t.Fatalf("row city = %q", rows.String(0))
		}
		if f := rows.Float64(1); f < 1.5 || f > 9.99 {
			t.Fatalf("row fare = %v outside range", f)
		}
		got++
	}
	if got != want || got == 0 {
		t.Fatalf("projection matched %d rows, brute force %d", got, want)
	}
}

func TestProjectionStarAndDisjunction(t *testing.T) {
	s, idx, city, fare, dist := typedFixture(t)
	rows := mustSelect(t, s, idx,
		"SELECT * FROM t WHERE city < 'boston' OR (fare > 45.0 AND dist >= 250)")
	defer rows.Close()
	want := 0
	for i := range city {
		if city[i] < "boston" || (fare[i] > 45.0 && dist[i] >= 250) {
			want++
		}
	}
	if cols := rows.Columns(); len(cols) != 3 {
		t.Fatalf("SELECT * projected %v", cols)
	}
	if rows.Len() != want {
		t.Fatalf("matched %d rows, brute force %d", rows.Len(), want)
	}
	for rows.Next() {
		if !(rows.String(0) < "boston" || (rows.Float64(1) > 45.0 && rows.Int64(2) >= 250)) {
			t.Fatalf("row (%s, %v, %d) fails the predicate",
				rows.String(0), rows.Float64(1), rows.Int64(2))
		}
	}
}

func TestLikePrefix(t *testing.T) {
	s, idx, city, _, _ := typedFixture(t)
	rows := mustSelect(t, s, idx, "SELECT city FROM t WHERE city LIKE 'bo%'")
	defer rows.Close()
	want := 0
	for _, c := range city {
		if len(c) >= 2 && c[:2] == "bo" {
			want++
		}
	}
	if rows.Len() != want || want == 0 {
		t.Fatalf("LIKE matched %d rows, brute force %d", rows.Len(), want)
	}
	if _, err := ParseTyped("SELECT city FROM t WHERE city LIKE '%bo%'", s); err == nil {
		t.Fatal("non-prefix LIKE pattern should fail to parse")
	}
}

func TestTypedAggregates(t *testing.T) {
	s, idx, city, fare, _ := typedFixture(t)
	st, err := ParseTyped("SELECT COUNT(*) FROM t WHERE city >= 'chicago' AND fare <= 10.0", s)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := st.Run(idx)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := range city {
		if city[i] >= "chicago" && fare[i] <= 10.0 {
			want++
		}
	}
	if got != want {
		t.Fatalf("typed count = %d, want %d", got, want)
	}
}

func TestStrictFloatBounds(t *testing.T) {
	s, idx, _, fare, _ := typedFixture(t)
	st, err := ParseTyped("SELECT COUNT(*) FROM t WHERE fare < 10.0", s)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _ := st.Run(idx)
	var want int64
	for _, f := range fare {
		if f < 10.0 {
			want++
		}
	}
	if got != want {
		t.Fatalf("fare < 10.0 counted %d, want %d", got, want)
	}
	// Unknown dictionary value is an empty result, not an error.
	st, err = ParseTyped("SELECT COUNT(*) FROM t WHERE city = 'gotham'", s)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, _ := st.Run(idx); got != 0 {
		t.Fatalf("unknown city matched %d rows", got)
	}
}

func TestRunSelectMismatch(t *testing.T) {
	s, idx, _, _, _ := typedFixture(t)
	st, err := ParseTyped("SELECT city FROM t", s)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Run(idx); err == nil {
		t.Fatal("Run on a projection should fail")
	}
	st, err = ParseTyped("SELECT COUNT(*) FROM t", s)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Select(idx); err == nil {
		t.Fatal("Select on an aggregation should fail")
	}
	// Projections parsed against a raw table are rejected at parse time.
	tbl, _ := testTable(t)
	if _, err := Parse("SELECT price FROM t", tbl); err == nil ||
		!strings.Contains(err.Error(), "ParseTyped") {
		t.Fatalf("schema-less projection parse error = %v", err)
	}
	if _, err := Parse("SELECT * FROM t", tbl); err == nil {
		t.Fatal("schema-less SELECT * should fail at parse")
	}
}

// TestParseErrorPositions pins the debuggability contract: every parse error
// names the byte offset and the offending token.
func TestParseErrorPositions(t *testing.T) {
	tbl, _ := testTable(t)
	s, _, _, _, _ := typedFixture(t)
	cases := []struct {
		sql     string
		typed   bool
		wantSub string
	}{
		{"SELECT COUNT(*) FROM t WHERE price BETWEEEN 1 AND 2", false, `at byte 35 near "BETWEEEN"`},
		{"SELECT COUNT(*) FROM t WHERE nosuchcol = 5", false, `at byte 29 near "nosuchcol"`},
		{"SELECT COUNT(*) FROM t WHERE price = 1 garbage", false, `at byte 39 near "garbage"`},
		{"SELECT COUNT(*) FROM t WHERE price =", false, "near end of input"},
		{"SELECT city FROM t WHERE city = 'oops", true, "unterminated string literal"},
		{"SELECT dist FROM t WHERE dist = 'str'", true, `string literal on non-string column "dist"`},
		{"SELECT city FROM t WHERE dist = 1.5", true, `float literal on non-float column "dist"`},
	}
	for _, c := range cases {
		var err error
		if c.typed {
			_, err = ParseTyped(c.sql, s)
		} else {
			_, err = Parse(c.sql, tbl)
		}
		if err == nil {
			t.Fatalf("Parse(%q) should fail", c.sql)
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Fatalf("Parse(%q) error = %q, want substring %q", c.sql, err, c.wantSub)
		}
	}
}

func TestTypeMismatchAndAnchorRegressions(t *testing.T) {
	s, idx, _, fare, _ := typedFixture(t)
	// Integer literals on string columns must be rejected, not compared
	// against raw dictionary codes.
	for _, sql := range []string{
		"SELECT COUNT(*) FROM t WHERE city = 0",
		"SELECT COUNT(*) FROM t WHERE city BETWEEN 1 AND 3",
	} {
		if _, err := ParseTyped(sql, s); err == nil || !strings.Contains(err.Error(), `string column "city"`) {
			t.Fatalf("ParseTyped(%q) error = %v, want string-column type error", sql, err)
		}
	}
	// Error anchors point at the offending token, not the one after it.
	_, err := ParseTyped("SELECT nosuchcol FROM t", s)
	if err == nil || !strings.Contains(err.Error(), `at byte 7 near "nosuchcol"`) {
		t.Fatalf("projection column error anchored wrong: %v", err)
	}
	_, err = ParseTyped("SELECT AVG(fare) FROM t", s)
	if err == nil || !strings.Contains(err.Error(), `at byte 7 near "AVG"`) {
		t.Fatalf("aggregate error anchored wrong: %v", err)
	}
	// Huge float endpoints clamp instead of wrapping negative.
	st, err := ParseTyped("SELECT COUNT(*) FROM t WHERE fare <= 100000000000000000000.0", s)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _ := st.Run(idx)
	if got != int64(len(fare)) {
		t.Fatalf("huge upper bound matched %d rows, want all %d", got, len(fare))
	}
}

func TestExtremeBoundsDoNotWrap(t *testing.T) {
	tbl, cols := testTable(t)
	idx := testIndex(t, tbl)
	// Strict comparisons against the int64 extremes are empty, not
	// match-everything.
	if got := mustRun(t, idx, tbl, "SELECT COUNT(*) FROM t WHERE price > 9223372036854775807"); got != 0 {
		t.Fatalf("price > MaxInt64 matched %d rows", got)
	}
	if got := mustRun(t, idx, tbl, "SELECT COUNT(*) FROM t WHERE price < -9223372036854775808"); got != 0 {
		t.Fatalf("price < MinInt64 matched %d rows", got)
	}
	if got := mustRun(t, idx, tbl, "SELECT COUNT(*) FROM t WHERE price >= -9223372036854775808"); got != int64(len(cols[0])) {
		t.Fatalf("price >= MinInt64 matched %d rows, want all", got)
	}
	// Float endpoints past the representable domain: strict > is empty,
	// <= matches everything.
	s, tidx, _, fare, _ := typedFixture(t)
	st, err := ParseTyped("SELECT COUNT(*) FROM t WHERE fare > 100000000000000000000.0", s)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, _ := st.Run(tidx); got != 0 {
		t.Fatalf("fare > 1e20 matched %d rows", got)
	}
	st, err = ParseTyped("SELECT COUNT(*) FROM t WHERE fare < -100000000000000000000.0", s)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, _ := st.Run(tidx); got != 0 {
		t.Fatalf("fare < -1e20 matched %d rows", got)
	}
	st, err = ParseTyped("SELECT COUNT(*) FROM t WHERE fare <= 100000000000000000000.0", s)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, _ := st.Run(tidx); got != int64(len(fare)) {
		t.Fatalf("fare <= 1e20 matched %d rows, want all %d", got, len(fare))
	}
}

func TestParseTypedUnfittedSchemaErrors(t *testing.T) {
	// A schema that never went through TableBuilder.Build: typed literals
	// must produce parse errors, not nil-pointer panics.
	s := flood.NewSchema().String("city").Float64("fare", -1).Int64("dist")
	for _, sql := range []string{
		"SELECT COUNT(*) FROM t WHERE city = 'x'",
		"SELECT COUNT(*) FROM t WHERE city BETWEEN 'a' AND 'b'",
		"SELECT COUNT(*) FROM t WHERE city LIKE 'a%'",
		"SELECT COUNT(*) FROM t WHERE fare > 1.5",
		"SELECT COUNT(*) FROM t WHERE fare BETWEEN 1.0 AND 2.0",
	} {
		_, err := ParseTyped(sql, s)
		if err == nil || !strings.Contains(err.Error(), "build the table first") {
			t.Fatalf("ParseTyped(%q) = %v, want unfitted-schema error", sql, err)
		}
	}
	// Fixed-digit float columns have a scaler without a build, so integer
	// predicates on int columns still parse fine.
	if _, err := ParseTyped("SELECT COUNT(*) FROM t WHERE dist > 5", s); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateTypingRules(t *testing.T) {
	s, idx, _, fare, _ := typedFixture(t)
	// Aggregates over string columns are meaningless and rejected.
	if _, err := ParseTyped("SELECT SUM(city) FROM t", s); err == nil ||
		!strings.Contains(err.Error(), `cannot aggregate string column "city"`) {
		t.Fatalf("SUM(city) error = %v", err)
	}
	if _, err := ParseTyped("SELECT MIN(city) FROM t", s); err == nil {
		t.Fatal("MIN(city) should fail to parse")
	}
	// RunTyped decodes float aggregates into the logical domain.
	st, err := ParseTyped("SELECT MIN(fare) FROM t WHERE fare >= 10.0", s)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := st.RunTyped(idx)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e18
	for _, f := range fare {
		if f >= 10.0 && f < want {
			want = f
		}
	}
	if got.(float64) != want {
		t.Fatalf("RunTyped MIN(fare) = %v, want %v", got, want)
	}
	st, err = ParseTyped("SELECT SUM(fare) FROM t WHERE city = 'nyc'", s)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err = st.RunTyped(idx)
	if err != nil {
		t.Fatal(err)
	}
	var sumScaled int64
	raw, _, _ := st.Run(idx)
	sumScaled = raw
	if got.(float64) != float64(sumScaled)/100 {
		t.Fatalf("RunTyped SUM(fare) = %v, want %v", got, float64(sumScaled)/100)
	}
	// COUNT stays int64 through RunTyped.
	st, err = ParseTyped("SELECT COUNT(*) FROM t", s)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, _ := st.RunTyped(idx); got.(int64) != int64(len(fare)) {
		t.Fatalf("RunTyped COUNT = %v", got)
	}
}

func TestRunTypedEmptyExtremumIsNil(t *testing.T) {
	s, idx, _, _, _ := typedFixture(t)
	st, err := ParseTyped("SELECT MAX(fare) FROM t WHERE city = 'gotham'", s)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := st.RunTyped(idx)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("empty MAX decoded to %v, want nil", got)
	}
	st, err = ParseTyped("SELECT MIN(fare) FROM t WHERE city = 'gotham'", s)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, _ := st.RunTyped(idx); got != nil {
		t.Fatalf("empty MIN decoded to %v, want nil", got)
	}
}

// TestLimitParse pins the LIMIT grammar: valid limits parse, and zero,
// negative, fractional, and misplaced limits fail with positioned errors.
func TestLimitParse(t *testing.T) {
	s, _, _, _, _ := typedFixture(t)
	cases := []struct {
		sql     string
		limit   int
		wantErr string
	}{
		{"SELECT city FROM t WHERE fare > 10 LIMIT 5", 5, ""},
		{"SELECT city, fare FROM t LIMIT 3", 3, ""},
		{"SELECT * FROM t LIMIT 1", 1, ""},
		{"SELECT city FROM t WHERE fare > 10", 0, ""},
		{"SELECT city FROM t LIMIT 0", 0, `at byte 25 near "0": LIMIT must be positive`},
		{"SELECT city FROM t LIMIT -3", 0, `at byte 25 near "-3": LIMIT must be positive`},
		{"SELECT city FROM t LIMIT 2.5", 0, "LIMIT needs an integer row count"},
		{"SELECT city FROM t LIMIT", 0, "LIMIT needs an integer row count"},
		{"SELECT city FROM t LIMIT five", 0, "LIMIT needs an integer row count"},
		{"SELECT COUNT(*) FROM t LIMIT 5", 0, "LIMIT applies to projections, not aggregates"},
		{"SELECT city FROM t LIMIT 5 garbage", 0, "unexpected trailing input"},
	}
	for _, tc := range cases {
		st, err := ParseTyped(tc.sql, s)
		if tc.wantErr == "" {
			if err != nil {
				t.Fatalf("%s: unexpected error %v", tc.sql, err)
			}
			if st.Limit != tc.limit {
				t.Fatalf("%s: Limit = %d, want %d", tc.sql, st.Limit, tc.limit)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error = %v, want containing %q", tc.sql, err, tc.wantErr)
		}
	}
}

// TestLimitPushdownSelect pins that a SQL LIMIT stops the scan early: the
// limited select returns exactly n rows and scans strictly fewer points
// than the unlimited statement, including across OR pieces (one shared
// budget) and on a statement with no WHERE clause.
func TestLimitPushdownSelect(t *testing.T) {
	s, idx, city, _, _ := typedFixture(t)
	nycTotal := 0
	for _, c := range city {
		if c == "nyc" {
			nycTotal++
		}
	}
	full, err := ParseTyped("SELECT city FROM t WHERE city = 'nyc'", s)
	if err != nil {
		t.Fatal(err)
	}
	rows, fullSt, err := full.Select(idx)
	if err != nil || rows.Len() != nycTotal {
		t.Fatalf("unlimited select = %d rows (err %v), want %d", rows.Len(), err, nycTotal)
	}
	rows.Close()

	lim, err := ParseTyped("SELECT city FROM t WHERE city = 'nyc' LIMIT 4", s)
	if err != nil {
		t.Fatal(err)
	}
	rows, limSt, err := lim.Select(idx)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 4 {
		t.Fatalf("LIMIT 4 returned %d rows", rows.Len())
	}
	for rows.Next() {
		if rows.String(0) != "nyc" {
			t.Fatalf("limited row decoded %q", rows.String(0))
		}
	}
	rows.Close()
	if limSt.Scanned >= fullSt.Scanned {
		t.Fatalf("LIMIT 4 scanned %d points, not fewer than unlimited %d", limSt.Scanned, fullSt.Scanned)
	}

	orStmt, err := ParseTyped("SELECT city FROM t WHERE city = 'nyc' OR city = 'boston' LIMIT 6", s)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err = orStmt.Select(idx)
	if err != nil || rows.Len() != 6 {
		t.Fatalf("OR LIMIT 6 returned %d rows (err %v)", rows.Len(), err)
	}
	rows.Close()

	noWhere, err := ParseTyped("SELECT city FROM t LIMIT 2", s)
	if err != nil {
		t.Fatal(err)
	}
	rows, st, err := noWhere.Select(idx)
	if err != nil || rows.Len() != 2 {
		t.Fatalf("no-WHERE LIMIT 2 returned %d rows (err %v)", rows.Len(), err)
	}
	if st.Scanned > 2 {
		t.Fatalf("no-WHERE LIMIT 2 scanned %d points, want at most 2", st.Scanned)
	}
	rows.Close()
}

// TestRunContextCanceled pins RunContext: a canceled context stops an
// aggregation with flood.ErrCanceled and partial stats.
func TestRunContextCanceled(t *testing.T) {
	tbl, _ := testTable(t)
	idx := testIndex(t, tbl)
	st, err := Parse("SELECT COUNT(*) FROM t WHERE qty >= 0", tbl)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, stats, err := st.RunContext(ctx, idx); !errors.Is(err, flood.ErrCanceled) || stats.Scanned != 0 {
		t.Fatalf("canceled RunContext = (%d scanned, %v), want (0, ErrCanceled)", stats.Scanned, err)
	}
	if v, _, err := st.RunContext(context.Background(), idx); err != nil || v != int64(tbl.NumRows()) {
		t.Fatalf("background RunContext = (%d, %v)", v, err)
	}
}

// TestDeleteStatementTyped pins the DELETE path end to end: parse against the
// typed schema, Exec against a plain Flood index, observe masked counts.
func TestDeleteStatementTyped(t *testing.T) {
	s, idx, city, _, _ := typedFixture(t)
	st, err := ParseTyped("DELETE FROM t WHERE city = 'nyc'", s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg != "delete" || st.Table != "t" || len(st.Disjuncts) != 1 {
		t.Fatalf("parsed DELETE = %+v", st)
	}
	var want int64
	for _, c := range city {
		if c == "nyc" {
			want++
		}
	}
	n, err := st.Exec(idx)
	if err != nil || n != want {
		t.Fatalf("DELETE affected %d rows (err %v), want %d", n, err, want)
	}
	// Deletes are idempotent: a second Exec finds nothing left to delete.
	if n, err := st.Exec(idx); err != nil || n != 0 {
		t.Fatalf("repeat DELETE affected %d rows (err %v), want 0", n, err)
	}
	count, err := ParseTyped("SELECT COUNT(*) FROM t", s)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := count.Run(idx); err != nil || got != int64(len(city))-want {
		t.Fatalf("post-delete COUNT(*) = %d (err %v), want %d", got, err, int64(len(city))-want)
	}
}

// TestDeleteStatementRaw pins DELETE parsed against a raw (schemaless) table,
// including the no-WHERE form that deletes every row.
func TestDeleteStatementRaw(t *testing.T) {
	tbl, cols := testTable(t)
	idx := testIndex(t, tbl)
	st, err := Parse("DELETE FROM orders WHERE price < 100", tbl)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, v := range cols[0] {
		if v < 100 {
			want++
		}
	}
	if n, err := st.Exec(idx); err != nil || n != want {
		t.Fatalf("DELETE affected %d rows (err %v), want %d", n, err, want)
	}
	all, err := Parse("DELETE FROM orders", tbl)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := all.Exec(idx); err != nil || n != int64(len(cols[0]))-want {
		t.Fatalf("unfiltered DELETE affected %d rows (err %v), want %d", n, err, int64(len(cols[0]))-want)
	}
	if got := mustRun(t, idx, tbl, "SELECT COUNT(*) FROM orders"); got != 0 {
		t.Fatalf("COUNT(*) after deleting every row = %d", got)
	}
}

// TestUpdateStatementTyped pins UPDATE through a DeltaIndex: assignments are
// encoded through the schema (dictionary code, scaled decimal) and the
// rewritten rows are observable through subsequent typed queries.
func TestUpdateStatementTyped(t *testing.T) {
	s, base, city, _, _ := typedFixture(t)
	fl, ok := base.(*flood.Flood)
	if !ok {
		t.Fatalf("typedFixture returned %T", base)
	}
	idx := flood.NewDeltaIndex(fl, 1<<20)
	st, err := ParseTyped("UPDATE t SET fare = 5.25, dist = 7 WHERE city = 'boston'", s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg != "update" || len(st.Assignments) != 2 {
		t.Fatalf("parsed UPDATE = %+v", st)
	}
	var want int64
	for _, c := range city {
		if c == "boston" {
			want++
		}
	}
	n, err := st.Exec(idx)
	if err != nil || n != want {
		t.Fatalf("UPDATE affected %d rows (err %v), want %d", n, err, want)
	}
	check, err := ParseTyped("SELECT COUNT(*) FROM t WHERE city = 'boston' AND fare = 5.25 AND dist = 7", s)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := check.Run(idx); err != nil || got != want {
		t.Fatalf("post-update COUNT = %d (err %v), want %d", got, err, want)
	}
	total, err := ParseTyped("SELECT COUNT(*) FROM t", s)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := total.Run(idx); err != nil || got != int64(len(city)) {
		t.Fatalf("row count after UPDATE = %d (err %v), want %d (updates preserve cardinality)",
			got, err, len(city))
	}
}

// TestMutationParseErrors pins the mutation grammar's rejection wording.
func TestMutationParseErrors(t *testing.T) {
	s, _, _, _, _ := typedFixture(t)
	cases := []struct {
		sql     string
		wantErr string
	}{
		{"INSERT INTO t VALUES (1)", `string column "city" needs a string literal`},
		{"INSERT t VALUES (1)", "INTO"},
		{"INSERT INTO t (city) VALUES ('boston')", "names 1 of 3 columns"},
		{"INSERT INTO t (city, city, dist) VALUES ('a', 'b', 1)", "listed twice"},
		{"INSERT INTO t VALUES ('boston', 1.234, 3)", "not representable"},
		{"INSERT INTO t VALUES ('gotham', 1.25, 3)", "dictionary"},
		{"INSERT INTO t VALUES ('boston', 1.25)", `expected ","`},
		{"INSERT INTO t VALUES ('boston', 1.25, 3) WHERE dist > 2", "unexpected trailing input"},
		{"DELETE price FROM t", "FROM"},
		{"DELETE FROM t WHERE", "expected"},
		{"DELETE FROM t LIMIT 5", "unexpected trailing input"},
		{"UPDATE t SET city = 5", `string column "city" needs a string literal`},
		{"UPDATE t SET city = 'gotham'", "dictionary"},
		{"UPDATE t SET fare = 1.234", "not representable"},
		{"UPDATE t SET fare = 'cheap'", `string literal on non-string column "fare"`},
		{"UPDATE t SET dist = 2.5", `float literal on non-float column "dist"`},
		{"UPDATE t SET nosuch = 1", "unknown column"},
		{"UPDATE t WHERE dist > 5", "SET"},
		{"UPDATE t SET dist = 5 LIMIT 3", "unexpected trailing input"},
	}
	for _, tc := range cases {
		_, err := ParseTyped(tc.sql, s)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error = %v, want containing %q", tc.sql, err, tc.wantErr)
		}
	}
}

// TestMutationDispatchErrors pins the Run/Exec split: mutations refuse Run,
// queries refuse Exec, and facades without the capability refuse Exec.
func TestMutationDispatchErrors(t *testing.T) {
	s, idx, _, _, _ := typedFixture(t)
	del, err := ParseTyped("DELETE FROM t", s)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := del.Run(idx); err == nil || !strings.Contains(err.Error(), "Exec") {
		t.Fatalf("Run(DELETE) error = %v, want Exec redirect", err)
	}
	sel, err := ParseTyped("SELECT COUNT(*) FROM t", s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Exec(idx); err == nil || !strings.Contains(err.Error(), "Run or Select") {
		t.Fatalf("Exec(SELECT) error = %v, want Run redirect", err)
	}
	// A plain Flood has no insert path, so UPDATE is refused at Exec time.
	up, err := ParseTyped("UPDATE t SET dist = 1", s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := up.Exec(idx); err == nil || !strings.Contains(err.Error(), "does not support UPDATE") {
		t.Fatalf("Exec(UPDATE) on plain Flood = %v, want capability error", err)
	}
	ins, err := ParseTyped("INSERT INTO t VALUES ('boston', 1.25, 3)", s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(idx); err == nil || !strings.Contains(err.Error(), "does not support INSERT") {
		t.Fatalf("Exec(INSERT) on plain Flood = %v, want capability error", err)
	}
	if _, _, err := ins.Run(idx); err == nil || !strings.Contains(err.Error(), "Exec") {
		t.Fatalf("Run(INSERT) error = %v, want Exec redirect", err)
	}
}

// TestInsertStatement covers the INSERT grammar end to end: literal
// encoding through the typed schema, the optional reordered column list,
// multi-row VALUES, and execution against an insert-capable facade.
func TestInsertStatement(t *testing.T) {
	s, idx, city, _, _ := typedFixture(t)
	base, ok := idx.(*flood.Flood)
	if !ok {
		t.Fatalf("typedFixture index is %T, want *flood.Flood", idx)
	}
	delta := flood.NewDeltaIndex(base, 1<<30)

	st, err := ParseTyped(
		"INSERT INTO t (dist, fare, city) VALUES (7, 5.25, 'boston'), (9, 1.25, 'nyc')", s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg != "insert" || len(st.InsertRows) != 2 {
		t.Fatalf("parsed INSERT = %+v", st)
	}
	n, err := st.Exec(delta)
	if err != nil || n != 2 {
		t.Fatalf("INSERT affected %d rows (err %v), want 2", n, err)
	}

	total, err := ParseTyped("SELECT COUNT(*) FROM t", s)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := total.Run(delta); err != nil || got != int64(len(city)+2) {
		t.Fatalf("row count after INSERT = %d (err %v), want %d", got, err, len(city)+2)
	}
	check, err := ParseTyped(
		"SELECT COUNT(*) FROM t WHERE city = 'boston' AND fare = 5.25 AND dist = 7", s)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := check.Run(delta); err != nil || got != 1 {
		t.Fatalf("inserted-row COUNT = %d (err %v), want 1 (column list reordering must land values in schema order)", got, err)
	}
}
