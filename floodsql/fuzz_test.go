package floodsql

import (
	"testing"

	"flood"
)

// FuzzFloodSQLParse throws arbitrary strings at the SQL parser with a fitted
// typed schema attached, so predicate binding (dictionary lookups, decimal
// scaling) runs too: any input must parse or error, never panic.
func FuzzFloodSQLParse(f *testing.F) {
	s := flood.NewSchema().String("city").Float64("fare", 2).Int64("dist")
	b := s.NewTableBuilder()
	if err := b.SetStringColumn("city", []string{"boston", "chicago", "nyc"}); err != nil {
		f.Fatal(err)
	}
	if err := b.SetFloat64Column("fare", []float64{1.25, 10.5, 99.99}); err != nil {
		f.Fatal(err)
	}
	if err := b.SetInt64Column("dist", []int64{3, 42, 250}); err != nil {
		f.Fatal(err)
	}
	if _, err := b.Build(); err != nil { // fits the dictionary and scaler
		f.Fatal(err)
	}

	for _, sql := range []string{
		"SELECT COUNT(*) FROM t",
		"SELECT COUNT(*) FROM t WHERE city >= 'chicago' AND fare <= 10.0",
		"SELECT city, fare FROM t WHERE dist BETWEEN 10 AND 100",
		"SELECT SUM(dist) FROM t WHERE city = 'nyc'",
		"SELECT COUNT(*) FROM t WHERE fare < -100000000000000000000.0",
		"SELECT city FROM t WHERE city LIKE 'bo%'",
		"DELETE FROM t WHERE city = 'nyc' OR fare > 50.0",
		"DELETE FROM t",
		"UPDATE t SET fare = 5.25, dist = 7 WHERE city = 'boston'",
		"UPDATE t SET city = 'chicago'",
		"UPDATE t SET fare = 1.234",
		"INSERT INTO t VALUES ('boston', 10.5, 42)",
		"INSERT INTO t (dist, fare, city) VALUES (1, 1.25, 'nyc'), (2, 99.99, 'chicago')",
		"INSERT INTO t (city) VALUES ('boston')",
		"INSERT INTO t VALUES",
		"DELETE FROM t LIMIT 5",
		"UPDATE t SET",
		"SELECT * FROM",
		"';;;'",
		"",
	} {
		f.Add(sql)
	}

	f.Fuzz(func(t *testing.T, sql string) {
		st, err := ParseTyped(sql, s)
		if err != nil {
			return
		}
		// A statement that parses must lower to executable queries and an
		// aggregator without panicking.
		_ = st.queries()
		_, _ = st.aggregator()
	})
}
