package flood

import (
	"bytes"
	"testing"
	"time"
)

// fuzzSnapshot builds a tiny typed index and returns its serialized
// snapshot, giving the fuzzer a structurally valid starting point.
func fuzzSnapshot(f *testing.F) []byte {
	s := NewSchema().Int64("ts").Float64("fare", 2).String("city").TimeUnit("pickup", time.Second)
	b := s.NewTableBuilder()
	n := 48
	ts := make([]int64, n)
	fare := make([]float64, n)
	city := make([]string, n)
	pickup := make([]time.Time, n)
	cities := []string{"atlanta", "boston", "chicago"}
	epoch := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		ts[i] = int64(i * 37 % 1000)
		fare[i] = float64(i%50) / 2
		city[i] = cities[i%len(cities)]
		pickup[i] = epoch.Add(time.Duration(i) * time.Hour)
	}
	if err := b.SetInt64Column("ts", ts); err != nil {
		f.Fatal(err)
	}
	if err := b.SetFloat64Column("fare", fare); err != nil {
		f.Fatal(err)
	}
	if err := b.SetStringColumn("city", city); err != nil {
		f.Fatal(err)
	}
	if err := b.SetTimeColumn("pickup", pickup); err != nil {
		f.Fatal(err)
	}
	tbl, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	idx, err := BuildWithLayout(tbl, Layout{
		GridDims: []int{0, 2}, GridCols: []int{4, 3}, SortDim: 1, Flatten: true,
	}, &Options{Schema: s})
	if err != nil {
		f.Fatal(err)
	}
	// Tombstone a few rows so the snapshot carries a tomb section and the
	// fuzzer mutates that too.
	if _, err := idx.DeleteRows([]int64{3, 17, 31}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzWireDecode feeds arbitrary bytes to the snapshot loader: Load must
// return a typed error or a servable index — never panic, never allocate
// unboundedly — for any input. Seeds are a valid snapshot plus mutations the
// property tests found interesting (truncations, header damage, the v1
// magic).
func FuzzWireDecode(f *testing.F) {
	snap := fuzzSnapshot(f)
	f.Add(snap)
	for _, cut := range []int{0, 5, 8, len(snap) / 2, len(snap) - 4} {
		if cut >= 0 && cut <= len(snap) {
			f.Add(snap[:cut])
		}
	}
	f.Add([]byte("FLOODIX1garbage"))
	f.Add([]byte("FLOOD\x02\xff\xff"))
	f.Add([]byte{})
	// The bitmap-index section is reconstructible: a checksum-damaged copy
	// must load through the rebuild path, a truncation inside it must fail
	// with a typed error. Seed both shapes.
	if at := bytes.Index(snap, []byte("bidx")); at >= 0 {
		mut := append([]byte(nil), snap...)
		mut[at+16] ^= 0xFF
		f.Add(mut)
		f.Add(snap[:at+10])
	}
	// The tombstone section is NOT reconstructible: damage must surface as a
	// typed load error, never as silently resurrected rows. Seed a bit flip
	// inside it and a truncation through it.
	if at := bytes.Index(snap, []byte("tomb")); at >= 0 {
		mut := append([]byte(nil), snap...)
		mut[at+12] ^= 0xFF
		f.Add(mut)
		f.Add(snap[:at+8])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A load that succeeds must yield a servable index: run an
		// unconstrained count over it and sanity-check the row accounting.
		// Deletions persist with the snapshot, so the count is the live rows,
		// never more than the physical rows.
		agg := NewCount()
		idx.Execute(NewQuery(idx.Table().NumCols()), agg)
		got, rows := agg.Result(), idx.Table().NumRows()
		if got != int64(idx.LiveRows()) {
			t.Fatalf("loaded index counts %d rows, LiveRows says %d", got, idx.LiveRows())
		}
		if got > int64(rows) {
			t.Fatalf("loaded index counts %d rows, table has only %d", got, rows)
		}
	})
}
