module flood

go 1.24
