package flood

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flood/internal/colstore"
	"flood/internal/dataset"
	"flood/internal/workload"
)

// TestAllIndexesAgreeOnAllDatasets is the repository's cross-cutting
// integration test: on every evaluation dataset, the learned index and all
// eight baselines must return identical aggregates for the standard
// workload. Any disagreement means an index silently lost or fabricated
// rows.
func TestAllIndexesAgreeOnAllDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, name := range dataset.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			ds := dataset.ByName(name, 8000, 301)
			queries := workload.Standard(ds, 25, 302)
			order := datagenSelectivityOrder(t, ds, queries)

			indexes := []Index{}
			learned, err := Build(ds.Table, queries, &Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 303})
			if err != nil {
				t.Fatal(err)
			}
			indexes = append(indexes, learned)
			for _, kind := range Baselines() {
				idx, err := BuildBaseline(kind, ds.Table, BaselineOptions{Dims: order, PageSize: 512})
				if err != nil {
					// Grid File may legitimately refuse heavily skewed
					// data (documented, matches the paper's N/A cells).
					if kind == GridFile {
						t.Logf("gridfile unavailable on %s: %v", name, err)
						continue
					}
					t.Fatalf("%s: %v", kind, err)
				}
				indexes = append(indexes, idx)
			}
			for qi, q := range queries {
				var want int64
				first := true
				for _, idx := range indexes {
					agg := NewCount()
					idx.Execute(q, agg)
					if first {
						want, first = agg.Result(), false
						continue
					}
					if agg.Result() != want {
						t.Fatalf("query %d: %s returned %d, others %d", qi, idx.Name(), agg.Result(), want)
					}
				}
			}
		})
	}
}

func datagenSelectivityOrder(t *testing.T, ds *dataset.Dataset, queries []Query) []int {
	t.Helper()
	g := workload.NewGenerator(ds, 304)
	return workload.OrderBySelectivity(g, queries)
}

// TestFloodAgainstFullScanProperty drives randomized tables, layouts, and
// queries through Flood and a full scan with testing/quick.
func TestFloodAgainstFullScanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(800)
		d := 2 + rng.Intn(4)
		cols := make([][]int64, d)
		names := make([]string, d)
		for c := range cols {
			names[c] = string(rune('a' + c))
			cols[c] = make([]int64, n)
			span := int64(1) << uint(2+rng.Intn(20))
			for i := range cols[c] {
				cols[c][i] = rng.Int63n(span) - span/2
			}
		}
		tbl := colstore.MustNewTable(names, cols)
		layout := Layout{SortDim: rng.Intn(d), Flatten: rng.Intn(2) == 0}
		for dim := 0; dim < d; dim++ {
			if dim == layout.SortDim {
				continue
			}
			if rng.Intn(3) > 0 {
				layout.GridDims = append(layout.GridDims, dim)
				layout.GridCols = append(layout.GridCols, 1+rng.Intn(12))
			}
		}
		if len(layout.GridDims) == 0 {
			layout.GridDims = []int{(layout.SortDim + 1) % d}
			layout.GridCols = []int{4}
		}
		idx, err := BuildWithLayout(tbl, layout, nil)
		if err != nil {
			return false
		}
		fs, err := BuildBaseline(FullScan, tbl, BaselineOptions{})
		if err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			q := NewQuery(d)
			nf := 1 + rng.Intn(d)
			for k := 0; k < nf; k++ {
				dim := rng.Intn(d)
				lo := cols[dim][rng.Intn(n)]
				hi := cols[dim][rng.Intn(n)]
				if lo > hi {
					lo, hi = hi, lo
				}
				q = q.WithRange(dim, lo, hi)
			}
			a1, a2 := NewCount(), NewCount()
			idx.Execute(q, a1)
			fs.Execute(q, a2)
			if a1.Result() != a2.Result() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTooManyDimensionsRejected documents the 64-dimension cap.
func TestTooManyDimensionsRejected(t *testing.T) {
	cols := make([][]int64, 65)
	names := make([]string, 65)
	for c := range cols {
		cols[c] = []int64{1, 2, 3}
		names[c] = string(rune('a'+c%26)) + string(rune('0'+c/26))
	}
	tbl := colstore.MustNewTable(names, cols)
	_, err := BuildWithLayout(tbl, Layout{GridDims: []int{0}, GridCols: []int{2}, SortDim: 1, Flatten: true}, nil)
	if err == nil {
		t.Fatal("65-dimension table should be rejected")
	}
}

// TestSingleRowTable exercises the degenerate-but-legal minimum.
func TestSingleRowTable(t *testing.T) {
	tbl := colstore.MustNewTable([]string{"a", "b"}, [][]int64{{7}, {9}})
	idx, err := BuildWithLayout(tbl, Layout{GridDims: []int{0}, GridCols: []int{4}, SortDim: 1, Flatten: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewCount()
	idx.Execute(NewQuery(2).WithEquals(0, 7).WithEquals(1, 9), agg)
	if agg.Result() != 1 {
		t.Fatalf("single-row equality count = %d", agg.Result())
	}
	agg.Reset()
	idx.Execute(NewQuery(2).WithEquals(0, 8), agg)
	if agg.Result() != 0 {
		t.Fatal("non-matching equality should find nothing")
	}
}
