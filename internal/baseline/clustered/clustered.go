// Package clustered implements the Clustered Single-Dimensional Index
// baseline (§7.2, Appendix A): the table is sorted by one key dimension
// (typically the workload's most selective) and a learned RMI over that
// column locates filter endpoints. Queries without a filter on the key
// dimension fall back to a full scan.
package clustered

import (
	"context"
	"fmt"
	"sort"
	"time"

	"flood/internal/colstore"
	"flood/internal/query"
	"flood/internal/rmi"
)

// Index is a clustered single-dimensional learned index.
type Index struct {
	t      *colstore.Table
	keyDim int
	pos    *rmi.PositionIndex
}

// Options configures construction.
type Options struct {
	// Leaves is the RMI leaf count; 0 picks sqrt(n) per Appendix A.
	Leaves int
}

// Build sorts a copy of t by keyDim and trains the RMI.
func Build(t *colstore.Table, keyDim int, opts Options) (*Index, error) {
	if keyDim < 0 || keyDim >= t.NumCols() {
		return nil, fmt.Errorf("clustered: key dim %d out of range", keyDim)
	}
	n := t.NumRows()
	keys := t.Raw(keyDim)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return keys[perm[a]] < keys[perm[b]] })
	sortedKeys := make([]int64, n)
	for r, p := range perm {
		sortedKeys[r] = keys[p]
	}
	leaves := opts.Leaves
	if leaves <= 0 {
		leaves = intSqrt(n)
	}
	pos := rmi.TrainPosition(sortedKeys, leaves)
	pos.DropKeys()
	return &Index{t: t.Reorder(perm), keyDim: keyDim, pos: pos}, nil
}

func intSqrt(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// Name implements query.Index.
func (x *Index) Name() string { return "Clustered" }

// KeyDim returns the clustering dimension.
func (x *Index) KeyDim() int { return x.keyDim }

// SizeBytes implements query.Index.
func (x *Index) SizeBytes() int64 { return x.pos.SizeBytes() }

// Table returns the index's reordered table.
func (x *Index) Table() *colstore.Table { return x.t }

// Execute implements query.Index.
func (x *Index) Execute(q query.Query, agg query.Aggregator) query.Stats {
	return x.ExecuteControl(nil, q, agg)
}

// ExecuteContext implements query.Index: Execute under ctx's cancellation,
// stopping at block-group boundaries inside the scan kernel.
func (x *Index) ExecuteContext(ctx context.Context, q query.Query, agg query.Aggregator) (query.Stats, error) {
	return query.RunContext(ctx, q, agg, x.ExecuteControl)
}

// ExecuteControl implements query.ControlIndex: Execute threaded with an
// externally owned execution control (nil scans unconditionally).
func (x *Index) ExecuteControl(ctl *query.Control, q query.Query, agg query.Aggregator) query.Stats {
	var st query.Stats
	t0 := time.Now()
	if q.Empty() {
		st.Total = time.Since(t0)
		return st
	}
	n := x.t.NumRows()
	lo, hi := 0, n
	r := q.Ranges[x.keyDim]
	col := x.t.Column(x.keyDim)
	at := func(i int) int64 { return col.Get(i) }
	if r.Present {
		if r.Min != query.NegInf {
			lo = x.pos.LookupAt(at, r.Min)
		}
		if r.Max != query.PosInf {
			hi = x.pos.LookupAt(at, r.Max+1)
		}
	}
	t1 := time.Now()
	st.IndexTime = t1.Sub(t0)

	// The key dimension is exact within [lo, hi): drop it from the
	// residual filter set.
	var dims []int
	for _, d := range q.FilteredDims() {
		if d != x.keyDim {
			dims = append(dims, d)
		}
	}
	sc := query.NewScanner(x.t)
	sc.SetControl(ctl)
	s, m := sc.ScanRange(q, dims, lo, hi, agg)
	st.Scanned, st.Matched = s, m
	if len(dims) == 0 {
		st.ExactMatched = m
	}
	st.ScanTime = time.Since(t1)
	st.Total = time.Since(t0)
	return st
}
