// Package baseline_test cross-checks every baseline index against full-scan
// ground truth on randomized data and queries — the indexes differ wildly in
// mechanism but must agree exactly on results.
package baseline_test

import (
	"math"
	"math/rand"
	"testing"

	"flood/internal/baseline/clustered"
	"flood/internal/baseline/fullscan"
	"flood/internal/baseline/gridfile"
	"flood/internal/baseline/kdtree"
	"flood/internal/baseline/octree"
	"flood/internal/baseline/rstar"
	"flood/internal/baseline/ubtree"
	"flood/internal/baseline/zorder"
	"flood/internal/colstore"
	"flood/internal/query"
)

func makeData(t testing.TB, nRows, nDims int, seed int64) (*colstore.Table, [][]int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([][]int64, nDims)
	names := make([]string, nDims)
	for d := range data {
		data[d] = make([]int64, nRows)
		names[d] = string(rune('a' + d))
		for i := range data[d] {
			switch d % 4 {
			case 0:
				data[d][i] = rng.Int63n(1000)
			case 1:
				data[d][i] = int64(math.Exp(rng.NormFloat64()*1.5 + 6))
			case 2:
				data[d][i] = rng.Int63n(8) // low-cardinality categorical
			default:
				data[d][i] = rng.Int63n(1_000_000) - 500_000
			}
		}
	}
	tbl, err := colstore.NewTable(names, data)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, data
}

func bruteCount(data [][]int64, q query.Query) int64 {
	var cnt int64
	point := make([]int64, len(data))
	for i := 0; i < len(data[0]); i++ {
		for d := range data {
			point[d] = data[d][i]
		}
		if q.Matches(point) {
			cnt++
		}
	}
	return cnt
}

func randomQuery(rng *rand.Rand, data [][]int64, maxDims int) query.Query {
	q := query.NewQuery(len(data))
	nf := 1 + rng.Intn(maxDims)
	for k := 0; k < nf; k++ {
		d := rng.Intn(len(data))
		lo := data[d][rng.Intn(len(data[d]))]
		hi := data[d][rng.Intn(len(data[d]))]
		if lo > hi {
			lo, hi = hi, lo
		}
		if rng.Intn(5) == 0 {
			hi = lo // equality predicate
		}
		q = q.WithRange(d, lo, hi)
	}
	return q
}

func allIndexes(t *testing.T, tbl *colstore.Table, pageSize int) []query.Index {
	t.Helper()
	dims := []int{0, 1, 2, 3}
	cl, err := clustered.Build(tbl, 0, clustered.Options{})
	if err != nil {
		t.Fatal(err)
	}
	zo, err := zorder.Build(tbl, dims, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := ubtree.Build(tbl, dims, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	oc, err := octree.Build(tbl, dims, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	kd, err := kdtree.Build(tbl, dims, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rstar.Build(tbl, dims, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := gridfile.Build(tbl, dims, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return []query.Index{fullscan.New(tbl), cl, zo, ub, oc, kd, rs, gf}
}

func TestAllBaselinesMatchBruteForce(t *testing.T) {
	tbl, data := makeData(t, 4000, 4, 101)
	rng := rand.New(rand.NewSource(202))
	for _, pageSize := range []int{64, 512} {
		for _, idx := range allIndexes(t, tbl, pageSize) {
			for trial := 0; trial < 30; trial++ {
				q := randomQuery(rng, data, 4)
				agg := query.NewCount()
				st := idx.Execute(q, agg)
				want := bruteCount(data, q)
				if agg.Result() != want {
					t.Fatalf("%s (page %d): count = %d, want %d (query %+v)",
						idx.Name(), pageSize, agg.Result(), want, q.Ranges)
				}
				if st.Matched != want {
					t.Fatalf("%s: stats.Matched = %d, want %d", idx.Name(), st.Matched, want)
				}
				if st.Scanned < st.Matched {
					t.Fatalf("%s: scanned %d < matched %d", idx.Name(), st.Scanned, st.Matched)
				}
			}
		}
	}
}

func TestBaselinesUnfilteredQuery(t *testing.T) {
	tbl, _ := makeData(t, 1500, 4, 103)
	for _, idx := range allIndexes(t, tbl, 256) {
		agg := query.NewCount()
		idx.Execute(query.NewQuery(4), agg)
		if agg.Result() != 1500 {
			t.Fatalf("%s: unfiltered count = %d, want 1500", idx.Name(), agg.Result())
		}
	}
}

func TestBaselinesEmptyQuery(t *testing.T) {
	tbl, _ := makeData(t, 800, 4, 104)
	for _, idx := range allIndexes(t, tbl, 256) {
		agg := query.NewCount()
		st := idx.Execute(query.NewQuery(4).WithRange(1, 50, 10), agg)
		if agg.Result() != 0 {
			t.Fatalf("%s: inverted-range count = %d, want 0", idx.Name(), agg.Result())
		}
		if st.Matched != 0 {
			t.Fatalf("%s: inverted-range matched = %d", idx.Name(), st.Matched)
		}
	}
}

func TestBaselinesOutOfDomainQuery(t *testing.T) {
	tbl, _ := makeData(t, 800, 4, 105)
	for _, idx := range allIndexes(t, tbl, 256) {
		agg := query.NewCount()
		idx.Execute(query.NewQuery(4).WithRange(0, 1<<40, 1<<41), agg)
		if agg.Result() != 0 {
			t.Fatalf("%s: out-of-domain count = %d, want 0", idx.Name(), agg.Result())
		}
	}
}

func TestBaselinesSumAgree(t *testing.T) {
	tbl, data := makeData(t, 2000, 4, 106)
	rng := rand.New(rand.NewSource(107))
	for _, idx := range allIndexes(t, tbl, 512) {
		for trial := 0; trial < 10; trial++ {
			q := randomQuery(rng, data, 3)
			agg := query.NewSum(3)
			idx.Execute(q, agg)
			var want int64
			point := make([]int64, 4)
			for i := range data[0] {
				for d := range data {
					point[d] = data[d][i]
				}
				if q.Matches(point) {
					want += data[3][i]
				}
			}
			if agg.Result() != want {
				t.Fatalf("%s: sum = %d, want %d", idx.Name(), agg.Result(), want)
			}
		}
	}
}

func TestBaselinesSizeBytes(t *testing.T) {
	tbl, _ := makeData(t, 3000, 4, 108)
	for _, idx := range allIndexes(t, tbl, 128) {
		if idx.Name() == "FullScan" {
			if idx.SizeBytes() != 0 {
				t.Fatal("full scan should have zero metadata")
			}
			continue
		}
		if idx.SizeBytes() <= 0 {
			t.Fatalf("%s: SizeBytes = %d, want > 0", idx.Name(), idx.SizeBytes())
		}
	}
}

func TestBaselinesFilterOnUnindexedDim(t *testing.T) {
	// Indexes built over dims {0,1} must still answer filters on dim 3
	// correctly (residual row checks).
	tbl, data := makeData(t, 2000, 4, 109)
	dims := []int{0, 1}
	zo, _ := zorder.Build(tbl, dims, 256)
	ub, _ := ubtree.Build(tbl, dims, 256)
	oc, _ := octree.Build(tbl, dims, 256)
	kd, _ := kdtree.Build(tbl, dims, 256)
	rs, _ := rstar.Build(tbl, dims, 256)
	gf, _ := gridfile.Build(tbl, dims, 256)
	rng := rand.New(rand.NewSource(110))
	for _, idx := range []query.Index{zo, ub, oc, kd, rs, gf} {
		for trial := 0; trial < 15; trial++ {
			q := randomQuery(rng, data, 2).WithRange(3, -100_000, 100_000)
			agg := query.NewCount()
			idx.Execute(q, agg)
			if want := bruteCount(data, q); agg.Result() != want {
				t.Fatalf("%s: count = %d, want %d", idx.Name(), agg.Result(), want)
			}
		}
	}
}

func TestClusteredFallsBackToFullScan(t *testing.T) {
	tbl, data := makeData(t, 1000, 4, 111)
	cl, err := clustered.Build(tbl, 2, clustered.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// No filter on the key dim: the whole table must be scanned.
	q := query.NewQuery(4).WithRange(0, 100, 500)
	agg := query.NewCount()
	st := cl.Execute(q, agg)
	if st.Scanned != 1000 {
		t.Fatalf("expected full scan (1000 scanned), got %d", st.Scanned)
	}
	if want := bruteCount(data, q); agg.Result() != want {
		t.Fatalf("count = %d, want %d", agg.Result(), want)
	}
	// Filter on the key dim: scan should narrow.
	q = query.NewQuery(4).WithRange(2, 2, 3)
	agg.Reset()
	st = cl.Execute(q, agg)
	if want := bruteCount(data, q); agg.Result() != want {
		t.Fatalf("narrowed count = %d, want %d", agg.Result(), want)
	}
	if st.Scanned >= 1000 {
		t.Fatalf("key-dim filter should narrow the scan, scanned %d", st.Scanned)
	}
}

func TestTreeBaselinesPruneDisjointRegions(t *testing.T) {
	tbl, _ := makeData(t, 8000, 4, 112)
	oc, _ := octree.Build(tbl, []int{0, 1, 2, 3}, 128)
	kd, _ := kdtree.Build(tbl, []int{0, 1, 2, 3}, 128)
	rs, _ := rstar.Build(tbl, []int{0, 1, 2, 3}, 128)
	q := query.NewQuery(4).WithRange(0, 0, 20) // ~2% of dim 0's domain
	for _, idx := range []query.Index{oc, kd, rs} {
		agg := query.NewCount()
		st := idx.Execute(q, agg)
		if st.Scanned >= 8000 {
			t.Fatalf("%s: selective query scanned everything (%d)", idx.Name(), st.Scanned)
		}
	}
}

func TestGridFileDegenerateData(t *testing.T) {
	// All points identical: buckets cannot split; build must still finish.
	n := 600
	con := make([]int64, n)
	u := make([]int64, n)
	for i := range con {
		con[i] = 7
		u[i] = 7
	}
	tbl := colstore.MustNewTable([]string{"a", "b"}, [][]int64{con, u})
	gf, err := gridfile.Build(tbl, []int{0, 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	agg := query.NewCount()
	gf.Execute(query.NewQuery(2).WithEquals(0, 7), agg)
	if agg.Result() != int64(n) {
		t.Fatalf("degenerate grid file count = %d, want %d", agg.Result(), n)
	}
}

func TestUBTreeSkipAheadNarrowsScan(t *testing.T) {
	// A thin rectangle along dim 1 forces the Z-curve to leave and
	// re-enter the rectangle; skip-ahead must avoid scanning everything.
	rng := rand.New(rand.NewSource(113))
	n := 20000
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = rng.Int63n(1 << 16)
		b[i] = rng.Int63n(1 << 16)
	}
	tbl := colstore.MustNewTable([]string{"a", "b"}, [][]int64{a, b})
	ub, err := ubtree.Build(tbl, []int{0, 1}, 256)
	if err != nil {
		t.Fatal(err)
	}
	q := query.NewQuery(2).WithRange(0, 0, 1<<16).WithRange(1, 1000, 1100)
	agg := query.NewCount()
	st := ub.Execute(q, agg)
	var want int64
	for i := range a {
		if b[i] >= 1000 && b[i] <= 1100 {
			want++
		}
	}
	if agg.Result() != want {
		t.Fatalf("count = %d, want %d", agg.Result(), want)
	}
	if st.Scanned > int64(n)*3/4 {
		t.Fatalf("skip-ahead ineffective: scanned %d of %d", st.Scanned, n)
	}
}
