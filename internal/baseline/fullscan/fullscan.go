// Package fullscan implements the Full Scan baseline (§7.2): every point is
// visited, but only the columns present in the query filter are accessed.
package fullscan

import (
	"context"
	"time"

	"flood/internal/colstore"
	"flood/internal/query"
)

// Index scans the whole table for every query.
type Index struct {
	t *colstore.Table
}

// New returns a full-scan "index" over t. The table is used as-is (no
// reordering).
func New(t *colstore.Table) *Index { return &Index{t: t} }

// Name implements query.Index.
func (x *Index) Name() string { return "FullScan" }

// SizeBytes implements query.Index: a full scan keeps no metadata.
func (x *Index) SizeBytes() int64 { return 0 }

// Table returns the underlying table.
func (x *Index) Table() *colstore.Table { return x.t }

// Execute implements query.Index.
func (x *Index) Execute(q query.Query, agg query.Aggregator) query.Stats {
	return x.ExecuteControl(nil, q, agg)
}

// ExecuteContext implements query.Index: Execute under ctx's cancellation,
// stopping at block-group boundaries inside the scan kernel.
func (x *Index) ExecuteContext(ctx context.Context, q query.Query, agg query.Aggregator) (query.Stats, error) {
	return query.RunContext(ctx, q, agg, x.ExecuteControl)
}

// ExecuteControl implements query.ControlIndex: Execute threaded with an
// externally owned execution control (nil scans unconditionally).
func (x *Index) ExecuteControl(ctl *query.Control, q query.Query, agg query.Aggregator) query.Stats {
	var st query.Stats
	t0 := time.Now()
	if q.Empty() {
		st.Total = time.Since(t0)
		return st
	}
	sc := query.NewScanner(x.t)
	sc.SetControl(ctl)
	s, m := sc.ScanRange(q, q.FilteredDims(), 0, x.t.NumRows(), agg)
	st.Scanned, st.Matched = s, m
	st.ScanTime = time.Since(t0)
	st.Total = st.ScanTime
	return st
}
