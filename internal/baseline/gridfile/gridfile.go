// Package gridfile implements the Grid File baseline (Nievergelt et al.,
// §7.2, Appendix A). The d-dimensional space is divided into blocks by
// per-dimension linear scales; multiple adjacent blocks form a bucket whose
// points are stored contiguously and unsorted. The grid is built
// incrementally: when a bucket overflows the page size it is split either
// along an existing block boundary crossing it or, failing that, by adding a
// new boundary that bisects it along a round-robin dimension. Unlike Flood,
// the grid does not adapt to a query workload, and the directory can grow
// superlinearly on skewed data (§2) — Build enforces a directory budget and
// fails beyond it, mirroring the paper's construction timeouts.
package gridfile

import (
	"context"
	"fmt"
	"sort"
	"time"

	"flood/internal/colstore"
	"flood/internal/query"
)

// DefaultPageSize bounds bucket occupancy.
const DefaultPageSize = 1024

// maxBlocks caps directory growth (the paper aborted Grid File construction
// past one hour; we abort past this directory size instead).
const maxBlocks = 1 << 22

// Index is a built grid file.
type Index struct {
	t      *colstore.Table
	dims   []int
	scales [][]int64 // per local dim: sorted split values (block boundary b: values > scales[b-1], <= handled via sort.Search)
	dir    []int32   // block -> bucket id, row-major over per-dim block counts
	counts []int     // blocks per dim = len(scales[i])+1
	// bucket -> physical range after loading.
	bucketStart []int32
	numBuckets  int
}

// Build inserts every row incrementally and then loads bucket contents
// contiguously.
func Build(t *colstore.Table, dims []int, pageSize int) (*Index, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("gridfile: no dimensions to index")
	}
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	n := t.NumRows()
	raws := make([][]int64, len(dims))
	for i, d := range dims {
		raws[i] = t.Raw(d)
	}
	b := &fileBuilder{
		raws:     raws,
		pageSize: pageSize,
		scales:   make([][]int64, len(dims)),
		counts:   make([]int, len(dims)),
		dir:      []int32{0},
		buckets:  [][]int32{nil},
	}
	for i := range b.counts {
		b.counts[i] = 1
	}
	for r := 0; r < n; r++ {
		if err := b.insert(int32(r)); err != nil {
			return nil, err
		}
	}
	// Load: concatenate buckets into physical order.
	idx := &Index{
		t:          nil,
		dims:       append([]int(nil), dims...),
		scales:     b.scales,
		dir:        b.dir,
		counts:     b.counts,
		numBuckets: len(b.buckets),
	}
	perm := make([]int, 0, n)
	idx.bucketStart = make([]int32, len(b.buckets)+1)
	for bi, rows := range b.buckets {
		idx.bucketStart[bi] = int32(len(perm))
		for _, r := range rows {
			perm = append(perm, int(r))
		}
	}
	idx.bucketStart[len(b.buckets)] = int32(len(perm))
	idx.t = t.Reorder(perm)
	return idx, nil
}

type fileBuilder struct {
	raws     [][]int64
	pageSize int
	scales   [][]int64
	counts   []int
	dir      []int32
	buckets  [][]int32
	rrDim    int // round-robin split dimension
}

func (b *fileBuilder) numBlocks() int {
	n := 1
	for _, c := range b.counts {
		n *= c
	}
	return n
}

// blockCoord returns the block index of value v along local dim i.
func (b *fileBuilder) blockCoord(i int, v int64) int {
	// Block k holds values in (scales[k-1], scales[k]]; the last block is
	// open above.
	return sort.Search(len(b.scales[i]), func(j int) bool { return b.scales[i][j] >= v })
}

func (b *fileBuilder) blockID(coords []int) int {
	id := 0
	for i, c := range coords {
		id = id*b.counts[i] + c
	}
	return id
}

func (b *fileBuilder) insert(row int32) error {
	coords := make([]int, len(b.raws))
	for i := range b.raws {
		coords[i] = b.blockCoord(i, b.raws[i][row])
	}
	bu := b.dir[b.blockID(coords)]
	b.buckets[bu] = append(b.buckets[bu], row)
	for len(b.buckets[bu]) > b.pageSize {
		grew, err := b.splitBucket(bu)
		if err != nil {
			return err
		}
		if !grew {
			break // cannot split further (all points identical)
		}
	}
	return nil
}

// splitBucket divides bucket bu. It returns false when the bucket cannot be
// split (all its points coincide in every dimension).
func (b *fileBuilder) splitBucket(bu int32) (bool, error) {
	region := b.bucketRegion(bu)
	// Case 1: the bucket spans more than one block along some dimension —
	// split along an existing boundary.
	for i := range b.raws {
		if region.lo[i] < region.hi[i] {
			mid := (region.lo[i] + region.hi[i]) / 2
			b.reassign(bu, region, i, mid)
			return true, nil
		}
	}
	// Case 2: single block — add a new grid boundary bisecting the
	// bucket's points along the round-robin dimension.
	for probe := 0; probe < len(b.raws); probe++ {
		dim := (b.rrDim + probe) % len(b.raws)
		splitVal, ok := b.chooseSplitValue(bu, dim)
		if !ok {
			continue
		}
		b.rrDim = (dim + 1) % len(b.raws)
		if err := b.addBoundary(dim, splitVal); err != nil {
			return false, err
		}
		region = b.bucketRegion(bu)
		if region.lo[dim] < region.hi[dim] {
			b.reassign(bu, region, dim, region.lo[dim])
			return true, nil
		}
		return true, nil
	}
	return false, nil
}

// chooseSplitValue picks the median point value along dim inside bucket bu,
// returning false when all values coincide.
func (b *fileBuilder) chooseSplitValue(bu int32, dim int) (int64, bool) {
	rows := b.buckets[bu]
	vals := make([]int64, len(rows))
	for i, r := range rows {
		vals[i] = b.raws[dim][r]
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if vals[0] == vals[len(vals)-1] {
		return 0, false
	}
	m := vals[len(vals)/2]
	if m == vals[len(vals)-1] {
		// Boundary semantics are (lo, m]: ensure the upper half is
		// non-empty by stepping below the max run.
		i := len(vals) / 2
		for i > 0 && vals[i] == m {
			i--
		}
		m = vals[i]
	}
	return m, true
}

type region struct {
	lo, hi []int // block coordinate ranges per dim (inclusive)
}

// bucketRegion computes the bounding block-coordinate region of the blocks
// mapped to bucket bu.
func (b *fileBuilder) bucketRegion(bu int32) region {
	rg := region{lo: make([]int, len(b.counts)), hi: make([]int, len(b.counts))}
	for i := range rg.lo {
		rg.lo[i] = b.counts[i]
		rg.hi[i] = -1
	}
	coords := make([]int, len(b.counts))
	for id, owner := range b.dir {
		if owner != bu {
			continue
		}
		rem := id
		for i := len(b.counts) - 1; i >= 0; i-- {
			coords[i] = rem % b.counts[i]
			rem /= b.counts[i]
		}
		for i := range coords {
			if coords[i] < rg.lo[i] {
				rg.lo[i] = coords[i]
			}
			if coords[i] > rg.hi[i] {
				rg.hi[i] = coords[i]
			}
		}
	}
	return rg
}

// reassign splits bucket bu: blocks of its region with coordinate > mid
// along dim move to a new bucket, and points are redistributed by value.
func (b *fileBuilder) reassign(bu int32, rg region, dim int, mid int) {
	nb := int32(len(b.buckets))
	b.buckets = append(b.buckets, nil)
	coords := make([]int, len(b.counts))
	for id, owner := range b.dir {
		if owner != bu {
			continue
		}
		rem := id
		for i := len(b.counts) - 1; i >= 0; i-- {
			coords[i] = rem % b.counts[i]
			rem /= b.counts[i]
		}
		if coords[dim] > mid {
			b.dir[id] = nb
		}
	}
	// Redistribute points: recompute each row's block coordinate along
	// dim and route by the directory.
	rows := b.buckets[bu]
	b.buckets[bu] = rows[:0:0]
	for _, r := range rows {
		c := b.blockCoord(dim, b.raws[dim][r])
		if c > mid {
			b.buckets[nb] = append(b.buckets[nb], r)
		} else {
			b.buckets[bu] = append(b.buckets[bu], r)
		}
	}
}

// addBoundary inserts a new split value into dim's linear scale, doubling
// the directory along that dimension.
func (b *fileBuilder) addBoundary(dim int, v int64) error {
	pos := sort.Search(len(b.scales[dim]), func(j int) bool { return b.scales[dim][j] >= v })
	if pos < len(b.scales[dim]) && b.scales[dim][pos] == v {
		return nil // boundary already exists
	}
	if b.numBlocks()/b.counts[dim]*(b.counts[dim]+1) > maxBlocks {
		return fmt.Errorf("gridfile: directory exceeded %d blocks (heavily skewed data)", maxBlocks)
	}
	b.scales[dim] = append(b.scales[dim], 0)
	copy(b.scales[dim][pos+1:], b.scales[dim][pos:])
	b.scales[dim][pos] = v

	oldCounts := append([]int(nil), b.counts...)
	b.counts[dim]++
	newDir := make([]int32, b.numBlocks())
	coords := make([]int, len(b.counts))
	for id := range newDir {
		rem := id
		for i := len(b.counts) - 1; i >= 0; i-- {
			coords[i] = rem % b.counts[i]
			rem /= b.counts[i]
		}
		// Map back to the old directory: coordinates above the new
		// boundary shift down by one.
		oc := coords[dim]
		if oc > pos {
			oc--
		}
		oldID := 0
		for i := range coords {
			c := coords[i]
			if i == dim {
				c = oc
			}
			oldID = oldID*oldCounts[i] + c
		}
		newDir[id] = b.dir[oldID]
	}
	b.dir = newDir
	return nil
}

// Name implements query.Index.
func (x *Index) Name() string { return "GridFile" }

// SizeBytes implements query.Index.
func (x *Index) SizeBytes() int64 {
	s := int64(len(x.dir))*4 + int64(len(x.bucketStart))*4
	for _, sc := range x.scales {
		s += int64(len(sc)) * 8
	}
	return s
}

// Table returns the index's reordered table.
func (x *Index) Table() *colstore.Table { return x.t }

// NumBuckets returns the number of buckets.
func (x *Index) NumBuckets() int { return x.numBuckets }

// Execute implements query.Index: find all blocks intersecting the query
// rectangle, dedupe their buckets, and scan each bucket fully (points in a
// bucket are unsorted, so the whole bucket must be checked).
func (x *Index) Execute(q query.Query, agg query.Aggregator) query.Stats {
	return x.ExecuteControl(nil, q, agg)
}

// ExecuteContext implements query.Index: Execute under ctx's cancellation,
// stopping between buckets and at block-group boundaries inside the scan
// kernel.
func (x *Index) ExecuteContext(ctx context.Context, q query.Query, agg query.Aggregator) (query.Stats, error) {
	return query.RunContext(ctx, q, agg, x.ExecuteControl)
}

// ExecuteControl implements query.ControlIndex: Execute threaded with an
// externally owned execution control (nil scans unconditionally).
func (x *Index) ExecuteControl(ctl *query.Control, q query.Query, agg query.Aggregator) query.Stats {
	var st query.Stats
	t0 := time.Now()
	if q.Empty() || x.t.NumRows() == 0 {
		st.Total = time.Since(t0)
		return st
	}
	lo := make([]int, len(x.dims))
	hi := make([]int, len(x.dims))
	for i, d := range x.dims {
		r := q.Ranges[d]
		lo[i], hi[i] = 0, x.counts[i]-1
		if r.Present {
			if r.Min != query.NegInf {
				lo[i] = sort.Search(len(x.scales[i]), func(j int) bool { return x.scales[i][j] >= r.Min })
			}
			if r.Max != query.PosInf {
				hi[i] = sort.Search(len(x.scales[i]), func(j int) bool { return x.scales[i][j] >= r.Max })
			}
		}
	}
	seen := make(map[int32]bool)
	var order []int32
	coords := append([]int(nil), lo...)
	for {
		id := 0
		for i, c := range coords {
			id = id*x.counts[i] + c
		}
		if bu := x.dir[id]; !seen[bu] {
			seen[bu] = true
			order = append(order, bu)
		}
		i := len(coords) - 1
		for ; i >= 0; i-- {
			coords[i]++
			if coords[i] <= hi[i] {
				break
			}
			coords[i] = lo[i]
		}
		if i < 0 {
			break
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
	t1 := time.Now()
	st.IndexTime = t1.Sub(t0)

	dims := q.FilteredDims()
	sc := query.NewScanner(x.t)
	sc.SetControl(ctl)
	for _, bu := range order {
		if ctl.Stopped() {
			break
		}
		st.CellsVisited++
		s, m := sc.ScanRange(q, dims, int(x.bucketStart[bu]), int(x.bucketStart[bu+1]), agg)
		st.Scanned += s
		st.Matched += m
	}
	st.ScanTime = time.Since(t1)
	st.Total = time.Since(t0)
	return st
}
