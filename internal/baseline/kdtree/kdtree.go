// Package kdtree implements the k-d tree baseline (§7.2, Appendix A): space
// is recursively partitioned at the median value along each dimension, with
// dimensions cycled round-robin in order of decreasing selectivity, until
// leaves fall below the page size. A dimension in which all remaining points
// share one value is dropped from further partitioning. Pages are laid out
// by in-order traversal; every node records its split, bounds, and physical
// index range.
package kdtree

import (
	"context"
	"fmt"
	"sort"
	"time"

	"flood/internal/colstore"
	"flood/internal/query"
)

// DefaultPageSize bounds leaf occupancy.
const DefaultPageSize = 1024

type node struct {
	splitDim   int // table dimension; -1 for leaves
	splitVal   int64
	mins, maxs []int64 // tight bounds over indexed dims
	start, end int32
	left       *node
	right      *node
}

// Index is a built k-d tree.
type Index struct {
	t        *colstore.Table
	dims     []int
	root     *node
	numNodes int
}

// Build partitions t over dims (most selective first).
func Build(t *colstore.Table, dims []int, pageSize int) (*Index, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("kdtree: no dimensions to index")
	}
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	n := t.NumRows()
	raws := make([][]int64, len(dims))
	for i, d := range dims {
		raws[i] = t.Raw(d)
	}
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	b := &builder{raws: raws, dims: dims, pageSize: pageSize}
	root := b.split(rows, 0)
	perm := make([]int, n)
	for i, r := range b.order {
		perm[i] = int(r)
	}
	return &Index{t: t.Reorder(perm), dims: append([]int(nil), dims...), root: root, numNodes: b.numNodes}, nil
}

type builder struct {
	raws     [][]int64
	dims     []int
	pageSize int
	order    []int32
	numNodes int
}

func (b *builder) split(rows []int32, next int) *node {
	b.numNodes++
	nd := &node{splitDim: -1, start: int32(len(b.order))}
	nd.mins = make([]int64, len(b.raws))
	nd.maxs = make([]int64, len(b.raws))
	if len(rows) == 0 {
		nd.end = nd.start
		return nd
	}
	for i := range b.raws {
		nd.mins[i], nd.maxs[i] = b.raws[i][rows[0]], b.raws[i][rows[0]]
		for _, r := range rows[1:] {
			v := b.raws[i][r]
			if v < nd.mins[i] {
				nd.mins[i] = v
			}
			if v > nd.maxs[i] {
				nd.maxs[i] = v
			}
		}
	}
	if len(rows) <= b.pageSize {
		b.order = append(b.order, rows...)
		nd.end = int32(len(b.order))
		return nd
	}
	// Round-robin over indexed dims, skipping constant ones.
	li := -1
	for probe := 0; probe < len(b.raws); probe++ {
		cand := (next + probe) % len(b.raws)
		if nd.mins[cand] < nd.maxs[cand] {
			li = cand
			break
		}
	}
	if li < 0 {
		// Every dimension is constant: cannot partition further.
		b.order = append(b.order, rows...)
		nd.end = int32(len(b.order))
		return nd
	}
	sort.Slice(rows, func(a, c int) bool { return b.raws[li][rows[a]] < b.raws[li][rows[c]] })
	m := len(rows) / 2
	// Move the split point off a run of duplicates so both halves are
	// non-empty in value space.
	for m < len(rows) && b.raws[li][rows[m]] == b.raws[li][rows[m-1]] {
		m++
	}
	if m == len(rows) {
		m = len(rows) / 2
		for m > 0 && b.raws[li][rows[m]] == b.raws[li][rows[m-1]] {
			m--
		}
		if m == 0 {
			b.order = append(b.order, rows...)
			nd.end = int32(len(b.order))
			return nd
		}
	}
	nd.splitDim = b.dims[li]
	nd.splitVal = b.raws[li][rows[m]]
	nd.left = b.split(rows[:m], next+1)
	nd.right = b.split(rows[m:], next+1)
	nd.end = int32(len(b.order))
	return nd
}

// Name implements query.Index.
func (x *Index) Name() string { return "KDTree" }

// SizeBytes implements query.Index.
func (x *Index) SizeBytes() int64 {
	perNode := int64(len(x.dims))*16 + 16 + 8 + 16 // bounds + split + range + child ptrs
	return int64(x.numNodes) * perNode
}

// Table returns the index's reordered table.
func (x *Index) Table() *colstore.Table { return x.t }

// NumNodes returns the number of tree nodes.
func (x *Index) NumNodes() int { return x.numNodes }

// Execute implements query.Index.
func (x *Index) Execute(q query.Query, agg query.Aggregator) query.Stats {
	return x.ExecuteControl(nil, q, agg)
}

// ExecuteContext implements query.Index: Execute under ctx's cancellation,
// stopping between leaf spans and at block-group boundaries inside the
// scan kernel.
func (x *Index) ExecuteContext(ctx context.Context, q query.Query, agg query.Aggregator) (query.Stats, error) {
	return query.RunContext(ctx, q, agg, x.ExecuteControl)
}

// ExecuteControl implements query.ControlIndex: Execute threaded with an
// externally owned execution control (nil scans unconditionally).
func (x *Index) ExecuteControl(ctl *query.Control, q query.Query, agg query.Aggregator) query.Stats {
	var st query.Stats
	t0 := time.Now()
	if q.Empty() || x.t.NumRows() == 0 {
		st.Total = time.Since(t0)
		return st
	}
	type span struct {
		start, end int32
		exact      bool
	}
	var spans []span
	dims := q.FilteredDims()
	var walk func(nd *node)
	walk = func(nd *node) {
		rel := relation(q, x.dims, nd.mins, nd.maxs)
		if rel == relDisjoint {
			return
		}
		if rel == relContained {
			st.CellsVisited++
			spans = append(spans, span{nd.start, nd.end, true})
			return
		}
		if nd.splitDim < 0 || nd.left == nil {
			st.CellsVisited++
			spans = append(spans, span{nd.start, nd.end, false})
			return
		}
		walk(nd.left)
		walk(nd.right)
	}
	walk(x.root)
	t1 := time.Now()
	st.IndexTime = t1.Sub(t0)

	sc := query.NewScanner(x.t)
	sc.SetControl(ctl)
	for _, sp := range spans {
		if ctl.Stopped() {
			break
		}
		if sp.exact {
			s, m := sc.ScanExactRange(int(sp.start), int(sp.end), agg)
			st.Scanned += s
			st.Matched += m
			st.ExactMatched += m
			continue
		}
		s, m := sc.ScanRange(q, dims, int(sp.start), int(sp.end), agg)
		st.Scanned += s
		st.Matched += m
	}
	st.ScanTime = time.Since(t1)
	st.Total = time.Since(t0)
	return st
}

type rel int

const (
	relDisjoint rel = iota
	relIntersect
	relContained
)

func relation(q query.Query, dims []int, mins, maxs []int64) rel {
	contained := true
	for _, d := range q.FilteredDims() {
		i := -1
		for j, dd := range dims {
			if dd == d {
				i = j
				break
			}
		}
		if i < 0 {
			contained = false
			continue
		}
		r := q.Ranges[d]
		if maxs[i] < r.Min || mins[i] > r.Max {
			return relDisjoint
		}
		if mins[i] < r.Min || maxs[i] > r.Max {
			contained = false
		}
	}
	if contained {
		return relContained
	}
	return relIntersect
}
