package kdtree

import (
	"math/rand"
	"testing"

	"flood/internal/colstore"
)

func buildTree(t *testing.T, n, pageSize int) (*Index, [][]int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	data := make([][]int64, 3)
	for c := range data {
		data[c] = make([]int64, n)
		for i := range data[c] {
			data[c][i] = rng.Int63n(1 << 12)
		}
	}
	tbl := colstore.MustNewTable([]string{"a", "b", "c"}, data)
	idx, err := Build(tbl, []int{0, 1, 2}, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return idx, data
}

// TestSplitInvariants checks that at every internal node, the left subtree
// holds values strictly below the split and the right subtree holds values
// at or above it, and ranges partition the table.
func TestSplitInvariants(t *testing.T) {
	idx, _ := buildTree(t, 6000, 128)
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.splitDim < 0 || nd.left == nil {
			if int(nd.end-nd.start) > 128 && nd.splitDim >= 0 {
				t.Fatalf("oversized leaf: %d", nd.end-nd.start)
			}
			return
		}
		if nd.left.start != nd.start || nd.left.end != nd.right.start || nd.right.end != nd.end {
			t.Fatal("child ranges do not partition parent")
		}
		for r := nd.left.start; r < nd.left.end; r++ {
			if idx.t.Get(nd.splitDim, int(r)) >= nd.splitVal {
				t.Fatalf("left row %d >= split %d on dim %d", r, nd.splitVal, nd.splitDim)
			}
		}
		for r := nd.right.start; r < nd.right.end; r++ {
			if idx.t.Get(nd.splitDim, int(r)) < nd.splitVal {
				t.Fatalf("right row %d < split %d on dim %d", r, nd.splitVal, nd.splitDim)
			}
		}
		walk(nd.left)
		walk(nd.right)
	}
	walk(idx.root)
	if idx.root.start != 0 || int(idx.root.end) != 6000 {
		t.Fatal("root does not cover the table")
	}
}

func TestConstantDimensionSkipped(t *testing.T) {
	n := 1000
	con := make([]int64, n)
	varied := make([]int64, n)
	rng := rand.New(rand.NewSource(22))
	for i := range varied {
		con[i] = 5
		varied[i] = rng.Int63n(1 << 20)
	}
	tbl := colstore.MustNewTable([]string{"con", "var"}, [][]int64{con, varied})
	idx, err := Build(tbl, []int{0, 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.splitDim == 0 {
			t.Fatal("tree split on a constant dimension")
		}
		if nd.left != nil {
			walk(nd.left)
			walk(nd.right)
		}
	}
	walk(idx.root)
}

func TestAllConstantBecomesLeaf(t *testing.T) {
	n := 500
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i], b[i] = 1, 2
	}
	tbl := colstore.MustNewTable([]string{"a", "b"}, [][]int64{a, b})
	idx, err := Build(tbl, []int{0, 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if idx.root.left != nil {
		t.Fatal("fully constant data should be a single (oversized) leaf")
	}
	if idx.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", idx.NumNodes())
	}
}
