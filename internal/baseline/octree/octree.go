// Package octree implements the Hyperoctree baseline (§7.2, Appendix A):
// space is recursively subdivided into 2^d equal hyperoctants until every
// leaf holds at most pageSize points. Points within a page are stored
// contiguously and pages are ordered by an in-order traversal. Every node
// keeps the per-dimension min/max of its points and its physical index
// range; only non-empty children are materialized, which keeps the structure
// viable at high dimensionality.
package octree

import (
	"context"
	"fmt"
	"time"

	"flood/internal/colstore"
	"flood/internal/query"
)

// DefaultPageSize bounds leaf occupancy.
const DefaultPageSize = 1024

// maxDepth caps subdivision on pathological (heavily duplicated) data.
const maxDepth = 48

type node struct {
	mins, maxs []int64 // tight bounds of the node's points (indexed dims)
	start, end int32
	children   []*node
}

// Index is a built hyperoctree.
type Index struct {
	t        *colstore.Table
	dims     []int
	root     *node
	numNodes int
}

// Build subdivides t over the given dimensions.
func Build(t *colstore.Table, dims []int, pageSize int) (*Index, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("octree: no dimensions to index")
	}
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	n := t.NumRows()
	raws := make([][]int64, len(dims))
	for i, d := range dims {
		raws[i] = t.Raw(d)
	}
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	boxLo := make([]int64, len(dims))
	boxHi := make([]int64, len(dims))
	for i := range dims {
		if n > 0 {
			boxLo[i], boxHi[i] = raws[i][0], raws[i][0]
			for _, v := range raws[i][1:] {
				if v < boxLo[i] {
					boxLo[i] = v
				}
				if v > boxHi[i] {
					boxHi[i] = v
				}
			}
		}
	}
	b := &builder{raws: raws, pageSize: pageSize}
	root := b.split(rows, boxLo, boxHi, 0)
	// The DFS order of b.order is the physical layout.
	perm := make([]int, n)
	for i, r := range b.order {
		perm[i] = int(r)
	}
	idx := &Index{t: t.Reorder(perm), dims: append([]int(nil), dims...), root: root, numNodes: b.numNodes}
	return idx, nil
}

type builder struct {
	raws     [][]int64
	pageSize int
	order    []int32
	numNodes int
}

func (b *builder) split(rows []int32, boxLo, boxHi []int64, depth int) *node {
	b.numNodes++
	nd := &node{
		mins:  make([]int64, len(b.raws)),
		maxs:  make([]int64, len(b.raws)),
		start: int32(len(b.order)),
	}
	for i := range b.raws {
		nd.mins[i], nd.maxs[i] = boxHi[i], boxLo[i]
	}
	for _, r := range rows {
		for i := range b.raws {
			v := b.raws[i][r]
			if v < nd.mins[i] {
				nd.mins[i] = v
			}
			if v > nd.maxs[i] {
				nd.maxs[i] = v
			}
		}
	}
	degenerate := true
	for i := range b.raws {
		if boxLo[i] < boxHi[i] {
			degenerate = false
			break
		}
	}
	if len(rows) <= b.pageSize || depth >= maxDepth || degenerate {
		b.order = append(b.order, rows...)
		nd.end = int32(len(b.order))
		return nd
	}
	// Partition into hyperoctants around the box midpoint. Children are
	// kept sparsely: only octants holding points are materialized.
	mid := make([]int64, len(b.raws))
	for i := range mid {
		mid[i] = boxLo[i] + (boxHi[i]-boxLo[i])/2
	}
	groups := make(map[uint64][]int32)
	for _, r := range rows {
		var key uint64
		for i := range b.raws {
			if b.raws[i][r] > mid[i] {
				key |= 1 << uint(i)
			}
		}
		groups[key] = append(groups[key], r)
	}
	if len(groups) == 1 {
		// All points share an octant whose box no longer shrinks them
		// apart: stop splitting to guarantee progress.
		b.order = append(b.order, rows...)
		nd.end = int32(len(b.order))
		return nd
	}
	// Deterministic child order: ascending octant key.
	for key := uint64(0); key < uint64(1)<<uint(len(b.raws)); key++ {
		g, okKey := groups[key]
		if !okKey {
			continue
		}
		cLo := make([]int64, len(b.raws))
		cHi := make([]int64, len(b.raws))
		for i := range b.raws {
			if key&(1<<uint(i)) != 0 {
				cLo[i], cHi[i] = mid[i]+1, boxHi[i]
			} else {
				cLo[i], cHi[i] = boxLo[i], mid[i]
			}
		}
		nd.children = append(nd.children, b.split(g, cLo, cHi, depth+1))
	}
	nd.end = int32(len(b.order))
	return nd
}

// Name implements query.Index.
func (x *Index) Name() string { return "Hyperoctree" }

// SizeBytes implements query.Index.
func (x *Index) SizeBytes() int64 {
	perNode := int64(len(x.dims))*16 + 8 + 24 // bounds + range + child slice header
	return int64(x.numNodes) * perNode
}

// Table returns the index's reordered table.
func (x *Index) Table() *colstore.Table { return x.t }

// NumNodes returns the number of tree nodes.
func (x *Index) NumNodes() int { return x.numNodes }

// Execute implements query.Index.
func (x *Index) Execute(q query.Query, agg query.Aggregator) query.Stats {
	return x.ExecuteControl(nil, q, agg)
}

// ExecuteContext implements query.Index: Execute under ctx's cancellation,
// stopping between leaf spans and at block-group boundaries inside the
// scan kernel.
func (x *Index) ExecuteContext(ctx context.Context, q query.Query, agg query.Aggregator) (query.Stats, error) {
	return query.RunContext(ctx, q, agg, x.ExecuteControl)
}

// ExecuteControl implements query.ControlIndex: Execute threaded with an
// externally owned execution control (nil scans unconditionally).
func (x *Index) ExecuteControl(ctl *query.Control, q query.Query, agg query.Aggregator) query.Stats {
	var st query.Stats
	t0 := time.Now()
	if q.Empty() || x.t.NumRows() == 0 {
		st.Total = time.Since(t0)
		return st
	}
	// Collect the page ranges first (index time), then scan them.
	type span struct {
		start, end int32
		exact      bool
	}
	var spans []span
	dims := q.FilteredDims()
	var walk func(nd *node)
	walk = func(nd *node) {
		rel := relation(q, x.dims, nd.mins, nd.maxs)
		if rel == relDisjoint {
			return
		}
		if rel == relContained {
			st.CellsVisited++
			spans = append(spans, span{nd.start, nd.end, true})
			return
		}
		if nd.children == nil {
			st.CellsVisited++
			spans = append(spans, span{nd.start, nd.end, false})
			return
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(x.root)
	t1 := time.Now()
	st.IndexTime = t1.Sub(t0)

	sc := query.NewScanner(x.t)
	sc.SetControl(ctl)
	for _, sp := range spans {
		if ctl.Stopped() {
			break
		}
		if sp.exact {
			s, m := sc.ScanExactRange(int(sp.start), int(sp.end), agg)
			st.Scanned += s
			st.Matched += m
			st.ExactMatched += m
			continue
		}
		s, m := sc.ScanRange(q, dims, int(sp.start), int(sp.end), agg)
		st.Scanned += s
		st.Matched += m
	}
	st.ScanTime = time.Since(t1)
	st.Total = time.Since(t0)
	return st
}

type rel int

const (
	relDisjoint rel = iota
	relIntersect
	relContained
)

// relation classifies a node's bounds against the query rectangle. Filters
// on dimensions outside dims force relIntersect (they must be row-checked).
func relation(q query.Query, dims []int, mins, maxs []int64) rel {
	contained := true
	for _, d := range q.FilteredDims() {
		i := -1
		for j, dd := range dims {
			if dd == d {
				i = j
				break
			}
		}
		if i < 0 {
			contained = false
			continue
		}
		r := q.Ranges[d]
		if maxs[i] < r.Min || mins[i] > r.Max {
			return relDisjoint
		}
		if mins[i] < r.Min || maxs[i] > r.Max {
			contained = false
		}
	}
	if contained {
		return relContained
	}
	return relIntersect
}
