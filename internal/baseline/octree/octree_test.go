package octree

import (
	"math/rand"
	"testing"

	"flood/internal/colstore"
)

func buildTree(t *testing.T, n, pageSize int, dims int) (*Index, [][]int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	data := make([][]int64, dims)
	names := make([]string, dims)
	for c := range data {
		names[c] = string(rune('a' + c))
		data[c] = make([]int64, n)
		for i := range data[c] {
			data[c][i] = rng.Int63n(1 << 16)
		}
	}
	tbl := colstore.MustNewTable(names, data)
	idxDims := make([]int, dims)
	for i := range idxDims {
		idxDims[i] = i
	}
	idx, err := Build(tbl, idxDims, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return idx, data
}

// TestTreeInvariants checks every node: its physical range is consistent
// with its children, its bounds contain every point it owns, and leaves
// respect the page size (unless degenerate).
func TestTreeInvariants(t *testing.T) {
	idx, _ := buildTree(t, 5000, 128, 3)
	var walk func(nd *node) (int32, int32)
	leafCount := 0
	walk = func(nd *node) (int32, int32) {
		for r := nd.start; r < nd.end; r++ {
			for i, d := range idx.dims {
				v := idx.t.Get(d, int(r))
				if v < nd.mins[i] || v > nd.maxs[i] {
					t.Fatalf("row %d outside node bounds on dim %d", r, d)
				}
			}
		}
		if nd.children == nil {
			leafCount++
			if int(nd.end-nd.start) > 128 {
				t.Fatalf("leaf holds %d > page size", nd.end-nd.start)
			}
			return nd.start, nd.end
		}
		cur := nd.start
		for _, c := range nd.children {
			cs, ce := walk(c)
			if cs != cur {
				t.Fatalf("child ranges not contiguous: %d != %d", cs, cur)
			}
			cur = ce
		}
		if cur != nd.end {
			t.Fatalf("children do not cover parent: %d != %d", cur, nd.end)
		}
		return nd.start, nd.end
	}
	s, e := walk(idx.root)
	if s != 0 || int(e) != 5000 {
		t.Fatalf("root covers [%d, %d), want [0, 5000)", s, e)
	}
	if leafCount < 5000/128 {
		t.Fatalf("suspiciously few leaves: %d", leafCount)
	}
	if idx.NumNodes() < leafCount {
		t.Fatal("node count below leaf count")
	}
}

func TestDuplicateHeavyDataTerminates(t *testing.T) {
	// 90% identical points must not recurse forever.
	n := 2000
	a := make([]int64, n)
	b := make([]int64, n)
	rng := rand.New(rand.NewSource(12))
	for i := range a {
		if i%10 == 0 {
			a[i], b[i] = rng.Int63n(100), rng.Int63n(100)
		} else {
			a[i], b[i] = 42, 42
		}
	}
	tbl := colstore.MustNewTable([]string{"a", "b"}, [][]int64{a, b})
	idx, err := Build(tbl, []int{0, 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if idx.t.NumRows() != n {
		t.Fatal("rows lost")
	}
}

func TestHighDimensionalSparseChildren(t *testing.T) {
	// At d=14 a dense child array would need 2^14 slots per node; the
	// sparse representation must stay proportional to the data.
	idx, _ := buildTree(t, 3000, 64, 14)
	if idx.NumNodes() > 3000+10 {
		t.Fatalf("node explosion at high d: %d nodes for 3000 points", idx.NumNodes())
	}
}
