// Package rstar implements the R*-tree baseline (§7.2). The paper used a
// bulk-loaded read-optimized R*-tree from libspatialindex; this
// implementation uses Sort-Tile-Recursive (STR) bulk loading — the standard
// read-optimized packing — producing the same query path: descend nodes
// whose minimum bounding rectangles intersect the query. See DESIGN.md §3
// for the substitution rationale.
package rstar

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"flood/internal/colstore"
	"flood/internal/query"
)

// DefaultPageSize bounds leaf occupancy; DefaultFanout bounds internal nodes.
const (
	DefaultPageSize = 1024
	DefaultFanout   = 16
)

type node struct {
	mins, maxs []int64
	start, end int32
	children   []*node
}

// Index is an STR bulk-loaded R-tree.
type Index struct {
	t        *colstore.Table
	dims     []int
	root     *node
	numNodes int
}

// Build packs t over dims using STR tiling.
func Build(t *colstore.Table, dims []int, pageSize int) (*Index, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("rstar: no dimensions to index")
	}
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	n := t.NumRows()
	raws := make([][]int64, len(dims))
	for i, d := range dims {
		raws[i] = t.Raw(d)
	}
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	b := &builder{raws: raws, pageSize: pageSize}
	var leaves []*node
	b.tile(rows, 0, &leaves)
	perm := make([]int, n)
	for i, r := range b.order {
		perm[i] = int(r)
	}
	idx := &Index{t: t.Reorder(perm), dims: append([]int(nil), dims...)}
	idx.numNodes = len(leaves)
	// Pack leaves upward into fanout-wide internal levels.
	level := leaves
	for len(level) > 1 {
		var up []*node
		for i := 0; i < len(level); i += DefaultFanout {
			j := i + DefaultFanout
			if j > len(level) {
				j = len(level)
			}
			parent := &node{
				mins:     make([]int64, len(dims)),
				maxs:     make([]int64, len(dims)),
				children: level[i:j:j],
				start:    level[i].start,
				end:      level[j-1].end,
			}
			copy(parent.mins, level[i].mins)
			copy(parent.maxs, level[i].maxs)
			for _, c := range level[i+1 : j] {
				for k := range dims {
					if c.mins[k] < parent.mins[k] {
						parent.mins[k] = c.mins[k]
					}
					if c.maxs[k] > parent.maxs[k] {
						parent.maxs[k] = c.maxs[k]
					}
				}
			}
			up = append(up, parent)
			idx.numNodes++
		}
		level = up
	}
	if len(level) == 1 {
		idx.root = level[0]
	} else {
		idx.root = &node{mins: make([]int64, len(dims)), maxs: make([]int64, len(dims))}
	}
	return idx, nil
}

type builder struct {
	raws     [][]int64
	pageSize int
	order    []int32
}

// tile recursively applies STR: sort by the current dimension, cut into
// slabs sized so that the final leaves hold ~pageSize points, recurse on the
// next dimension; the last dimension emits leaves directly.
func (b *builder) tile(rows []int32, dim int, leaves *[]*node) {
	if len(rows) == 0 {
		return
	}
	if dim == len(b.raws)-1 || len(rows) <= b.pageSize {
		sort.Slice(rows, func(a, c int) bool { return b.raws[dim][rows[a]] < b.raws[dim][rows[c]] })
		for s := 0; s < len(rows); s += b.pageSize {
			e := s + b.pageSize
			if e > len(rows) {
				e = len(rows)
			}
			*leaves = append(*leaves, b.leaf(rows[s:e]))
		}
		return
	}
	sort.Slice(rows, func(a, c int) bool { return b.raws[dim][rows[a]] < b.raws[dim][rows[c]] })
	pages := (len(rows) + b.pageSize - 1) / b.pageSize
	remaining := len(b.raws) - dim
	slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(remaining))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := (len(rows) + slabs - 1) / slabs
	for s := 0; s < len(rows); s += slabSize {
		e := s + slabSize
		if e > len(rows) {
			e = len(rows)
		}
		b.tile(rows[s:e], dim+1, leaves)
	}
}

func (b *builder) leaf(rows []int32) *node {
	nd := &node{
		mins:  make([]int64, len(b.raws)),
		maxs:  make([]int64, len(b.raws)),
		start: int32(len(b.order)),
	}
	for i := range b.raws {
		nd.mins[i], nd.maxs[i] = b.raws[i][rows[0]], b.raws[i][rows[0]]
	}
	for _, r := range rows {
		for i := range b.raws {
			v := b.raws[i][r]
			if v < nd.mins[i] {
				nd.mins[i] = v
			}
			if v > nd.maxs[i] {
				nd.maxs[i] = v
			}
		}
	}
	b.order = append(b.order, rows...)
	nd.end = int32(len(b.order))
	return nd
}

// Name implements query.Index.
func (x *Index) Name() string { return "RStar" }

// SizeBytes implements query.Index.
func (x *Index) SizeBytes() int64 {
	perNode := int64(len(x.dims))*16 + 8 + 24
	return int64(x.numNodes) * perNode
}

// Table returns the index's reordered table.
func (x *Index) Table() *colstore.Table { return x.t }

// Execute implements query.Index.
func (x *Index) Execute(q query.Query, agg query.Aggregator) query.Stats {
	return x.ExecuteControl(nil, q, agg)
}

// ExecuteContext implements query.Index: Execute under ctx's cancellation,
// stopping between leaf spans and at block-group boundaries inside the
// scan kernel.
func (x *Index) ExecuteContext(ctx context.Context, q query.Query, agg query.Aggregator) (query.Stats, error) {
	return query.RunContext(ctx, q, agg, x.ExecuteControl)
}

// ExecuteControl implements query.ControlIndex: Execute threaded with an
// externally owned execution control (nil scans unconditionally).
func (x *Index) ExecuteControl(ctl *query.Control, q query.Query, agg query.Aggregator) query.Stats {
	var st query.Stats
	t0 := time.Now()
	if q.Empty() || x.t.NumRows() == 0 {
		st.Total = time.Since(t0)
		return st
	}
	type span struct {
		start, end int32
		exact      bool
	}
	var spans []span
	dims := q.FilteredDims()
	var walk func(nd *node)
	walk = func(nd *node) {
		rel := relation(q, x.dims, nd.mins, nd.maxs)
		if rel == relDisjoint {
			return
		}
		if rel == relContained {
			st.CellsVisited++
			spans = append(spans, span{nd.start, nd.end, true})
			return
		}
		if nd.children == nil {
			st.CellsVisited++
			spans = append(spans, span{nd.start, nd.end, false})
			return
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(x.root)
	t1 := time.Now()
	st.IndexTime = t1.Sub(t0)

	sc := query.NewScanner(x.t)
	sc.SetControl(ctl)
	for _, sp := range spans {
		if ctl.Stopped() {
			break
		}
		if sp.exact {
			s, m := sc.ScanExactRange(int(sp.start), int(sp.end), agg)
			st.Scanned += s
			st.Matched += m
			st.ExactMatched += m
			continue
		}
		s, m := sc.ScanRange(q, dims, int(sp.start), int(sp.end), agg)
		st.Scanned += s
		st.Matched += m
	}
	st.ScanTime = time.Since(t1)
	st.Total = time.Since(t0)
	return st
}

type rel int

const (
	relDisjoint rel = iota
	relIntersect
	relContained
)

func relation(q query.Query, dims []int, mins, maxs []int64) rel {
	contained := true
	for _, d := range q.FilteredDims() {
		i := -1
		for j, dd := range dims {
			if dd == d {
				i = j
				break
			}
		}
		if i < 0 {
			contained = false
			continue
		}
		r := q.Ranges[d]
		if maxs[i] < r.Min || mins[i] > r.Max {
			return relDisjoint
		}
		if mins[i] < r.Min || maxs[i] > r.Max {
			contained = false
		}
	}
	if contained {
		return relContained
	}
	return relIntersect
}
