package rstar

import (
	"math/rand"
	"testing"

	"flood/internal/colstore"
)

func buildTree(t *testing.T, n, pageSize int) *Index {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	data := make([][]int64, 3)
	for c := range data {
		data[c] = make([]int64, n)
		for i := range data[c] {
			data[c][i] = rng.Int63n(1 << 14)
		}
	}
	tbl := colstore.MustNewTable([]string{"a", "b", "c"}, data)
	idx, err := Build(tbl, []int{0, 1, 2}, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// TestMBRInvariants checks the R-tree's defining property: every parent's
// bounding rectangle contains its children's, and leaf rectangles contain
// their rows.
func TestMBRInvariants(t *testing.T) {
	idx := buildTree(t, 8000, 256)
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.children == nil {
			if int(nd.end-nd.start) > 256 {
				t.Fatalf("oversized leaf: %d", nd.end-nd.start)
			}
			for r := nd.start; r < nd.end; r++ {
				for i, d := range idx.dims {
					v := idx.t.Get(d, int(r))
					if v < nd.mins[i] || v > nd.maxs[i] {
						t.Fatalf("row %d outside leaf MBR on dim %d", r, d)
					}
				}
			}
			return
		}
		if len(nd.children) > DefaultFanout {
			t.Fatalf("node has %d children > fanout", len(nd.children))
		}
		for _, c := range nd.children {
			for i := range nd.mins {
				if c.mins[i] < nd.mins[i] || c.maxs[i] > nd.maxs[i] {
					t.Fatal("child MBR escapes parent MBR")
				}
			}
			walk(c)
		}
	}
	walk(idx.root)
}

// TestLeavesPartitionRows ensures STR packing lays out every row exactly
// once, in leaf order.
func TestLeavesPartitionRows(t *testing.T) {
	idx := buildTree(t, 5000, 128)
	var cur int32
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.children == nil {
			if nd.start != cur {
				t.Fatalf("leaf starts at %d, want %d", nd.start, cur)
			}
			cur = nd.end
			return
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(idx.root)
	if int(cur) != 5000 {
		t.Fatalf("leaves cover %d rows, want 5000", cur)
	}
}

func TestTinyInputs(t *testing.T) {
	tbl := colstore.MustNewTable([]string{"a"}, [][]int64{{9}})
	idx, err := Build(tbl, []int{0}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if idx.root == nil {
		t.Fatal("single-row tree must have a root")
	}
	empty := colstore.MustNewTable([]string{"a"}, [][]int64{{}})
	if _, err := Build(empty, []int{0}, 16); err != nil {
		t.Fatal(err)
	}
}
