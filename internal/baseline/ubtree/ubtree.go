// Package ubtree implements the UB-tree baseline (§7.2, Appendix A): points
// are ordered by Z-value and grouped into pages storing only their minimum
// Z-value. A query walks the physical range between the rectangle's extreme
// Z-values; whenever it reaches a point outside the rectangle it computes the
// next in-rectangle Z-value (BIGMIN) and skips ahead to the page containing
// it.
package ubtree

import (
	"context"
	"time"

	"flood/internal/baseline/zbase"
	"flood/internal/colstore"
	"flood/internal/query"
)

// Index is a UB-tree over a Z-sorted table.
type Index struct {
	b *zbase.Base
}

// Build Z-sorts t over dims (most selective first) with the given page size
// (0 = default).
func Build(t *colstore.Table, dims []int, pageSize int) (*Index, error) {
	b, err := zbase.Build(t, dims, pageSize)
	if err != nil {
		return nil, err
	}
	return &Index{b: b}, nil
}

// Name implements query.Index.
func (x *Index) Name() string { return "UBtree" }

// SizeBytes implements query.Index.
func (x *Index) SizeBytes() int64 { return x.b.SizeBytes() }

// Table returns the index's reordered table.
func (x *Index) Table() *colstore.Table { return x.b.T }

// Execute implements query.Index.
func (x *Index) Execute(q query.Query, agg query.Aggregator) query.Stats {
	return x.ExecuteControl(nil, q, agg)
}

// ExecuteContext implements query.Index: Execute under ctx's cancellation,
// polled every ~1K rows of the BIGMIN walk.
func (x *Index) ExecuteContext(ctx context.Context, q query.Query, agg query.Aggregator) (query.Stats, error) {
	return query.RunContext(ctx, q, agg, x.ExecuteControl)
}

// ExecuteControl implements query.ControlIndex: Execute threaded with an
// externally owned execution control (nil scans unconditionally).
func (x *Index) ExecuteControl(ctl *query.Control, q query.Query, agg query.Aggregator) query.Stats {
	var st query.Stats
	t0 := time.Now()
	lo, hi, ok := x.b.QuantizedRect(q)
	if q.Empty() || !ok || x.b.T.NumRows() == 0 {
		st.Total = time.Since(t0)
		return st
	}
	enc := x.b.Enc
	zlo := enc.EncodeParts(lo)
	zhi := enc.EncodeParts(hi)
	page := x.b.PageFor(zlo)
	lastPage := x.b.PageFor(zhi)
	t1 := time.Now()
	st.IndexTime = t1.Sub(t0)

	// Row-level walk with BIGMIN skip-ahead. Each visited row is
	// quantized and checked against the rectangle; out-of-rectangle rows
	// trigger a jump to the page holding the next in-rectangle code.
	dims := q.FilteredDims()
	point := make([]int64, len(x.b.Dims))
	parts := make([]uint64, len(x.b.Dims))
	n := x.b.T.NumRows()
	_, endRow := x.b.PageRange(lastPage)
	row, _ := x.b.PageRange(page)
	// skipTarget caches the last BIGMIN: rows with codes below it are
	// known to be outside the rectangle, so they advance without paying
	// for another BIGMIN + page search.
	var skipTarget uint64
	haveSkip := false
	for row < endRow && row < n {
		if ctl != nil && st.Scanned&1023 == 0 && ctl.Check() {
			break
		}
		st.Scanned++
		inRect := true
		for i, d := range x.b.Dims {
			point[i] = x.b.T.Get(d, row)
			parts[i] = enc.Part(i, point[i])
			if parts[i] < lo[i] || parts[i] > hi[i] {
				inRect = false
			}
		}
		if inRect {
			if x.matchesResidual(q, dims, row) {
				if ctl.Take(1) == 0 {
					break // limit budget exhausted
				}
				agg.Add(x.b.T, row)
				st.Matched++
			}
			row++
			continue
		}
		z := enc.EncodeParts(parts)
		if z > zhi {
			break
		}
		if haveSkip && z < skipTarget {
			row++
			continue
		}
		// Skip ahead: find the next Z-code inside the rectangle and
		// jump to the page that contains it.
		big, ok := enc.BigMin(z, zlo, zhi)
		if !ok || big > zhi {
			break
		}
		skipTarget, haveSkip = big, true
		next := x.b.PageFor(big)
		nextStart, _ := x.b.PageRange(next)
		if nextStart > row {
			row = nextStart
			st.CellsVisited++
		} else {
			row++
		}
	}
	st.ScanTime = time.Since(t1)
	st.Total = time.Since(t0)
	return st
}

// matchesResidual verifies the exact (unquantized) filter for a row that
// passed the quantized rectangle check.
func (x *Index) matchesResidual(q query.Query, dims []int, row int) bool {
	for _, d := range dims {
		v := x.b.T.Get(d, row)
		r := q.Ranges[d]
		if v < r.Min || v > r.Max {
			return false
		}
	}
	return true
}
