// Package zbase holds the construction logic shared by the Z-order index and
// UB-tree baselines: quantize points with a zcurve.Encoder, sort the table by
// Z-order code, and group contiguous chunks into pages (Appendix A).
package zbase

import (
	"fmt"
	"sort"

	"flood/internal/colstore"
	"flood/internal/query"
	"flood/internal/zcurve"
)

// DefaultPageSize matches the dense cache-aligned pages of §7.2.
const DefaultPageSize = 1024

// Base is a Z-order-sorted table with page metadata.
type Base struct {
	T          *colstore.Table
	Enc        *zcurve.Encoder
	Dims       []int    // indexed dimensions, most selective first
	Mins, Maxs []int64  // build-time domain per local dimension
	PageMinZ   []uint64 // per page: Z-code of its first row
	PageRows   []int32  // per page: starting row; len = numPages+1
}

// Build quantizes and Z-sorts t over the given dimensions. dims lists the
// indexed dimensions from most to least selective (the most selective one
// owns the code's least significant bit).
func Build(t *colstore.Table, dims []int, pageSize int) (*Base, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("zbase: no dimensions to index")
	}
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	n := t.NumRows()
	mins := make([]int64, len(dims))
	maxs := make([]int64, len(dims))
	raws := make([][]int64, len(dims))
	for i, d := range dims {
		raws[i] = t.Raw(d)
		if n > 0 {
			mins[i], maxs[i] = raws[i][0], raws[i][0]
			for _, v := range raws[i][1:] {
				if v < mins[i] {
					mins[i] = v
				}
				if v > maxs[i] {
					maxs[i] = v
				}
			}
		}
	}
	// The encoder works in "local" dimension space 0..len(dims)-1; slot
	// order is identity because dims is already selectivity-ordered.
	order := make([]int, len(dims))
	for i := range order {
		order[i] = i
	}
	enc := zcurve.NewEncoder(mins, maxs, order)
	codes := make([]uint64, n)
	point := make([]int64, len(dims))
	for r := 0; r < n; r++ {
		for i := range dims {
			point[i] = raws[i][r]
		}
		codes[r] = enc.Encode(point)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return codes[perm[a]] < codes[perm[b]] })

	b := &Base{T: t.Reorder(perm), Enc: enc, Dims: append([]int(nil), dims...), Mins: mins, Maxs: maxs}
	for start := 0; start < n; start += pageSize {
		b.PageRows = append(b.PageRows, int32(start))
		b.PageMinZ = append(b.PageMinZ, codes[perm[start]])
	}
	b.PageRows = append(b.PageRows, int32(n))
	return b, nil
}

// NumPages returns the number of pages.
func (b *Base) NumPages() int { return len(b.PageMinZ) }

// PageRange returns the physical row range [start, end) of page p.
func (b *Base) PageRange(p int) (int, int) {
	return int(b.PageRows[p]), int(b.PageRows[p+1])
}

// QuantizedRect converts a query into quantized per-dimension part bounds
// (in local dimension space) and reports whether the rectangle intersects
// the data domain at all.
func (b *Base) QuantizedRect(q query.Query) (lo, hi []uint64, nonEmpty bool) {
	lo = make([]uint64, len(b.Dims))
	hi = make([]uint64, len(b.Dims))
	for i, d := range b.Dims {
		r := q.Ranges[d]
		lo[i] = b.Enc.Part(i, b.Mins[i])
		hi[i] = b.Enc.Part(i, b.Maxs[i])
		if !r.Present {
			continue
		}
		// The rectangle is empty when the filter misses the domain
		// entirely; otherwise clamp endpoints into the domain before
		// quantizing (quantization is only defined inside it).
		if r.Max < b.Mins[i] || r.Min > b.Maxs[i] {
			return lo, hi, false
		}
		if r.Min > b.Mins[i] {
			lo[i] = b.Enc.Part(i, r.Min)
		}
		if r.Max < b.Maxs[i] {
			hi[i] = b.Enc.Part(i, r.Max)
		}
	}
	return lo, hi, true
}

// PageFor returns the index of the last page whose min code is <= z (the
// page that would contain z), or 0 when z precedes everything.
func (b *Base) PageFor(z uint64) int {
	p := sort.Search(len(b.PageMinZ), func(i int) bool { return b.PageMinZ[i] > z }) - 1
	if p < 0 {
		p = 0
	}
	return p
}

// SizeBytes reports the page metadata footprint.
func (b *Base) SizeBytes() int64 {
	return int64(len(b.PageMinZ))*8 + int64(len(b.PageRows))*4
}
