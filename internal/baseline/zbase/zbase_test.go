package zbase

import (
	"math/rand"
	"testing"

	"flood/internal/colstore"
	"flood/internal/query"
)

func buildBase(t *testing.T, n, pageSize int) (*Base, [][]int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	data := make([][]int64, 2)
	for c := range data {
		data[c] = make([]int64, n)
		for i := range data[c] {
			data[c][i] = rng.Int63n(1 << 16)
		}
	}
	tbl := colstore.MustNewTable([]string{"x", "y"}, data)
	b, err := Build(tbl, []int{0, 1}, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return b, data
}

func TestBuildSortsByCode(t *testing.T) {
	b, _ := buildBase(t, 5000, 256)
	point := make([]int64, 2)
	var prev uint64
	for r := 0; r < b.T.NumRows(); r++ {
		point[0] = b.T.Get(0, r)
		point[1] = b.T.Get(1, r)
		z := b.Enc.Encode(point)
		if r > 0 && z < prev {
			t.Fatalf("row %d: codes not sorted (%d < %d)", r, z, prev)
		}
		prev = z
	}
}

func TestPagesPartitionRows(t *testing.T) {
	b, _ := buildBase(t, 5000, 256)
	if b.NumPages() != (5000+255)/256 {
		t.Fatalf("NumPages = %d", b.NumPages())
	}
	total := 0
	for p := 0; p < b.NumPages(); p++ {
		s, e := b.PageRange(p)
		if e <= s {
			t.Fatalf("page %d empty range [%d, %d)", p, s, e)
		}
		total += e - s
	}
	if total != 5000 {
		t.Fatalf("pages cover %d rows, want 5000", total)
	}
}

func TestPageForBrackets(t *testing.T) {
	b, _ := buildBase(t, 3000, 128)
	for p := 0; p < b.NumPages(); p++ {
		if got := b.PageFor(b.PageMinZ[p]); got != p {
			t.Fatalf("PageFor(min of page %d) = %d", p, got)
		}
	}
	if b.PageFor(0) != 0 {
		t.Fatal("code before all pages should map to page 0")
	}
	if b.PageFor(^uint64(0)) != b.NumPages()-1 {
		t.Fatal("huge code should map to last page")
	}
}

func TestQuantizedRectClampsToDomain(t *testing.T) {
	b, _ := buildBase(t, 2000, 256)
	// Unfiltered query: rect covers the full domain.
	lo, hi, ok := b.QuantizedRect(query.NewQuery(2))
	if !ok {
		t.Fatal("unfiltered rect should be non-empty")
	}
	for i := range lo {
		if lo[i] != b.Enc.Part(i, b.Mins[i]) || hi[i] != b.Enc.Part(i, b.Maxs[i]) {
			t.Fatalf("dim %d: rect [%d, %d] does not span domain", i, lo[i], hi[i])
		}
	}
	// Filter extending past the domain clamps.
	q := query.NewQuery(2).WithRange(0, -1<<40, 1<<40)
	lo2, hi2, ok := b.QuantizedRect(q)
	if !ok || lo2[0] != lo[0] || hi2[0] != hi[0] {
		t.Fatal("out-of-domain endpoints should clamp to the domain")
	}
	// Filter missing the domain entirely is empty.
	if _, _, ok := b.QuantizedRect(query.NewQuery(2).WithRange(1, 1<<40, 1<<41)); ok {
		t.Fatal("rect beyond the domain should be empty")
	}
	if _, _, ok := b.QuantizedRect(query.NewQuery(2).WithRange(1, -10, -5)); ok {
		t.Fatal("rect below the domain should be empty")
	}
}

func TestBuildValidation(t *testing.T) {
	tbl := colstore.MustNewTable([]string{"x"}, [][]int64{{1, 2, 3}})
	if _, err := Build(tbl, nil, 16); err == nil {
		t.Fatal("no dims should fail")
	}
}

func TestDefaultPageSize(t *testing.T) {
	tbl := colstore.MustNewTable([]string{"x"}, [][]int64{make([]int64, 3000)})
	b, err := Build(tbl, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumPages() != (3000+DefaultPageSize-1)/DefaultPageSize {
		t.Fatalf("default page size not applied: %d pages", b.NumPages())
	}
}
