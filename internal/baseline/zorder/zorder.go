// Package zorder implements the Z-Order Index baseline (§7.2, Appendix A):
// points are ordered by Z-value and grouped into pages; each page stores the
// per-dimension min/max of its points, and a query scans every page between
// the rectangle's smallest and largest Z-value whose min/max metadata
// intersects the query rectangle.
package zorder

import (
	"context"
	"time"

	"flood/internal/baseline/zbase"
	"flood/internal/colstore"
	"flood/internal/query"
)

// Index is a Z-order-sorted table with page MBR metadata.
type Index struct {
	b        *zbase.Base
	pageMins [][]int64 // per page, per indexed dim
	pageMaxs [][]int64
}

// Build Z-sorts t over dims (most selective first) with the given page size
// (0 = default).
func Build(t *colstore.Table, dims []int, pageSize int) (*Index, error) {
	b, err := zbase.Build(t, dims, pageSize)
	if err != nil {
		return nil, err
	}
	x := &Index{b: b}
	np := b.NumPages()
	x.pageMins = make([][]int64, np)
	x.pageMaxs = make([][]int64, np)
	for p := 0; p < np; p++ {
		start, end := b.PageRange(p)
		mins := make([]int64, len(dims))
		maxs := make([]int64, len(dims))
		for i, d := range dims {
			col := b.T.Column(d)
			mins[i], maxs[i] = col.Get(start), col.Get(start)
			for r := start + 1; r < end; r++ {
				v := col.Get(r)
				if v < mins[i] {
					mins[i] = v
				}
				if v > maxs[i] {
					maxs[i] = v
				}
			}
		}
		x.pageMins[p], x.pageMaxs[p] = mins, maxs
	}
	return x, nil
}

// Name implements query.Index.
func (x *Index) Name() string { return "ZOrder" }

// SizeBytes implements query.Index.
func (x *Index) SizeBytes() int64 {
	return x.b.SizeBytes() + int64(len(x.pageMins))*int64(len(x.b.Dims))*16
}

// Table returns the index's reordered table.
func (x *Index) Table() *colstore.Table { return x.b.T }

// Execute implements query.Index.
func (x *Index) Execute(q query.Query, agg query.Aggregator) query.Stats {
	return x.ExecuteControl(nil, q, agg)
}

// ExecuteContext implements query.Index: Execute under ctx's cancellation,
// stopping between pages and at block-group boundaries inside the kernel.
func (x *Index) ExecuteContext(ctx context.Context, q query.Query, agg query.Aggregator) (query.Stats, error) {
	return query.RunContext(ctx, q, agg, x.ExecuteControl)
}

// ExecuteControl implements query.ControlIndex: Execute threaded with an
// externally owned execution control (nil scans unconditionally).
func (x *Index) ExecuteControl(ctl *query.Control, q query.Query, agg query.Aggregator) query.Stats {
	var st query.Stats
	t0 := time.Now()
	lo, hi, ok := x.b.QuantizedRect(q)
	if q.Empty() || !ok || x.b.T.NumRows() == 0 {
		st.Total = time.Since(t0)
		return st
	}
	zlo := x.b.Enc.EncodeParts(lo)
	zhi := x.b.Enc.EncodeParts(hi)
	pStart := x.b.PageFor(zlo)
	pEnd := x.b.PageFor(zhi)
	t1 := time.Now()
	st.IndexTime = t1.Sub(t0)

	dims := q.FilteredDims()
	sc := query.NewScanner(x.b.T)
	sc.SetControl(ctl)
	for p := pStart; p <= pEnd; p++ {
		if ctl.Stopped() {
			break
		}
		// Scan a page only when the rectangle formed by its min/max
		// values intersects the query rectangle.
		if !x.pageIntersects(p, q) {
			continue
		}
		st.CellsVisited++
		start, end := x.b.PageRange(p)
		if x.pageContained(p, q) {
			s, m := sc.ScanExactRange(start, end, agg)
			st.Scanned += s
			st.Matched += m
			st.ExactMatched += m
			continue
		}
		s, m := sc.ScanRange(q, dims, start, end, agg)
		st.Scanned += s
		st.Matched += m
	}
	st.ScanTime = time.Since(t1)
	st.Total = time.Since(t0)
	return st
}

func (x *Index) pageIntersects(p int, q query.Query) bool {
	for i, d := range x.b.Dims {
		r := q.Ranges[d]
		if !r.Present {
			continue
		}
		if x.pageMaxs[p][i] < r.Min || x.pageMins[p][i] > r.Max {
			return false
		}
	}
	return true
}

func (x *Index) pageContained(p int, q query.Query) bool {
	for _, d := range q.FilteredDims() {
		i := x.localDim(d)
		if i < 0 {
			return false // filter on an unindexed dimension
		}
		r := q.Ranges[d]
		if x.pageMins[p][i] < r.Min || x.pageMaxs[p][i] > r.Max {
			return false
		}
	}
	return true
}

func (x *Index) localDim(d int) int {
	for i, dd := range x.b.Dims {
		if dd == d {
			return i
		}
	}
	return -1
}
