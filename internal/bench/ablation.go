package bench

import (
	"fmt"
	"text/tabwriter"

	"flood/internal/core"
	"flood/internal/optimizer"
)

func init() {
	register("fig11", "Fig. 11: ablation (Simple Grid -> +Sort Dim -> +Flattening -> +Learning)", runFig11)
	register("fig14", "Fig. 14: cells vs scan/index time trade-off and the learned optimum", runFig14)
}

// runFig11 measures the incremental benefit of Flood's components (§7.4):
// a selectivity-proportioned simple grid, adding a sort dimension, adding
// flattening, and finally learning the layout from the workload.
func runFig11(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Fig. 11: component ablation, average query time")
	names := datasetNames()
	if cfg.Fast {
		names = names[:2]
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "variant")
	for _, n := range names {
		fmt.Fprintf(w, "\t%s", n)
	}
	fmt.Fprintln(w)
	rows := map[string][]string{}
	variants := []string{"Simple Grid", "+Sort Dim", "+Flattening", "+Learning"}
	for _, name := range names {
		e, err := newEnv(cfg, name)
		if err != nil {
			return err
		}
		learnedIdx, _, _, err := e.buildFlood(e.train)
		if err != nil {
			return err
		}
		learned := learnedIdx.Layout()
		budget := float64(learned.NumCells())
		if budget < 64 {
			budget = 64
		}
		sg := optimizer.SimpleGridLayout(e.ds.Table, e.train, budget, cfg.Seed+9)
		layouts := map[string]core.Layout{
			"Simple Grid": sg,
			"+Sort Dim":   withSortDim(sg, learned.SortDim, false),
			"+Flattening": withSortDim(sg, learned.SortDim, true),
			"+Learning":   learned,
		}
		for _, v := range variants {
			var r RunResult
			if v == "+Learning" {
				r = run(learnedIdx, e.test)
			} else {
				idx, err := core.Build(e.ds.Table, layouts[v], core.Options{})
				if err != nil {
					return err
				}
				r = run(idx, e.test)
			}
			rows[v] = append(rows[v], fmtDur(r.AvgTotal))
		}
	}
	for _, v := range variants {
		fmt.Fprintf(w, "%s", v)
		for _, t := range rows[v] {
			fmt.Fprintf(w, "\t%s", t)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

// withSortDim converts a simple grid into the "+Sort Dim" ablation variant:
// the given dimension leaves the grid and becomes the in-cell sort order.
func withSortDim(sg core.Layout, sortDim int, flatten bool) core.Layout {
	v := core.Layout{SortDim: sortDim, Flatten: flatten}
	for i, d := range sg.GridDims {
		if d == sortDim {
			continue
		}
		v.GridDims = append(v.GridDims, d)
		v.GridCols = append(v.GridCols, sg.GridCols[i])
	}
	if len(v.GridDims) == 0 && sortDim == -1 {
		return sg
	}
	return v
}

// runFig14 scales the learned layout's column counts proportionally and
// reports how scan time falls while index (projection+refinement) time
// rises, checking that the learned optimum sits near the measured minimum.
func runFig14(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Fig. 14: number of cells vs per-phase query time (TPC-H)")
	e, err := newEnv(cfg, "tpch")
	if err != nil {
		return err
	}
	learnedIdx, _, _, err := e.buildFlood(e.train)
	if err != nil {
		return err
	}
	learned := learnedIdx.Layout()
	factors := []float64{0.125, 0.25, 0.5, 1, 2, 4, 8}
	if cfg.Fast {
		factors = []float64{0.25, 1, 4}
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "cells\tfactor\tquery time\tscan time\tindex time\tscan overhead")
	type point struct {
		factor float64
		total  float64
	}
	var pts []point
	for _, f := range factors {
		l := scaleLayout(learned, f)
		idx, err := core.Build(e.ds.Table, l, core.Options{})
		if err != nil {
			return err
		}
		r := run(idx, e.test)
		mark := ""
		if f == 1 {
			mark = "  <- learned optimum"
		}
		fmt.Fprintf(w, "%d\tx%.3g\t%s\t%s\t%s\t%.2f%s\n",
			l.NumCells(), f, fmtDur(r.AvgTotal), fmtDur(r.AvgScan), fmtDur(r.AvgIndex), r.SO(), mark)
		pts = append(pts, point{f, float64(r.AvgTotal)})
	}
	if err := w.Flush(); err != nil {
		return err
	}
	best := pts[0]
	for _, p := range pts[1:] {
		if p.total < best.total {
			best = p
		}
	}
	fmt.Fprintf(cfg.Out, "measured minimum at factor x%.3g (learned layout is x1)\n", best.factor)
	return nil
}
