// Package bench regenerates every table and figure of the paper's
// evaluation (§7) at a configurable scale. Each experiment is registered
// under the paper artifact's ID (fig7, table2, ...) and prints the same
// rows/series the paper reports; cmd/floodbench drives them and
// bench_test.go wraps them as Go benchmarks.
//
// Absolute numbers depend on the machine and the (scaled-down) dataset
// sizes; the shapes — which index wins, by roughly what factor, where
// crossovers fall — are the reproduction target. EXPERIMENTS.md records
// paper-vs-measured values.
package bench

import (
	"fmt"
	"io"
	"sort"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	// Scale is the base dataset row count (default 150k). The paper used
	// 30M-300M rows; experiments scale linearly.
	Scale int
	// Queries is the per-workload query count (default 120).
	Queries int
	// Seed drives all data/workload/layout randomness.
	Seed int64
	// Out receives the experiment's report (default: caller supplies).
	Out io.Writer
	// CalibrationLayouts for cost-model training (default 6 at bench
	// scale; the paper used 10).
	CalibrationLayouts int
	// PageSizes tried when tuning page-based baselines (default
	// {512, 2048, 8192}).
	PageSizes []int
	// Fast trims sweeps (fewer sizes, workloads, repetitions) for smoke
	// runs and Go benchmarks.
	Fast bool
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 150_000
	}
	if c.Queries <= 0 {
		c.Queries = 120
	}
	if c.Seed == 0 {
		c.Seed = 2020
	}
	if c.CalibrationLayouts <= 0 {
		c.CalibrationLayouts = 6
	}
	if len(c.PageSizes) == 0 {
		c.PageSizes = []int{512, 2048, 8192}
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) error
}

var registry []Experiment

func register(id, title string, run func(Config) error) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// Experiments returns every registered experiment sorted by ID.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
