package bench

import (
	"bytes"
	"strings"
	"testing"
)

// smokeCfg runs every experiment end-to-end at a tiny scale; this is the
// integration test for the whole repository (all indexes, the optimizer,
// the cost model, and the report generators).
func smokeCfg(buf *bytes.Buffer) Config {
	return Config{
		Scale:              12_000,
		Queries:            24,
		Seed:               7,
		CalibrationLayouts: 3,
		PageSizes:          []int{512},
		Fast:               true,
		Out:                buf,
	}.WithDefaults()
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig5", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12a", "fig12b",
		"fig13", "fig14", "fig15", "fig16", "fig17a", "fig17b",
		"table1", "table2", "table3", "table4",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Fatalf("experiment %s not registered", id)
		}
	}
	if len(Experiments()) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(Experiments()), len(want))
	}
}

func runSmoke(t *testing.T, id string, expect ...string) {
	t.Helper()
	var buf bytes.Buffer
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	if err := e.Run(smokeCfg(&buf)); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := buf.String()
	if len(out) < 40 {
		t.Fatalf("%s produced almost no output:\n%s", id, out)
	}
	for _, want := range expect {
		if !strings.Contains(out, want) {
			t.Fatalf("%s output missing %q:\n%s", id, want, out)
		}
	}
}

func TestTable1Smoke(t *testing.T) { runSmoke(t, "table1", "sales", "tpch", "osm", "perfmon") }
func TestFig5Smoke(t *testing.T)   { runSmoke(t, "fig5", "not a constant") }
func TestFig7Smoke(t *testing.T)   { runSmoke(t, "fig7", "Flood", "FullScan", "KDTree") }
func TestFig8Smoke(t *testing.T)   { runSmoke(t, "fig8", "Flood", "page=") }
func TestFig9Smoke(t *testing.T)   { runSmoke(t, "fig9", "Flood", "FD") }
func TestFig10Smoke(t *testing.T)  { runSmoke(t, "fig10", "median improvement") }
func TestFig11Smoke(t *testing.T)  { runSmoke(t, "fig11", "Simple Grid", "+Learning") }
func TestFig12aSmoke(t *testing.T) { runSmoke(t, "fig12a", "records") }
func TestFig12bSmoke(t *testing.T) { runSmoke(t, "fig12b", "selectivity") }
func TestFig13Smoke(t *testing.T)  { runSmoke(t, "fig13", "FullScan ratio") }
func TestFig14Smoke(t *testing.T)  { runSmoke(t, "fig14", "learned optimum") }
func TestFig15Smoke(t *testing.T)  { runSmoke(t, "fig15", "data sample") }
func TestFig16Smoke(t *testing.T)  { runSmoke(t, "fig16", "query sample") }
func TestFig17aSmoke(t *testing.T) { runSmoke(t, "fig17a", "osm-timestamps", "staggered-uniform") }
func TestFig17bSmoke(t *testing.T) { runSmoke(t, "fig17b", "paper's configuration") }
func TestTable2Smoke(t *testing.T) { runSmoke(t, "table2", "SO", "TPS") }
func TestTable3Smoke(t *testing.T) { runSmoke(t, "table3", "model \\ layout") }
func TestTable4Smoke(t *testing.T) { runSmoke(t, "table4", "Flood Learning", "Flood Loading") }
