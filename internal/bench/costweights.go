package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"text/tabwriter"

	"flood/internal/core"
	"flood/internal/costmodel"
	"flood/internal/optimizer"
	"flood/internal/query"
)

func init() {
	register("fig5", "Fig. 5: the scan weight ws is non-constant and non-linear", runFig5)
	register("table3", "Table 3: cost-model robustness across datasets", runTable3)
}

// runFig5 reproduces the observation motivating the learned cost model
// (§4.1.2): the per-point scan weight ws varies by orders of magnitude and
// depends non-linearly on the number of scanned points and the average scan
// run length.
func runFig5(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Fig. 5: empirical scan weight ws across random layouts (TPC-H)")
	e, err := newEnv(cfg, "tpch")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	type sample struct {
		ns, runLen, ws float64
	}
	var samples []sample
	layouts := 6
	if cfg.Fast {
		layouts = 3
	}
	for li := 0; li < layouts; li++ {
		layout := randomBenchLayout(rng, e.ds.Table.NumCols(), e.ds.Table.NumRows())
		idx, err := core.Build(e.ds.Table, layout, core.Options{})
		if err != nil {
			return err
		}
		agg := query.NewCount()
		for _, q := range capQueries(e.train, 40) {
			agg.Reset()
			st := idx.Execute(q, agg)
			if st.Scanned == 0 || st.CellsVisited == 0 {
				continue
			}
			samples = append(samples, sample{
				ns:     float64(st.Scanned),
				runLen: float64(st.Scanned) / float64(st.CellsVisited),
				ws:     float64(st.ScanTime.Nanoseconds()) / float64(st.Scanned),
			})
		}
	}
	if len(samples) == 0 {
		return fmt.Errorf("fig5: no scan samples collected")
	}
	bin := func(key func(sample) float64, title string) {
		byKey := map[int][]float64{}
		for _, s := range samples {
			b := int(math.Floor(math.Log10(math.Max(key(s), 1))))
			byKey[b] = append(byKey[b], s.ws)
		}
		var bins []int
		for b := range byKey {
			bins = append(bins, b)
		}
		sort.Ints(bins)
		fmt.Fprintf(cfg.Out, "\n%s:\n", title)
		w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "bin (log10)\tsamples\tmedian ws (ns/point)")
		for _, b := range bins {
			ws := byKey[b]
			sort.Float64s(ws)
			fmt.Fprintf(w, "10^%d\t%d\t%.2f\n", b, len(ws), ws[len(ws)/2])
		}
		w.Flush()
	}
	bin(func(s sample) float64 { return s.ns }, "ws vs number of scanned points")
	bin(func(s sample) float64 { return s.runLen }, "ws vs average scan run length")

	var minWS, maxWS = math.Inf(1), 0.0
	for _, s := range samples {
		minWS = math.Min(minWS, s.ws)
		maxWS = math.Max(maxWS, s.ws)
	}
	fmt.Fprintf(cfg.Out, "\nws spans %.2f - %.2f ns/point (%.0fx): not a constant\n", minWS, maxWS, maxWS/minWS)
	return nil
}

// randomBenchLayout mirrors the calibration's random layout generator.
func randomBenchLayout(rng *rand.Rand, d, n int) core.Layout {
	order := rng.Perm(d)
	grid := order[:d-1]
	cols := make([]int, len(grid))
	target := math.Exp(rng.Float64() * math.Log(float64(n)/8+2))
	for i := range cols {
		cols[i] = 1 + rng.Intn(int(math.Pow(target, 1/float64(len(cols))))+1)
	}
	return core.Layout{GridDims: grid, GridCols: cols, SortDim: order[d-1], Flatten: true}
}

// runTable3 cross-applies cost models: a model calibrated on dataset A
// optimizes a layout for dataset B; resulting query times should be within
// ~10% of the self-calibrated diagonal (§7.6).
func runTable3(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Table 3: layouts learned with cost models trained on other datasets")
	names := datasetNames()
	if cfg.Fast {
		names = names[:2]
	}
	envs := make([]*env, len(names))
	models := make([]*costmodel.Model, len(names))
	for i, n := range names {
		e, err := newEnv(cfg, n)
		if err != nil {
			return err
		}
		envs[i] = e
		if models[i], err = e.costModel(); err != nil {
			return err
		}
	}
	times := make([][]float64, len(names))
	for mi := range names {
		times[mi] = make([]float64, len(names))
		for di := range names {
			e := envs[di]
			res, err := optimizer.FindOptimalLayout(e.ds.Table, e.train, models[mi], optimizer.Config{
				Seed:    cfg.Seed + 14,
				GDSteps: gdSteps(cfg),
			})
			if err != nil {
				return err
			}
			idx, err := core.Build(e.ds.Table, res.Layout, core.Options{})
			if err != nil {
				return err
			}
			times[mi][di] = float64(run(idx, e.test).AvgTotal)
		}
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "model \\ layout for")
	for _, n := range names {
		fmt.Fprintf(w, "\t%s", n)
	}
	fmt.Fprintln(w)
	for mi, mn := range names {
		fmt.Fprintf(w, "%s", mn)
		for di := range names {
			delta := (times[mi][di] - times[di][di]) / times[di][di] * 100
			if mi == di {
				fmt.Fprintf(w, "\t%s", fmtDurNS(times[mi][di]))
			} else {
				fmt.Fprintf(w, "\t%s (%+.0f%%)", fmtDurNS(times[mi][di]), delta)
			}
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

func fmtDurNS(ns float64) string {
	switch {
	case ns < 1e4:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	case ns < 1e7:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.1fms", ns/1e6)
	}
}
