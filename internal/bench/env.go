package bench

import (
	"fmt"
	"time"

	"flood/internal/baseline/clustered"
	"flood/internal/baseline/fullscan"
	"flood/internal/baseline/gridfile"
	"flood/internal/baseline/kdtree"
	"flood/internal/baseline/octree"
	"flood/internal/baseline/rstar"
	"flood/internal/baseline/ubtree"
	"flood/internal/baseline/zorder"
	"flood/internal/core"
	"flood/internal/costmodel"
	"flood/internal/dataset"
	"flood/internal/optimizer"
	"flood/internal/query"
	"flood/internal/workload"
)

// env bundles a dataset with its train/test workloads, selectivity order,
// and a lazily calibrated cost model.
type env struct {
	cfg   Config
	ds    *dataset.Dataset
	train []query.Query
	test  []query.Query
	order []int // dims most selective first (for baseline tuning)
	model *costmodel.Model
}

func newEnv(cfg Config, dsName string) (*env, error) {
	ds := dataset.ByName(dsName, cfg.Scale, cfg.Seed)
	if ds == nil {
		return nil, fmt.Errorf("bench: unknown dataset %q", dsName)
	}
	return newEnvFor(cfg, ds, workload.Standard(ds, 2*cfg.Queries, cfg.Seed+1))
}

// newEnvFor wraps an explicit dataset and workload (used by sweeps).
func newEnvFor(cfg Config, ds *dataset.Dataset, queries []query.Query) (*env, error) {
	train, test := workload.SplitTrainTest(queries, 0.5, cfg.Seed+2)
	g := workload.NewGenerator(ds, cfg.Seed+3)
	return &env{
		cfg:   cfg,
		ds:    ds,
		train: train,
		test:  test,
		order: workload.OrderBySelectivity(g, train),
	}, nil
}

// costModel calibrates lazily and caches.
func (e *env) costModel() (*costmodel.Model, error) {
	if e.model != nil {
		return e.model, nil
	}
	m, err := costmodel.Calibrate(e.ds.Table, capQueries(e.train, 40), costmodel.CalibrationConfig{
		NumLayouts: e.cfg.CalibrationLayouts,
		Seed:       e.cfg.Seed + 4,
	})
	if err != nil {
		return nil, err
	}
	e.model = m
	return m, nil
}

// buildFlood learns a layout on the training workload and builds the index,
// reporting learning and loading time separately (Table 4).
func (e *env) buildFlood(train []query.Query) (*core.Flood, time.Duration, time.Duration, error) {
	m, err := e.costModel()
	if err != nil {
		return nil, 0, 0, err
	}
	t0 := time.Now()
	res, err := optimizer.FindOptimalLayout(e.ds.Table, train, m, optimizer.Config{
		Seed:    e.cfg.Seed + 5,
		GDSteps: gdSteps(e.cfg),
	})
	if err != nil {
		return nil, 0, 0, err
	}
	learn := time.Since(t0)
	t1 := time.Now()
	idx, err := core.Build(e.ds.Table, res.Layout, core.Options{})
	if err != nil {
		return nil, 0, 0, err
	}
	return idx, learn, time.Since(t1), nil
}

func gdSteps(cfg Config) int {
	if cfg.Fast {
		return 8
	}
	return 16
}

// baselineKinds lists the baselines of Fig. 7 in presentation order.
func baselineKinds() []string {
	return []string{"FullScan", "Clustered", "RStar", "ZOrder", "UBtree", "Hyperoctree", "KDTree", "GridFile"}
}

// buildBaseline constructs and page-size-tunes one baseline ("manually
// optimized for each workload", §7.4). Construction failures (e.g. Grid
// File directory explosions on skewed data) are reported as errors so
// callers can print N/A, matching the paper's omissions.
func (e *env) buildBaseline(kind string) (query.Index, time.Duration, error) {
	build := func(page int) (query.Index, error) {
		switch kind {
		case "FullScan":
			return fullscan.New(e.ds.Table), nil
		case "Clustered":
			return clustered.Build(e.ds.Table, e.order[0], clustered.Options{})
		case "RStar":
			return rstar.Build(e.ds.Table, e.order, page)
		case "ZOrder":
			return zorder.Build(e.ds.Table, e.order, page)
		case "UBtree":
			return ubtree.Build(e.ds.Table, e.order, page)
		case "Hyperoctree":
			return octree.Build(e.ds.Table, e.order, page)
		case "KDTree":
			return kdtree.Build(e.ds.Table, e.order, page)
		case "GridFile":
			return gridfile.Build(e.ds.Table, e.order, page)
		}
		return nil, fmt.Errorf("bench: unknown baseline %q", kind)
	}
	pages := e.cfg.PageSizes
	if kind == "FullScan" || kind == "Clustered" {
		pages = pages[:1]
	}
	if e.cfg.Fast && len(pages) > 1 {
		pages = pages[:1]
	}
	tuneQ := capQueries(e.train, 15)
	var (
		bestIdx  query.Index
		bestTime time.Duration
		buildDur time.Duration
	)
	for _, p := range pages {
		t0 := time.Now()
		idx, err := build(p)
		if err != nil {
			if bestIdx == nil && p == pages[len(pages)-1] {
				return nil, 0, err
			}
			continue
		}
		d := time.Since(t0)
		r := run(idx, tuneQ)
		if bestIdx == nil || r.AvgTotal < bestTime {
			bestIdx, bestTime, buildDur = idx, r.AvgTotal, d
		}
	}
	if bestIdx == nil {
		return nil, 0, fmt.Errorf("bench: %s failed to build at any page size", kind)
	}
	return bestIdx, buildDur, nil
}

// RunResult aggregates a workload execution over one index.
type RunResult struct {
	Queries  int
	AvgTotal time.Duration
	AvgScan  time.Duration
	AvgIndex time.Duration
	Scanned  int64
	Matched  int64
	Exact    int64
}

// SO is the scan overhead (Table 2).
func (r RunResult) SO() float64 {
	if r.Matched == 0 {
		return float64(r.Scanned)
	}
	return float64(r.Scanned) / float64(r.Matched)
}

// TPS is the average scan time per scanned point in nanoseconds (Table 2).
func (r RunResult) TPS() float64 {
	if r.Scanned == 0 {
		return 0
	}
	return float64(r.AvgScan.Nanoseconds()) * float64(r.Queries) / float64(r.Scanned)
}

// run executes queries against idx and aggregates stats.
func run(idx query.Index, queries []query.Query) RunResult {
	var res RunResult
	agg := query.NewCount()
	var total query.Stats
	for _, q := range queries {
		agg.Reset()
		st := idx.Execute(q, agg)
		total.Add(st)
	}
	n := len(queries)
	if n == 0 {
		return res
	}
	res.Queries = n
	res.AvgTotal = total.Total / time.Duration(n)
	res.AvgScan = total.ScanTime / time.Duration(n)
	res.AvgIndex = total.IndexTime / time.Duration(n)
	res.Scanned = total.Scanned
	res.Matched = total.Matched
	res.Exact = total.ExactMatched
	return res
}

func capQueries(qs []query.Query, n int) []query.Query {
	if len(qs) <= n {
		return qs
	}
	return qs[:n]
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < 10*time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1e3)
	case d < 10*time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < 10*time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}

func fmtBytes(b int64) string {
	switch {
	case b < 10*1024:
		return fmt.Sprintf("%dB", b)
	case b < 10*1024*1024:
		return fmt.Sprintf("%.1fKB", float64(b)/1024)
	case b < 10*1024*1024*1024:
		return fmt.Sprintf("%.1fMB", float64(b)/(1024*1024))
	default:
		return fmt.Sprintf("%.1fGB", float64(b)/(1024*1024*1024))
	}
}
