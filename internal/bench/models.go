package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"text/tabwriter"
	"time"

	"flood/internal/dataset"
	"flood/internal/plm"
	"flood/internal/rmi"
)

func init() {
	register("fig17a", "Fig. 17a: per-cell CDF models (PLM vs RMI vs binary search)", runFig17a)
	register("fig17b", "Fig. 17b: PLM delta size/speed trade-off", runFig17b)
}

// lookupBench measures average lower-bound lookup time over probes.
func lookupBench(name string, probes []int64, lookup func(int64) int) (string, time.Duration) {
	t0 := time.Now()
	var sink int
	for _, p := range probes {
		sink += lookup(p)
	}
	_ = sink
	return name, time.Since(t0) / time.Duration(len(probes))
}

// fig17Datasets builds the two 1-D datasets of §7.8: real OSM timestamps and
// staggered uniform data (uniform over identically sized disjoint
// intervals).
func fig17Datasets(n int, seed int64) map[string][]int64 {
	osm := dataset.OSM(n, seed)
	ts := append([]int64(nil), osm.Cols[osm.ColumnIndex("timestamp")]...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })

	rng := rand.New(rand.NewSource(seed + 1))
	stag := make([]int64, n)
	for i := range stag {
		interval := rng.Int63n(64)
		stag[i] = interval*1_000_000 + rng.Int63n(1000) // wide gaps between intervals
	}
	sort.Slice(stag, func(i, j int) bool { return stag[i] < stag[j] })
	return map[string][]int64{"osm-timestamps": ts, "staggered-uniform": stag}
}

func runFig17a(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Fig. 17a: per-cell model lookup time (ns)")
	sizes := []int{cfg.Scale / 5, cfg.Scale}
	if cfg.Fast {
		sizes = []int{cfg.Scale / 5}
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "dataset\tsize\tPLM\tRMI\tBinary")
	for _, n := range sizes {
		for name, vals := range fig17Datasets(n, cfg.Seed) {
			rng := rand.New(rand.NewSource(cfg.Seed + 2))
			probes := make([]int64, 200_000)
			for i := range probes {
				probes[i] = vals[rng.Intn(len(vals))]
			}
			p := plm.Train(vals, plm.DefaultDelta)
			r := rmi.TrainPosition(vals, intSqrt(len(vals)))
			_, plmT := lookupBench("plm", probes, func(v int64) int { return p.LowerBound(vals, v) })
			_, rmiT := lookupBench("rmi", probes, func(v int64) int { return r.Lookup(v) })
			_, binT := lookupBench("bin", probes, func(v int64) int {
				return sort.Search(len(vals), func(i int) bool { return vals[i] >= v })
			})
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n", name, n, plmT.Nanoseconds(), rmiT.Nanoseconds(), binT.Nanoseconds())
		}
	}
	return w.Flush()
}

func runFig17b(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Fig. 17b: PLM delta vs size and lookup time (OSM timestamps)")
	vals := fig17Datasets(cfg.Scale, cfg.Seed)["osm-timestamps"]
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	probes := make([]int64, 100_000)
	for i := range probes {
		probes[i] = vals[rng.Intn(len(vals))]
	}
	deltas := []float64{2, 10, 50, 200, 1000}
	if cfg.Fast {
		deltas = []float64{10, 50, 500}
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "delta\tsegments\tsize\tlookup (ns)")
	for _, d := range deltas {
		m := plm.Train(vals, d)
		_, t := lookupBench("plm", probes, func(v int64) int { return m.LowerBound(vals, v) })
		mark := ""
		if d == plm.DefaultDelta {
			mark = "  <- paper's configuration"
		}
		fmt.Fprintf(w, "%.0f\t%d\t%s\t%d%s\n", d, m.NumSegments(), fmtBytes(m.SizeBytes()), t.Nanoseconds(), mark)
	}
	return w.Flush()
}

func intSqrt(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}
