package bench

import (
	"fmt"
	"text/tabwriter"
	"time"

	"flood/internal/core"
	"flood/internal/query"
)

// builtSet holds every index of Fig. 7 built and tuned for one dataset.
type builtSet struct {
	order      []string // presentation order, Flood last
	idx        map[string]query.Index
	buildErr   map[string]error
	buildTime  map[string]time.Duration
	floodLearn time.Duration
	floodLoad  time.Duration
	flood      *core.Flood
}

// buildAll constructs the full index suite: baselines tuned on the training
// workload (§7.4 "we tuned the baseline approaches as much as possible per
// workload") plus Flood learned from it.
func (e *env) buildAll() (*builtSet, error) {
	bs := &builtSet{
		idx:       map[string]query.Index{},
		buildErr:  map[string]error{},
		buildTime: map[string]time.Duration{},
	}
	for _, kind := range baselineKinds() {
		idx, d, err := e.buildBaseline(kind)
		if err != nil {
			bs.buildErr[kind] = err
		} else {
			bs.idx[kind] = idx
			bs.buildTime[kind] = d
		}
		bs.order = append(bs.order, kind)
	}
	fl, learn, load, err := e.buildFlood(e.train)
	if err != nil {
		return nil, fmt.Errorf("building Flood: %w", err)
	}
	bs.flood = fl
	bs.floodLearn, bs.floodLoad = learn, load
	bs.idx["Flood"] = fl
	bs.buildTime["Flood"] = learn + load
	bs.order = append(bs.order, "Flood")
	return bs, nil
}

func init() {
	register("table1", "Table 1: dataset and query characteristics", runTable1)
	register("fig7", "Fig. 7: overall query time, Flood vs all baselines", runFig7)
	register("table2", "Table 2: performance breakdown (SO, TPS, ST, IT, TT)", runTable2)
	register("table4", "Table 4: index creation time", runTable4)
}

func runTable1(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Table 1: dataset and query characteristics (bench scale)")
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "dataset\trecords\tqueries\tdimensions\tsize (compressed)\tsize (raw)")
	for _, name := range datasetNames() {
		e, err := newEnv(cfg, name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\t%s\n",
			name, e.ds.Table.NumRows(), len(e.train)+len(e.test), e.ds.Table.NumCols(),
			fmtBytes(e.ds.Table.SizeBytes()), fmtBytes(e.ds.Table.UncompressedSizeBytes()))
	}
	return w.Flush()
}

func datasetNames() []string {
	return []string{"sales", "tpch", "osm", "perfmon"}
}

func runFig7(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Fig. 7: average query time per index per dataset")
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "index")
	names := datasetNames()
	if cfg.Fast {
		names = names[:2]
	}
	for _, n := range names {
		fmt.Fprintf(w, "\t%s", n)
	}
	fmt.Fprintln(w)
	results := map[string]map[string]string{}
	var order []string
	for _, name := range names {
		e, err := newEnv(cfg, name)
		if err != nil {
			return err
		}
		bs, err := e.buildAll()
		if err != nil {
			return err
		}
		order = bs.order
		for _, k := range bs.order {
			if results[k] == nil {
				results[k] = map[string]string{}
			}
			if idx, ok := bs.idx[k]; ok {
				r := run(idx, e.test)
				results[k][name] = fmtDur(r.AvgTotal)
			} else {
				results[k][name] = "N/A"
			}
		}
	}
	for _, k := range order {
		fmt.Fprintf(w, "%s", k)
		for _, n := range names {
			fmt.Fprintf(w, "\t%s", results[k][n])
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

func runTable2(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Table 2: performance breakdown")
	names := datasetNames()
	if cfg.Fast {
		names = names[:1]
	}
	for _, name := range names {
		e, err := newEnv(cfg, name)
		if err != nil {
			return err
		}
		bs, err := e.buildAll()
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "\n-- %s --\n", name)
		w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "index\tSO\tTPS(ns)\tST\tIT\tTT")
		for _, k := range bs.order {
			idx, ok := bs.idx[k]
			if !ok {
				fmt.Fprintf(w, "%s\tN/A\tN/A\tN/A\tN/A\tN/A\n", k)
				continue
			}
			r := run(idx, e.test)
			fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%s\t%s\t%s\n",
				k, r.SO(), r.TPS(), fmtDur(r.AvgScan), fmtDur(r.AvgIndex), fmtDur(r.AvgTotal))
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func runTable4(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Table 4: index creation time (seconds)")
	names := datasetNames()
	if cfg.Fast {
		names = names[:2]
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "index")
	for _, n := range names {
		fmt.Fprintf(w, "\t%s", n)
	}
	fmt.Fprintln(w)
	rows := map[string]map[string]string{}
	var order []string
	for _, name := range names {
		e, err := newEnv(cfg, name)
		if err != nil {
			return err
		}
		bs, err := e.buildAll()
		if err != nil {
			return err
		}
		set := func(k, v string) {
			if rows[k] == nil {
				rows[k] = map[string]string{}
				order = append(order, k)
			}
			rows[k][name] = v
		}
		set("Flood Learning", fmt.Sprintf("%.2f", bs.floodLearn.Seconds()))
		set("Flood Loading", fmt.Sprintf("%.2f", bs.floodLoad.Seconds()))
		set("Flood Total", fmt.Sprintf("%.2f", (bs.floodLearn+bs.floodLoad).Seconds()))
		for _, k := range baselineKinds() {
			if k == "FullScan" {
				continue
			}
			if _, ok := bs.idx[k]; !ok {
				set(k, "N/A")
				continue
			}
			set(k, fmt.Sprintf("%.2f", bs.buildTime[k].Seconds()))
		}
	}
	seen := map[string]bool{}
	for _, k := range order {
		if seen[k] {
			continue
		}
		seen[k] = true
		fmt.Fprintf(w, "%s", k)
		for _, n := range names {
			v := rows[k][n]
			if v == "" {
				v = "N/A"
			}
			fmt.Fprintf(w, "\t%s", v)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}
