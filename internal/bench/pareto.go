package bench

import (
	"fmt"
	"text/tabwriter"

	"flood/internal/core"
	"flood/internal/query"
)

func init() {
	register("fig8", "Fig. 8: index size vs query time (Pareto frontier)", runFig8)
}

// runFig8 sweeps each index across its size knob (page size for baselines,
// column budget for Flood) and reports (size, time) points per dataset.
func runFig8(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Fig. 8: index size vs average query time")
	names := datasetNames()
	if cfg.Fast {
		names = names[:1]
	}
	pages := []int{256, 1024, 4096, 16384}
	floodFactors := []float64{0.25, 0.5, 1, 2}
	if cfg.Fast {
		pages = []int{512, 4096}
		floodFactors = []float64{0.5, 1}
	}
	for _, name := range names {
		e, err := newEnv(cfg, name)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "\n-- %s --\n", name)
		w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "index\tknob\tsize\tavg query time")

		// Baselines across page sizes.
		for _, kind := range []string{"ZOrder", "UBtree", "Hyperoctree", "KDTree", "GridFile", "RStar"} {
			for _, p := range pages {
				idx, err := buildOne(e, kind, p)
				if err != nil {
					fmt.Fprintf(w, "%s\tpage=%d\tN/A\tN/A\n", kind, p)
					continue
				}
				r := run(idx, e.test)
				fmt.Fprintf(w, "%s\tpage=%d\t%s\t%s\n", kind, p, fmtBytes(idx.SizeBytes()), fmtDur(r.AvgTotal))
			}
		}
		// Clustered: one point.
		if idx, _, err := e.buildBaseline("Clustered"); err == nil {
			r := run(idx, e.test)
			fmt.Fprintf(w, "Clustered\t-\t%s\t%s\n", fmtBytes(idx.SizeBytes()), fmtDur(r.AvgTotal))
		}
		// Flood across cell budgets around the learned layout.
		fl, _, _, err := e.buildFlood(e.train)
		if err != nil {
			return err
		}
		learned := fl.Layout()
		for _, f := range floodFactors {
			l := scaleLayout(learned, f)
			idx, err := core.Build(e.ds.Table, l, core.Options{})
			if err != nil {
				return err
			}
			r := run(idx, e.test)
			fmt.Fprintf(w, "Flood\tcells x%.2g\t%s\t%s\n", f, fmtBytes(idx.SizeBytes()), fmtDur(r.AvgTotal))
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// buildOne builds a baseline at an explicit page size (no tuning).
func buildOne(e *env, kind string, page int) (query.Index, error) {
	saved := e.cfg.PageSizes
	e.cfg.PageSizes = []int{page}
	idx, _, err := e.buildBaseline(kind)
	e.cfg.PageSizes = saved
	return idx, err
}

// scaleLayout multiplies every grid dimension's column count by factor
// (minimum 1 column), keeping the other layout choices fixed — the
// proportional scaling of Fig. 14.
func scaleLayout(l core.Layout, factor float64) core.Layout {
	out := l
	out.GridCols = make([]int, len(l.GridCols))
	out.GridDims = append([]int(nil), l.GridDims...)
	for i, c := range l.GridCols {
		nc := int(float64(c)*factor + 0.5)
		if nc < 1 {
			nc = 1
		}
		out.GridCols[i] = nc
	}
	return out
}
