package bench

import (
	"fmt"
	"text/tabwriter"
	"time"

	"flood/internal/core"
	"flood/internal/optimizer"
)

func init() {
	register("fig15", "Fig. 15: sampling the dataset (learning time vs query time)", runFig15)
	register("fig16", "Fig. 16: sampling the query workload", runFig16)
}

// runFig15 sweeps the layout-search data sample size: tiny samples should
// keep query times low while slashing learning time (§7.7).
func runFig15(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Fig. 15: data sample size vs learning time and query time")
	names := datasetNames()
	if cfg.Fast {
		names = names[:1]
	}
	for _, name := range names {
		e, err := newEnv(cfg, name)
		if err != nil {
			return err
		}
		m, err := e.costModel()
		if err != nil {
			return err
		}
		// Hyperoctree creation time, the paper's comparison line.
		var octreeDur time.Duration
		if _, d, err := e.buildBaseline("Hyperoctree"); err == nil {
			octreeDur = d
		}
		sizes := []int{500, 2000, 10000, cfg.Scale / 2}
		if cfg.Fast {
			sizes = []int{500, 5000}
		}
		fmt.Fprintf(cfg.Out, "\n-- %s (hyperoctree creation: %s) --\n", name, fmtDur(octreeDur))
		w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "data sample\tlearning time\tresulting query time\tlayout")
		for _, s := range sizes {
			t0 := time.Now()
			res, err := optimizer.FindOptimalLayout(e.ds.Table, e.train, m, optimizer.Config{
				DataSampleSize: s,
				Seed:           cfg.Seed + int64(s),
				GDSteps:        gdSteps(cfg),
			})
			if err != nil {
				return err
			}
			learn := time.Since(t0)
			idx, err := core.Build(e.ds.Table, res.Layout, core.Options{})
			if err != nil {
				return err
			}
			r := run(idx, e.test)
			fmt.Fprintf(w, "%d\t%s\t%s\t%s\n", s, fmtDur(learn), fmtDur(r.AvgTotal), res.Layout)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// runFig16 sweeps the query sample size with a fixed small data sample.
func runFig16(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Fig. 16: query sample size vs learning time and query time")
	names := datasetNames()
	if cfg.Fast {
		names = names[:1]
	}
	for _, name := range names {
		e, err := newEnv(cfg, name)
		if err != nil {
			return err
		}
		m, err := e.costModel()
		if err != nil {
			return err
		}
		sizes := []int{5, 10, 25, 50}
		if cfg.Fast {
			sizes = []int{5, 25}
		}
		fmt.Fprintf(cfg.Out, "\n-- %s --\n", name)
		w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "query sample\tlearning time\tresulting query time")
		for _, s := range sizes {
			t0 := time.Now()
			res, err := optimizer.FindOptimalLayout(e.ds.Table, e.train, m, optimizer.Config{
				DataSampleSize:  2000,
				QuerySampleSize: s,
				Seed:            cfg.Seed + int64(s),
				GDSteps:         gdSteps(cfg),
			})
			if err != nil {
				return err
			}
			learn := time.Since(t0)
			idx, err := core.Build(e.ds.Table, res.Layout, core.Options{})
			if err != nil {
				return err
			}
			r := run(idx, e.test)
			fmt.Fprintf(w, "%d\t%s\t%s\n", s, fmtDur(learn), fmtDur(r.AvgTotal))
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}
