package bench

import (
	"fmt"
	"text/tabwriter"

	"flood/internal/dataset"
	"flood/internal/workload"
)

func init() {
	register("fig12a", "Fig. 12a: query time vs dataset size", runFig12a)
	register("fig12b", "Fig. 12b: query time vs query selectivity", runFig12b)
	register("fig13", "Fig. 13: scaling the number of dimensions", runFig13)
}

// runFig12a subsamples TPC-H to increasing sizes; Flood should scale
// sub-linearly because the learned layout grows its cell count with n.
func runFig12a(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Fig. 12a: average query time vs dataset size (TPC-H)")
	sizes := []int{cfg.Scale / 8, cfg.Scale / 4, cfg.Scale / 2, cfg.Scale}
	if cfg.Fast {
		sizes = []int{cfg.Scale / 4, cfg.Scale}
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "records")
	cols := append([]string{}, baselineKinds()...)
	cols = append(cols, "Flood")
	for _, k := range cols {
		fmt.Fprintf(w, "\t%s", k)
	}
	fmt.Fprintln(w)
	for _, n := range sizes {
		sub := cfg
		sub.Scale = n
		e, err := newEnv(sub, "tpch")
		if err != nil {
			return err
		}
		bs, err := e.buildAll()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d", n)
		for _, k := range cols {
			if idx, ok := bs.idx[k]; ok {
				fmt.Fprintf(w, "\t%s", fmtDur(run(idx, e.test).AvgTotal))
			} else {
				fmt.Fprint(w, "\tN/A")
			}
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

// runFig12b scales the workload's filter ranges between 0.001% and 10%
// selectivity.
func runFig12b(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Fig. 12b: average query time vs query selectivity (TPC-H)")
	sels := []float64{0.00001, 0.0001, 0.001, 0.01, 0.1}
	if cfg.Fast {
		sels = []float64{0.0001, 0.001, 0.01}
	}
	ds := dataset.TPCH(cfg.Scale, cfg.Seed)
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "selectivity")
	cols := append([]string{}, baselineKinds()...)
	cols = append(cols, "Flood")
	for _, k := range cols {
		fmt.Fprintf(w, "\t%s", k)
	}
	fmt.Fprintln(w)
	for _, sel := range sels {
		qs := workload.StandardWithSelectivity(ds, 2*cfg.Queries, sel, cfg.Seed+11)
		e, err := newEnvFor(cfg, ds, qs)
		if err != nil {
			return err
		}
		bs, err := e.buildAll()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.5f", sel)
		for _, k := range cols {
			if idx, ok := bs.idx[k]; ok {
				fmt.Fprintf(w, "\t%s", fmtDur(run(idx, e.test).AvgTotal))
			} else {
				fmt.Fprint(w, "\tN/A")
			}
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

// runFig13 runs uniform synthetic data at growing dimensionality; every
// index (Flood least) suffers the curse of dimensionality, measured as the
// ratio to a full scan.
func runFig13(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Fig. 13: query time vs number of dimensions (uniform synthetic)")
	dims := []int{4, 8, 12, 16, 18}
	if cfg.Fast {
		dims = []int{4, 8}
	}
	n := cfg.Scale / 2
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	cols := append([]string{}, baselineKinds()...)
	cols = append(cols, "Flood")
	fmt.Fprint(w, "d")
	for _, k := range cols {
		fmt.Fprintf(w, "\t%s", k)
	}
	fmt.Fprintln(w, "\tFlood/FullScan ratio")
	for _, d := range dims {
		ds := dataset.Uniform(n, d, cfg.Seed+int64(d))
		qs := workload.Standard(ds, 2*cfg.Queries, cfg.Seed+12)
		e, err := newEnvFor(cfg, ds, qs)
		if err != nil {
			return err
		}
		bs, err := e.buildAll()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d", d)
		var fullScan, flood float64
		for _, k := range cols {
			idx, ok := bs.idx[k]
			if !ok {
				fmt.Fprint(w, "\tN/A")
				continue
			}
			r := run(idx, e.test)
			if k == "FullScan" {
				fullScan = float64(r.AvgTotal)
			}
			if k == "Flood" {
				flood = float64(r.AvgTotal)
			}
			fmt.Fprintf(w, "\t%s", fmtDur(r.AvgTotal))
		}
		if fullScan > 0 {
			fmt.Fprintf(w, "\t%.3f", flood/fullScan)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}
