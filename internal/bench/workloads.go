package bench

import (
	"fmt"
	"sort"
	"text/tabwriter"
	"time"

	"flood/internal/query"
	"flood/internal/workload"
)

func init() {
	register("fig9", "Fig. 9: robustness across workload archetypes", runFig9)
	register("fig10", "Fig. 10: adapting to random workload shifts", runFig10)
}

// runFig9 keeps the baselines tuned for the Fig. 7 workload and confronts
// them (and a relearning Flood) with the eight workload archetypes.
func runFig9(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Fig. 9: query time across workload archetypes")
	names := []string{"tpch", "osm"}
	if cfg.Fast {
		names = names[:1]
	}
	kinds := workload.Archetypes()
	if cfg.Fast {
		kinds = kinds[:4]
	}
	for _, name := range names {
		e, err := newEnv(cfg, name)
		if err != nil {
			return err
		}
		bs, err := e.buildAll() // baselines tuned for the standard workload
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "\n-- %s --\n", name)
		w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
		fmt.Fprint(w, "index")
		for _, k := range kinds {
			fmt.Fprintf(w, "\t%s", k)
		}
		fmt.Fprintln(w)
		rows := map[string][]string{}
		for _, kind := range kinds {
			qs := workload.Archetype(e.ds, kind, cfg.Queries, cfg.Seed+int64(len(kind)))
			train, test := workload.SplitTrainTest(qs, 0.5, cfg.Seed+7)
			for _, k := range bs.order {
				if k == "Flood" {
					continue
				}
				if idx, ok := bs.idx[k]; ok {
					rows[k] = append(rows[k], fmtDur(run(idx, test).AvgTotal))
				} else {
					rows[k] = append(rows[k], "N/A")
				}
			}
			// Flood self-optimizes for each archetype.
			fl, _, _, err := e.buildFlood(train)
			if err != nil {
				return err
			}
			rows["Flood"] = append(rows["Flood"], fmtDur(run(fl, test).AvgTotal))
		}
		for _, k := range bs.order {
			fmt.Fprintf(w, "%s", k)
			for _, v := range rows[k] {
				fmt.Fprintf(w, "\t%s", v)
			}
			fmt.Fprintln(w)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// runFig10 generates random workloads; baselines stay tuned for the
// standard workload while Flood relearns per workload, reporting the
// retraining time and the median improvement over the best baseline.
func runFig10(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Fig. 10: random workload sequence (baselines static, Flood relearns)")
	e, err := newEnv(cfg, "tpch")
	if err != nil {
		return err
	}
	bs, err := e.buildAll()
	if err != nil {
		return err
	}
	nWorkloads := 8
	if cfg.Fast {
		nWorkloads = 3
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "workload")
	compare := []string{"ZOrder", "UBtree", "Hyperoctree", "KDTree", "GridFile"}
	for _, k := range compare {
		fmt.Fprintf(w, "\t%s", k)
	}
	fmt.Fprintln(w, "\tFlood\trelearn\tbest-baseline/Flood")
	var ratios []float64
	for wl := 0; wl < nWorkloads; wl++ {
		qs := workload.Random(e.ds, cfg.Queries, cfg.Seed+100+int64(wl))
		train, test := workload.SplitTrainTest(qs, 0.5, cfg.Seed+8)
		fmt.Fprintf(w, "%d", wl)
		best := time.Duration(1<<62 - 1)
		for _, k := range compare {
			idx, ok := bs.idx[k]
			if !ok {
				fmt.Fprint(w, "\tN/A")
				continue
			}
			r := run(idx, test)
			if r.AvgTotal < best {
				best = r.AvgTotal
			}
			fmt.Fprintf(w, "\t%s", fmtDur(r.AvgTotal))
		}
		t0 := time.Now()
		fl, _, _, err := e.buildFlood(train)
		if err != nil {
			return err
		}
		relearn := time.Since(t0)
		fr := run(fl, test)
		ratio := float64(best) / float64(fr.AvgTotal)
		ratios = append(ratios, ratio)
		fmt.Fprintf(w, "\t%s\t%s\t%.1fx\n", fmtDur(fr.AvgTotal), fmtDur(relearn), ratio)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	sort.Float64s(ratios)
	fmt.Fprintf(cfg.Out, "median improvement over best static baseline: %.1fx\n", ratios[len(ratios)/2])
	return nil
}

var _ = []query.Query(nil)
