package colstore

// Per-column bitmap indexes for low-cardinality columns (the kelindar/column
// technique adapted to block-delta storage): one word-packed row bitmap per
// distinct value of a dense, narrow domain — dictionary-coded strings are the
// canonical case. A range predicate over such a column (equality, a small IN
// set, a dictionary prefix range) resolves per block as an OR of the matching
// value bitmaps ANDed into the scan kernel's selection bitmap, replacing the
// residual decode-and-compare entirely.

// BlockWords is the number of 64-bit words in one block's selection bitmap
// (the scan kernel's per-block survivor mask).
const BlockWords = BlockSize / 64

// BlockBitmap is one block's selection bitmap: bit i of word i/64 set means
// row blockStart+i survives the filters applied so far.
type BlockBitmap [BlockWords]uint64

// BitmapIndex is a positional index over one column whose values span a
// small dense domain [min, min+card): for each value v the index stores a
// bitmap of the rows holding v, packed 64 rows per word. Bits at or beyond
// the row count are always zero. A BitmapIndex is immutable after
// construction and safe for concurrent readers.
type BitmapIndex struct {
	min    int64
	card   int
	n      int      // rows covered
	nWords int      // words per value bitmap: ceil(n/64)
	bits   []uint64 // card consecutive bitmaps of nWords each
}

// NewBitmapIndex builds a bitmap index over c, or returns nil when the
// column does not qualify: empty columns, and columns whose global value
// spread (max-min+1) exceeds maxCard, are skipped — a wide domain would cost
// O(spread · rows/8) bytes for bitmaps that are almost all zero.
func NewBitmapIndex(c *Column, maxCard int) *BitmapIndex {
	if c.n == 0 || maxCard <= 0 {
		return nil
	}
	minV, maxV := c.mins[0], c.maxs[0]
	for b := 1; b < len(c.mins); b++ {
		if c.mins[b] < minV {
			minV = c.mins[b]
		}
		if c.maxs[b] > maxV {
			maxV = c.maxs[b]
		}
	}
	spread := uint64(maxV) - uint64(minV)
	if spread >= uint64(maxCard) {
		return nil
	}
	bi := &BitmapIndex{
		min:    minV,
		card:   int(spread) + 1,
		n:      c.n,
		nWords: (c.n + 63) / 64,
	}
	bi.bits = make([]uint64, bi.card*bi.nWords)
	var buf [BlockSize]int64
	for b := 0; b < len(c.mins); b++ {
		cnt := c.DecodeBlock(b, buf[:])
		base := b * BlockSize
		for i := 0; i < cnt; i++ {
			row := base + i
			v := int(buf[i] - minV)
			bi.bits[v*bi.nWords+row>>6] |= 1 << uint(row&63)
		}
	}
	return bi
}

// Cardinality returns the size of the indexed value domain (max-min+1, which
// bounds the number of per-value bitmaps).
func (bi *BitmapIndex) Cardinality() int { return bi.card }

// MinValue returns the smallest value of the indexed domain.
func (bi *BitmapIndex) MinValue() int64 { return bi.min }

// SizeBytes reports the in-memory footprint of the index.
func (bi *BitmapIndex) SizeBytes() int64 { return int64(len(bi.bits)) * 8 }

// AndBlock intersects sel with the set of rows of block b whose value lies
// in [lo, hi]: the matching value bitmaps are ORed together over the block's
// word range and ANDed into sel. Bounds outside the indexed domain clamp;
// an empty intersection zeroes sel.
func (bi *BitmapIndex) AndBlock(sel *BlockBitmap, b int, lo, hi int64) {
	if lo < bi.min {
		lo = bi.min
	}
	if maxV := bi.min + int64(bi.card) - 1; hi > maxV {
		hi = maxV
	}
	w0 := b * BlockWords
	var acc BlockBitmap
	for v := lo; v <= hi; v++ {
		row := bi.bits[int(v-bi.min)*bi.nWords:]
		for k := 0; k < BlockWords && w0+k < bi.nWords; k++ {
			acc[k] |= row[w0+k]
		}
	}
	for k := range sel {
		sel[k] &= acc[k]
	}
}
