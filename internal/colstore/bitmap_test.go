package colstore

import (
	"bytes"
	"math/rand"
	"testing"

	"flood/internal/wire"
)

// lowCardColumn builds a column of n values drawn from [base, base+card).
func lowCardColumn(n int, base int64, card int, seed int64) (*Column, []int64) {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = base + rng.Int63n(int64(card))
	}
	return NewColumn(vals), vals
}

func TestBitmapIndexSkipsUnqualifiedColumns(t *testing.T) {
	if bi := NewBitmapIndex(NewColumn(nil), 64); bi != nil {
		t.Fatal("empty column should not build a bitmap index")
	}
	c, _ := lowCardColumn(100, 0, 10, 1)
	if bi := NewBitmapIndex(c, 0); bi != nil {
		t.Fatal("maxCard 0 should disable bitmap indexes")
	}
	wide := NewColumn([]int64{0, 1 << 40})
	if bi := NewBitmapIndex(wide, 64); bi != nil {
		t.Fatal("wide-spread column should not build a bitmap index")
	}
	// maxCard bounds the value count (spread+1): exactly at the threshold
	// builds, one over does not.
	edge := NewColumn([]int64{5, 5 + 9}) // 10 distinct values in the domain
	if bi := NewBitmapIndex(edge, 9); bi != nil {
		t.Fatal("domain of 10 values should be rejected at maxCard 9")
	}
	if bi := NewBitmapIndex(edge, 10); bi == nil {
		t.Fatal("domain of 10 values should build at maxCard 10")
	} else if bi.Cardinality() != 10 || bi.MinValue() != 5 {
		t.Fatalf("card=%d min=%d, want 10, 5", bi.Cardinality(), bi.MinValue())
	}
}

// bruteAndBlock recomputes what AndBlock should leave in sel for block b.
func bruteAndBlock(vals []int64, sel BlockBitmap, b int, lo, hi int64) BlockBitmap {
	base := b * BlockSize
	var out BlockBitmap
	for i := 0; i < BlockSize; i++ {
		row := base + i
		if row >= len(vals) {
			break
		}
		if sel[i/64]&(1<<uint(i%64)) == 0 {
			continue
		}
		if vals[row] >= lo && vals[row] <= hi {
			out[i/64] |= 1 << uint(i%64)
		}
	}
	return out
}

func TestBitmapIndexAndBlockMatchesBruteForce(t *testing.T) {
	// 5 full blocks plus a partial trailing block; negative domain base
	// exercises the signed min/max handling.
	const n = 5*BlockSize + 37
	c, vals := lowCardColumn(n, -3, 17, 2)
	bi := NewBitmapIndex(c, 64)
	if bi == nil {
		t.Fatal("index should build")
	}
	rng := rand.New(rand.NewSource(3))
	nBlocks := (n + BlockSize - 1) / BlockSize
	for trial := 0; trial < 500; trial++ {
		b := rng.Intn(nBlocks)
		// Bounds beyond the domain on both sides exercise clamping.
		lo := int64(-10 + rng.Intn(30))
		hi := lo + int64(rng.Intn(25))
		var sel BlockBitmap
		for k := range sel {
			sel[k] = rng.Uint64()
		}
		want := bruteAndBlock(vals, sel, b, lo, hi)
		got := sel
		bi.AndBlock(&got, b, lo, hi)
		if got != want {
			t.Fatalf("trial %d: AndBlock(b=%d, [%d,%d]) = %v, want %v", trial, b, lo, hi, got, want)
		}
	}
}

func TestBitmapIndexAndBlockEmptyIntersection(t *testing.T) {
	c, _ := lowCardColumn(200, 0, 8, 4)
	bi := NewBitmapIndex(c, 64)
	sel := BlockBitmap{^uint64(0), ^uint64(0)}
	bi.AndBlock(&sel, 0, 100, 200) // entirely above the domain
	if sel != (BlockBitmap{}) {
		t.Fatalf("disjoint range should zero sel, got %v", sel)
	}
	sel = BlockBitmap{^uint64(0), ^uint64(0)}
	bi.AndBlock(&sel, 0, -50, -10) // entirely below the domain
	if sel != (BlockBitmap{}) {
		t.Fatalf("disjoint range should zero sel, got %v", sel)
	}
}

func TestBitmapIndexTailBitsZero(t *testing.T) {
	// Rows at or beyond n must never be set, even with a full-domain range.
	const n = BlockSize + 5
	c, _ := lowCardColumn(n, 0, 4, 5)
	bi := NewBitmapIndex(c, 64)
	sel := BlockBitmap{^uint64(0), ^uint64(0)}
	bi.AndBlock(&sel, 1, 0, 3)
	for i := n - BlockSize; i < BlockSize; i++ {
		if sel[i/64]&(1<<uint(i%64)) != 0 {
			t.Fatalf("bit %d set beyond row count", i)
		}
	}
}

func TestBitmapIndexRoundTrip(t *testing.T) {
	const n = 3*BlockSize + 11
	c, vals := lowCardColumn(n, 2, 23, 6)
	bi := NewBitmapIndex(c, 64)

	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	bi.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBitmapIndex(wire.NewReaderBytes(buf.Bytes()), n)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != bi.Cardinality() || got.MinValue() != bi.MinValue() {
		t.Fatalf("round trip changed domain: card %d→%d min %d→%d",
			bi.Cardinality(), got.Cardinality(), bi.MinValue(), got.MinValue())
	}
	// Decoded index answers identically.
	sel1 := BlockBitmap{^uint64(0), ^uint64(0)}
	sel2 := sel1
	bi.AndBlock(&sel1, 1, 5, 9)
	got.AndBlock(&sel2, 1, 5, 9)
	if sel1 != sel2 {
		t.Fatalf("decoded index disagrees: %v vs %v", sel1, sel2)
	}
	_ = vals

	// Row-count mismatch and truncation must error, not decode garbage.
	if _, err := DecodeBitmapIndex(wire.NewReaderBytes(buf.Bytes()), n+1); err == nil {
		t.Fatal("want error for row-count mismatch")
	}
	if _, err := DecodeBitmapIndex(wire.NewReaderBytes(buf.Bytes()[:8]), n); err == nil {
		t.Fatal("want error for truncated payload")
	}
}

func TestEnableBitmapIndexes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 400
	low := make([]int64, n)  // qualifies: 6 distinct values
	wide := make([]int64, n) // does not: large spread
	for i := 0; i < n; i++ {
		low[i] = rng.Int63n(6)
		wide[i] = rng.Int63n(1 << 30)
	}
	tbl, err := NewTable([]string{"low", "wide"}, [][]int64{low, wide})
	if err != nil {
		t.Fatal(err)
	}
	if built := tbl.EnableBitmapIndexes(64); built != 1 {
		t.Fatalf("built %d indexes, want 1", built)
	}
	if tbl.Bitmap(0) == nil || tbl.Bitmap(1) != nil {
		t.Fatalf("Bitmap(0)=%v Bitmap(1)=%v, want index only on low column", tbl.Bitmap(0), tbl.Bitmap(1))
	}
	if tbl.SizeBytes() <= 0 {
		t.Fatal("SizeBytes should include bitmap footprint")
	}
	if built := tbl.EnableBitmapIndexes(-1); built != 0 {
		t.Fatal("negative maxCard should clear indexes")
	}
	if tbl.Bitmap(0) != nil {
		t.Fatal("indexes should be cleared")
	}
}
