// Package colstore implements the in-memory column store substrate used by
// Flood and every baseline index in this repository.
//
// Following §7.1 of the paper, each column stores 64-bit integers using
// block-delta compression: values are divided into consecutive blocks of 128
// entries and each value is encoded as the bit-packed delta to the minimum
// value in its block. The encoding supports constant-time random access and
// fast block-at-a-time decoding for scans. Columns may optionally carry a
// cumulative-aggregate companion (prefix sums) that lets exact sub-range
// aggregations complete in O(1) without touching the underlying data.
package colstore

import "math/bits"

// BlockSize is the number of values per compression block (§7.1).
const BlockSize = 128

// Column is an immutable, block-delta-compressed vector of int64 values.
type Column struct {
	n       int
	mins    []int64  // per-block minimum value
	widths  []uint8  // per-block delta bit width (0..64)
	offsets []uint32 // per-block starting word index into words
	words   []uint64 // packed deltas
}

// NewColumn compresses values into a Column. The input slice is not retained.
func NewColumn(values []int64) *Column {
	n := len(values)
	nBlocks := (n + BlockSize - 1) / BlockSize
	c := &Column{
		n:       n,
		mins:    make([]int64, nBlocks),
		widths:  make([]uint8, nBlocks),
		offsets: make([]uint32, nBlocks),
	}
	totalWords := 0
	for b := 0; b < nBlocks; b++ {
		lo := b * BlockSize
		hi := lo + BlockSize
		if hi > n {
			hi = n
		}
		blk := values[lo:hi]
		minV, maxV := blk[0], blk[0]
		for _, v := range blk[1:] {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		w := bits.Len64(uint64(maxV) - uint64(minV))
		c.mins[b] = minV
		c.widths[b] = uint8(w)
		c.offsets[b] = uint32(totalWords)
		totalWords += (len(blk)*w + 63) / 64
	}
	c.words = make([]uint64, totalWords)
	for b := 0; b < nBlocks; b++ {
		lo := b * BlockSize
		hi := lo + BlockSize
		if hi > n {
			hi = n
		}
		w := uint(c.widths[b])
		if w == 0 {
			continue
		}
		base := uint(c.offsets[b]) * 64
		minV := c.mins[b]
		for r, v := range values[lo:hi] {
			delta := uint64(v) - uint64(minV)
			pos := base + uint(r)*w
			wi := pos >> 6
			off := pos & 63
			c.words[wi] |= delta << off
			if off+w > 64 {
				c.words[wi+1] |= delta >> (64 - off)
			}
		}
	}
	return c
}

// Len returns the number of values in the column.
func (c *Column) Len() int { return c.n }

// Get returns the value at row i in constant time.
func (c *Column) Get(i int) int64 {
	b := i / BlockSize
	w := uint(c.widths[b])
	if w == 0 {
		return c.mins[b]
	}
	r := uint(i % BlockSize)
	pos := uint(c.offsets[b])*64 + r*w
	wi := pos >> 6
	off := pos & 63
	delta := c.words[wi] >> off
	if off+w > 64 {
		delta |= c.words[wi+1] << (64 - off)
	}
	delta &= mask(w)
	return c.mins[b] + int64(delta)
}

// DecodeBlock decodes block b into out and returns the number of valid
// values (BlockSize for all but possibly the last block). out must have
// room for BlockSize values.
func (c *Column) DecodeBlock(b int, out []int64) int {
	lo := b * BlockSize
	cnt := c.n - lo
	if cnt > BlockSize {
		cnt = BlockSize
	}
	minV := c.mins[b]
	w := uint(c.widths[b])
	if w == 0 {
		for i := 0; i < cnt; i++ {
			out[i] = minV
		}
		return cnt
	}
	base := uint(c.offsets[b]) * 64
	m := mask(w)
	for i := 0; i < cnt; i++ {
		pos := base + uint(i)*w
		wi := pos >> 6
		off := pos & 63
		delta := c.words[wi] >> off
		if off+w > 64 {
			delta |= c.words[wi+1] << (64 - off)
		}
		out[i] = minV + int64(delta&m)
	}
	return cnt
}

// Decode materializes the whole column into a fresh slice.
func (c *Column) Decode() []int64 {
	out := make([]int64, c.n)
	var buf [BlockSize]int64
	nBlocks := (c.n + BlockSize - 1) / BlockSize
	for b := 0; b < nBlocks; b++ {
		cnt := c.DecodeBlock(b, buf[:])
		copy(out[b*BlockSize:], buf[:cnt])
	}
	return out
}

// SizeBytes reports the in-memory footprint of the compressed column.
func (c *Column) SizeBytes() int64 {
	return int64(len(c.mins)*8 + len(c.widths) + len(c.offsets)*4 + len(c.words)*8)
}

// UncompressedSizeBytes reports the footprint the column would occupy as a
// plain []int64.
func (c *Column) UncompressedSizeBytes() int64 { return int64(c.n) * 8 }

func mask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}
