// Package colstore implements the in-memory column store substrate used by
// Flood and every baseline index in this repository.
//
// Following §7.1 of the paper, each column stores 64-bit integers using
// block-delta compression: values are divided into consecutive blocks of 128
// entries and each value is encoded as the bit-packed delta to the minimum
// value in its block. The encoding supports constant-time random access and
// fast block-at-a-time decoding for scans. Every block additionally carries
// its min/max (a zone map) so scans can skip or exact-accept whole blocks
// without decoding them. Columns may optionally carry a cumulative-aggregate
// companion (prefix sums) that lets exact sub-range aggregations complete in
// O(1) without touching the underlying data.
package colstore

import "math/bits"

// BlockSize is the number of values per compression block (§7.1).
const BlockSize = 128

// Column is an immutable, block-delta-compressed vector of int64 values.
type Column struct {
	n       int
	mins    []int64  // per-block minimum value (also the zone-map lower bound)
	maxs    []int64  // per-block maximum value (zone-map upper bound)
	widths  []uint8  // per-block delta bit width (0..64)
	offsets []uint32 // per-block starting word index into words
	words   []uint64 // packed deltas
}

// NewColumn compresses values into a Column. The input slice is not retained.
func NewColumn(values []int64) *Column {
	n := len(values)
	nBlocks := (n + BlockSize - 1) / BlockSize
	c := &Column{
		n:       n,
		mins:    make([]int64, nBlocks),
		maxs:    make([]int64, nBlocks),
		widths:  make([]uint8, nBlocks),
		offsets: make([]uint32, nBlocks),
	}
	totalWords := 0
	for b := 0; b < nBlocks; b++ {
		lo := b * BlockSize
		hi := lo + BlockSize
		if hi > n {
			hi = n
		}
		blk := values[lo:hi]
		minV, maxV := blk[0], blk[0]
		for _, v := range blk[1:] {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		w := bits.Len64(uint64(maxV) - uint64(minV))
		c.mins[b] = minV
		c.maxs[b] = maxV
		c.widths[b] = uint8(w)
		c.offsets[b] = uint32(totalWords)
		totalWords += (len(blk)*w + 63) / 64
	}
	c.words = make([]uint64, totalWords)
	for b := 0; b < nBlocks; b++ {
		lo := b * BlockSize
		hi := lo + BlockSize
		if hi > n {
			hi = n
		}
		w := uint(c.widths[b])
		if w == 0 {
			continue
		}
		base := uint(c.offsets[b]) * 64
		minV := c.mins[b]
		for r, v := range values[lo:hi] {
			delta := uint64(v) - uint64(minV)
			pos := base + uint(r)*w
			wi := pos >> 6
			off := pos & 63
			c.words[wi] |= delta << off
			if off+w > 64 {
				c.words[wi+1] |= delta >> (64 - off)
			}
		}
	}
	return c
}

// Len returns the number of values in the column.
func (c *Column) Len() int { return c.n }

// NumBlocks returns the number of compression blocks.
func (c *Column) NumBlocks() int { return len(c.mins) }

// BlockBounds returns the zone map of block b: the minimum and maximum value
// stored in it. Scans use it to skip blocks disjoint from a predicate and to
// exact-accept blocks fully contained in one, without decoding either way.
func (c *Column) BlockBounds(b int) (min, max int64) { return c.mins[b], c.maxs[b] }

// Get returns the value at row i in constant time.
func (c *Column) Get(i int) int64 {
	b := i / BlockSize
	w := uint(c.widths[b])
	if w == 0 {
		return c.mins[b]
	}
	r := uint(i % BlockSize)
	pos := uint(c.offsets[b])*64 + r*w
	wi := pos >> 6
	off := pos & 63
	delta := c.words[wi] >> off
	if off+w > 64 {
		delta |= c.words[wi+1] << (64 - off)
	}
	delta &= mask(w)
	return c.mins[b] + int64(delta)
}

// DecodeBlock decodes block b into out and returns the number of valid
// values (BlockSize for all but possibly the last block). out must have
// room for BlockSize values. Common bit widths (0/8/16/32/64) take
// specialized word-at-a-time loops.
func (c *Column) DecodeBlock(b int, out []int64) int {
	lo := b * BlockSize
	cnt := c.n - lo
	if cnt > BlockSize {
		cnt = BlockSize
	}
	minV := c.mins[b]
	w := uint(c.widths[b])
	if w == 0 {
		for i := 0; i < cnt; i++ {
			out[i] = minV
		}
		return cnt
	}
	words := c.words[c.offsets[b]:]
	out = out[:cnt]
	switch w {
	case 8:
		decodeFixed(words, out, minV, 8)
	case 16:
		decodeFixed(words, out, minV, 16)
	case 32:
		decodeFixed(words, out, minV, 32)
	case 64:
		for i := range out {
			out[i] = minV + int64(words[i])
		}
	default:
		m := mask(w)
		pos := uint(0)
		for i := range out {
			wi := pos >> 6
			off := pos & 63
			delta := words[wi] >> off
			if off+w > 64 {
				delta |= words[wi+1] << (64 - off)
			}
			out[i] = minV + int64(delta&m)
			pos += w
		}
	}
	return cnt
}

// decodeFixed unpacks deltas of a width that evenly divides 64 (8, 16, or
// 32 bits), so every value lies inside a single word and words unpack with
// shifts only — no cross-word carries and no per-value division.
func decodeFixed(words []uint64, out []int64, minV int64, w uint) {
	per := 64 / w
	m := mask(w)
	i := 0
	for ; i+int(per) <= len(out); i += int(per) {
		wd := words[uint(i)/per]
		for k := uint(0); k < per; k++ {
			out[i+int(k)] = minV + int64((wd>>(k*w))&m)
		}
	}
	if i < len(out) {
		wd := words[uint(i)/per]
		for sh := uint(0); i < len(out); i++ {
			out[i] = minV + int64((wd>>sh)&m)
			sh += w
		}
	}
}

// Decode materializes the whole column into a fresh slice.
func (c *Column) Decode() []int64 {
	out := make([]int64, c.n)
	var buf [BlockSize]int64
	nBlocks := (c.n + BlockSize - 1) / BlockSize
	for b := 0; b < nBlocks; b++ {
		cnt := c.DecodeBlock(b, buf[:])
		copy(out[b*BlockSize:], buf[:cnt])
	}
	return out
}

// LowerBound returns the smallest index i in [start, end) with Get(i) >= v,
// or end if no such index exists. The rows [start, end) must be sorted
// ascending. The search runs at row granularity until the remaining window
// fits inside one compression block, which is then decoded once and finished
// in-cache — cheaper than repeated bit-unpacking probes.
func (c *Column) LowerBound(start, end int, v int64) int {
	lo, hi := start, end
	for lo < hi && lo/BlockSize != (hi-1)/BlockSize {
		mid := int(uint(lo+hi) >> 1)
		if c.Get(mid) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= hi {
		return lo
	}
	b := lo / BlockSize
	base := b * BlockSize
	var buf [BlockSize]int64
	c.DecodeBlock(b, buf[:])
	i, j := lo-base, hi-base
	for i < j {
		mid := int(uint(i+j) >> 1)
		if buf[mid] < v {
			i = mid + 1
		} else {
			j = mid
		}
	}
	return base + i
}

// LowerBoundHint is LowerBound seeded with a predicted position (e.g. from a
// learned model): an exponential search brackets the answer around hint, then
// the block-decoded binary search finishes inside the bracket. hint is
// clamped into [start, end].
func (c *Column) LowerBoundHint(start, end, hint int, v int64) int {
	if hint < start {
		hint = start
	}
	if hint > end {
		hint = end
	}
	lo, hi := hint, hint
	width := 1
	for lo > start && c.Get(lo-1) >= v {
		lo -= width
		width <<= 1
		if lo < start {
			lo = start
		}
	}
	width = 1
	for hi < end && c.Get(hi) < v {
		hi += width
		width <<= 1
		if hi > end {
			hi = end
		}
	}
	return c.LowerBound(lo, hi, v)
}

// SizeBytes reports the in-memory footprint of the compressed column.
func (c *Column) SizeBytes() int64 {
	return int64(len(c.mins)*8 + len(c.maxs)*8 + len(c.widths) + len(c.offsets)*4 + len(c.words)*8)
}

// UncompressedSizeBytes reports the footprint the column would occupy as a
// plain []int64.
func (c *Column) UncompressedSizeBytes() int64 { return int64(c.n) * 8 }

// computeMaxs rebuilds the per-block maxima from the packed data. Decoded
// (persisted) columns call this because the wire format predates zone maps
// and carries only per-block minima.
func (c *Column) computeMaxs() {
	c.maxs = make([]int64, len(c.mins))
	var buf [BlockSize]int64
	for b := range c.mins {
		cnt := c.DecodeBlock(b, buf[:])
		maxV := buf[0]
		for _, v := range buf[1:cnt] {
			if v > maxV {
				maxV = v
			}
		}
		c.maxs[b] = maxV
	}
}

func mask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}
