package colstore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestColumnRoundtripSmall(t *testing.T) {
	cases := [][]int64{
		{0},
		{42},
		{-1, 0, 1},
		{math.MinInt64, math.MaxInt64},
		{5, 5, 5, 5, 5},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	}
	for _, vals := range cases {
		c := NewColumn(vals)
		if c.Len() != len(vals) {
			t.Fatalf("Len = %d, want %d", c.Len(), len(vals))
		}
		for i, want := range vals {
			if got := c.Get(i); got != want {
				t.Fatalf("Get(%d) = %d, want %d (input %v)", i, got, want, vals)
			}
		}
	}
}

func TestColumnRoundtripExactBlockBoundaries(t *testing.T) {
	for _, n := range []int{BlockSize - 1, BlockSize, BlockSize + 1, 3 * BlockSize} {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i * 31)
		}
		c := NewColumn(vals)
		got := c.Decode()
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("n=%d: Decode()[%d] = %d, want %d", n, i, got[i], vals[i])
			}
		}
	}
}

func TestColumnRoundtripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		c := NewColumn(vals)
		for i, want := range vals {
			if c.Get(i) != want {
				return false
			}
		}
		dec := c.Decode()
		for i, want := range vals {
			if dec[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestColumnRoundtripWideAndNarrowBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 10 * BlockSize
	vals := make([]int64, n)
	for b := 0; b*BlockSize < n; b++ {
		// Alternate between constant, narrow, and full-width blocks to
		// exercise every bit-width path.
		var gen func() int64
		switch b % 3 {
		case 0:
			gen = func() int64 { return 7 }
		case 1:
			gen = func() int64 { return rng.Int63n(100) }
		default:
			gen = func() int64 { return int64(rng.Uint64()) }
		}
		for i := 0; i < BlockSize; i++ {
			vals[b*BlockSize+i] = gen()
		}
	}
	c := NewColumn(vals)
	for i, want := range vals {
		if got := c.Get(i); got != want {
			t.Fatalf("Get(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestColumnDecodeBlockPartial(t *testing.T) {
	vals := make([]int64, BlockSize+17)
	for i := range vals {
		vals[i] = int64(i * i)
	}
	c := NewColumn(vals)
	var buf [BlockSize]int64
	if cnt := c.DecodeBlock(1, buf[:]); cnt != 17 {
		t.Fatalf("DecodeBlock(1) count = %d, want 17", cnt)
	}
	for i := 0; i < 17; i++ {
		if buf[i] != vals[BlockSize+i] {
			t.Fatalf("block 1 value %d = %d, want %d", i, buf[i], vals[BlockSize+i])
		}
	}
}

func TestColumnCompressionEffectiveness(t *testing.T) {
	// Smooth data should compress far below 8 bytes/value.
	vals := make([]int64, 1<<16)
	for i := range vals {
		vals[i] = 1_000_000 + int64(i%50)
	}
	c := NewColumn(vals)
	if c.SizeBytes() >= c.UncompressedSizeBytes()/4 {
		t.Fatalf("compressed %d bytes, want < 1/4 of %d", c.SizeBytes(), c.UncompressedSizeBytes())
	}
}

func BenchmarkColumnGet(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 1<<20)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 30)
	}
	c := NewColumn(vals)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += c.Get(i & (1<<20 - 1))
	}
	_ = sink
}

func BenchmarkColumnDecodeBlock(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 1<<20)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 30)
	}
	c := NewColumn(vals)
	var buf [BlockSize]int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecodeBlock(i&(1<<13-1), buf[:])
	}
}
