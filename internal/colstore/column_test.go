package colstore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestColumnRoundtripSmall(t *testing.T) {
	cases := [][]int64{
		{0},
		{42},
		{-1, 0, 1},
		{math.MinInt64, math.MaxInt64},
		{5, 5, 5, 5, 5},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	}
	for _, vals := range cases {
		c := NewColumn(vals)
		if c.Len() != len(vals) {
			t.Fatalf("Len = %d, want %d", c.Len(), len(vals))
		}
		for i, want := range vals {
			if got := c.Get(i); got != want {
				t.Fatalf("Get(%d) = %d, want %d (input %v)", i, got, want, vals)
			}
		}
	}
}

func TestColumnRoundtripExactBlockBoundaries(t *testing.T) {
	for _, n := range []int{BlockSize - 1, BlockSize, BlockSize + 1, 3 * BlockSize} {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i * 31)
		}
		c := NewColumn(vals)
		got := c.Decode()
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("n=%d: Decode()[%d] = %d, want %d", n, i, got[i], vals[i])
			}
		}
	}
}

func TestColumnRoundtripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		c := NewColumn(vals)
		for i, want := range vals {
			if c.Get(i) != want {
				return false
			}
		}
		dec := c.Decode()
		for i, want := range vals {
			if dec[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestColumnRoundtripWideAndNarrowBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 10 * BlockSize
	vals := make([]int64, n)
	for b := 0; b*BlockSize < n; b++ {
		// Alternate between constant, narrow, and full-width blocks to
		// exercise every bit-width path.
		var gen func() int64
		switch b % 3 {
		case 0:
			gen = func() int64 { return 7 }
		case 1:
			gen = func() int64 { return rng.Int63n(100) }
		default:
			gen = func() int64 { return int64(rng.Uint64()) }
		}
		for i := 0; i < BlockSize; i++ {
			vals[b*BlockSize+i] = gen()
		}
	}
	c := NewColumn(vals)
	for i, want := range vals {
		if got := c.Get(i); got != want {
			t.Fatalf("Get(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestColumnDecodeBlockPartial(t *testing.T) {
	vals := make([]int64, BlockSize+17)
	for i := range vals {
		vals[i] = int64(i * i)
	}
	c := NewColumn(vals)
	var buf [BlockSize]int64
	if cnt := c.DecodeBlock(1, buf[:]); cnt != 17 {
		t.Fatalf("DecodeBlock(1) count = %d, want 17", cnt)
	}
	for i := 0; i < 17; i++ {
		if buf[i] != vals[BlockSize+i] {
			t.Fatalf("block 1 value %d = %d, want %d", i, buf[i], vals[BlockSize+i])
		}
	}
}

func TestColumnCompressionEffectiveness(t *testing.T) {
	// Smooth data should compress far below 8 bytes/value.
	vals := make([]int64, 1<<16)
	for i := range vals {
		vals[i] = 1_000_000 + int64(i%50)
	}
	c := NewColumn(vals)
	if c.SizeBytes() >= c.UncompressedSizeBytes()/4 {
		t.Fatalf("compressed %d bytes, want < 1/4 of %d", c.SizeBytes(), c.UncompressedSizeBytes())
	}
}

func BenchmarkColumnGet(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 1<<20)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 30)
	}
	c := NewColumn(vals)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += c.Get(i & (1<<20 - 1))
	}
	_ = sink
}

func BenchmarkColumnDecodeBlock(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 1<<20)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 30)
	}
	c := NewColumn(vals)
	var buf [BlockSize]int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecodeBlock(i&(1<<13-1), buf[:])
	}
}

func TestColumnEmpty(t *testing.T) {
	c := NewColumn(nil)
	if c.Len() != 0 || c.NumBlocks() != 0 {
		t.Fatalf("empty column: Len=%d NumBlocks=%d", c.Len(), c.NumBlocks())
	}
	if got := c.Decode(); len(got) != 0 {
		t.Fatalf("Decode of empty column returned %d values", len(got))
	}
	if c.SizeBytes() < 0 || c.UncompressedSizeBytes() != 0 {
		t.Fatalf("empty column sizes: %d / %d", c.SizeBytes(), c.UncompressedSizeBytes())
	}
	if got := c.LowerBound(0, 0, 42); got != 0 {
		t.Fatalf("LowerBound on empty column = %d, want 0", got)
	}
}

func TestColumnSingleBlockTail(t *testing.T) {
	// A column smaller than one block: the only block is a tail block.
	for _, n := range []int{1, 2, BlockSize / 2, BlockSize - 1} {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i*i - 50)
		}
		c := NewColumn(vals)
		if c.NumBlocks() != 1 {
			t.Fatalf("n=%d: NumBlocks = %d, want 1", n, c.NumBlocks())
		}
		var buf [BlockSize]int64
		if cnt := c.DecodeBlock(0, buf[:]); cnt != n {
			t.Fatalf("n=%d: DecodeBlock count = %d", n, cnt)
		}
		for i := range vals {
			if buf[i] != vals[i] || c.Get(i) != vals[i] {
				t.Fatalf("n=%d: value %d mismatch", n, i)
			}
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if bmin, bmax := c.BlockBounds(0); bmin != lo || bmax != hi {
			t.Fatalf("n=%d: BlockBounds = (%d, %d), want (%d, %d)", n, bmin, bmax, lo, hi)
		}
	}
}

func TestColumnWidth64Deltas(t *testing.T) {
	// Min/max spanning the full int64 range forces 64-bit deltas; the
	// specialized width-64 decode loop and the zone map must both survive
	// the unsigned wraparound.
	rng := rand.New(rand.NewSource(9))
	vals := make([]int64, 2*BlockSize+13)
	for i := range vals {
		vals[i] = int64(rng.Uint64())
	}
	vals[0] = math.MinInt64
	vals[1] = math.MaxInt64
	vals[2*BlockSize] = math.MaxInt64 // tail block extreme
	c := NewColumn(vals)
	var buf [BlockSize]int64
	for b := 0; b < c.NumBlocks(); b++ {
		cnt := c.DecodeBlock(b, buf[:])
		lo, hi := buf[0], buf[0]
		for i := 0; i < cnt; i++ {
			if want := vals[b*BlockSize+i]; buf[i] != want {
				t.Fatalf("block %d value %d = %d, want %d", b, i, buf[i], want)
			}
			if buf[i] < lo {
				lo = buf[i]
			}
			if buf[i] > hi {
				hi = buf[i]
			}
		}
		bmin, bmax := c.BlockBounds(b)
		if bmin != lo || bmax != hi {
			t.Fatalf("block %d bounds = (%d, %d), want (%d, %d)", b, bmin, bmax, lo, hi)
		}
	}
}

// TestColumnDecodeBlockAgreesWithGet is the DecodeBlock-vs-Get property
// test: for random columns of every width class, block decoding and random
// access must agree on every row, and zone maps must be exact.
func TestColumnDecodeBlockAgreesWithGet(t *testing.T) {
	f := func(seed int64, nBlocks uint8, tail uint8, widthClass uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nBlocks%5)*BlockSize + int(tail)%BlockSize
		if n == 0 {
			n = 1
		}
		vals := make([]int64, n)
		for i := range vals {
			switch widthClass % 6 {
			case 0:
				vals[i] = 77 // width 0
			case 1:
				vals[i] = rng.Int63n(200) // width 8
			case 2:
				vals[i] = -1000 + rng.Int63n(1<<16) // width 16
			case 3:
				vals[i] = rng.Int63n(1 << 32) // width 32
			case 4:
				vals[i] = int64(rng.Uint64()) // width 64
			default:
				vals[i] = rng.Int63n(1 << 21) // generic width
			}
		}
		c := NewColumn(vals)
		var buf [BlockSize]int64
		for b := 0; b < c.NumBlocks(); b++ {
			cnt := c.DecodeBlock(b, buf[:])
			lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
			for i := 0; i < cnt; i++ {
				row := b*BlockSize + i
				if buf[i] != c.Get(row) || buf[i] != vals[row] {
					return false
				}
				if buf[i] < lo {
					lo = buf[i]
				}
				if buf[i] > hi {
					hi = buf[i]
				}
			}
			if bmin, bmax := c.BlockBounds(b); bmin != lo || bmax != hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestColumnLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 5*BlockSize + 31
	vals := make([]int64, n)
	v := int64(-4000)
	for i := range vals {
		v += rng.Int63n(7) // sorted with duplicates
		vals[i] = v
	}
	c := NewColumn(vals)
	check := func(start, end int, target int64) {
		t.Helper()
		want := start
		for want < end && vals[want] < target {
			want++
		}
		if got := c.LowerBound(start, end, target); got != want {
			t.Fatalf("LowerBound(%d, %d, %d) = %d, want %d", start, end, target, got, want)
		}
		for _, hint := range []int{start, end, (start + end) / 2, want} {
			if got := c.LowerBoundHint(start, end, hint, target); got != want {
				t.Fatalf("LowerBoundHint(%d, %d, hint=%d, %d) = %d, want %d",
					start, end, hint, target, got, want)
			}
		}
	}
	for trial := 0; trial < 500; trial++ {
		start := rng.Intn(n)
		end := start + rng.Intn(n-start+1)
		var target int64
		switch trial % 3 {
		case 0:
			target = vals[rng.Intn(n)]
		case 1:
			target = vals[rng.Intn(n)] + 1
		default:
			target = -5000 + rng.Int63n(12000)
		}
		check(start, end, target)
	}
	check(0, n, math.MinInt64)
	check(0, n, math.MaxInt64)
}
