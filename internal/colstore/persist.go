package colstore

import (
	"fmt"

	"flood/internal/wire"
)

// Encode serializes the table (compressed columns and aggregate-column
// presence) to w.
func (t *Table) Encode(w *wire.Writer) {
	w.Tag("TBL1")
	w.Strs(t.names)
	w.Int(t.n)
	for _, c := range t.cols {
		w.Int(c.n)
		w.I64s(c.mins)
		w.U8s(c.widths)
		w.U32s(c.offsets)
		w.U64s(c.words)
	}
	for _, p := range t.prefixes {
		w.Bool(p != nil)
	}
}

// DecodeTable reads a table written by Encode. Aggregate companions are
// rebuilt from the column data.
func DecodeTable(r *wire.Reader) (*Table, error) {
	r.Expect("TBL1")
	names := r.Strs()
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("colstore: decoding table header: %w", err)
	}
	t := &Table{
		names:    names,
		cols:     make([]*Column, len(names)),
		prefixes: make([][]int64, len(names)),
		n:        n,
	}
	for i := range t.cols {
		c := &Column{
			n:       r.Int(),
			mins:    r.I64s(),
			widths:  r.U8s(),
			offsets: r.U32s(),
			words:   r.U64s(),
		}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("colstore: decoding column %d: %w", i, err)
		}
		if c.n != n {
			return nil, fmt.Errorf("colstore: column %d has %d rows, table has %d", i, c.n, n)
		}
		c.computeMaxs()
		t.cols[i] = c
	}
	for i := range t.prefixes {
		if r.Bool() {
			t.buildPrefix(i, t.cols[i].Decode())
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("colstore: decoding table: %w", err)
	}
	return t, nil
}
