package colstore

import (
	"fmt"

	"flood/internal/wire"
)

// Encode serializes the table (compressed columns and aggregate-column
// presence) to w.
func (t *Table) Encode(w *wire.Writer) {
	w.Tag("TBL1")
	w.Strs(t.names)
	w.Int(t.n)
	for _, c := range t.cols {
		w.Int(c.n)
		w.I64s(c.mins)
		w.U8s(c.widths)
		w.U32s(c.offsets)
		w.U64s(c.words)
	}
	for _, p := range t.prefixes {
		w.Bool(p != nil)
	}
}

// DecodeTable reads a table written by Encode. Aggregate companions are
// rebuilt from the column data. Structural invariants of every column are
// verified before any packed data is decoded, so corrupt input yields an
// error rather than out-of-range panics later.
func DecodeTable(r *wire.Reader) (*Table, error) {
	r.Expect("TBL1")
	names := r.Strs()
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("colstore: decoding table header: %w", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("colstore: table declares %d rows", n)
	}
	t := &Table{
		names:    names,
		cols:     make([]*Column, len(names)),
		prefixes: make([][]int64, len(names)),
		n:        n,
	}
	for i := range t.cols {
		c := &Column{
			n:       r.Int(),
			mins:    r.I64s(),
			widths:  r.U8s(),
			offsets: r.U32s(),
			words:   r.U64s(),
		}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("colstore: decoding column %d: %w", i, err)
		}
		if c.n != n {
			return nil, fmt.Errorf("colstore: column %d has %d rows, table has %d", i, c.n, n)
		}
		if err := c.validate(); err != nil {
			return nil, fmt.Errorf("colstore: column %d: %w", i, err)
		}
		c.computeMaxs()
		t.cols[i] = c
	}
	for i := range t.prefixes {
		if r.Bool() {
			t.buildPrefix(i, t.cols[i].Decode())
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("colstore: decoding table: %w", err)
	}
	return t, nil
}

// validate checks the structural invariants NewColumn establishes: per-block
// metadata slices sized to the block count, bit widths within [0, 64], and
// offsets forming the exact cumulative word layout the packed data occupies.
// Decoding a column that fails any of these would index out of range.
func (c *Column) validate() error {
	if c.n < 0 {
		return fmt.Errorf("negative length %d", c.n)
	}
	nBlocks := (c.n + BlockSize - 1) / BlockSize
	if len(c.mins) != nBlocks || len(c.widths) != nBlocks || len(c.offsets) != nBlocks {
		return fmt.Errorf("%d rows need %d blocks, have %d mins / %d widths / %d offsets",
			c.n, nBlocks, len(c.mins), len(c.widths), len(c.offsets))
	}
	words := 0
	for b := 0; b < nBlocks; b++ {
		w := int(c.widths[b])
		if w > 64 {
			return fmt.Errorf("block %d has bit width %d", b, w)
		}
		if int(c.offsets[b]) != words {
			return fmt.Errorf("block %d offset %d, expected %d", b, c.offsets[b], words)
		}
		cnt := BlockSize
		if b == nBlocks-1 {
			cnt = c.n - b*BlockSize
		}
		words += (cnt*w + 63) / 64
	}
	if len(c.words) != words {
		return fmt.Errorf("packed data has %d words, layout needs %d", len(c.words), words)
	}
	return nil
}

// Encode serializes bi for embedding in a snapshot section.
func (bi *BitmapIndex) Encode(w *wire.Writer) {
	w.I64(bi.min)
	w.Int(bi.card)
	w.Int(bi.n)
	w.U64s(bi.bits)
}

// DecodeBitmapIndex reads a bitmap index written by BitmapIndex.Encode and
// validates it against a table of n rows. The payload arrives CRC-verified,
// so validation guards structure (sizes, domain), not content.
func DecodeBitmapIndex(r *wire.Reader, n int) (*BitmapIndex, error) {
	bi := &BitmapIndex{
		min:  r.I64(),
		card: r.Int(),
		n:    r.Int(),
	}
	bi.bits = r.U64s()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("colstore: decoding bitmap index: %w", err)
	}
	if bi.n != n {
		return nil, fmt.Errorf("colstore: bitmap index covers %d rows, table has %d", bi.n, n)
	}
	if bi.card < 1 {
		return nil, fmt.Errorf("colstore: bitmap index declares cardinality %d", bi.card)
	}
	bi.nWords = (n + 63) / 64
	if len(bi.bits) != bi.card*bi.nWords {
		return nil, fmt.Errorf("colstore: bitmap index has %d words, %d values over %d rows need %d",
			len(bi.bits), bi.card, n, bi.card*bi.nWords)
	}
	return bi, nil
}
