package colstore

import (
	"fmt"
	"runtime"
	"sync"
)

// Table is a read-only collection of equally sized named columns. Indexes
// reorder rows at build time by constructing a new Table with Reorder; the
// store itself never mutates.
type Table struct {
	names    []string
	cols     []*Column
	prefixes [][]int64 // optional per-column prefix sums (len n+1), nil if absent
	bitmaps  []*BitmapIndex // optional per-column bitmap indexes, nil if absent
	n        int
}

// NewTable builds a table from column-major data. Every column must have the
// same length. Column name lookups are case-sensitive.
func NewTable(names []string, data [][]int64) (*Table, error) {
	if len(names) != len(data) {
		return nil, fmt.Errorf("colstore: %d names for %d columns", len(names), len(data))
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("colstore: table must have at least one column")
	}
	n := len(data[0])
	t := &Table{
		names:    append([]string(nil), names...),
		cols:     make([]*Column, len(data)),
		prefixes: make([][]int64, len(data)),
		n:        n,
	}
	for i, col := range data {
		if len(col) != n {
			return nil, fmt.Errorf("colstore: column %q has %d rows, want %d", names[i], len(col), n)
		}
		t.cols[i] = NewColumn(col)
	}
	return t, nil
}

// MustNewTable is NewTable for statically well-formed inputs (tests, examples).
func MustNewTable(names []string, data [][]int64) *Table {
	t, err := NewTable(names, data)
	if err != nil {
		panic(err)
	}
	return t
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.n }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// Name returns the name of column i.
func (t *Table) Name(i int) string { return t.names[i] }

// Names returns a copy of all column names in order.
func (t *Table) Names() []string { return append([]string(nil), t.names...) }

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, n := range t.names {
		if n == name {
			return i
		}
	}
	return -1
}

// Column returns the compressed column at position i.
func (t *Table) Column(i int) *Column { return t.cols[i] }

// Get returns the value at (col, row) in constant time.
func (t *Table) Get(col, row int) int64 { return t.cols[col].Get(row) }

// Raw decodes column i into a fresh slice.
func (t *Table) Raw(i int) []int64 { return t.cols[i].Decode() }

// Reorder returns a new table whose row r holds the original row perm[r].
// perm must be a permutation of [0, NumRows). Aggregate columns are rebuilt
// for the same set of columns that had them; bitmap indexes are positional
// and are not carried over — builders call EnableBitmapIndexes on the
// reordered table. Columns are independent, so they decode, permute, and
// recompress in parallel.
func (t *Table) Reorder(perm []int) *Table {
	nt := &Table{
		names:    append([]string(nil), t.names...),
		cols:     make([]*Column, len(t.cols)),
		prefixes: make([][]int64, len(t.cols)),
		n:        t.n,
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(t.cols) {
		workers = len(t.cols)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]int64, t.n)
			for c := w; c < len(t.cols); c += workers {
				raw := t.cols[c].Decode()
				for r, p := range perm {
					buf[r] = raw[p]
				}
				nt.cols[c] = NewColumn(buf)
				if t.prefixes[c] != nil {
					nt.buildPrefix(c, buf)
				}
			}
		}(w)
	}
	wg.Wait()
	return nt
}

// EnableAggregate builds a cumulative-aggregation companion for column c so
// SUM over exact sub-ranges resolves as two prefix lookups (§7.1 optimization
// 2). Safe to call more than once.
func (t *Table) EnableAggregate(c int) {
	if t.prefixes[c] != nil {
		return
	}
	t.buildPrefix(c, t.cols[c].Decode())
}

func (t *Table) buildPrefix(c int, raw []int64) {
	pre := make([]int64, len(raw)+1)
	var acc int64
	for i, v := range raw {
		acc += v
		pre[i+1] = acc
	}
	t.prefixes[c] = pre
}

// HasAggregate reports whether column c has a cumulative-aggregation column.
func (t *Table) HasAggregate(c int) bool { return t.prefixes[c] != nil }

// EnableBitmapIndexes builds a bitmap index for every column whose value
// spread fits maxCard (see NewBitmapIndex), replacing any existing set, and
// returns how many columns were indexed. Columns build in parallel — each
// pays one decode pass. The scan kernel consults the indexes automatically;
// maxCard <= 0 clears them. Not safe to call concurrently with queries.
func (t *Table) EnableBitmapIndexes(maxCard int) int {
	if maxCard <= 0 {
		t.bitmaps = nil
		return 0
	}
	bitmaps := make([]*BitmapIndex, len(t.cols))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(t.cols) {
		workers = len(t.cols)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := w; c < len(t.cols); c += workers {
				bitmaps[c] = NewBitmapIndex(t.cols[c], maxCard)
			}
		}(w)
	}
	wg.Wait()
	built := 0
	for _, bi := range bitmaps {
		if bi != nil {
			built++
		}
	}
	t.bitmaps = bitmaps
	return built
}

// Bitmap returns column c's bitmap index, or nil when the column has none
// (never built, or the column's domain was too wide to qualify).
func (t *Table) Bitmap(c int) *BitmapIndex {
	if t.bitmaps == nil {
		return nil
	}
	return t.bitmaps[c]
}

// SetBitmap attaches a decoded bitmap index to column c (the snapshot-load
// path). A nil index clears the column's entry.
func (t *Table) SetBitmap(c int, bi *BitmapIndex) {
	if t.bitmaps == nil {
		if bi == nil {
			return
		}
		t.bitmaps = make([]*BitmapIndex, len(t.cols))
	}
	t.bitmaps[c] = bi
}

// PrefixSum returns sum of column c over rows [start, end). It panics if the
// aggregate column was not enabled.
func (t *Table) PrefixSum(c, start, end int) int64 {
	pre := t.prefixes[c]
	return pre[end] - pre[start]
}

// SizeBytes reports the compressed footprint of all columns plus any
// aggregate companions and bitmap indexes.
func (t *Table) SizeBytes() int64 {
	var s int64
	for i, c := range t.cols {
		s += c.SizeBytes()
		if t.prefixes[i] != nil {
			s += int64(len(t.prefixes[i])) * 8
		}
		if bi := t.Bitmap(i); bi != nil {
			s += bi.SizeBytes()
		}
	}
	return s
}

// UncompressedSizeBytes reports the footprint of the table as plain arrays.
func (t *Table) UncompressedSizeBytes() int64 {
	return int64(t.n) * int64(len(t.cols)) * 8
}
