package colstore

import (
	"math/rand"
	"testing"
)

func testTable(t *testing.T, n int) (*Table, [][]int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	data := make([][]int64, 3)
	for c := range data {
		data[c] = make([]int64, n)
		for i := range data[c] {
			data[c][i] = rng.Int63n(1000) - 500
		}
	}
	tbl, err := NewTable([]string{"a", "b", "c"}, data)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, data
}

func TestTableBasics(t *testing.T) {
	tbl, data := testTable(t, 500)
	if tbl.NumRows() != 500 || tbl.NumCols() != 3 {
		t.Fatalf("shape = (%d, %d), want (500, 3)", tbl.NumRows(), tbl.NumCols())
	}
	if tbl.ColumnIndex("b") != 1 || tbl.ColumnIndex("zzz") != -1 {
		t.Fatalf("ColumnIndex lookup broken")
	}
	for c := range data {
		for r := range data[c] {
			if tbl.Get(c, r) != data[c][r] {
				t.Fatalf("Get(%d,%d) = %d, want %d", c, r, tbl.Get(c, r), data[c][r])
			}
		}
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable([]string{"a"}, [][]int64{{1}, {2}}); err == nil {
		t.Fatal("want error for mismatched names/columns")
	}
	if _, err := NewTable([]string{"a", "b"}, [][]int64{{1, 2}, {3}}); err == nil {
		t.Fatal("want error for ragged columns")
	}
	if _, err := NewTable(nil, nil); err == nil {
		t.Fatal("want error for empty table")
	}
}

func TestTableReorder(t *testing.T) {
	tbl, data := testTable(t, 300)
	perm := rand.New(rand.NewSource(3)).Perm(300)
	rt := tbl.Reorder(perm)
	for c := 0; c < 3; c++ {
		for r := 0; r < 300; r++ {
			if rt.Get(c, r) != data[c][perm[r]] {
				t.Fatalf("reordered Get(%d,%d) = %d, want %d", c, r, rt.Get(c, r), data[c][perm[r]])
			}
		}
	}
}

func TestTablePrefixSum(t *testing.T) {
	tbl, data := testTable(t, 400)
	tbl.EnableAggregate(2)
	if !tbl.HasAggregate(2) || tbl.HasAggregate(0) {
		t.Fatal("aggregate flags wrong")
	}
	for _, rg := range [][2]int{{0, 0}, {0, 400}, {17, 123}, {399, 400}} {
		var want int64
		for i := rg[0]; i < rg[1]; i++ {
			want += data[2][i]
		}
		if got := tbl.PrefixSum(2, rg[0], rg[1]); got != want {
			t.Fatalf("PrefixSum(2, %d, %d) = %d, want %d", rg[0], rg[1], got, want)
		}
	}
}

func TestTableReorderKeepsAggregates(t *testing.T) {
	tbl, data := testTable(t, 200)
	tbl.EnableAggregate(1)
	perm := rand.New(rand.NewSource(5)).Perm(200)
	rt := tbl.Reorder(perm)
	if !rt.HasAggregate(1) {
		t.Fatal("reorder dropped aggregate column")
	}
	var want int64
	for r := 10; r < 50; r++ {
		want += data[1][perm[r]]
	}
	if got := rt.PrefixSum(1, 10, 50); got != want {
		t.Fatalf("PrefixSum after reorder = %d, want %d", got, want)
	}
}

func TestTableSizeAccounting(t *testing.T) {
	tbl, _ := testTable(t, 1000)
	before := tbl.SizeBytes()
	tbl.EnableAggregate(0)
	if tbl.SizeBytes() <= before {
		t.Fatal("aggregate column not accounted in SizeBytes")
	}
	if tbl.UncompressedSizeBytes() != 3*1000*8 {
		t.Fatalf("UncompressedSizeBytes = %d", tbl.UncompressedSizeBytes())
	}
}
