package colstore

import "math/bits"

// Tombstones is a word-packed deletion bitmap over a table's physical rows:
// bit row&63 of word row>>6 set means the row is deleted and must not be
// delivered by any scan. A Tombstones value is immutable once published —
// mutation goes through AddTombstones, which copies — so readers that capture
// a pointer observe a stable snapshot of the deleted set for the whole scan
// while writers publish new versions behind an atomic pointer.
type Tombstones struct {
	words []uint64
	dead  int
	n     int // rows covered; bits at or beyond n are always zero
}

// AddTombstones returns a tombstone set covering n rows with every row listed
// in rows marked dead, in addition to everything already dead in t. t may be
// nil (no prior deletions) or cover fewer than n rows (the table grew); its
// words are copied, never aliased, so t remains valid for concurrent readers.
// Rows outside [0, n) are ignored; rows already dead do not recount. The
// second result is the number of rows newly marked dead.
func AddTombstones(t *Tombstones, n int, rows []int) (*Tombstones, int) {
	nt := &Tombstones{words: make([]uint64, (n+63)/64), n: n}
	if t != nil {
		copy(nt.words, t.words)
		nt.dead = t.dead
	}
	added := 0
	for _, row := range rows {
		if row < 0 || row >= n {
			continue
		}
		w, m := row>>6, uint64(1)<<uint(row&63)
		if nt.words[w]&m == 0 {
			nt.words[w] |= m
			added++
		}
	}
	nt.dead += added
	return nt, added
}

// TombstonesFromWords reconstructs a tombstone set from its word-packed
// serialized form (see Words). It validates the structural invariants —
// word-slice length matching ceil(n/64), no bits set at or beyond n — and
// returns ok=false when they do not hold, so a decoder can reject corrupted
// payloads instead of serving phantom deletions. The words slice is adopted,
// not copied.
func TombstonesFromWords(n int, words []uint64) (t *Tombstones, ok bool) {
	if n < 0 || len(words) != (n+63)/64 {
		return nil, false
	}
	if tail := n & 63; tail != 0 && len(words) > 0 {
		if words[len(words)-1]>>uint(tail) != 0 {
			return nil, false
		}
	}
	dead := 0
	for _, w := range words {
		dead += bits.OnesCount64(w)
	}
	return &Tombstones{words: words, dead: dead, n: n}, true
}

// Dead returns the number of deleted rows. Nil-safe.
func (t *Tombstones) Dead() int {
	if t == nil {
		return 0
	}
	return t.dead
}

// Len returns the number of rows the set covers. Nil-safe.
func (t *Tombstones) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Has reports whether row is deleted. Rows beyond the covered range are
// live. Nil-safe.
func (t *Tombstones) Has(row int) bool {
	if t == nil || row < 0 || row>>6 >= len(t.words) {
		return false
	}
	return t.words[row>>6]>>uint(row&63)&1 == 1
}

// Words exposes the packed bitmap for the scan kernel's AND-NOT fold and for
// serialization. It returns nil when nothing is dead — callers can hand the
// result straight to Scanner.SetTombstones and keep the unmasked fast paths —
// and the returned slice must be treated as read-only. Nil-safe.
func (t *Tombstones) Words() []uint64 {
	if t == nil || t.dead == 0 {
		return nil
	}
	return t.words
}

// Slice returns the tombstones restricted to rows [start*64, n) re-based at
// word boundary start, for scans over a word-aligned suffix of the covered
// rows (a side-log segment). The words are aliased, not copied, which is safe
// because t is immutable. Nil-safe; a start at or beyond the covered words
// returns nil.
func (t *Tombstones) Slice(start int) []uint64 {
	if t == nil || t.dead == 0 || start >= len(t.words) {
		return nil
	}
	return t.words[start:]
}
