package core

import "flood/internal/rmi"

// bucketer maps a dimension's values onto grid column indexes. Both
// implementations are monotone non-decreasing, the property projection
// relies on: bucket(u) <= bucket(v) whenever u <= v.
type bucketer interface {
	bucket(v int64, cols int) int
	// normalize maps v to flattened space [0, 1] — the metric space used
	// by kNN search.
	normalize(v int64) float64
	sizeBytes() int64
}

// cdfBucketer places v into column ⌊CDF(v)·c⌋ so each column holds roughly
// the same number of points (flattening, §5.1).
type cdfBucketer struct {
	cdf *rmi.CDF
}

func (b cdfBucketer) bucket(v int64, cols int) int { return b.cdf.Bucket(v, cols) }
func (b cdfBucketer) normalize(v int64) float64    { return b.cdf.At(v) }
func (b cdfBucketer) sizeBytes() int64             { return b.cdf.SizeBytes() }

// linearBucketer divides [min, max] into equally spaced columns (§3.1).
type linearBucketer struct {
	min     int64
	rangeSz float64 // max - min + 1
}

func newLinearBucketer(min, max int64) linearBucketer {
	return linearBucketer{min: min, rangeSz: float64(max) - float64(min) + 1}
}

func (b linearBucketer) bucket(v int64, cols int) int {
	if v < b.min {
		return 0
	}
	// Subtract in the float domain: v - b.min overflows int64 when an
	// unbounded query endpoint meets a negative minimum, and the wrapped
	// difference would map the largest keys to column 0.
	cf := (float64(v) - float64(b.min)) / b.rangeSz * float64(cols)
	if cf >= float64(cols-1) {
		return cols - 1
	}
	if cf <= 0 {
		return 0
	}
	return int(cf)
}

func (b linearBucketer) normalize(v int64) float64 {
	u := (float64(v) - float64(b.min)) / b.rangeSz
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

func (b linearBucketer) sizeBytes() int64 { return 16 }
