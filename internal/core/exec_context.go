// Context-aware execution entry points. Cancellation is cooperative and
// cheap: the sequential scan kernel polls the control every few blocks, and
// the morsel engine checks it at every morsel-claim boundary, so a canceled
// query stops within about a thousand rows (sequential) or one morsel
// (parallel) while the unconditioned paths stay untouched — a background
// context derives a nil control and executes exactly like Execute, with
// zero extra allocations.
package core

import (
	"context"
	"fmt"
	"time"

	"flood/internal/query"
)

// ExecuteContext is Execute under ctx: execution stops cooperatively once
// ctx is canceled or its deadline passes, returning the partial Stats (rows
// seen before the stop) together with query.ErrCanceled. An already-expired
// context returns promptly without scanning. With a background (never
// canceled) context the call is identical to Execute, allocation for
// allocation.
func (f *Flood) ExecuteContext(ctx context.Context, q query.Query, agg query.Aggregator) (query.Stats, error) {
	if ctx.Err() != nil {
		return query.Stats{}, query.ErrCanceled
	}
	ctl := query.GetControl(ctx.Done(), 0, time.Time{})
	st := f.execute(q, agg, 0, ctl, 0)
	err := ctl.Finish()
	ctl.Release()
	return st, err
}

// ExecuteControl is Execute threaded with an externally owned control, the
// building block composite indexes (delta buffers, the adaptive facade) and
// disjunction execution use to share one cancellation signal and one limit
// budget across several scans. cutover overrides the index's parallel
// cutover for this query (0 keeps the default, negative pins it
// sequential). A nil control with cutover 0 is identical to Execute. The
// caller owns the control's lifecycle: Release it only after every
// execution threading it has returned.
func (f *Flood) ExecuteControl(ctl *query.Control, q query.Query, agg query.Aggregator, cutover int) query.Stats {
	return f.execute(q, agg, 0, ctl, cutover)
}

// ExecuteSequentialControl is ExecuteSequential threaded with an externally
// owned control — the per-query building block of the context-aware batched
// serving paths.
func (f *Flood) ExecuteSequentialControl(ctl *query.Control, q query.Query, agg query.Aggregator) query.Stats {
	return f.execute(q, agg, 1, ctl, 0)
}

// ExecuteBatchContext is ExecuteBatch under ctx: one cancellation stops
// every query in the batch. Queries not yet started when the stop lands are
// skipped (their Stats stay zero); queries mid-scan stop at their next
// block-group boundary. The partial per-query stats are returned together
// with query.ErrCanceled.
func (f *Flood) ExecuteBatchContext(ctx context.Context, queries []query.Query, aggs []query.Aggregator) ([]query.Stats, error) {
	if ctx.Err() != nil {
		return make([]query.Stats, len(queries)), query.ErrCanceled
	}
	ctl := query.GetControl(ctx.Done(), 0, time.Time{})
	if ctl == nil {
		return f.ExecuteBatch(queries, aggs), nil
	}
	if len(queries) != len(aggs) {
		ctl.Release()
		panic(fmt.Sprintf("core: ExecuteBatch got %d queries but %d aggregators", len(queries), len(aggs)))
	}
	stats := make([]query.Stats, len(queries))
	RunBatch(len(queries), func(i int) {
		if ctl.Stopped() {
			return
		}
		stats[i] = f.execute(queries[i], aggs[i], 1, ctl, 0)
	})
	err := ctl.Finish()
	ctl.Release()
	return stats, err
}
