// Morsel-driven parallel query execution (§8 "Concurrency and parallelism":
// different cells can be refined and scanned simultaneously).
//
// The scan work of one query is chopped into fixed-size, block-aligned
// morsels (~64K rows) that workers claim off a shared atomic cursor, so load
// balances even when refined ranges are wildly uneven. Workers come from a
// process-wide persistent pool shared by every index and by batched serving;
// the goroutine that issued the query always participates, so a query never
// waits for a pool slot and nesting (a parallel scan issued from inside a
// batch task) cannot deadlock: nobody ever blocks waiting for a queued task
// to be *scheduled*, only for claimed morsels to be *finished*.
//
// Each worker scans with its own pooled query.Scanner into its own
// aggregator clone (query.Mergeable) and accumulates private Stats; partial
// results merge under a lock once the worker's claim loop drains. Results
// and the Scanned/Matched/ExactMatched counters are therefore identical to a
// sequential run.
package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"flood/internal/colstore"
	"flood/internal/query"
)

// MorselRows is the largest morsel handed to a worker: big enough to
// amortize the claim (one atomic add) and the final merge, small enough that
// a skewed range still splits across cores. It is a multiple of
// colstore.BlockSize so interior morsel boundaries align with storage blocks.
const MorselRows = 64 * 1024

// minMorselRows bounds how finely a small parallel scan is chopped; below
// this, per-morsel overhead would eat the parallel win.
const minMorselRows = 8 * 1024

// defaultParallelCutover is the default estimated scanned-row count at which
// Execute leaves the zero-alloc sequential path for the morsel engine: the
// point where the scan kernel's per-row cost (a few ns) clearly exceeds the
// fixed cost of dispatching helpers and merging clones (a few µs).
const defaultParallelCutover = 32 * 1024

// --- persistent worker pool ---

// workerPool is a process-wide set of goroutines fed by a task queue. Tasks
// are *helpers*: claim loops that drain a job's shared cursor and exit.
// Submission never blocks (a full queue just means fewer helpers), and a
// helper scheduled after its job drained returns without touching the job's
// data, so queued helpers can safely outlive the query that submitted them.
type workerPool struct {
	tasks   chan poolTask
	mu      sync.Mutex
	spawned int
}

// poolTask is one queued helper: either a plain closure (the build and
// refinement paths) or a (job, generation) pair — morsel jobs are recycled,
// so they submit by value instead of binding a fresh closure per query, and
// the generation lets a stale helper detect that its job has since been
// retired and reused (see morselJob.helperRun).
type poolTask struct {
	fn  func()
	job *morselJob
	gen uint64
}

func (t poolTask) run() {
	if t.fn != nil {
		t.fn()
		return
	}
	t.job.helperRun(t.gen)
}

var execPool = &workerPool{tasks: make(chan poolTask, 1024)}

// maxWorkers is the concurrency target, re-read on every query so tests and
// servers that adjust GOMAXPROCS see the change without restarting the pool.
func maxWorkers() int { return runtime.GOMAXPROCS(0) }

// ensure tops the pool up to n resident goroutines.
func (p *workerPool) ensure(n int) {
	p.mu.Lock()
	for p.spawned < n {
		p.spawned++
		go p.worker()
	}
	p.mu.Unlock()
}

func (p *workerPool) worker() {
	for t := range p.tasks {
		t.run()
	}
}

// offer enqueues up to helpers copies of t without blocking: a full queue
// just means fewer helpers (the work still completes via the participating
// caller and whichever helpers got in). Helpers are capped at GOMAXPROCS-1 —
// beyond that they add no parallelism, and the cap keeps a caller-supplied
// worker count from permanently growing the resident pool.
func (p *workerPool) offer(helpers int, t poolTask) {
	if max := maxWorkers() - 1; helpers > max {
		helpers = max
	}
	if helpers <= 0 {
		return
	}
	p.ensure(helpers)
	for i := 0; i < helpers; i++ {
		select {
		case p.tasks <- t:
		default:
			return
		}
	}
}

// fanOut offers up to helpers copies of run to the pool, then runs one claim
// loop on the calling goroutine. run must be safe to execute concurrently
// and must be a no-op once its job's cursor is exhausted.
func (p *workerPool) fanOut(helpers int, run func()) {
	p.offer(helpers, poolTask{fn: run})
	run()
}

// poolFor runs fn over [0, n) in grain-sized chunks claimed from a shared
// cursor by pool workers plus the calling goroutine. It returns once every
// chunk has finished.
func poolFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks == 1 {
		fn(0, n)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(chunks)
	run := func() {
		for {
			c := int(cursor.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
			wg.Done()
		}
	}
	helpers := maxWorkers() - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	execPool.fanOut(helpers, run)
	wg.Wait()
}

// parallelFor splits [0, n) into one contiguous chunk per available worker
// and runs fn on each concurrently through the persistent pool. Used by
// Build for the embarrassingly parallel stages; results are identical to a
// sequential run.
func parallelFor(n int, fn func(lo, hi int)) {
	workers := maxWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	poolFor(n, (n+workers-1)/workers, fn)
}

// RunBatch runs fn(i) for every i in [0, n) across the shared worker pool
// and returns when all calls complete. The calling goroutine participates,
// so RunBatch makes progress even when the pool is saturated, and calls
// issued from inside another batch cannot deadlock. Exported for sibling
// packages (the delta index) that batch work over the same pool.
func RunBatch(n int, fn func(i int)) {
	poolFor(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// --- morsel scan engine ---

// morsel is one unit of claimable scan work: a physical row range plus the
// residual-filter mask inherited from the scan range it was cut from.
type morsel struct {
	start, end int32
	mask       uint64
}

// morselTarget picks a morsel size for a scan of est rows across workers:
// roughly four morsels per worker for load balance, clamped to
// [minMorselRows, MorselRows] and rounded to a block multiple.
func morselTarget(est, workers int) int {
	t := est / (4 * workers)
	if t > MorselRows {
		t = MorselRows
	}
	if t < minMorselRows {
		t = minMorselRows
	}
	return t - t%colstore.BlockSize
}

// appendMorsels chops refined scan ranges into morsels of about target rows.
// Interior split points sit at absolute multiples of target, so they align
// with storage blocks and the per-block scan kernel visits exactly the same
// blocks as a sequential scan (Scanned/Matched stay bit-identical).
func appendMorsels(dst []morsel, ranges []scanRange, target int) []morsel {
	for _, rg := range ranges {
		s, e := int(rg.start), int(rg.end)
		for s < e {
			next := (s/target + 1) * target
			if next > e {
				next = e
			}
			dst = append(dst, morsel{start: int32(s), end: int32(next), mask: rg.mask})
			s = next
		}
	}
	return dst
}

// maskDims expands a residual-filter bitmask into dimension indexes.
func maskDims(mask uint64, buf []int) []int {
	buf = buf[:0]
	for mask != 0 {
		buf = append(buf, bits.TrailingZeros64(mask))
		mask &= mask - 1
	}
	return buf
}

// morselJob is the shared state of one parallel scan: the morsel list, the
// claim cursor, and the merge point. wg counts morsels, not helpers — a
// worker releases its claimed morsels only after folding its partial
// aggregate and stats into the job, so wg.Wait() implies the merge is done.
//
// Jobs are pooled across queries. Helpers queued for a finished query may
// still hold the job pointer, so reuse is guarded by (gen, entered): a
// helper atomically registers in entered, checks that the generation it was
// queued with is still current, and only then touches the rest of the job;
// retire bumps gen first and then waits entered out, so a recycled job's
// plain fields are never written while a stale helper can read them.
type morselJob struct {
	f                       *Flood
	q                       query.Query
	ctl                     *query.Control // nil: unconditioned scan
	tomb                    []uint64       // tombstone snapshot captured by execute
	morsels                 []morsel
	cursor                  atomic.Int64
	gen                     atomic.Uint64
	entered                 atomic.Int64
	wg                      sync.WaitGroup
	mu                      sync.Mutex
	agg                     query.Mergeable
	scanned, matched, exact int64
}

var morselJobPool = sync.Pool{New: func() any { return new(morselJob) }}

// helperRun is the pool-helper entry point: it joins the job only when gen
// still matches the generation the helper was queued with. The entered
// counter is raised before the check and lowered after run returns, giving
// retire a fence to wait on.
func (j *morselJob) helperRun(gen uint64) {
	j.entered.Add(1)
	if j.gen.Load() == gen {
		j.run()
	}
	j.entered.Add(-1)
}

// retire invalidates the job for any helper still queued (or racing in) and
// waits out helpers already past the generation check, after which the
// job's fields may be rewritten and the job pooled. Called after wg.Wait,
// so the cursor is exhausted and any straggler's run() returns immediately —
// the spin is a few scheduler yields at most.
func (j *morselJob) retire() {
	j.gen.Add(1)
	for j.entered.Load() != 0 {
		runtime.Gosched()
	}
	j.f = nil
	j.q = query.Query{}
	j.ctl = nil
	j.tomb = nil
	j.morsels = nil
	j.agg = nil
	j.cursor.Store(0)
	j.scanned, j.matched, j.exact = 0, 0, 0
}

// run is one worker's claim loop; it executes on the issuing goroutine and
// on any pool helpers the job attracted. The scanner and aggregator clone
// are acquired lazily so a helper that arrives after the job drained (or
// loses every claim race) allocates nothing and never touches j.q.
func (j *morselJob) run() {
	if int(j.cursor.Load()) >= len(j.morsels) {
		return
	}
	var (
		sc       *query.Scanner
		agg      query.Mergeable
		st       query.Stats
		dimsBuf  [64]int
		dims     []int
		lastMask uint64
		haveDims bool
		done     int
	)
	for {
		i := int(j.cursor.Add(1)) - 1
		if i >= len(j.morsels) {
			break
		}
		if j.ctl.Stopped() {
			// Cancellation/limit stop: keep claiming so the morsel count
			// drains (wg.Wait depends on it), but skip the scan work. The
			// job finishes in O(remaining morsels) atomic adds.
			done++
			continue
		}
		if sc == nil {
			sc = query.GetScanner(j.f.t)
			sc.SetControl(j.ctl)
			sc.SetTombstones(j.tomb)
			// Prefer a recycled clone (compatibility only reads immutable
			// config, so no lock); otherwise clone under the job lock —
			// another worker may be Merge-ing into j.agg right now, and a
			// user-supplied Mergeable is free to read state in CloneEmpty
			// that Merge mutates.
			if agg = query.GetClone(j.agg); agg == nil {
				j.mu.Lock()
				agg = j.agg.CloneEmpty()
				j.mu.Unlock()
			}
		}
		m := j.morsels[i]
		if m.mask == 0 {
			s, mt := sc.ScanExactRange(int(m.start), int(m.end), agg)
			st.Scanned += s
			st.Matched += mt
			st.ExactMatched += mt
		} else {
			if !haveDims || m.mask != lastMask {
				dims = maskDims(m.mask, dimsBuf[:0])
				lastMask, haveDims = m.mask, true
			}
			s, mt := sc.ScanRange(j.q, dims, int(m.start), int(m.end), agg)
			st.Scanned += s
			st.Matched += mt
		}
		done++
	}
	// A worker that only drained stopped claims has no scanner or partial
	// aggregate to fold in, but must still release its claimed morsels.
	if sc != nil {
		sc.Release()
		j.mu.Lock()
		j.agg.Merge(agg)
		j.scanned += st.Scanned
		j.matched += st.Matched
		j.exact += st.ExactMatched
		j.mu.Unlock()
		query.PutClone(agg)
	}
	j.wg.Add(-done)
}

// scanParallel runs the scan phase of q over ranges on the morsel engine,
// merging worker partials into agg and the scan counters into st. est is the
// exact row count of ranges (already computed by the caller); workers <= 0
// uses GOMAXPROCS. Falls back to the sequential kernel when the work does
// not split.
func (f *Flood) scanParallel(q query.Query, ranges []scanRange, agg query.Mergeable, st *query.Stats, workers, est int, es *execScratch, ctl *query.Control, tomb []uint64) {
	if workers <= 0 {
		workers = maxWorkers()
	}
	es.morsels = appendMorsels(es.morsels[:0], ranges, morselTarget(est, workers))
	if len(es.morsels) <= 1 || workers == 1 {
		f.scan(q, ranges, agg, st, ctl, tomb)
		return
	}
	j := morselJobPool.Get().(*morselJob)
	j.f, j.q, j.ctl, j.tomb, j.morsels, j.agg = f, q, ctl, tomb, es.morsels, agg
	j.wg.Add(len(j.morsels))
	helpers := workers - 1
	if helpers > len(j.morsels)-1 {
		helpers = len(j.morsels) - 1
	}
	execPool.offer(helpers, poolTask{job: j, gen: j.gen.Load()})
	j.run()
	j.wg.Wait()
	st.Scanned += j.scanned
	st.Matched += j.matched
	st.ExactMatched += j.exact
	j.retire()
	morselJobPool.Put(j)
}

// ExecuteParallel is Execute with the scan phase forced onto the morsel
// engine regardless of the cost-based cutover: projection and refinement run
// as usual, then up to workers goroutines (the caller plus pool helpers)
// claim morsels. workers <= 0 uses GOMAXPROCS; workers == 1 is the
// sequential path; counts above GOMAXPROCS are capped to it (extra helpers
// add no parallelism). Results and scan counters are identical to Execute.
//
// Most callers should use Execute, which picks this path automatically for
// mergeable aggregators once the estimated scan volume clears the cutover.
func (f *Flood) ExecuteParallel(q query.Query, agg query.Mergeable, workers int) query.Stats {
	if workers <= 0 {
		workers = maxWorkers()
	}
	return f.execute(q, agg, workers, nil, 0)
}

// ExecuteSequential is Execute pinned to the sequential scan path, whatever
// the cutover or aggregator would choose. It is the per-query building block
// of the batched serving paths (this package's ExecuteBatch and the delta
// index's), which supply parallelism across queries instead of within them.
func (f *Flood) ExecuteSequential(q query.Query, agg query.Aggregator) query.Stats {
	return f.execute(q, agg, 1, nil, 0)
}

// ExecuteBatch executes queries[i] into aggs[i] and returns per-query stats.
// The batch shares the persistent worker pool across queries: each query
// runs the zero-alloc sequential path while the batch itself fans out across
// cores (inter-query parallelism), the arrangement that maximizes throughput
// for high-QPS serving. len(queries) must equal len(aggs); aggregators are
// not reset. The index is read-only, so any number of ExecuteBatch and
// Execute calls may run concurrently.
func (f *Flood) ExecuteBatch(queries []query.Query, aggs []query.Aggregator) []query.Stats {
	if len(queries) != len(aggs) {
		panic(fmt.Sprintf("core: ExecuteBatch got %d queries but %d aggregators", len(queries), len(aggs)))
	}
	stats := make([]query.Stats, len(queries))
	RunBatch(len(queries), func(i int) {
		stats[i] = f.execute(queries[i], aggs[i], 1, nil, 0)
	})
	return stats
}
