package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"flood/internal/colstore"
	"flood/internal/query"
)

// sequentialOnly hides an aggregator's Mergeable methods so Execute is
// forced onto the sequential scan path, whatever the cutover says.
type sequentialOnly struct{ query.Aggregator }

// withGOMAXPROCS runs fn under the given GOMAXPROCS setting, restoring the
// previous value afterwards. The worker pool re-reads GOMAXPROCS on every
// query, so the setting takes effect immediately.
func withGOMAXPROCS(t *testing.T, procs int, fn func(t *testing.T)) {
	t.Run(fmt.Sprintf("gomaxprocs%d", procs), func(t *testing.T) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		fn(t)
	})
}

// assertScanStatsEqual compares the scan-phase counters that must be
// bit-identical between sequential and parallel execution.
func assertScanStatsEqual(t *testing.T, label string, seq, par query.Stats) {
	t.Helper()
	if par.Scanned != seq.Scanned || par.Matched != seq.Matched || par.ExactMatched != seq.ExactMatched {
		t.Fatalf("%s: parallel stats (scanned=%d matched=%d exact=%d) != sequential (scanned=%d matched=%d exact=%d)",
			label, par.Scanned, par.Matched, par.ExactMatched, seq.Scanned, seq.Matched, seq.ExactMatched)
	}
	if par.CellsVisited != seq.CellsVisited || par.ScanRanges != seq.ScanRanges || par.RangesRefined != seq.RangesRefined {
		t.Fatalf("%s: parallel index stats (cells=%d ranges=%d refined=%d) != sequential (cells=%d ranges=%d refined=%d)",
			label, par.CellsVisited, par.ScanRanges, par.RangesRefined, seq.CellsVisited, seq.ScanRanges, seq.RangesRefined)
	}
}

// TestAdaptiveParallelEquivalence pins the tentpole invariant: with the
// cutover forced to 1 row, every query takes the morsel-driven path (when
// more than one worker is available) and must produce exactly the results
// and scan counters of the sequential path.
func TestAdaptiveParallelEquivalence(t *testing.T) {
	tbl, data := makeData(t, 30000, 4, 301)
	layout := Layout{GridDims: []int{0, 1}, GridCols: []int{16, 8}, SortDim: 2, Flatten: true}
	idx, err := Build(tbl, layout, Options{ParallelCutover: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 4} {
		withGOMAXPROCS(t, procs, func(t *testing.T) {
			rng := rand.New(rand.NewSource(302))
			for trial := 0; trial < 30; trial++ {
				q := randomQuery(rng, data, 4)
				seq := query.NewCount()
				seqSt := idx.Execute(q, sequentialOnly{seq})
				par := query.NewCount()
				parSt := idx.Execute(q, par)
				if par.Result() != seq.Result() {
					t.Fatalf("trial %d: adaptive count %d != sequential %d", trial, par.Result(), seq.Result())
				}
				if want := bruteCount(data, q); par.Result() != want {
					t.Fatalf("trial %d: count %d != brute force %d", trial, par.Result(), want)
				}
				assertScanStatsEqual(t, fmt.Sprintf("trial %d", trial), seqSt, parSt)
			}
		})
	}
}

// TestParallelAllAggregators runs every mergeable aggregator through the
// forced-parallel path against its sequential result.
func TestParallelAllAggregators(t *testing.T) {
	tbl, data := makeData(t, 20000, 4, 303)
	tbl.EnableAggregate(3)
	layout := Layout{GridDims: []int{0, 1}, GridCols: []int{8, 8}, SortDim: 2, Flatten: true}
	idx, err := Build(tbl, layout, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(304))
	mk := func() []query.Mergeable {
		return []query.Mergeable{query.NewCount(), query.NewSum(3), query.NewMin(3), query.NewMax(3)}
	}
	for trial := 0; trial < 20; trial++ {
		q := randomQuery(rng, data, 3)
		seqs, pars := mk(), mk()
		for i := range seqs {
			idx.Execute(q, sequentialOnly{seqs[i]})
			idx.ExecuteParallel(q, pars[i], 5)
			if pars[i].Result() != seqs[i].Result() {
				t.Fatalf("trial %d agg %d: parallel %d != sequential %d",
					trial, i, pars[i].Result(), seqs[i].Result())
			}
		}
	}
}

// randomLayout builds a valid random layout over nDims dimensions.
func randomLayout(rng *rand.Rand, nDims int) Layout {
	perm := rng.Perm(nDims)
	g := 1 + rng.Intn(nDims-1)
	l := Layout{
		GridDims: perm[:g],
		GridCols: make([]int, g),
		SortDim:  -1,
		Flatten:  rng.Intn(2) == 0,
	}
	for i := range l.GridCols {
		l.GridCols[i] = 1 + rng.Intn(8)
	}
	if rng.Intn(4) > 0 {
		l.SortDim = perm[g]
	}
	return l
}

// TestParallelRandomLayoutsProperty is the property test over random
// layouts: whatever grid shape, sort dimension, and refinement mode are in
// play, sequential, adaptive-parallel, forced-parallel, and batched
// execution all agree with brute force.
func TestParallelRandomLayoutsProperty(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	tbl, data := makeData(t, 8000, 5, 305)
	rng := rand.New(rand.NewSource(306))
	for trial := 0; trial < 12; trial++ {
		layout := randomLayout(rng, 5)
		mode := RefinementMode(rng.Intn(3))
		idx, err := Build(tbl, layout, Options{Refinement: mode, ParallelCutover: 1})
		if err != nil {
			t.Fatalf("layout %s: %v", layout, err)
		}
		queries := make([]query.Query, 8)
		aggs := make([]query.Aggregator, len(queries))
		for i := range queries {
			queries[i] = randomQuery(rng, data, 5)
			aggs[i] = query.NewCount()
		}
		batchStats := idx.ExecuteBatch(queries, aggs)
		for i, q := range queries {
			want := bruteCount(data, q)
			if got := aggs[i].(*query.Count).Result(); got != want {
				t.Fatalf("layout %s mode %d: batch count %d != brute %d", layout, mode, got, want)
			}
			seq := query.NewCount()
			seqSt := idx.Execute(q, sequentialOnly{seq})
			par := query.NewCount()
			parSt := idx.ExecuteParallel(q, par, 3)
			if par.Result() != want || seq.Result() != want {
				t.Fatalf("layout %s mode %d: parallel %d / sequential %d != brute %d",
					layout, mode, par.Result(), seq.Result(), want)
			}
			assertScanStatsEqual(t, layout.String(), seqSt, parSt)
			if batchStats[i].Scanned != seqSt.Scanned || batchStats[i].Matched != seqSt.Matched {
				t.Fatalf("layout %s: batch stats (scanned=%d matched=%d) != sequential (scanned=%d matched=%d)",
					layout, batchStats[i].Scanned, batchStats[i].Matched, seqSt.Scanned, seqSt.Matched)
			}
		}
	}
}

// TestRefineParallelEquivalence drives a query across enough cells to cross
// refineParallelRanges, so refinement probes fan out over the pool, and
// checks the refined results against GOMAXPROCS=1.
func TestRefineParallelEquivalence(t *testing.T) {
	tbl, data := makeData(t, 40000, 3, 307)
	layout := Layout{GridDims: []int{0}, GridCols: []int{256}, SortDim: 1, Flatten: true}
	idx, err := Build(tbl, layout, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := query.NewQuery(3).WithRange(0, 0, 1000).WithRange(1, 0, 800)
	var want int64
	var wantSt query.Stats
	withGOMAXPROCS(t, 1, func(t *testing.T) {
		agg := query.NewCount()
		wantSt = idx.Execute(q, agg)
		want = agg.Result()
		if wantSt.RangesRefined < refineParallelRanges {
			t.Fatalf("query refines %d ranges, need >= %d to exercise the parallel path",
				wantSt.RangesRefined, refineParallelRanges)
		}
	})
	withGOMAXPROCS(t, 4, func(t *testing.T) {
		agg := query.NewCount()
		st := idx.Execute(q, agg)
		if agg.Result() != want {
			t.Fatalf("parallel refine: count %d != %d", agg.Result(), want)
		}
		assertScanStatsEqual(t, "refine", wantSt, st)
		if bc := bruteCount(data, q); want != bc {
			t.Fatalf("count %d != brute force %d", want, bc)
		}
	})
}

// TestExecuteBatchMatchesSequential checks the batched serving path against
// one-at-a-time execution, including the per-query stats.
func TestExecuteBatchMatchesSequential(t *testing.T) {
	tbl, data := makeData(t, 15000, 4, 308)
	tbl.EnableAggregate(3)
	idx, err := Build(tbl, Layout{GridDims: []int{0, 1}, GridCols: []int{8, 4}, SortDim: 2, Flatten: true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 4} {
		withGOMAXPROCS(t, procs, func(t *testing.T) {
			rng := rand.New(rand.NewSource(309))
			queries := make([]query.Query, 40)
			batchAggs := make([]query.Aggregator, len(queries))
			seqAggs := make([]query.Aggregator, len(queries))
			for i := range queries {
				queries[i] = randomQuery(rng, data, 4)
				switch i % 4 {
				case 0:
					batchAggs[i], seqAggs[i] = query.NewCount(), query.NewCount()
				case 1:
					batchAggs[i], seqAggs[i] = query.NewSum(3), query.NewSum(3)
				case 2:
					batchAggs[i], seqAggs[i] = query.NewMin(3), query.NewMin(3)
				default:
					batchAggs[i], seqAggs[i] = query.NewMax(3), query.NewMax(3)
				}
			}
			batchStats := idx.ExecuteBatch(queries, batchAggs)
			for i := range queries {
				seqSt := idx.Execute(queries[i], sequentialOnly{seqAggs[i]})
				if batchAggs[i].Result() != seqAggs[i].Result() {
					t.Fatalf("query %d: batch result %d != sequential %d",
						i, batchAggs[i].Result(), seqAggs[i].Result())
				}
				assertScanStatsEqual(t, fmt.Sprintf("query %d", i), seqSt, batchStats[i])
			}
		})
	}
}

func TestExecuteBatchLenMismatchPanics(t *testing.T) {
	tbl, _ := makeData(t, 100, 3, 310)
	idx, _ := Build(tbl, Layout{GridDims: []int{0}, GridCols: []int{4}, SortDim: 1, Flatten: true}, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched queries/aggs lengths must panic")
		}
	}()
	idx.ExecuteBatch(make([]query.Query, 2), make([]query.Aggregator, 1))
}

// TestAppendMorsels pins the morsel splitter: full coverage, no overlap,
// block-aligned interior boundaries, masks inherited from the source range.
func TestAppendMorsels(t *testing.T) {
	ranges := []scanRange{
		{start: 100, end: 70000, mask: 0},
		{start: 70000, end: 70001, mask: 5},
		{start: 80000, end: 80000, mask: 1}, // empty: dropped
		{start: 90000, end: 300000, mask: 9},
	}
	const target = MorselRows
	got := appendMorsels(nil, ranges, target)
	var i int
	for _, rg := range ranges {
		s, e := rg.start, rg.end
		for s < e {
			if i >= len(got) {
				t.Fatalf("ran out of morsels covering range [%d, %d)", rg.start, rg.end)
			}
			m := got[i]
			if m.start != s || m.mask != rg.mask {
				t.Fatalf("morsel %d = %+v, want start %d mask %d", i, m, s, rg.mask)
			}
			if m.end != e && m.end%target != 0 {
				t.Fatalf("morsel %d interior boundary %d not target-aligned", i, m.end)
			}
			if m.end <= m.start || m.end > e {
				t.Fatalf("morsel %d = %+v escapes range [%d, %d)", i, m, rg.start, rg.end)
			}
			s = m.end
			i++
		}
	}
	if i != len(got) {
		t.Fatalf("%d extra morsels", len(got)-i)
	}
}

func TestMorselTargetBounds(t *testing.T) {
	for _, tc := range []struct{ est, workers, want int }{
		{100, 8, minMorselRows},      // tiny scans stay coarse
		{100_000_000, 8, MorselRows}, // huge scans cap at MorselRows
		{1_000_000, 8, 31232},        // 1M/32 rounded down to a block multiple
	} {
		if got := morselTarget(tc.est, tc.workers); got != tc.want {
			t.Errorf("morselTarget(%d, %d) = %d, want %d", tc.est, tc.workers, got, tc.want)
		}
		if got := morselTarget(tc.est, tc.workers); got%colstore.BlockSize != 0 {
			t.Errorf("morselTarget(%d, %d) = %d not block-aligned", tc.est, tc.workers, got)
		}
	}
}

// --- benchmarks (recorded in BENCH_scan.json via `make bench`) ---

// parallelBenchIndex builds the 1M-row index behind the parallel-vs-
// sequential headline numbers: two grid dimensions, a sort dimension, and
// queries at ~2-4% selectivity so the scan volume clears the cutover.
func parallelBenchIndex(b *testing.B) (*Flood, []query.Query) {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	n := 1_000_000
	data := make([][]int64, 3)
	for d := range data {
		data[d] = make([]int64, n)
		for i := range data[d] {
			data[d][i] = rng.Int63n(1 << 20)
		}
	}
	tbl, err := colstore.NewTable([]string{"a", "b", "c"}, data)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := Build(tbl, Layout{GridDims: []int{0, 1}, GridCols: []int{32, 32}, SortDim: 2, Flatten: true}, Options{})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]query.Query, 64)
	for i := range queries {
		lo0 := rng.Int63n(1 << 19)
		lo1 := rng.Int63n(1 << 19)
		w := int64(1 << 18) // ~1/4 of the domain per dim -> ~6% of cells
		queries[i] = query.NewQuery(3).WithRange(0, lo0, lo0+w).WithRange(1, lo1, lo1+w)
	}
	return idx, queries
}

// BenchmarkParallelExecute1M compares the PR 1 sequential scan against the
// morsel engine on 1M rows. "adaptive" is plain Execute (cost-based
// cutover); workersN forces the engine width. On a single-core host the
// parallel variants degenerate to the sequential path plus dispatch cost.
func BenchmarkParallelExecute1M(b *testing.B) {
	idx, queries := parallelBenchIndex(b)
	b.Run("sequential", func(b *testing.B) {
		agg := query.NewCount()
		// Hoist the interface conversion so the wrapper struct is boxed
		// once, not per iteration.
		var seq query.Aggregator = sequentialOnly{agg}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			agg.Reset()
			idx.Execute(queries[i%len(queries)], seq)
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		agg := query.NewCount()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			agg.Reset()
			idx.Execute(queries[i%len(queries)], agg)
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			agg := query.NewCount()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg.Reset()
				idx.ExecuteParallel(queries[i%len(queries)], agg, workers)
			}
		})
	}
}

// BenchmarkExecuteBatch1M measures the batched serving path: 64 queries per
// op, one-at-a-time vs fanned out over the shared pool.
func BenchmarkExecuteBatch1M(b *testing.B) {
	idx, queries := parallelBenchIndex(b)
	aggs := make([]query.Aggregator, len(queries))
	for i := range aggs {
		aggs[i] = query.NewCount()
	}
	reset := func() {
		for _, a := range aggs {
			a.Reset()
		}
	}
	b.Run("loop", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reset()
			for j, q := range queries {
				idx.ExecuteSequential(q, aggs[j])
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reset()
			idx.ExecuteBatch(queries, aggs)
		}
	})
}
