package core

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flood/internal/colstore"
	"flood/internal/plm"
	"flood/internal/query"
	"flood/internal/rmi"
)

// Flood is a built index: the table reordered into grid traversal order, the
// cell table mapping cells to physical ranges, per-dimension bucketing
// models, and per-cell refinement models.
type Flood struct {
	t      *colstore.Table
	layout Layout
	opts   Options

	buckets   []bucketer // one per grid dimension
	strides   []int      // mixed-radix strides per grid dimension
	numCells  int
	cellStart []int32      // len numCells+1: physical start per cell
	models    []*plm.Model // per cell, nil when empty or refinement is not model-based

	// Cell-size statistics for the cost model (§4.1.1).
	nonEmptyCells  int
	avgCellSize    float64
	medianCellSize float64
	p99CellSize    float64

	// parallelCutover is the estimated scanned-row count at or above which
	// Execute leaves the zero-alloc sequential scan for the morsel-driven
	// parallel engine (see exec_parallel.go).
	parallelCutover int

	// tomb is the current tombstone set (nil until the first delete). Each
	// published value is immutable; mutators install a copied superset (see
	// mutate.go), and every query captures the pointer exactly once at scan
	// setup, so one Execute observes one consistent deleted set end to end
	// even while deletes race it.
	tomb atomic.Pointer[colstore.Tombstones]
}

type scanRange struct {
	cell       int32
	start, end int32
	mask       uint64 // residual filter dims needing per-row checks
}

// execScratch holds the per-query working set of Execute — projection
// coordinates, the scan-range list, and the parallel path's morsel list — so
// the steady-state query path allocates nothing. Scratch is pooled
// package-wide; slices grow to each index's dimensionality once and are
// reused.
type execScratch struct {
	ranges  []scanRange
	morsels []morsel
	los     []int
	his     []int
	coords  []int
	present []bool
}

var scratchPool = sync.Pool{New: func() any { return new(execScratch) }}

func (es *execScratch) grids(g int) (los, his, coords []int, present []bool) {
	if cap(es.los) < g {
		es.los = make([]int, g)
		es.his = make([]int, g)
		es.coords = make([]int, g)
		es.present = make([]bool, g)
	}
	return es.los[:g], es.his[:g], es.coords[:g], es.present[:g]
}

// Build constructs a Flood index over t with the given layout. The input
// table is not modified; the index holds a reordered copy.
func Build(t *colstore.Table, layout Layout, opts Options) (*Flood, error) {
	if err := layout.Validate(t.NumCols()); err != nil {
		return nil, err
	}
	n := t.NumRows()
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("core: table has %d rows; max supported is %d", n, math.MaxInt32)
	}
	if t.NumCols() > 64 {
		// Residual filter sets are dimension bitmasks in one uint64.
		return nil, fmt.Errorf("core: table has %d dimensions; max supported is 64", t.NumCols())
	}
	if opts.Delta <= 0 {
		opts.Delta = plm.DefaultDelta
	}
	f := &Flood{layout: layout, opts: opts, numCells: layout.NumCells()}
	f.computeParallelCutover()
	g := len(layout.GridDims)
	f.strides = make([]int, g)
	stride := 1
	for i := g - 1; i >= 0; i-- {
		f.strides[i] = stride
		stride *= layout.GridCols[i]
	}

	// Train per-dimension bucketers (independent: one goroutine per grid
	// dim; each decoded column is dropped as soon as its model is fit),
	// then assign each row to a cell in parallel row chunks, decoding grid
	// columns block-at-a-time so no full raw column stays resident.
	f.buckets = make([]bucketer, g)
	parallelFor(g, func(lo, hi int) {
		for gi := lo; gi < hi; gi++ {
			raw := t.Raw(layout.GridDims[gi])
			if layout.Flatten {
				leaves := opts.CDFLeaves
				if leaves <= 0 {
					leaves = defaultCDFLeaves(n)
				}
				f.buckets[gi] = cdfBucketer{cdf: rmi.TrainCDF(raw, leaves)}
			} else {
				var minV, maxV int64
				if len(raw) > 0 {
					minV, maxV = raw[0], raw[0]
					for _, v := range raw[1:] {
						if v < minV {
							minV = v
						}
						if v > maxV {
							maxV = v
						}
					}
				}
				f.buckets[gi] = newLinearBucketer(minV, maxV)
			}
		}
	})
	cells := make([]int32, n)
	parallelFor(n, func(lo, hi int) {
		var buf [colstore.BlockSize]int64
		for gi := 0; gi < g; gi++ {
			col := t.Column(layout.GridDims[gi])
			b := f.buckets[gi]
			cols := layout.GridCols[gi]
			str := int32(f.strides[gi])
			for i := lo; i < hi; {
				blk := i / colstore.BlockSize
				blockLo := blk * colstore.BlockSize
				j1 := col.DecodeBlock(blk, buf[:])
				if blockLo+j1 > hi {
					j1 = hi - blockLo
				}
				for j := i - blockLo; j < j1; j++ {
					cells[blockLo+j] += int32(b.bucket(buf[j], cols)) * str
				}
				i = blockLo + j1
			}
		}
	})
	if n == 0 {
		f.t = t
		f.cellStart = make([]int32, f.numCells+1)
		return f, nil
	}

	// Order rows by (cell, sort value): a depth-first traversal of the grid
	// with per-cell sorting (§3.1). Cell order comes from an O(n) counting
	// sort — the cell histogram doubles as the cell table (§3.2.1) — and
	// only the sort dimension is comparison-sorted, cell by cell, in
	// parallel cell chunks.
	f.cellStart = make([]int32, f.numCells+1)
	for _, c := range cells {
		f.cellStart[c+1]++
	}
	for c := 0; c < f.numCells; c++ {
		f.cellStart[c+1] += f.cellStart[c]
	}
	perm := make([]int, n)
	next := make([]int32, f.numCells)
	copy(next, f.cellStart[:f.numCells])
	for i := 0; i < n; i++ {
		c := cells[i]
		perm[next[c]] = i
		next[c]++
	}
	if layout.SortDim >= 0 {
		// Sort (value, row) pairs rather than rows through an indirection:
		// the keys travel with the swaps, halving cache misses.
		sortVals := t.Raw(layout.SortDim)
		pairs := make([]sortPair, n)
		for i, p := range perm {
			pairs[i] = sortPair{v: sortVals[p], row: int32(p)}
		}
		parallelFor(f.numCells, func(lo, hi int) {
			for c := lo; c < hi; c++ {
				cs, ce := f.cellStart[c], f.cellStart[c+1]
				if ce-cs > 1 {
					slices.SortFunc(pairs[cs:ce], func(a, b sortPair) int {
						return cmp.Compare(a.v, b.v)
					})
				}
			}
		})
		for i, p := range pairs {
			perm[i] = int(p.row)
		}
	}
	f.t = t.Reorder(perm)

	// Bitmap indexes over low-cardinality columns of the reordered data:
	// residual filters on them become precomputed-bitmap ANDs in the scan
	// kernel instead of decode-and-compare passes.
	f.t.EnableBitmapIndexes(opts.bitmapMaxCard())

	// Per-cell refinement models over the sort dimension (§5.2).
	if layout.SortDim >= 0 && opts.Refinement == RefineModel {
		sorted := f.t.Raw(layout.SortDim)
		f.models = make([]*plm.Model, f.numCells)
		parallelFor(f.numCells, func(lo, hi int) {
			for c := lo; c < hi; c++ {
				cs, ce := f.cellStart[c], f.cellStart[c+1]
				if cs == ce {
					continue
				}
				f.models[c] = plm.Train(sorted[cs:ce], opts.Delta)
			}
		})
	}
	f.computeCellStats()
	return f, nil
}

// sortPair carries a sort-dimension key together with its original row so
// per-cell sorts touch one contiguous array.
type sortPair struct {
	v   int64
	row int32
}

func defaultCDFLeaves(n int) int {
	l := n / 64
	if l < 16 {
		l = 16
	}
	if l > 1024 {
		l = 1024
	}
	return l
}

// computeParallelCutover resolves Options.ParallelCutover: 0 picks the
// default (the scan volume where parallel dispatch overhead clearly
// amortizes), negative disables the parallel path entirely.
func (f *Flood) computeParallelCutover() {
	switch {
	case f.opts.ParallelCutover > 0:
		f.parallelCutover = f.opts.ParallelCutover
	case f.opts.ParallelCutover < 0:
		f.parallelCutover = math.MaxInt
	default:
		f.parallelCutover = defaultParallelCutover
	}
}

func (f *Flood) computeCellStats() {
	sizes := make([]int, 0, f.numCells)
	total := 0
	for c := 0; c < f.numCells; c++ {
		if sz := int(f.cellStart[c+1] - f.cellStart[c]); sz > 0 {
			sizes = append(sizes, sz)
			total += sz
		}
	}
	f.nonEmptyCells = len(sizes)
	if len(sizes) == 0 {
		return
	}
	sort.Ints(sizes)
	f.avgCellSize = float64(total) / float64(len(sizes))
	f.medianCellSize = float64(sizes[len(sizes)/2])
	f.p99CellSize = float64(sizes[(len(sizes)-1)*99/100])
}

// Name implements query.Index.
func (f *Flood) Name() string { return "Flood" }

// Layout returns the layout the index was built with.
func (f *Flood) Layout() Layout { return f.layout }

// Options returns the options the index was built with (so wrappers like the
// delta index can rebuild with identical settings).
func (f *Flood) Options() Options { return f.opts }

// Table returns the index's reordered data.
func (f *Flood) Table() *colstore.Table { return f.t }

// NumCells returns the total number of grid cells.
func (f *Flood) NumCells() int { return f.numCells }

// NonEmptyCells returns the number of cells holding at least one point.
func (f *Flood) NonEmptyCells() int { return f.nonEmptyCells }

// CellSizeStats returns (average, median, 99th percentile) of non-empty cell
// sizes — cost model features (§4.1.1).
func (f *Flood) CellSizeStats() (avg, median, p99 float64) {
	return f.avgCellSize, f.medianCellSize, f.p99CellSize
}

// CellBounds returns the physical row range [start, end) stored for cell c.
func (f *Flood) CellBounds(c int) (start, end int) {
	return int(f.cellStart[c]), int(f.cellStart[c+1])
}

// SizeBytes reports index metadata size: the cell table, bucketing models,
// and per-cell refinement models. The stored data itself is excluded.
func (f *Flood) SizeBytes() int64 {
	s := int64(len(f.cellStart)) * 4
	for _, b := range f.buckets {
		s += b.sizeBytes()
	}
	for _, m := range f.models {
		if m != nil {
			s += m.SizeBytes()
		}
	}
	return s
}

// Execute implements query.Index: projection, refinement, scan (§3.2).
//
// Small queries run the sequential path, which performs zero heap
// allocations in steady state: projection scratch and scan ranges come from
// a pool, and the scanner reuses per-dimension decode buffers. When the
// aggregator is mergeable and the refined ranges cover at least the
// cost-based cutover (Options.ParallelCutover rows, known exactly and for
// free after refinement), the scan fans out over the morsel-driven worker
// pool instead (see exec_parallel.go); results and scan counters are
// identical either way.
func (f *Flood) Execute(q query.Query, agg query.Aggregator) query.Stats {
	return f.execute(q, agg, 0, nil, 0)
}

// execute is the shared body of Execute, ExecuteParallel, ExecuteBatch, and
// the context-aware entry points. workers selects the scan strategy: 0 is
// adaptive (sequential below the cutover, GOMAXPROCS workers above it), 1
// forces the sequential path, and n > 1 forces the morsel engine with n
// workers. ctl, when non-nil, threads cancellation and the shared limit
// budget into the scan phase. cutover overrides the index's parallel
// cutover for this query (0 keeps the index default, negative pins the
// query sequential).
func (f *Flood) execute(q query.Query, agg query.Aggregator, workers int, ctl *query.Control, cutover int) query.Stats {
	var st query.Stats
	t0 := time.Now()
	if q.Empty() || f.t.NumRows() == 0 || ctl.Stopped() {
		st.Total = time.Since(t0)
		return st
	}
	es := scratchPool.Get().(*execScratch)
	ranges := f.project(q, es, &st)
	t1 := time.Now()
	st.ProjectTime = t1.Sub(t0)

	// Resolve the cost-based cutover, honoring a per-query override.
	cut := f.parallelCutover
	switch {
	case cutover > 0:
		cut = cutover
	case cutover < 0:
		cut = math.MaxInt
	}

	// Pre-refinement row count: an upper bound on the scan volume, free to
	// compute. Refinement probes fan out only when the query is allowed to
	// parallelize at all (workers != 1) and was big before refinement —
	// so the sequential cutover path, ExecuteSequential, and batch workers
	// never touch the pool, stay allocation-free, and skip the estimate
	// loops entirely.
	// Capture the tombstone set once per query: the scan phase (sequential
	// or morsel-parallel) masks against this snapshot only, giving the query
	// a stable view of the deleted set even while deletes land concurrently.
	tombW := f.tomb.Load().Words()

	m, mergeable := agg.(query.Mergeable)
	refineParallel := false
	if workers != 1 {
		preEst := 0
		for i := range ranges {
			preEst += int(ranges[i].end - ranges[i].start)
		}
		refineParallel = preEst >= cut
	}
	f.refine(q, ranges, &st, refineParallel)
	t2 := time.Now()
	st.RefineTime = t2.Sub(t1)
	st.IndexTime = st.ProjectTime + st.RefineTime

	if workers == 1 || !mergeable {
		f.scan(q, ranges, agg, &st, ctl, tombW)
	} else {
		est := 0
		for i := range ranges {
			est += int(ranges[i].end - ranges[i].start)
		}
		if workers == 0 && (est < cut || maxWorkers() <= 1) {
			f.scan(q, ranges, agg, &st, ctl, tombW)
		} else {
			f.scanParallel(q, ranges, m, &st, workers, est, es, ctl, tombW)
		}
	}
	es.ranges = ranges[:0]
	scratchPool.Put(es)
	t3 := time.Now()
	st.ScanTime = t3.Sub(t2)
	st.Total = t3.Sub(t0)
	return st
}

// refines reports whether sort-dimension refinement applies to q.
func (f *Flood) refines(q query.Query) bool {
	return f.layout.SortDim >= 0 && q.Ranges[f.layout.SortDim].Present &&
		f.opts.Refinement != RefineNone
}

// project implements §3.2.1: identify the non-empty cells intersecting the
// query rectangle and their physical ranges, tagging each with the residual
// filter dimensions that must be row-checked during the scan.
//
// Cells are visited in increasing cell-number order, so physically adjacent
// ranges with identical residual masks are coalesced as they are emitted
// (the innermost grid dimension has stride 1: runs of cells along it map to
// one contiguous physical range). A large query rectangle therefore produces
// O(perimeter) scan ranges instead of O(volume). Coalescing is disabled when
// sort-dimension refinement applies, since refinement relies on per-cell
// sort order. CellsVisited counts only non-empty cells, matching
// NonEmptyCells accounting.
func (f *Flood) project(q query.Query, es *execScratch, st *query.Stats) []scanRange {
	g := len(f.layout.GridDims)
	los, his, coords, present := es.grids(g)
	for gi, dim := range f.layout.GridDims {
		r := q.Ranges[dim]
		cols := f.layout.GridCols[gi]
		if r.Present {
			los[gi] = f.buckets[gi].bucket(r.Min, cols)
			his[gi] = f.buckets[gi].bucket(r.Max, cols)
			present[gi] = true
		} else {
			los[gi], his[gi] = 0, cols-1
			present[gi] = false
		}
	}
	// Residual filters that must be checked per row: filtered dims that
	// are neither grid dims nor a refined sort dim.
	var baseMask uint64
	refine := f.refines(q)
	for d, r := range q.Ranges {
		if !r.Present {
			continue
		}
		if d == f.layout.SortDim && refine {
			continue
		}
		if gi := f.gridIndexOf(d); gi >= 0 {
			continue // handled per cell: interior cells skip the check
		}
		baseMask |= 1 << uint(d)
	}

	coalesce := !refine
	ranges := es.ranges[:0]
	copy(coords, los)
	for {
		cell := 0
		mask := baseMask
		for gi := 0; gi < g; gi++ {
			cell += coords[gi] * f.strides[gi]
			if present[gi] && (coords[gi] == los[gi] || coords[gi] == his[gi]) {
				mask |= 1 << uint(f.layout.GridDims[gi])
			}
		}
		cs, ce := f.cellStart[cell], f.cellStart[cell+1]
		if cs != ce {
			st.CellsVisited++
			if coalesce && len(ranges) > 0 {
				if last := &ranges[len(ranges)-1]; last.mask == mask && last.end == cs {
					last.end = ce
					goto next
				}
			}
			ranges = append(ranges, scanRange{cell: int32(cell), start: cs, end: ce, mask: mask})
		}
	next:
		// Odometer over the query rectangle's cells.
		gi := g - 1
		for ; gi >= 0; gi-- {
			coords[gi]++
			if coords[gi] <= his[gi] {
				break
			}
			coords[gi] = los[gi]
		}
		if gi < 0 {
			break
		}
	}
	es.ranges = ranges
	st.ScanRanges = int64(len(ranges))
	return ranges
}

// refineParallelRanges is the range count at which refinement probes fan out
// over the worker pool; below it, the sequential loop stays allocation-free.
const refineParallelRanges = 128

// refine implements §3.2.2 / §5.2: narrow each range along the sort
// dimension, mutating ranges in place. Model predictions (or plain binary
// search) are rectified through the column's block-decoded lower-bound
// search — no per-probe accessor closures. When parallel is set, queries
// touching many cells spread the probes per-range over the worker pool:
// ranges are independent, so results match the sequential loop exactly.
func (f *Flood) refine(q query.Query, ranges []scanRange, st *query.Stats, parallel bool) {
	if !f.refines(q) {
		return
	}
	st.RangesRefined += int64(len(ranges))
	if parallel && len(ranges) >= refineParallelRanges && maxWorkers() > 1 {
		poolFor(len(ranges), 32, func(lo, hi int) {
			f.refineRanges(q, ranges[lo:hi])
		})
		return
	}
	f.refineRanges(q, ranges)
}

// refineRanges narrows one slice of ranges; it is the workhorse shared by
// the sequential and parallel refinement paths.
func (f *Flood) refineRanges(q query.Query, ranges []scanRange) {
	r := q.Ranges[f.layout.SortDim]
	col := f.t.Column(f.layout.SortDim)
	useModel := f.opts.Refinement == RefineModel && f.models != nil
	for i := range ranges {
		rg := &ranges[i]
		base, end := int(rg.start), int(rg.end)
		var i1, i2 int
		if useModel && f.models[rg.cell] != nil {
			m := f.models[rg.cell]
			if r.Min == query.NegInf {
				i1 = base
			} else {
				i1 = col.LowerBoundHint(base, end, base+m.Predict(r.Min), r.Min)
			}
			if r.Max == query.PosInf {
				i2 = end
			} else {
				i2 = col.LowerBoundHint(base, end, base+m.Predict(r.Max+1), r.Max+1)
			}
		} else {
			if r.Min == query.NegInf {
				i1 = base
			} else {
				i1 = col.LowerBound(base, end, r.Min)
			}
			if r.Max == query.PosInf {
				i2 = end
			} else {
				i2 = col.LowerBound(base, end, r.Max+1)
			}
		}
		rg.start, rg.end = int32(i1), int32(i2)
	}
}

// scan implements §3.2 step 3: visit every refined physical range, using
// exact-range fast paths when no residual filters remain. ctl, when
// non-nil, is polled between ranges (and inside the scan kernel) so a
// cancellation or satisfied limit stops the walk early.
func (f *Flood) scan(q query.Query, ranges []scanRange, agg query.Aggregator, st *query.Stats, ctl *query.Control, tomb []uint64) {
	sc := query.GetScanner(f.t)
	sc.SetControl(ctl)
	sc.SetTombstones(tomb)
	var dimsBuf [64]int
	dims := dimsBuf[:0]
	var lastMask uint64
	haveDims := false // a bool sentinel: every uint64 is a legal 64-dim mask
	for _, rg := range ranges {
		if rg.start >= rg.end {
			continue
		}
		if ctl.Stopped() {
			break
		}
		if rg.mask == 0 {
			s, m := sc.ScanExactRange(int(rg.start), int(rg.end), agg)
			st.Scanned += s
			st.Matched += m
			st.ExactMatched += m
			continue
		}
		if !haveDims || rg.mask != lastMask {
			dims = maskDims(rg.mask, dims)
			lastMask, haveDims = rg.mask, true
		}
		s, m := sc.ScanRange(q, dims, int(rg.start), int(rg.end), agg)
		st.Scanned += s
		st.Matched += m
	}
	sc.Release()
}

func (f *Flood) gridIndexOf(dim int) int {
	for gi, d := range f.layout.GridDims {
		if d == dim {
			return gi
		}
	}
	return -1
}
