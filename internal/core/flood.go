package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"flood/internal/colstore"
	"flood/internal/plm"
	"flood/internal/query"
	"flood/internal/rmi"
)

// Flood is a built index: the table reordered into grid traversal order, the
// cell table mapping cells to physical ranges, per-dimension bucketing
// models, and per-cell refinement models.
type Flood struct {
	t      *colstore.Table
	layout Layout
	opts   Options

	buckets   []bucketer // one per grid dimension
	strides   []int      // mixed-radix strides per grid dimension
	numCells  int
	cellStart []int32      // len numCells+1: physical start per cell
	models    []*plm.Model // per cell, nil when empty or refinement is not model-based

	// Cell-size statistics for the cost model (§4.1.1).
	nonEmptyCells  int
	avgCellSize    float64
	medianCellSize float64
	p99CellSize    float64
}

type scanRange struct {
	cell       int32
	start, end int32
	mask       uint64 // residual filter dims needing per-row checks
}

// Build constructs a Flood index over t with the given layout. The input
// table is not modified; the index holds a reordered copy.
func Build(t *colstore.Table, layout Layout, opts Options) (*Flood, error) {
	if err := layout.Validate(t.NumCols()); err != nil {
		return nil, err
	}
	n := t.NumRows()
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("core: table has %d rows; max supported is %d", n, math.MaxInt32)
	}
	if t.NumCols() > 64 {
		// Residual filter sets are dimension bitmasks in one uint64.
		return nil, fmt.Errorf("core: table has %d dimensions; max supported is 64", t.NumCols())
	}
	if opts.Delta <= 0 {
		opts.Delta = plm.DefaultDelta
	}
	f := &Flood{layout: layout, opts: opts, numCells: layout.NumCells()}
	g := len(layout.GridDims)
	f.strides = make([]int, g)
	stride := 1
	for i := g - 1; i >= 0; i-- {
		f.strides[i] = stride
		stride *= layout.GridCols[i]
	}

	// Train per-dimension bucketers and assign each row to a cell.
	f.buckets = make([]bucketer, g)
	cells := make([]int32, n)
	for gi, dim := range layout.GridDims {
		raw := t.Raw(dim)
		if layout.Flatten {
			leaves := opts.CDFLeaves
			if leaves <= 0 {
				leaves = defaultCDFLeaves(n)
			}
			f.buckets[gi] = cdfBucketer{cdf: rmi.TrainCDF(raw, leaves)}
		} else {
			minV, maxV := raw[0], raw[0]
			for _, v := range raw[1:] {
				if v < minV {
					minV = v
				}
				if v > maxV {
					maxV = v
				}
			}
			f.buckets[gi] = newLinearBucketer(minV, maxV)
		}
		b := f.buckets[gi]
		cols := layout.GridCols[gi]
		str := int32(f.strides[gi])
		for i, v := range raw {
			cells[i] += int32(b.bucket(v, cols)) * str
		}
	}
	if n == 0 {
		f.t = t
		f.cellStart = make([]int32, f.numCells+1)
		return f, nil
	}

	// Order rows by (cell, sort value): a depth-first traversal of the
	// grid with per-cell sorting (§3.1).
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if layout.SortDim >= 0 {
		sortVals := t.Raw(layout.SortDim)
		sort.Slice(perm, func(a, b int) bool {
			pa, pb := perm[a], perm[b]
			if cells[pa] != cells[pb] {
				return cells[pa] < cells[pb]
			}
			return sortVals[pa] < sortVals[pb]
		})
	} else {
		sort.Slice(perm, func(a, b int) bool { return cells[perm[a]] < cells[perm[b]] })
	}
	f.t = t.Reorder(perm)

	// Cell table: physical start index of each cell (§3.2.1).
	f.cellStart = make([]int32, f.numCells+1)
	for _, i := range perm {
		f.cellStart[cells[i]+1]++
	}
	for c := 0; c < f.numCells; c++ {
		f.cellStart[c+1] += f.cellStart[c]
	}

	// Per-cell refinement models over the sort dimension (§5.2).
	if layout.SortDim >= 0 && opts.Refinement == RefineModel {
		sorted := f.t.Raw(layout.SortDim)
		f.models = make([]*plm.Model, f.numCells)
		for c := 0; c < f.numCells; c++ {
			cs, ce := f.cellStart[c], f.cellStart[c+1]
			if cs == ce {
				continue
			}
			f.models[c] = plm.Train(sorted[cs:ce], opts.Delta)
		}
	}
	f.computeCellStats()
	return f, nil
}

func defaultCDFLeaves(n int) int {
	l := n / 64
	if l < 16 {
		l = 16
	}
	if l > 1024 {
		l = 1024
	}
	return l
}

func (f *Flood) computeCellStats() {
	sizes := make([]int, 0, f.numCells)
	total := 0
	for c := 0; c < f.numCells; c++ {
		if sz := int(f.cellStart[c+1] - f.cellStart[c]); sz > 0 {
			sizes = append(sizes, sz)
			total += sz
		}
	}
	f.nonEmptyCells = len(sizes)
	if len(sizes) == 0 {
		return
	}
	sort.Ints(sizes)
	f.avgCellSize = float64(total) / float64(len(sizes))
	f.medianCellSize = float64(sizes[len(sizes)/2])
	f.p99CellSize = float64(sizes[(len(sizes)-1)*99/100])
}

// Name implements query.Index.
func (f *Flood) Name() string { return "Flood" }

// Layout returns the layout the index was built with.
func (f *Flood) Layout() Layout { return f.layout }

// Table returns the index's reordered data.
func (f *Flood) Table() *colstore.Table { return f.t }

// NumCells returns the total number of grid cells.
func (f *Flood) NumCells() int { return f.numCells }

// NonEmptyCells returns the number of cells holding at least one point.
func (f *Flood) NonEmptyCells() int { return f.nonEmptyCells }

// CellSizeStats returns (average, median, 99th percentile) of non-empty cell
// sizes — cost model features (§4.1.1).
func (f *Flood) CellSizeStats() (avg, median, p99 float64) {
	return f.avgCellSize, f.medianCellSize, f.p99CellSize
}

// CellBounds returns the physical row range [start, end) stored for cell c.
func (f *Flood) CellBounds(c int) (start, end int) {
	return int(f.cellStart[c]), int(f.cellStart[c+1])
}

// SizeBytes reports index metadata size: the cell table, bucketing models,
// and per-cell refinement models. The stored data itself is excluded.
func (f *Flood) SizeBytes() int64 {
	s := int64(len(f.cellStart)) * 4
	for _, b := range f.buckets {
		s += b.sizeBytes()
	}
	for _, m := range f.models {
		if m != nil {
			s += m.SizeBytes()
		}
	}
	return s
}

// Execute implements query.Index: projection, refinement, scan (§3.2).
func (f *Flood) Execute(q query.Query, agg query.Aggregator) query.Stats {
	var st query.Stats
	t0 := time.Now()
	if q.Empty() || f.t.NumRows() == 0 {
		st.Total = time.Since(t0)
		return st
	}
	ranges, projSt := f.project(q)
	st.CellsVisited = projSt.CellsVisited
	t1 := time.Now()
	st.ProjectTime = t1.Sub(t0)

	refSt := f.refine(q, ranges)
	st.RangesRefined = refSt.RangesRefined
	t2 := time.Now()
	st.RefineTime = t2.Sub(t1)
	st.IndexTime = st.ProjectTime + st.RefineTime

	scanSt := f.scan(q, ranges, agg)
	st.Scanned, st.Matched, st.ExactMatched = scanSt.Scanned, scanSt.Matched, scanSt.ExactMatched
	t3 := time.Now()
	st.ScanTime = t3.Sub(t2)
	st.Total = t3.Sub(t0)
	return st
}

// refines reports whether sort-dimension refinement applies to q.
func (f *Flood) refines(q query.Query) bool {
	return f.layout.SortDim >= 0 && q.Ranges[f.layout.SortDim].Present &&
		f.opts.Refinement != RefineNone
}

// project implements §3.2.1: identify the cells intersecting the query
// rectangle and their physical ranges, tagging each with the residual
// filter dimensions that must be row-checked during the scan.
func (f *Flood) project(q query.Query) ([]scanRange, query.Stats) {
	var st query.Stats
	g := len(f.layout.GridDims)
	los := make([]int, g)
	his := make([]int, g)
	present := make([]bool, g)
	for gi, dim := range f.layout.GridDims {
		r := q.Ranges[dim]
		cols := f.layout.GridCols[gi]
		if r.Present {
			los[gi] = f.buckets[gi].bucket(r.Min, cols)
			his[gi] = f.buckets[gi].bucket(r.Max, cols)
			present[gi] = true
		} else {
			los[gi], his[gi] = 0, cols-1
		}
	}
	// Residual filters that must be checked per row: filtered dims that
	// are neither grid dims nor a refined sort dim.
	var baseMask uint64
	refine := f.refines(q)
	for _, d := range q.FilteredDims() {
		if d == f.layout.SortDim && refine {
			continue
		}
		if gi := f.gridIndexOf(d); gi >= 0 {
			continue // handled per cell: interior cells skip the check
		}
		baseMask |= 1 << uint(d)
	}

	ranges := make([]scanRange, 0, 64)
	coords := append([]int(nil), los...)
	for {
		cell := 0
		mask := baseMask
		for gi := 0; gi < g; gi++ {
			cell += coords[gi] * f.strides[gi]
			if present[gi] && (coords[gi] == los[gi] || coords[gi] == his[gi]) {
				mask |= 1 << uint(f.layout.GridDims[gi])
			}
		}
		st.CellsVisited++
		cs, ce := f.cellStart[cell], f.cellStart[cell+1]
		if cs != ce {
			ranges = append(ranges, scanRange{cell: int32(cell), start: cs, end: ce, mask: mask})
		}
		// Odometer over the query rectangle's cells.
		gi := g - 1
		for ; gi >= 0; gi-- {
			coords[gi]++
			if coords[gi] <= his[gi] {
				break
			}
			coords[gi] = los[gi]
		}
		if gi < 0 {
			break
		}
	}
	return ranges, st
}

// refine implements §3.2.2 / §5.2: narrow each range along the sort
// dimension using per-cell models (or binary search), mutating ranges in
// place.
func (f *Flood) refine(q query.Query, ranges []scanRange) query.Stats {
	var st query.Stats
	if f.refines(q) {
		r := q.Ranges[f.layout.SortDim]
		col := f.t.Column(f.layout.SortDim)
		for i := range ranges {
			rg := &ranges[i]
			st.RangesRefined++
			cellLen := int(rg.end - rg.start)
			base := int(rg.start)
			at := func(j int) int64 { return col.Get(base + j) }
			var i1, i2 int
			if f.opts.Refinement == RefineModel && f.models != nil && f.models[rg.cell] != nil {
				m := f.models[rg.cell]
				if r.Min == query.NegInf {
					i1 = 0
				} else {
					i1 = m.LowerBoundAt(cellLen, at, r.Min)
				}
				if r.Max == query.PosInf {
					i2 = cellLen
				} else {
					i2 = m.LowerBoundAt(cellLen, at, r.Max+1)
				}
			} else {
				if r.Min == query.NegInf {
					i1 = 0
				} else {
					i1 = sort.Search(cellLen, func(j int) bool { return at(j) >= r.Min })
				}
				if r.Max == query.PosInf {
					i2 = cellLen
				} else {
					i2 = sort.Search(cellLen, func(j int) bool { return at(j) > r.Max })
				}
			}
			rg.start, rg.end = int32(base+i1), int32(base+i2)
		}
	}
	return st
}

// scan implements §3.2 step 3: visit every refined physical range, using
// exact-range fast paths when no residual filters remain.
func (f *Flood) scan(q query.Query, ranges []scanRange, agg query.Aggregator) query.Stats {
	var st query.Stats

	// ---- Scan (§3.2 step 3) ----
	sc := query.NewScanner(f.t)
	var dims []int
	var lastMask uint64 = ^uint64(0)
	for _, rg := range ranges {
		if rg.start >= rg.end {
			continue
		}
		if rg.mask == 0 {
			s, m := sc.ScanExactRange(int(rg.start), int(rg.end), agg)
			st.Scanned += s
			st.Matched += m
			st.ExactMatched += m
			continue
		}
		if rg.mask != lastMask {
			dims = dims[:0]
			for d := 0; d < f.t.NumCols(); d++ {
				if rg.mask&(1<<uint(d)) != 0 {
					dims = append(dims, d)
				}
			}
			lastMask = rg.mask
		}
		s, m := sc.ScanRange(q, dims, int(rg.start), int(rg.end), agg)
		st.Scanned += s
		st.Matched += m
	}
	return st
}

func (f *Flood) gridIndexOf(dim int) int {
	for gi, d := range f.layout.GridDims {
		if d == dim {
			return gi
		}
	}
	return -1
}
