package core

import (
	"math/rand"
	"testing"

	"flood/internal/colstore"
	"flood/internal/query"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// refinement strategy (learned PLM vs binary search vs none) and flattening
// (CDF vs equi-width columns). Run with:
//
//	go test ./internal/core -bench Ablation -benchmem

func benchIndex(b *testing.B, layout Layout, opts Options) (*Flood, []query.Query) {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	n := 200_000
	data := make([][]int64, 3)
	names := []string{"a", "b", "c"}
	for d := range data {
		data[d] = make([]int64, n)
		for i := range data[d] {
			data[d][i] = rng.Int63n(1 << 20)
		}
	}
	tbl, err := colstore.NewTable(names, data)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := Build(tbl, layout, opts)
	if err != nil {
		b.Fatal(err)
	}
	var queries []query.Query
	for i := 0; i < 64; i++ {
		lo := rng.Int63n(1 << 20)
		w := int64(1 << 14)
		queries = append(queries, query.NewQuery(3).
			WithRange(0, lo, lo+w).
			WithRange(2, lo/2, lo/2+w*4))
	}
	return idx, queries
}

func benchExecute(b *testing.B, idx *Flood, queries []query.Query) {
	agg := query.NewCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Reset()
		idx.Execute(queries[i%len(queries)], agg)
	}
}

var ablationLayout = Layout{GridDims: []int{0}, GridCols: []int{64}, SortDim: 2, Flatten: true}

func BenchmarkAblationRefinePLM(b *testing.B) {
	idx, qs := benchIndex(b, ablationLayout, Options{Refinement: RefineModel})
	benchExecute(b, idx, qs)
}

func BenchmarkAblationRefineBinary(b *testing.B) {
	idx, qs := benchIndex(b, ablationLayout, Options{Refinement: RefineBinary})
	benchExecute(b, idx, qs)
}

func BenchmarkAblationRefineNone(b *testing.B) {
	idx, qs := benchIndex(b, ablationLayout, Options{Refinement: RefineNone})
	benchExecute(b, idx, qs)
}

func BenchmarkAblationFlattened(b *testing.B) {
	idx, qs := benchIndex(b, Layout{GridDims: []int{0, 1}, GridCols: []int{16, 8}, SortDim: 2, Flatten: true}, Options{})
	benchExecute(b, idx, qs)
}

func BenchmarkAblationEquiWidth(b *testing.B) {
	idx, qs := benchIndex(b, Layout{GridDims: []int{0, 1}, GridCols: []int{16, 8}, SortDim: 2, Flatten: false}, Options{})
	benchExecute(b, idx, qs)
}

// BenchmarkAblationDeltaSweep measures end-to-end query impact of the PLM
// error budget (§7.8).
func BenchmarkAblationDelta(b *testing.B) {
	for _, delta := range []float64{5, 50, 500} {
		b.Run(deltaName(delta), func(b *testing.B) {
			idx, qs := benchIndex(b, ablationLayout, Options{Delta: delta})
			benchExecute(b, idx, qs)
		})
	}
}

func deltaName(d float64) string {
	switch d {
	case 5:
		return "delta5"
	case 50:
		return "delta50"
	default:
		return "delta500"
	}
}

func BenchmarkBuild200k(b *testing.B) {
	rng := rand.New(rand.NewSource(100))
	n := 200_000
	data := make([][]int64, 3)
	for d := range data {
		data[d] = make([]int64, n)
		for i := range data[d] {
			data[d][i] = rng.Int63n(1 << 20)
		}
	}
	tbl, err := colstore.NewTable([]string{"a", "b", "c"}, data)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(tbl, ablationLayout, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
