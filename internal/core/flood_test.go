package core

import (
	"math"
	"math/rand"
	"testing"

	"flood/internal/colstore"
	"flood/internal/query"
)

// makeData builds an nRows x nDims table with mixed distributions.
func makeData(t testing.TB, nRows, nDims int, seed int64) (*colstore.Table, [][]int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([][]int64, nDims)
	names := make([]string, nDims)
	for d := range data {
		data[d] = make([]int64, nRows)
		names[d] = string(rune('a' + d))
		for i := range data[d] {
			switch d % 3 {
			case 0: // uniform
				data[d][i] = rng.Int63n(1000)
			case 1: // skewed
				data[d][i] = int64(math.Exp(rng.NormFloat64() + 5))
			default: // clustered
				data[d][i] = rng.Int63n(10)*100 + rng.Int63n(8)
			}
		}
	}
	tbl, err := colstore.NewTable(names, data)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, data
}

func bruteCount(data [][]int64, q query.Query) int64 {
	var cnt int64
	n := len(data[0])
	point := make([]int64, len(data))
	for i := 0; i < n; i++ {
		for d := range data {
			point[d] = data[d][i]
		}
		if q.Matches(point) {
			cnt++
		}
	}
	return cnt
}

func bruteSum(data [][]int64, q query.Query, col int) int64 {
	var s int64
	n := len(data[0])
	point := make([]int64, len(data))
	for i := 0; i < n; i++ {
		for d := range data {
			point[d] = data[d][i]
		}
		if q.Matches(point) {
			s += data[col][i]
		}
	}
	return s
}

func randomQuery(rng *rand.Rand, data [][]int64, maxDims int) query.Query {
	q := query.NewQuery(len(data))
	nf := 1 + rng.Intn(maxDims)
	for k := 0; k < nf; k++ {
		d := rng.Intn(len(data))
		i := rng.Intn(len(data[d]))
		j := rng.Intn(len(data[d]))
		lo, hi := data[d][i], data[d][j]
		if lo > hi {
			lo, hi = hi, lo
		}
		q = q.WithRange(d, lo, hi)
	}
	return q
}

func layoutsUnderTest() []Layout {
	return []Layout{
		{GridDims: []int{0, 1}, GridCols: []int{8, 4}, SortDim: 2, Flatten: true},
		{GridDims: []int{0, 1}, GridCols: []int{8, 4}, SortDim: 2, Flatten: false},
		{GridDims: []int{2, 0}, GridCols: []int{5, 7}, SortDim: 3, Flatten: true},
		{GridDims: []int{0, 1, 2, 3}, GridCols: []int{3, 3, 3, 3}, SortDim: -1, Flatten: true}, // simple grid
		{GridDims: []int{1}, GridCols: []int{16}, SortDim: 0, Flatten: true},
		{GridDims: nil, GridCols: nil, SortDim: 0, Flatten: false},                      // pure clustered layout
		{GridDims: []int{0, 1, 3}, GridCols: []int{1, 6, 2}, SortDim: 2, Flatten: true}, // dropped dim via cols=1
	}
}

func TestFloodMatchesBruteForce(t *testing.T) {
	tbl, data := makeData(t, 3000, 4, 1)
	rng := rand.New(rand.NewSource(2))
	for li, layout := range layoutsUnderTest() {
		for _, mode := range []RefinementMode{RefineModel, RefineBinary, RefineNone} {
			idx, err := Build(tbl, layout, Options{Refinement: mode})
			if err != nil {
				t.Fatalf("layout %d: %v", li, err)
			}
			for trial := 0; trial < 40; trial++ {
				q := randomQuery(rng, data, 4)
				agg := query.NewCount()
				st := idx.Execute(q, agg)
				want := bruteCount(data, q)
				if agg.Result() != want {
					t.Fatalf("layout %d (%s) mode %d: count = %d, want %d (query %+v)",
						li, layout, mode, agg.Result(), want, q.Ranges)
				}
				if st.Matched != want {
					t.Fatalf("layout %d: stats.Matched = %d, want %d", li, st.Matched, want)
				}
				if st.Scanned < st.Matched {
					t.Fatalf("layout %d: scanned %d < matched %d", li, st.Scanned, st.Matched)
				}
			}
		}
	}
}

func TestFloodSumAggregation(t *testing.T) {
	tbl, data := makeData(t, 2000, 4, 3)
	tbl.EnableAggregate(3)
	layout := Layout{GridDims: []int{0, 1}, GridCols: []int{6, 6}, SortDim: 2, Flatten: true}
	idx, err := Build(tbl, layout, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		q := randomQuery(rng, data, 3)
		agg := query.NewSum(3)
		idx.Execute(q, agg)
		if want := bruteSum(data, q, 3); agg.Result() != want {
			t.Fatalf("sum = %d, want %d", agg.Result(), want)
		}
	}
}

func TestFloodExactRangesReduceChecks(t *testing.T) {
	// A query covering a wide swath of grid dims with a sort-dim filter
	// should produce exact sub-ranges.
	tbl, data := makeData(t, 5000, 3, 5)
	layout := Layout{GridDims: []int{0}, GridCols: []int{16}, SortDim: 1, Flatten: true}
	idx, err := Build(tbl, layout, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := query.NewQuery(3).WithRange(0, 0, 999).WithRange(1, 0, 1<<40)
	agg := query.NewCount()
	st := idx.Execute(q, agg)
	if want := bruteCount(data, q); agg.Result() != want {
		t.Fatalf("count = %d, want %d", agg.Result(), want)
	}
	if st.ExactMatched == 0 {
		t.Fatal("expected some exact sub-range matches")
	}
}

func TestFloodUnfilteredQueryScansEverything(t *testing.T) {
	tbl, _ := makeData(t, 1000, 3, 6)
	layout := Layout{GridDims: []int{0, 1}, GridCols: []int{4, 4}, SortDim: 2, Flatten: true}
	idx, _ := Build(tbl, layout, Options{})
	agg := query.NewCount()
	st := idx.Execute(query.NewQuery(3), agg)
	if agg.Result() != 1000 || st.Matched != 1000 {
		t.Fatalf("unfiltered count = %d", agg.Result())
	}
	if st.ExactMatched != 1000 {
		t.Fatalf("unfiltered query should be fully exact, got %d", st.ExactMatched)
	}
}

func TestFloodEmptyAndInvertedQueries(t *testing.T) {
	tbl, _ := makeData(t, 500, 3, 7)
	layout := Layout{GridDims: []int{0}, GridCols: []int{4}, SortDim: 1, Flatten: true}
	idx, _ := Build(tbl, layout, Options{})
	agg := query.NewCount()
	st := idx.Execute(query.NewQuery(3).WithRange(0, 100, 50), agg)
	if agg.Result() != 0 || st.Scanned != 0 {
		t.Fatal("inverted range should match nothing and scan nothing")
	}
	// Range entirely outside the data domain.
	agg.Reset()
	idx.Execute(query.NewQuery(3).WithRange(1, 1<<50, 1<<51), agg)
	if agg.Result() != 0 {
		t.Fatal("out-of-domain range should match nothing")
	}
}

func TestFloodLayoutValidation(t *testing.T) {
	tbl, _ := makeData(t, 100, 3, 8)
	bad := []Layout{
		{GridDims: []int{0, 0}, GridCols: []int{2, 2}, SortDim: 1},
		{GridDims: []int{0}, GridCols: []int{0}, SortDim: 1},
		{GridDims: []int{0}, GridCols: []int{2}, SortDim: 0},
		{GridDims: []int{5}, GridCols: []int{2}, SortDim: 1},
		{GridDims: []int{0}, GridCols: []int{2, 3}, SortDim: 1},
		{SortDim: -1},
		{GridDims: []int{0}, GridCols: []int{2}, SortDim: 9},
	}
	for i, l := range bad {
		if _, err := Build(tbl, l, Options{}); err == nil {
			t.Fatalf("layout %d should fail validation: %s", i, l)
		}
	}
}

func TestFloodCellTablePartition(t *testing.T) {
	// The cell table must partition [0, n): starts non-decreasing,
	// first = 0, last = n.
	tbl, _ := makeData(t, 4000, 4, 9)
	layout := Layout{GridDims: []int{0, 1, 3}, GridCols: []int{7, 5, 3}, SortDim: 2, Flatten: true}
	idx, err := Build(tbl, layout, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.cellStart[0] != 0 || int(idx.cellStart[idx.numCells]) != 4000 {
		t.Fatalf("cell table endpoints: %d .. %d", idx.cellStart[0], idx.cellStart[idx.numCells])
	}
	for c := 0; c < idx.numCells; c++ {
		if idx.cellStart[c] > idx.cellStart[c+1] {
			t.Fatalf("cell table not monotone at %d", c)
		}
	}
	// Within every cell, rows are sorted by the sort dimension.
	for c := 0; c < idx.numCells; c++ {
		for r := int(idx.cellStart[c]) + 1; r < int(idx.cellStart[c+1]); r++ {
			if idx.t.Get(2, r-1) > idx.t.Get(2, r) {
				t.Fatalf("cell %d not sorted by sort dim at row %d", c, r)
			}
		}
	}
}

func TestFloodStatsTimings(t *testing.T) {
	tbl, data := makeData(t, 3000, 3, 10)
	layout := Layout{GridDims: []int{0}, GridCols: []int{8}, SortDim: 1, Flatten: true}
	idx, _ := Build(tbl, layout, Options{})
	q := query.NewQuery(3).WithRange(0, 0, 500).WithRange(1, 0, 1000)
	st := idx.Execute(q, query.NewCount())
	if st.IndexTime != st.ProjectTime+st.RefineTime {
		t.Fatal("IndexTime must equal projection + refinement")
	}
	if st.Total < st.IndexTime+st.ScanTime {
		t.Fatal("Total must cover index + scan time")
	}
	if st.CellsVisited == 0 || st.RangesRefined == 0 {
		t.Fatalf("expected cells visited and ranges refined, got %+v", st)
	}
	_ = data
}

func TestFloodSizeBytes(t *testing.T) {
	tbl, _ := makeData(t, 2000, 3, 11)
	small, _ := Build(tbl, Layout{GridDims: []int{0}, GridCols: []int{2}, SortDim: 1, Flatten: true}, Options{})
	big, _ := Build(tbl, Layout{GridDims: []int{0, 2}, GridCols: []int{50, 20}, SortDim: 1, Flatten: true}, Options{})
	if small.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("more cells should cost more metadata: %d <= %d", big.SizeBytes(), small.SizeBytes())
	}
}

func TestFloodEmptyTable(t *testing.T) {
	tbl, err := colstore.NewTable([]string{"a", "b"}, [][]int64{{}, {}})
	if err != nil {
		t.Fatal(err)
	}
	// Equi-width bucketing must not choke on an empty column either.
	for _, flatten := range []bool{true, false} {
		idx, err := Build(tbl, Layout{GridDims: []int{0}, GridCols: []int{4}, SortDim: 1, Flatten: flatten}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		agg := query.NewCount()
		idx.Execute(query.NewQuery(2).WithRange(0, 0, 10), agg)
		if agg.Result() != 0 {
			t.Fatalf("flatten=%v: empty table should match nothing", flatten)
		}
	}
}

func TestFloodCellStatsReasonable(t *testing.T) {
	tbl, _ := makeData(t, 10000, 3, 12)
	idx, _ := Build(tbl, Layout{GridDims: []int{0, 1}, GridCols: []int{10, 10}, SortDim: 2, Flatten: true}, Options{})
	avg, med, p99 := idx.CellSizeStats()
	if avg <= 0 || med <= 0 || p99 < med {
		t.Fatalf("cell stats look wrong: avg=%f med=%f p99=%f", avg, med, p99)
	}
	if idx.NonEmptyCells() == 0 || idx.NonEmptyCells() > idx.NumCells() {
		t.Fatalf("NonEmptyCells = %d of %d", idx.NonEmptyCells(), idx.NumCells())
	}
}

func TestFlatteningBalancesSkewedCells(t *testing.T) {
	// On heavily skewed data, flattened layouts should spread points far
	// more evenly than equi-width layouts (§5.1).
	rng := rand.New(rand.NewSource(13))
	n := 20000
	skew := make([]int64, n)
	other := make([]int64, n)
	for i := range skew {
		// Log-normal with a large offset so values stay distinct: heavy
		// right tail but no single dominating duplicate.
		skew[i] = int64(math.Exp(rng.NormFloat64()*2 + 10))
		other[i] = rng.Int63n(100)
	}
	tbl := colstore.MustNewTable([]string{"s", "o"}, [][]int64{skew, other})
	flat, _ := Build(tbl, Layout{GridDims: []int{0}, GridCols: []int{20}, SortDim: 1, Flatten: true}, Options{})
	raw, _ := Build(tbl, Layout{GridDims: []int{0}, GridCols: []int{20}, SortDim: 1, Flatten: false}, Options{})
	maxCell := func(f *Flood) int {
		m := 0
		for c := 0; c < f.NumCells(); c++ {
			if s, e := f.CellBounds(c); e-s > m {
				m = e - s
			}
		}
		return m
	}
	flatMax, rawMax := maxCell(flat), maxCell(raw)
	if flatMax*2 >= rawMax {
		t.Fatalf("flattening should cap the largest cell: flattened max %d vs raw max %d", flatMax, rawMax)
	}
}
