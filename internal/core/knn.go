package core

import (
	"container/heap"
	"fmt"
	"math"
)

// Neighbor is one kNN result: a physical row in the index's table and its
// squared distance in flattened space.
type Neighbor struct {
	Row  int
	Dist float64
}

// KNN returns the k nearest neighbors of point under the Euclidean metric in
// *flattened* grid coordinates: each grid dimension's values are mapped
// through its CDF to [0, 1] before distances are computed, which makes the
// metric scale-free across attributes with wildly different units (§6
// "Nearest Neighbor Queries"). The search visits the cell containing the
// query point and expands outward ring by ring, pruning cells whose closest
// possible flattened point is farther than the current k-th best — the
// grid-based analogue of a k-d tree's adjacent-page walk.
//
// The layout must have at least one grid dimension. Results are ordered by
// increasing distance; fewer than k neighbors are returned only when the
// table holds fewer than k rows.
func (f *Flood) KNN(point []int64, k int) ([]Neighbor, error) {
	g := len(f.layout.GridDims)
	if g == 0 {
		return nil, fmt.Errorf("core: kNN requires a layout with grid dimensions")
	}
	if len(point) != f.t.NumCols() {
		return nil, fmt.Errorf("core: point has %d values, table has %d dimensions", len(point), f.t.NumCols())
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive")
	}
	// Flattened query coordinates and home cell.
	uq := make([]float64, g)
	home := make([]int, g)
	for gi := range f.layout.GridDims {
		dim := f.layout.GridDims[gi]
		uq[gi] = f.buckets[gi].normalize(point[dim])
		home[gi] = f.buckets[gi].bucket(point[dim], f.layout.GridCols[gi])
	}

	// Tombstone snapshot: deleted rows are never reported as neighbors.
	tw := f.tomb.Load()

	best := &neighborHeap{}
	heap.Init(best)
	kth := math.Inf(1)
	cols := f.layout.GridCols

	// Coarsest dimension bounds how quickly ring distance grows.
	minInvCols := math.Inf(1)
	for _, c := range cols {
		if inv := 1 / float64(c); inv < minInvCols {
			minInvCols = inv
		}
	}

	maxRing := 0
	for _, c := range cols {
		if c > maxRing {
			maxRing = c
		}
	}
	coords := make([]int, g)
	for ring := 0; ring <= maxRing; ring++ {
		// Any cell in ring r is at least (r-1) whole columns away along
		// some dimension.
		if ringMin := float64(ring-1) * minInvCols; ring > 0 && best.Len() >= k && ringMin*ringMin > kth {
			break
		}
		f.visitRing(home, ring, coords, func(cellCoords []int) {
			lb := f.cellLowerBound(uq, cellCoords)
			if best.Len() >= k && lb > kth {
				return
			}
			cell := 0
			for gi, b := range cellCoords {
				cell += b * f.strides[gi]
			}
			cs, ce := f.cellStart[cell], f.cellStart[cell+1]
			for r := int(cs); r < int(ce); r++ {
				if tw.Has(r) {
					continue
				}
				d := f.flatDist(uq, r)
				if best.Len() < k {
					heap.Push(best, Neighbor{Row: r, Dist: d})
					kth = best.peek().Dist
				} else if d < kth {
					best.replaceTop(Neighbor{Row: r, Dist: d})
					kth = best.peek().Dist
				}
			}
		})
	}
	out := make([]Neighbor, best.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(best).(Neighbor)
	}
	return out, nil
}

// visitRing enumerates all in-bounds cells at Chebyshev distance exactly
// ring from home.
func (f *Flood) visitRing(home []int, ring int, coords []int, visit func([]int)) {
	g := len(home)
	var rec func(gi int, onBoundary bool)
	rec = func(gi int, onBoundary bool) {
		if gi == g {
			if onBoundary || ring == 0 {
				visit(coords)
			}
			return
		}
		lo := home[gi] - ring
		hi := home[gi] + ring
		for b := lo; b <= hi; b++ {
			if b < 0 || b >= f.layout.GridCols[gi] {
				continue
			}
			coords[gi] = b
			rec(gi+1, onBoundary || b == lo || b == hi)
		}
	}
	rec(0, false)
}

// cellLowerBound is the squared flattened distance from uq to the closest
// point of the cell's bounding box.
func (f *Flood) cellLowerBound(uq []float64, cellCoords []int) float64 {
	var d2 float64
	for gi, b := range cellCoords {
		c := float64(f.layout.GridCols[gi])
		lo := float64(b) / c
		hi := float64(b+1) / c
		switch {
		case uq[gi] < lo:
			d := lo - uq[gi]
			d2 += d * d
		case uq[gi] > hi:
			d := uq[gi] - hi
			d2 += d * d
		}
	}
	return d2
}

// flatDist is the squared flattened distance from uq to stored row r.
func (f *Flood) flatDist(uq []float64, r int) float64 {
	var d2 float64
	for gi, dim := range f.layout.GridDims {
		u := f.buckets[gi].normalize(f.t.Get(dim, r))
		d := u - uq[gi]
		d2 += d * d
	}
	return d2
}

// neighborHeap is a max-heap on distance (top = worst of the current best k).
type neighborHeap []Neighbor

func (h neighborHeap) Len() int            { return len(h) }
func (h neighborHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h neighborHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *neighborHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
func (h neighborHeap) peek() Neighbor { return h[0] }
func (h *neighborHeap) replaceTop(n Neighbor) {
	(*h)[0] = n
	heap.Fix(h, 0)
}
