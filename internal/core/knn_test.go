package core

import (
	"math/rand"
	"sort"
	"testing"

	"flood/internal/query"
)

// bruteKNN computes ground truth in the same flattened metric the index
// uses, reading normalized coordinates through the index's own bucketers.
func bruteKNN(f *Flood, point []int64, k int) []Neighbor {
	n := f.Table().NumRows()
	uq := make([]float64, len(f.layout.GridDims))
	for gi, dim := range f.layout.GridDims {
		uq[gi] = f.buckets[gi].normalize(point[dim])
	}
	all := make([]Neighbor, n)
	for r := 0; r < n; r++ {
		all[r] = Neighbor{Row: r, Dist: f.flatDist(uq, r)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Dist < all[j].Dist })
	if k > n {
		k = n
	}
	return all[:k]
}

func TestKNNMatchesBruteForce(t *testing.T) {
	tbl, data := makeData(t, 3000, 3, 91)
	for _, layout := range []Layout{
		{GridDims: []int{0, 1}, GridCols: []int{8, 6}, SortDim: 2, Flatten: true},
		{GridDims: []int{0, 1}, GridCols: []int{5, 5}, SortDim: 2, Flatten: false},
		{GridDims: []int{2}, GridCols: []int{12}, SortDim: 0, Flatten: true},
	} {
		idx, err := Build(tbl, layout, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(92))
		for trial := 0; trial < 20; trial++ {
			point := []int64{
				data[0][rng.Intn(len(data[0]))] + rng.Int63n(9) - 4,
				data[1][rng.Intn(len(data[1]))],
				data[2][rng.Intn(len(data[2]))],
			}
			k := 1 + rng.Intn(10)
			got, err := idx.KNN(point, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteKNN(idx, point, k)
			if len(got) != len(want) {
				t.Fatalf("layout %s: got %d neighbors, want %d", layout, len(got), len(want))
			}
			for i := range got {
				// Distances must match exactly; rows may differ on ties.
				if got[i].Dist != want[i].Dist {
					t.Fatalf("layout %s trial %d: neighbor %d dist %f, want %f",
						layout, trial, i, got[i].Dist, want[i].Dist)
				}
			}
			// Results must be sorted by distance.
			for i := 1; i < len(got); i++ {
				if got[i].Dist < got[i-1].Dist {
					t.Fatal("kNN results not sorted")
				}
			}
		}
	}
}

func TestKNNValidation(t *testing.T) {
	tbl, _ := makeData(t, 200, 3, 93)
	idx, _ := Build(tbl, Layout{GridDims: []int{0}, GridCols: []int{4}, SortDim: 1, Flatten: true}, Options{})
	if _, err := idx.KNN([]int64{1, 2}, 3); err == nil {
		t.Fatal("wrong point dimensionality should fail")
	}
	if _, err := idx.KNN([]int64{1, 2, 3}, 0); err == nil {
		t.Fatal("k=0 should fail")
	}
	pure, _ := Build(tbl, Layout{SortDim: 0, Flatten: false}, Options{})
	if _, err := pure.KNN([]int64{1, 2, 3}, 1); err == nil {
		t.Fatal("kNN on a gridless layout should fail")
	}
}

func TestKNNMoreThanN(t *testing.T) {
	tbl, _ := makeData(t, 50, 3, 94)
	idx, _ := Build(tbl, Layout{GridDims: []int{0, 1}, GridCols: []int{3, 3}, SortDim: 2, Flatten: true}, Options{})
	got, err := idx.KNN([]int64{100, 100, 100}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("asked for more neighbors than rows: got %d, want 50", len(got))
	}
	_ = query.NewQuery(3)
}
