// Package core implements the Flood index itself: a learned multi-dimensional
// clustered in-memory index (§3, §5 of the paper).
//
// A layout arranges d attributes as a (d-1)-dimensional grid plus a sort
// dimension. Grid column boundaries are learned per dimension from the data's
// CDF ("flattening", §5.1) so that each column holds roughly the same number
// of points; within a cell, points are sorted by the sort dimension and a
// per-cell piecewise-linear model accelerates refinement (§5.2). Queries run
// as projection → refinement → scan (§3.2).
package core

import (
	"fmt"
	"strings"
)

// Layout describes the shape of a Flood grid: which dimensions form the grid
// (in traversal order), how many columns each gets, which dimension points
// are sorted by inside each cell, and whether column boundaries are flattened
// by the data's per-dimension CDF.
type Layout struct {
	// GridDims lists the table dimensions that form the grid, ordered
	// from most to least significant in the cell traversal.
	GridDims []int
	// GridCols holds the number of columns per grid dimension
	// (len(GridCols) == len(GridDims), every entry >= 1).
	GridCols []int
	// SortDim is the dimension used to order points within each cell, or
	// -1 for a layout with no sort dimension (the "Simple Grid" ablation
	// of Fig. 11).
	SortDim int
	// Flatten selects learned CDF column boundaries (§5.1) instead of
	// equi-width columns.
	Flatten bool
}

// Validate checks the layout against a table with nDims dimensions.
func (l Layout) Validate(nDims int) error {
	if len(l.GridDims) != len(l.GridCols) {
		return fmt.Errorf("core: %d grid dims but %d column counts", len(l.GridDims), len(l.GridCols))
	}
	seen := make(map[int]bool, len(l.GridDims)+1)
	for i, d := range l.GridDims {
		if d < 0 || d >= nDims {
			return fmt.Errorf("core: grid dim %d out of range [0, %d)", d, nDims)
		}
		if seen[d] {
			return fmt.Errorf("core: dimension %d appears twice", d)
		}
		seen[d] = true
		if l.GridCols[i] < 1 {
			return fmt.Errorf("core: grid dim %d has %d columns, want >= 1", d, l.GridCols[i])
		}
	}
	if l.SortDim != -1 {
		if l.SortDim < 0 || l.SortDim >= nDims {
			return fmt.Errorf("core: sort dim %d out of range [0, %d)", l.SortDim, nDims)
		}
		if seen[l.SortDim] {
			return fmt.Errorf("core: sort dim %d is also a grid dim", l.SortDim)
		}
	}
	if len(l.GridDims) == 0 && l.SortDim == -1 {
		return fmt.Errorf("core: layout indexes no dimensions")
	}
	return nil
}

// NumCells returns the total number of grid cells.
func (l Layout) NumCells() int {
	n := 1
	for _, c := range l.GridCols {
		n *= c
	}
	return n
}

// String renders the layout compactly, e.g. "grid[2:8 0:4] sort=1 flat".
func (l Layout) String() string {
	var b strings.Builder
	b.WriteString("grid[")
	for i, d := range l.GridDims {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", d, l.GridCols[i])
	}
	b.WriteString("]")
	if l.SortDim >= 0 {
		fmt.Fprintf(&b, " sort=%d", l.SortDim)
	}
	if l.Flatten {
		b.WriteString(" flat")
	}
	return b.String()
}

// RefinementMode selects how per-cell sort-dimension refinement runs.
type RefinementMode int

const (
	// RefineModel uses per-cell piecewise-linear CDF models rectified by
	// exponential search (§5.2) — the paper's configuration.
	RefineModel RefinementMode = iota
	// RefineBinary uses plain binary search within each cell (§3.2.2),
	// the pre-learning baseline of Fig. 17.
	RefineBinary
	// RefineNone skips refinement; the sort dimension is filter-checked
	// during scans like any unindexed dimension.
	RefineNone
)

// Options configures index construction.
type Options struct {
	// Refinement selects the per-cell refinement strategy.
	Refinement RefinementMode
	// Delta is the PLM average-error budget (§7.8); 0 means DefaultDelta.
	Delta float64
	// CDFLeaves is the leaf count for per-dimension flattening CDFs;
	// 0 picks a size-based default.
	CDFLeaves int
	// ParallelCutover is the estimated scanned-row count at or above which
	// Execute switches from the zero-alloc sequential scan to the
	// morsel-driven parallel engine. 0 picks the default; negative keeps
	// every query on the sequential path.
	ParallelCutover int
	// BitmapMaxCardinality is the largest per-column value spread
	// (max-min+1) for which Build creates a bitmap index: low-cardinality
	// columns (dictionary-coded strings, enums, flags) then resolve
	// residual filters as precomputed-bitmap ANDs in the scan kernel.
	// 0 picks DefaultBitmapMaxCardinality; negative disables bitmap
	// indexes.
	BitmapMaxCardinality int
}

// DefaultBitmapMaxCardinality is the bitmap-index cardinality threshold used
// when Options.BitmapMaxCardinality is zero. At 64 values a one-million-row
// column costs 8 MB of bitmaps — a fraction of the raw column — while a
// typical equality filter replaces 1M decode-and-compares with 15.6K word
// ANDs.
const DefaultBitmapMaxCardinality = 64

// bitmapMaxCard resolves Options.BitmapMaxCardinality to an effective
// threshold (0 means disabled).
func (o Options) bitmapMaxCard() int {
	switch {
	case o.BitmapMaxCardinality > 0:
		return o.BitmapMaxCardinality
	case o.BitmapMaxCardinality < 0:
		return 0
	default:
		return DefaultBitmapMaxCardinality
	}
}
