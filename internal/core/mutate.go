// Tombstone-based deletion (ROADMAP "full mutation path"). A built index's
// physical layout is immutable — rows cannot be moved without retraining the
// models that predict their positions — so deletion is logical: a word-packed
// bitmap marks dead rows and the scan kernel masks them out with one AND-NOT
// per block word (see query.Scanner.SetTombstones). Dead rows are physically
// dropped the next time the index is rebuilt (Rebuild / the adaptive
// relearn-merge cycle), which resets the bitmap — compaction piggybacks on
// work the update path already does.
//
// Mutators follow the same single-writer contract as the delta/adaptive
// wrappers: one writer at a time, any number of concurrent readers. Each
// mutation copies the current bitmap, marks it, and atomically publishes the
// new version, so an in-flight query keeps the snapshot it captured at scan
// setup.

package core

import (
	"flood/internal/colstore"
	"flood/internal/query"
)

// Tombstones returns the index's current tombstone set (nil when nothing has
// been deleted). The returned value is an immutable snapshot: it never
// changes, even as further deletes publish new versions.
func (f *Flood) Tombstones() *colstore.Tombstones { return f.tomb.Load() }

// SetTombstones installs t as the index's tombstone set, replacing the
// current one. t must cover at most the table's rows and must be treated as
// immutable afterwards. Used by snapshot loading and by wrappers that carry
// deletions across an epoch swap; normal deletion goes through DeleteRows or
// DeleteWhere.
func (f *Flood) SetTombstones(t *colstore.Tombstones) { f.tomb.Store(t) }

// Deleted returns the number of tombstoned rows.
func (f *Flood) Deleted() int { return f.tomb.Load().Dead() }

// LiveRows returns the number of rows a full scan would deliver: physical
// rows minus tombstoned rows.
func (f *Flood) LiveRows() int { return f.t.NumRows() - f.tomb.Load().Dead() }

// DeleteRows tombstones the given physical rows and returns how many were
// newly deleted (rows already dead or out of range are skipped, not errors).
// Queries already running keep their captured snapshot; queries starting
// after the return observe the deletions. Single-writer: callers serialize
// DeleteRows/DeleteWhere/SetTombstones among themselves.
func (f *Flood) DeleteRows(rows []int) int {
	if len(rows) == 0 {
		return 0
	}
	nt, added := colstore.AddTombstones(f.tomb.Load(), f.t.NumRows(), rows)
	if added == 0 {
		return 0
	}
	f.tomb.Store(nt)
	return added
}

// DeleteWhere tombstones every live row matching q and returns the count.
// The matching set is computed with a regular masked Execute, so rows already
// dead are not re-deleted (and not re-counted). Single-writer, like
// DeleteRows.
func (f *Flood) DeleteWhere(q query.Query) int {
	rows := f.CollectWhere(q)
	if len(rows) == 0 {
		return 0
	}
	return f.DeleteRows(rows)
}

// CollectWhere returns the physical rows of every live row matching q, in
// ascending order. It is the id-resolution step shared by DeleteWhere and the
// wrappers' update paths (collect, tombstone, re-insert modified copies).
func (f *Flood) CollectWhere(q query.Query) []int {
	rc := query.NewRowCollector()
	rc.PinSource(f.t)
	f.Execute(q, rc)
	rc.Sort()
	ids := rc.IDs()
	rows := make([]int, len(ids))
	for i, id := range ids {
		rows[i] = int(id)
	}
	return rows
}
