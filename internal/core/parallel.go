package core

import (
	"runtime"
	"sync"
	"time"

	"flood/internal/query"
)

// ExecuteParallel is Execute with the scan phase fanned out over workers
// goroutines (§8 "Concurrency and parallelism": different cells can be
// refined and scanned simultaneously). Projection and refinement remain
// single-threaded — they are a small fraction of query time (Table 2) — and
// each worker scans a contiguous slice of the refined ranges with its own
// aggregator clone, so results are exact and deterministic. workers <= 0
// uses GOMAXPROCS.
//
// The paper's headline measurements are single-threaded; this entry point
// exists for throughput-oriented deployments.
func (f *Flood) ExecuteParallel(q query.Query, agg query.Mergeable, workers int) query.Stats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return f.Execute(q, agg)
	}
	var st query.Stats
	t0 := time.Now()
	if q.Empty() || f.t.NumRows() == 0 {
		st.Total = time.Since(t0)
		return st
	}
	es := scratchPool.Get().(*execScratch)
	ranges := f.project(q, es, &st)
	t1 := time.Now()
	st.ProjectTime = t1.Sub(t0)
	f.refine(q, ranges, &st)
	t2 := time.Now()
	st.RefineTime = t2.Sub(t1)
	st.IndexTime = st.ProjectTime + st.RefineTime
	defer func() {
		es.ranges = es.ranges[:0]
		scratchPool.Put(es)
	}()

	if len(ranges) < 2*workers {
		workers = 1
	}
	if workers == 1 {
		f.scan(q, ranges, agg, &st)
		t3 := time.Now()
		st.ScanTime = t3.Sub(t2)
		st.Total = t3.Sub(t0)
		return st
	}

	chunk := (len(ranges) + workers - 1) / workers
	var wg sync.WaitGroup
	partStats := make([]query.Stats, workers)
	partAggs := make([]query.Mergeable, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ranges) {
			hi = len(ranges)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		partAggs[w] = agg.CloneEmpty()
		go func(w, lo, hi int) {
			defer wg.Done()
			f.scan(q, ranges[lo:hi], partAggs[w], &partStats[w])
		}(w, lo, hi)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if partAggs[w] == nil {
			continue
		}
		agg.Merge(partAggs[w])
		st.Scanned += partStats[w].Scanned
		st.Matched += partStats[w].Matched
		st.ExactMatched += partStats[w].ExactMatched
	}
	t3 := time.Now()
	st.ScanTime = t3.Sub(t2)
	st.Total = t3.Sub(t0)
	return st
}
