package core

import (
	"math/rand"
	"testing"

	"flood/internal/query"
)

func TestExecuteParallelMatchesSerial(t *testing.T) {
	tbl, data := makeData(t, 20000, 4, 121)
	layout := Layout{GridDims: []int{0, 1}, GridCols: []int{16, 8}, SortDim: 2, Flatten: true}
	idx, err := Build(tbl, layout, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(122))
	for trial := 0; trial < 25; trial++ {
		q := randomQuery(rng, data, 4)
		serial := query.NewCount()
		idx.Execute(q, serial)
		for _, workers := range []int{0, 2, 4, 7} {
			par := query.NewCount()
			st := idx.ExecuteParallel(q, par, workers)
			if par.Result() != serial.Result() {
				t.Fatalf("workers=%d: parallel count %d != serial %d", workers, par.Result(), serial.Result())
			}
			if st.Matched != serial.Result() {
				t.Fatalf("workers=%d: stats.Matched %d", workers, st.Matched)
			}
		}
	}
}

func TestExecuteParallelSumAndMin(t *testing.T) {
	tbl, data := makeData(t, 10000, 3, 123)
	idx, err := Build(tbl, Layout{GridDims: []int{0}, GridCols: []int{32}, SortDim: 1, Flatten: true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := query.NewQuery(3).WithRange(0, 0, 800)
	sumS, sumP := query.NewSum(2), query.NewSum(2)
	idx.Execute(q, sumS)
	idx.ExecuteParallel(q, sumP, 4)
	if sumS.Result() != sumP.Result() {
		t.Fatalf("parallel sum %d != serial %d", sumP.Result(), sumS.Result())
	}
	minS, minP := query.NewMin(2), query.NewMin(2)
	idx.Execute(q, minS)
	idx.ExecuteParallel(q, minP, 4)
	if minS.Result() != minP.Result() {
		t.Fatalf("parallel min %d != serial %d", minP.Result(), minS.Result())
	}
	_ = data
}

func TestExecuteParallelEmptyQuery(t *testing.T) {
	tbl, _ := makeData(t, 1000, 3, 124)
	idx, _ := Build(tbl, Layout{GridDims: []int{0}, GridCols: []int{4}, SortDim: 1, Flatten: true}, Options{})
	agg := query.NewCount()
	st := idx.ExecuteParallel(query.NewQuery(3).WithRange(0, 10, 5), agg, 4)
	if agg.Result() != 0 || st.Scanned != 0 {
		t.Fatal("empty query should do nothing in parallel mode")
	}
}

func BenchmarkExecuteParallel(b *testing.B) {
	idx, qs := benchIndex(b, Layout{GridDims: []int{0}, GridCols: []int{256}, SortDim: 2, Flatten: true}, Options{})
	for _, workers := range []int{1, 4} {
		name := "workers1"
		if workers == 4 {
			name = "workers4"
		}
		b.Run(name, func(b *testing.B) {
			agg := query.NewCount()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg.Reset()
				idx.ExecuteParallel(qs[i%len(qs)], agg, workers)
			}
		})
	}
}
