package core

import (
	"fmt"
	"io"

	"flood/internal/colstore"
	"flood/internal/plm"
	"flood/internal/rmi"
	"flood/internal/wire"
)

// persistMagic versions the on-disk index format.
const persistMagic = "FLOODIX1"

// Save serializes the built index — layout, reordered data, bucketing
// models, cell table, and per-cell refinement models — so it can be reloaded
// with Load without re-sorting or re-training.
func (f *Flood) Save(out io.Writer) error {
	w := wire.NewWriter(out)
	w.Tag(persistMagic)
	// Layout.
	w.Ints(f.layout.GridDims)
	w.Ints(f.layout.GridCols)
	w.Int(f.layout.SortDim)
	w.Bool(f.layout.Flatten)
	// Options.
	w.Int(int(f.opts.Refinement))
	w.F64(f.opts.Delta)
	w.Int(f.opts.CDFLeaves)
	// Data.
	f.t.Encode(w)
	// Bucketers.
	for _, b := range f.buckets {
		switch b := b.(type) {
		case cdfBucketer:
			w.U8(1)
			b.cdf.Encode(w)
		case linearBucketer:
			w.U8(2)
			w.I64(b.min)
			w.F64(b.rangeSz)
		default:
			return fmt.Errorf("core: unknown bucketer type %T", b)
		}
	}
	// Cell table.
	w.I32s(f.cellStart)
	// Refinement models (sparse).
	w.Bool(f.models != nil)
	if f.models != nil {
		for _, m := range f.models {
			w.Bool(m != nil)
			if m != nil {
				m.Encode(w)
			}
		}
	}
	return w.Flush()
}

// Load reads an index written by Save.
func Load(in io.Reader) (*Flood, error) {
	r := wire.NewReader(in)
	r.Expect(persistMagic)
	f := &Flood{}
	f.layout.GridDims = r.Ints()
	f.layout.GridCols = r.Ints()
	f.layout.SortDim = r.Int()
	f.layout.Flatten = r.Bool()
	f.opts.Refinement = RefinementMode(r.Int())
	f.opts.Delta = r.F64()
	f.opts.CDFLeaves = r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: loading index header: %w", err)
	}
	var err error
	if f.t, err = colstore.DecodeTable(r); err != nil {
		return nil, err
	}
	if err := f.layout.Validate(f.t.NumCols()); err != nil {
		return nil, fmt.Errorf("core: loaded layout invalid: %w", err)
	}
	f.numCells = f.layout.NumCells()
	g := len(f.layout.GridDims)
	f.strides = make([]int, g)
	stride := 1
	for i := g - 1; i >= 0; i-- {
		f.strides[i] = stride
		stride *= f.layout.GridCols[i]
	}
	f.buckets = make([]bucketer, g)
	for gi := range f.buckets {
		switch tag := r.U8(); tag {
		case 1:
			cdf, err := rmi.DecodeCDF(r)
			if err != nil {
				return nil, err
			}
			f.buckets[gi] = cdfBucketer{cdf: cdf}
		case 2:
			f.buckets[gi] = linearBucketer{min: r.I64(), rangeSz: r.F64()}
		default:
			return nil, fmt.Errorf("core: unknown bucketer tag %d", tag)
		}
	}
	f.cellStart = r.I32s()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: loading cell table: %w", err)
	}
	if len(f.cellStart) != f.numCells+1 {
		return nil, fmt.Errorf("core: cell table has %d entries, layout needs %d", len(f.cellStart), f.numCells+1)
	}
	if r.Bool() {
		f.models = make([]*plm.Model, f.numCells)
		for c := range f.models {
			if !r.Bool() {
				continue
			}
			m, err := plm.DecodeModel(r)
			if err != nil {
				return nil, fmt.Errorf("core: loading cell model %d: %w", c, err)
			}
			f.models[c] = m
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: loading index: %w", err)
	}
	f.computeCellStats()
	return f, nil
}
