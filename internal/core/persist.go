package core

import (
	"errors"
	"fmt"
	"io"
	"math"

	"flood/internal/colstore"
	"flood/internal/plm"
	"flood/internal/rmi"
	"flood/internal/wire"
)

// Snapshot format. Version 2 wraps the stream in a FLOOD header and
// length-prefixed, CRC32-C-checksummed sections (see internal/wire), so
// truncation and bit flips surface as typed errors instead of garbage
// decodes. Version 1 files (raw magic + unframed fields) are still readable.
const (
	persistMagicV1 = "FLOODIX1"
	// PersistVersion is the snapshot format version this package writes.
	PersistVersion = 2

	// SectionMeta holds the layout and build options.
	SectionMeta = "meta"
	// SectionData holds the reordered compressed table.
	SectionData = "data"
	// SectionBitmaps holds the per-column bitmap indexes of low-cardinality
	// columns. The section is additive: snapshots written before it existed
	// load fine (the indexes are rebuilt from the data section), and like
	// the models section it is reconstructible, so a damaged copy degrades
	// to a rebuild instead of failing the load.
	SectionBitmaps = "bidx"
	// SectionModels holds the learned models (bucketers, cell table,
	// per-cell refinement models). It is always the final section, and it
	// is a section a loader can reconstruct: if it is damaged, Load
	// retrains from the intact data instead of failing.
	SectionModels = "modl"
)

// ExtraSection is a caller-supplied snapshot section (for example the typed
// schema the public package attaches). Extra sections are written between
// the data and models sections and are CRC-verified on load like any other;
// a damaged extra section fails the load.
type ExtraSection struct {
	// Tag is the 4-byte section identifier.
	Tag string
	// Encode writes the section payload.
	Encode func(*wire.Writer)
}

// LoadResult is the full outcome of reading a snapshot: the index plus any
// extra sections, and whether degraded recovery kicked in.
type LoadResult struct {
	// Index is the loaded (or partially reconstructed) index.
	Index *Flood
	// Extra maps unrecognized section tags to their CRC-verified payloads;
	// the public package uses it to round-trip the typed schema.
	Extra map[string][]byte
	// Retrained reports that the models section was damaged and the
	// learned models were rebuilt from the intact data sections. The index
	// answers queries correctly either way; a retrained load just paid a
	// rebuild.
	Retrained bool
	// Warnings describes any degraded-recovery decisions taken.
	Warnings []string
}

// Save serializes the built index — layout, reordered data, bucketing
// models, cell table, and per-cell refinement models — so it can be reloaded
// with Load without re-sorting or re-training.
func (f *Flood) Save(out io.Writer) error { return f.SaveSections(out, nil) }

// SaveSections is Save with caller-supplied extra sections spliced between
// the data and models sections.
func (f *Flood) SaveSections(out io.Writer, extra []ExtraSection) error {
	if err := wire.WriteHeader(out, PersistVersion, 4+len(extra)); err != nil {
		return err
	}
	sw := wire.NewSectionWriter(out)
	sw.Section(SectionMeta, f.encodeMeta)
	sw.Section(SectionData, func(w *wire.Writer) { f.t.Encode(w) })
	sw.Section(SectionBitmaps, f.encodeBitmaps)
	for _, e := range extra {
		sw.Section(e.Tag, e.Encode)
	}
	var encodeErr error
	sw.Section(SectionModels, func(w *wire.Writer) { encodeErr = f.encodeModels(w) })
	if encodeErr != nil {
		return encodeErr
	}
	return sw.Err()
}

func (f *Flood) encodeMeta(w *wire.Writer) {
	w.Ints(f.layout.GridDims)
	w.Ints(f.layout.GridCols)
	w.Int(f.layout.SortDim)
	w.Bool(f.layout.Flatten)
	w.Int(int(f.opts.Refinement))
	w.F64(f.opts.Delta)
	w.Int(f.opts.CDFLeaves)
}

// encodeBitmaps writes the bitmap indexes: an index count, then for each
// indexed column its column number followed by the bitmap payload. An index
// with no bitmap-indexed columns writes a count of zero — a present-but-empty
// section, distinct from an absent one (an older snapshot), which makes Load
// rebuild the indexes from the data.
func (f *Flood) encodeBitmaps(w *wire.Writer) {
	cols := make([]int, 0, f.t.NumCols())
	for c := 0; c < f.t.NumCols(); c++ {
		if f.t.Bitmap(c) != nil {
			cols = append(cols, c)
		}
	}
	w.Int(len(cols))
	for _, c := range cols {
		w.Int(c)
		f.t.Bitmap(c).Encode(w)
	}
}

// decodeBitmaps reads the bitmap-index section and attaches the decoded
// indexes to the loaded table. Any structural problem is returned as an
// error; the caller treats it like a checksum failure and rebuilds.
func (f *Flood) decodeBitmaps(r *wire.Reader) error {
	count := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: loading bitmap indexes: %w", err)
	}
	if count < 0 || count > f.t.NumCols() {
		return fmt.Errorf("core: bitmap section declares %d indexes, table has %d columns", count, f.t.NumCols())
	}
	for i := 0; i < count; i++ {
		c := r.Int()
		if err := r.Err(); err != nil {
			return fmt.Errorf("core: loading bitmap index %d: %w", i, err)
		}
		if c < 0 || c >= f.t.NumCols() {
			return fmt.Errorf("core: bitmap index %d targets column %d of %d", i, c, f.t.NumCols())
		}
		if f.t.Bitmap(c) != nil {
			return fmt.Errorf("core: duplicate bitmap index for column %d", c)
		}
		bi, err := colstore.DecodeBitmapIndex(r, f.t.NumRows())
		if err != nil {
			return fmt.Errorf("core: loading bitmap index for column %d: %w", c, err)
		}
		f.t.SetBitmap(c, bi)
	}
	return nil
}

func (f *Flood) encodeModels(w *wire.Writer) error {
	for _, b := range f.buckets {
		switch b := b.(type) {
		case cdfBucketer:
			w.U8(1)
			b.cdf.Encode(w)
		case linearBucketer:
			w.U8(2)
			w.I64(b.min)
			w.F64(b.rangeSz)
		default:
			return fmt.Errorf("core: unknown bucketer type %T", b)
		}
	}
	w.I32s(f.cellStart)
	w.Bool(f.models != nil)
	if f.models != nil {
		for _, m := range f.models {
			w.Bool(m != nil)
			if m != nil {
				m.Encode(w)
			}
		}
	}
	return nil
}

// Load reads an index written by Save (either format version). A damaged
// models section is recovered by retraining; use LoadSections to observe
// whether that happened.
func Load(in io.Reader) (*Flood, error) {
	res, err := LoadSections(in)
	if err != nil {
		return nil, err
	}
	return res.Index, nil
}

// LoadSections reads a snapshot and returns the full LoadResult: the index,
// any extra sections, and degraded-recovery details. Corruption surfaces as
// an error wrapping wire.ErrTruncated, wire.ErrChecksum, or wire.ErrVersion —
// except damage confined to the models section, which is repaired by
// retraining from the intact data (Retrained is set and a warning recorded).
func LoadSections(in io.Reader) (LoadResult, error) {
	var res LoadResult
	var h [wire.HeaderSize]byte
	if _, err := io.ReadFull(in, h[:]); err != nil {
		return res, fmt.Errorf("core: snapshot header: %w", wire.ErrTruncated)
	}
	if string(h[:]) == persistMagicV1 {
		f, err := loadV1(wire.NewReader(in))
		if err != nil {
			return res, err
		}
		res.Index = f
		return res, nil
	}
	count, err := wire.ParseHeader(h[:], PersistVersion)
	if err != nil {
		return res, fmt.Errorf("core: %w", err)
	}

	var meta, data, bidx, modl []byte
	modlDamaged := false
	bidxDamaged := false
	sr := wire.NewSectionReader(in, count)
	seen := 0
sections:
	for {
		tag, payload, err := sr.Next()
		switch {
		case err == io.EOF:
			break sections
		case err == nil:
		case errors.Is(err, wire.ErrChecksum) && tag == SectionModels:
			// The models frame is present but fails its CRC; the stream
			// is still aligned, so keep reading the remaining sections
			// and retrain the models from the data afterwards.
			res.Warnings = append(res.Warnings, err.Error())
			modlDamaged = true
			seen++
			continue
		case errors.Is(err, wire.ErrChecksum) && tag == SectionBitmaps:
			// Bitmap indexes are likewise reconstructible: note the damage
			// and rebuild them from the data section after decoding.
			res.Warnings = append(res.Warnings, err.Error())
			bidxDamaged = true
			seen++
			continue
		case errors.Is(err, wire.ErrTruncated) && meta != nil && data != nil &&
			seen == count-1 && (tag == SectionModels || tag == ""):
			// The file ends inside (or just before) the final section.
			// The models section is written last, so with every other
			// section intact the loss is confined to reconstructible
			// state.
			res.Warnings = append(res.Warnings, err.Error())
			modlDamaged = true
			break sections
		default:
			return res, fmt.Errorf("core: loading snapshot: %w", err)
		}
		seen++
		switch tag {
		case SectionMeta:
			meta = payload
		case SectionData:
			data = payload
		case SectionBitmaps:
			bidx = payload
		case SectionModels:
			modl = payload
		default:
			if res.Extra == nil {
				res.Extra = make(map[string][]byte)
			}
			res.Extra[tag] = payload
		}
	}
	if meta == nil {
		return res, fmt.Errorf("core: snapshot has no %q section: %w", SectionMeta, wire.ErrTruncated)
	}
	if data == nil {
		return res, fmt.Errorf("core: snapshot has no %q section: %w", SectionData, wire.ErrTruncated)
	}

	f := &Flood{}
	if err := f.decodeMeta(wire.NewReaderBytes(meta)); err != nil {
		return res, err
	}
	if f.t, err = colstore.DecodeTable(wire.NewReaderBytes(data)); err != nil {
		return res, err
	}
	if err := f.validateLayout(); err != nil {
		return res, err
	}
	if bidx != nil && !bidxDamaged {
		if err := f.decodeBitmaps(wire.NewReaderBytes(bidx)); err != nil {
			// Structurally invalid despite a valid CRC: recoverable the
			// same way as a detected flip.
			res.Warnings = append(res.Warnings, err.Error())
			bidxDamaged = true
		}
	}
	if bidxDamaged {
		f.t.EnableBitmapIndexes(f.opts.bitmapMaxCard())
		res.Warnings = append(res.Warnings, "bitmap-index section damaged; rebuilt bitmap indexes from intact data sections")
	} else if bidx == nil {
		// Snapshot predates the bitmap section: build the indexes fresh.
		f.t.EnableBitmapIndexes(f.opts.bitmapMaxCard())
	}
	if modl != nil && !modlDamaged {
		if err := f.decodeModels(wire.NewReaderBytes(modl)); err != nil {
			// Structurally invalid despite a valid CRC: recoverable the
			// same way as a detected flip.
			res.Warnings = append(res.Warnings, err.Error())
			modlDamaged = true
		}
	} else if modl == nil {
		modlDamaged = true
	}
	if modlDamaged {
		rebuilt, err := Build(f.t, f.layout, f.opts)
		if err != nil {
			return res, fmt.Errorf("core: retraining models from intact data: %w", err)
		}
		res.Warnings = append(res.Warnings, "models section damaged; retrained learned models from intact data sections")
		res.Retrained = true
		res.Index = rebuilt
		return res, nil
	}
	f.computeCellStats()
	f.computeParallelCutover()
	res.Index = f
	return res, nil
}

// decodeMeta reads the layout and options from the meta section.
func (f *Flood) decodeMeta(r *wire.Reader) error {
	f.layout.GridDims = r.Ints()
	f.layout.GridCols = r.Ints()
	f.layout.SortDim = r.Int()
	f.layout.Flatten = r.Bool()
	f.opts.Refinement = RefinementMode(r.Int())
	f.opts.Delta = r.F64()
	f.opts.CDFLeaves = r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: loading index header: %w", err)
	}
	return nil
}

// validateLayout cross-checks the decoded layout against the decoded table
// and materializes the derived grid state (cell count, strides). The cell
// count is recomputed with an overflow guard: corrupt column counts must not
// wrap the product into a plausible small number.
func (f *Flood) validateLayout() error {
	if err := f.layout.Validate(f.t.NumCols()); err != nil {
		return fmt.Errorf("core: loaded layout invalid: %w", err)
	}
	cells := 1
	for _, c := range f.layout.GridCols {
		cells *= c
		if cells <= 0 || cells > math.MaxInt32 {
			return fmt.Errorf("core: loaded layout declares %v grid columns", f.layout.GridCols)
		}
	}
	f.numCells = cells
	g := len(f.layout.GridDims)
	f.strides = make([]int, g)
	stride := 1
	for i := g - 1; i >= 0; i-- {
		f.strides[i] = stride
		stride *= f.layout.GridCols[i]
	}
	return nil
}

// decodeModels reads the learned models (bucketers, cell table, refinement
// models) from the models section and validates the cell table against the
// loaded data.
func (f *Flood) decodeModels(r *wire.Reader) error {
	f.buckets = make([]bucketer, len(f.layout.GridDims))
	for gi := range f.buckets {
		switch tag := r.U8(); tag {
		case 1:
			cdf, err := rmi.DecodeCDF(r)
			if err != nil {
				return err
			}
			f.buckets[gi] = cdfBucketer{cdf: cdf}
		case 2:
			f.buckets[gi] = linearBucketer{min: r.I64(), rangeSz: r.F64()}
		default:
			if err := r.Err(); err != nil {
				return fmt.Errorf("core: loading bucketers: %w", err)
			}
			return fmt.Errorf("core: unknown bucketer tag %d", tag)
		}
	}
	f.cellStart = r.I32s()
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: loading cell table: %w", err)
	}
	if err := f.validateCellTable(); err != nil {
		return err
	}
	if r.Bool() {
		f.models = make([]*plm.Model, f.numCells)
		for c := range f.models {
			if !r.Bool() {
				continue
			}
			m, err := plm.DecodeModel(r)
			if err != nil {
				return fmt.Errorf("core: loading cell model %d: %w", c, err)
			}
			f.models[c] = m
		}
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: loading index: %w", err)
	}
	return nil
}

// validateCellTable checks that the cell table is a monotone partition of
// the loaded rows: corrupt start offsets would otherwise become
// out-of-range scan bounds at query time.
func (f *Flood) validateCellTable() error {
	if len(f.cellStart) != f.numCells+1 {
		return fmt.Errorf("core: cell table has %d entries, layout needs %d", len(f.cellStart), f.numCells+1)
	}
	n := int32(f.t.NumRows())
	if f.cellStart[0] != 0 || f.cellStart[f.numCells] != n {
		return fmt.Errorf("core: cell table spans [%d, %d], table has %d rows",
			f.cellStart[0], f.cellStart[f.numCells], n)
	}
	for c := 0; c < f.numCells; c++ {
		if f.cellStart[c] > f.cellStart[c+1] {
			return fmt.Errorf("core: cell table decreases at cell %d", c)
		}
	}
	return nil
}

// loadV1 reads the unframed version-1 format (no checksums); the 8-byte
// magic has already been consumed.
func loadV1(r *wire.Reader) (*Flood, error) {
	f := &Flood{}
	if err := f.decodeMeta(r); err != nil {
		return nil, err
	}
	var err error
	if f.t, err = colstore.DecodeTable(r); err != nil {
		return nil, err
	}
	if err := f.validateLayout(); err != nil {
		return nil, err
	}
	if err := f.decodeModels(r); err != nil {
		return nil, err
	}
	// Version 1 predates bitmap indexes; build them fresh.
	f.t.EnableBitmapIndexes(f.opts.bitmapMaxCard())
	f.computeCellStats()
	f.computeParallelCutover()
	return f, nil
}
