package core

import (
	"bytes"
	"math/rand"
	"testing"

	"flood/internal/colstore"
	"flood/internal/query"
	"flood/internal/wire"
)

// bitmapTestIndex builds an index over a table whose "city" column (dim 2)
// is low-cardinality and therefore bitmap-indexed at Build.
func bitmapTestIndex(t *testing.T, n int) (*Flood, [][]int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	data := make([][]int64, 3)
	for c := range data {
		data[c] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		data[0][i] = rng.Int63n(1 << 30)
		data[1][i] = rng.Int63n(10000)
		data[2][i] = rng.Int63n(5)
	}
	tbl, err := colstore.NewTable([]string{"ts", "val", "city"}, data)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Build(tbl, Layout{GridDims: []int{0}, GridCols: []int{8}, SortDim: 1, Flatten: true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return f, data
}

func checkBitmapQueries(t *testing.T, orig, loaded *Flood) {
	t.Helper()
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 30; trial++ {
		q := query.NewQuery(3).
			WithEquals(2, rng.Int63n(5)).
			WithRange(1, rng.Int63n(5000), 5000+rng.Int63n(5000))
		a1, a2 := query.NewCount(), query.NewCount()
		orig.Execute(q, a1)
		loaded.Execute(q, a2)
		if a1.Result() != a2.Result() {
			t.Fatalf("trial %d: loaded index answered %d, original %d", trial, a2.Result(), a1.Result())
		}
	}
}

func TestBuildCreatesBitmapIndexes(t *testing.T) {
	f, _ := bitmapTestIndex(t, 3000)
	if f.t.Bitmap(2) == nil {
		t.Fatal("low-cardinality column should get a bitmap index at Build")
	}
	if f.t.Bitmap(0) != nil {
		t.Fatal("wide column should not get a bitmap index")
	}
	// A negative threshold disables them.
	tbl, _ := makeData(t, 500, 3, 99)
	g, err := Build(tbl, Layout{GridDims: []int{0}, GridCols: []int{4}, SortDim: 1, Flatten: true},
		Options{BitmapMaxCardinality: -1})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if g.t.Bitmap(c) != nil {
			t.Fatal("BitmapMaxCardinality < 0 should disable bitmap indexes")
		}
	}
}

func TestSaveLoadBitmapSection(t *testing.T) {
	f, _ := bitmapTestIndex(t, 3000)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	res, err := LoadSections(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 || res.Retrained {
		t.Fatalf("clean load should not warn: %+v", res.Warnings)
	}
	bi := res.Index.t.Bitmap(2)
	if bi == nil {
		t.Fatal("bitmap index should survive save/load")
	}
	if want := f.t.Bitmap(2); bi.Cardinality() != want.Cardinality() || bi.MinValue() != want.MinValue() {
		t.Fatalf("bitmap domain changed across save/load: card %d→%d min %d→%d",
			want.Cardinality(), bi.Cardinality(), want.MinValue(), bi.MinValue())
	}
	checkBitmapQueries(t, f, res.Index)
}

// TestLoadSnapshotWithoutBitmapSection emulates a snapshot written before the
// bidx section existed (same version, three sections): it must load cleanly
// and rebuild the bitmap indexes from the data section.
func TestLoadSnapshotWithoutBitmapSection(t *testing.T) {
	f, _ := bitmapTestIndex(t, 3000)
	var buf bytes.Buffer
	if err := wire.WriteHeader(&buf, PersistVersion, 3); err != nil {
		t.Fatal(err)
	}
	sw := wire.NewSectionWriter(&buf)
	sw.Section(SectionMeta, f.encodeMeta)
	sw.Section(SectionData, func(w *wire.Writer) { f.t.Encode(w) })
	sw.Section(SectionModels, func(w *wire.Writer) { _ = f.encodeModels(w) })
	if err := sw.Err(); err != nil {
		t.Fatal(err)
	}
	res, err := LoadSections(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("pre-bidx snapshot should load, got %v", err)
	}
	if res.Retrained {
		t.Fatal("missing bidx alone should not retrain the models")
	}
	if res.Index.t.Bitmap(2) == nil {
		t.Fatal("load should rebuild bitmap indexes for a pre-bidx snapshot")
	}
	checkBitmapQueries(t, f, res.Index)
}

// TestLoadDamagedBitmapSectionRecovers flips a byte inside the bidx payload:
// the section is reconstructible, so the load must succeed with a warning and
// rebuilt indexes instead of failing.
func TestLoadDamagedBitmapSectionRecovers(t *testing.T) {
	f, _ := bitmapTestIndex(t, 3000)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	at := bytes.Index(raw, []byte(SectionBitmaps))
	if at < 0 {
		t.Fatal("snapshot has no bidx section")
	}
	raw[at+16] ^= 0xFF // inside the payload: CRC mismatch, framing intact
	res, err := LoadSections(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("damaged bidx should recover, got %v", err)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("damaged bidx should be reported in Warnings")
	}
	if res.Retrained {
		t.Fatal("bidx damage alone should not retrain the models")
	}
	if res.Index.t.Bitmap(2) == nil {
		t.Fatal("damaged bidx should be rebuilt from the data section")
	}
	checkBitmapQueries(t, f, res.Index)
}

// TestLoadV1RebuildsBitmaps checks that the unframed version-1 reader also
// leaves the loaded index with bitmap indexes.
func TestLoadV1RebuildsBitmaps(t *testing.T) {
	f, _ := bitmapTestIndex(t, 1500)
	var buf bytes.Buffer
	buf.WriteString(persistMagicV1)
	w := wire.NewWriter(&buf)
	f.encodeMeta(w)
	f.t.Encode(w)
	if err := f.encodeModels(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.t.Bitmap(2) == nil {
		t.Fatal("v1 load should rebuild bitmap indexes")
	}
	checkBitmapQueries(t, f, loaded)
}
