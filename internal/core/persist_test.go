package core

import (
	"bytes"
	"math/rand"
	"testing"

	"flood/internal/query"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	tbl, data := makeData(t, 5000, 4, 131)
	tbl.EnableAggregate(3)
	for _, layout := range []Layout{
		{GridDims: []int{0, 1}, GridCols: []int{8, 4}, SortDim: 2, Flatten: true},
		{GridDims: []int{2}, GridCols: []int{16}, SortDim: -1, Flatten: false},
		{GridDims: []int{0, 1, 2, 3}, GridCols: []int{3, 3, 3, 3}, SortDim: -1, Flatten: true},
	} {
		orig, err := Build(tbl, layout, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Layout().String() != orig.Layout().String() {
			t.Fatalf("layout changed: %s -> %s", orig.Layout(), loaded.Layout())
		}
		if loaded.NumCells() != orig.NumCells() || loaded.NonEmptyCells() != orig.NonEmptyCells() {
			t.Fatal("cell structure changed across save/load")
		}
		rng := rand.New(rand.NewSource(132))
		for trial := 0; trial < 25; trial++ {
			q := randomQuery(rng, data, 4)
			a1, a2 := query.NewCount(), query.NewCount()
			orig.Execute(q, a1)
			loaded.Execute(q, a2)
			if a1.Result() != a2.Result() {
				t.Fatalf("layout %s: loaded index answered %d, original %d", layout, a2.Result(), a1.Result())
			}
		}
		// SUM over the aggregate-enabled column must survive too.
		q := query.NewQuery(4).WithRange(0, 0, 500)
		s1, s2 := query.NewSum(3), query.NewSum(3)
		orig.Execute(q, s1)
		loaded.Execute(q, s2)
		if s1.Result() != s2.Result() {
			t.Fatalf("sum changed across save/load: %d vs %d", s1.Result(), s2.Result())
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Fatal("garbage should not load")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream should not load")
	}
	// A truncated valid stream must fail cleanly, not panic.
	tbl, _ := makeData(t, 500, 3, 133)
	idx, _ := Build(tbl, Layout{GridDims: []int{0}, GridCols: []int{4}, SortDim: 1, Flatten: true}, Options{})
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{8, 64, buf.Len() / 2} {
		if _, err := Load(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes should fail", cut)
		}
	}
	// Truncation confined to the final (models) section degrades instead:
	// the models are retrained from the intact data sections.
	res, err := LoadSections(bytes.NewReader(buf.Bytes()[:buf.Len()-4]))
	if err != nil {
		t.Fatalf("models-only truncation should recover by retraining, got %v", err)
	}
	if !res.Retrained || len(res.Warnings) == 0 {
		t.Fatalf("models-only truncation should report retraining, got %+v", res)
	}
	if res.Index.NumCells() != idx.NumCells() {
		t.Fatal("retrained index has different cell structure")
	}
}

func TestSaveLoadPreservesKNN(t *testing.T) {
	tbl, data := makeData(t, 2000, 3, 134)
	idx, _ := Build(tbl, Layout{GridDims: []int{0, 1}, GridCols: []int{6, 6}, SortDim: 2, Flatten: true}, Options{})
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	point := []int64{data[0][7], data[1][7], data[2][7]}
	n1, err1 := idx.KNN(point, 5)
	n2, err2 := loaded.KNN(point, 5)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range n1 {
		if n1[i].Dist != n2[i].Dist {
			t.Fatalf("kNN changed across save/load at %d: %f vs %f", i, n1[i].Dist, n2[i].Dist)
		}
	}
}
