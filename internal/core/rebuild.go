package core

import (
	"fmt"

	"flood/internal/colstore"
)

// MergeRows returns a new table holding t's rows followed by the given
// column-major extra rows, preserving which columns have cumulative
// aggregates enabled. extra must have one slice per table column, all of
// equal length; with no extra rows the input table is returned unchanged.
// Neither input is modified, so callers may pass live (immutable-prefix)
// buffers without copying them first.
func MergeRows(t *colstore.Table, extra [][]int64) (*colstore.Table, error) {
	if len(extra) != 0 && len(extra) != t.NumCols() {
		return nil, fmt.Errorf("core: merge has %d columns, table has %d", len(extra), t.NumCols())
	}
	add := 0
	if len(extra) > 0 {
		add = len(extra[0])
	}
	if add == 0 {
		return t, nil
	}
	n := t.NumRows()
	cols := make([][]int64, t.NumCols())
	for c := range cols {
		if len(extra[c]) != add {
			return nil, fmt.Errorf("core: merge column %d has %d rows, column 0 has %d", c, len(extra[c]), add)
		}
		cols[c] = make([]int64, 0, n+add)
		cols[c] = append(cols[c], t.Raw(c)...)
		cols[c] = append(cols[c], extra[c]...)
	}
	merged, err := colstore.NewTable(t.Names(), cols)
	if err != nil {
		return nil, err
	}
	for c := 0; c < t.NumCols(); c++ {
		if t.HasAggregate(c) {
			merged.EnableAggregate(c)
		}
	}
	return merged, nil
}

// MergeRowsLive is MergeRows restricted to live rows: rows of t marked dead
// in tomb and extra rows marked dead in extraTomb are dropped instead of
// copied. Either tombstone set may be nil (nothing dead) or cover more rows
// than its input (the extra slice is a frozen prefix of a still-growing
// buffer); rows beyond a set's coverage are live. This is the compaction
// step: a rebuild over the merged result physically discards deleted rows,
// and the fresh index starts with an empty tombstone set.
func MergeRowsLive(t *colstore.Table, tomb *colstore.Tombstones, extra [][]int64, extraTomb *colstore.Tombstones) (*colstore.Table, error) {
	if tomb.Dead() == 0 && extraTomb.Dead() == 0 {
		return MergeRows(t, extra)
	}
	if len(extra) != 0 && len(extra) != t.NumCols() {
		return nil, fmt.Errorf("core: merge has %d columns, table has %d", len(extra), t.NumCols())
	}
	add := 0
	if len(extra) > 0 {
		add = len(extra[0])
	}
	n := t.NumRows()
	cols := make([][]int64, t.NumCols())
	for c := range cols {
		if len(extra) > 0 && len(extra[c]) != add {
			return nil, fmt.Errorf("core: merge column %d has %d rows, column 0 has %d", c, len(extra[c]), add)
		}
		col := make([]int64, 0, n+add)
		for i, v := range t.Raw(c) {
			if !tomb.Has(i) {
				col = append(col, v)
			}
		}
		if len(extra) > 0 {
			for i, v := range extra[c] {
				if !extraTomb.Has(i) {
					col = append(col, v)
				}
			}
		}
		cols[c] = col
	}
	merged, err := colstore.NewTable(t.Names(), cols)
	if err != nil {
		return nil, err
	}
	for c := 0; c < t.NumCols(); c++ {
		if t.HasAggregate(c) {
			merged.EnableAggregate(c)
		}
	}
	return merged, nil
}

// Rebuild constructs a fresh index over f's live rows plus the given
// column-major extra rows, reusing f's layout and options. It is the merge
// step of the differential-update scheme (§8, "Insertions"): the grid shape
// is kept and only the physical placement is recomputed, so it is much
// cheaper than a full relearn. Rows tombstoned in f are compacted away — the
// returned index holds the same logical contents with an empty tombstone
// set. f itself is not modified and remains fully usable — callers swap the
// returned index in when ready.
func (f *Flood) Rebuild(extra [][]int64) (*Flood, error) {
	return f.RebuildLive(extra, nil)
}

// RebuildLive is Rebuild with a tombstone set over the extra rows as well:
// wrappers that tombstone buffered rows (the delta index's buffer, the
// adaptive side log) pass it so their deletions compact in the same pass.
func (f *Flood) RebuildLive(extra [][]int64, extraTomb *colstore.Tombstones) (*Flood, error) {
	return f.RebuildCompact(extra, f.tomb.Load(), extraTomb)
}

// RebuildCompact is RebuildLive against explicitly captured tombstone sets
// rather than f's current ones. Concurrent wrappers use it: a background
// rebuild captures the tombstones together with its frozen row snapshot, and
// deletions that land during the build are re-applied to the fresh index
// separately — compacting a later tombstone version here would make those
// deletions apply twice.
func (f *Flood) RebuildCompact(extra [][]int64, tomb, extraTomb *colstore.Tombstones) (*Flood, error) {
	merged, err := MergeRowsLive(f.t, tomb, extra, extraTomb)
	if err != nil {
		return nil, fmt.Errorf("core: rebuild: %w", err)
	}
	return Build(merged, f.layout, f.opts)
}
