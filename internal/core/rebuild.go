package core

import (
	"fmt"

	"flood/internal/colstore"
)

// MergeRows returns a new table holding t's rows followed by the given
// column-major extra rows, preserving which columns have cumulative
// aggregates enabled. extra must have one slice per table column, all of
// equal length; with no extra rows the input table is returned unchanged.
// Neither input is modified, so callers may pass live (immutable-prefix)
// buffers without copying them first.
func MergeRows(t *colstore.Table, extra [][]int64) (*colstore.Table, error) {
	if len(extra) != 0 && len(extra) != t.NumCols() {
		return nil, fmt.Errorf("core: merge has %d columns, table has %d", len(extra), t.NumCols())
	}
	add := 0
	if len(extra) > 0 {
		add = len(extra[0])
	}
	if add == 0 {
		return t, nil
	}
	n := t.NumRows()
	cols := make([][]int64, t.NumCols())
	for c := range cols {
		if len(extra[c]) != add {
			return nil, fmt.Errorf("core: merge column %d has %d rows, column 0 has %d", c, len(extra[c]), add)
		}
		cols[c] = make([]int64, 0, n+add)
		cols[c] = append(cols[c], t.Raw(c)...)
		cols[c] = append(cols[c], extra[c]...)
	}
	merged, err := colstore.NewTable(t.Names(), cols)
	if err != nil {
		return nil, err
	}
	for c := 0; c < t.NumCols(); c++ {
		if t.HasAggregate(c) {
			merged.EnableAggregate(c)
		}
	}
	return merged, nil
}

// Rebuild constructs a fresh index over f's rows plus the given column-major
// extra rows, reusing f's layout and options. It is the merge step of the
// differential-update scheme (§8, "Insertions"): the grid shape is kept and
// only the physical placement is recomputed, so it is much cheaper than a
// full relearn. f itself is not modified and remains fully usable — callers
// swap the returned index in when ready.
func (f *Flood) Rebuild(extra [][]int64) (*Flood, error) {
	merged, err := MergeRows(f.t, extra)
	if err != nil {
		return nil, fmt.Errorf("core: rebuild: %w", err)
	}
	return Build(merged, f.layout, f.opts)
}
