package core

import (
	"math/rand"
	"testing"

	"flood/internal/query"
)

// TestRebuildMatchesScratchBuild pins the merge step: rebuilding with extra
// rows must answer queries exactly like an index built from scratch over the
// concatenated data, and must preserve aggregate-enabled columns.
func TestRebuildMatchesScratchBuild(t *testing.T) {
	tbl, data := makeData(t, 5000, 3, 11)
	tbl.EnableAggregate(2)
	layout := Layout{GridDims: []int{0, 1}, GridCols: []int{6, 6}, SortDim: 2, Flatten: true}
	base, err := Build(tbl, layout, Options{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(12))
	const added = 700
	extra := make([][]int64, 3)
	all := make([][]int64, 3)
	for c := range extra {
		extra[c] = make([]int64, added)
		for i := range extra[c] {
			extra[c][i] = rng.Int63n(1 << 16)
		}
		all[c] = append(append([]int64(nil), data[c]...), extra[c]...)
	}

	rebuilt, err := base.Rebuild(extra)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Table().NumRows() != 5700 {
		t.Fatalf("rebuilt has %d rows, want 5700", rebuilt.Table().NumRows())
	}
	if !rebuilt.Table().HasAggregate(2) {
		t.Fatal("rebuild dropped the aggregate column")
	}
	if rebuilt.Layout().String() != base.Layout().String() {
		t.Fatal("rebuild must keep the layout")
	}
	for i := 0; i < 50; i++ {
		q := randomQuery(rng, all, 3)
		agg := query.NewCount()
		rebuilt.Execute(q, agg)
		if want := bruteCount(all, q); agg.Result() != want {
			t.Fatalf("query %d: count %d, want %d", i, agg.Result(), want)
		}
		sum := query.NewSum(2)
		rebuilt.Execute(q, sum)
		if want := bruteSum(all, q, 2); sum.Result() != want {
			t.Fatalf("query %d: sum %d, want %d", i, sum.Result(), want)
		}
	}

	// Degenerate inputs: no extra rows returns the same data; mismatched
	// shapes fail loudly.
	if same, err := MergeRows(base.Table(), nil); err != nil || same != base.Table() {
		t.Fatalf("empty merge should return the input table (err %v)", err)
	}
	if _, err := MergeRows(base.Table(), [][]int64{{1}}); err == nil {
		t.Fatal("column-count mismatch should fail")
	}
	if _, err := MergeRows(base.Table(), [][]int64{{1}, {1, 2}, {1}}); err == nil {
		t.Fatal("ragged extra rows should fail")
	}
}
