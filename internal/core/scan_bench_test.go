package core

import (
	"math/rand"
	"testing"

	"flood/internal/colstore"
	"flood/internal/query"
)

// Benchmarks for the vectorized scan kernel and the O(n) grid build. These
// back the perf table in README.md; `make bench` records them in
// BENCH_scan.json. Run with:
//
//	go test ./internal/core -bench 'Residual|Build1M|SteadyState' -benchmem
//
// residualBenchIndex builds a 5-dim table where dims 3 and 4 are correlated
// with the grid dims (dim3 ~ dim0, dim4 ~ dim1), the common case where
// residual-filter zone maps can prune blocks: after the grid reorder, rows
// in a cell share a narrow dim0 band and therefore a narrow dim3 band.
func residualBenchIndex(b *testing.B, n int) (*Flood, []query.Query) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	data := make([][]int64, 5)
	for d := range data {
		data[d] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		data[0][i] = rng.Int63n(1 << 20)
		data[1][i] = rng.Int63n(1 << 20)
		data[2][i] = rng.Int63n(1 << 20)
		data[3][i] = data[0][i] + rng.Int63n(1<<12)
		data[4][i] = data[1][i] + rng.Int63n(1<<12)
	}
	tbl, err := colstore.NewTable([]string{"a", "b", "c", "d", "e"}, data)
	if err != nil {
		b.Fatal(err)
	}
	layout := Layout{GridDims: []int{0, 1}, GridCols: []int{16, 16}, SortDim: 2, Flatten: true}
	idx, err := Build(tbl, layout, Options{})
	if err != nil {
		b.Fatal(err)
	}
	var queries []query.Query
	for i := 0; i < 64; i++ {
		lo0 := rng.Int63n(1 << 19)
		lo1 := rng.Int63n(1 << 19)
		q := query.NewQuery(5).
			WithRange(0, lo0, lo0+1<<18).
			WithRange(1, lo1, lo1+1<<18).
			WithRange(3, lo0, lo0+1<<17).
			WithRange(4, lo1, lo1+1<<17)
		queries = append(queries, q)
	}
	return idx, queries
}

// BenchmarkResidualFilterScan measures range queries whose predicate keeps
// residual (non-grid, non-sort) dimensions that must be filter-checked
// during the scan — the path the selection-vector + zone-map kernel targets.
func BenchmarkResidualFilterScan(b *testing.B) {
	idx, queries := residualBenchIndex(b, 200_000)
	agg := query.NewCount()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Reset()
		idx.Execute(queries[i%len(queries)], agg)
	}
}

// BenchmarkWideRectScan measures a query rectangle covering many grid cells
// with only grid-dim filters: the range-coalescing path (O(perimeter) scan
// ranges instead of O(volume)).
func BenchmarkWideRectScan(b *testing.B) {
	idx, queries := residualBenchIndex(b, 200_000)
	wide := make([]query.Query, len(queries))
	for i, q := range queries {
		w := query.NewQuery(5)
		w.Ranges[0] = q.Ranges[0]
		w.Ranges[1] = q.Ranges[1]
		wide[i] = w
	}
	agg := query.NewCount()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Reset()
		idx.Execute(wide[i%len(wide)], agg)
	}
}

// BenchmarkSteadyStateExecute measures the fully warmed Execute path (the
// one that must run with zero allocations per query).
func BenchmarkSteadyStateExecute(b *testing.B) {
	idx, queries := residualBenchIndex(b, 200_000)
	agg := query.NewCount()
	// Warm pools/buffers.
	for _, q := range queries {
		idx.Execute(q, agg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Reset()
		idx.Execute(queries[i%len(queries)], agg)
	}
}

// BenchmarkBuild1M measures index construction at 1M rows x 4 dims.
func BenchmarkBuild1M(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 1_000_000
	data := make([][]int64, 4)
	for d := range data {
		data[d] = make([]int64, n)
		for i := range data[d] {
			data[d][i] = rng.Int63n(1 << 30)
		}
	}
	tbl, err := colstore.NewTable([]string{"a", "b", "c", "d"}, data)
	if err != nil {
		b.Fatal(err)
	}
	layout := Layout{GridDims: []int{0, 1}, GridCols: []int{32, 16}, SortDim: 2, Flatten: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(tbl, layout, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeleteHeavyScan1M measures the tombstone-masked sequential scan
// on a 1M-row index at increasing delete densities. The 0% case publishes no
// mask (nil tombstone words, unmasked fast path); the others pay one AND-NOT
// per block word — the perf contract is that 1% density stays within noise
// of 0%, and even 50% costs only the mask application, never a row-level
// branch.
func BenchmarkDeleteHeavyScan1M(b *testing.B) {
	for _, tc := range []struct {
		name    string
		density float64
	}{
		{"dead0", 0}, {"dead1", 0.01}, {"dead10", 0.10}, {"dead50", 0.50},
	} {
		b.Run(tc.name, func(b *testing.B) {
			const n = 1_000_000
			rng := rand.New(rand.NewSource(7))
			data := make([][]int64, 3)
			for d := range data {
				data[d] = make([]int64, n)
				for i := range data[d] {
					data[d][i] = rng.Int63n(1 << 20)
				}
			}
			tbl, err := colstore.NewTable([]string{"a", "b", "c"}, data)
			if err != nil {
				b.Fatal(err)
			}
			layout := Layout{GridDims: []int{0, 1}, GridCols: []int{16, 16}, SortDim: 2, Flatten: true}
			idx, err := Build(tbl, layout, Options{})
			if err != nil {
				b.Fatal(err)
			}
			if tc.density > 0 {
				dead := make([]int, 0, int(tc.density*n))
				for i := 0; i < n; i++ {
					if rng.Float64() < tc.density {
						dead = append(dead, i)
					}
				}
				idx.DeleteRows(dead)
			}
			var queries []query.Query
			for i := 0; i < 64; i++ {
				lo0 := rng.Int63n(1 << 19)
				lo1 := rng.Int63n(1 << 19)
				queries = append(queries, query.NewQuery(3).
					WithRange(0, lo0, lo0+1<<18).
					WithRange(1, lo1, lo1+1<<18))
			}
			agg := query.NewCount()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg.Reset()
				idx.Execute(queries[i%len(queries)], agg)
			}
		})
	}
}
