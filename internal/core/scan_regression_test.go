package core

import (
	"math/rand"
	"runtime/debug"
	"testing"

	"flood/internal/colstore"
	"flood/internal/query"
)

// regressionTable builds a fully deterministic 4-dim table: dims 0 and 1
// take values c*4+j for grid coordinate c in 0..3 (equi-width 4-column
// bucketing maps value v to column v/4 exactly), dim 2 counts 0..7 within
// each cell (the sort dimension), and dim 3 mirrors dim 2 (a residual dim).
// Every (c0, c1) cell holds exactly 8 rows.
func regressionTable(t *testing.T) *colstore.Table {
	t.Helper()
	var d0, d1, d2, d3 []int64
	for c0 := int64(0); c0 < 4; c0++ {
		for c1 := int64(0); c1 < 4; c1++ {
			for i := int64(0); i < 8; i++ {
				d0 = append(d0, c0*4+i%4)
				d1 = append(d1, c1*4+i%4)
				d2 = append(d2, i)
				d3 = append(d3, i)
			}
		}
	}
	return colstore.MustNewTable([]string{"a", "b", "c", "d"}, [][]int64{d0, d1, d2, d3})
}

// TestProjectStatsAfterCoalescing pins the projection stats introduced with
// range coalescing: CellsVisited counts only non-empty intersected cells,
// and ScanRanges reflects physically merged runs of cells.
func TestProjectStatsAfterCoalescing(t *testing.T) {
	tbl := regressionTable(t)
	layout := Layout{GridDims: []int{0, 1}, GridCols: []int{4, 4}, SortDim: 2, Flatten: false}
	idx, err := Build(tbl, layout, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// No sort-dim filter: coalescing applies. The rectangle spans all 4
	// dim-0 columns and dim-1 columns 1..2, i.e. cells {c0*4+c1 : c1 in
	// {1,2}} — 8 non-empty cells. Each dim-0 row of the rectangle is a
	// physically contiguous pair of cells with an identical residual mask,
	// so the 8 cells coalesce into 4 scan ranges.
	q := query.NewQuery(4).WithRange(0, 0, 15).WithRange(1, 4, 11)
	agg := query.NewCount()
	st := idx.Execute(q, agg)
	if st.CellsVisited != 8 {
		t.Errorf("CellsVisited = %d, want 8 (non-empty cells only)", st.CellsVisited)
	}
	if st.ScanRanges != 4 {
		t.Errorf("ScanRanges = %d, want 4 (coalesced)", st.ScanRanges)
	}
	if st.RangesRefined != 0 {
		t.Errorf("RangesRefined = %d, want 0 (no sort filter)", st.RangesRefined)
	}
	if agg.Result() != 64 || st.Matched != 64 {
		t.Errorf("matched %d rows (agg %d), want 64", st.Matched, agg.Result())
	}

	// With a sort-dim filter, refinement needs per-cell ranges, so
	// coalescing is disabled: 8 cells -> 8 ranges, all refined. Each cell
	// keeps its 4 rows with dim2 in [2,5].
	q = q.WithRange(2, 2, 5)
	agg.Reset()
	st = idx.Execute(q, agg)
	if st.CellsVisited != 8 || st.ScanRanges != 8 || st.RangesRefined != 8 {
		t.Errorf("refined query: CellsVisited=%d ScanRanges=%d RangesRefined=%d, want 8/8/8",
			st.CellsVisited, st.ScanRanges, st.RangesRefined)
	}
	if agg.Result() != 32 {
		t.Errorf("refined query matched %d, want 32", agg.Result())
	}
}

// TestProjectCountsOnlyNonEmptyCells pins the empty-cell accounting fix: a
// sparse table whose points all sit on the grid diagonal must report 4
// visited cells for a rectangle covering all 16, and an unfiltered query
// over it coalesces the whole table into a single exact scan range.
func TestProjectCountsOnlyNonEmptyCells(t *testing.T) {
	var d0, d1, d2 []int64
	for c := int64(0); c < 4; c++ {
		for i := int64(0); i < 5; i++ {
			d0 = append(d0, c*4)
			d1 = append(d1, c*4)
			d2 = append(d2, i)
		}
	}
	tbl := colstore.MustNewTable([]string{"a", "b", "c"}, [][]int64{d0, d1, d2})
	layout := Layout{GridDims: []int{0, 1}, GridCols: []int{4, 4}, SortDim: 2, Flatten: false}
	idx, err := Build(tbl, layout, Options{})
	if err != nil {
		t.Fatal(err)
	}
	agg := query.NewCount()
	st := idx.Execute(query.NewQuery(3).WithRange(0, 0, 15).WithRange(1, 0, 15), agg)
	if st.CellsVisited != 4 {
		t.Errorf("CellsVisited = %d, want 4 (diagonal cells only)", st.CellsVisited)
	}
	if agg.Result() != 20 {
		t.Errorf("matched %d, want 20", agg.Result())
	}
	if idx.NonEmptyCells() != 4 {
		t.Errorf("NonEmptyCells = %d, want 4", idx.NonEmptyCells())
	}

	// Unfiltered query: every cell interior, empty cells between occupied
	// ones leave no physical gap, so one exact range covers the table.
	agg.Reset()
	st = idx.Execute(query.NewQuery(3), agg)
	if st.CellsVisited != 4 || st.ScanRanges != 1 {
		t.Errorf("unfiltered: CellsVisited=%d ScanRanges=%d, want 4/1", st.CellsVisited, st.ScanRanges)
	}
	if st.ExactMatched != 20 || agg.Result() != 20 {
		t.Errorf("unfiltered: ExactMatched=%d agg=%d, want 20/20", st.ExactMatched, agg.Result())
	}
}

// TestExecuteSteadyStateZeroAllocs asserts the tentpole property: once the
// scanner pool and scratch buffers are warm, Execute performs zero heap
// allocations per query. GC is paused so sync.Pool contents survive the
// measurement window.
func TestExecuteSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates inside Execute")
	}
	tbl, _ := makeData(t, 20000, 4, 77)
	layout := Layout{GridDims: []int{0, 1}, GridCols: []int{8, 8}, SortDim: 2, Flatten: true}
	idx, err := Build(tbl, layout, Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []query.Query{
		query.NewQuery(4).WithRange(0, 0, 400).WithRange(2, 0, 1000),
		query.NewQuery(4).WithRange(0, 100, 900).WithRange(1, 0, 1<<40).WithRange(3, 0, 500),
		query.NewQuery(4).WithRange(3, 10, 200),
		query.NewQuery(4),
	}
	agg := query.NewCount()
	for _, q := range queries {
		idx.Execute(q, agg) // warm pools and decode buffers
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for qi, q := range queries {
		allocs := testing.AllocsPerRun(50, func() {
			agg.Reset()
			idx.Execute(q, agg)
		})
		if allocs != 0 {
			t.Errorf("query %d: %.1f allocs per Execute, want 0", qi, allocs)
		}
	}
}

// TestOneSidedRangeOnTinyDomainGridDim is the regression test for the
// bucketer extreme-value overflow at the engine level: a one-sided predicate
// ([v, PosInf]) on a flattened grid dimension with a tiny value domain
// (dictionary codes) used to project to an inverted column range and visit a
// single grid cell, silently dropping most matches. Covers both bucketer
// kinds.
func TestOneSidedRangeOnTinyDomainGridDim(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	n := 4000
	code := make([]int64, n) // tiny domain, e.g. dictionary codes
	val := make([]int64, n)
	for i := 0; i < n; i++ {
		code[i] = rng.Int63n(5)
		val[i] = rng.Int63n(1000) - 500 // negative min for the linear bucketer
	}
	tbl := colstore.MustNewTable([]string{"code", "val"}, [][]int64{code, val})
	for _, flatten := range []bool{true, false} {
		idx, err := Build(tbl, Layout{GridDims: []int{0, 1}, GridCols: []int{5, 4}, SortDim: -1, Flatten: flatten}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		queries := []query.Query{
			query.NewQuery(2).WithRange(0, 1, query.PosInf),
			query.NewQuery(2).WithRange(0, query.NegInf, 3),
			query.NewQuery(2).WithRange(1, 0, query.PosInf),
			query.NewQuery(2).WithRange(0, 2, query.PosInf).WithRange(1, query.NegInf, 100),
		}
		for qi, q := range queries {
			agg := query.NewCount()
			idx.Execute(q, agg)
			want := int64(0)
			for i := 0; i < n; i++ {
				if q.Matches([]int64{code[i], val[i]}) {
					want++
				}
			}
			if agg.Result() != want {
				t.Fatalf("flatten=%v query %d: engine counted %d, brute force %d", flatten, qi, agg.Result(), want)
			}
		}
	}
}
