package core

import (
	"math/rand"
	"runtime/debug"
	"testing"

	"flood/internal/query"
)

// TestTombstoneMaskedScanZeroAllocs asserts the delete-path perf contract:
// masking tombstones costs one AND-NOT per block word and zero heap
// allocations — the sequential scan stays allocation-free at any density.
func TestTombstoneMaskedScanZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates inside Execute")
	}
	tbl, _ := makeData(t, 20000, 4, 78)
	layout := Layout{GridDims: []int{0, 1}, GridCols: []int{8, 8}, SortDim: 2, Flatten: true}
	idx, err := Build(tbl, layout, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	dead := make([]int, 0, 2000)
	for i := 0; i < 2000; i++ {
		dead = append(dead, rng.Intn(20000))
	}
	if idx.DeleteRows(dead) == 0 {
		t.Fatal("DeleteRows marked nothing")
	}
	queries := []query.Query{
		query.NewQuery(4).WithRange(0, 0, 400).WithRange(2, 0, 1000),
		query.NewQuery(4).WithRange(3, 10, 200),
		query.NewQuery(4),
	}
	agg := query.NewCount()
	for _, q := range queries {
		idx.Execute(q, agg) // warm pools and decode buffers
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for qi, q := range queries {
		allocs := testing.AllocsPerRun(50, func() {
			agg.Reset()
			idx.Execute(q, agg)
		})
		if allocs != 0 {
			t.Errorf("query %d: %.1f allocs per masked Execute, want 0", qi, allocs)
		}
	}
}

// TestTombstoneCompactionRestoresParity pins the compaction contract: after
// Rebuild, the tombstone set is empty (scans take the unmasked fast path
// again), the dead rows are physically gone, and every query answer is
// unchanged.
func TestTombstoneCompactionRestoresParity(t *testing.T) {
	tbl, _ := makeData(t, 10000, 4, 79)
	layout := Layout{GridDims: []int{0, 1}, GridCols: []int{8, 8}, SortDim: 2, Flatten: true}
	idx, err := Build(tbl, layout, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	dead := make([]int, 0, 100)
	for i := 0; i < 100; i++ { // ~1% density
		dead = append(dead, rng.Intn(10000))
	}
	marked := idx.DeleteRows(dead)
	queries := []query.Query{
		query.NewQuery(4).WithRange(0, 0, 400),
		query.NewQuery(4).WithRange(1, 0, 1<<40).WithRange(3, 0, 500),
		query.NewQuery(4),
	}
	before := make([]int64, len(queries))
	agg := query.NewCount()
	for i, q := range queries {
		agg.Reset()
		idx.Execute(q, agg)
		before[i] = agg.Result()
	}

	compact, err := idx.Rebuild(nil)
	if err != nil {
		t.Fatal(err)
	}
	if compact.Deleted() != 0 {
		t.Fatalf("rebuilt index carries %d tombstones, want 0", compact.Deleted())
	}
	if compact.Tombstones().Words() != nil {
		t.Fatal("rebuilt index still publishes a tombstone mask; scans would pay the AND-NOT for nothing")
	}
	if got, want := compact.Table().NumRows(), 10000-marked; got != want {
		t.Fatalf("rebuilt index has %d physical rows, want %d", got, want)
	}
	for i, q := range queries {
		agg.Reset()
		compact.Execute(q, agg)
		if agg.Result() != before[i] {
			t.Fatalf("query %d: compacted count %d != masked count %d", i, agg.Result(), before[i])
		}
	}
}
