package costmodel

import (
	"math"
	"testing"

	"flood/internal/core"
	"flood/internal/dataset"
	"flood/internal/query"
	"flood/internal/workload"
)

func calibrated(t *testing.T) (*Model, *dataset.Dataset, []query.Query) {
	t.Helper()
	ds := dataset.TPCH(20000, 31)
	queries := workload.Standard(ds, 40, 32)
	m, err := Calibrate(ds.Table, queries, CalibrationConfig{NumLayouts: 5, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	return m, ds, queries
}

func TestCalibrateProducesPositiveWeights(t *testing.T) {
	m, ds, queries := calibrated(t)
	est := NewEstimator(ds.Table, 1500, 34)
	fq := est.Flatten(queries[0])
	cand := Candidate{GridDims: []int{5, 2}, Cols: []float64{16, 8}, SortDim: 6}
	f := est.Estimate(fq, cand)
	if pt := m.PredictTime(f); pt < 0 || math.IsNaN(pt) {
		t.Fatalf("predicted time %f invalid", pt)
	}
	x := f.Vector()
	if m.WS.Predict(x) <= 0 {
		t.Fatalf("ws prediction should be positive, got %f", m.WS.Predict(x))
	}
}

func TestCalibrateValidation(t *testing.T) {
	ds := dataset.Sales(1000, 35)
	if _, err := Calibrate(ds.Table, nil, CalibrationConfig{}); err == nil {
		t.Fatal("want error for empty workload")
	}
}

func TestMeasuredFeaturesConsistent(t *testing.T) {
	ds := dataset.TPCH(10000, 36)
	queries := workload.Standard(ds, 10, 37)
	layout := core.Layout{GridDims: []int{5, 1}, GridCols: []int{10, 5}, SortDim: 6, Flatten: true}
	idx, err := core.Build(ds.Table, layout, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		agg := query.NewCount()
		st := idx.Execute(q, agg)
		f := Measured(idx, q, st)
		if f.TotalCells != 50 {
			t.Fatalf("TotalCells = %f, want 50", f.TotalCells)
		}
		if f.Nc != float64(st.CellsVisited) || f.Ns != float64(st.Scanned) {
			t.Fatal("Nc/Ns mismatch with stats")
		}
		if f.AvgCellSize != 10000.0/50 {
			t.Fatalf("AvgCellSize = %f", f.AvgCellSize)
		}
		if f.ExactFraction < 0 || f.ExactFraction > 1 {
			t.Fatalf("ExactFraction = %f out of range", f.ExactFraction)
		}
		if q.Ranges[6].Present && f.SortFiltered != 1 {
			t.Fatal("SortFiltered should be 1 when the sort dim is filtered")
		}
	}
}

func TestEstimatorTracksMeasured(t *testing.T) {
	// The sample-based estimate of Ns should be within a small factor of
	// the measured value for a mid-size layout.
	ds := dataset.TPCH(30000, 38)
	queries := workload.Standard(ds, 15, 39)
	layout := core.Layout{GridDims: []int{5, 6}, GridCols: []int{12, 6}, SortDim: 2, Flatten: true}
	idx, err := core.Build(ds.Table, layout, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(ds.Table, 4000, 40)
	cand := Candidate{GridDims: []int{5, 6}, Cols: []float64{12, 6}, SortDim: 2}
	var measTotal, estTotal float64
	for _, q := range queries {
		agg := query.NewCount()
		st := idx.Execute(q, agg)
		f := est.Estimate(est.Flatten(q), cand)
		measTotal += float64(st.Scanned)
		estTotal += f.Ns
	}
	if measTotal == 0 {
		t.Skip("workload matched nothing")
	}
	ratio := estTotal / measTotal
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("estimated/measured Ns ratio %.2f too far from 1 (est %f meas %f)", ratio, estTotal, measTotal)
	}
}

func TestEstimatorMoreCellsFewerScanned(t *testing.T) {
	// Growing the grid should monotonically (roughly) shrink estimated
	// scan counts for a filtered query.
	ds := dataset.OSM(20000, 41)
	est := NewEstimator(ds.Table, 3000, 42)
	q := query.NewQuery(6).WithRange(2, 40_000_000, 41_000_000).WithRange(3, -75_000_000, -73_000_000)
	fq := est.Flatten(q)
	prevNs := math.Inf(1)
	for _, c := range []float64{2, 8, 32} {
		f := est.Estimate(fq, Candidate{GridDims: []int{2, 3}, Cols: []float64{c, c}, SortDim: 1})
		if f.Ns > prevNs*1.5 {
			t.Fatalf("Ns grew sharply with more columns: %f -> %f at c=%f", prevNs, f.Ns, c)
		}
		prevNs = f.Ns
	}
}

func TestPredictTimeRefinementTerm(t *testing.T) {
	m, ds, queries := calibrated(t)
	est := NewEstimator(ds.Table, 1000, 43)
	var q query.Query
	found := false
	for _, qq := range queries {
		if qq.Ranges[6].Present {
			q, found = qq, true
			break
		}
	}
	if !found {
		t.Skip("no query filters receiptdate")
	}
	cand := Candidate{GridDims: []int{5}, Cols: []float64{32}, SortDim: 6}
	f := est.Estimate(est.Flatten(q), cand)
	if f.SortFiltered != 1 {
		t.Fatal("expected sort-filtered feature")
	}
	withRefine := m.PredictTime(f)
	f2 := f
	f2.SortFiltered = 0
	withoutRefine := m.PredictTime(f2)
	// The wr·Nc term must only appear when the sort dim is filtered;
	// predictions may differ through the forests too, so simply assert
	// both are finite and non-negative.
	if withRefine < 0 || withoutRefine < 0 {
		t.Fatal("negative predicted times")
	}
}

func TestFlattenQueryBounds(t *testing.T) {
	ds := dataset.Perfmon(10000, 44)
	est := NewEstimator(ds.Table, 2000, 45)
	q := query.NewQuery(6).WithRange(2, 10, 50).WithEquals(1, 3)
	fq := est.Flatten(q)
	if !fq.Present[2] || !fq.Present[1] || fq.Present[0] {
		t.Fatal("presence flags wrong")
	}
	if fq.Filtered != 2 {
		t.Fatalf("Filtered = %d", fq.Filtered)
	}
	for dim := 0; dim < 6; dim++ {
		if fq.Lo[dim] < 0 || fq.Hi[dim] > 1 || fq.Lo[dim] > fq.Hi[dim]+1e-9 {
			t.Fatalf("dim %d: flattened range [%f, %f] invalid", dim, fq.Lo[dim], fq.Hi[dim])
		}
	}
}

func TestCandidateNumCells(t *testing.T) {
	c := Candidate{Cols: []float64{4, 2.5, 1}}
	if got := c.NumCells(); got != 10 {
		t.Fatalf("NumCells = %f, want 10", got)
	}
	if (Candidate{}).NumCells() != 1 {
		t.Fatal("empty candidate should have 1 cell")
	}
}
