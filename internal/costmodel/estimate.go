package costmodel

import (
	"math"
	"math/rand"

	"flood/internal/colstore"
	"flood/internal/query"
	"flood/internal/rmi"
)

// Estimator computes cost-model features for candidate layouts without
// building them, using a flattened data sample (§4.2: "statistics are either
// estimated using a sample of D or computed exactly from the query rectangle
// and layout parameters").
type Estimator struct {
	n      int         // full dataset size
	d      int         // dimensions
	cdfs   []*rmi.CDF  // per-dimension CDFs trained on the sample
	flat   [][]float64 // [dim][i]: flattened sample values in [0, 1]
	scale  float64     // n / sampleSize
	sample int
}

// NewEstimator draws a row sample from tbl and trains per-dimension CDFs
// (the "flattening" of Algorithm 1 line 8).
func NewEstimator(tbl *colstore.Table, sampleSize int, seed int64) *Estimator {
	n := tbl.NumRows()
	if sampleSize <= 0 || sampleSize > n {
		sampleSize = n
	}
	rng := rand.New(rand.NewSource(seed))
	rows := rng.Perm(n)[:sampleSize]
	e := &Estimator{n: n, d: tbl.NumCols(), sample: sampleSize}
	if sampleSize > 0 {
		e.scale = float64(n) / float64(sampleSize)
	}
	e.cdfs = make([]*rmi.CDF, e.d)
	e.flat = make([][]float64, e.d)
	vals := make([]int64, sampleSize)
	for dim := 0; dim < e.d; dim++ {
		col := tbl.Column(dim)
		for i, r := range rows {
			vals[i] = col.Get(r)
		}
		leaves := sampleSize / 32
		e.cdfs[dim] = rmi.TrainCDF(vals, leaves)
		e.flat[dim] = make([]float64, sampleSize)
		for i, v := range vals {
			e.flat[dim][i] = e.cdfs[dim].At(v)
		}
	}
	return e
}

// SampleSize returns the number of sampled rows.
func (e *Estimator) SampleSize() int { return e.sample }

// FlatQuery is a query with its ranges mapped through the per-dimension
// CDFs.
type FlatQuery struct {
	Present  []bool
	Lo, Hi   []float64
	Filtered int
}

// Flatten maps q through the estimator's CDFs.
func (e *Estimator) Flatten(q query.Query) FlatQuery {
	fq := FlatQuery{
		Present: make([]bool, e.d),
		Lo:      make([]float64, e.d),
		Hi:      make([]float64, e.d),
	}
	for dim, r := range q.Ranges {
		if !r.Present {
			fq.Hi[dim] = 1
			continue
		}
		fq.Present[dim] = true
		fq.Filtered++
		fq.Lo[dim] = e.cdfs[dim].At(r.Min)
		fq.Hi[dim] = e.cdfs[dim].At(r.Max)
	}
	return fq
}

// Candidate is a layout under optimization: column counts are continuous so
// gradient descent can move them smoothly (§4.2).
type Candidate struct {
	GridDims []int
	Cols     []float64 // >= 1
	SortDim  int
}

// NumCells returns the (continuous) total cell count.
func (c Candidate) NumCells() float64 {
	t := 1.0
	for _, v := range c.Cols {
		t *= math.Max(1, v)
	}
	return t
}

// Estimate computes the features q would produce under the candidate layout.
// Scan-region membership is smoothed: a column of width 1/c overshoots each
// range endpoint by 1/(2c) in expectation, which keeps the objective
// differentiable enough for numeric gradients.
func (e *Estimator) Estimate(fq FlatQuery, cand Candidate) Features {
	f := Features{
		TotalCells:   cand.NumCells(),
		DimsFiltered: float64(fq.Filtered),
	}
	f.AvgCellSize = float64(e.n) / f.TotalCells
	if cand.SortDim >= 0 && fq.Present[cand.SortDim] {
		f.SortFiltered = 1
	}
	// Nc: expected number of intersected cells.
	nc := 1.0
	for gi, dim := range cand.GridDims {
		c := math.Max(1, cand.Cols[gi])
		if !fq.Present[dim] {
			nc *= c
			continue
		}
		w := (fq.Hi[dim]-fq.Lo[dim])*c + 1
		if w > c {
			w = c
		}
		nc *= w
	}
	f.Nc = nc

	// Residual dims (filtered but neither grid nor refined sort dims)
	// spoil exactness for every cell.
	hasResidual := false
	for dim := 0; dim < e.d; dim++ {
		if !fq.Present[dim] || dim == cand.SortDim {
			continue
		}
		inGrid := false
		for _, g := range cand.GridDims {
			if g == dim {
				inGrid = true
				break
			}
		}
		if !inGrid {
			hasResidual = true
			break
		}
	}

	// Ns and exact points: count sample points inside the (smoothed) scan
	// region and its interior.
	var ns, exact float64
	for i := 0; i < e.sample; i++ {
		inScan := true
		inInterior := !hasResidual
		for gi, dim := range cand.GridDims {
			if !fq.Present[dim] {
				continue
			}
			c := math.Max(1, cand.Cols[gi])
			over := 1 / (2 * c)
			u := e.flat[dim][i]
			if u < fq.Lo[dim]-over || u > fq.Hi[dim]+over {
				inScan = false
				break
			}
			if u < fq.Lo[dim]+over || u > fq.Hi[dim]-over {
				inInterior = false
			}
		}
		if !inScan {
			continue
		}
		if sd := cand.SortDim; sd >= 0 && fq.Present[sd] {
			u := e.flat[sd][i]
			if u < fq.Lo[sd] || u > fq.Hi[sd] {
				continue // refinement excludes it from the scan
			}
		}
		ns++
		if inInterior {
			exact++
		}
	}
	f.Ns = ns * e.scale
	if f.Nc > 0 {
		f.AvgVisitedPerCell = f.Ns / f.Nc
	}
	if f.Ns > 0 {
		f.ExactFraction = exact * e.scale / f.Ns
	}
	return f
}

// PredictWorkload returns the model's average predicted query time (ns) for
// the flattened workload under the candidate layout.
func (e *Estimator) PredictWorkload(m *Model, fqs []FlatQuery, cand Candidate) float64 {
	var total float64
	for i := range fqs {
		total += m.PredictTime(e.Estimate(fqs[i], cand))
	}
	return total / float64(len(fqs))
}

// DimSelectivities returns the average passing fraction per dimension over
// the flattened queries (lower = more selective), mirroring
// workload.DimSelectivities but computed on the estimator's sample.
func (e *Estimator) DimSelectivities(fqs []FlatQuery) []float64 {
	sums := make([]float64, e.d)
	counts := make([]int, e.d)
	for _, fq := range fqs {
		for dim := 0; dim < e.d; dim++ {
			if !fq.Present[dim] {
				continue
			}
			sums[dim] += fq.Hi[dim] - fq.Lo[dim]
			counts[dim]++
		}
	}
	out := make([]float64, e.d)
	for dim := range out {
		if counts[dim] == 0 {
			out[dim] = 1
		} else {
			out[dim] = sums[dim] / float64(counts[dim])
		}
	}
	return out
}
