// Package costmodel implements Flood's learned cost model (§4.1): query time
// is factored as Time = wp·Nc + wr·Nc + ws·Ns (Eq. 1), where the weights
// {wp, wr, ws} are predicted by random-forest regressors over per-query
// statistics. Calibration (§4.1.1) measures those statistics and weights by
// running a query workload over random layouts; afterwards the model
// predicts query time for candidate layouts using statistics estimated on a
// small data sample, never requiring an index build.
package costmodel

import (
	"flood/internal/core"
	"flood/internal/query"
)

// Features are the weight-model inputs (§4.1.1). Every field is computable
// both from a measured execution (calibration) and from a data sample
// (layout search), with identical definitions.
type Features struct {
	Nc                float64 // cells intersecting the query rectangle
	Ns                float64 // points scanned
	TotalCells        float64 // total cells in the layout
	AvgCellSize       float64 // dataset size / total cells
	DimsFiltered      float64 // number of dimensions the query filters
	AvgVisitedPerCell float64 // Ns / Nc: scan run length proxy
	ExactFraction     float64 // fraction of scanned points in exact sub-ranges
	SortFiltered      float64 // 1 when the query filters the sort dimension
}

// Vector flattens the features for the regressors.
func (f Features) Vector() []float64 {
	return []float64{
		f.Nc, f.Ns, f.TotalCells, f.AvgCellSize,
		f.DimsFiltered, f.AvgVisitedPerCell, f.ExactFraction, f.SortFiltered,
	}
}

// Measured computes features from an actual execution of q on a built index.
func Measured(idx *core.Flood, q query.Query, st query.Stats) Features {
	f := Features{
		Nc:           float64(st.CellsVisited),
		Ns:           float64(st.Scanned),
		TotalCells:   float64(idx.NumCells()),
		DimsFiltered: float64(q.NumFiltered()),
	}
	n := idx.Table().NumRows()
	f.AvgCellSize = float64(n) / f.TotalCells
	if st.CellsVisited > 0 {
		f.AvgVisitedPerCell = f.Ns / f.Nc
	}
	if st.Scanned > 0 {
		f.ExactFraction = float64(st.ExactMatched) / f.Ns
	}
	if sd := idx.Layout().SortDim; sd >= 0 && q.Ranges[sd].Present {
		f.SortFiltered = 1
	}
	return f
}
