package costmodel

import (
	"fmt"
	"math"
	"math/rand"

	"flood/internal/colstore"
	"flood/internal/core"
	"flood/internal/query"
	"flood/internal/rforest"
)

// Model holds the three weight regressors of Eq. 1. Weights are in
// nanoseconds (per cell for wp/wr, per point for ws).
type Model struct {
	WP, WR, WS *rforest.Forest
}

// PredictTime evaluates Eq. 1 for a query with the given features, in
// nanoseconds. The refinement term drops out when the query does not filter
// the sort dimension (§4.1 item 2).
func (m *Model) PredictTime(f Features) float64 {
	x := f.Vector()
	t := m.WP.Predict(x) * f.Nc
	if f.SortFiltered > 0 {
		t += m.WR.Predict(x) * f.Nc
	}
	t += m.WS.Predict(x) * f.Ns
	if t < 0 {
		t = 0
	}
	return t
}

// CalibrationConfig controls weight-model training (§4.1.1).
type CalibrationConfig struct {
	// NumLayouts is the number of random layouts to execute (default 10,
	// which the paper found sufficient).
	NumLayouts int
	// Seed drives layout randomization and forest training.
	Seed int64
	// Forest overrides the regressor configuration (zero = defaults).
	Forest rforest.Config
}

// Calibrate trains the weight models by generating random layouts over tbl,
// running the workload on each, and regressing the observed per-cell and
// per-point times on the observed statistics. This is a once-per-machine
// cost (§7.6): the resulting model transfers across datasets (Table 3).
func Calibrate(tbl *colstore.Table, queries []query.Query, cfg CalibrationConfig) (*Model, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("costmodel: calibration needs queries")
	}
	if cfg.NumLayouts <= 0 {
		cfg.NumLayouts = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var (
		xp, xr, xs [][]float64
		yp, yr, ys []float64
	)
	for li := 0; li < cfg.NumLayouts; li++ {
		layout := randomLayout(rng, tbl.NumCols(), tbl.NumRows())
		idx, err := core.Build(tbl, layout, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("costmodel: building random layout %d: %w", li, err)
		}
		agg := query.NewCount()
		for _, q := range queries {
			agg.Reset()
			st := idx.Execute(q, agg)
			f := Measured(idx, q, st)
			x := f.Vector()
			if st.CellsVisited > 0 {
				xp = append(xp, x)
				yp = append(yp, float64(st.ProjectTime.Nanoseconds())/f.Nc)
			}
			if st.RangesRefined > 0 && st.CellsVisited > 0 {
				xr = append(xr, x)
				yr = append(yr, float64(st.RefineTime.Nanoseconds())/f.Nc)
			}
			if st.Scanned > 0 {
				xs = append(xs, x)
				ys = append(ys, float64(st.ScanTime.Nanoseconds())/f.Ns)
			}
		}
	}
	fcfg := cfg.Forest
	if fcfg.NumTrees == 0 {
		fcfg = rforest.DefaultConfig()
	}
	fcfg.Seed = rng.Int63()
	m := &Model{}
	var err error
	if m.WP, err = rforest.Train(xp, yp, fcfg); err != nil {
		return nil, fmt.Errorf("costmodel: training wp: %w", err)
	}
	fcfg.Seed = rng.Int63()
	if len(xr) == 0 {
		// No refinement samples (workload never filters a sort dim):
		// fall back to the projection model, whose magnitude is similar.
		m.WR = m.WP
	} else if m.WR, err = rforest.Train(xr, yr, fcfg); err != nil {
		return nil, fmt.Errorf("costmodel: training wr: %w", err)
	}
	fcfg.Seed = rng.Int63()
	if m.WS, err = rforest.Train(xs, ys, fcfg); err != nil {
		return nil, fmt.Errorf("costmodel: training ws: %w", err)
	}
	return m, nil
}

// randomLayout draws a random dimension ordering and column counts hitting a
// random total cell budget (§4.1.1).
func randomLayout(rng *rand.Rand, d, n int) core.Layout {
	order := rng.Perm(d)
	sortDim := order[d-1]
	gridDims := order[:d-1]
	maxCells := float64(n)/4 + 2
	targetCells := math.Exp(rng.Float64() * math.Log(maxCells))
	cols := make([]int, len(gridDims))
	// Split log(targetCells) randomly across grid dims.
	weights := make([]float64, len(gridDims))
	var wsum float64
	for i := range weights {
		weights[i] = rng.Float64() + 0.1
		wsum += weights[i]
	}
	logT := math.Log(targetCells)
	for i := range cols {
		cols[i] = int(math.Exp(logT*weights[i]/wsum) + 0.5)
		if cols[i] < 1 {
			cols[i] = 1
		}
	}
	if len(gridDims) == 0 {
		gridDims, cols = nil, nil
	}
	return core.Layout{GridDims: gridDims, GridCols: cols, SortDim: sortDim, Flatten: true}
}
