// Package dataset generates the four evaluation datasets of §7.3 plus the
// uniform synthetic data of §7.5. Two of the paper's datasets are
// proprietary (sales, perfmon) and one is a large public dump (OSM); per
// DESIGN.md §3 they are replaced with synthetic generators matching the
// distributional characteristics the paper reports. All values are int64
// (§7.1): dates become day/second offsets, money becomes cents, coordinates
// become 1e6-scaled fixed-point, and categorical values are dictionary
// codes.
package dataset

import (
	"math"
	"math/rand"

	"flood/internal/colstore"
)

// Dataset is a generated table plus naming metadata.
type Dataset struct {
	Name  string
	Table *colstore.Table
	// Cols holds the raw generated columns (column-major), aliased by the
	// table; kept for ground-truth checks in tests and the harness.
	Cols [][]int64
}

// ColumnIndex returns the position of the named column, or -1.
func (d *Dataset) ColumnIndex(name string) int { return d.Table.ColumnIndex(name) }

func build(name string, names []string, cols [][]int64) *Dataset {
	return &Dataset{Name: name, Table: colstore.MustNewTable(names, cols), Cols: cols}
}

// Sales generates the sales-database stand-in: 6 attributes drawn from a
// commercial order-management schema. The paper reports this dataset as
// "fairly uniform" with a workload dominated by one selective dimension.
func Sales(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	orderID := make([]int64, n)
	customer := make([]int64, n)
	product := make([]int64, n)
	quantity := make([]int64, n)
	priceCents := make([]int64, n)
	dateDay := make([]int64, n)
	nCustomers := uint64(max(n/30, 10))
	nProducts := uint64(max(n/300, 10))
	zipfCust := rand.NewZipf(rng, 1.3, 1, nCustomers-1)
	zipfProd := rand.NewZipf(rng, 1.2, 1, nProducts-1)
	for i := 0; i < n; i++ {
		// Order IDs arrive nearly monotonically with small jitter.
		orderID[i] = int64(i)*3 + rng.Int63n(7)
		customer[i] = int64(zipfCust.Uint64())
		product[i] = int64(zipfProd.Uint64())
		quantity[i] = 1 + int64(math.Abs(rng.NormFloat64())*4)
		priceCents[i] = int64(math.Exp(rng.NormFloat64()*0.8+8) * 100)
		dateDay[i] = rng.Int63n(3 * 365) // three years of orders
	}
	return build("sales",
		[]string{"order_id", "customer", "product", "quantity", "price", "date"},
		[][]int64{orderID, customer, product, quantity, priceCents, dateDay})
}

// TPCH generates the lineitem fact table columns the paper's TPC-H workload
// filters and aggregates (§7.3): 7 dimensions with the spec's distributions,
// including the shipdate→receiptdate correlation.
func TPCH(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	orderkey := make([]int64, n)
	suppkey := make([]int64, n)
	quantity := make([]int64, n)
	extendedprice := make([]int64, n)
	discount := make([]int64, n)
	shipdate := make([]int64, n)
	receiptdate := make([]int64, n)
	nSupp := int64(max(n/300, 10))
	const orderDays = 7 * 365 // 1992-01-01 .. 1998-12-31
	order := int64(0)
	left := 0
	for i := 0; i < n; i++ {
		if left == 0 {
			// TPC-H orders have 1..7 lineitems; orderkeys are sparse
			// (only 1/4 of the key space is used).
			order += 1 + rng.Int63n(4)*3
			left = 1 + rng.Intn(7)
		}
		left--
		orderkey[i] = order
		suppkey[i] = 1 + rng.Int63n(nSupp)
		quantity[i] = 1 + rng.Int63n(50)
		// extendedprice = quantity * part retail price (90k..110k cents).
		extendedprice[i] = quantity[i] * (90000 + rng.Int63n(20001))
		discount[i] = rng.Int63n(11)                  // 0.00 .. 0.10 scaled by 100
		orderdate := rng.Int63n(orderDays - 151)      // leave room for ship+receipt
		shipdate[i] = orderdate + 1 + rng.Int63n(121) // o_orderdate + [1, 121]
		receiptdate[i] = shipdate[i] + 1 + rng.Int63n(30)
	}
	return build("tpch",
		[]string{"orderkey", "suppkey", "quantity", "extendedprice", "discount", "shipdate", "receiptdate"},
		[][]int64{orderkey, suppkey, quantity, extendedprice, discount, shipdate, receiptdate})
}

// OSM generates the OpenStreetMap stand-in: monotone IDs, a recency-skewed
// edit timestamp, heavily clustered GPS coordinates (Gaussian mixture around
// "cities", 1e6 fixed-point degrees), and two Zipf categorical attributes.
func OSM(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	id := make([]int64, n)
	timestamp := make([]int64, n)
	lat := make([]int64, n)
	lon := make([]int64, n)
	typ := make([]int64, n)
	category := make([]int64, n)
	// City centers across the US northeast bounding box.
	type city struct {
		lat, lon float64
		sigma    float64
		weight   float64
	}
	cities := []city{
		{40.71, -74.00, 0.15, 0.30}, // NYC
		{42.36, -71.06, 0.12, 0.20}, // Boston
		{39.95, -75.17, 0.12, 0.15}, // Philadelphia
		{43.05, -76.15, 0.30, 0.10}, // Syracuse
		{41.76, -72.67, 0.20, 0.10}, // Hartford
		{44.48, -73.21, 0.40, 0.05}, // Burlington
	}
	zipfType := rand.NewZipf(rng, 1.4, 1, 7)
	zipfCat := rand.NewZipf(rng, 1.2, 1, 63)
	const tenYears = 10 * 365 * 24 * 3600
	for i := 0; i < n; i++ {
		id[i] = int64(i) * 2
		// Edits are recency-skewed: density grows toward "now".
		timestamp[i] = int64(float64(tenYears) * math.Sqrt(rng.Float64()))
		r := rng.Float64() * 0.9
		var c city
		acc := 0.0
		for _, cc := range cities {
			acc += cc.weight
			if r < acc {
				c = cc
				break
			}
		}
		if c.sigma == 0 { // 10% rural background noise
			lat[i] = int64((39 + rng.Float64()*8) * 1e6)
			lon[i] = int64((-80 + rng.Float64()*10) * 1e6)
		} else {
			lat[i] = int64((c.lat + rng.NormFloat64()*c.sigma) * 1e6)
			lon[i] = int64((c.lon + rng.NormFloat64()*c.sigma) * 1e6)
		}
		typ[i] = int64(zipfType.Uint64())
		category[i] = int64(zipfCat.Uint64())
	}
	return build("osm",
		[]string{"id", "timestamp", "lat", "lon", "type", "category"},
		[][]int64{id, timestamp, lat, lon, typ, category})
}

// Perfmon generates the performance-monitoring stand-in: a year of metrics
// with diurnal timestamps, Zipf machine IDs, and heavy-tailed resource
// usage ("non-uniform and often highly skewed", §7.3).
func Perfmon(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]int64, n)
	machine := make([]int64, n)
	cpu := make([]int64, n)
	mem := make([]int64, n)
	swap := make([]int64, n)
	load := make([]int64, n)
	nMachines := uint64(max(n/2000, 20))
	zipfMachine := rand.NewZipf(rng, 1.1, 1, nMachines-1)
	const year = 365 * 24 * 3600
	for i := 0; i < n; i++ {
		// Diurnal cycle: more samples during work hours.
		day := rng.Int63n(365)
		hour := int64(math.Mod(math.Abs(rng.NormFloat64()*4+14), 24))
		ts[i] = day*86400 + hour*3600 + rng.Int63n(3600)
		machine[i] = int64(zipfMachine.Uint64())
		cpu[i] = int64(math.Min(100, math.Abs(rng.NormFloat64()*25)))    // % busy, mode 0
		mem[i] = int64(math.Min(100, 20+math.Abs(rng.NormFloat64())*22)) // % used
		if rng.Float64() < 0.85 {                                        // swap mostly idle
			swap[i] = 0
		} else {
			swap[i] = int64(math.Exp(rng.NormFloat64()*1.5 + 4))
		}
		load[i] = int64(math.Exp(rng.NormFloat64()*1.0) * 100) // load avg x100
		_ = year
	}
	return build("perfmon",
		[]string{"time", "machine", "cpu", "mem", "swap", "load"},
		[][]int64{ts, machine, cpu, mem, swap, load})
}

// Uniform generates the d-dimensional uniform synthetic dataset of §7.5
// (values uniform over [0, 2^30)).
func Uniform(n, d int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]int64, d)
	names := make([]string, d)
	for j := 0; j < d; j++ {
		cols[j] = make([]int64, n)
		names[j] = "d" + itoa(j)
		for i := 0; i < n; i++ {
			cols[j][i] = rng.Int63n(1 << 30)
		}
	}
	return build("uniform", names, cols)
}

// ByName builds a named evaluation dataset ("sales", "tpch", "osm",
// "perfmon") at the given size. It returns nil for unknown names.
func ByName(name string, n int, seed int64) *Dataset {
	switch name {
	case "sales":
		return Sales(n, seed)
	case "tpch":
		return TPCH(n, seed)
	case "osm":
		return OSM(n, seed)
	case "perfmon":
		return Perfmon(n, seed)
	default:
		return nil
	}
}

// Names lists the four evaluation datasets in the paper's order.
func Names() []string { return []string{"sales", "tpch", "osm", "perfmon"} }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
