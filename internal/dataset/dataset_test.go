package dataset

import "testing"

func TestGeneratorsShapes(t *testing.T) {
	cases := []struct {
		ds   *Dataset
		dims int
	}{
		{Sales(5000, 1), 6},
		{TPCH(5000, 2), 7},
		{OSM(5000, 3), 6},
		{Perfmon(5000, 4), 6},
		{Uniform(5000, 9, 5), 9},
	}
	for _, c := range cases {
		if c.ds.Table.NumRows() != 5000 {
			t.Fatalf("%s: rows = %d", c.ds.Name, c.ds.Table.NumRows())
		}
		if c.ds.Table.NumCols() != c.dims {
			t.Fatalf("%s: cols = %d, want %d", c.ds.Name, c.ds.Table.NumCols(), c.dims)
		}
		for i := 0; i < c.dims; i++ {
			if len(c.ds.Cols[i]) != 5000 {
				t.Fatalf("%s: raw col %d len %d", c.ds.Name, i, len(c.ds.Cols[i]))
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := TPCH(1000, 42)
	b := TPCH(1000, 42)
	for c := range a.Cols {
		for i := range a.Cols[c] {
			if a.Cols[c][i] != b.Cols[c][i] {
				t.Fatalf("same seed produced different data at col %d row %d", c, i)
			}
		}
	}
	c := TPCH(1000, 43)
	same := true
	for i := range a.Cols[2] {
		if a.Cols[2][i] != c.Cols[2][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical quantity column")
	}
}

func TestTPCHInvariants(t *testing.T) {
	ds := TPCH(20000, 7)
	ship := ds.Cols[ds.ColumnIndex("shipdate")]
	receipt := ds.Cols[ds.ColumnIndex("receiptdate")]
	qty := ds.Cols[ds.ColumnIndex("quantity")]
	disc := ds.Cols[ds.ColumnIndex("discount")]
	price := ds.Cols[ds.ColumnIndex("extendedprice")]
	prevOrder := int64(-1)
	order := ds.Cols[ds.ColumnIndex("orderkey")]
	for i := range ship {
		if receipt[i] <= ship[i] || receipt[i] > ship[i]+30 {
			t.Fatalf("row %d: receiptdate %d not in (shipdate, shipdate+30]", i, receipt[i])
		}
		if qty[i] < 1 || qty[i] > 50 {
			t.Fatalf("row %d: quantity %d out of [1,50]", i, qty[i])
		}
		if disc[i] < 0 || disc[i] > 10 {
			t.Fatalf("row %d: discount %d out of [0,10]", i, disc[i])
		}
		if price[i] < qty[i]*90000 || price[i] > qty[i]*110000 {
			t.Fatalf("row %d: extendedprice %d inconsistent with quantity", i, price[i])
		}
		if order[i] < prevOrder {
			t.Fatalf("row %d: orderkey not non-decreasing", i)
		}
		prevOrder = order[i]
	}
}

func TestOSMSpatialClustering(t *testing.T) {
	ds := OSM(30000, 8)
	lat := ds.Cols[ds.ColumnIndex("lat")]
	// NYC cluster should hold a large share of points: count within
	// +-0.5 degrees of 40.71.
	near := 0
	for _, v := range lat {
		if v > 40_210_000 && v < 41_210_000 {
			near++
		}
	}
	if frac := float64(near) / float64(len(lat)); frac < 0.2 {
		t.Fatalf("NYC latitude band holds only %.1f%% of points; want clustering", frac*100)
	}
}

func TestPerfmonSkew(t *testing.T) {
	ds := Perfmon(30000, 9)
	swap := ds.Cols[ds.ColumnIndex("swap")]
	zeros := 0
	for _, v := range swap {
		if v == 0 {
			zeros++
		}
	}
	if frac := float64(zeros) / float64(len(swap)); frac < 0.7 {
		t.Fatalf("swap should be mostly zero, got %.1f%%", frac*100)
	}
	machine := ds.Cols[ds.ColumnIndex("machine")]
	counts := map[int64]int{}
	for _, m := range machine {
		counts[m]++
	}
	most := 0
	for _, c := range counts {
		if c > most {
			most = c
		}
	}
	if float64(most)/float64(len(machine)) < 0.05 {
		t.Fatal("machine distribution should be Zipf-skewed")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		ds := ByName(name, 500, 1)
		if ds == nil || ds.Name != name {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
	if ByName("nope", 500, 1) != nil {
		t.Fatal("unknown name should return nil")
	}
}
