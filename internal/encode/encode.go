// Package encode provides the value encodings §7.1 of the paper assumes:
// the index operates on 64-bit integers, so string attributes are
// dictionary-encoded and floating-point attributes are scaled by the
// smallest power of ten that makes them integral.
package encode

import (
	"fmt"
	"math"
	"sort"
)

// Dictionary maps strings to dense int64 codes ordered lexicographically, so
// range predicates on the encoded column match lexicographic string ranges.
type Dictionary struct {
	values []string         // code -> string, sorted
	codes  map[string]int64 // string -> code
}

// BuildDictionary constructs a dictionary over the distinct values of col.
func BuildDictionary(col []string) *Dictionary {
	seen := make(map[string]bool, len(col))
	for _, s := range col {
		seen[s] = true
	}
	values := make([]string, 0, len(seen))
	for s := range seen {
		values = append(values, s)
	}
	sort.Strings(values)
	d := &Dictionary{values: values, codes: make(map[string]int64, len(values))}
	for i, s := range values {
		d.codes[s] = int64(i)
	}
	return d
}

// Len returns the number of distinct values.
func (d *Dictionary) Len() int { return len(d.values) }

// Code returns the code for s, or (0, false) when s was not in the build
// set.
func (d *Dictionary) Code(s string) (int64, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// Value returns the string for a code; it panics on out-of-range codes.
func (d *Dictionary) Value(code int64) string { return d.values[code] }

// Encode maps a string column to codes. Unknown strings produce an error.
func (d *Dictionary) Encode(col []string) ([]int64, error) {
	out := make([]int64, len(col))
	for i, s := range col {
		c, ok := d.codes[s]
		if !ok {
			return nil, fmt.Errorf("encode: value %q not in dictionary", s)
		}
		out[i] = c
	}
	return out, nil
}

// RangeFor translates an inclusive string range into an inclusive code
// range; ok is false when no dictionary value falls inside the range.
// Endpoints need not be present in the dictionary: the range snaps inward
// to the nearest existing values.
func (d *Dictionary) RangeFor(lo, hi string) (loCode, hiCode int64, ok bool) {
	i := sort.SearchStrings(d.values, lo)
	j := sort.Search(len(d.values), func(k int) bool { return d.values[k] > hi }) - 1
	if i > j {
		return 0, 0, false
	}
	return int64(i), int64(j), true
}

// PrefixRange translates a string prefix predicate (LIKE 'abc%') into an
// inclusive code range.
func (d *Dictionary) PrefixRange(prefix string) (loCode, hiCode int64, ok bool) {
	i := sort.SearchStrings(d.values, prefix)
	j := sort.Search(len(d.values), func(k int) bool {
		return k >= len(d.values) || !hasPrefix(d.values[k], prefix)
	})
	// j is the first index past the prefix run starting at i.
	j = i + sort.Search(len(d.values)-i, func(k int) bool { return !hasPrefix(d.values[i+k], prefix) })
	if i >= j {
		return 0, 0, false
	}
	return int64(i), int64(j - 1), true
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// DecimalScaler converts floating-point values to integers by multiplying
// with 10^digits, per §7.1 ("we scale all values by the smallest power of 10
// that converts them to integers").
type DecimalScaler struct {
	digits int
	factor float64
}

// NewDecimalScaler builds a scaler with a fixed number of decimal digits.
func NewDecimalScaler(digits int) (*DecimalScaler, error) {
	if digits < 0 || digits > 18 {
		return nil, fmt.Errorf("encode: digits %d out of [0, 18]", digits)
	}
	return &DecimalScaler{digits: digits, factor: math.Pow(10, float64(digits))}, nil
}

// InferDecimalScaler finds the smallest digit count (up to maxDigits) that
// represents every value exactly, e.g. prices with 2 decimal places.
func InferDecimalScaler(col []float64, maxDigits int) (*DecimalScaler, error) {
	if maxDigits > 9 {
		maxDigits = 9
	}
	for digits := 0; digits <= maxDigits; digits++ {
		factor := math.Pow(10, float64(digits))
		exact := true
		for _, v := range col {
			scaled := v * factor
			// Binary floats cannot represent most decimals exactly
			// (123.45*100 = 12344.999...), so accept values within a
			// relative tolerance of an integer.
			tol := 1e-9 * math.Max(1, math.Abs(scaled))
			if math.Abs(scaled-math.Round(scaled)) > tol {
				exact = false
				break
			}
		}
		if exact {
			return NewDecimalScaler(digits)
		}
	}
	return nil, fmt.Errorf("encode: values need more than %d decimal digits", maxDigits)
}

// Digits returns the number of preserved decimal digits.
func (s *DecimalScaler) Digits() int { return s.digits }

// Encode scales a float column to integers, rounding to the scaler's
// precision.
func (s *DecimalScaler) Encode(col []float64) ([]int64, error) {
	out := make([]int64, len(col))
	for i, v := range col {
		scaled := math.Round(v * s.factor)
		if math.IsNaN(scaled) || scaled > math.MaxInt64 || scaled < math.MinInt64 {
			return nil, fmt.Errorf("encode: value %g not representable at %d digits", v, s.digits)
		}
		out[i] = int64(scaled)
	}
	return out, nil
}

// EncodeValue scales one value (for query endpoints).
func (s *DecimalScaler) EncodeValue(v float64) int64 { return int64(math.Round(v * s.factor)) }

// Decode converts a scaled integer back to a float.
func (s *DecimalScaler) Decode(v int64) float64 { return float64(v) / s.factor }
