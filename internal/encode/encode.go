// Package encode provides the value encodings §7.1 of the paper assumes:
// the index operates on 64-bit integers, so string attributes are
// dictionary-encoded and floating-point attributes are scaled by the
// smallest power of ten that makes them integral.
package encode

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Dictionary maps strings to dense int64 codes ordered lexicographically, so
// range predicates on the encoded column match lexicographic string ranges.
type Dictionary struct {
	values []string         // code -> string, sorted
	codes  map[string]int64 // string -> code
}

// BuildDictionary constructs a dictionary over the distinct values of col.
func BuildDictionary(col []string) *Dictionary {
	seen := make(map[string]bool, len(col))
	for _, s := range col {
		seen[s] = true
	}
	values := make([]string, 0, len(seen))
	for s := range seen {
		values = append(values, s)
	}
	sort.Strings(values)
	d := &Dictionary{values: values, codes: make(map[string]int64, len(values))}
	for i, s := range values {
		d.codes[s] = int64(i)
	}
	return d
}

// DictionaryFromValues reconstructs a dictionary from its sorted distinct
// values (the Values of a previously built dictionary) — the snapshot decode
// path. The slice must be strictly increasing; anything else is corrupt.
func DictionaryFromValues(values []string) (*Dictionary, error) {
	d := &Dictionary{values: values, codes: make(map[string]int64, len(values))}
	for i, s := range values {
		if i > 0 && values[i-1] >= s {
			return nil, fmt.Errorf("encode: dictionary values not sorted and distinct at %d", i)
		}
		d.codes[s] = int64(i)
	}
	return d, nil
}

// Len returns the number of distinct values.
func (d *Dictionary) Len() int { return len(d.values) }

// Code returns the code for s, or (0, false) when s was not in the build
// set.
func (d *Dictionary) Code(s string) (int64, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// Value returns the string for a code; it panics on out-of-range codes.
func (d *Dictionary) Value(code int64) string { return d.values[code] }

// Encode maps a string column to codes. Unknown strings produce an error.
func (d *Dictionary) Encode(col []string) ([]int64, error) {
	out := make([]int64, len(col))
	for i, s := range col {
		c, ok := d.codes[s]
		if !ok {
			return nil, fmt.Errorf("encode: value %q not in dictionary", s)
		}
		out[i] = c
	}
	return out, nil
}

// RangeFor translates an inclusive string range into an inclusive code
// range; ok is false when no dictionary value falls inside the range.
// Endpoints need not be present in the dictionary: the range snaps inward
// to the nearest existing values.
func (d *Dictionary) RangeFor(lo, hi string) (loCode, hiCode int64, ok bool) {
	i := sort.SearchStrings(d.values, lo)
	j := sort.Search(len(d.values), func(k int) bool { return d.values[k] > hi }) - 1
	if i > j {
		return 0, 0, false
	}
	return int64(i), int64(j), true
}

// PrefixRange translates a string prefix predicate (LIKE 'abc%') into an
// inclusive code range.
func (d *Dictionary) PrefixRange(prefix string) (loCode, hiCode int64, ok bool) {
	i := sort.SearchStrings(d.values, prefix)
	j := sort.Search(len(d.values), func(k int) bool {
		return k >= len(d.values) || !hasPrefix(d.values[k], prefix)
	})
	// j is the first index past the prefix run starting at i.
	j = i + sort.Search(len(d.values)-i, func(k int) bool { return !hasPrefix(d.values[i+k], prefix) })
	if i >= j {
		return 0, 0, false
	}
	return int64(i), int64(j - 1), true
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// LowerBound returns the first code whose value sorts >= s (possibly Len(),
// one past the last code). With UpperBound it translates one-sided string
// comparisons into code ranges: v >= s is [LowerBound(s), Len()-1] and
// v < s is [0, LowerBound(s)-1].
func (d *Dictionary) LowerBound(s string) int64 {
	return int64(sort.SearchStrings(d.values, s))
}

// UpperBound returns the first code whose value sorts > s (possibly Len()).
// v > s is [UpperBound(s), Len()-1] and v <= s is [0, UpperBound(s)-1].
func (d *Dictionary) UpperBound(s string) int64 {
	return int64(sort.Search(len(d.values), func(k int) bool { return d.values[k] > s }))
}

// Values returns the dictionary's sorted distinct values (shared, read-only).
func (d *Dictionary) Values() []string { return d.values }

// DecimalScaler converts floating-point values to integers by multiplying
// with 10^digits, per §7.1 ("we scale all values by the smallest power of 10
// that converts them to integers").
type DecimalScaler struct {
	digits int
	factor float64
}

// NewDecimalScaler builds a scaler with a fixed number of decimal digits.
func NewDecimalScaler(digits int) (*DecimalScaler, error) {
	if digits < 0 || digits > 18 {
		return nil, fmt.Errorf("encode: digits %d out of [0, 18]", digits)
	}
	return &DecimalScaler{digits: digits, factor: math.Pow(10, float64(digits))}, nil
}

// InferDecimalScaler finds the smallest digit count (up to maxDigits) that
// represents every value exactly, e.g. prices with 2 decimal places.
func InferDecimalScaler(col []float64, maxDigits int) (*DecimalScaler, error) {
	if maxDigits > 9 {
		maxDigits = 9
	}
	for digits := 0; digits <= maxDigits; digits++ {
		factor := math.Pow(10, float64(digits))
		exact := true
		for _, v := range col {
			// Binary floats cannot represent most decimals exactly
			// (123.45*100 = 12344.999...), so the representability test is
			// a round trip: the nearest integer code must decode back to
			// exactly v. A fixed tolerance would silently accept lossy
			// scalings (0.1234567891 at 9 digits, 1e-10 at 0 digits).
			r := math.Round(v * factor)
			if r/factor != v {
				exact = false
				break
			}
		}
		if exact {
			return NewDecimalScaler(digits)
		}
	}
	return nil, fmt.Errorf("encode: values need more than %d decimal digits", maxDigits)
}

// Digits returns the number of preserved decimal digits.
func (s *DecimalScaler) Digits() int { return s.digits }

// Encode scales a float column to integers, rounding to the scaler's
// precision.
func (s *DecimalScaler) Encode(col []float64) ([]int64, error) {
	out := make([]int64, len(col))
	for i, v := range col {
		scaled := math.Round(v * s.factor)
		// >= on the upper bound: float64(MaxInt64) is exactly 2^63, which
		// does NOT fit in int64 — a plain > would let it through and the
		// conversion would wrap to MinInt64.
		if math.IsNaN(scaled) || scaled >= math.MaxInt64 || scaled < math.MinInt64 {
			return nil, fmt.Errorf("encode: value %g not representable at %d digits", v, s.digits)
		}
		out[i] = int64(scaled)
	}
	return out, nil
}

// EncodeValue scales one value (for query endpoints).
func (s *DecimalScaler) EncodeValue(v float64) int64 { return int64(math.Round(v * s.factor)) }

// EncodeChecked scales one value with the same representability validation
// Encode performs, without the per-value slice allocations — the building
// block for row-at-a-time insert paths.
func (s *DecimalScaler) EncodeChecked(v float64) (int64, error) {
	scaled := math.Round(v * s.factor)
	// >= on the upper bound: see Encode.
	if math.IsNaN(scaled) || scaled >= math.MaxInt64 || scaled < math.MinInt64 {
		return 0, fmt.Errorf("encode: value %g not representable at %d digits", v, s.digits)
	}
	return int64(scaled), nil
}

// Decode converts a scaled integer back to a float.
func (s *DecimalScaler) Decode(v int64) float64 { return float64(v) / s.factor }

// EncodeLower converts a lower query bound: the smallest integer code whose
// decoded value is >= v (ceil, snapped to the scaler's precision). Using
// directed rounding for bounds keeps range predicates conservative when a
// query endpoint carries more precision than the column stores. Unlike
// Encode, out-of-range endpoints are legal in a predicate: they clamp to the
// int64 domain (v beyond every representable code yields MaxInt64, so the
// range is empty; v below every code yields MinInt64, so the bound is
// vacuous), and NaN yields MaxInt64 (an unsatisfiable lower bound).
func (s *DecimalScaler) EncodeLower(v float64) int64 {
	x := math.Ceil(s.snap(v))
	if math.IsNaN(x) || x >= math.MaxInt64 {
		return math.MaxInt64
	}
	if x <= math.MinInt64 {
		return math.MinInt64
	}
	return int64(x)
}

// EncodeUpper converts an upper query bound: the largest integer code whose
// decoded value is <= v (floor, snapped to the scaler's precision),
// clamping out-of-range endpoints to the int64 domain; NaN yields MinInt64
// (an unsatisfiable upper bound).
func (s *DecimalScaler) EncodeUpper(v float64) int64 {
	x := math.Floor(s.snap(v))
	if math.IsNaN(x) || x <= math.MinInt64 {
		return math.MinInt64
	}
	if x >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(x)
}

// snap collapses v*factor onto the nearest integer code exactly when that
// code decodes back to v — the precise test for "v is a representable
// value up to binary-float noise" (9.99*100 = 998.999…94 snaps to 999
// because 999/100 == 9.99 in float64). A fixed relative tolerance would be
// millions of ULPs wide at large magnitudes and swallow genuinely sub-code
// endpoints like 5000000.004.
func (s *DecimalScaler) snap(v float64) float64 {
	x := v * s.factor
	r := math.Round(x)
	if r/s.factor == v {
		return r
	}
	return x
}

// TimeCodec converts time.Time values to int64 ticks of a fixed unit since
// the Unix epoch, completing the §7.1 encoding set for timestamp attributes.
// The zero value uses nanosecond ticks.
//
// Tick math avoids the UnixNano intermediate wherever the unit allows, so
// the representable range genuinely grows with the unit: nanosecond ticks
// cover 1678–2262 (the UnixNano window), any coarser divisor of a second
// covers proportionally more, and second-or-coarser units cover the full
// time.Time range. Only units that divide neither into nor by a whole
// second (e.g. 1.5s) fall back to nanosecond math and its window.
type TimeCodec struct {
	// Unit is the tick size (default time.Nanosecond).
	Unit time.Duration
}

func (c TimeCodec) unit() int64 {
	if c.Unit <= 0 {
		return 1
	}
	return int64(c.Unit)
}

const nsPerSec = int64(time.Second)

// split returns t's tick (floored toward negative infinity) and whether t
// lies strictly inside the tick (a nonzero remainder), computed without
// overflowing for out-of-nano-window times when the unit permits.
func (c TimeCodec) split(t time.Time) (tick int64, inexact bool) {
	u := c.unit()
	sec, nsec := t.Unix(), int64(t.Nanosecond()) // nsec in [0, 1e9)
	switch {
	case nsPerSec%u == 0:
		// Sub-second unit dividing the second: k ticks per second.
		k := nsPerSec / u
		return sec*k + nsec/u, nsec%u != 0
	case u%nsPerSec == 0:
		// Whole-second multiple.
		us := u / nsPerSec
		q := floorDiv(sec, us)
		return q, (sec-q*us) != 0 || nsec != 0
	default:
		n := t.UnixNano()
		q := floorDiv(n, u)
		return q, n != q*u
	}
}

// EncodeValue converts one timestamp to ticks, flooring toward negative
// infinity — truncation toward zero would make pre-epoch timestamps encode
// non-monotonically and collide with post-epoch ticks.
func (c TimeCodec) EncodeValue(t time.Time) int64 {
	tick, _ := c.split(t)
	return tick
}

// EncodeLower converts a lower time bound: the smallest tick whose decoded
// time is >= t (ceiling division). With EncodeUpper it gives time-range
// predicates the same conservative directed rounding float bounds get.
func (c TimeCodec) EncodeLower(t time.Time) int64 {
	tick, inexact := c.split(t)
	if inexact {
		tick++
	}
	return tick
}

// EncodeUpper converts an upper time bound: the largest tick whose decoded
// time is <= t (floor division, same as EncodeValue).
func (c TimeCodec) EncodeUpper(t time.Time) int64 { return c.EncodeValue(t) }

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(n, d int64) int64 {
	q := n / d
	if n%d != 0 && (n < 0) != (d < 0) {
		q--
	}
	return q
}

// Encode converts a timestamp column to ticks.
func (c TimeCodec) Encode(col []time.Time) []int64 {
	out := make([]int64, len(col))
	for i, t := range col {
		out[i] = c.EncodeValue(t)
	}
	return out
}

// Decode converts ticks back to a UTC timestamp, mirroring split's
// overflow-safe paths so coarse-unit ticks outside the nanosecond window
// round-trip exactly.
func (c TimeCodec) Decode(v int64) time.Time {
	u := c.unit()
	switch {
	case nsPerSec%u == 0:
		k := nsPerSec / u
		sec := floorDiv(v, k)
		return time.Unix(sec, (v-sec*k)*u).UTC()
	case u%nsPerSec == 0:
		return time.Unix(v*(u/nsPerSec), 0).UTC()
	default:
		return time.Unix(0, v*u).UTC()
	}
}
