package encode

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDictionaryRoundtrip(t *testing.T) {
	col := []string{"cherry", "apple", "banana", "apple", "date", "banana"}
	d := BuildDictionary(col)
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	codes, err := d.Encode(col)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range codes {
		if d.Value(c) != col[i] {
			t.Fatalf("roundtrip failed at %d: %q", i, d.Value(c))
		}
	}
	if _, err := d.Encode([]string{"elderberry"}); err == nil {
		t.Fatal("unknown value should fail")
	}
}

func TestDictionaryOrderPreserving(t *testing.T) {
	f := func(raw []string) bool {
		if len(raw) < 2 {
			return true
		}
		d := BuildDictionary(raw)
		for i := 0; i < len(raw)-1; i++ {
			a, _ := d.Code(raw[i])
			b, _ := d.Code(raw[i+1])
			if (raw[i] < raw[i+1]) != (a < b) && raw[i] != raw[i+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDictionaryRangeFor(t *testing.T) {
	d := BuildDictionary([]string{"ant", "bee", "cat", "dog", "eel"})
	lo, hi, ok := d.RangeFor("bee", "dog")
	if !ok || d.Value(lo) != "bee" || d.Value(hi) != "dog" {
		t.Fatalf("RangeFor(bee, dog) = (%d, %d, %v)", lo, hi, ok)
	}
	// Endpoints between dictionary values snap inward.
	lo, hi, ok = d.RangeFor("ba", "cz")
	if !ok || d.Value(lo) != "bee" || d.Value(hi) != "cat" {
		t.Fatalf("RangeFor(ba, cz) snapped to (%q, %q)", d.Value(lo), d.Value(hi))
	}
	if _, _, ok := d.RangeFor("x", "z"); ok {
		t.Fatal("empty range should report ok=false")
	}
	if _, _, ok := d.RangeFor("dog", "bee"); ok {
		t.Fatal("inverted range should report ok=false")
	}
}

func TestDictionaryPrefixRange(t *testing.T) {
	d := BuildDictionary([]string{"car", "card", "care", "cart", "cat", "dog"})
	lo, hi, ok := d.PrefixRange("car")
	if !ok {
		t.Fatal("prefix car should match")
	}
	if d.Value(lo) != "car" || d.Value(hi) != "cart" {
		t.Fatalf("prefix range = [%q, %q]", d.Value(lo), d.Value(hi))
	}
	if _, _, ok := d.PrefixRange("z"); ok {
		t.Fatal("no matches should report ok=false")
	}
	lo, hi, ok = d.PrefixRange("do")
	if !ok || d.Value(lo) != "dog" || d.Value(hi) != "dog" {
		t.Fatal("single-match prefix wrong")
	}
}

func TestDecimalScaler(t *testing.T) {
	s, err := NewDecimalScaler(2)
	if err != nil {
		t.Fatal(err)
	}
	codes, err := s.Encode([]float64{1.23, 0, -99.99, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{123, 0, -9999, 100_000_000}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("Encode[%d] = %d, want %d", i, codes[i], want[i])
		}
	}
	if s.Decode(123) != 1.23 {
		t.Fatalf("Decode(123) = %f", s.Decode(123))
	}
	if s.EncodeValue(5.678) != 568 {
		t.Fatalf("EncodeValue rounds to %d", s.EncodeValue(5.678))
	}
	if _, err := NewDecimalScaler(40); err == nil {
		t.Fatal("excessive digits should fail")
	}
}

func TestInferDecimalScaler(t *testing.T) {
	s, err := InferDecimalScaler([]float64{1.25, 3.5, 7}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s.Digits() != 2 {
		t.Fatalf("inferred %d digits, want 2", s.Digits())
	}
	s, err = InferDecimalScaler([]float64{1, 2, 3}, 6)
	if err != nil || s.Digits() != 0 {
		t.Fatal("integral floats should infer 0 digits")
	}
	if _, err := InferDecimalScaler([]float64{1.0 / 3.0}, 6); err == nil {
		t.Fatal("non-terminating decimal should fail")
	}
}

func TestDictionaryLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	raw := make([]string, 5000)
	for i := range raw {
		b := make([]byte, 3+rng.Intn(8))
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		raw[i] = string(b)
	}
	d := BuildDictionary(raw)
	codes, err := d.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Sorting by code must equal sorting by string.
	idx := make([]int, len(raw))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return codes[idx[a]] < codes[idx[b]] })
	for i := 1; i < len(idx); i++ {
		if raw[idx[i-1]] > raw[idx[i]] {
			t.Fatal("code order disagrees with string order")
		}
	}
}
