package encode

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestDictionaryRoundtrip(t *testing.T) {
	col := []string{"cherry", "apple", "banana", "apple", "date", "banana"}
	d := BuildDictionary(col)
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	codes, err := d.Encode(col)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range codes {
		if d.Value(c) != col[i] {
			t.Fatalf("roundtrip failed at %d: %q", i, d.Value(c))
		}
	}
	if _, err := d.Encode([]string{"elderberry"}); err == nil {
		t.Fatal("unknown value should fail")
	}
}

func TestDictionaryOrderPreserving(t *testing.T) {
	f := func(raw []string) bool {
		if len(raw) < 2 {
			return true
		}
		d := BuildDictionary(raw)
		for i := 0; i < len(raw)-1; i++ {
			a, _ := d.Code(raw[i])
			b, _ := d.Code(raw[i+1])
			if (raw[i] < raw[i+1]) != (a < b) && raw[i] != raw[i+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDictionaryRangeFor(t *testing.T) {
	d := BuildDictionary([]string{"ant", "bee", "cat", "dog", "eel"})
	lo, hi, ok := d.RangeFor("bee", "dog")
	if !ok || d.Value(lo) != "bee" || d.Value(hi) != "dog" {
		t.Fatalf("RangeFor(bee, dog) = (%d, %d, %v)", lo, hi, ok)
	}
	// Endpoints between dictionary values snap inward.
	lo, hi, ok = d.RangeFor("ba", "cz")
	if !ok || d.Value(lo) != "bee" || d.Value(hi) != "cat" {
		t.Fatalf("RangeFor(ba, cz) snapped to (%q, %q)", d.Value(lo), d.Value(hi))
	}
	if _, _, ok := d.RangeFor("x", "z"); ok {
		t.Fatal("empty range should report ok=false")
	}
	if _, _, ok := d.RangeFor("dog", "bee"); ok {
		t.Fatal("inverted range should report ok=false")
	}
}

func TestDictionaryPrefixRange(t *testing.T) {
	d := BuildDictionary([]string{"car", "card", "care", "cart", "cat", "dog"})
	lo, hi, ok := d.PrefixRange("car")
	if !ok {
		t.Fatal("prefix car should match")
	}
	if d.Value(lo) != "car" || d.Value(hi) != "cart" {
		t.Fatalf("prefix range = [%q, %q]", d.Value(lo), d.Value(hi))
	}
	if _, _, ok := d.PrefixRange("z"); ok {
		t.Fatal("no matches should report ok=false")
	}
	lo, hi, ok = d.PrefixRange("do")
	if !ok || d.Value(lo) != "dog" || d.Value(hi) != "dog" {
		t.Fatal("single-match prefix wrong")
	}
}

func TestDecimalScaler(t *testing.T) {
	s, err := NewDecimalScaler(2)
	if err != nil {
		t.Fatal(err)
	}
	codes, err := s.Encode([]float64{1.23, 0, -99.99, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{123, 0, -9999, 100_000_000}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("Encode[%d] = %d, want %d", i, codes[i], want[i])
		}
	}
	if s.Decode(123) != 1.23 {
		t.Fatalf("Decode(123) = %f", s.Decode(123))
	}
	if s.EncodeValue(5.678) != 568 {
		t.Fatalf("EncodeValue rounds to %d", s.EncodeValue(5.678))
	}
	if _, err := NewDecimalScaler(40); err == nil {
		t.Fatal("excessive digits should fail")
	}
}

func TestInferDecimalScaler(t *testing.T) {
	s, err := InferDecimalScaler([]float64{1.25, 3.5, 7}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s.Digits() != 2 {
		t.Fatalf("inferred %d digits, want 2", s.Digits())
	}
	s, err = InferDecimalScaler([]float64{1, 2, 3}, 6)
	if err != nil || s.Digits() != 0 {
		t.Fatal("integral floats should infer 0 digits")
	}
	if _, err := InferDecimalScaler([]float64{1.0 / 3.0}, 6); err == nil {
		t.Fatal("non-terminating decimal should fail")
	}
}

func TestDictionaryLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	raw := make([]string, 5000)
	for i := range raw {
		b := make([]byte, 3+rng.Intn(8))
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		raw[i] = string(b)
	}
	d := BuildDictionary(raw)
	codes, err := d.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Sorting by code must equal sorting by string.
	idx := make([]int, len(raw))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return codes[idx[a]] < codes[idx[b]] })
	for i := 1; i < len(idx); i++ {
		if raw[idx[i-1]] > raw[idx[i]] {
			t.Fatal("code order disagrees with string order")
		}
	}
}

func TestDictionaryBounds(t *testing.T) {
	d := BuildDictionary([]string{"ant", "bee", "cat", "dog"})
	cases := []struct {
		s            string
		lower, upper int64
	}{
		{"", 0, 0},
		{"ant", 0, 1},
		{"bat", 1, 1},
		{"dog", 3, 4},
		{"eel", 4, 4},
	}
	for _, c := range cases {
		if got := d.LowerBound(c.s); got != c.lower {
			t.Errorf("LowerBound(%q) = %d, want %d", c.s, got, c.lower)
		}
		if got := d.UpperBound(c.s); got != c.upper {
			t.Errorf("UpperBound(%q) = %d, want %d", c.s, got, c.upper)
		}
	}
}

func TestDecimalScalerDirectedBounds(t *testing.T) {
	s, err := NewDecimalScaler(2)
	if err != nil {
		t.Fatal(err)
	}
	// Exact endpoints land on their code despite binary-float noise.
	if lo := s.EncodeLower(9.99); lo != 999 {
		t.Fatalf("EncodeLower(9.99) = %d, want 999", lo)
	}
	if hi := s.EncodeUpper(9.99); hi != 999 {
		t.Fatalf("EncodeUpper(9.99) = %d, want 999", hi)
	}
	// Over-precise endpoints round conservatively inward.
	if lo := s.EncodeLower(1.501); lo != 151 {
		t.Fatalf("EncodeLower(1.501) = %d, want 151", lo)
	}
	if hi := s.EncodeUpper(1.509); hi != 150 {
		t.Fatalf("EncodeUpper(1.509) = %d, want 150", hi)
	}
}

func TestTimeCodecRoundTrip(t *testing.T) {
	for _, unit := range []time.Duration{0, time.Nanosecond, time.Microsecond, time.Second} {
		c := TimeCodec{Unit: unit}
		u := unit
		if u <= 0 {
			u = time.Nanosecond
		}
		ts := time.Date(2023, 7, 14, 9, 30, 21, 500_000_000, time.UTC).Truncate(u)
		if got := c.Decode(c.EncodeValue(ts)); !got.Equal(ts) {
			t.Errorf("unit %v: round trip %v != %v", unit, got, ts)
		}
	}
	c := TimeCodec{Unit: time.Millisecond}
	col := []time.Time{time.UnixMilli(1000).UTC(), time.UnixMilli(2500).UTC()}
	enc := c.Encode(col)
	if enc[0] != 1000 || enc[1] != 2500 {
		t.Fatalf("Encode = %v", enc)
	}
}

func TestTimeCodecFloorsPreEpoch(t *testing.T) {
	c := TimeCodec{Unit: time.Second}
	// 0.4s before and after the epoch must land in different ticks; truncation
	// toward zero would collide both on tick 0.
	pre := c.EncodeValue(time.Unix(0, -400_000_000))
	post := c.EncodeValue(time.Unix(0, 400_000_000))
	if pre != -1 || post != 0 {
		t.Fatalf("pre/post epoch ticks = %d/%d, want -1/0", pre, post)
	}
	// Monotone across the epoch.
	last := c.EncodeValue(time.Unix(-3, 0))
	for ns := int64(-2_500_000_000); ns <= 2_500_000_000; ns += 250_000_000 {
		v := c.EncodeValue(time.Unix(0, ns))
		if v < last {
			t.Fatalf("EncodeValue not monotone at %dns: %d after %d", ns, v, last)
		}
		last = v
	}
	// Directed bounds: lower ceils, upper floors.
	at := time.Unix(100, 500_000_000) // 100.5s
	if lo := c.EncodeLower(at); lo != 101 {
		t.Fatalf("EncodeLower(100.5s) = %d, want 101", lo)
	}
	if hi := c.EncodeUpper(at); hi != 100 {
		t.Fatalf("EncodeUpper(100.5s) = %d, want 100", hi)
	}
	exact := time.Unix(100, 0)
	if lo, hi := c.EncodeLower(exact), c.EncodeUpper(exact); lo != 100 || hi != 100 {
		t.Fatalf("exact endpoint bounds = %d/%d, want 100/100", lo, hi)
	}
}

func TestTimeCodecCoarseUnitsExtendRange(t *testing.T) {
	far := time.Date(2400, 1, 1, 12, 30, 15, 0, time.UTC) // outside the UnixNano window
	for _, unit := range []time.Duration{time.Second, time.Minute, time.Millisecond} {
		c := TimeCodec{Unit: unit}
		got := c.Decode(c.EncodeValue(far.Truncate(unit)))
		if !got.Equal(far.Truncate(unit)) {
			t.Errorf("unit %v: year-2400 round trip = %v", unit, got)
		}
		// Monotone across the window edge.
		edge := time.Unix(math.MaxInt64/int64(time.Second), 0)
		if c.EncodeValue(far) <= c.EncodeValue(time.Unix(0, 0)) {
			t.Errorf("unit %v: far-future tick not after epoch", unit)
		}
		_ = edge
	}
	// Directed bounds stay correct out of window.
	c := TimeCodec{Unit: time.Minute}
	mid := far.Truncate(time.Minute).Add(30 * time.Second)
	if lo, hi := c.EncodeLower(mid), c.EncodeUpper(mid); lo != hi+1 {
		t.Fatalf("sub-tick bound out of window: lo %d, hi %d", lo, hi)
	}
}

func TestDecimalScalerSnapIsExact(t *testing.T) {
	s, err := NewDecimalScaler(2)
	if err != nil {
		t.Fatal(err)
	}
	// Large-magnitude endpoints a hair past a code must NOT collapse onto it.
	if lo := s.EncodeLower(5000000.004); lo != 500000001 {
		t.Fatalf("EncodeLower(5000000.004) = %d, want 500000001", lo)
	}
	if hi := s.EncodeUpper(5000000.004); hi != 500000000 {
		t.Fatalf("EncodeUpper(5000000.004) = %d, want 500000000", hi)
	}
	// Representable large values still land exactly on their code.
	if lo, hi := s.EncodeLower(5000000.25), s.EncodeUpper(5000000.25); lo != 500000025 || hi != 500000025 {
		t.Fatalf("exact large endpoint = [%d, %d], want [500000025, 500000025]", lo, hi)
	}
}

func TestInferDecimalScalerRejectsLossy(t *testing.T) {
	if _, err := InferDecimalScaler([]float64{1e-10}, 9); err == nil {
		t.Fatal("sub-precision value should fail inference, not round to 0")
	}
	if _, err := InferDecimalScaler([]float64{0.1234567891}, 9); err == nil {
		t.Fatal("10-digit value should fail 9-digit inference, not round")
	}
	s, err := InferDecimalScaler([]float64{0.123456789}, 9)
	if err != nil || s.Digits() != 9 {
		t.Fatalf("9-digit value inferred (%v, %v)", s, err)
	}
}

func TestEncodeCheckedRejectsBoundary(t *testing.T) {
	s, err := NewDecimalScaler(0)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly 2^63 is not representable in int64: must error, not wrap.
	if v, err := s.EncodeChecked(9.223372036854775808e18); err == nil {
		t.Fatalf("EncodeChecked(2^63) = %d, want error", v)
	}
	if _, err := s.Encode([]float64{9.223372036854775808e18}); err == nil {
		t.Fatal("Encode(2^63) should error, not wrap")
	}
	if v, err := s.EncodeChecked(9.2e18); err != nil || v != 9200000000000000000 {
		t.Fatalf("EncodeChecked(9.2e18) = (%d, %v)", v, err)
	}
}
