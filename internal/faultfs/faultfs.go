// Package faultfs provides fault-injecting I/O primitives for durability
// tests: writers that tear mid-stream, readers that fail early, and helpers
// that flip or cut bytes in files on disk. The property tests drive every
// prefix truncation and every single-byte corruption of snapshots and WAL
// segments through these, asserting recovery is either exact or a clean
// typed error — never a panic or silently wrong rows.
package faultfs

import (
	"errors"
	"io"
	"os"
)

// ErrInjected is the failure every injected fault returns.
var ErrInjected = errors.New("faultfs: injected failure")

// Writer passes writes through to W until Limit bytes have been written,
// then fails — modeling a torn write or a disk filling up. The bytes before
// the limit ARE delivered, so the downstream sees a valid prefix.
type Writer struct {
	// W receives the surviving prefix.
	W io.Writer
	// Limit is the number of bytes delivered before the injected failure.
	Limit   int64
	written int64
}

// Write implements io.Writer with the torn-write fault.
func (w *Writer) Write(p []byte) (int, error) {
	remain := w.Limit - w.written
	if remain <= 0 {
		return 0, ErrInjected
	}
	if int64(len(p)) <= remain {
		n, err := w.W.Write(p)
		w.written += int64(n)
		return n, err
	}
	n, err := w.W.Write(p[:remain])
	w.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, ErrInjected
}

// Reader passes reads through from R until Limit bytes, then fails —
// modeling an unreadable sector past a valid prefix.
type Reader struct {
	// R supplies the readable prefix.
	R io.Reader
	// Limit is the number of bytes readable before the injected failure.
	Limit int64
	read  int64
}

// Read implements io.Reader with the bad-sector fault.
func (r *Reader) Read(p []byte) (int, error) {
	remain := r.Limit - r.read
	if remain <= 0 {
		return 0, ErrInjected
	}
	if int64(len(p)) > remain {
		p = p[:remain]
	}
	n, err := r.R.Read(p)
	r.read += int64(n)
	return n, err
}

// Flip returns a copy of data with every bit of byte i inverted.
func Flip(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0xFF
	return out
}

// FlipBit returns a copy of data with bit b (0..7) of byte i inverted.
func FlipBit(data []byte, i int, b uint) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 1 << (b & 7)
	return out
}

// FlipByteInFile inverts every bit of the byte at offset in the file.
func FlipByteInFile(path string, offset int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return err
	}
	b[0] ^= 0xFF
	_, err = f.WriteAt(b[:], offset)
	return err
}

// TruncateFile cuts the file at path to size bytes.
func TruncateFile(path string, size int64) error {
	return os.Truncate(path, size)
}
