package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"flood/internal/server"
)

// Client is a floodserver HTTP client shaped for the runner: Query is a
// RequestFunc, and the schema/stats helpers feed shape generation and
// report enrichment.
type Client struct {
	// Base is the server address, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client (http.DefaultClient when nil). Point
	// it at a pooled transport sized for the worker count.
	HTTP *http.Client
	// TimeoutMillis, when > 0, is sent as each query's timeout_ms.
	TimeoutMillis int64
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Query runs one floodsql statement and maps the response onto a runner
// Outcome: 429 → Shed, other non-2xx or transport failure → Err.
func (c *Client) Query(ctx context.Context, sql string) Outcome {
	body, _ := json.Marshal(server.QueryRequest{SQL: sql, TimeoutMillis: c.TimeoutMillis})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/query", bytes.NewReader(body))
	if err != nil {
		return Outcome{Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Outcome{Err: err}
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		var qr server.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return Outcome{Err: err}
		}
		return Outcome{Cached: qr.Cached, BatchSize: qr.BatchSize}
	case http.StatusTooManyRequests:
		return Outcome{Shed: true}
	default:
		return Outcome{Err: fmt.Errorf("status %d", resp.StatusCode)}
	}
}

// Schema fetches GET /schema.
func (c *Client) Schema(ctx context.Context) (server.SchemaResponse, error) {
	var out server.SchemaResponse
	err := c.getJSON(ctx, "/schema", &out)
	return out, err
}

// Stats fetches GET /stats.
func (c *Client) Stats(ctx context.Context) (server.Stats, error) {
	var out server.Stats
	err := c.getJSON(ctx, "/stats", &out)
	return out, err
}

// WaitReady polls GET /healthz until the server answers or the deadline
// passes.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := c.httpClient().Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("loadgen: server %s not ready: %w", c.Base, err)
			}
			return fmt.Errorf("loadgen: server %s not ready", c.Base)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
