package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histMajors covers latencies up to ~2^40 µs (~13 days) in power-of-two
// major buckets; histSubs splits each major into linear sub-buckets, so the
// relative quantile error is bounded by 1/histSubs (~3%) — the HDR
// histogram arrangement, giving fixed memory and lock-free concurrent
// recording regardless of sample count.
const (
	histMajors = 41
	histSubs   = 32
)

// Histogram is a concurrency-safe HDR-style latency histogram with
// microsecond resolution. The zero value is ready to use.
type Histogram struct {
	counts [histMajors * histSubs]atomic.Uint64
	total  atomic.Uint64
	maxUS  atomic.Uint64
}

// bucketOf maps a microsecond value to its bucket index. A major m covers
// [2^m, 2^(m+1)); sub-buckets are linear within it (unit-width while the
// major is narrower than histSubs).
func bucketOf(us uint64) int {
	if us == 0 {
		return 0
	}
	m := bits.Len64(us) - 1
	if m >= histMajors {
		m = histMajors - 1
	}
	base := uint64(1) << m
	width := base / histSubs
	if width == 0 {
		width = 1
	}
	sub := (us - base) / width
	if sub >= histSubs {
		sub = histSubs - 1
	}
	return m*histSubs + int(sub)
}

// bucketValue is the representative latency (µs) reported for a bucket: its
// midpoint.
func bucketValue(b int) uint64 {
	m := b / histSubs
	sub := uint64(b % histSubs)
	base := uint64(1) << m
	width := base / histSubs
	if width == 0 {
		width = 1
	}
	return base + sub*width + width/2
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	us := uint64(d.Microseconds())
	h.counts[bucketOf(us)].Add(1)
	h.total.Add(1)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Quantile returns the latency at quantile q in [0,1] in microseconds
// (0 when the histogram is empty). The exact recorded maximum is returned
// for q high enough to land in the last occupied bucket.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for b := range h.counts {
		c := h.counts[b].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			if v := h.maxUS.Load(); bucketValue(b) > v {
				return v
			}
			return bucketValue(b)
		}
	}
	return h.maxUS.Load()
}

// Max reports the largest recorded latency in microseconds.
func (h *Histogram) Max() uint64 { return h.maxUS.Load() }
