// Package loadgen is flood's serving-workload harness: skewed query-shape
// generators plus an open-loop, coordinated-omission-safe load runner.
//
// Shapes are drawn over a bucketed column domain so hot shapes repeat as
// EXACTLY the same SQL text — which is what exercises a server-side result
// cache the way real dashboard traffic does. Three distributions cover the
// usual serving skews: zipfian (a few shapes dominate, long tail), hotspot
// (a fixed fraction of traffic confined to a small region), and uniform
// (the cache-hostile baseline).
//
// The runner is open-loop: request number i is due at start + i/QPS,
// independent of how previous requests fared, and latency is measured from
// that SCHEDULED time, not from when a worker got around to sending. A
// stalled server therefore charges its stall to every request due during
// it — the coordinated-omission correction that closed-loop harnesses get
// wrong — and the arrival schedule never slows down to flatter the system
// under test.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Dist names a query-shape distribution.
type Dist string

// The supported shape distributions.
const (
	DistZipfian Dist = "zipfian"
	DistHotspot Dist = "hotspot"
	DistUniform Dist = "uniform"
)

// ShapeConfig describes how to draw query shapes over one column.
type ShapeConfig struct {
	// Table and Column name the FROM table and predicate column.
	Table  string
	Column string
	// Min and Max bound the column's physical domain (from GET /schema).
	Min, Max int64
	// Buckets quantizes the domain (default 256): predicates are aligned
	// to bucket edges so a hot bucket repeats as identical SQL.
	Buckets int
	// SpanBuckets is how many consecutive buckets one query covers
	// (default 4): selectivity = SpanBuckets/Buckets.
	SpanBuckets int
	// Dist picks the skew (default DistZipfian).
	Dist Dist
	// ZipfS is the zipfian exponent (default 1.2; must be > 1).
	ZipfS float64
	// HotFraction and HotWeight shape DistHotspot: HotWeight of traffic
	// lands in the first HotFraction of buckets (defaults 0.1 and 0.9).
	HotFraction, HotWeight float64
	// Seed fixes the drawing sequence.
	Seed int64
}

func (c *ShapeConfig) withDefaults() ShapeConfig {
	out := *c
	if out.Table == "" {
		out.Table = "t"
	}
	if out.Buckets <= 0 {
		out.Buckets = 256
	}
	if out.SpanBuckets <= 0 {
		out.SpanBuckets = 4
	}
	if out.SpanBuckets > out.Buckets {
		out.SpanBuckets = out.Buckets
	}
	if out.Dist == "" {
		out.Dist = DistZipfian
	}
	if out.ZipfS <= 1 {
		out.ZipfS = 1.2
	}
	if out.HotFraction <= 0 || out.HotFraction > 1 {
		out.HotFraction = 0.1
	}
	if out.HotWeight <= 0 || out.HotWeight > 1 {
		out.HotWeight = 0.9
	}
	return out
}

// Shapes pre-draws n SQL statements from the configured distribution. The
// result is deterministic in the config (including Seed) and safe to index
// concurrently.
func Shapes(cfg ShapeConfig, n int) ([]string, error) {
	c := cfg.withDefaults()
	if c.Column == "" {
		return nil, fmt.Errorf("loadgen: ShapeConfig.Column is required")
	}
	if c.Max < c.Min {
		return nil, fmt.Errorf("loadgen: column domain [%d,%d] is empty", c.Min, c.Max)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	var draw func() int
	switch c.Dist {
	case DistZipfian:
		z := rand.NewZipf(rng, c.ZipfS, 1, uint64(c.Buckets-1))
		// Scatter the zipf ranks over the domain so the hot buckets are
		// not all clustered at the low end of the column.
		perm := rng.Perm(c.Buckets)
		draw = func() int { return perm[z.Uint64()] }
	case DistHotspot:
		hot := int(float64(c.Buckets) * c.HotFraction)
		if hot < 1 {
			hot = 1
		}
		start := rng.Intn(c.Buckets - hot + 1)
		draw = func() int {
			if rng.Float64() < c.HotWeight {
				return start + rng.Intn(hot)
			}
			return rng.Intn(c.Buckets)
		}
	case DistUniform:
		draw = func() int { return rng.Intn(c.Buckets) }
	default:
		return nil, fmt.Errorf("loadgen: unknown distribution %q", c.Dist)
	}

	width := (c.Max - c.Min + 1) / int64(c.Buckets)
	if width < 1 {
		width = 1
	}
	out := make([]string, n)
	for i := range out {
		b := draw()
		if b > c.Buckets-c.SpanBuckets {
			b = c.Buckets - c.SpanBuckets
		}
		lo := c.Min + int64(b)*width
		hi := c.Min + int64(b+c.SpanBuckets)*width - 1
		if hi > c.Max {
			hi = c.Max
		}
		out[i] = fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s BETWEEN %d AND %d",
			c.Table, c.Column, lo, hi)
	}
	return out, nil
}

// Outcome is one request's result as seen by the runner.
type Outcome struct {
	// Err marks a hard failure (network error or 5xx).
	Err error
	// Shed marks a 429 admission rejection (counted separately from Err:
	// shedding under overload is the server working as designed).
	Shed bool
	// Cached marks a server-side result-cache hit.
	Cached bool
	// BatchSize is the reported execution batch size (0 if not batched).
	BatchSize int
}

// RequestFunc issues one request. seq indexes into the pre-drawn shape
// list; implementations must be safe for concurrent calls.
type RequestFunc func(ctx context.Context, sql string) Outcome

// RunConfig drives an open-loop run.
type RunConfig struct {
	// QPS is the fixed arrival rate (default 100).
	QPS float64
	// Duration is how long arrivals are scheduled for (default 10s); the
	// run ends when every scheduled request completes.
	Duration time.Duration
	// Workers bounds in-flight requests on the client side (default 64).
	// With an open-loop schedule, exhausted workers do NOT slow arrivals:
	// tickets queue with their original schedule and the wait is charged
	// to latency.
	Workers int
	// Warmup discards this leading portion of the schedule from the
	// report's latency histogram (default 0): cold caches and first-touch
	// page faults are real but usually reported separately.
	Warmup time.Duration
}

func (c *RunConfig) withDefaults() RunConfig {
	out := RunConfig{}
	if c != nil {
		out = *c
	}
	if out.QPS <= 0 {
		out.QPS = 100
	}
	if out.Duration <= 0 {
		out.Duration = 10 * time.Second
	}
	if out.Workers <= 0 {
		out.Workers = 64
	}
	if out.Warmup < 0 {
		out.Warmup = 0
	}
	return out
}

// Report is the runner's measurement summary. Latency quantiles are in
// microseconds and are coordinated-omission-safe: each request's latency
// is completion time minus SCHEDULED send time.
type Report struct {
	// Sent counts scheduled requests actually issued; Completed those
	// that returned success; Shed 429 rejections; Errors hard failures.
	Sent      int64 `json:"sent"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Errors    int64 `json:"errors"`
	// CacheHits counts responses served from the server's result cache.
	CacheHits int64 `json:"cache_hits"`
	// MaxBatch is the largest server-side execution batch observed in
	// responses; BatchedOver1 counts responses with batch size > 1.
	MaxBatch     int   `json:"max_batch"`
	BatchedOver1 int64 `json:"batched_over_1"`
	// TargetQPS is the configured arrival rate; Throughput the achieved
	// completion rate over the measured window.
	TargetQPS  float64 `json:"target_qps"`
	Throughput float64 `json:"throughput"`
	// ShedRate and ErrorRate and CacheHitRate are fractions of Sent (or
	// of Completed for the cache).
	ShedRate     float64 `json:"shed_rate"`
	ErrorRate    float64 `json:"error_rate"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// P50–P999 and Max are latency quantiles in microseconds.
	P50  uint64 `json:"p50_us"`
	P90  uint64 `json:"p90_us"`
	P99  uint64 `json:"p99_us"`
	P999 uint64 `json:"p999_us"`
	Max  uint64 `json:"max_us"`
	// WallSeconds is the measured wall-clock span of the run.
	WallSeconds float64 `json:"wall_seconds"`
}

// Run executes an open-loop run: len(shapes) must be at least
// QPS*Duration requests' worth (shapes are reused round-robin otherwise).
// It returns once every scheduled request has completed.
func Run(ctx context.Context, cfg *RunConfig, shapes []string, do RequestFunc) (Report, error) {
	c := cfg.withDefaults()
	if len(shapes) == 0 {
		return Report{}, fmt.Errorf("loadgen: no shapes")
	}
	total := int(c.QPS * c.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / c.QPS)

	type ticket struct {
		seq   int
		sched time.Time
	}
	// The ticket queue is sized for the whole run so a stalled server
	// never backpressures the arrival schedule (open-loop invariant):
	// tickets pile up with their original schedule and the backlog wait
	// is charged to latency.
	tickets := make(chan ticket, total)
	var hist Histogram
	var rep Report
	rep.TargetQPS = c.QPS

	began := time.Now()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < c.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tickets {
				out := do(ctx, shapes[t.seq%len(shapes)])
				lat := time.Since(t.sched)
				if t.sched.Sub(began) >= c.Warmup && out.Err == nil && !out.Shed {
					hist.Record(lat)
				}
				mu.Lock()
				rep.Sent++
				switch {
				case out.Shed:
					rep.Shed++
				case out.Err != nil:
					rep.Errors++
				default:
					rep.Completed++
					if out.Cached {
						rep.CacheHits++
					}
					if out.BatchSize > 1 {
						rep.BatchedOver1++
					}
					if out.BatchSize > rep.MaxBatch {
						rep.MaxBatch = out.BatchSize
					}
				}
				mu.Unlock()
			}
		}()
	}

	go func() {
		for i := 0; i < total; i++ {
			sched := began.Add(time.Duration(i) * interval)
			if d := time.Until(sched); d > 0 {
				time.Sleep(d)
			}
			select {
			case <-ctx.Done():
				close(tickets)
				return
			case tickets <- ticket{seq: i, sched: sched}:
			}
		}
		close(tickets)
	}()
	wg.Wait()

	wall := time.Since(began)
	rep.WallSeconds = wall.Seconds()
	if rep.Sent > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Sent)
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Sent)
	}
	if rep.Completed > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(rep.Completed)
	}
	if wall > 0 {
		rep.Throughput = float64(rep.Completed) / wall.Seconds()
	}
	rep.P50 = hist.Quantile(0.50)
	rep.P90 = hist.Quantile(0.90)
	rep.P99 = hist.Quantile(0.99)
	rep.P999 = hist.Quantile(0.999)
	rep.Max = hist.Max()
	return rep, nil
}
