package loadgen

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000 µs uniformly: quantiles land within one bucket's relative
	// error (~1/histSubs) of the exact answer.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	within := func(got, want uint64, rel float64) bool {
		diff := float64(got) - float64(want)
		if diff < 0 {
			diff = -diff
		}
		return diff <= rel*float64(want)
	}
	if got := h.Quantile(0.5); !within(got, 500, 0.10) {
		t.Fatalf("p50 = %d, want ~500", got)
	}
	if got := h.Quantile(0.99); !within(got, 990, 0.10) {
		t.Fatalf("p99 = %d, want ~990", got)
	}
	if got := h.Max(); got != 1000 {
		t.Fatalf("max = %d, want 1000", got)
	}
	// The top quantile never exceeds the recorded maximum.
	if got := h.Quantile(1); got > 1000 {
		t.Fatalf("p100 = %d > recorded max", got)
	}
	// Empty histogram.
	var empty Histogram
	if empty.Quantile(0.5) != 0 || empty.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramBucketsMonotonic(t *testing.T) {
	// bucketOf must be monotonic and bucketValue must land inside the
	// bucket's range, across magnitudes.
	prev := -1
	for us := uint64(0); us < 1<<20; us += 97 {
		b := bucketOf(us)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", us, b, prev)
		}
		prev = b
	}
	for _, us := range []uint64{0, 1, 2, 31, 32, 33, 1000, 123456, 1 << 30} {
		b := bucketOf(us)
		v := bucketValue(b)
		if bucketOf(v) != b {
			t.Fatalf("bucketValue(%d)=%d maps to bucket %d", b, v, bucketOf(v))
		}
	}
}

func TestShapesDistributions(t *testing.T) {
	base := ShapeConfig{Table: "sales", Column: "price", Min: 0, Max: 102399, Buckets: 1024, SpanBuckets: 4, Seed: 7}

	for _, dist := range []Dist{DistZipfian, DistHotspot, DistUniform} {
		cfg := base
		cfg.Dist = dist
		shapes, err := Shapes(cfg, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if len(shapes) != 5000 {
			t.Fatalf("%s: %d shapes", dist, len(shapes))
		}
		// Determinism: same config, same sequence.
		again, _ := Shapes(cfg, 5000)
		for i := range shapes {
			if shapes[i] != again[i] {
				t.Fatalf("%s: shape %d not deterministic", dist, i)
			}
		}
		distinct := map[string]int{}
		for _, s := range shapes {
			if !strings.HasPrefix(s, "SELECT COUNT(*) FROM sales WHERE price BETWEEN ") {
				t.Fatalf("%s: malformed shape %q", dist, s)
			}
			distinct[s]++
		}
		hottest := 0
		for _, n := range distinct {
			if n > hottest {
				hottest = n
			}
		}
		switch dist {
		case DistZipfian:
			// Zipf concentrates: the hottest shape dominates and the
			// shape count is far below the draw count (cacheable).
			if hottest < 1000 || len(distinct) > 2000 {
				t.Fatalf("zipfian skew off: hottest %d, distinct %d", hottest, len(distinct))
			}
		case DistUniform:
			if hottest > 50 {
				t.Fatalf("uniform too skewed: hottest %d", hottest)
			}
		case DistHotspot:
			// ~90% of draws land in ~10% of buckets.
			hot := 0
			for _, n := range distinct {
				if n > 10 {
					hot += n
				}
			}
			if hot < 3500 {
				t.Fatalf("hotspot weight off: %d draws in hot shapes", hot)
			}
		}
	}
	if _, err := Shapes(ShapeConfig{Dist: "pareto", Column: "x", Max: 1}, 1); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	if _, err := Shapes(ShapeConfig{Max: 1}, 1); err == nil {
		t.Fatal("missing column accepted")
	}
}

// TestLoadgenOpenLoopSchedule pins the coordinated-omission contract: with
// one worker and a request that stalls much longer than the arrival
// interval, requests scheduled during the stall must be charged their full
// queue wait — the recorded p-max must approach (backlog × stall), far
// above a single request's service time.
func TestLoadgenOpenLoopSchedule(t *testing.T) {
	const stall = 20 * time.Millisecond
	var calls atomic.Int64
	do := func(ctx context.Context, sql string) Outcome {
		calls.Add(1)
		time.Sleep(stall)
		return Outcome{}
	}
	rep, err := Run(context.Background(), &RunConfig{
		QPS: 200, Duration: 200 * time.Millisecond, Workers: 1,
	}, []string{"SELECT COUNT(*) FROM t"}, do)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 40 || rep.Completed != 40 {
		t.Fatalf("sent %d completed %d, want 40/40", rep.Sent, rep.Completed)
	}
	// 40 requests × 20ms service through one worker = the last request
	// waits ~ 35 intervals beyond its schedule. A closed-loop (coordinated
	// omission) measurement would report ~stall for every request.
	if rep.Max < uint64((10 * stall).Microseconds()) {
		t.Fatalf("max latency %dµs does not include backlog wait (CO-unsafe)", rep.Max)
	}
	if rep.Throughput <= 0 {
		t.Fatal("no throughput")
	}
}

func TestLoadgenCountsOutcomes(t *testing.T) {
	var n atomic.Int64
	do := func(ctx context.Context, sql string) Outcome {
		switch n.Add(1) % 4 {
		case 0:
			return Outcome{Shed: true}
		case 1:
			return Outcome{Err: errors.New("boom")}
		case 2:
			return Outcome{Cached: true, BatchSize: 3}
		default:
			return Outcome{BatchSize: 1}
		}
	}
	rep, err := Run(context.Background(), &RunConfig{QPS: 1000, Duration: 100 * time.Millisecond, Workers: 8},
		[]string{"q"}, do)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 100 || rep.Shed != 25 || rep.Errors != 25 || rep.Completed != 50 {
		t.Fatalf("outcome counts = %+v", rep)
	}
	if rep.CacheHits != 25 || rep.MaxBatch != 3 || rep.BatchedOver1 != 25 {
		t.Fatalf("detail counts = %+v", rep)
	}
	if rep.ShedRate != 0.25 || rep.CacheHitRate != 0.5 {
		t.Fatalf("rates = %+v", rep)
	}
}
