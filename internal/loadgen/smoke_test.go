package loadgen

import (
	"context"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	flood "flood"
	"flood/internal/dataset"
	"flood/internal/server"
	"flood/internal/workload"
)

// TestLoadgenServerSmoke is the CI smoke load test: a real floodserver
// behind real HTTP, driven by the open-loop runner with a zipfian shape
// mix, asserting zero hard errors and nonzero throughput. The duration
// defaults to a tier-1-friendly second and is raised by the CI smoke step
// via SERVE_SMOKE_DURATION (e.g. "10s").
func TestLoadgenServerSmoke(t *testing.T) {
	ds := dataset.Sales(5000, 41)
	queries := workload.Standard(ds, 20, 42)
	idx, err := flood.Build(ds.Table, queries, &flood.Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	a := flood.NewAdaptiveIndex(idx, &flood.AdaptiveConfig{
		DriftFactor: 1e9,
		Build:       &flood.Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 44},
	})
	runServerSmoke(t, server.New(a, &server.Config{BatchWindow: time.Millisecond}), false)
}

// TestLoadgenShardedSmoke is the same open-loop smoke run over a 4-shard
// store — the `floodserver -shards 4` serving path — additionally
// asserting that /stats carries the per-shard block and that the routed
// queries actually reached the shards.
func TestLoadgenShardedSmoke(t *testing.T) {
	ds := dataset.Sales(5000, 41)
	queries := workload.Standard(ds, 20, 42)
	sh, err := flood.NewSharded(ds.Table, queries, &flood.ShardedOptions{
		Shards: 4,
		Build:  &flood.Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 43},
	})
	if err != nil {
		t.Fatal(err)
	}
	runServerSmoke(t, server.NewSharded(sh, &server.Config{BatchWindow: time.Millisecond}), true)
}

// runServerSmoke drives the shared smoke flow against an already-built
// server: real HTTP, zipfian shapes over the price column, zero hard
// errors, plausible quantiles, cache hits, and — when sharded — a
// populated per-shard stats block.
func runServerSmoke(t *testing.T, srv *server.Server, sharded bool) {
	t.Helper()
	duration := time.Second
	if v := os.Getenv("SERVE_SMOKE_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("bad SERVE_SMOKE_DURATION %q: %v", v, err)
		}
		duration = d
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
	}()

	ctx := context.Background()
	client := &Client{Base: hs.URL, TimeoutMillis: 2000}
	if err := client.WaitReady(ctx, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	schema, err := client.Schema(ctx)
	if err != nil {
		t.Fatal(err)
	}
	priceCol := schema.Columns[0]
	for _, c := range schema.Columns {
		if c.Name == "price" {
			priceCol = c
		}
	}
	shapes, err := Shapes(ShapeConfig{
		Table: "sales", Column: priceCol.Name, Min: priceCol.Min, Max: priceCol.Max,
		Dist: DistZipfian, Seed: 45,
	}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(ctx, &RunConfig{QPS: 400, Duration: duration, Workers: 32}, shapes, client.Query)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("smoke run had %d errors: %+v", rep.Errors, rep)
	}
	if rep.Completed == 0 || rep.Throughput <= 0 {
		t.Fatalf("smoke run produced no throughput: %+v", rep)
	}
	if rep.P50 == 0 || rep.P99 < rep.P50 {
		t.Fatalf("implausible latency quantiles: %+v", rep)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.AggQueries == 0 {
		t.Fatalf("server saw no aggregate queries: %+v", st)
	}
	// The zipfian mix repeats hot shapes, so the result cache must hit.
	if st.CacheHits == 0 {
		t.Fatalf("zipfian smoke run never hit the cache: %+v", st)
	}
	if sharded {
		if len(st.Shards) == 0 {
			t.Fatalf("sharded server published no per-shard stats: %+v", st)
		}
		var routed int64
		for _, si := range st.Shards {
			routed += si.Queries
		}
		if routed == 0 {
			t.Fatalf("no queries reached any shard: %+v", st.Shards)
		}
	} else if len(st.Shards) != 0 {
		t.Fatalf("flat server published a shard block: %+v", st.Shards)
	}
	t.Logf("smoke: %+v", rep)
}
