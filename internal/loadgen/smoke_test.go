package loadgen

import (
	"context"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	flood "flood"
	"flood/internal/dataset"
	"flood/internal/server"
	"flood/internal/workload"
)

// TestLoadgenServerSmoke is the CI smoke load test: a real floodserver
// behind real HTTP, driven by the open-loop runner with a zipfian shape
// mix, asserting zero hard errors and nonzero throughput. The duration
// defaults to a tier-1-friendly second and is raised by the CI smoke step
// via SERVE_SMOKE_DURATION (e.g. "10s").
func TestLoadgenServerSmoke(t *testing.T) {
	duration := time.Second
	if v := os.Getenv("SERVE_SMOKE_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("bad SERVE_SMOKE_DURATION %q: %v", v, err)
		}
		duration = d
	}

	ds := dataset.Sales(5000, 41)
	queries := workload.Standard(ds, 20, 42)
	idx, err := flood.Build(ds.Table, queries, &flood.Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	a := flood.NewAdaptiveIndex(idx, &flood.AdaptiveConfig{
		DriftFactor: 1e9,
		Build:       &flood.Options{CalibrationLayouts: 3, GDSteps: 5, Seed: 44},
	})
	srv := server.New(a, &server.Config{BatchWindow: time.Millisecond})
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
	}()

	ctx := context.Background()
	client := &Client{Base: hs.URL, TimeoutMillis: 2000}
	if err := client.WaitReady(ctx, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	schema, err := client.Schema(ctx)
	if err != nil {
		t.Fatal(err)
	}
	priceCol := schema.Columns[0]
	for _, c := range schema.Columns {
		if c.Name == "price" {
			priceCol = c
		}
	}
	shapes, err := Shapes(ShapeConfig{
		Table: "sales", Column: priceCol.Name, Min: priceCol.Min, Max: priceCol.Max,
		Dist: DistZipfian, Seed: 45,
	}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(ctx, &RunConfig{QPS: 400, Duration: duration, Workers: 32}, shapes, client.Query)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("smoke run had %d errors: %+v", rep.Errors, rep)
	}
	if rep.Completed == 0 || rep.Throughput <= 0 {
		t.Fatalf("smoke run produced no throughput: %+v", rep)
	}
	if rep.P50 == 0 || rep.P99 < rep.P50 {
		t.Fatalf("implausible latency quantiles: %+v", rep)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.AggQueries == 0 {
		t.Fatalf("server saw no aggregate queries: %+v", st)
	}
	// The zipfian mix repeats hot shapes, so the result cache must hit.
	if st.CacheHits == 0 {
		t.Fatalf("zipfian smoke run never hit the cache: %+v", st)
	}
	t.Logf("smoke: %+v", rep)
}
