package modeltest

import (
	"fmt"
	"math/rand"
	"testing"

	flood "flood"
)

const (
	baseRows = 256
	nCols    = 3
	domain   = 256
	nOps     = 10_000
)

// baseData builds the deterministic seed table shared by the oracle and
// every system: column-major for NewTable, row-major for the oracle.
func baseData(seed int64) ([][]int64, [][]int64) {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]int64, nCols)
	for c := range cols {
		cols[c] = make([]int64, baseRows)
	}
	rows := make([][]int64, baseRows)
	for i := 0; i < baseRows; i++ {
		rows[i] = make([]int64, nCols)
		for c := 0; c < nCols; c++ {
			v := rng.Int63n(domain)
			rows[i][c] = v
			cols[c][i] = v
		}
	}
	return cols, rows
}

func buildBase(t testing.TB, seed int64) (*flood.Flood, [][]int64) {
	t.Helper()
	cols, rows := baseData(seed)
	tbl, err := flood.NewTable([]string{"a", "b", "c"}, cols)
	if err != nil {
		t.Fatal(err)
	}
	f, err := flood.BuildWithLayout(tbl, flood.Layout{
		GridDims: []int{0, 1}, GridCols: []int{4, 4}, SortDim: 2, Flatten: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f, rows
}

// runModel generates a seeded sequence, replays it through mk's runner, and
// on divergence shrinks to the shortest failing prefix before failing the
// test with a reproducible (seed, prefix) report.
func runModel(t *testing.T, seed int64, caps Caps, mk func() (*Runner, error)) {
	t.Helper()
	cfg := GenConfig{Cols: nCols, Ops: nOps, Domain: domain, Caps: caps}
	if testing.Short() {
		cfg.Ops = nOps / 10
	}
	ops := Generate(seed, cfg)
	r, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	defer r.System().Close()
	at, rerr := r.Run(ops)
	if at < 0 {
		return
	}
	n, serr := ShrinkPrefix(mk, ops)
	if n == 0 {
		t.Fatalf("seed %d: failed at op %d: %v (did NOT reproduce on replay: %v)", seed, at, rerr, serr)
	}
	t.Fatalf("seed %d: failed at op %d: %v (shortest failing prefix: %d ops, reproducing as: %v)",
		seed, at, rerr, n, serr)
}

// TestModelFlood checks the immutable base facade: tombstone deletes by
// predicate and by id, masked reads and aggregates, and compaction via
// Rebuild, against the oracle for a 10k-op seeded sequence.
func TestModelFlood(t *testing.T) {
	const seed = 1
	runModel(t, seed, Caps{Maintain: true}, func() (*Runner, error) {
		f, rows := buildBase(t, seed)
		return NewRunner(NewFloodSystem(f), NewOracle(rows), nCols), nil
	})
}

// TestModelDelta drives DeltaIndex through the full mutation surface:
// inserts into the buffer, deletes spanning base and buffer, updates
// (delete + re-insert), auto- and forced merges compacting tombstones.
func TestModelDelta(t *testing.T) {
	const seed = 2
	runModel(t, seed, Caps{Insert: true, Maintain: true}, func() (*Runner, error) {
		f, rows := buildBase(t, seed)
		return NewRunner(NewDeltaSystem(flood.NewDeltaIndex(f, 512), nCols), NewOracle(rows), nCols), nil
	})
}

// quiesced disables the autonomous rebuild triggers (growth merges, drift
// relearns). The oracle harness is single-threaded: it resolves physical ids
// with Select and immediately deletes them, and physical ids are only stable
// within an epoch — an autonomous background swap landing between the two
// calls silently invalidates them (see AdaptiveIndex.DeleteRows). Forced
// OpMaintain rebuilds still exercise every merge/relearn/swap path, but at
// deterministic points between ops.
func quiesced() *flood.AdaptiveConfig {
	return &flood.AdaptiveConfig{MergeFraction: -1, DriftFactor: 1e12}
}

// TestModelAdaptive drives AdaptiveIndex: the side log, merges and relearns
// forced by OpMaintain, with the deferred-delete protocol carrying deletions
// across epoch swaps.
func TestModelAdaptive(t *testing.T) {
	const seed = 3
	runModel(t, seed, Caps{Insert: true, Maintain: true}, func() (*Runner, error) {
		f, rows := buildBase(t, seed)
		return NewRunner(NewAdaptiveSystem(flood.NewAdaptiveIndex(f, quiesced()), nCols), NewOracle(rows), nCols), nil
	})
}

// TestModelDurable is the end-to-end property: every acknowledged mutation
// survives kill -9. The sequence interleaves mutations with checkpoints,
// forced rebuilds, and crash-recover cycles (the directory is snapshotted at
// the kill instant and recovered with OpenDurable); the oracle carries
// across crashes unchanged, so any lost or resurrected row diverges.
func TestModelDurable(t *testing.T) {
	const seed = 4
	runModel(t, seed, Caps{Insert: true, Maintain: true, Crash: true}, func() (*Runner, error) {
		f, rows := buildBase(t, seed)
		opts := &flood.DurableOptions{Sync: flood.SyncAlways, Adaptive: quiesced()}
		dir := t.TempDir()
		d, err := flood.CreateDurable(dir, f, opts)
		if err != nil {
			return nil, err
		}
		sys := NewDurableSystem(d, dir, opts, nCols, func() string { return t.TempDir() })
		return NewRunner(sys, NewOracle(rows), nCols), nil
	})
}

// TestModelSharded drives the durable sharded engine end to end: inserts,
// deletes, and updates routed by split point (the 64/128/192 splits sit
// inside the generator's value domain, so boundary values and cross-shard
// moves occur naturally), per-shard merges and relearns plus whole-store
// checkpoints forced by OpMaintain, and kill -9 crash-recovery through the
// manifest — the root is snapshotted at the kill instant and every shard
// recovers from its own WAL.
func TestModelSharded(t *testing.T) {
	const seed = 6
	runModel(t, seed, Caps{Insert: true, Maintain: true, Crash: true}, func() (*Runner, error) {
		cols, rows := baseData(seed)
		tbl, err := flood.NewTable([]string{"a", "b", "c"}, cols)
		if err != nil {
			return nil, err
		}
		train := []flood.Query{
			flood.NewQuery(nCols).WithRange(0, 0, 100),
			flood.NewQuery(nCols).WithRange(1, 50, 150),
			flood.NewQuery(nCols).WithRange(0, 100, 200).WithRange(2, 0, 128),
		}
		opts := &flood.DurableOptions{Sync: flood.SyncAlways, Adaptive: quiesced()}
		dir := t.TempDir()
		s, err := flood.CreateShardedDurable(dir, tbl, train, &flood.ShardedOptions{
			Dim:    0,
			Splits: []int64{64, 128, 192},
			Build:  &flood.Options{CalibrationLayouts: 2, GDSteps: 3, Seed: seed},
		}, opts)
		if err != nil {
			return nil, err
		}
		sys := NewShardedSystem(s, dir, opts, nCols, func() string { return t.TempDir() })
		return NewRunner(sys, NewOracle(rows), nCols), nil
	})
}

// lyingSystem wraps a System and silently drops every delete whose op
// ordinal is past breakAt — an artificial bug the harness must catch.
type lyingSystem struct {
	System
	n       int
	breakAt int
}

func (s *lyingSystem) Delete(q flood.Query) (int64, error) {
	s.n++
	if s.n > s.breakAt {
		return 0, nil // acknowledged nothing, deleted nothing
	}
	return s.System.Delete(q)
}

// TestModelCatchesInjectedBug proves the harness has teeth: a facade that
// starts dropping deletes partway through is detected at (or immediately
// after) the first dropped delete, and ShrinkPrefix converges to a prefix no
// longer than the full sequence and still failing.
func TestModelCatchesInjectedBug(t *testing.T) {
	const seed = 5
	cfg := GenConfig{Cols: nCols, Ops: 2000, Domain: domain, Caps: Caps{Insert: true, Maintain: true}}
	ops := Generate(seed, cfg)
	mk := func() (*Runner, error) {
		f, rows := buildBase(t, seed)
		sys := &lyingSystem{System: NewDeltaSystem(flood.NewDeltaIndex(f, 512), nCols), breakAt: 3}
		return NewRunner(sys, NewOracle(rows), nCols), nil
	}
	r, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	defer r.System().Close()
	at, rerr := r.Run(ops)
	if at < 0 {
		t.Fatal("harness did not detect an injected delete-dropping bug")
	}
	n, serr := ShrinkPrefix(mk, ops)
	if n == 0 {
		t.Fatalf("injected bug did not reproduce under shrink: %v", serr)
	}
	if n > at+1 {
		t.Fatalf("shrink found prefix %d, want 1..%d (failure was at op %d: %v)", n, at+1, at, rerr)
	}
}

// TestModelOracleBasics pins the oracle itself — the model must be right
// before it can judge the system.
func TestModelOracleBasics(t *testing.T) {
	o := NewOracle([][]int64{{1, 10}, {2, 20}, {3, 30}})
	q := flood.NewQuery(2).WithRange(0, 2, 3)
	if n := o.Delete(q); n != 2 {
		t.Fatalf("Delete matched %d rows, want 2", n)
	}
	if o.Len() != 1 {
		t.Fatalf("Len = %d after delete, want 1", o.Len())
	}
	o.Insert([]int64{5, 50})
	if n := o.Update(flood.NewQuery(2).WithRange(1, 50, 50), []flood.Assignment{{Col: 0, Value: 9}}); n != 1 {
		t.Fatalf("Update matched %d rows, want 1", n)
	}
	got := o.Match(flood.NewQuery(2))
	want := [][]int64{{1, 10}, {9, 50}}
	if !EqualTuples(got, want) {
		t.Fatalf("Match = %v, want %v", got, want)
	}
	cnt, sum := o.Aggregate(flood.NewQuery(2))
	if cnt != 2 || sum != 10 {
		t.Fatalf("Aggregate = (%d, %d), want (2, 10)", cnt, sum)
	}
}

// TestModelGenerateDeterministic pins that equal seeds yield equal
// sequences — the property every failure report relies on.
func TestModelGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Cols: nCols, Ops: 500, Domain: domain, Caps: Caps{Insert: true, Maintain: true, Crash: true}}
	a, b := Generate(42, cfg), Generate(42, cfg)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("Generate is not deterministic in its seed")
	}
	c := Generate(43, cfg)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("distinct seeds produced identical sequences")
	}
}
