// Package modeltest is a model-based oracle harness for the mutation path:
// it replays seeded random operation sequences — insert, delete, update,
// select, aggregate, compaction, checkpoint, crash-recover — against a real
// index facade and, in lockstep, against a brute-force in-memory oracle, and
// fails on the first observable divergence.
//
// The harness is deliberately simple where the index is clever. The oracle
// is a flat slice of row tuples with O(rows) linear matching; it has no
// tombstones, no epochs, no WAL — deletion is removal, update is in-place
// rewrite. Any behavior the two disagree on is a bug in the index (or, once,
// in the model — which is itself informative).
//
// Sequences are deterministic in their seed, so a failure report is a
// (seed, op-index) pair that reproduces exactly. ShrinkPrefix bisects a
// failing sequence down to its shortest failing prefix for diagnosis.
package modeltest

import (
	"fmt"
	"math/rand"
	"sort"

	flood "flood"
)

// OpKind enumerates the operations a generated sequence may contain.
type OpKind int

// The operation kinds. Mutations and reads verify against the oracle
// immediately; OpMaintain and OpCrash are facade lifecycle events (merge,
// relearn, checkpoint, kill-and-reopen) after which the harness re-verifies
// the full visible state.
const (
	OpInsert OpKind = iota
	OpDelete
	OpDeleteRows
	OpUpdate
	OpSelect
	OpAggregate
	OpMaintain
	OpCrash
)

// String names the op kind for failure reports.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpDeleteRows:
		return "delete-rows"
	case OpUpdate:
		return "update"
	case OpSelect:
		return "select"
	case OpAggregate:
		return "aggregate"
	case OpMaintain:
		return "maintain"
	case OpCrash:
		return "crash"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one step of a generated sequence.
type Op struct {
	// Kind selects the operation.
	Kind OpKind
	// Row is the tuple to insert (OpInsert only).
	Row []int64
	// Q is the predicate (OpDelete, OpDeleteRows, OpUpdate, OpSelect,
	// OpAggregate).
	Q flood.Query
	// Set holds the update assignments (OpUpdate only).
	Set []flood.Assignment
	// Step disambiguates maintenance flavors (OpMaintain only): facades
	// cycle through their lifecycle events (merge, relearn, checkpoint) by
	// Step modulo however many they have.
	Step int
}

// Caps declares which operations a facade supports; Generate emits only
// supported kinds. Every facade supports delete, select, and aggregate.
type Caps struct {
	// Insert permits OpInsert and OpUpdate (update re-inserts).
	Insert bool
	// Maintain permits OpMaintain (merge / relearn / checkpoint / rebuild).
	Maintain bool
	// Crash permits OpCrash (kill the handle, recover from disk).
	Crash bool
}

// GenConfig shapes a generated sequence.
type GenConfig struct {
	// Cols is the table width.
	Cols int
	// Ops is the sequence length.
	Ops int
	// Domain bounds generated values to [0, Domain).
	Domain int64
	// Caps gates which op kinds appear.
	Caps Caps
}

// Generate produces a deterministic op sequence from seed. Mutating
// predicates are kept narrow so sequences do not empty the table; reads use
// wider predicates for better coverage.
func Generate(seed int64, cfg GenConfig) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		ops = append(ops, genOp(rng, cfg, i))
	}
	return ops
}

func genOp(rng *rand.Rand, cfg GenConfig, step int) Op {
	roll := rng.Intn(100)
	switch {
	case cfg.Caps.Crash && roll < 1:
		return Op{Kind: OpCrash}
	case cfg.Caps.Maintain && roll < 3:
		return Op{Kind: OpMaintain, Step: rng.Intn(1 << 20)}
	case cfg.Caps.Insert && roll < 38:
		return Op{Kind: OpInsert, Row: genRow(rng, cfg)}
	case roll < 48:
		if rng.Intn(3) == 0 {
			return Op{Kind: OpDeleteRows, Q: genQuery(rng, cfg, cfg.Domain/16)}
		}
		return Op{Kind: OpDelete, Q: genQuery(rng, cfg, cfg.Domain/16)}
	case cfg.Caps.Insert && roll < 58:
		return Op{Kind: OpUpdate, Q: genQuery(rng, cfg, cfg.Domain/16), Set: genSet(rng, cfg)}
	case roll < 80:
		return Op{Kind: OpSelect, Q: genQuery(rng, cfg, cfg.Domain/4)}
	default:
		return Op{Kind: OpAggregate, Q: genQuery(rng, cfg, cfg.Domain/4)}
	}
}

func genRow(rng *rand.Rand, cfg GenConfig) []int64 {
	row := make([]int64, cfg.Cols)
	for c := range row {
		row[c] = rng.Int63n(cfg.Domain)
	}
	return row
}

// genQuery builds a conjunctive predicate over one or two dimensions with
// ranges about width wide.
func genQuery(rng *rand.Rand, cfg GenConfig, width int64) flood.Query {
	if width < 1 {
		width = 1
	}
	q := flood.NewQuery(cfg.Cols)
	dims := 1 + rng.Intn(2)
	for d := 0; d < dims; d++ {
		col := rng.Intn(cfg.Cols)
		lo := rng.Int63n(cfg.Domain)
		hi := lo + rng.Int63n(width)
		q = q.WithRange(col, lo, hi)
	}
	return q
}

func genSet(rng *rand.Rand, cfg GenConfig) []flood.Assignment {
	n := 1 + rng.Intn(2)
	set := make([]flood.Assignment, 0, n)
	for i := 0; i < n; i++ {
		set = append(set, flood.Assignment{Col: rng.Intn(cfg.Cols), Value: rng.Int63n(cfg.Domain)})
	}
	return set
}

// Oracle is the brute-force reference model: a flat multiset of live row
// tuples. All operations are linear scans; correctness over speed.
type Oracle struct {
	rows [][]int64
}

// NewOracle seeds the model with the base table's rows (copied).
func NewOracle(rows [][]int64) *Oracle {
	o := &Oracle{rows: make([][]int64, 0, len(rows))}
	for _, r := range rows {
		o.Insert(r)
	}
	return o
}

// Insert adds a copy of row to the live set.
func (o *Oracle) Insert(row []int64) {
	o.rows = append(o.rows, append([]int64(nil), row...))
}

// Delete removes every live row matching q and returns how many there were.
func (o *Oracle) Delete(q flood.Query) int64 {
	kept := o.rows[:0]
	var n int64
	for _, r := range o.rows {
		if q.Matches(r) {
			n++
			continue
		}
		kept = append(kept, r)
	}
	o.rows = kept
	return n
}

// Update rewrites every live row matching q with set applied and returns the
// match count. The index executes update as delete-plus-reinsert; in-place
// rewrite is multiset-equivalent.
func (o *Oracle) Update(q flood.Query, set []flood.Assignment) int64 {
	var n int64
	for _, r := range o.rows {
		if !q.Matches(r) {
			continue
		}
		n++
		for _, a := range set {
			r[a.Col] = a.Value
		}
	}
	return n
}

// Match returns the live rows matching q, in canonical sorted order.
func (o *Oracle) Match(q flood.Query) [][]int64 {
	var out [][]int64
	for _, r := range o.rows {
		if q.Matches(r) {
			out = append(out, r)
		}
	}
	SortTuples(out)
	return out
}

// Aggregate returns COUNT(*) and SUM(col 0) over the live rows matching q.
func (o *Oracle) Aggregate(q flood.Query) (count, sum int64) {
	for _, r := range o.rows {
		if q.Matches(r) {
			count++
			sum += r[0]
		}
	}
	return count, sum
}

// Len returns the live row count.
func (o *Oracle) Len() int { return len(o.rows) }

// SortTuples orders rows lexicographically, the canonical order both sides
// of a comparison are brought to.
func SortTuples(rows [][]int64) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for c := range a {
			if a[c] != b[c] {
				return a[c] < b[c]
			}
		}
		return false
	})
}

// EqualTuples reports whether two canonically sorted row sets are identical.
func EqualTuples(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for c := range a[i] {
			if a[i][c] != b[i][c] {
				return false
			}
		}
	}
	return true
}
