package modeltest

import (
	"fmt"

	flood "flood"
)

// Runner drives one System and one Oracle through an op sequence in
// lockstep, checking for divergence after every step.
type Runner struct {
	sys  System
	o    *Oracle
	cols int
}

// NewRunner pairs a system with an oracle over the same initial rows; cols
// is the table width (needed to build full-state queries when the oracle is
// empty).
func NewRunner(sys System, o *Oracle, cols int) *Runner {
	return &Runner{sys: sys, o: o, cols: cols}
}

// System returns the wrapped system (the handle may change across OpCrash).
func (r *Runner) System() System { return r.sys }

// Run applies ops in order and returns the index of the first op whose
// outcome diverged from the oracle, with a description of the divergence;
// (-1, nil) means the whole sequence agreed.
func (r *Runner) Run(ops []Op) (int, error) {
	for i, op := range ops {
		if err := r.Apply(op); err != nil {
			return i, fmt.Errorf("op %d (%s): %w", i, op.Kind, err)
		}
	}
	return -1, nil
}

// Apply executes one op on both sides and checks agreement: affected counts
// for mutations, full tuple multisets for reads, and — after every op — the
// live row count, so divergence is caught at the op that caused it, not at
// the next read.
func (r *Runner) Apply(op Op) error {
	switch op.Kind {
	case OpInsert:
		if err := r.sys.Insert(op.Row); err != nil {
			return err
		}
		r.o.Insert(op.Row)
	case OpDelete:
		got, err := r.sys.Delete(op.Q)
		if err != nil {
			return err
		}
		if want := r.o.Delete(op.Q); got != want {
			return fmt.Errorf("deleted %d rows, oracle %d", got, want)
		}
	case OpDeleteRows:
		// Resolve the predicate to ids through the system's own Select,
		// then delete by id — the oracle deletes by predicate, so the two
		// agree exactly when the id space is coherent.
		_, ids := r.sys.Select(op.Q)
		got, err := r.sys.DeleteRows(ids)
		if err != nil {
			return err
		}
		if int(got) != len(ids) {
			return fmt.Errorf("DeleteRows removed %d of %d just-selected ids", got, len(ids))
		}
		if want := r.o.Delete(op.Q); got != want {
			return fmt.Errorf("deleted %d rows by id, oracle %d", got, want)
		}
	case OpUpdate:
		got, err := r.sys.Update(op.Q, op.Set)
		if err != nil {
			return err
		}
		if want := r.o.Update(op.Q, op.Set); got != want {
			return fmt.Errorf("updated %d rows, oracle %d", got, want)
		}
	case OpSelect:
		if err := r.checkSelect(op.Q); err != nil {
			return err
		}
	case OpAggregate:
		cnt, sum := r.sys.Aggregate(op.Q)
		wantCnt, wantSum := r.o.Aggregate(op.Q)
		if cnt != wantCnt || sum != wantSum {
			return fmt.Errorf("aggregate (count %d, sum %d), oracle (%d, %d)",
				cnt, sum, wantCnt, wantSum)
		}
	case OpMaintain:
		if err := r.sys.Maintain(op.Step); err != nil {
			return err
		}
		if err := r.checkSelect(flood.NewQuery(r.cols)); err != nil {
			return fmt.Errorf("after maintain: %w", err)
		}
	case OpCrash:
		if err := r.sys.Crash(); err != nil {
			return err
		}
		if err := r.checkSelect(flood.NewQuery(r.cols)); err != nil {
			return fmt.Errorf("after crash recovery: %w", err)
		}
	default:
		return fmt.Errorf("unknown op kind %d", op.Kind)
	}
	if got, want := r.sys.LiveRows(), r.o.Len(); got != want {
		return fmt.Errorf("LiveRows = %d, oracle %d", got, want)
	}
	return nil
}

// checkSelect compares the full tuple multiset both sides return for q.
func (r *Runner) checkSelect(q flood.Query) error {
	got, ids := r.sys.Select(q)
	want := r.o.Match(q)
	if len(got) != len(ids) {
		return fmt.Errorf("select returned %d tuples but %d ids", len(got), len(ids))
	}
	if !EqualTuples(got, want) {
		return fmt.Errorf("select returned %d rows, oracle %d (first diff %s)",
			len(got), len(want), firstDiff(got, want))
	}
	return nil
}

// firstDiff renders the first position where two sorted tuple sets differ.
func firstDiff(a, b [][]int64) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		for c := range a[i] {
			if a[i][c] != b[i][c] {
				return fmt.Sprintf("at %d: got %v, want %v", i, a[i], b[i])
			}
		}
	}
	return fmt.Sprintf("at %d: one side ends", n)
}

// ShrinkPrefix bisects for the shortest prefix of ops that still fails when
// replayed on a fresh runner, assuming prefix-monotone failure (true here:
// Apply checks divergence at every op, so a failure at index i reproduces
// for any prefix covering i). mk must build an identical fresh runner each
// call. It returns the shortest failing length and that replay's divergence
// error; (0, nil) means the failure did not reproduce — a nondeterministic
// bug, which is worth knowing too — and (0, non-nil) means mk itself failed.
func ShrinkPrefix(mk func() (*Runner, error), ops []Op) (int, error) {
	fails := func(n int) (bool, error) {
		r, err := mk()
		if err != nil {
			return false, err
		}
		defer r.sys.Close()
		at, _ := r.Run(ops[:n])
		return at >= 0, nil
	}
	lo, hi := 1, len(ops) // invariant: fails(hi) believed true, fails(lo-1) false
	for lo < hi {
		mid := lo + (hi-lo)/2
		bad, err := fails(mid)
		if err != nil {
			return 0, err
		}
		if bad {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	r, err := mk()
	if err != nil {
		return 0, err
	}
	defer r.sys.Close()
	if at, rerr := r.Run(ops[:lo]); at >= 0 {
		return lo, rerr
	}
	return 0, nil
}
