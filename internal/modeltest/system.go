package modeltest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	flood "flood"
)

// ErrUnsupported reports an operation a facade cannot perform; Generate
// respects Caps so a runner never sees it, but adapters return it rather
// than panic if driven by hand.
var ErrUnsupported = errors.New("modeltest: operation not supported by this facade")

// System is the face the harness drives. Each adapter wraps one public index
// facade; the harness never reaches into internals, so whatever it observes
// a real caller could observe too.
type System interface {
	// Insert appends a row.
	Insert(row []int64) error
	// Delete removes rows matching q, returning the affected count.
	Delete(q flood.Query) (int64, error)
	// DeleteRows removes rows by the Select ids in ids.
	DeleteRows(ids []int64) (int64, error)
	// Update rewrites rows matching q with set applied.
	Update(q flood.Query, set []flood.Assignment) (int64, error)
	// Select returns the matching rows' tuples and their Select ids.
	Select(q flood.Query) (tuples [][]int64, ids []int64)
	// Aggregate returns COUNT(*) and SUM(col 0) over rows matching q.
	Aggregate(q flood.Query) (count, sum int64)
	// LiveRows returns the visible row count.
	LiveRows() int
	// Maintain runs one facade lifecycle event (merge, relearn,
	// checkpoint, rebuild) selected by step.
	Maintain(step int) error
	// Crash abandons the handle mid-flight and recovers from disk.
	Crash() error
	// Close releases the facade.
	Close() error
}

// readRows drains a Select cursor into concrete tuples and ids.
func readRows(rows *flood.Rows, cols int) ([][]int64, []int64) {
	defer rows.Close()
	var tuples [][]int64
	var ids []int64
	for rows.Next() {
		t := make([]int64, cols)
		for c := range t {
			t[c] = rows.Int64(c)
		}
		tuples = append(tuples, t)
		ids = append(ids, rows.RowID())
	}
	SortTuples(tuples)
	return tuples, ids
}

// aggregate runs COUNT and SUM(col 0) through an Execute-shaped facade.
func aggregate(exec func(flood.Query, flood.Aggregator) flood.Stats, q flood.Query) (int64, int64) {
	cnt := flood.NewCount()
	exec(q, cnt)
	sum := flood.NewSum(0)
	exec(q, sum)
	return cnt.Result(), sum.Result()
}

// floodSystem adapts the immutable base facade: deletes and reads only,
// Maintain compacts by rebuilding into a fresh handle.
type floodSystem struct {
	f    *flood.Flood
	cols int
}

// NewFloodSystem wraps a plain Flood index.
func NewFloodSystem(f *flood.Flood) System {
	return &floodSystem{f: f, cols: f.Table().NumCols()}
}

func (s *floodSystem) Insert([]int64) error { return ErrUnsupported }

func (s *floodSystem) Delete(q flood.Query) (int64, error) { return s.f.Delete(q) }

func (s *floodSystem) DeleteRows(ids []int64) (int64, error) { return s.f.DeleteRows(ids) }

func (s *floodSystem) Update(flood.Query, []flood.Assignment) (int64, error) {
	return 0, ErrUnsupported
}

func (s *floodSystem) Select(q flood.Query) ([][]int64, []int64) {
	rows, _ := s.f.Select(q)
	return readRows(rows, s.cols)
}

func (s *floodSystem) Aggregate(q flood.Query) (int64, int64) {
	return aggregate(s.f.Execute, q)
}

func (s *floodSystem) LiveRows() int { return s.f.LiveRows() }

func (s *floodSystem) Maintain(int) error {
	fresh, err := s.f.Rebuild()
	if err != nil {
		return err
	}
	s.f = fresh
	return nil
}

func (s *floodSystem) Crash() error { return ErrUnsupported }

func (s *floodSystem) Close() error { return nil }

// deltaSystem adapts DeltaIndex; Maintain forces a merge of the buffer (and
// with it, tombstone compaction).
type deltaSystem struct {
	d    *flood.DeltaIndex
	cols int
}

// NewDeltaSystem wraps a DeltaIndex.
func NewDeltaSystem(d *flood.DeltaIndex, cols int) System {
	return &deltaSystem{d: d, cols: cols}
}

func (s *deltaSystem) Insert(row []int64) error { return s.d.Insert(row) }

func (s *deltaSystem) Delete(q flood.Query) (int64, error) { return s.d.Delete(q) }

func (s *deltaSystem) DeleteRows(ids []int64) (int64, error) { return s.d.DeleteRows(ids) }

func (s *deltaSystem) Update(q flood.Query, set []flood.Assignment) (int64, error) {
	return s.d.Update(q, set)
}

func (s *deltaSystem) Select(q flood.Query) ([][]int64, []int64) {
	rows, _ := s.d.Select(q)
	return readRows(rows, s.cols)
}

func (s *deltaSystem) Aggregate(q flood.Query) (int64, int64) {
	return aggregate(s.d.Execute, q)
}

func (s *deltaSystem) LiveRows() int { return s.d.LiveRows() }

func (s *deltaSystem) Maintain(int) error { return s.d.Merge() }

func (s *deltaSystem) Crash() error { return ErrUnsupported }

func (s *deltaSystem) Close() error { return nil }

// adaptiveSystem adapts AdaptiveIndex; Maintain alternates forced merges and
// relearns, waiting for the background swap so the next op observes it.
type adaptiveSystem struct {
	a    *flood.AdaptiveIndex
	cols int
}

// NewAdaptiveSystem wraps an AdaptiveIndex.
func NewAdaptiveSystem(a *flood.AdaptiveIndex, cols int) System {
	return &adaptiveSystem{a: a, cols: cols}
}

func (s *adaptiveSystem) Insert(row []int64) error { return s.a.Insert(row) }

func (s *adaptiveSystem) Delete(q flood.Query) (int64, error) { return s.a.Delete(q) }

func (s *adaptiveSystem) DeleteRows(ids []int64) (int64, error) { return s.a.DeleteRows(ids) }

func (s *adaptiveSystem) Update(q flood.Query, set []flood.Assignment) (int64, error) {
	return s.a.Update(q, set)
}

func (s *adaptiveSystem) Select(q flood.Query) ([][]int64, []int64) {
	rows, _ := s.a.Select(q)
	return readRows(rows, s.cols)
}

func (s *adaptiveSystem) Aggregate(q flood.Query) (int64, int64) {
	return aggregate(s.a.Execute, q)
}

func (s *adaptiveSystem) LiveRows() int { return s.a.LiveRows() }

func (s *adaptiveSystem) Maintain(step int) error {
	if step%2 == 0 {
		s.a.TriggerMerge()
	} else {
		s.a.TriggerRelearn()
	}
	s.a.Wait()
	return nil
}

func (s *adaptiveSystem) Crash() error { return ErrUnsupported }

func (s *adaptiveSystem) Close() error { s.a.Close(); return nil }

// durableSystem adapts DurableIndex. Crash snapshots the directory at the
// kill instant (simulating the disk image a real crash leaves, including
// whatever the WAL has fsynced) and recovers from the copy with OpenDurable.
type durableSystem struct {
	d      *flood.DurableIndex
	dir    string
	opts   *flood.DurableOptions
	cols   int
	newDir func() string
}

// NewDurableSystem wraps a DurableIndex living in dir. newDir must return a
// fresh empty directory each call; Crash recovers into one so the abandoned
// handle can never touch the recovered state.
func NewDurableSystem(d *flood.DurableIndex, dir string, opts *flood.DurableOptions, cols int, newDir func() string) System {
	return &durableSystem{d: d, dir: dir, opts: opts, cols: cols, newDir: newDir}
}

func (s *durableSystem) Insert(row []int64) error { return s.d.Insert(row) }

func (s *durableSystem) Delete(q flood.Query) (int64, error) { return s.d.Delete(q) }

func (s *durableSystem) DeleteRows(ids []int64) (int64, error) { return s.d.DeleteRows(ids) }

func (s *durableSystem) Update(q flood.Query, set []flood.Assignment) (int64, error) {
	return s.d.Update(q, set)
}

func (s *durableSystem) Select(q flood.Query) ([][]int64, []int64) {
	rows, _ := s.d.Adaptive().Select(q)
	return readRows(rows, s.cols)
}

func (s *durableSystem) Aggregate(q flood.Query) (int64, int64) {
	return aggregate(s.d.Execute, q)
}

func (s *durableSystem) LiveRows() int { return s.d.LiveRows() }

func (s *durableSystem) Maintain(step int) error {
	switch step % 3 {
	case 0:
		return s.d.Checkpoint()
	case 1:
		s.d.Adaptive().TriggerMerge()
	default:
		s.d.Adaptive().TriggerRelearn()
	}
	s.d.Adaptive().Wait()
	return nil
}

func (s *durableSystem) Crash() error {
	// Copy first: the image at this instant is what a kill -9 leaves.
	// Closing the abandoned handle afterwards only releases resources; it
	// can no longer influence the copy we recover from.
	dst := s.newDir()
	if err := copyDir(s.dir, dst); err != nil {
		return err
	}
	s.d.Close()
	re, _, err := flood.OpenDurable(dst, s.opts)
	if err != nil {
		return fmt.Errorf("modeltest: recovery failed: %w", err)
	}
	s.d, s.dir = re, dst
	return nil
}

func (s *durableSystem) Close() error { return s.d.Close() }

// copyDir copies the flat durable directory (snapshot + WAL segments).
func copyDir(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// copyTree copies a sharded store root: the manifest plus one subdirectory
// per shard.
func copyTree(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dst, e.Name())
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return err
		}
		if err := copyDir(filepath.Join(src, e.Name()), sub); err != nil {
			return err
		}
	}
	return copyDir(src, dst)
}

// shardedSystem adapts ShardedIndex in its durable form. Maintain rotates a
// whole-store checkpoint with per-shard merges and relearns (the shard
// picked by the step ordinal, so every shard's lifecycle runs); Crash
// snapshots the entire root — manifest and every shard directory — at the
// kill instant and recovers the copy through OpenShardedDurable.
type shardedSystem struct {
	s      *flood.ShardedIndex
	dir    string
	opts   *flood.DurableOptions
	cols   int
	newDir func() string
}

// NewShardedSystem wraps a durable ShardedIndex living in dir. newDir must
// return a fresh empty directory each call, as in NewDurableSystem.
func NewShardedSystem(s *flood.ShardedIndex, dir string, opts *flood.DurableOptions, cols int, newDir func() string) System {
	return &shardedSystem{s: s, dir: dir, opts: opts, cols: cols, newDir: newDir}
}

func (s *shardedSystem) Insert(row []int64) error { return s.s.Insert(row) }

func (s *shardedSystem) Delete(q flood.Query) (int64, error) { return s.s.Delete(q) }

func (s *shardedSystem) DeleteRows(ids []int64) (int64, error) { return s.s.DeleteRows(ids) }

func (s *shardedSystem) Update(q flood.Query, set []flood.Assignment) (int64, error) {
	return s.s.Update(q, set)
}

func (s *shardedSystem) Select(q flood.Query) ([][]int64, []int64) {
	rows, _ := s.s.Select(q)
	return readRows(rows, s.cols)
}

func (s *shardedSystem) Aggregate(q flood.Query) (int64, int64) {
	return aggregate(s.s.Execute, q)
}

func (s *shardedSystem) LiveRows() int { return s.s.LiveRows() }

func (s *shardedSystem) Maintain(step int) error {
	switch step % 3 {
	case 0:
		return s.s.Checkpoint()
	case 1:
		sh := s.s.Shard((step / 3) % s.s.NumShards())
		sh.TriggerMerge()
		sh.Wait()
	default:
		sh := s.s.Shard((step / 3) % s.s.NumShards())
		sh.TriggerRelearn()
		sh.Wait()
	}
	return nil
}

func (s *shardedSystem) Crash() error {
	dst := s.newDir()
	if err := copyTree(s.dir, dst); err != nil {
		return err
	}
	s.s.Close()
	re, _, err := flood.OpenShardedDurable(dst, s.opts)
	if err != nil {
		return fmt.Errorf("modeltest: sharded recovery failed: %w", err)
	}
	s.s, s.dir = re, dst
	return nil
}

func (s *shardedSystem) Close() error { return s.s.Close() }
