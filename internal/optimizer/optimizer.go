// Package optimizer implements Flood's layout search (§4.2, Algorithm 1):
// sample the dataset and workload, flatten both with per-dimension CDFs,
// iterate over sort-dimension choices, and run a multi-start gradient
// descent over (continuous) per-dimension column counts, minimizing the
// calibrated cost model's predicted average query time. No step requires
// building a layout or running a query.
package optimizer

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"flood/internal/colstore"
	"flood/internal/core"
	"flood/internal/costmodel"
	"flood/internal/query"
)

// Config controls the search.
type Config struct {
	// DataSampleSize bounds the row sample (default 2000; §7.7 shows
	// 0.01%–1% samples suffice).
	DataSampleSize int
	// QuerySampleSize bounds the workload sample (default 50; §7.7).
	QuerySampleSize int
	// Restarts lists initial total-cell budgets for the multi-start
	// descent (stand-in for Scipy basinhopping). Default {2^8, 2^12, 2^16}.
	Restarts []float64
	// GDSteps is the number of gradient steps per restart (default 20).
	GDSteps int
	// MaxTotalCells caps layout size (default n/2, min 1024).
	MaxTotalCells float64
	// MaxGridDims caps how many dimensions a candidate grid may use
	// (default 10). Rarely filtered dimensions are dropped first — the
	// behaviour §7.5 observes on high-dimensional data ("Flood chooses
	// not to include the least frequently filtered dimensions").
	MaxGridDims int
	// MaxSortCandidates caps how many dimensions are tried as the sort
	// dimension (default 8, most selective first).
	MaxSortCandidates int
	// Seed drives sampling.
	Seed int64
}

func (c Config) withDefaults(n int) Config {
	if c.DataSampleSize <= 0 {
		c.DataSampleSize = 2000
	}
	if c.QuerySampleSize <= 0 {
		c.QuerySampleSize = 50
	}
	if len(c.Restarts) == 0 {
		c.Restarts = []float64{1 << 8, 1 << 12, 1 << 16}
	}
	if c.GDSteps <= 0 {
		c.GDSteps = 20
	}
	if c.MaxTotalCells <= 0 {
		c.MaxTotalCells = math.Max(1024, float64(n)/2)
	}
	if c.MaxGridDims <= 0 {
		c.MaxGridDims = 10
	}
	if c.MaxSortCandidates <= 0 {
		c.MaxSortCandidates = 8
	}
	return c
}

// Result is the outcome of a layout search.
type Result struct {
	Layout        core.Layout
	PredictedCost float64 // model-predicted average query time (ns)
}

// FindOptimalLayout runs Algorithm 1 and returns the best layout found.
func FindOptimalLayout(tbl *colstore.Table, queries []query.Query, m *costmodel.Model, cfg Config) (Result, error) {
	if len(queries) == 0 {
		return Result{}, fmt.Errorf("optimizer: need a sample workload")
	}
	if m == nil {
		return Result{}, fmt.Errorf("optimizer: need a calibrated cost model")
	}
	n := tbl.NumRows()
	cfg = cfg.withDefaults(n)
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Algorithm 1 lines 4-8: sample and flatten.
	est := costmodel.NewEstimator(tbl, cfg.DataSampleSize, rng.Int63())
	qs := sampleQueries(queries, cfg.QuerySampleSize, rng)
	fqs := make([]costmodel.FlatQuery, len(qs))
	for i, q := range qs {
		fqs[i] = est.Flatten(q)
	}

	// Line 9: dimensions ordered by decreasing average selectivity
	// (most selective first). On high-dimensional data, restrict the
	// search to the most selective filtered dimensions: unfiltered
	// dimensions cannot prune and only slow the descent (§7.5).
	sels := est.DimSelectivities(fqs)
	dims := orderBySelectivity(sels)
	filtered := dims[:0:0]
	for _, d := range dims {
		if sels[d] < 0.999 {
			filtered = append(filtered, d)
		}
	}
	if len(filtered) == 0 {
		filtered = dims
	}
	candidates := filtered
	if len(candidates) > cfg.MaxGridDims {
		candidates = candidates[:cfg.MaxGridDims]
	}
	sortCandidates := filtered
	if len(sortCandidates) > cfg.MaxSortCandidates {
		sortCandidates = sortCandidates[:cfg.MaxSortCandidates]
	}

	best := Result{PredictedCost: math.Inf(1)}
	// Lines 12-21: try each dimension as the sort dimension.
	for _, sortDim := range sortCandidates {
		gridDims := make([]int, 0, len(candidates))
		for _, d := range candidates {
			if d != sortDim {
				gridDims = append(gridDims, d)
			}
		}
		cand, cost := descend(est, m, fqs, gridDims, sortDim, sels, cfg, rng)
		if cost < best.PredictedCost {
			best.PredictedCost = cost
			best.Layout = finalize(cand)
		}
	}
	if math.IsInf(best.PredictedCost, 1) {
		return Result{}, fmt.Errorf("optimizer: search failed to produce a layout")
	}
	return best, nil
}

// descend runs the multi-start gradient descent over column counts for a
// fixed dimension ordering and returns the cheapest candidate.
func descend(est *costmodel.Estimator, m *costmodel.Model, fqs []costmodel.FlatQuery,
	gridDims []int, sortDim int, sels []float64, cfg Config, rng *rand.Rand) (costmodel.Candidate, float64) {

	filtered := make([]bool, len(gridDims))
	anyFiltered := false
	for i, d := range gridDims {
		filtered[i] = sels[d] < 1
		anyFiltered = anyFiltered || filtered[i]
	}
	bestCost := math.Inf(1)
	var bestCand costmodel.Candidate
	for _, budget := range cfg.Restarts {
		cand := costmodel.Candidate{
			GridDims: gridDims,
			Cols:     initialCols(gridDims, filtered, anyFiltered, budget),
			SortDim:  sortDim,
		}
		clampCells(&cand, cfg.MaxTotalCells)
		cost := est.PredictWorkload(m, fqs, cand)
		lr := 0.6
		for step := 0; step < cfg.GDSteps; step++ {
			grad := gradient(est, m, fqs, cand)
			norm := 0.0
			for _, g := range grad {
				norm += g * g
			}
			norm = math.Sqrt(norm)
			if norm < 1e-12 {
				break
			}
			next := cand
			next.Cols = append([]float64(nil), cand.Cols...)
			for i := range next.Cols {
				// Move in log-space so steps are relative.
				next.Cols[i] = math.Exp(math.Log(next.Cols[i]) - lr*grad[i]/norm)
				if next.Cols[i] < 1 {
					next.Cols[i] = 1
				}
			}
			clampCells(&next, cfg.MaxTotalCells)
			nextCost := est.PredictWorkload(m, fqs, next)
			if nextCost < cost {
				cand, cost = next, nextCost
			} else {
				lr *= 0.5
				if lr < 0.02 {
					break
				}
			}
		}
		if cost < bestCost {
			bestCost, bestCand = cost, cand
		}
		_ = rng
	}
	return bestCand, bestCost
}

// gradient computes the numeric gradient of the predicted cost with respect
// to log(cols).
func gradient(est *costmodel.Estimator, m *costmodel.Model, fqs []costmodel.FlatQuery, cand costmodel.Candidate) []float64 {
	const h = 0.25
	grad := make([]float64, len(cand.Cols))
	for i := range cand.Cols {
		up := cand
		up.Cols = append([]float64(nil), cand.Cols...)
		up.Cols[i] = math.Exp(math.Log(up.Cols[i]) + h)
		down := cand
		down.Cols = append([]float64(nil), cand.Cols...)
		down.Cols[i] = math.Max(1, math.Exp(math.Log(down.Cols[i])-h))
		cu := est.PredictWorkload(m, fqs, up)
		cd := est.PredictWorkload(m, fqs, down)
		grad[i] = (cu - cd) / (2 * h)
	}
	return grad
}

// initialCols spreads the cell budget evenly (in log space) over the
// filtered grid dimensions; never-filtered dimensions start at one column.
func initialCols(gridDims []int, filtered []bool, anyFiltered bool, budget float64) []float64 {
	cols := make([]float64, len(gridDims))
	nf := 0
	for _, f := range filtered {
		if f {
			nf++
		}
	}
	for i := range cols {
		cols[i] = 1
		if filtered[i] && anyFiltered {
			cols[i] = math.Max(1, math.Pow(budget, 1/float64(nf)))
		} else if !anyFiltered {
			cols[i] = math.Max(1, math.Pow(budget, 1/float64(len(cols))))
		}
	}
	return cols
}

// clampCells rescales columns uniformly when the total exceeds the cap.
func clampCells(cand *costmodel.Candidate, maxCells float64) {
	total := cand.NumCells()
	if total <= maxCells {
		return
	}
	shrink := math.Pow(total/maxCells, 1/float64(len(cand.Cols)))
	for i := range cand.Cols {
		cand.Cols[i] = math.Max(1, cand.Cols[i]/shrink)
	}
}

// finalize rounds a candidate into a concrete layout, dropping grid
// dimensions that ended at a single column (they carry no pruning power).
func finalize(cand costmodel.Candidate) core.Layout {
	l := core.Layout{SortDim: cand.SortDim, Flatten: true}
	for i, d := range cand.GridDims {
		c := int(cand.Cols[i] + 0.5)
		if c <= 1 {
			continue
		}
		l.GridDims = append(l.GridDims, d)
		l.GridCols = append(l.GridCols, c)
	}
	return l
}

func sampleQueries(queries []query.Query, k int, rng *rand.Rand) []query.Query {
	if len(queries) <= k {
		return queries
	}
	idx := rng.Perm(len(queries))[:k]
	sort.Ints(idx)
	out := make([]query.Query, k)
	for i, j := range idx {
		out[i] = queries[j]
	}
	return out
}

func orderBySelectivity(sels []float64) []int {
	dims := make([]int, len(sels))
	for i := range dims {
		dims[i] = i
	}
	sort.SliceStable(dims, func(a, b int) bool { return sels[dims[a]] < sels[dims[b]] })
	return dims
}

// SimpleGridLayout builds the Fig. 11 "Simple Grid" ablation baseline: all d
// dimensions form the grid (no sort dimension, no flattening), with column
// counts proportional to each dimension's selectivity share of a fixed cell
// budget.
func SimpleGridLayout(tbl *colstore.Table, queries []query.Query, targetCells float64, seed int64) core.Layout {
	est := costmodel.NewEstimator(tbl, 2000, seed)
	fqs := make([]costmodel.FlatQuery, len(queries))
	for i, q := range queries {
		fqs[i] = est.Flatten(q)
	}
	sels := est.DimSelectivities(fqs)
	dims := orderBySelectivity(sels)
	l := core.Layout{SortDim: -1, Flatten: false}
	// Selectivity share: more selective dimensions earn more columns.
	inv := make([]float64, 0, len(dims))
	var total float64
	for _, d := range dims {
		w := 1 / math.Max(sels[d], 1e-4)
		inv = append(inv, w)
		total += math.Log1p(w)
	}
	logT := math.Log(math.Max(targetCells, 1))
	for i, d := range dims {
		share := math.Log1p(inv[i]) / total
		c := int(math.Exp(logT*share) + 0.5)
		if c < 1 {
			c = 1
		}
		l.GridDims = append(l.GridDims, d)
		l.GridCols = append(l.GridCols, c)
	}
	return l
}

// AblationVariant derives the Fig. 11 intermediate layouts from a learned
// layout: "+Sort Dim" moves the learned sort dimension back into effect on a
// simple grid; "+Flattening" additionally flattens; "+Learning" is the
// learned layout itself.
func AblationVariant(learned core.Layout, flatten, sortDim bool) core.Layout {
	v := learned
	v.Flatten = flatten
	if !sortDim {
		// Fold the sort dimension into the grid with a modest column
		// count so the variant still indexes it.
		if v.SortDim >= 0 {
			v.GridDims = append(append([]int(nil), v.GridDims...), v.SortDim)
			v.GridCols = append(append([]int(nil), v.GridCols...), 8)
			v.SortDim = -1
		}
	}
	return v
}
