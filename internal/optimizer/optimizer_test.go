package optimizer

import (
	"testing"

	"flood/internal/core"
	"flood/internal/costmodel"
	"flood/internal/dataset"
	"flood/internal/query"
	"flood/internal/workload"
)

func testModel(t *testing.T, ds *dataset.Dataset, queries []query.Query) *costmodel.Model {
	t.Helper()
	m, err := costmodel.Calibrate(ds.Table, queries[:min(len(queries), 25)], costmodel.CalibrationConfig{NumLayouts: 4, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestFindOptimalLayoutProducesValidLayout(t *testing.T) {
	ds := dataset.TPCH(20000, 52)
	queries := workload.Standard(ds, 40, 53)
	m := testModel(t, ds, queries)
	res, err := FindOptimalLayout(ds.Table, queries, m, Config{Seed: 54, GDSteps: 8, QuerySampleSize: 20, DataSampleSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Layout.Validate(ds.Table.NumCols()); err != nil {
		t.Fatalf("invalid layout: %v", err)
	}
	if res.PredictedCost <= 0 {
		t.Fatalf("predicted cost %f", res.PredictedCost)
	}
	// The layout must be buildable and correct.
	idx, err := core.Build(ds.Table, res.Layout, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries[:10] {
		agg := query.NewCount()
		idx.Execute(q, agg)
		var want int64
		point := make([]int64, ds.Table.NumCols())
		for i := 0; i < ds.Table.NumRows(); i++ {
			for d := range ds.Cols {
				point[d] = ds.Cols[d][i]
			}
			if q.Matches(point) {
				want++
			}
		}
		if agg.Result() != want {
			t.Fatalf("learned layout wrong answer: %d vs %d", agg.Result(), want)
		}
	}
}

func TestLearnedLayoutBeatsNaive(t *testing.T) {
	// The learned layout should outperform an arbitrary untuned layout on
	// the training workload, measured by actual scan overhead.
	ds := dataset.OSM(30000, 55)
	queries := workload.Standard(ds, 50, 56)
	m := testModel(t, ds, queries)
	res, err := FindOptimalLayout(ds.Table, queries, m, Config{Seed: 57, GDSteps: 10, QuerySampleSize: 25, DataSampleSize: 2000})
	if err != nil {
		t.Fatal(err)
	}
	learned, err := core.Build(ds.Table, res.Layout, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Naive: grid over the two least useful dims.
	naive, err := core.Build(ds.Table, core.Layout{GridDims: []int{0}, GridCols: []int{4}, SortDim: 5, Flatten: false}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var learnedScan, naiveScan int64
	for _, q := range queries {
		agg := query.NewCount()
		st := learned.Execute(q, agg)
		learnedScan += st.Scanned
		agg.Reset()
		st = naive.Execute(q, agg)
		naiveScan += st.Scanned
	}
	if learnedScan >= naiveScan {
		t.Fatalf("learned layout scanned %d >= naive %d", learnedScan, naiveScan)
	}
}

func TestFindOptimalLayoutValidation(t *testing.T) {
	ds := dataset.Sales(1000, 58)
	if _, err := FindOptimalLayout(ds.Table, nil, &costmodel.Model{}, Config{}); err == nil {
		t.Fatal("want error for empty workload")
	}
	queries := workload.Standard(ds, 5, 59)
	if _, err := FindOptimalLayout(ds.Table, queries, nil, Config{}); err == nil {
		t.Fatal("want error for nil model")
	}
}

func TestSimpleGridLayout(t *testing.T) {
	ds := dataset.TPCH(10000, 60)
	queries := workload.Standard(ds, 30, 61)
	l := SimpleGridLayout(ds.Table, queries, 4096, 62)
	if err := l.Validate(ds.Table.NumCols()); err != nil {
		t.Fatal(err)
	}
	if l.SortDim != -1 || l.Flatten {
		t.Fatal("simple grid must have no sort dim and no flattening")
	}
	if len(l.GridDims) != ds.Table.NumCols() {
		t.Fatalf("simple grid should use all dims, got %d", len(l.GridDims))
	}
	if l.NumCells() < 16 {
		t.Fatalf("simple grid too coarse: %d cells", l.NumCells())
	}
	idx, err := core.Build(ds.Table, l, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	agg := query.NewCount()
	idx.Execute(query.NewQuery(7), agg)
	if agg.Result() != 10000 {
		t.Fatalf("simple grid full count = %d", agg.Result())
	}
}

func TestAblationVariants(t *testing.T) {
	learned := core.Layout{GridDims: []int{5, 1}, GridCols: []int{10, 4}, SortDim: 6, Flatten: true}
	noSort := AblationVariant(learned, false, false)
	if noSort.SortDim != -1 || len(noSort.GridDims) != 3 || noSort.Flatten {
		t.Fatalf("no-sort variant wrong: %+v", noSort)
	}
	flatSort := AblationVariant(learned, true, true)
	if flatSort.SortDim != 6 || !flatSort.Flatten {
		t.Fatalf("flatten variant wrong: %+v", flatSort)
	}
	if err := noSort.Validate(7); err != nil {
		t.Fatal(err)
	}
}
