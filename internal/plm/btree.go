package plm

// stree is a static, cache-optimized B-tree over a sorted key array: the
// sorted keys form the bottom level and each higher level keeps every
// fanout-th key of the level below. Searches touch one small contiguous key
// block per level, avoiding the pointer chasing of a node-allocated B-tree
// (§5.2: "forms a cache-optimized B-Tree over those values").
type stree struct {
	levels [][]int64
}

// fanout is the number of keys summarized by one upper-level key. 16 keys =
// two cache lines per probe.
const fanout = 16

func newSTree(sorted []int64) *stree {
	t := &stree{levels: [][]int64{sorted}}
	for len(t.levels[len(t.levels)-1]) > fanout {
		prev := t.levels[len(t.levels)-1]
		next := make([]int64, 0, (len(prev)+fanout-1)/fanout)
		for i := 0; i < len(prev); i += fanout {
			next = append(next, prev[i])
		}
		t.levels = append(t.levels, next)
	}
	return t
}

// floor returns the index (in the bottom level) of the greatest key <= v, or
// -1 when v precedes every key.
func (t *stree) floor(v int64) int {
	top := t.levels[len(t.levels)-1]
	pos := scanFloor(top, 0, len(top), v)
	if pos < 0 {
		return -1
	}
	for lvl := len(t.levels) - 2; lvl >= 0; lvl-- {
		keys := t.levels[lvl]
		lo := pos * fanout
		hi := lo + fanout
		if hi > len(keys) {
			hi = len(keys)
		}
		pos = scanFloor(keys, lo, hi, v)
	}
	return pos
}

// scanFloor finds the greatest index i in [lo, hi) with keys[i] <= v, or -1.
// Blocks are at most fanout wide so a linear scan stays in cache.
func scanFloor(keys []int64, lo, hi int, v int64) int {
	res := -1
	for i := lo; i < hi; i++ {
		if keys[i] <= v {
			res = i
		} else {
			break
		}
	}
	return res
}

func (t *stree) sizeBytes() int64 {
	var s int64
	for _, l := range t.levels {
		s += int64(len(l)) * 8
	}
	return s
}
