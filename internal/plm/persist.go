package plm

import (
	"fmt"

	"flood/internal/wire"
)

// Encode serializes the model; the lookup tree is rebuilt on decode.
func (m *Model) Encode(w *wire.Writer) {
	w.Tag("PLM1")
	w.Int(m.n)
	w.Int(len(m.segs))
	for _, s := range m.segs {
		w.I64(s.Key)
		w.F64(s.Base)
		w.F64(s.Slope)
	}
}

// DecodeModel reads a model written by Encode.
func DecodeModel(r *wire.Reader) (*Model, error) {
	r.Expect("PLM1")
	m := &Model{n: r.Int()}
	cnt := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("plm: decoding model header: %w", err)
	}
	if m.n < 0 || cnt < 0 {
		return nil, fmt.Errorf("plm: model declares n=%d, %d segments", m.n, cnt)
	}
	// Grow incrementally: a corrupt segment count must run out of input,
	// not allocate the declared size up front.
	m.segs = make([]Segment, 0, min(cnt, 4096))
	keys := make([]int64, 0, min(cnt, 4096))
	for i := 0; i < cnt; i++ {
		var s Segment
		s.Key = r.I64()
		s.Base = r.F64()
		s.Slope = r.F64()
		if r.Err() != nil {
			break
		}
		m.segs = append(m.segs, s)
		keys = append(keys, s.Key)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("plm: decoding segments: %w", err)
	}
	m.tree = newSTree(keys)
	return m, nil
}
