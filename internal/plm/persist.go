package plm

import (
	"fmt"

	"flood/internal/wire"
)

// Encode serializes the model; the lookup tree is rebuilt on decode.
func (m *Model) Encode(w *wire.Writer) {
	w.Tag("PLM1")
	w.Int(m.n)
	w.Int(len(m.segs))
	for _, s := range m.segs {
		w.I64(s.Key)
		w.F64(s.Base)
		w.F64(s.Slope)
	}
}

// DecodeModel reads a model written by Encode.
func DecodeModel(r *wire.Reader) (*Model, error) {
	r.Expect("PLM1")
	m := &Model{n: r.Int()}
	cnt := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("plm: decoding model header: %w", err)
	}
	m.segs = make([]Segment, cnt)
	keys := make([]int64, cnt)
	for i := range m.segs {
		m.segs[i].Key = r.I64()
		m.segs[i].Base = r.F64()
		m.segs[i].Slope = r.F64()
		keys[i] = m.segs[i].Key
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("plm: decoding segments: %w", err)
	}
	m.tree = newSTree(keys)
	return m, nil
}
