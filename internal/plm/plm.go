// Package plm implements the piecewise linear CDF models Flood builds per
// grid cell to refine physical index ranges along the sort dimension (§5.2).
//
// A PLM partitions a sorted value list V into slices, each modeled by one
// linear segment. Every segment lower-bounds the true first-occurrence index
// (P(v) <= D(v)) and keeps the average absolute error within a budget δ,
// which the lower-bound property reduces to mean(D(v) - P(v)) <= δ. Slices
// are found with a single greedy pass; segment lookup goes through a static
// cache-optimized B-tree over slice boundary keys. Mispredictions are
// corrected by exponential search, so lookups are exact.
package plm

import "sort"

// DefaultDelta is the average-error budget found to balance size and speed
// in §7.8 (Fig. 17b).
const DefaultDelta = 50

// Segment models one slice: for keys >= Key (up to the next segment's Key),
// P(v) = Base + Slope*(v - Key).
type Segment struct {
	Key   int64
	Base  float64
	Slope float64
}

// Model is a trained piecewise linear model over a sorted array.
type Model struct {
	segs []Segment
	tree *stree
	n    int
}

// Train fits a PLM with average error budget delta over sorted (ascending).
// The greedy pass anchors each segment at a slice's first (value, index)
// pair and keeps the minimum chord slope seen so far, which preserves the
// lower-bound property; when the slice's average error would exceed delta, a
// new slice begins.
func Train(sorted []int64, delta float64) *Model {
	m := &Model{n: len(sorted)}
	if len(sorted) == 0 {
		m.tree = newSTree(nil)
		return m
	}
	if delta < 0 {
		delta = 0
	}
	var (
		anchorV   int64   // v0: first value in current slice
		anchorD   float64 // D(v0)
		slope     float64 // min chord slope so far
		cntM      float64 // Σ multiplicities (elements) in slice, excluding anchor run
		sumMD     float64 // Σ m_i * D(v_i)
		sumMV     float64 // Σ m_i * v_i
		haveSlope bool
	)
	startSeg := func(v int64, d int) {
		anchorV, anchorD = v, float64(d)
		slope, cntM, sumMD, sumMV = 0, 0, 0, 0
		haveSlope = false
	}
	flush := func() {
		m.segs = append(m.segs, Segment{Key: anchorV, Base: anchorD, Slope: slope})
	}
	startSeg(sorted[0], 0)
	i := 0
	for i < m.n {
		v := sorted[i]
		first := i
		for i < m.n && sorted[i] == v {
			i++
		}
		mult := float64(i - first)
		if v == anchorV {
			continue // anchor run: P(v0) = D(v0), error 0
		}
		chord := (float64(first) - anchorD) / float64(v-anchorV)
		newSlope := slope
		if !haveSlope || chord < slope {
			newSlope = chord
		}
		// Average error over slice elements if we admit this value:
		// mean over non-anchor elements of D(v_i) - P(v_i).
		nm := cntM + mult
		nsumMD := sumMD + mult*float64(first)
		nsumMV := sumMV + mult*float64(v)
		errSum := nsumMD - nm*anchorD - newSlope*(nsumMV-nm*float64(anchorV))
		if errSum/nm > delta {
			flush()
			startSeg(v, first)
			continue
		}
		slope, cntM, sumMD, sumMV = newSlope, nm, nsumMD, nsumMV
		haveSlope = true
	}
	flush()
	keys := make([]int64, len(m.segs))
	for i, s := range m.segs {
		keys[i] = s.Key
	}
	m.tree = newSTree(keys)
	return m
}

// Predict returns P(v), a lower bound on the index of the first occurrence
// of v for values present in the training data, clamped to [0, n].
func (m *Model) Predict(v int64) int {
	if m.n == 0 {
		return 0
	}
	si := m.tree.floor(v)
	if si < 0 {
		return 0
	}
	s := m.segs[si]
	p := int(s.Base + s.Slope*float64(v-s.Key))
	if p < 0 {
		return 0
	}
	if p > m.n {
		return m.n
	}
	return p
}

// LowerBound returns the index of the first element of sorted >= v, using the
// model's prediction rectified by exponential search. sorted must be the
// training array.
func (m *Model) LowerBound(sorted []int64, v int64) int {
	return m.LowerBoundAt(len(sorted), func(i int) int64 { return sorted[i] }, v)
}

// LowerBoundAt is LowerBound over values reached through an accessor (e.g. a
// compressed column) instead of a materialized slice. at(i) must return the
// i-th value of the sorted training array.
func (m *Model) LowerBoundAt(n int, at func(int) int64, v int64) int {
	if n == 0 {
		return 0
	}
	pos := m.Predict(v)
	if pos > n {
		pos = n
	}
	// Bracket the answer: grow left while at(lo-1) >= v, right while
	// at(hi) < v.
	lo, hi := pos, pos
	width := 1
	for lo > 0 && at(lo-1) >= v {
		lo -= width
		width <<= 1
		if lo < 0 {
			lo = 0
		}
	}
	width = 1
	for hi < n && at(hi) < v {
		hi += width
		width <<= 1
		if hi > n {
			hi = n
		}
	}
	if hi == lo {
		return lo
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return at(lo+i) >= v })
}

// NumSegments returns the number of linear segments.
func (m *Model) NumSegments() int { return len(m.segs) }

// SizeBytes reports the model footprint: segments plus the lookup tree.
func (m *Model) SizeBytes() int64 {
	return int64(len(m.segs))*24 + m.tree.sizeBytes() + 8
}
