package plm

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortedValues(n int, seed int64, dup bool) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		if dup {
			span := int64(n / 8)
			if span < 1 {
				span = 1
			}
			vals[i] = rng.Int63n(span)
		} else {
			vals[i] = rng.Int63n(1 << 40)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func firstOccurrence(sorted []int64, v int64) int {
	return sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })
}

func TestPLMLowerBoundProperty(t *testing.T) {
	// P(v) <= D(v) for every value present in the training data (§5.2).
	for _, dup := range []bool{false, true} {
		vals := sortedValues(5000, 11, dup)
		for _, delta := range []float64{0, 5, 50, 500} {
			m := Train(vals, delta)
			for _, v := range vals {
				if p, d := m.Predict(v), firstOccurrence(vals, v); p > d {
					t.Fatalf("dup=%v delta=%v: P(%d)=%d > D=%d", dup, delta, v, p, d)
				}
			}
		}
	}
}

func TestPLMAverageErrorBound(t *testing.T) {
	vals := sortedValues(10000, 13, true)
	for _, delta := range []float64{1, 10, 50, 200} {
		m := Train(vals, delta)
		var errSum float64
		for _, v := range vals {
			errSum += float64(firstOccurrence(vals, v) - m.Predict(v))
		}
		avg := errSum / float64(len(vals))
		// The greedy pass bounds the average error per slice; the global
		// average is a weighted mean of per-slice averages, so it obeys
		// the same bound.
		if avg > delta+1 { // +1 for integer truncation of predictions
			t.Fatalf("delta=%v: global average error %.2f exceeds budget", delta, avg)
		}
	}
}

func TestPLMDeltaControlsSegments(t *testing.T) {
	vals := sortedValues(20000, 17, false)
	prev := -1
	for _, delta := range []float64{1, 10, 100, 1000} {
		n := Train(vals, delta).NumSegments()
		if prev >= 0 && n > prev {
			t.Fatalf("segments should not grow with delta: delta=%v has %d > %d", delta, n, prev)
		}
		prev = n
	}
	if Train(vals, 0).NumSegments() < Train(vals, 1000).NumSegments() {
		t.Fatal("delta=0 should need at least as many segments as delta=1000")
	}
}

func TestPLMLowerBoundExactness(t *testing.T) {
	for _, n := range []int{1, 2, 100, 5000} {
		vals := sortedValues(n, int64(n), true)
		m := Train(vals, DefaultDelta)
		probes := append([]int64{vals[0] - 1, vals[n-1] + 1}, vals...)
		rng := rand.New(rand.NewSource(19))
		for i := 0; i < 300; i++ {
			probes = append(probes, rng.Int63n(int64(n))+rng.Int63n(5)-2)
		}
		for _, v := range probes {
			want := firstOccurrence(vals, v)
			if got := m.LowerBound(vals, v); got != want {
				t.Fatalf("n=%d: LowerBound(%d) = %d, want %d", n, v, got, want)
			}
		}
	}
}

func TestPLMLowerBoundQuick(t *testing.T) {
	f := func(raw []int64, probes []int64) bool {
		sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
		m := Train(raw, 4)
		for _, v := range probes {
			if m.LowerBound(raw, v) != firstOccurrence(raw, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestPLMEmptyAndConstant(t *testing.T) {
	m := Train(nil, 50)
	if m.Predict(7) != 0 || m.LowerBound(nil, 7) != 0 {
		t.Fatal("empty model should predict 0")
	}
	vals := []int64{9, 9, 9, 9, 9}
	m = Train(vals, 50)
	if m.LowerBound(vals, 9) != 0 || m.LowerBound(vals, 10) != 5 || m.LowerBound(vals, 8) != 0 {
		t.Fatal("constant column lower bounds wrong")
	}
	if m.NumSegments() != 1 {
		t.Fatalf("constant column should need 1 segment, got %d", m.NumSegments())
	}
}

func TestPLMSizeReflectsSegments(t *testing.T) {
	vals := sortedValues(20000, 23, false)
	small := Train(vals, 1000)
	big := Train(vals, 1)
	if big.NumSegments() <= small.NumSegments() {
		t.Skip("distribution too easy to differentiate sizes")
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("SizeBytes should grow with segments: %d <= %d", big.SizeBytes(), small.SizeBytes())
	}
}

func TestSTreeFloor(t *testing.T) {
	keys := []int64{10, 20, 30, 40, 50}
	tr := newSTree(keys)
	cases := []struct {
		v    int64
		want int
	}{{5, -1}, {10, 0}, {15, 0}, {20, 1}, {49, 3}, {50, 4}, {1000, 4}}
	for _, c := range cases {
		if got := tr.floor(c.v); got != c.want {
			t.Fatalf("floor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSTreeFloorLarge(t *testing.T) {
	keys := make([]int64, 10000)
	for i := range keys {
		keys[i] = int64(i * 3)
	}
	tr := newSTree(keys)
	if len(tr.levels) < 3 {
		t.Fatalf("expected multi-level tree, got %d levels", len(tr.levels))
	}
	for _, v := range []int64{-1, 0, 1, 2, 3, 14999, 29997, 29998, 50000} {
		want := sort.Search(len(keys), func(i int) bool { return keys[i] > v }) - 1
		if got := tr.floor(v); got != want {
			t.Fatalf("floor(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestSTreeEmpty(t *testing.T) {
	tr := newSTree(nil)
	if tr.floor(5) != -1 {
		t.Fatal("empty tree floor should be -1")
	}
}

func BenchmarkPLMLowerBound(b *testing.B) {
	vals := sortedValues(1<<17, 29, false)
	m := Train(vals, DefaultDelta)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += m.LowerBound(vals, vals[i%len(vals)])
	}
	_ = sink
}

func BenchmarkBinarySearchLowerBound(b *testing.B) {
	vals := sortedValues(1<<17, 29, false)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		v := vals[i%len(vals)]
		sink += sort.Search(len(vals), func(j int) bool { return vals[j] >= v })
	}
	_ = sink
}
