package query

import "flood/internal/colstore"

// Aggregator accumulates a statistic over the rows an index produces. Exact
// sub-ranges (every row in the range is known to match, §7.1) are delivered
// through AddExactRange so implementations can use cumulative-aggregate
// columns or arithmetic shortcuts instead of touching row data.
type Aggregator interface {
	// Reset clears the accumulator so the aggregator can be reused.
	Reset()
	// Add accumulates one matching row.
	Add(t *colstore.Table, row int)
	// AddExactRange accumulates rows [start, end), all of which match.
	AddExactRange(t *colstore.Table, start, end int)
	// Result returns the accumulated value.
	Result() int64
}

// Count implements SELECT COUNT(*).
type Count struct{ n int64 }

// NewCount returns a COUNT(*) aggregator.
func NewCount() *Count { return &Count{} }

// Reset implements Aggregator.
func (c *Count) Reset() { c.n = 0 }

// Add implements Aggregator.
func (c *Count) Add(*colstore.Table, int) { c.n++ }

// AddExactRange implements Aggregator; exact ranges never touch row data.
func (c *Count) AddExactRange(_ *colstore.Table, start, end int) { c.n += int64(end - start) }

// Result implements Aggregator.
func (c *Count) Result() int64 { return c.n }

// Sum implements SELECT SUM(col). When the table carries a cumulative
// aggregate for the column, exact sub-ranges resolve with two prefix lookups.
type Sum struct {
	col int
	s   int64
}

// NewSum returns a SUM aggregator over column col.
func NewSum(col int) *Sum { return &Sum{col: col} }

// Col returns the aggregated column index.
func (s *Sum) Col() int { return s.col }

// Reset implements Aggregator.
func (s *Sum) Reset() { s.s = 0 }

// Add implements Aggregator.
func (s *Sum) Add(t *colstore.Table, row int) { s.s += t.Get(s.col, row) }

// AddExactRange implements Aggregator.
func (s *Sum) AddExactRange(t *colstore.Table, start, end int) {
	if t.HasAggregate(s.col) {
		s.s += t.PrefixSum(s.col, start, end)
		return
	}
	col := t.Column(s.col)
	var buf [colstore.BlockSize]int64
	for b := start / colstore.BlockSize; b*colstore.BlockSize < end; b++ {
		cnt := col.DecodeBlock(b, buf[:])
		lo := b * colstore.BlockSize
		i0, i1 := 0, cnt
		if lo < start {
			i0 = start - lo
		}
		if lo+cnt > end {
			i1 = end - lo
		}
		for i := i0; i < i1; i++ {
			s.s += buf[i]
		}
	}
}

// Result implements Aggregator.
func (s *Sum) Result() int64 { return s.s }

// Min implements SELECT MIN(col) (returns PosInf when nothing matched).
type Min struct {
	col int
	m   int64
	any bool
}

// NewMin returns a MIN aggregator over column col.
func NewMin(col int) *Min { return &Min{col: col, m: PosInf} }

// Reset implements Aggregator.
func (m *Min) Reset() { m.m, m.any = PosInf, false }

// Add implements Aggregator.
func (m *Min) Add(t *colstore.Table, row int) {
	if v := t.Get(m.col, row); v < m.m {
		m.m = v
	}
	m.any = true
}

// AddExactRange implements Aggregator. Blocks wholly inside the range
// resolve from the column's zone map (per-block min) without decoding;
// boundary blocks decode once and scan the decoded values — no per-row Get.
func (m *Min) AddExactRange(t *colstore.Table, start, end int) {
	if start >= end {
		return
	}
	m.any = true
	m.m = rangeExtremum(t.Column(m.col), start, end, m.m, false)
}

// Result implements Aggregator.
func (m *Min) Result() int64 { return m.m }

// rangeExtremum folds rows [start, end) of col into acc with min (wantMax
// false) or max (wantMax true) — the block walk shared by Min and Max.
// Blocks wholly inside the range resolve from the zone map without
// decoding; boundary blocks decode once, with the direction branch hoisted
// out of the value loop.
func rangeExtremum(col *colstore.Column, start, end int, acc int64, wantMax bool) int64 {
	var buf [colstore.BlockSize]int64
	for b := start / colstore.BlockSize; b*colstore.BlockSize < end; b++ {
		lo := b * colstore.BlockSize
		if lo >= start && lo+colstore.BlockSize <= end {
			bmin, bmax := col.BlockBounds(b)
			if wantMax {
				if bmax > acc {
					acc = bmax
				}
			} else if bmin < acc {
				acc = bmin
			}
			continue
		}
		cnt := col.DecodeBlock(b, buf[:])
		i0, i1 := 0, cnt
		if lo < start {
			i0 = start - lo
		}
		if lo+cnt > end {
			i1 = end - lo
		}
		if wantMax {
			for _, v := range buf[i0:i1] {
				if v > acc {
					acc = v
				}
			}
		} else {
			for _, v := range buf[i0:i1] {
				if v < acc {
					acc = v
				}
			}
		}
	}
	return acc
}

// Max implements SELECT MAX(col) (returns NegInf when nothing matched).
type Max struct {
	col int
	m   int64
	any bool
}

// NewMax returns a MAX aggregator over column col.
func NewMax(col int) *Max { return &Max{col: col, m: NegInf} }

// Reset implements Aggregator.
func (m *Max) Reset() { m.m, m.any = NegInf, false }

// Add implements Aggregator.
func (m *Max) Add(t *colstore.Table, row int) {
	if v := t.Get(m.col, row); v > m.m {
		m.m = v
	}
	m.any = true
}

// AddExactRange implements Aggregator. Blocks wholly inside the range
// resolve from the column's zone map (per-block max) without decoding;
// boundary blocks decode once and scan the decoded values — no per-row Get.
func (m *Max) AddExactRange(t *colstore.Table, start, end int) {
	if start >= end {
		return
	}
	m.any = true
	m.m = rangeExtremum(t.Column(m.col), start, end, m.m, true)
}

// Result implements Aggregator.
func (m *Max) Result() int64 { return m.m }
