package query

import (
	"math/rand"
	"testing"

	"flood/internal/colstore"
)

// aggTable builds a single-column table with mixed magnitudes so block
// widths vary and the zone-map fast paths get exercised.
func aggTable(t *testing.T, n int, seed int64) (*colstore.Table, []int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		switch i % 3 {
		case 0:
			vals[i] = rng.Int63n(100)
		case 1:
			vals[i] = -rng.Int63n(1 << 30)
		default:
			vals[i] = rng.Int63n(1 << 50)
		}
	}
	return colstore.MustNewTable([]string{"v"}, [][]int64{vals}), vals
}

// TestMinMaxExactRangeMatchesPerRow pins the block-decoded AddExactRange
// rewrite: for arbitrary (start, end) — block-aligned and not — the result
// must equal the naive per-row fold.
func TestMinMaxExactRangeMatchesPerRow(t *testing.T) {
	tbl, vals := aggTable(t, 10*colstore.BlockSize+37, 91)
	rng := rand.New(rand.NewSource(92))
	spans := [][2]int{
		{0, len(vals)},                               // whole column incl. partial tail block
		{0, colstore.BlockSize},                      // exactly one block
		{colstore.BlockSize, 2 * colstore.BlockSize}, // aligned interior block
		{17, 23},                        // inside one block
		{100, 3*colstore.BlockSize + 5}, // ragged both ends
		{len(vals) - 5, len(vals)},      // tail of partial block
		{4 * colstore.BlockSize, 4 * colstore.BlockSize}, // empty
	}
	for i := 0; i < 40; i++ {
		a, b := rng.Intn(len(vals)+1), rng.Intn(len(vals)+1)
		if a > b {
			a, b = b, a
		}
		spans = append(spans, [2]int{a, b})
	}
	for _, sp := range spans {
		start, end := sp[0], sp[1]
		wantMin, wantMax := int64(PosInf), int64(NegInf)
		for i := start; i < end; i++ {
			if vals[i] < wantMin {
				wantMin = vals[i]
			}
			if vals[i] > wantMax {
				wantMax = vals[i]
			}
		}
		mn, mx := NewMin(0), NewMax(0)
		mn.AddExactRange(tbl, start, end)
		mx.AddExactRange(tbl, start, end)
		if mn.Result() != wantMin {
			t.Errorf("Min[%d, %d) = %d, want %d", start, end, mn.Result(), wantMin)
		}
		if mx.Result() != wantMax {
			t.Errorf("Max[%d, %d) = %d, want %d", start, end, mx.Result(), wantMax)
		}
	}
}

func TestMaxViaScannerMatchesBrute(t *testing.T) {
	tbl, vals := aggTable(t, 5000, 93)
	sc := NewScanner(tbl)
	q := NewQuery(1).WithRange(0, 0, 1<<40)
	agg := NewMax(0)
	sc.ScanRange(q, []int{0}, 0, len(vals), agg)
	want := int64(NegInf)
	for _, v := range vals {
		if v >= 0 && v <= 1<<40 && v > want {
			want = v
		}
	}
	if agg.Result() != want {
		t.Fatalf("Max via scan = %d, want %d", agg.Result(), want)
	}
}

func TestMinMaxMergeAndEmptyRanges(t *testing.T) {
	tbl, _ := aggTable(t, 100, 94)
	// Empty exact range leaves the aggregator untouched.
	mx := NewMax(0)
	mx.AddExactRange(tbl, 7, 7)
	if mx.Result() != NegInf {
		t.Fatal("empty range must not touch Max")
	}
	// Merging an empty clone is a no-op; merging a lower partial keeps max.
	a, b := NewMax(0), NewMax(0)
	a.Add(tbl, 0)
	a.Merge(b)
	want := a.Result()
	b.Add(tbl, 1)
	if b.Result() > want {
		want = b.Result()
	}
	a.Merge(b)
	if a.Result() != want {
		t.Fatalf("merged max = %d, want %d", a.Result(), want)
	}
	// Min: merging a non-empty into an empty adopts it.
	m1, m2 := NewMin(0), NewMin(0)
	m2.Add(tbl, 3)
	m1.Merge(m2)
	if m1.Result() != m2.Result() {
		t.Fatalf("empty.Merge(partial) = %d, want %d", m1.Result(), m2.Result())
	}
	// Reset restores the identity element.
	mx.Add(tbl, 0)
	mx.Reset()
	if mx.Result() != NegInf {
		t.Fatal("Reset must restore NegInf")
	}
}
