package query

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"flood/internal/colstore"
)

// Sentinel errors reported by context-aware execution. Both mark a *partial*
// result: the Stats returned alongside them describe the work actually done
// (rows seen before the stop), and any aggregator or row collector holds the
// rows delivered up to that point.
var (
	// ErrCanceled is returned when execution stopped because the caller's
	// context was canceled or a deadline passed. Inspect ctx.Err() to
	// distinguish cancellation from deadline expiry.
	ErrCanceled = errors.New("query: execution canceled")
	// ErrLimitReached is returned when execution stopped because the row
	// limit was satisfied — for LIMIT queries this is the expected outcome,
	// and the Select paths translate it to success.
	ErrLimitReached = errors.New("query: row limit reached")
)

// Control states: running until a stop condition fires, then latched.
const (
	ctlRunning int32 = iota
	ctlCanceled
	ctlLimit
)

// Control is the per-query execution controller threaded through the scan
// path. It carries the caller's cancellation signal (a context Done channel
// and/or an absolute deadline) and the remaining LIMIT budget, shared by
// every worker of one execution: the sequential scan kernel polls it at
// block-group boundaries, the morsel engine at morsel-claim boundaries, and
// the scanner's delivery loop draws match budget from it so a satisfied
// LIMIT stops the scan instead of materializing the full result.
//
// A Control is safe for concurrent use (all mutable state is atomic) and all
// methods are nil-receiver safe, so unconditioned paths can pass a nil
// Control at zero cost. Obtain one with GetControl and return it with
// Release once no scanner references it.
type Control struct {
	done     <-chan struct{}
	deadline time.Time
	limited  bool
	limit    atomic.Int64
	state    atomic.Int32
}

var controlPool = sync.Pool{New: func() any { return new(Control) }}

// GetControl returns a pooled Control watching done (a context's Done
// channel; nil means not cancelable), enforcing limit matched rows
// (limit <= 0 means unlimited), and expiring at deadline (zero means none).
// When no feature is active it returns nil — the universal "no control"
// value every consumer accepts — so unconditioned executions pay nothing.
func GetControl(done <-chan struct{}, limit int, deadline time.Time) *Control {
	if done == nil && limit <= 0 && deadline.IsZero() {
		return nil
	}
	c := controlPool.Get().(*Control)
	c.done = done
	c.deadline = deadline
	c.limited = limit > 0
	c.limit.Store(int64(limit))
	c.state.Store(ctlRunning)
	return c
}

// Release returns the control to the pool. The caller must ensure no scanner
// or worker still references it (execution has fully returned).
func (c *Control) Release() {
	if c == nil {
		return
	}
	c.done = nil
	controlPool.Put(c)
}

// Stopped reports whether a stop condition (cancellation, deadline, or an
// exhausted limit) has latched. It is one atomic load — cheap enough for
// per-block and per-morsel polling.
func (c *Control) Stopped() bool {
	return c != nil && c.state.Load() != ctlRunning
}

// Check polls the cancellation sources — the done channel and the deadline —
// latching the canceled state when either has fired, and reports whether the
// control is stopped. It is the periodic poll the scan kernel runs every few
// blocks; limit exhaustion latches through Take instead.
func (c *Control) Check() bool {
	if c == nil {
		return false
	}
	if c.state.Load() != ctlRunning {
		return true
	}
	if c.done != nil {
		select {
		case <-c.done:
			c.state.CompareAndSwap(ctlRunning, ctlCanceled)
			return true
		default:
		}
	}
	if !c.deadline.IsZero() && !time.Now().Before(c.deadline) {
		c.state.CompareAndSwap(ctlRunning, ctlCanceled)
		return true
	}
	return false
}

// Take draws up to n rows from the remaining limit budget and returns how
// many the caller may deliver. Unlimited controls (and nil) grant everything.
// The draw is one atomic add, so concurrent workers never over-deliver in
// aggregate; the call that exhausts the budget latches the limit-reached
// state, stopping the scan.
func (c *Control) Take(n int) int {
	if c == nil || !c.limited {
		return n
	}
	if n <= 0 {
		return 0
	}
	rem := c.limit.Add(-int64(n))
	if rem > 0 {
		return n
	}
	c.state.CompareAndSwap(ctlRunning, ctlLimit)
	granted := n + int(rem)
	if granted < 0 {
		granted = 0
	}
	return granted
}

// Finish runs one final cancellation poll and returns Err. Entry points
// call it when execution returns so the outcome is deterministic: a context
// canceled (or deadline passed) at any point before the call returns
// reports ErrCanceled even when every scan happened to complete between
// polls — without it, a cancel landing in the last few blocks of a short
// scan would be reported or swallowed depending on poll timing.
func (c *Control) Finish() error {
	c.Check()
	return c.Err()
}

// Err maps the latched stop condition to its sentinel: ErrCanceled,
// ErrLimitReached, or nil while running. Partial Stats accompany either
// sentinel.
func (c *Control) Err() error {
	if c == nil {
		return nil
	}
	switch c.state.Load() {
	case ctlCanceled:
		return ErrCanceled
	case ctlLimit:
		return ErrLimitReached
	default:
		return nil
	}
}

// ControlledAggregator wraps agg so every delivery draws from ctl's budget
// and stops once the control latches: the enforcement fallback for indexes
// that implement Index but not ControlIndex, where the scan itself cannot
// be stopped but the "at most Limit rows delivered" contract must still
// hold. With a nil control it returns agg unchanged.
func ControlledAggregator(ctl *Control, agg Aggregator) Aggregator {
	if ctl == nil {
		return agg
	}
	return &controlledAggregator{agg: agg, ctl: ctl}
}

type controlledAggregator struct {
	agg Aggregator
	ctl *Control
}

// Reset implements Aggregator.
func (c *controlledAggregator) Reset() { c.agg.Reset() }

// Add implements Aggregator, delivering only while the budget grants.
func (c *controlledAggregator) Add(t *colstore.Table, row int) {
	if c.ctl.Stopped() || c.ctl.Take(1) == 0 {
		return
	}
	c.agg.Add(t, row)
}

// AddExactRange implements Aggregator, truncating the run to the budget.
func (c *controlledAggregator) AddExactRange(t *colstore.Table, start, end int) {
	if c.ctl.Stopped() {
		return
	}
	if n := c.ctl.Take(end - start); n > 0 {
		c.agg.AddExactRange(t, start, start+n)
	}
}

// Result implements Aggregator.
func (c *controlledAggregator) Result() int64 { return c.agg.Result() }

// RunContext bridges a Control-threaded execute body to the ExecuteContext
// contract: it rejects an already-expired context up front (no scanning),
// derives a Control from the context (nil when the context can never fire,
// so the plain path runs untouched), invokes exec, and translates the
// control's latched state into the sentinel error. It is the shared
// implementation behind every baseline's ExecuteContext.
func RunContext(ctx context.Context, q Query, agg Aggregator, exec func(*Control, Query, Aggregator) Stats) (Stats, error) {
	if ctx.Err() != nil {
		return Stats{}, ErrCanceled
	}
	ctl := GetControl(ctx.Done(), 0, time.Time{})
	st := exec(ctl, q, agg)
	err := ctl.Finish()
	ctl.Release()
	return st, err
}
