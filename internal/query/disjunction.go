package query

import (
	"runtime"
	"sync"
)

// Disjunction support (§3): "Typical selections generally also include
// disjunctions (i.e. OR clauses). However, these can be decomposed into
// multiple queries over disjoint attribute ranges." This file implements
// that decomposition: an OR of conjunctive hyper-rectangles becomes a list
// of pairwise-disjoint rectangles covering the same point set, so running
// each against an index and summing aggregates never double-counts.

// intersects reports whether two queries' hyper-rectangles overlap.
func intersects(a, b Query) bool {
	for d := range a.Ranges {
		ra, rb := a.Ranges[d], b.Ranges[d]
		if ra.Max < rb.Min || rb.Max < ra.Min {
			return false
		}
	}
	return true
}

// subtractAppend appends a \ b to dst as disjoint rectangles. a and b must
// have the same dimensionality; clone supplies fresh Range storage (heap or
// pooled arena). a's ranges are clobbered in the process, so callers pass
// pieces they own.
func subtractAppend(dst []Query, a, b Query, clone func(Query) Query) []Query {
	if a.Empty() {
		return dst
	}
	if !intersects(a, b) {
		return append(dst, a)
	}
	rem := a
	for d := range a.Ranges {
		ra, rb := rem.Ranges[d], b.Ranges[d]
		// Piece below b along dim d.
		if ra.Min < rb.Min {
			piece := clone(rem)
			piece.Ranges[d] = normRange(ra.Min, rb.Min-1)
			dst = append(dst, piece)
			ra.Min = rb.Min
		}
		// Piece above b along dim d.
		if ra.Max > rb.Max {
			piece := clone(rem)
			piece.Ranges[d] = normRange(rb.Max+1, ra.Max)
			dst = append(dst, piece)
			ra.Max = rb.Max
		}
		rem.Ranges[d] = normRange(ra.Min, ra.Max)
	}
	// rem is now fully inside b: dropped.
	return dst
}

func cloneQuery(q Query) Query {
	return Query{Ranges: append([]Range(nil), q.Ranges...)}
}

// normRange builds a range, clearing the Present flag when it spans the
// whole domain (so unfiltered dimensions stay cheap to execute).
func normRange(min, max int64) Range {
	return Range{Min: min, Max: max, Present: min != NegInf || max != PosInf}
}

// Disjoint decomposes a union of hyper-rectangles into pairwise-disjoint
// rectangles with the same union. Empty inputs are dropped. The output size
// is bounded by O(len(queries)^2 * d) rectangles in the worst case; typical
// OR clauses over distinct value ranges produce no growth at all.
func Disjoint(queries []Query) []Query {
	var s disjunctionScratch
	return disjointWith(&s, queries, cloneQuery)
}

// disjointWith is the decomposition shared by the public Disjoint and the
// pooled ExecuteDisjunction path; clone supplies Range storage for every
// emitted piece and s supplies the working rectangle lists.
func disjointWith(s *disjunctionScratch, queries []Query, clone func(Query) Query) []Query {
	out := s.pieces[:0]
	pending, next := s.pending[:0], s.next[:0]
	for _, q := range queries {
		if q.Empty() {
			continue
		}
		pending = append(pending[:0], clone(q))
		for _, existing := range out {
			next = next[:0]
			for _, p := range pending {
				next = subtractAppend(next, p, existing, clone)
			}
			pending, next = next, pending
			if len(pending) == 0 {
				break
			}
		}
		out = append(out, pending...)
	}
	s.pieces, s.pending, s.next = out, pending, next
	return out
}

// disjunctionScratch pools the per-piece allocations of disjunction
// execution: the rectangle lists built during decomposition, the Range arena
// backing each decomposed piece, and the per-piece aggregator clones. One
// scratch serves one ExecuteDisjunction call at a time; pieces handed to the
// index alias the arena, which is only recycled after the call completes.
type disjunctionScratch struct {
	pieces  []Query
	pending []Query
	next    []Query
	arena   []Range
	clones  []Aggregator
}

var disjunctionPool = sync.Pool{New: func() any { return new(disjunctionScratch) }}

// clone copies q's ranges into the arena. When the arena runs out a fresh,
// larger one is started; slices already handed out keep the old backing
// array alive, so they stay valid.
func (s *disjunctionScratch) clone(q Query) Query {
	n := len(q.Ranges)
	if len(s.arena)+n > cap(s.arena) {
		c := 2 * cap(s.arena)
		if c < 16*n {
			c = 16 * n
		}
		s.arena = make([]Range, 0, c)
	}
	lo := len(s.arena)
	s.arena = append(s.arena, q.Ranges...)
	return Query{Ranges: s.arena[lo : lo+n : lo+n]}
}

func (s *disjunctionScratch) release() {
	for i := range s.clones {
		s.clones[i] = nil // don't pin aggregators across uses
	}
	s.clones = s.clones[:0]
	s.pieces = s.pieces[:0]
	s.pending = s.pending[:0]
	s.next = s.next[:0]
	s.arena = s.arena[:0]
	disjunctionPool.Put(s)
}

// ExecuteDisjunction evaluates an OR of conjunctive queries against idx,
// accumulating every matching row into agg exactly once, and returns the
// combined execution stats.
//
// When the index supports batched execution (BatchIndex), the aggregator is
// Mergeable, and there are enough disjoint pieces to occupy the cores, the
// pieces run as one batch over the index's shared worker pool — each piece
// into its own aggregator clone, merged afterwards. With fewer pieces than
// cores, each piece instead runs through the index's ordinary Execute, whose
// intra-query (morsel) parallelism uses the hardware better than a short
// batch would. Decomposition scratch and the per-piece rectangles come from
// a pool, so repeated disjunctions allocate only the aggregator clones.
func ExecuteDisjunction(idx Index, queries []Query, agg Aggregator) Stats {
	s := disjunctionPool.Get().(*disjunctionScratch)
	defer s.release()
	pieces := disjointWith(s, queries, s.clone)
	var total Stats
	bi, batched := idx.(BatchIndex)
	m, mergeable := agg.(Mergeable)
	if batched && mergeable && len(pieces) >= runtime.GOMAXPROCS(0) && len(pieces) > 1 {
		clones := s.clones[:0]
		for range pieces {
			clones = append(clones, m.CloneEmpty())
		}
		s.clones = clones
		for _, st := range bi.ExecuteBatch(pieces, clones) {
			total.Add(st)
		}
		for _, c := range clones {
			m.Merge(c.(Mergeable))
		}
		return total
	}
	for _, q := range pieces {
		total.Add(idx.Execute(q, agg))
	}
	return total
}
