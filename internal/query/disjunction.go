package query

// Disjunction support (§3): "Typical selections generally also include
// disjunctions (i.e. OR clauses). However, these can be decomposed into
// multiple queries over disjoint attribute ranges." This file implements
// that decomposition: an OR of conjunctive hyper-rectangles becomes a list
// of pairwise-disjoint rectangles covering the same point set, so running
// each against an index and summing aggregates never double-counts.

// intersects reports whether two queries' hyper-rectangles overlap.
func intersects(a, b Query) bool {
	for d := range a.Ranges {
		ra, rb := a.Ranges[d], b.Ranges[d]
		if ra.Max < rb.Min || rb.Max < ra.Min {
			return false
		}
	}
	return true
}

// subtract returns a \ b as a list of disjoint rectangles. a and b must
// have the same dimensionality.
func subtract(a, b Query) []Query {
	if a.Empty() {
		return nil
	}
	if !intersects(a, b) {
		return []Query{a}
	}
	var out []Query
	rem := a
	for d := range a.Ranges {
		ra, rb := rem.Ranges[d], b.Ranges[d]
		// Piece below b along dim d.
		if ra.Min < rb.Min {
			piece := cloneQuery(rem)
			piece.Ranges[d] = normRange(ra.Min, rb.Min-1)
			out = append(out, piece)
			ra.Min = rb.Min
		}
		// Piece above b along dim d.
		if ra.Max > rb.Max {
			piece := cloneQuery(rem)
			piece.Ranges[d] = normRange(rb.Max+1, ra.Max)
			out = append(out, piece)
			ra.Max = rb.Max
		}
		rem.Ranges[d] = normRange(ra.Min, ra.Max)
	}
	// rem is now fully inside b: dropped.
	return out
}

func cloneQuery(q Query) Query {
	return Query{Ranges: append([]Range(nil), q.Ranges...)}
}

// normRange builds a range, clearing the Present flag when it spans the
// whole domain (so unfiltered dimensions stay cheap to execute).
func normRange(min, max int64) Range {
	return Range{Min: min, Max: max, Present: min != NegInf || max != PosInf}
}

// Disjoint decomposes a union of hyper-rectangles into pairwise-disjoint
// rectangles with the same union. Empty inputs are dropped. The output size
// is bounded by O(len(queries)^2 * d) rectangles in the worst case; typical
// OR clauses over distinct value ranges produce no growth at all.
func Disjoint(queries []Query) []Query {
	var out []Query
	for _, q := range queries {
		if q.Empty() {
			continue
		}
		pending := []Query{cloneQuery(q)}
		for _, existing := range out {
			var next []Query
			for _, p := range pending {
				next = append(next, subtract(p, existing)...)
			}
			pending = next
			if len(pending) == 0 {
				break
			}
		}
		out = append(out, pending...)
	}
	return out
}

// ExecuteDisjunction evaluates an OR of conjunctive queries against idx,
// accumulating every matching row into agg exactly once, and returns the
// combined execution stats.
func ExecuteDisjunction(idx Index, queries []Query, agg Aggregator) Stats {
	var total Stats
	for _, q := range Disjoint(queries) {
		total.Add(idx.Execute(q, agg))
	}
	return total
}
