package query

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"flood/internal/colstore"
)

func inUnion(queries []Query, p []int64) bool {
	for _, q := range queries {
		if q.Matches(p) {
			return true
		}
	}
	return false
}

func randomRect(rng *rand.Rand, d int, span int64) Query {
	q := NewQuery(d)
	for dim := 0; dim < d; dim++ {
		if rng.Intn(3) == 0 {
			continue // leave unfiltered
		}
		lo := rng.Int63n(span)
		hi := lo + rng.Int63n(span/4+1)
		q = q.WithRange(dim, lo, hi)
	}
	return q
}

func TestDisjointCoversUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		d := 1 + rng.Intn(3)
		var rects []Query
		for i := 0; i < 1+rng.Intn(4); i++ {
			rects = append(rects, randomRect(rng, d, 40))
		}
		disjoint := Disjoint(rects)
		// Probe lattice points: membership in the union must equal
		// membership in exactly zero-or-one disjoint piece.
		p := make([]int64, d)
		var probe func(dim int)
		probe = func(dim int) {
			if dim == d {
				hits := 0
				for _, q := range disjoint {
					if q.Matches(p) {
						hits++
					}
				}
				if inUnion(rects, p) {
					if hits != 1 {
						t.Fatalf("point %v covered %d times, want 1 (rects %v)", p, hits, rects)
					}
				} else if hits != 0 {
					t.Fatalf("point %v outside union but covered %d times", p, hits)
				}
				return
			}
			for v := int64(0); v < 50; v += 3 {
				p[dim] = v
				probe(dim + 1)
			}
		}
		probe(0)
	}
}

func TestDisjointDropsEmptyInputs(t *testing.T) {
	q := NewQuery(2).WithRange(0, 10, 5) // inverted
	if got := Disjoint([]Query{q}); len(got) != 0 {
		t.Fatalf("empty rect should be dropped, got %d", len(got))
	}
	if got := Disjoint(nil); got != nil {
		t.Fatal("nil input should produce nil")
	}
}

func TestDisjointIdenticalRects(t *testing.T) {
	q := NewQuery(2).WithRange(0, 1, 10).WithRange(1, 1, 10)
	got := Disjoint([]Query{q, q, q})
	if len(got) != 1 {
		t.Fatalf("identical rects should collapse to 1, got %d", len(got))
	}
}

func TestDisjointNonOverlapping(t *testing.T) {
	a := NewQuery(1).WithRange(0, 0, 10)
	b := NewQuery(1).WithRange(0, 20, 30)
	got := Disjoint([]Query{a, b})
	if len(got) != 2 {
		t.Fatalf("non-overlapping rects should stay as 2, got %d", len(got))
	}
}

func TestSubtractExtremes(t *testing.T) {
	// Subtraction near the int64 domain edges must not overflow.
	a := NewQuery(1) // full domain
	b := NewQuery(1).WithRange(0, 0, 100)
	pieces := subtractAppend(nil, cloneQuery(a), b, cloneQuery)
	p := []int64{NegInf}
	if !inUnion(pieces, p) {
		t.Fatal("NegInf should survive subtraction of [0, 100]")
	}
	p[0] = PosInf
	if !inUnion(pieces, p) {
		t.Fatal("PosInf should survive subtraction of [0, 100]")
	}
	p[0] = 50
	if inUnion(pieces, p) {
		t.Fatal("50 should be removed")
	}
}

func TestExecuteDisjunctionNoDoubleCount(t *testing.T) {
	tbl, data := buildTestTable(t, 2000, 63)
	idx := &scanIndex{t: tbl}
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 30; trial++ {
		var rects []Query
		for i := 0; i < 1+rng.Intn(3); i++ {
			rects = append(rects, randomRect(rng, 3, 100))
		}
		agg := NewCount()
		ExecuteDisjunction(idx, rects, agg)
		var want int64
		p := make([]int64, 3)
		for r := 0; r < 2000; r++ {
			for c := range data {
				p[c] = data[c][r]
			}
			if inUnion(rects, p) {
				want++
			}
		}
		if agg.Result() != want {
			t.Fatalf("disjunction count = %d, want %d", agg.Result(), want)
		}
	}
}

// scanIndex is a minimal Index for disjunction tests.
type scanIndex struct{ t *colstore.Table }

func (s *scanIndex) Name() string     { return "scan" }
func (s *scanIndex) SizeBytes() int64 { return 0 }
func (s *scanIndex) Execute(q Query, agg Aggregator) Stats {
	return s.ExecuteControl(nil, q, agg)
}

func (s *scanIndex) ExecuteContext(ctx context.Context, q Query, agg Aggregator) (Stats, error) {
	return RunContext(ctx, q, agg, s.ExecuteControl)
}

func (s *scanIndex) ExecuteControl(ctl *Control, q Query, agg Aggregator) Stats {
	sc := NewScanner(s.t)
	sc.SetControl(ctl)
	scanned, matched := sc.ScanRange(q, q.FilteredDims(), 0, s.t.NumRows(), agg)
	return Stats{Scanned: scanned, Matched: matched}
}

// batchScanIndex adds a BatchIndex path to scanIndex so the batched
// disjunction route is testable without a real Flood index.
type batchScanIndex struct {
	scanIndex
	batchCalls int
}

func (s *batchScanIndex) ExecuteBatch(queries []Query, aggs []Aggregator) []Stats {
	s.batchCalls++
	stats := make([]Stats, len(queries))
	for i, q := range queries {
		stats[i] = s.Execute(q, aggs[i])
	}
	return stats
}

func (s *batchScanIndex) ExecuteBatchContext(ctx context.Context, queries []Query, aggs []Aggregator) ([]Stats, error) {
	if ctx.Err() != nil {
		return make([]Stats, len(queries)), ErrCanceled
	}
	return s.ExecuteBatch(queries, aggs), nil
}

// TestExecuteDisjunctionBatchedRoute checks that a BatchIndex + Mergeable
// aggregator takes the batched path and still counts every row exactly
// once, with stats matching the sequential route. Repeated calls reuse the
// pooled decomposition scratch.
func TestExecuteDisjunctionBatchedRoute(t *testing.T) {
	// The batch route engages when pieces >= GOMAXPROCS; pin it so the
	// assertion below holds on any host.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	tbl, data := buildTestTable(t, 2000, 65)
	plain := &scanIndex{t: tbl}
	batched := &batchScanIndex{scanIndex: scanIndex{t: tbl}}
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 30; trial++ {
		var rects []Query
		for i := 0; i < 2+rng.Intn(3); i++ {
			rects = append(rects, randomRect(rng, 3, 100))
		}
		seq, par := NewCount(), NewCount()
		seqSt := ExecuteDisjunction(plain, rects, seq)
		parSt := ExecuteDisjunction(batched, rects, par)
		if par.Result() != seq.Result() {
			t.Fatalf("trial %d: batched disjunction %d != sequential %d", trial, par.Result(), seq.Result())
		}
		if parSt.Scanned != seqSt.Scanned || parSt.Matched != seqSt.Matched {
			t.Fatalf("trial %d: batched stats (%d, %d) != sequential (%d, %d)",
				trial, parSt.Scanned, parSt.Matched, seqSt.Scanned, seqSt.Matched)
		}
		var want int64
		p := make([]int64, 3)
		for r := 0; r < 2000; r++ {
			for c := range data {
				p[c] = data[c][r]
			}
			if inUnion(rects, p) {
				want++
			}
		}
		if par.Result() != want {
			t.Fatalf("trial %d: batched disjunction %d != brute %d", trial, par.Result(), want)
		}
	}
	if batched.batchCalls == 0 {
		t.Fatal("no disjunction took the batched route")
	}
	// A non-mergeable aggregator must fall back to sequential execution.
	calls := batched.batchCalls
	rects := []Query{randomRect(rng, 3, 100), randomRect(rng, 3, 100)}
	ExecuteDisjunction(batched, rects, nonMergeableCount{NewCount()})
	if batched.batchCalls != calls {
		t.Fatal("non-mergeable aggregator must not take the batched route")
	}
}

// nonMergeableCount hides Count's Mergeable methods.
type nonMergeableCount struct{ Aggregator }

func TestDisjunctionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var rects []Query
		for i := 0; i < 1+rng.Intn(4); i++ {
			rects = append(rects, randomRect(rng, 2, 30))
		}
		disjoint := Disjoint(rects)
		// Pairwise disjointness by rejection sampling.
		p := make([]int64, 2)
		for probe := 0; probe < 200; probe++ {
			p[0], p[1] = rng.Int63n(40), rng.Int63n(40)
			hits := 0
			for _, q := range disjoint {
				if q.Matches(p) {
					hits++
				}
			}
			if hits > 1 {
				return false
			}
			if inUnion(rects, p) != (hits == 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
