//go:build !floodscalar

package query

// defaultScalarKernel selects the kernel a freshly Reset scanner uses. The
// default build runs the word-packed bitmap kernel; building with
// -tags floodscalar pins every scanner to the portable selection-vector
// fallback (SetScalarKernel overrides per scanner either way).
const defaultScalarKernel = false
