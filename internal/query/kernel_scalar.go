//go:build floodscalar

package query

// defaultScalarKernel selects the kernel a freshly Reset scanner uses. This
// build was tagged floodscalar, so every scanner defaults to the portable
// selection-vector kernel (SetScalarKernel overrides per scanner).
const defaultScalarKernel = true
