package query

// Mergeable is implemented by aggregators whose partial results can be
// combined, enabling the parallel scan execution sketched in §8
// ("Concurrency and parallelism"): each worker accumulates into its own
// clone and the clones merge at the end.
type Mergeable interface {
	Aggregator
	// CloneEmpty returns a fresh aggregator of the same kind and target.
	CloneEmpty() Mergeable
	// Merge folds another clone's partial result into this one.
	Merge(other Mergeable)
}

// CloneEmpty implements Mergeable.
func (c *Count) CloneEmpty() Mergeable { return NewCount() }

// Merge implements Mergeable.
func (c *Count) Merge(other Mergeable) { c.n += other.(*Count).n }

// CloneEmpty implements Mergeable.
func (s *Sum) CloneEmpty() Mergeable { return NewSum(s.col) }

// Merge implements Mergeable.
func (s *Sum) Merge(other Mergeable) { s.s += other.(*Sum).s }

// CloneEmpty implements Mergeable.
func (m *Min) CloneEmpty() Mergeable { return NewMin(m.col) }

// Merge implements Mergeable.
func (m *Min) Merge(other Mergeable) {
	o := other.(*Min)
	if o.any && o.m < m.m {
		m.m = o.m
	}
	m.any = m.any || o.any
}

// CloneEmpty implements Mergeable.
func (m *Max) CloneEmpty() Mergeable { return NewMax(m.col) }

// Merge implements Mergeable.
func (m *Max) Merge(other Mergeable) {
	o := other.(*Max)
	if o.any && o.m > m.m {
		m.m = o.m
	}
	m.any = m.any || o.any
}
