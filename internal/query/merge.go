package query

import "sync"

// Mergeable is implemented by aggregators whose partial results can be
// combined, enabling the parallel scan execution sketched in §8
// ("Concurrency and parallelism"): each worker accumulates into its own
// clone and the clones merge at the end.
type Mergeable interface {
	Aggregator
	// CloneEmpty returns a fresh aggregator of the same kind and target.
	CloneEmpty() Mergeable
	// Merge folds another clone's partial result into this one.
	Merge(other Mergeable)
}

// CloneEmpty implements Mergeable.
func (c *Count) CloneEmpty() Mergeable { return NewCount() }

// Merge implements Mergeable.
func (c *Count) Merge(other Mergeable) { c.n += other.(*Count).n }

// CloneEmpty implements Mergeable.
func (s *Sum) CloneEmpty() Mergeable { return NewSum(s.col) }

// Merge implements Mergeable.
func (s *Sum) Merge(other Mergeable) { s.s += other.(*Sum).s }

// CloneEmpty implements Mergeable.
func (m *Min) CloneEmpty() Mergeable { return NewMin(m.col) }

// Merge implements Mergeable.
func (m *Min) Merge(other Mergeable) {
	o := other.(*Min)
	if o.any && o.m < m.m {
		m.m = o.m
	}
	m.any = m.any || o.any
}

// CloneEmpty implements Mergeable.
func (m *Max) CloneEmpty() Mergeable { return NewMax(m.col) }

// Merge implements Mergeable.
func (m *Max) Merge(other Mergeable) {
	o := other.(*Max)
	if o.any && o.m > m.m {
		m.m = o.m
	}
	m.any = m.any || o.any
}

// Worker-clone recycling. The morsel engine needs one clone per worker per
// query; pooling them is what keeps the parallel execute path at zero
// steady-state allocations. A pooled clone may only stand in for a fresh
// CloneEmpty of a prototype when it is configured identically — for the
// built-in aggregators that is a type check plus the target column — so
// unknown (user-supplied) Mergeable implementations always clone fresh.

var clonePool = sync.Pool{}

// GetClone returns a reset pooled clone compatible with proto, or nil when
// none is available (the caller falls back to proto.CloneEmpty). Only
// built-in aggregator clones are ever handed out; compatibility checks read
// proto's immutable configuration, so GetClone is safe while other workers
// merge into proto.
func GetClone(proto Mergeable) Mergeable {
	v := clonePool.Get()
	if v == nil {
		return nil
	}
	c := v.(Mergeable)
	if !compatibleClone(c, proto) {
		return nil
	}
	c.Reset()
	return c
}

// PutClone recycles a worker clone after its partial result has been merged.
// The caller must not use c afterwards.
func PutClone(c Mergeable) { clonePool.Put(c) }

// compatibleClone reports whether cached can serve as a fresh clone of
// proto: same concrete type and, for column-targeted aggregators, the same
// column.
func compatibleClone(cached, proto Mergeable) bool {
	switch p := proto.(type) {
	case *Count:
		_, ok := cached.(*Count)
		return ok
	case *Sum:
		c, ok := cached.(*Sum)
		return ok && c.col == p.col
	case *Min:
		c, ok := cached.(*Min)
		return ok && c.col == p.col
	case *Max:
		c, ok := cached.(*Max)
		return ok && c.col == p.col
	case *RowCollector:
		_, ok := cached.(*RowCollector)
		return ok
	default:
		return false
	}
}
