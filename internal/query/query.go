// Package query defines the predicate, aggregation, statistics, and index
// abstractions shared by Flood and every baseline index.
//
// A query is a conjunction of per-dimension ranges (a hyper-rectangle, §3.2).
// Indexes execute a query against their privately ordered copy of the table
// and feed matching rows to an Aggregator. Execution returns Stats that carry
// the instrumentation behind Table 2 of the paper (scan overhead, time per
// scanned point, scan/index/total time).
package query

import "math"

// Unbounded endpoints: a dimension not present in a query filter spans
// [NegInf, PosInf] (§3.2.1).
const (
	NegInf = math.MinInt64
	PosInf = math.MaxInt64
)

// Range is an inclusive filter interval over one dimension.
type Range struct {
	Min, Max int64
	Present  bool // whether the query filters this dimension at all
}

// Contains reports whether v lies inside the range.
func (r Range) Contains(v int64) bool { return v >= r.Min && v <= r.Max }

// Query is a conjunction of ranges, one per table dimension. Missing filters
// are represented by Present=false (equivalent to [NegInf, PosInf]).
type Query struct {
	Ranges []Range
}

// NewQuery returns a query over nDims dimensions with no filters.
func NewQuery(nDims int) Query {
	r := make([]Range, nDims)
	for i := range r {
		r[i] = Range{Min: NegInf, Max: PosInf}
	}
	return Query{Ranges: r}
}

// WithRange returns a copy of q with an added range filter on dim.
func (q Query) WithRange(dim int, min, max int64) Query {
	nr := append([]Range(nil), q.Ranges...)
	nr[dim] = Range{Min: min, Max: max, Present: true}
	return Query{Ranges: nr}
}

// WithEquals returns a copy of q with an equality filter on dim, rewritten as
// the degenerate range [v, v] (§3).
func (q Query) WithEquals(dim int, v int64) Query { return q.WithRange(dim, v, v) }

// FilteredDims returns the indexes of dimensions with a filter present.
func (q Query) FilteredDims() []int {
	var dims []int
	for i, r := range q.Ranges {
		if r.Present {
			dims = append(dims, i)
		}
	}
	return dims
}

// NumFiltered returns the number of filtered dimensions.
func (q Query) NumFiltered() int {
	n := 0
	for _, r := range q.Ranges {
		if r.Present {
			n++
		}
	}
	return n
}

// Matches reports whether a point (one value per dimension) satisfies every
// filter in the query.
func (q Query) Matches(point []int64) bool {
	for i, r := range q.Ranges {
		if r.Present && (point[i] < r.Min || point[i] > r.Max) {
			return false
		}
	}
	return true
}

// Empty reports whether any filter is inverted (Min > Max), making the query
// unsatisfiable.
func (q Query) Empty() bool {
	for _, r := range q.Ranges {
		if r.Present && r.Min > r.Max {
			return true
		}
	}
	return false
}
