package query

import (
	"math/rand"
	"testing"

	"flood/internal/colstore"
)

func TestQueryConstruction(t *testing.T) {
	q := NewQuery(3).WithRange(0, 10, 20).WithEquals(2, 5)
	if q.NumFiltered() != 2 {
		t.Fatalf("NumFiltered = %d, want 2", q.NumFiltered())
	}
	dims := q.FilteredDims()
	if len(dims) != 2 || dims[0] != 0 || dims[1] != 2 {
		t.Fatalf("FilteredDims = %v", dims)
	}
	if !q.Matches([]int64{15, 999, 5}) {
		t.Fatal("point should match")
	}
	if q.Matches([]int64{15, 999, 6}) {
		t.Fatal("point should not match (equality dim)")
	}
	if q.Matches([]int64{9, 0, 5}) {
		t.Fatal("point should not match (range dim)")
	}
}

func TestQueryEmpty(t *testing.T) {
	q := NewQuery(2).WithRange(0, 10, 5)
	if !q.Empty() {
		t.Fatal("inverted range should be empty")
	}
	if NewQuery(2).WithRange(0, 5, 10).Empty() {
		t.Fatal("valid range should not be empty")
	}
}

func TestQueryUnfilteredMatchesEverything(t *testing.T) {
	q := NewQuery(2)
	if !q.Matches([]int64{NegInf, PosInf}) {
		t.Fatal("unfiltered query must match extreme points")
	}
	if q.NumFiltered() != 0 || q.FilteredDims() != nil {
		t.Fatal("unfiltered query should report no filtered dims")
	}
}

func buildTestTable(t testing.TB, n int, seed int64) (*colstore.Table, [][]int64) {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]int64, 3)
	for c := range data {
		data[c] = make([]int64, n)
		for i := range data[c] {
			data[c][i] = rng.Int63n(100)
		}
	}
	tbl, err := colstore.NewTable([]string{"x", "y", "z"}, data)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, data
}

func TestScannerMatchesBruteForce(t *testing.T) {
	tbl, data := buildTestTable(t, 1000, 11)
	q := NewQuery(3).WithRange(0, 20, 60).WithRange(2, 10, 80)
	sc := NewScanner(tbl)
	agg := NewCount()
	scanned, matched := sc.ScanRange(q, q.FilteredDims(), 0, 1000, agg)
	var want int64
	for i := 0; i < 1000; i++ {
		if q.Matches([]int64{data[0][i], data[1][i], data[2][i]}) {
			want++
		}
	}
	if matched != want || agg.Result() != want {
		t.Fatalf("matched = %d, agg = %d, want %d", matched, agg.Result(), want)
	}
	if scanned != 1000 {
		t.Fatalf("scanned = %d, want 1000", scanned)
	}
}

func TestScannerSubRanges(t *testing.T) {
	tbl, data := buildTestTable(t, 700, 13)
	q := NewQuery(3).WithRange(1, 30, 70)
	sc := NewScanner(tbl)
	agg := NewSum(0)
	var scanned, matched int64
	for _, rg := range [][2]int{{0, 100}, {100, 355}, {355, 700}} {
		s, m := sc.ScanRange(q, q.FilteredDims(), rg[0], rg[1], agg)
		scanned += s
		matched += m
	}
	var want int64
	var wantMatched int64
	for i := 0; i < 700; i++ {
		if v := data[1][i]; v >= 30 && v <= 70 {
			want += data[0][i]
			wantMatched++
		}
	}
	if agg.Result() != want || matched != wantMatched || scanned != 700 {
		t.Fatalf("sum=%d want %d, matched=%d want %d, scanned=%d",
			agg.Result(), want, matched, wantMatched, scanned)
	}
}

func TestScannerExactRangeUsesPrefix(t *testing.T) {
	tbl, data := buildTestTable(t, 512, 17)
	tbl.EnableAggregate(1)
	sc := NewScanner(tbl)
	agg := NewSum(1)
	scanned, matched := sc.ScanExactRange(100, 300, agg)
	var want int64
	for i := 100; i < 300; i++ {
		want += data[1][i]
	}
	if agg.Result() != want || scanned != 200 || matched != 200 {
		t.Fatalf("exact range sum = %d (want %d), scanned=%d matched=%d", agg.Result(), want, scanned, matched)
	}
}

func TestScannerEmptyFilterIsExact(t *testing.T) {
	tbl, _ := buildTestTable(t, 256, 19)
	sc := NewScanner(tbl)
	agg := NewCount()
	scanned, matched := sc.ScanRange(NewQuery(3), nil, 0, 256, agg)
	if scanned != 256 || matched != 256 || agg.Result() != 256 {
		t.Fatalf("unfiltered scan: scanned=%d matched=%d agg=%d", scanned, matched, agg.Result())
	}
}

func TestScannerDegenerateRanges(t *testing.T) {
	tbl, _ := buildTestTable(t, 100, 23)
	sc := NewScanner(tbl)
	agg := NewCount()
	if s, m := sc.ScanRange(NewQuery(3), nil, 50, 50, agg); s != 0 || m != 0 {
		t.Fatalf("empty range scanned %d matched %d", s, m)
	}
	if s, m := sc.ScanExactRange(70, 60, agg); s != 0 || m != 0 {
		t.Fatalf("inverted exact range scanned %d matched %d", s, m)
	}
}

func TestAggregators(t *testing.T) {
	tbl, data := buildTestTable(t, 300, 29)
	cnt := NewCount()
	sum := NewSum(2)
	mn := NewMin(2)
	for i := 0; i < 300; i++ {
		cnt.Add(tbl, i)
		sum.Add(tbl, i)
		mn.Add(tbl, i)
	}
	var wantSum, wantMin int64
	wantMin = PosInf
	for _, v := range data[2] {
		wantSum += v
		if v < wantMin {
			wantMin = v
		}
	}
	if cnt.Result() != 300 || sum.Result() != wantSum || mn.Result() != wantMin {
		t.Fatalf("aggregators wrong: %d %d %d", cnt.Result(), sum.Result(), mn.Result())
	}
	cnt.Reset()
	sum.Reset()
	mn.Reset()
	if cnt.Result() != 0 || sum.Result() != 0 || mn.Result() != PosInf {
		t.Fatal("Reset did not clear accumulators")
	}
}

func TestSumExactRangeWithoutPrefix(t *testing.T) {
	tbl, data := buildTestTable(t, 400, 31)
	sum := NewSum(0)
	sum.AddExactRange(tbl, 37, 391)
	var want int64
	for i := 37; i < 391; i++ {
		want += data[0][i]
	}
	if sum.Result() != want {
		t.Fatalf("AddExactRange without prefix = %d, want %d", sum.Result(), want)
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{Scanned: 1000, Matched: 100}
	if s.ScanOverhead() != 10 {
		t.Fatalf("ScanOverhead = %f", s.ScanOverhead())
	}
	if (Stats{}).ScanOverhead() != 0 {
		t.Fatal("empty stats overhead should be 0")
	}
	var agg Stats
	agg.Add(s)
	agg.Add(s)
	if agg.Scanned != 2000 || agg.Matched != 200 {
		t.Fatal("Stats.Add broken")
	}
}

func TestScannerInvertedRangeMatchesNothing(t *testing.T) {
	// Direct ScanRange callers may pass inverted ranges; the branchless
	// unsigned compares must not wrap them into match-everything.
	tbl, _ := buildTestTable(t, 300, 37)
	q := NewQuery(3).WithRange(1, 60, 40)
	sc := NewScanner(tbl)
	agg := NewCount()
	if s, m := sc.ScanRange(q, q.FilteredDims(), 0, 300, agg); s != 0 || m != 0 || agg.Result() != 0 {
		t.Fatalf("inverted range: scanned=%d matched=%d agg=%d, want all 0", s, m, agg.Result())
	}
}
