package query

import (
	"slices"

	"flood/internal/colstore"
)

// RowSource is one physical table whose rows a RowCollector observed, mapped
// into the collector's global row-id space: the source's physical row r has
// global id Start+r. Composite indexes (delta buffers, adaptive insert logs)
// feed a query from several tables; sources record, in arrival order, how
// those tables tile the id space so collected ids can be resolved back to
// (table, physical row) for decoding.
type RowSource struct {
	// Table is the scanned table.
	Table *colstore.Table
	// Start is the global row id of the table's physical row 0.
	Start int64
	// End is Start + Table.NumRows(); sources cover disjoint [Start, End).
	End int64
}

// RowCollector is an Aggregator that materializes the matching rows
// themselves instead of folding them into a statistic: it gathers physical
// row ids, riding the same selection-vector scan kernel and run-length
// AddExactRange delivery as every other aggregator, so row retrieval costs
// exactly one id append per matching row on the zero-allocation sequential
// path. It implements Mergeable, so large scans fan out over the morsel
// engine and batched/disjunction execution work unchanged.
//
// Ids are global: the first table scanned occupies [0, NumRows), the next
// (a delta buffer, an insert-log segment) is offset past it, and so on —
// Sources records the tiling. PinSource pre-registers a table so composite
// indexes can guarantee base rows sort before delta rows. A RowCollector is
// reusable via Reset; it is not safe for concurrent use (the morsel engine
// gives each worker its own clone).
type RowCollector struct {
	ids       []int64
	sources   []RowSource
	watermark int64
	curT      *colstore.Table
	curOff    int64
}

// NewRowCollector returns an empty collector.
func NewRowCollector() *RowCollector { return &RowCollector{} }

// Reset implements Aggregator, clearing collected ids and sources while
// retaining capacity.
func (rc *RowCollector) Reset() {
	rc.ids = rc.ids[:0]
	rc.sources = rc.sources[:0]
	rc.watermark = 0
	rc.curT = nil
	rc.curOff = 0
}

// PinSource registers t in the collector's id space before any scan, so its
// rows occupy the next id range even if another table happens to deliver
// first (or t delivers nothing at all). Composite indexes pin the base table
// so base rows always map to ids [0, baseRows).
func (rc *RowCollector) PinSource(t *colstore.Table) { rc.setTable(t) }

// setTable makes t the current source, registering it at the watermark on
// first sight.
func (rc *RowCollector) setTable(t *colstore.Table) {
	for i := range rc.sources {
		if rc.sources[i].Table == t {
			rc.curT, rc.curOff = t, rc.sources[i].Start
			return
		}
	}
	rc.sources = append(rc.sources, RowSource{Table: t, Start: rc.watermark, End: rc.watermark + int64(t.NumRows())})
	rc.curT, rc.curOff = t, rc.watermark
	rc.watermark += int64(t.NumRows())
}

// Add implements Aggregator: record one matching physical row.
func (rc *RowCollector) Add(t *colstore.Table, row int) {
	if t != rc.curT {
		rc.setTable(t)
	}
	rc.ids = append(rc.ids, rc.curOff+int64(row))
}

// AddExactRange implements Aggregator: materialize the run [start, end) of
// physical rows, all known to match, as consecutive ids.
func (rc *RowCollector) AddExactRange(t *colstore.Table, start, end int) {
	if t != rc.curT {
		rc.setTable(t)
	}
	off := rc.curOff
	ids := rc.ids
	for r := start; r < end; r++ {
		ids = append(ids, off+int64(r))
	}
	rc.ids = ids
}

// Result implements Aggregator: the number of collected rows.
func (rc *RowCollector) Result() int64 { return int64(len(rc.ids)) }

// Len returns the number of collected rows.
func (rc *RowCollector) Len() int { return len(rc.ids) }

// IDs exposes the collected global row ids (owned by the collector; valid
// until the next Reset).
func (rc *RowCollector) IDs() []int64 { return rc.ids }

// Truncate keeps only the first n collected ids.
func (rc *RowCollector) Truncate(n int) {
	if n < len(rc.ids) {
		rc.ids = rc.ids[:n]
	}
}

// SkipTo advances the collector's watermark to w, so the next table to
// register (by PinSource or first delivery) starts its id range at w.
// Sharded execution carves the id space into fixed per-shard strides with
// it — shard s's sources tile from s's stride base, making a collected id's
// owning shard recoverable by arithmetic. Ids already collected are
// untouched; w below the current watermark is ignored so the id space stays
// collision-free.
func (rc *RowCollector) SkipTo(w int64) {
	if w > rc.watermark {
		rc.watermark = w
		rc.curT = nil
	}
}

// Sources exposes the observed tables tiling the id space, ordered by Start.
func (rc *RowCollector) Sources() []RowSource { return rc.sources }

// Resolve maps a global id back to its table and physical row. ok is false
// for ids outside every source.
func (rc *RowCollector) Resolve(id int64) (t *colstore.Table, row int, ok bool) {
	for i := range rc.sources {
		if s := &rc.sources[i]; id >= s.Start && id < s.End {
			return s.Table, int(id - s.Start), true
		}
	}
	return nil, 0, false
}

// Sort orders the collected ids ascending, making the result independent of
// parallel merge order: base-table rows come out in physical order, followed
// by each later source in its own physical order.
func (rc *RowCollector) Sort() { slices.Sort(rc.ids) }

// CloneEmpty implements Mergeable.
func (rc *RowCollector) CloneEmpty() Mergeable { return &RowCollector{} }

// Merge implements Mergeable, folding another collector's ids into this one.
// When both collectors observed the same sources in the same order (the
// morsel engine's clones always do — they scan one shared table), ids append
// unchanged; otherwise each id is re-based from the other's source tiling
// into this one's.
func (rc *RowCollector) Merge(other Mergeable) {
	o := other.(*RowCollector)
	if len(o.ids) == 0 {
		return
	}
	if rc.sameSources(o) {
		rc.ids = append(rc.ids, o.ids...)
		return
	}
	// Re-base: ids arrive in per-source runs, so cache the active mapping.
	var delta int64
	lo, hi := int64(1), int64(0) // empty interval forces the first lookup
	for _, id := range o.ids {
		if id < lo || id >= hi {
			s := o.sourceOf(id)
			rc.setTable(s.Table)
			lo, hi = s.Start, s.End
			delta = rc.curOff - s.Start
		}
		rc.ids = append(rc.ids, id+delta)
	}
	rc.curT = nil // force re-resolution on the next Add
}

// sameSources reports whether o's source tiling is identical to rc's (same
// tables at the same offsets, or rc still empty and adoptable as-is).
func (rc *RowCollector) sameSources(o *RowCollector) bool {
	if len(rc.sources) == 0 && len(rc.ids) == 0 {
		// Adopt the other collector's tiling wholesale.
		rc.sources = append(rc.sources, o.sources...)
		rc.watermark = o.watermark
		rc.curT = nil
		return true
	}
	if len(rc.sources) != len(o.sources) {
		return false
	}
	for i := range rc.sources {
		if rc.sources[i].Table != o.sources[i].Table || rc.sources[i].Start != o.sources[i].Start {
			return false
		}
	}
	return true
}

// sourceOf returns the source containing id; it panics when id is outside
// every source (collected ids are always inside one by construction).
func (rc *RowCollector) sourceOf(id int64) *RowSource {
	for i := range rc.sources {
		if s := &rc.sources[i]; id >= s.Start && id < s.End {
			return s
		}
	}
	panic("query: row id outside every collected source")
}

var (
	_ Aggregator = (*RowCollector)(nil)
	_ Mergeable  = (*RowCollector)(nil)
)
