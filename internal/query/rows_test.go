package query

import (
	"slices"
	"testing"

	"flood/internal/colstore"
)

func seqTable(t *testing.T, n int, base int64) *colstore.Table {
	t.Helper()
	col := make([]int64, n)
	for i := range col {
		col[i] = base + int64(i)
	}
	return colstore.MustNewTable([]string{"v"}, [][]int64{col})
}

func TestRowCollectorSingleSource(t *testing.T) {
	tbl := seqTable(t, 300, 0)
	rc := NewRowCollector()
	q := NewQuery(1).WithRange(0, 50, 259)
	sc := NewScanner(tbl)
	_, m := sc.ScanRange(q, q.FilteredDims(), 0, tbl.NumRows(), rc)
	if m != 210 || rc.Len() != 210 {
		t.Fatalf("matched %d, collected %d, want 210", m, rc.Len())
	}
	rc.Sort()
	for i, id := range rc.IDs() {
		if id != int64(50+i) {
			t.Fatalf("id[%d] = %d, want %d", i, id, 50+i)
		}
	}
	tt, row, ok := rc.Resolve(rc.IDs()[0])
	if !ok || tt != tbl || row != 50 {
		t.Fatalf("Resolve = (%p, %d, %v), want (%p, 50, true)", tt, row, ok, tbl)
	}
}

func TestRowCollectorMultiSourceOffsets(t *testing.T) {
	base := seqTable(t, 200, 0)
	delta := seqTable(t, 50, 1000)
	rc := NewRowCollector()
	rc.PinSource(base)
	q := NewQuery(1).WithRange(0, 150, 1020)

	for _, tbl := range []*colstore.Table{base, delta} {
		sc := NewScanner(tbl)
		sc.ScanRange(q, q.FilteredDims(), 0, tbl.NumRows(), rc)
	}
	rc.Sort()
	// Rows 150..199 of base (ids 150..199) then delta rows 0..20 (ids 200..220).
	if rc.Len() != 50+21 {
		t.Fatalf("collected %d rows, want 71", rc.Len())
	}
	ids := rc.IDs()
	if ids[0] != 150 || ids[49] != 199 || ids[50] != 200 || ids[70] != 220 {
		t.Fatalf("unexpected id tiling: %v", ids)
	}
	if tt, row, ok := rc.Resolve(205); !ok || tt != delta || row != 5 {
		t.Fatalf("Resolve(205) = (%p, %d, %v), want delta row 5", tt, row, ok)
	}
}

func TestRowCollectorMergeIdenticalSources(t *testing.T) {
	tbl := seqTable(t, 256, 0)
	q := NewQuery(1).WithRange(0, 0, 255)
	parent := NewRowCollector()
	for _, half := range [][2]int{{0, 128}, {128, 256}} {
		clone := parent.CloneEmpty().(*RowCollector)
		sc := NewScanner(tbl)
		sc.ScanRange(q, q.FilteredDims(), half[0], half[1], clone)
		parent.Merge(clone)
	}
	parent.Sort()
	if parent.Len() != 256 {
		t.Fatalf("merged %d ids, want 256", parent.Len())
	}
	for i, id := range parent.IDs() {
		if id != int64(i) {
			t.Fatalf("id[%d] = %d", i, id)
		}
	}
}

func TestRowCollectorMergeRebasesForeignSources(t *testing.T) {
	base := seqTable(t, 100, 0)
	delta := seqTable(t, 10, 0)
	// Parent saw base first; the other collector only ever saw delta, so its
	// delta ids start at 0 and must re-base past the parent's base range.
	parent := NewRowCollector()
	parent.PinSource(base)
	other := NewRowCollector()
	other.Add(delta, 3)
	other.AddExactRange(delta, 7, 9)
	parent.Merge(other)
	parent.Sort()
	want := []int64{103, 107, 108}
	if !slices.Equal(parent.IDs(), want) {
		t.Fatalf("merged ids = %v, want %v", parent.IDs(), want)
	}
	if tt, row, ok := parent.Resolve(107); !ok || tt != delta || row != 7 {
		t.Fatalf("Resolve(107) = (%p, %d, %v), want delta row 7", tt, row, ok)
	}
}

func TestRowCollectorResetReusesCapacity(t *testing.T) {
	tbl := seqTable(t, 64, 0)
	rc := NewRowCollector()
	rc.AddExactRange(tbl, 0, 64)
	rc.Reset()
	if rc.Len() != 0 || len(rc.Sources()) != 0 {
		t.Fatalf("Reset left state behind: %d ids, %d sources", rc.Len(), len(rc.Sources()))
	}
	allocs := testing.AllocsPerRun(100, func() {
		rc.Reset()
		rc.AddExactRange(tbl, 0, 64)
		rc.Sort()
	})
	if allocs != 0 {
		t.Fatalf("steady-state collect allocated %.1f times per run", allocs)
	}
}
