package query

import (
	"sync"

	"flood/internal/colstore"
)

// Scanner executes the scan-and-filter phase shared by every index. It scans
// physical row ranges of a table block-at-a-time, decoding only the columns
// present in the query filter (§7.2: "only the columns present in the query
// filter are accessed"), and feeds matching rows to the aggregator.
//
// Per block, the scanner first consults each filtered column's zone map
// (per-block min/max): blocks disjoint from a predicate are skipped without
// decoding, and predicates that contain a block's whole value range need no
// per-row check there. Only the remaining dimensions are decoded, each
// refining a selection vector of surviving row offsets; survivors reach the
// aggregator as contiguous runs so run-length fast paths (COUNT arithmetic,
// SUM prefix lookups) apply.
//
// Decode buffers are allocated lazily, one per dimension actually filtered,
// and retained across calls: a reused or pooled Scanner performs zero
// allocations in steady state.
//
// A Scanner is not safe for concurrent use.
type Scanner struct {
	t      *colstore.Table
	bufs   [][]int64 // lazily allocated per-dim decode buffers (BlockSize each)
	active []int     // scratch: dims needing per-row checks in the current block
	sel    [colstore.BlockSize]int32
}

// NewScanner returns a scanner over t.
func NewScanner(t *colstore.Table) *Scanner {
	s := &Scanner{}
	s.Reset(t)
	return s
}

// Reset points the scanner at t, retaining decode buffers when possible so a
// long-lived Scanner can serve many tables and queries without reallocating.
func (s *Scanner) Reset(t *colstore.Table) {
	s.t = t
	if n := t.NumCols(); n > len(s.bufs) {
		bufs := make([][]int64, n)
		copy(bufs, s.bufs)
		s.bufs = bufs
	}
}

// minExactRun is the shortest survivor run delivered through AddExactRange;
// shorter runs use per-row Add (see the run-emission loop in ScanRange).
const minExactRun = 16

var scannerPool = sync.Pool{New: func() any { return &Scanner{} }}

// GetScanner returns a pooled scanner reset to t. Callers pass it back with
// Release once the query's scan phase is done; paired Get/Release keeps the
// steady-state query path allocation-free.
func GetScanner(t *colstore.Table) *Scanner {
	s := scannerPool.Get().(*Scanner)
	s.Reset(t)
	return s
}

// Release returns the scanner to the pool. The caller must not use s after.
// The table reference is dropped so a pooled scanner does not pin column
// data beyond the query that used it.
func (s *Scanner) Release() {
	s.t = nil
	scannerPool.Put(s)
}

func (s *Scanner) buf(d int) []int64 {
	if s.bufs[d] == nil {
		s.bufs[d] = make([]int64, colstore.BlockSize)
	}
	return s.bufs[d]
}

// ScanRange scans rows [start, end), filter-checking the dims listed in
// filterDims against q, and returns (scanned, matched). filterDims must list
// only dims with q.Ranges[dim].Present. Matching rows go to agg. Rows inside
// blocks that a zone map proves disjoint from the predicate are pruned
// without being decoded and do not count as scanned.
func (s *Scanner) ScanRange(q Query, filterDims []int, start, end int, agg Aggregator) (scanned, matched int64) {
	if start >= end {
		return 0, 0
	}
	if len(filterDims) == 0 {
		// Everything in the range matches: treat as exact.
		agg.AddExactRange(s.t, start, end)
		n := int64(end - start)
		return n, n
	}
	for _, d := range filterDims {
		// An inverted range matches nothing. Checked up front because the
		// branchless block compares below assume Min <= Max (the unsigned
		// span would wrap to almost-always-true).
		if r := q.Ranges[d]; r.Min > r.Max {
			return 0, 0
		}
	}
	t := s.t
	firstBlock := start / colstore.BlockSize
	lastBlock := (end - 1) / colstore.BlockSize
	for b := firstBlock; b <= lastBlock; b++ {
		blockLo := b * colstore.BlockSize
		i0 := 0
		if blockLo < start {
			i0 = start - blockLo
		}
		i1 := end - blockLo
		if i1 > colstore.BlockSize {
			i1 = colstore.BlockSize
		}

		// Zone-map pass: prune or exact-accept per dimension.
		active := s.active[:0]
		skip := false
		for _, d := range filterDims {
			bmin, bmax := t.Column(d).BlockBounds(b)
			r := q.Ranges[d]
			if bmin > r.Max || bmax < r.Min {
				skip = true
				break
			}
			if bmin >= r.Min && bmax <= r.Max {
				continue // whole block inside the predicate: no row checks
			}
			active = append(active, d)
		}
		s.active = active
		if skip {
			continue
		}
		if len(active) == 0 {
			agg.AddExactRange(t, blockLo+i0, blockLo+i1)
			n := int64(i1 - i0)
			scanned += n
			matched += n
			continue
		}

		// Build the selection vector from the first undecided dimension,
		// then refine it in place with each remaining one. The membership
		// test is branchless: v ∈ [Min, Max] becomes one unsigned compare
		// (u64(v-Min) <= u64(Max-Min), wrap-safe for unbounded ranges), and
		// the unconditional store + conditional increment compiles to a
		// predicated instruction instead of a mispredicting branch.
		d0 := active[0]
		buf := s.buf(d0)
		t.Column(d0).DecodeBlock(b, buf)
		r := q.Ranges[d0]
		rmin, span := uint64(r.Min), uint64(r.Max)-uint64(r.Min)
		sel := s.sel[:]
		nsel := 0
		for i := i0; i < i1; i++ {
			sel[nsel] = int32(i)
			if uint64(buf[i])-rmin <= span {
				nsel++
			}
		}
		for _, d := range active[1:] {
			if nsel == 0 {
				break
			}
			buf = s.buf(d)
			t.Column(d).DecodeBlock(b, buf)
			r = q.Ranges[d]
			rmin, span = uint64(r.Min), uint64(r.Max)-uint64(r.Min)
			k := 0
			for _, i := range sel[:nsel] {
				sel[k] = i
				if uint64(buf[i])-rmin <= span {
					k++
				}
			}
			nsel = k
		}
		scanned += int64(i1 - i0)
		matched += int64(nsel)

		// Feed survivors to the aggregator in contiguous runs. Short runs
		// go through per-row Add: an AddExactRange implementation may pay a
		// fixed block-decode cost (e.g. SUM without a prefix aggregate)
		// that only amortizes over longer runs.
		for i := 0; i < nsel; {
			j := i + 1
			for j < nsel && sel[j] == sel[j-1]+1 {
				j++
			}
			if j-i < minExactRun {
				for k := i; k < j; k++ {
					agg.Add(t, blockLo+int(sel[k]))
				}
			} else {
				agg.AddExactRange(t, blockLo+int(sel[i]), blockLo+int(sel[j-1])+1)
			}
			i = j
		}
	}
	return scanned, matched
}

// ScanExactRange accumulates rows [start, end) that are all known to match
// (an exact sub-range, §7.1): no per-row filter checks are performed.
func (s *Scanner) ScanExactRange(start, end int, agg Aggregator) (scanned, matched int64) {
	if start >= end {
		return 0, 0
	}
	agg.AddExactRange(s.t, start, end)
	n := int64(end - start)
	return n, n
}
