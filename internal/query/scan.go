package query

import (
	"sync"

	"flood/internal/colstore"
)

// Scanner executes the scan-and-filter phase shared by every index. It scans
// physical row ranges of a table block-at-a-time, decoding only the columns
// present in the query filter (§7.2: "only the columns present in the query
// filter are accessed"), and feeds matching rows to the aggregator.
//
// Per block, the scanner first consults each filtered column's zone map
// (per-block min/max): blocks disjoint from a predicate are skipped without
// decoding, and predicates that contain a block's whole value range need no
// per-row check there. Only the remaining dimensions are decoded, each
// refining a selection vector of surviving row offsets; survivors reach the
// aggregator as contiguous runs so run-length fast paths (COUNT arithmetic,
// SUM prefix lookups) apply.
//
// Decode buffers are allocated lazily, one per dimension actually filtered,
// and retained across calls: a reused or pooled Scanner performs zero
// allocations in steady state.
//
// A Scanner is not safe for concurrent use.
type Scanner struct {
	t       *colstore.Table
	bufs    [][]int64 // lazily allocated per-dim decode buffers (BlockSize each)
	active  []int     // scratch: dims needing per-row checks in the current block
	ctl     *Control  // optional execution control (nil: unconditioned scan)
	ctlTick int       // blocks since the last cancellation poll
	sel     [colstore.BlockSize]int32
}

// NewScanner returns a scanner over t.
func NewScanner(t *colstore.Table) *Scanner {
	s := &Scanner{}
	s.Reset(t)
	return s
}

// Reset points the scanner at t, retaining decode buffers when possible so a
// long-lived Scanner can serve many tables and queries without reallocating.
func (s *Scanner) Reset(t *colstore.Table) {
	s.t = t
	if n := t.NumCols(); n > len(s.bufs) {
		bufs := make([][]int64, n)
		copy(bufs, s.bufs)
		s.bufs = bufs
	}
}

// SetControl attaches an execution control: the scan loops poll it for
// cancellation every ctlCheckBlocks blocks and draw match-delivery budget
// from it, so a canceled context or a satisfied LIMIT stops the scan at the
// next boundary. A nil control (the default) scans unconditionally with no
// extra work in the per-row loops.
func (s *Scanner) SetControl(ctl *Control) { s.ctl = ctl }

// minExactRun is the shortest survivor run delivered through AddExactRange;
// shorter runs use per-row Add (see the run-emission loop in ScanRange).
const minExactRun = 16

// ctlCheckBlocks is the cancellation poll cadence: the block loop runs a
// full Control.Check (channel poll + deadline read, tens of nanoseconds)
// once per this many blocks, i.e. once per ~1K rows — under 0.1ns of
// amortized overhead per scanned row, with a cancellation response bound of
// about one thousand rows.
const ctlCheckBlocks = 8

var scannerPool = sync.Pool{New: func() any { return &Scanner{} }}

// GetScanner returns a pooled scanner reset to t. Callers pass it back with
// Release once the query's scan phase is done; paired Get/Release keeps the
// steady-state query path allocation-free.
func GetScanner(t *colstore.Table) *Scanner {
	s := scannerPool.Get().(*Scanner)
	s.Reset(t)
	return s
}

// Release returns the scanner to the pool. The caller must not use s after.
// The table reference is dropped so a pooled scanner does not pin column
// data beyond the query that used it.
func (s *Scanner) Release() {
	s.t = nil
	s.ctl = nil
	s.ctlTick = 0
	scannerPool.Put(s)
}

func (s *Scanner) buf(d int) []int64 {
	if s.bufs[d] == nil {
		s.bufs[d] = make([]int64, colstore.BlockSize)
	}
	return s.bufs[d]
}

// ScanRange scans rows [start, end), filter-checking the dims listed in
// filterDims against q, and returns (scanned, matched). filterDims must list
// only dims with q.Ranges[dim].Present. Matching rows go to agg. Rows inside
// blocks that a zone map proves disjoint from the predicate are pruned
// without being decoded and do not count as scanned.
//
// With a control attached (SetControl), the block loop additionally polls
// for cancellation every ctlCheckBlocks blocks and draws delivery budget
// from the control's limit before feeding survivors to the aggregator; a
// stop latched by either cuts the scan short, and rows never visited do not
// count as scanned.
func (s *Scanner) ScanRange(q Query, filterDims []int, start, end int, agg Aggregator) (scanned, matched int64) {
	if start >= end || s.ctl.Stopped() {
		return 0, 0
	}
	if len(filterDims) == 0 {
		// Everything in the range matches: treat as exact. Poll
		// cancellation here — there is no block loop to do it — so a
		// canceled composite scan (delta buffer, side-log segments, OR
		// pieces) latches and stops delivering between calls instead of
		// running every remaining range to completion.
		n := end - start
		if s.ctl != nil {
			if s.ctl.Check() {
				return 0, 0
			}
			n = s.ctl.Take(n)
			if n == 0 {
				return 0, 0
			}
		}
		agg.AddExactRange(s.t, start, start+n)
		return int64(n), int64(n)
	}
	for _, d := range filterDims {
		// An inverted range matches nothing. Checked up front because the
		// branchless block compares below assume Min <= Max (the unsigned
		// span would wrap to almost-always-true).
		if r := q.Ranges[d]; r.Min > r.Max {
			return 0, 0
		}
	}
	t := s.t
	firstBlock := start / colstore.BlockSize
	lastBlock := (end - 1) / colstore.BlockSize
	for b := firstBlock; b <= lastBlock; b++ {
		if s.ctl != nil {
			// Amortized cancellation poll plus a cheap stop check (one
			// atomic load) so another worker's limit stop is seen promptly.
			if s.ctlTick++; s.ctlTick >= ctlCheckBlocks {
				s.ctlTick = 0
				if s.ctl.Check() {
					break
				}
			} else if s.ctl.Stopped() {
				break
			}
		}
		blockLo := b * colstore.BlockSize
		i0 := 0
		if blockLo < start {
			i0 = start - blockLo
		}
		i1 := end - blockLo
		if i1 > colstore.BlockSize {
			i1 = colstore.BlockSize
		}

		// Zone-map pass: prune or exact-accept per dimension.
		active := s.active[:0]
		skip := false
		for _, d := range filterDims {
			bmin, bmax := t.Column(d).BlockBounds(b)
			r := q.Ranges[d]
			if bmin > r.Max || bmax < r.Min {
				skip = true
				break
			}
			if bmin >= r.Min && bmax <= r.Max {
				continue // whole block inside the predicate: no row checks
			}
			active = append(active, d)
		}
		s.active = active
		if skip {
			continue
		}
		if len(active) == 0 {
			n := i1 - i0
			if s.ctl != nil {
				n = s.ctl.Take(n)
			}
			if n > 0 {
				agg.AddExactRange(t, blockLo+i0, blockLo+i0+n)
				scanned += int64(n)
				matched += int64(n)
			}
			if s.ctl.Stopped() {
				break
			}
			continue
		}

		// Build the selection vector from the first undecided dimension,
		// then refine it in place with each remaining one. The membership
		// test is branchless: v ∈ [Min, Max] becomes one unsigned compare
		// (u64(v-Min) <= u64(Max-Min), wrap-safe for unbounded ranges), and
		// the unconditional store + conditional increment compiles to a
		// predicated instruction instead of a mispredicting branch.
		d0 := active[0]
		buf := s.buf(d0)
		t.Column(d0).DecodeBlock(b, buf)
		r := q.Ranges[d0]
		rmin, span := uint64(r.Min), uint64(r.Max)-uint64(r.Min)
		sel := s.sel[:]
		nsel := 0
		for i := i0; i < i1; i++ {
			sel[nsel] = int32(i)
			if uint64(buf[i])-rmin <= span {
				nsel++
			}
		}
		for _, d := range active[1:] {
			if nsel == 0 {
				break
			}
			buf = s.buf(d)
			t.Column(d).DecodeBlock(b, buf)
			r = q.Ranges[d]
			rmin, span = uint64(r.Min), uint64(r.Max)-uint64(r.Min)
			k := 0
			for _, i := range sel[:nsel] {
				sel[k] = i
				if uint64(buf[i])-rmin <= span {
					k++
				}
			}
			nsel = k
		}
		scanned += int64(i1 - i0)
		take := nsel
		if s.ctl != nil {
			// LIMIT pushdown: deliver only as many survivors as the shared
			// budget grants; exhausting it latches the stop that ends the
			// scan after this block's truncated delivery.
			take = s.ctl.Take(nsel)
		}
		matched += int64(take)

		// Feed survivors to the aggregator in contiguous runs. Short runs
		// go through per-row Add: an AddExactRange implementation may pay a
		// fixed block-decode cost (e.g. SUM without a prefix aggregate)
		// that only amortizes over longer runs.
		for i := 0; i < take; {
			j := i + 1
			for j < take && sel[j] == sel[j-1]+1 {
				j++
			}
			if j-i < minExactRun {
				for k := i; k < j; k++ {
					agg.Add(t, blockLo+int(sel[k]))
				}
			} else {
				agg.AddExactRange(t, blockLo+int(sel[i]), blockLo+int(sel[j-1])+1)
			}
			i = j
		}
		if take < nsel {
			break
		}
	}
	return scanned, matched
}

// ScanExactRange accumulates rows [start, end) that are all known to match
// (an exact sub-range, §7.1): no per-row filter checks are performed. With a
// control attached, the range is truncated to the remaining limit budget and
// skipped entirely once a stop has latched; the aggregator call itself is
// uninterruptible, so cancellation granularity on exact ranges is one range
// (one morsel, on the parallel path).
func (s *Scanner) ScanExactRange(start, end int, agg Aggregator) (scanned, matched int64) {
	if start >= end {
		return 0, 0
	}
	n := end - start
	if s.ctl != nil {
		if s.ctl.Check() {
			return 0, 0
		}
		n = s.ctl.Take(n)
		if n == 0 {
			return 0, 0
		}
	}
	agg.AddExactRange(s.t, start, start+n)
	return int64(n), int64(n)
}
