package query

import (
	"math/bits"
	"sync"

	"flood/internal/colstore"
)

// Scanner executes the scan-and-filter phase shared by every index. It scans
// physical row ranges of a table block-at-a-time, decoding only the columns
// present in the query filter (§7.2: "only the columns present in the query
// filter are accessed"), and feeds matching rows to the aggregator.
//
// Per block, the scanner first consults each filtered column's zone map
// (per-block min/max): blocks disjoint from a predicate are skipped without
// decoding, and predicates that contain a block's whole value range need no
// per-row check there. The remaining dimensions refine a word-packed
// selection bitmap (two uint64 words per 128-row block): a column with a
// bitmap index resolves its predicate as a precomputed-bitmap AND without
// touching the column data, every other column evaluates its range predicate
// branchlessly over the decoded block into a 64-rows-per-word mask, and the
// masks AND together. Survivors are emitted to the aggregator as contiguous
// runs found with bits.TrailingZeros64, so run-length fast paths (COUNT
// arithmetic, SUM prefix lookups) apply unchanged. SetScalarKernel selects
// the selection-vector fallback kernel instead.
//
// Decode buffers are allocated lazily, one per dimension actually filtered,
// and retained across calls: a reused or pooled Scanner performs zero
// allocations in steady state.
//
// A Scanner is not safe for concurrent use.
type Scanner struct {
	t         *colstore.Table
	bufs      [][]int64 // lazily allocated per-dim decode buffers (BlockSize each)
	active    []int     // scratch: dims decoded and compared in the current block
	activeIdx []int     // scratch: dims served by a bitmap index in the current block
	ctl       *Control  // optional execution control (nil: unconditioned scan)
	ctlTick   int       // blocks since the last cancellation poll
	scalar    bool      // use the selection-vector fallback kernel
	tomb      []uint64  // word-packed tombstone bitmap (nil: no deletions)
	selw      colstore.BlockBitmap
	sel       [colstore.BlockSize]int32
}

// NewScanner returns a scanner over t.
func NewScanner(t *colstore.Table) *Scanner {
	s := &Scanner{}
	s.Reset(t)
	return s
}

// Reset points the scanner at t, retaining decode buffers when possible so a
// long-lived Scanner can serve many tables and queries without reallocating.
// The kernel choice resets to the build default (see SetScalarKernel).
func (s *Scanner) Reset(t *colstore.Table) {
	s.t = t
	s.scalar = defaultScalarKernel
	s.tomb = nil
	if n := t.NumCols(); n > len(s.bufs) {
		bufs := make([][]int64, n)
		copy(bufs, s.bufs)
		s.bufs = bufs
	}
}

// SetControl attaches an execution control: the scan loops poll it for
// cancellation every ctlCheckBlocks blocks and draw match-delivery budget
// from it, so a canceled context or a satisfied LIMIT stops the scan at the
// next boundary. A nil control (the default) scans unconditionally with no
// extra work in the per-row loops.
func (s *Scanner) SetControl(ctl *Control) { s.ctl = ctl }

// SetScalarKernel selects the portable selection-vector kernel (true) or the
// word-packed bitmap kernel (false) for this scanner's lifetime until the
// next Reset. The default is the bitmap kernel unless the build was tagged
// floodscalar. Both kernels deliver identical rows, stats, and LIMIT
// prefixes; the scalar kernel never consults bitmap indexes, which makes the
// pair the oracle for the cross-kernel equivalence tests.
func (s *Scanner) SetScalarKernel(on bool) { s.scalar = on }

// SetTombstones attaches a word-packed tombstone bitmap (bit row&63 of word
// row>>6 set = row deleted, see colstore.Tombstones): every scan entry point
// masks deleted rows out before delivery, at a cost of one AND-NOT per block
// word on the bitmap kernel. Rows at or beyond 64*len(words) are live, so a
// bitmap covering a prefix of the table (the table grew after the last
// delete) is valid. nil (the default) scans with zero masking overhead. The
// caller must not mutate words while the scanner uses them.
func (s *Scanner) SetTombstones(words []uint64) { s.tomb = words }

// minExactRun is the shortest survivor run delivered through AddExactRange;
// shorter runs use per-row Add (see deliverRun).
const minExactRun = 16

// ctlCheckBlocks is the cancellation poll cadence: the block loop runs a
// full Control.Check (channel poll + deadline read, tens of nanoseconds)
// once per this many blocks, i.e. once per ~1K rows — under 0.1ns of
// amortized overhead per scanned row, with a cancellation response bound of
// about one thousand rows.
const ctlCheckBlocks = 8

var scannerPool = sync.Pool{New: func() any { return &Scanner{} }}

// GetScanner returns a pooled scanner reset to t. Callers pass it back with
// Release once the query's scan phase is done; paired Get/Release keeps the
// steady-state query path allocation-free.
func GetScanner(t *colstore.Table) *Scanner {
	s := scannerPool.Get().(*Scanner)
	s.Reset(t)
	return s
}

// Release returns the scanner to the pool. The caller must not use s after.
// The table reference is dropped so a pooled scanner does not pin column
// data beyond the query that used it.
func (s *Scanner) Release() {
	s.t = nil
	s.ctl = nil
	s.ctlTick = 0
	s.tomb = nil
	scannerPool.Put(s)
}

func (s *Scanner) buf(d int) []int64 {
	if s.bufs[d] == nil {
		s.bufs[d] = make([]int64, colstore.BlockSize)
	}
	return s.bufs[d]
}

// ScanRange scans rows [start, end), filter-checking the dims listed in
// filterDims against q, and returns (scanned, matched). filterDims must list
// only dims with q.Ranges[dim].Present. Matching rows go to agg. Rows inside
// blocks that a zone map proves disjoint from the predicate are pruned
// without being decoded and do not count as scanned.
//
// With a control attached (SetControl), the block loop additionally polls
// for cancellation every ctlCheckBlocks blocks and draws delivery budget
// from the control's limit before feeding survivors to the aggregator; a
// stop latched by either cuts the scan short, and rows never visited do not
// count as scanned.
func (s *Scanner) ScanRange(q Query, filterDims []int, start, end int, agg Aggregator) (scanned, matched int64) {
	if start >= end || s.ctl.Stopped() {
		return 0, 0
	}
	if len(filterDims) == 0 {
		if s.tomb != nil {
			// Every live row in the range matches; dead rows must still be
			// masked out, so route through the block-at-a-time live-run
			// emitter instead of one whole-range AddExactRange.
			return s.scanLiveRange(start, end, agg)
		}
		// Everything in the range matches: treat as exact. Poll
		// cancellation here — there is no block loop to do it — so a
		// canceled composite scan (delta buffer, side-log segments, OR
		// pieces) latches and stops delivering between calls instead of
		// running every remaining range to completion.
		n := end - start
		if s.ctl != nil {
			if s.ctl.Check() {
				return 0, 0
			}
			n = s.ctl.Take(n)
			if n == 0 {
				return 0, 0
			}
		}
		agg.AddExactRange(s.t, start, start+n)
		return int64(n), int64(n)
	}
	for _, d := range filterDims {
		// An inverted range matches nothing. Checked up front because the
		// branchless block compares below assume Min <= Max (the unsigned
		// span would wrap to almost-always-true).
		if r := q.Ranges[d]; r.Min > r.Max {
			return 0, 0
		}
	}
	t := s.t
	firstBlock := start / colstore.BlockSize
	lastBlock := (end - 1) / colstore.BlockSize
	for b := firstBlock; b <= lastBlock; b++ {
		if s.ctl != nil {
			// Amortized cancellation poll plus a cheap stop check (one
			// atomic load) so another worker's limit stop is seen promptly.
			if s.ctlTick++; s.ctlTick >= ctlCheckBlocks {
				s.ctlTick = 0
				if s.ctl.Check() {
					break
				}
			} else if s.ctl.Stopped() {
				break
			}
		}
		blockLo := b * colstore.BlockSize
		i0 := 0
		if blockLo < start {
			i0 = start - blockLo
		}
		i1 := end - blockLo
		if i1 > colstore.BlockSize {
			i1 = colstore.BlockSize
		}

		// Zone-map pass: prune or exact-accept per dimension; dims that
		// need row checks split into bitmap-indexed and decoded sets (the
		// scalar kernel decodes everything).
		active, activeIdx := s.active[:0], s.activeIdx[:0]
		skip := false
		for _, d := range filterDims {
			bmin, bmax := t.Column(d).BlockBounds(b)
			r := q.Ranges[d]
			if bmin > r.Max || bmax < r.Min {
				skip = true
				break
			}
			if bmin >= r.Min && bmax <= r.Max {
				continue // whole block inside the predicate: no row checks
			}
			if !s.scalar && t.Bitmap(d) != nil {
				activeIdx = append(activeIdx, d)
			} else {
				active = append(active, d)
			}
		}
		s.active, s.activeIdx = active, activeIdx
		if skip {
			continue
		}
		if len(active) == 0 && len(activeIdx) == 0 {
			if s.tomb != nil {
				// Whole-block zone-map accept, but deleted rows must not be
				// delivered: emit the block's live runs instead.
				nsel, tk := s.scanLiveBlock(b, blockLo, i0, i1, agg)
				scanned += int64(i1 - i0)
				matched += int64(tk)
				if tk < nsel || s.ctl.Stopped() {
					break
				}
				continue
			}
			n := i1 - i0
			if s.ctl != nil {
				n = s.ctl.Take(n)
			}
			if n > 0 {
				agg.AddExactRange(t, blockLo+i0, blockLo+i0+n)
				scanned += int64(n)
				matched += int64(n)
			}
			if s.ctl.Stopped() {
				break
			}
			continue
		}

		var nsel, take int
		if s.scalar {
			nsel, take = s.filterBlockScalar(q, b, blockLo, i0, i1, agg)
		} else {
			nsel, take = s.filterBlockBitmap(q, b, blockLo, i0, i1, agg)
		}
		scanned += int64(i1 - i0)
		matched += int64(take)
		if take < nsel {
			// LIMIT pushdown: the budget ran out inside this block's
			// delivery, latching the stop that ends the scan.
			break
		}
	}
	return scanned, matched
}

// filterBlockBitmap runs the word-packed kernel over one block: the
// selection bitmap starts as all-ones over [i0, i1), each bitmap-indexed dim
// ANDs its precomputed value bitmaps in, each remaining dim ANDs a
// branchless compare mask over its decoded block, and the surviving runs are
// emitted. Returns the survivor count and how many were delivered (the
// control's limit budget may truncate delivery).
func (s *Scanner) filterBlockBitmap(q Query, b, blockLo, i0, i1 int, agg Aggregator) (nsel, take int) {
	t := s.t
	sel := &s.selw
	selInit(sel, i0, i1)
	if s.tomb != nil {
		s.andNotTomb(sel, b)
	}
	for _, d := range s.activeIdx {
		r := q.Ranges[d]
		t.Bitmap(d).AndBlock(sel, b, r.Min, r.Max)
	}
	for _, d := range s.active {
		if !selAny(sel) {
			break
		}
		buf := s.buf(d)
		t.Column(d).DecodeBlock(b, buf)
		r := q.Ranges[d]
		andCompareMask(sel, buf, uint64(r.Min), uint64(r.Max)-uint64(r.Min))
	}
	nsel = selCount(sel)
	if nsel == 0 {
		return 0, 0
	}
	take = nsel
	if s.ctl != nil {
		take = s.ctl.Take(nsel)
		if take == 0 {
			return nsel, 0
		}
	}
	if take == nsel {
		s.emitRuns(agg, blockLo, sel)
		return nsel, take
	}

	// The limit budget truncates delivery inside this block: emit runs with
	// per-run budget accounting (the slow path; it runs at most once per
	// query, on the block where the budget runs out).
	s.emitRunsBudget(agg, blockLo, sel, take)
	return nsel, take
}

// emitRunsBudget is emitRuns with per-run budget accounting: it delivers at
// most rem survivor rows of sel, in ascending row order, and stops once the
// budget is spent. It is the shared slow path for the block where a LIMIT
// budget runs out.
func (s *Scanner) emitRunsBudget(agg Aggregator, blockLo int, sel *colstore.BlockBitmap, rem int) {
	runS, runE := 0, 0 // pending run [runS, runE); empty while runE == runS
	for wi := 0; wi < colstore.BlockWords; wi++ {
		w := sel[wi]
		for w != 0 {
			lo, hi, rest := nextRun(w, wi)
			w = rest
			if lo == runE && runE > runS {
				runE = hi
				continue
			}
			if runE > runS {
				rem -= s.deliverRun(agg, blockLo, runS, runE, rem)
				if rem == 0 {
					return
				}
			}
			runS, runE = lo, hi
		}
	}
	if runE > runS {
		s.deliverRun(agg, blockLo, runS, runE, rem)
	}
}

// andNotTomb clears sel bits whose rows are tombstoned, one AND-NOT per block
// word. Tombstone words beyond the bitmap's coverage (rows appended after the
// last delete) are implicitly zero.
func (s *Scanner) andNotTomb(sel *colstore.BlockBitmap, b int) {
	base := b * colstore.BlockWords
	for wi := range sel {
		if base+wi < len(s.tomb) {
			sel[wi] &^= s.tomb[base+wi]
		}
	}
}

// scanLiveBlock delivers the live rows of block b's range [i0, i1) — rows
// known to match every predicate, minus tombstones — as runs, drawing
// delivery budget from the control. Returns the live count and how many were
// delivered.
func (s *Scanner) scanLiveBlock(b, blockLo, i0, i1 int, agg Aggregator) (nsel, take int) {
	sel := &s.selw
	selInit(sel, i0, i1)
	s.andNotTomb(sel, b)
	nsel = selCount(sel)
	if nsel == 0 {
		return 0, 0
	}
	take = nsel
	if s.ctl != nil {
		take = s.ctl.Take(nsel)
		if take == 0 {
			return nsel, 0
		}
	}
	if take == nsel {
		s.emitRuns(agg, blockLo, sel)
		return nsel, take
	}
	s.emitRunsBudget(agg, blockLo, sel, take)
	return nsel, take
}

// scanLiveRange is the tombstone-masked form of the exact-range fast paths:
// every live row of [start, end) matches and is delivered; dead rows are
// skipped. It reuses the selection-bitmap scratch (zero allocations) and
// polls the control at the usual block cadence. Scanned counts rows visited;
// matched counts live rows delivered.
func (s *Scanner) scanLiveRange(start, end int, agg Aggregator) (scanned, matched int64) {
	firstBlock := start / colstore.BlockSize
	lastBlock := (end - 1) / colstore.BlockSize
	for b := firstBlock; b <= lastBlock; b++ {
		if s.ctl != nil {
			if s.ctlTick++; s.ctlTick >= ctlCheckBlocks {
				s.ctlTick = 0
				if s.ctl.Check() {
					break
				}
			} else if s.ctl.Stopped() {
				break
			}
		}
		blockLo := b * colstore.BlockSize
		i0 := 0
		if blockLo < start {
			i0 = start - blockLo
		}
		i1 := end - blockLo
		if i1 > colstore.BlockSize {
			i1 = colstore.BlockSize
		}
		nsel, take := s.scanLiveBlock(b, blockLo, i0, i1, agg)
		scanned += int64(i1 - i0)
		matched += int64(take)
		if take < nsel {
			break
		}
	}
	return scanned, matched
}

// nextRun extracts the lowest run of set bits from word wi of a selection
// bitmap: it returns the run's block-row bounds [lo, hi) and the word with
// the run cleared.
func nextRun(w uint64, wi int) (lo, hi int, rest uint64) {
	tz := bits.TrailingZeros64(w)
	ones := bits.TrailingZeros64(^(w >> uint(tz)))
	lo = wi*64 + tz
	hi = lo + ones
	if tz+ones >= 64 {
		return lo, hi, 0
	}
	return lo, hi, w &^ (((1 << uint(ones)) - 1) << uint(tz))
}

// emitRuns feeds every survivor run of sel to agg, in ascending row order.
// Runs are found with bits.TrailingZeros64; a run ending at a word boundary
// stitches to one starting the next word, so block-spanning runs still reach
// AddExactRange whole. Delivery is inlined here rather than a call per run —
// scattered survivors produce a run per row, and this loop is the hot edge
// of every selective scan.
func (s *Scanner) emitRuns(agg Aggregator, blockLo int, sel *colstore.BlockBitmap) {
	t := s.t
	runS, runE := 0, 0 // pending run [runS, runE); empty while runE == runS
	for wi := 0; wi < colstore.BlockWords; wi++ {
		w := sel[wi]
		if w == 0 {
			continue
		}
		// A shift-AND chain detects whether the word holds any run of
		// minExactRun (16) consecutive survivors. If not, every run here is
		// short and would deliver per-row regardless, so skip the run
		// bookkeeping and TrailingZeros-iterate the rows directly. (A short
		// run stitched across a word edge may split into per-row deliveries
		// where run tracking would have ranged it — same rows, same order,
		// same results.)
		r := w & (w >> 1)
		r &= r >> 2
		r &= r >> 4
		if r&(r>>8) == 0 {
			if n := runE - runS; n > 0 {
				if n < minExactRun {
					for i := runS; i < runE; i++ {
						agg.Add(t, blockLo+i)
					}
				} else {
					agg.AddExactRange(t, blockLo+runS, blockLo+runE)
				}
				runS, runE = 0, 0
			}
			base := blockLo + wi*64
			for ; w != 0; w &= w - 1 {
				agg.Add(t, base+bits.TrailingZeros64(w))
			}
			continue
		}
		for w != 0 {
			lo, hi, rest := nextRun(w, wi)
			w = rest
			if lo == runE && runE > runS {
				runE = hi
				continue
			}
			if n := runE - runS; n > 0 {
				if n < minExactRun {
					for i := runS; i < runE; i++ {
						agg.Add(t, blockLo+i)
					}
				} else {
					agg.AddExactRange(t, blockLo+runS, blockLo+runE)
				}
			}
			runS, runE = lo, hi
		}
	}
	if n := runE - runS; n > 0 {
		if n < minExactRun {
			for i := runS; i < runE; i++ {
				agg.Add(t, blockLo+i)
			}
		} else {
			agg.AddExactRange(t, blockLo+runS, blockLo+runE)
		}
	}
}

// deliverRun feeds the survivor run [lo, hi) within the block at blockLo to
// agg, truncated to the remaining delivery budget, and returns how many rows
// it delivered. Short runs go through per-row Add: an AddExactRange
// implementation may pay a fixed block-decode cost (e.g. SUM without a
// prefix aggregate) that only amortizes over longer runs.
func (s *Scanner) deliverRun(agg Aggregator, blockLo, lo, hi, rem int) int {
	n := hi - lo
	if n > rem {
		n = rem
		hi = lo + n
	}
	if n < minExactRun {
		t := s.t
		for i := lo; i < hi; i++ {
			agg.Add(t, blockLo+i)
		}
	} else {
		agg.AddExactRange(s.t, blockLo+lo, blockLo+hi)
	}
	return n
}

// filterBlockScalar is the portable fallback kernel: the original
// selection-vector pipeline. It builds the vector from the first undecided
// dimension, then refines it in place with each remaining one. The
// membership test is branchless: v ∈ [Min, Max] becomes one unsigned
// compare (u64(v-Min) <= u64(Max-Min), wrap-safe for unbounded ranges), and
// the unconditional store + conditional increment compiles to a predicated
// instruction instead of a mispredicting branch.
func (s *Scanner) filterBlockScalar(q Query, b, blockLo, i0, i1 int, agg Aggregator) (nsel, take int) {
	t := s.t
	active := s.active
	sel := s.sel[:]
	rest := active
	if s.tomb != nil {
		// Tombstone-masked build: seed the vector with the block's live rows
		// (one bit test each), then refine with every active dimension below.
		for i := i0; i < i1; i++ {
			row := blockLo + i
			if wi := row >> 6; wi < len(s.tomb) && s.tomb[wi]>>uint(row&63)&1 == 1 {
				continue
			}
			sel[nsel] = int32(i)
			nsel++
		}
	} else {
		d0 := active[0]
		buf := s.buf(d0)
		t.Column(d0).DecodeBlock(b, buf)
		r := q.Ranges[d0]
		rmin, span := uint64(r.Min), uint64(r.Max)-uint64(r.Min)
		for i := i0; i < i1; i++ {
			sel[nsel] = int32(i)
			if uint64(buf[i])-rmin <= span {
				nsel++
			}
		}
		rest = active[1:]
	}
	for _, d := range rest {
		if nsel == 0 {
			break
		}
		buf := s.buf(d)
		t.Column(d).DecodeBlock(b, buf)
		r := q.Ranges[d]
		rmin, span := uint64(r.Min), uint64(r.Max)-uint64(r.Min)
		k := 0
		for _, i := range sel[:nsel] {
			sel[k] = i
			if uint64(buf[i])-rmin <= span {
				k++
			}
		}
		nsel = k
	}
	take = nsel
	if s.ctl != nil {
		// LIMIT pushdown: deliver only as many survivors as the shared
		// budget grants.
		take = s.ctl.Take(nsel)
	}

	// Feed survivors to the aggregator in contiguous runs.
	for i := 0; i < take; {
		j := i + 1
		for j < take && sel[j] == sel[j-1]+1 {
			j++
		}
		if j-i < minExactRun {
			for k := i; k < j; k++ {
				agg.Add(t, blockLo+int(sel[k]))
			}
		} else {
			agg.AddExactRange(t, blockLo+int(sel[i]), blockLo+int(sel[j-1])+1)
		}
		i = j
	}
	return nsel, take
}

// selInit fills sel with ones over bit positions [i0, i1) and zeros
// elsewhere.
func selInit(sel *colstore.BlockBitmap, i0, i1 int) {
	for wi := range sel {
		base := wi * 64
		lo, hi := i0-base, i1-base
		if lo < 0 {
			lo = 0
		}
		if hi > 64 {
			hi = 64
		}
		if lo >= hi {
			sel[wi] = 0
			continue
		}
		w := ^uint64(0) << uint(lo)
		if hi < 64 {
			w &= (1 << uint(hi)) - 1
		}
		sel[wi] = w
	}
}

// selAny reports whether any bit of sel is set.
func selAny(sel *colstore.BlockBitmap) bool {
	var w uint64
	for _, v := range sel {
		w |= v
	}
	return w != 0
}

// selCount returns the number of set bits in sel.
func selCount(sel *colstore.BlockBitmap) int {
	n := 0
	for _, v := range sel {
		n += bits.OnesCount64(v)
	}
	return n
}

// sparseRefineBits is the survivor count per word at or below which
// andCompareMask iterates set bits instead of evaluating all 64 lanes. The
// full-lane pass costs ~64 branchless compares; the sparse pass costs one
// TrailingZeros + compare per survivor, so it wins while survivors are a
// minority of the word.
const sparseRefineBits = 32

// andCompareMask evaluates v ∈ [rmin, rmin+span] over one decoded block and
// ANDs the result into sel, 64 rows per mask word. The per-row test compiles
// branchlessly: the carry out of span - (v - rmin) (bits.Sub64 is an
// intrinsic) is 1 exactly when the value falls outside the range, so each
// word of the mask is built with subtract/xor/shift only — no data-dependent
// branches for the predictor to miss. Words already empty are skipped
// without touching their 64 rows, and words already thinned below
// sparseRefineBits survivors are refined per set bit instead of per lane.
func andCompareMask(sel *colstore.BlockBitmap, buf []int64, rmin, span uint64) {
	for wi := range sel {
		w := sel[wi]
		if w == 0 {
			continue
		}
		vals := buf[wi*64 : wi*64+64]
		if bits.OnesCount64(w) <= sparseRefineBits {
			m := w
			for t := w; t != 0; t &= t - 1 {
				k := uint(bits.TrailingZeros64(t)) & 63
				_, borrow := bits.Sub64(span, uint64(vals[k])-rmin, 0)
				m &^= borrow << k
			}
			sel[wi] = m
			continue
		}
		// Full-lane pass, 8 lanes per step with compile-time shift counts:
		// the eight compares are independent chains the CPU overlaps, and
		// only the merge into m needs a variable shift.
		var m uint64
		for base := 0; base < 64; base += 8 {
			v := vals[base : base+8 : base+8]
			_, b0 := bits.Sub64(span, uint64(v[0])-rmin, 0)
			_, b1 := bits.Sub64(span, uint64(v[1])-rmin, 0)
			_, b2 := bits.Sub64(span, uint64(v[2])-rmin, 0)
			_, b3 := bits.Sub64(span, uint64(v[3])-rmin, 0)
			_, b4 := bits.Sub64(span, uint64(v[4])-rmin, 0)
			_, b5 := bits.Sub64(span, uint64(v[5])-rmin, 0)
			_, b6 := bits.Sub64(span, uint64(v[6])-rmin, 0)
			_, b7 := bits.Sub64(span, uint64(v[7])-rmin, 0)
			mb := (b0 ^ 1) | (b1^1)<<1 | (b2^1)<<2 | (b3^1)<<3 |
				(b4^1)<<4 | (b5^1)<<5 | (b6^1)<<6 | (b7^1)<<7
			m |= mb << uint(base)
		}
		sel[wi] = w & m
	}
}

// ScanExactRange accumulates rows [start, end) that are all known to match
// (an exact sub-range, §7.1): no per-row filter checks are performed. With a
// control attached, the range is truncated to the remaining limit budget and
// skipped entirely once a stop has latched; the aggregator call itself is
// uninterruptible, so cancellation granularity on exact ranges is one range
// (one morsel, on the parallel path).
func (s *Scanner) ScanExactRange(start, end int, agg Aggregator) (scanned, matched int64) {
	if start >= end {
		return 0, 0
	}
	if s.tomb != nil {
		return s.scanLiveRange(start, end, agg)
	}
	n := end - start
	if s.ctl != nil {
		if s.ctl.Check() {
			return 0, 0
		}
		n = s.ctl.Take(n)
		if n == 0 {
			return 0, 0
		}
	}
	agg.AddExactRange(s.t, start, start+n)
	return int64(n), int64(n)
}
