package query

import "flood/internal/colstore"

// Scanner executes the scan-and-filter phase shared by every index. It scans
// physical row ranges of a table, decoding only the columns present in the
// query filter (§7.2: "only the columns present in the query filter are
// accessed"), and feeds matching rows to the aggregator.
//
// A Scanner is not safe for concurrent use; indexes create one per Execute.
type Scanner struct {
	t    *colstore.Table
	bufs [][colstore.BlockSize]int64
}

// NewScanner returns a scanner over t.
func NewScanner(t *colstore.Table) *Scanner {
	return &Scanner{t: t, bufs: make([][colstore.BlockSize]int64, t.NumCols())}
}

// ScanRange scans rows [start, end), filter-checking the dims listed in
// filterDims against q, and returns (scanned, matched). filterDims must list
// only dims with q.Ranges[dim].Present. Matching rows go to agg.
func (s *Scanner) ScanRange(q Query, filterDims []int, start, end int, agg Aggregator) (scanned, matched int64) {
	if start >= end {
		return 0, 0
	}
	if len(filterDims) == 0 {
		// Everything in the range matches: treat as exact.
		agg.AddExactRange(s.t, start, end)
		n := int64(end - start)
		return n, n
	}
	firstBlock := start / colstore.BlockSize
	lastBlock := (end - 1) / colstore.BlockSize
	for b := firstBlock; b <= lastBlock; b++ {
		blockLo := b * colstore.BlockSize
		var cnt int
		for _, d := range filterDims {
			cnt = s.t.Column(d).DecodeBlock(b, s.bufs[d][:])
		}
		i0, i1 := 0, cnt
		if blockLo < start {
			i0 = start - blockLo
		}
		if blockLo+cnt > end {
			i1 = end - blockLo
		}
	rows:
		for i := i0; i < i1; i++ {
			for _, d := range filterDims {
				v := s.bufs[d][i]
				r := q.Ranges[d]
				if v < r.Min || v > r.Max {
					continue rows
				}
			}
			agg.Add(s.t, blockLo+i)
			matched++
		}
		scanned += int64(i1 - i0)
	}
	return scanned, matched
}

// ScanExactRange accumulates rows [start, end) that are all known to match
// (an exact sub-range, §7.1): no per-row filter checks are performed.
func (s *Scanner) ScanExactRange(start, end int, agg Aggregator) (scanned, matched int64) {
	if start >= end {
		return 0, 0
	}
	agg.AddExactRange(s.t, start, end)
	n := int64(end - start)
	return n, n
}
