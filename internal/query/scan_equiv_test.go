package query

import (
	"math/rand"
	"testing"
	"time"

	"flood/internal/colstore"
)

// equivTable builds a random table mixing bitmap-indexable low-cardinality
// dims with wide ones, then enables bitmap indexes so the bitmap kernel takes
// the precomputed-AND path on the low-card dims while the scalar kernel
// decodes everything.
func equivTable(rng *rand.Rand, n int) (*colstore.Table, [][]int64) {
	cards := []int64{4, 13, 1 << 20, 50} // dims 0,1 indexed; 2 wide; 3 indexed
	data := make([][]int64, len(cards))
	for c, card := range cards {
		data[c] = make([]int64, n)
		for i := range data[c] {
			data[c][i] = rng.Int63n(card) - card/2
		}
	}
	names := []string{"a", "b", "c", "d"}
	tbl, err := colstore.NewTable(names, data)
	if err != nil {
		panic(err)
	}
	tbl.EnableBitmapIndexes(64)
	return tbl, data
}

// equivQuery draws a random predicate: per dim, one of unfiltered, a narrow
// range, an equality, a full-range accept, or an empty range.
func equivQuery(rng *rand.Rand) Query {
	q := NewQuery(4)
	cards := []int64{4, 13, 1 << 20, 50}
	for d, card := range cards {
		lo := -card / 2
		switch rng.Intn(6) {
		case 0: // unfiltered
		case 1: // narrow range
			a := lo + rng.Int63n(card)
			q = q.WithRange(d, a, a+rng.Int63n(card/2+1))
		case 2: // equality
			q = q.WithEquals(d, lo+rng.Int63n(card))
		case 3: // contains the whole domain (zone maps exact-accept)
			q = q.WithRange(d, NegInf, PosInf)
		case 4: // half-open
			q = q.WithRange(d, lo+rng.Int63n(card), PosInf)
		case 5: // matches nothing
			q = q.WithRange(d, lo+2*card, lo+3*card)
		}
	}
	return q
}

// runKernel scans [start, end) with the chosen kernel and an optional row
// limit, returning the collected ids and stats.
func runKernel(t *colstore.Table, q Query, start, end, limit int, scalar bool) ([]int64, int64, int64) {
	sc := NewScanner(t)
	sc.SetScalarKernel(scalar)
	var ctl *Control
	if limit > 0 {
		ctl = GetControl(nil, limit, time.Time{})
		sc.SetControl(ctl)
		defer ctl.Release()
	}
	rc := NewRowCollector()
	rc.PinSource(t)
	scanned, matched := sc.ScanRange(q, q.FilteredDims(), start, end, rc)
	ids := append([]int64(nil), rc.IDs()...)
	return ids, scanned, matched
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBitmapKernelEquivalence is the cross-kernel property test: over random
// tables (sizes straddling block boundaries, including sub-block tables),
// random predicates (empty, full, narrow, equality), and random scan bounds,
// the word-packed bitmap kernel and the selection-vector scalar kernel must
// deliver the identical matched rows in the identical order with identical
// stats.
func TestBitmapKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := []int{
		1, 63, 64, 65,
		colstore.BlockSize - 1, colstore.BlockSize, colstore.BlockSize + 1,
		3*colstore.BlockSize + 17, 8 * colstore.BlockSize,
	}
	for _, n := range sizes {
		tbl, data := equivTable(rng, n)
		for trial := 0; trial < 60; trial++ {
			q := equivQuery(rng)
			start := rng.Intn(n)
			end := start + 1 + rng.Intn(n-start)
			gotIDs, gotScanned, gotMatched := runKernel(tbl, q, start, end, 0, false)
			wantIDs, wantScanned, wantMatched := runKernel(tbl, q, start, end, 0, true)
			if !equalIDs(gotIDs, wantIDs) {
				t.Fatalf("n=%d trial=%d [%d,%d): bitmap ids %v != scalar ids %v (query %+v)",
					n, trial, start, end, gotIDs, wantIDs, q.Ranges)
			}
			if gotScanned != wantScanned || gotMatched != wantMatched {
				t.Fatalf("n=%d trial=%d: stats (%d,%d) != (%d,%d)",
					n, trial, gotScanned, gotMatched, wantScanned, wantMatched)
			}
			// And both kernels agree with the row-by-row oracle.
			var want int64
			row := make([]int64, len(data))
			for i := start; i < end; i++ {
				for c := range data {
					row[c] = data[c][i]
				}
				if q.Matches(row) {
					want++
				}
			}
			if gotMatched != want {
				t.Fatalf("n=%d trial=%d: matched %d, brute force %d", n, trial, gotMatched, want)
			}
		}
	}
}

// TestBitmapKernelEquivalenceLimit checks LIMIT pushdown: with a delivery
// budget attached, both kernels deliver the same prefix of the same survivor
// sequence.
func TestBitmapKernelEquivalenceLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 6*colstore.BlockSize + 29
	tbl, _ := equivTable(rng, n)
	for trial := 0; trial < 120; trial++ {
		q := equivQuery(rng)
		limit := 1 + rng.Intn(2*colstore.BlockSize)
		gotIDs, _, gotMatched := runKernel(tbl, q, 0, n, limit, false)
		wantIDs, _, wantMatched := runKernel(tbl, q, 0, n, limit, true)
		if !equalIDs(gotIDs, wantIDs) || gotMatched != wantMatched {
			t.Fatalf("trial=%d limit=%d: bitmap (%d ids, matched %d) != scalar (%d ids, matched %d)",
				trial, limit, len(gotIDs), gotMatched, len(wantIDs), wantMatched)
		}
		if len(gotIDs) > limit {
			t.Fatalf("trial=%d: delivered %d ids over limit %d", trial, len(gotIDs), limit)
		}
		// The limited run must be a prefix of the unlimited one.
		fullIDs, _, _ := runKernel(tbl, q, 0, n, 0, false)
		if want := min(limit, len(fullIDs)); len(gotIDs) != want || !equalIDs(gotIDs, fullIDs[:want]) {
			t.Fatalf("trial=%d limit=%d: limited ids are not the unlimited prefix", trial, limit)
		}
	}
}

// TestBitmapKernelAggregates runs both kernels through each built-in
// aggregator (exercising the run-length fast paths) and compares results.
func TestBitmapKernelAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	n := 5*colstore.BlockSize + 7
	tbl, _ := equivTable(rng, n)
	aggs := func() []Mergeable {
		return []Mergeable{NewCount(), NewSum(2), NewMin(2), NewMax(2)}
	}
	for trial := 0; trial < 60; trial++ {
		q := equivQuery(rng)
		got, want := aggs(), aggs()
		for i := range got {
			sc := NewScanner(tbl)
			sc.ScanRange(q, q.FilteredDims(), 0, n, got[i])
			sc.SetScalarKernel(true)
			sc.ScanRange(q, q.FilteredDims(), 0, n, want[i])
			if got[i].Result() != want[i].Result() {
				t.Fatalf("trial=%d agg=%T: bitmap %d != scalar %d", trial, got[i], got[i].Result(), want[i].Result())
			}
		}
	}
}

// TestAndCompareMaskEdges pins the branchless compare mask on its wrap-prone
// inputs: unbounded ranges (span wraps to ^0), single-value spans, and
// extreme int64 values.
func TestAndCompareMaskEdges(t *testing.T) {
	vals := make([]int64, colstore.BlockSize)
	for i := range vals {
		vals[i] = int64(i - 64)
	}
	vals[0], vals[1] = -1<<63, 1<<63-1
	check := func(lo, hi int64) {
		var sel colstore.BlockBitmap
		selInit(&sel, 0, colstore.BlockSize)
		andCompareMask(&sel, vals, uint64(lo), uint64(hi)-uint64(lo))
		for i, v := range vals {
			want := v >= lo && v <= hi
			got := sel[i/64]&(1<<uint(i%64)) != 0
			if got != want {
				t.Fatalf("[%d,%d] row %d (v=%d): got %v want %v", lo, hi, i, v, got, want)
			}
		}
	}
	check(NegInf, PosInf)
	check(0, 0)
	check(-1<<63, -1<<63)
	check(1<<63-1, 1<<63-1)
	check(-10, 10)
	check(NegInf, 0)
	check(0, PosInf)
}

// TestSelInitMaskBounds pins the selection-bitmap initializer across all
// partial-block bounds.
func TestSelInitMaskBounds(t *testing.T) {
	for i0 := 0; i0 <= colstore.BlockSize; i0 += 7 {
		for i1 := i0; i1 <= colstore.BlockSize; i1 += 9 {
			var sel colstore.BlockBitmap
			selInit(&sel, i0, i1)
			if got, want := selCount(&sel), i1-i0; got != want {
				t.Fatalf("selInit(%d,%d): %d bits set, want %d", i0, i1, got, want)
			}
			for i := 0; i < colstore.BlockSize; i++ {
				set := sel[i/64]&(1<<uint(i%64)) != 0
				if set != (i >= i0 && i < i1) {
					t.Fatalf("selInit(%d,%d): bit %d = %v", i0, i1, i, set)
				}
			}
		}
	}
}

// tombWords builds a tombstone bitmap over n rows where each row is dead
// with probability density, returning the packed words, the per-row dead
// flags, and the actual dead count.
func tombWords(rng *rand.Rand, n int, density float64) ([]uint64, []bool, int) {
	words := make([]uint64, (n+63)/64)
	dead := make([]bool, n)
	count := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			words[i>>6] |= 1 << uint(i&63)
			dead[i] = true
			count++
		}
	}
	return words, dead, count
}

// runKernelTomb is runKernel with a tombstone mask attached.
func runKernelTomb(t *colstore.Table, q Query, tomb []uint64, start, end, limit int, scalar bool) ([]int64, int64, int64) {
	sc := NewScanner(t)
	sc.SetScalarKernel(scalar)
	sc.SetTombstones(tomb)
	var ctl *Control
	if limit > 0 {
		ctl = GetControl(nil, limit, time.Time{})
		sc.SetControl(ctl)
		defer ctl.Release()
	}
	rc := NewRowCollector()
	rc.PinSource(t)
	scanned, matched := sc.ScanRange(q, q.FilteredDims(), start, end, rc)
	ids := append([]int64(nil), rc.IDs()...)
	return ids, scanned, matched
}

// TestBitmapKernelEquivalenceTombstones extends the cross-kernel property to
// deletion masking: at tombstone densities from none to nearly-everything,
// both kernels must deliver identical survivors, stats, aggregates, and
// LIMIT prefixes, and must never deliver a tombstoned row.
func TestBitmapKernelEquivalenceTombstones(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	n := 6*colstore.BlockSize + 29
	tbl, data := equivTable(rng, n)
	for _, density := range []float64{0, 0.01, 0.5, 0.99} {
		words, dead, _ := tombWords(rng, n, density)
		for trial := 0; trial < 40; trial++ {
			q := equivQuery(rng)
			start := rng.Intn(n)
			end := start + 1 + rng.Intn(n-start)
			gotIDs, gotScanned, gotMatched := runKernelTomb(tbl, q, words, start, end, 0, false)
			wantIDs, wantScanned, wantMatched := runKernelTomb(tbl, q, words, start, end, 0, true)
			if !equalIDs(gotIDs, wantIDs) {
				t.Fatalf("density=%v trial=%d [%d,%d): bitmap ids %v != scalar ids %v (query %+v)",
					density, trial, start, end, gotIDs, wantIDs, q.Ranges)
			}
			if gotScanned != wantScanned || gotMatched != wantMatched {
				t.Fatalf("density=%v trial=%d: stats (%d,%d) != (%d,%d)",
					density, trial, gotScanned, gotMatched, wantScanned, wantMatched)
			}
			// Brute-force oracle over live rows only.
			var want int64
			row := make([]int64, len(data))
			for i := start; i < end; i++ {
				if dead[i] {
					continue
				}
				for c := range data {
					row[c] = data[c][i]
				}
				if q.Matches(row) {
					want++
				}
			}
			if gotMatched != want {
				t.Fatalf("density=%v trial=%d: matched %d, live brute force %d", density, trial, gotMatched, want)
			}
			for _, id := range gotIDs {
				if dead[id] {
					t.Fatalf("density=%v trial=%d: delivered tombstoned row %d", density, trial, id)
				}
			}
			// LIMIT prefixes agree across kernels and with the full run.
			limit := 1 + rng.Intn(colstore.BlockSize)
			limIDs, _, limMatched := runKernelTomb(tbl, q, words, start, end, limit, false)
			scalIDs, _, scalMatched := runKernelTomb(tbl, q, words, start, end, limit, true)
			if !equalIDs(limIDs, scalIDs) || limMatched != scalMatched {
				t.Fatalf("density=%v trial=%d limit=%d: kernels disagree under limit", density, trial, limit)
			}
			if wantLen := min(limit, len(gotIDs)); len(limIDs) != wantLen || !equalIDs(limIDs, gotIDs[:wantLen]) {
				t.Fatalf("density=%v trial=%d limit=%d: limited ids are not the unlimited prefix", density, trial, limit)
			}
		}
		// Aggregates through the run-length fast paths agree too.
		for trial := 0; trial < 20; trial++ {
			q := equivQuery(rng)
			for _, mk := range []func() Mergeable{
				func() Mergeable { return NewCount() },
				func() Mergeable { return NewSum(2) },
			} {
				got, want := mk(), mk()
				sc := NewScanner(tbl)
				sc.SetTombstones(words)
				sc.ScanRange(q, q.FilteredDims(), 0, n, got)
				sc2 := NewScanner(tbl)
				sc2.SetScalarKernel(true)
				sc2.SetTombstones(words)
				sc2.ScanRange(q, q.FilteredDims(), 0, n, want)
				if got.Result() != want.Result() {
					t.Fatalf("density=%v trial=%d agg=%T: bitmap %d != scalar %d",
						density, trial, got, got.Result(), want.Result())
				}
			}
		}
	}
}
