package query

import (
	"context"
	"time"
)

// Stats instruments one query execution. The fields follow the performance
// breakdown of Table 2 in the paper.
type Stats struct {
	Scanned       int64 // points visited during the scan phase
	Matched       int64 // points satisfying the full predicate (result size)
	ExactMatched  int64 // matched points that lay in exact sub-ranges (§7.1)
	CellsVisited  int64 // non-empty cells/pages whose physical ranges were processed
	RangesRefined int64 // cells on which sort-dimension refinement ran
	ScanRanges    int64 // physical ranges handed to the scan phase (post-coalescing)

	IndexTime   time.Duration // projection + refinement (IT)
	ProjectTime time.Duration // projection only (subset of IndexTime; Flood only)
	RefineTime  time.Duration // refinement only (subset of IndexTime; Flood only)
	ScanTime    time.Duration // scan + filter (ST)
	Total       time.Duration // end-to-end (TT)
}

// ScanOverhead is the ratio of points scanned to points matched (SO in
// Table 2). Returns +Inf-like large value when nothing matched but points
// were scanned; 1 when the scan was perfectly tight; 0 for empty scans.
func (s Stats) ScanOverhead() float64 {
	if s.Matched == 0 {
		if s.Scanned == 0 {
			return 0
		}
		return float64(s.Scanned)
	}
	return float64(s.Scanned) / float64(s.Matched)
}

// TimePerScan is the average scan time per scanned point in nanoseconds (TPS
// in Table 2).
func (s Stats) TimePerScan() float64 {
	if s.Scanned == 0 {
		return 0
	}
	return float64(s.ScanTime.Nanoseconds()) / float64(s.Scanned)
}

// Add accumulates another execution's stats into s (for workload averages).
func (s *Stats) Add(o Stats) {
	s.Scanned += o.Scanned
	s.Matched += o.Matched
	s.ExactMatched += o.ExactMatched
	s.CellsVisited += o.CellsVisited
	s.RangesRefined += o.RangesRefined
	s.ScanRanges += o.ScanRanges
	s.IndexTime += o.IndexTime
	s.ProjectTime += o.ProjectTime
	s.RefineTime += o.RefineTime
	s.ScanTime += o.ScanTime
	s.Total += o.Total
}

// Index is the contract satisfied by Flood and every baseline: execute a
// hyper-rectangle predicate, feeding matching rows to agg, and report
// instrumentation. SizeBytes covers index metadata only (not the stored
// data), matching the index-size axis of Fig. 8.
//
// ExecuteContext is Execute under the caller's context: execution stops
// cooperatively (at block-group and morsel boundaries) once the context is
// canceled or its deadline passes, returning the partial Stats together
// with ErrCanceled. An already-expired context returns promptly without
// scanning. ExecuteContext(context.Background(), q, agg) behaves exactly
// like Execute.
type Index interface {
	Name() string
	Execute(q Query, agg Aggregator) Stats
	ExecuteContext(ctx context.Context, q Query, agg Aggregator) (Stats, error)
	SizeBytes() int64
}

// ControlIndex is implemented by indexes whose execution can thread an
// externally owned Control, so one cancellation signal and one shared LIMIT
// budget span several executions (the disjoint pieces of an OR, the base
// and delta scans of a composite index). ExecuteControl with a nil control
// is identical to Execute.
type ControlIndex interface {
	Index
	ExecuteControl(ctl *Control, q Query, agg Aggregator) Stats
}

// BatchIndex is implemented by indexes that can execute many queries in one
// call, sharing a worker pool across them (§8). ExecuteBatch runs
// queries[i] into aggs[i] — len(queries) must equal len(aggs) — and returns
// per-query stats; results are identical to executing the queries one by
// one. ExecuteDisjunction routes multi-rectangle queries through this
// interface when the index offers it.
//
// ExecuteBatchContext is ExecuteBatch under the caller's context: one
// cancellation stops every query in the batch, queries not yet started are
// skipped (their Stats stay zero), and the partial per-query stats are
// returned with ErrCanceled.
type BatchIndex interface {
	Index
	ExecuteBatch(queries []Query, aggs []Aggregator) []Stats
	ExecuteBatchContext(ctx context.Context, queries []Query, aggs []Aggregator) ([]Stats, error)
}
