// Package rforest implements random forest regression (bagged CART trees
// with per-split feature subsampling). Flood's cost model uses it to predict
// the weight parameters {wp, wr, ws} of Eq. 1 from per-query statistics
// (§4.1.1); the paper used Python's Scipy, which this stdlib-only
// implementation replaces.
package rforest

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config controls forest training.
type Config struct {
	NumTrees    int     // number of bagged trees (default 20)
	MaxDepth    int     // maximum tree depth (default 12)
	MinLeaf     int     // minimum samples per leaf (default 2)
	FeatureFrac float64 // fraction of features considered per split (default 1/3, min 1)
	Seed        int64   // RNG seed for bootstrapping and feature sampling
}

// DefaultConfig returns the configuration used by the cost model.
func DefaultConfig() Config {
	return Config{NumTrees: 20, MaxDepth: 12, MinLeaf: 2, FeatureFrac: 0.4}
}

func (c Config) withDefaults() Config {
	if c.NumTrees <= 0 {
		c.NumTrees = 20
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.FeatureFrac <= 0 || c.FeatureFrac > 1 {
		c.FeatureFrac = 0.4
	}
	return c
}

type node struct {
	feature int32 // -1 for leaf
	left    int32
	right   int32
	thresh  float64
	value   float64 // leaf prediction
}

type tree struct {
	nodes []node
}

// Forest is a trained random forest regressor.
type Forest struct {
	trees     []tree
	nFeatures int
}

// Train fits a forest on feature matrix x (row-major, one row per sample)
// and targets y. All rows must have the same width.
func Train(x [][]float64, y []float64, cfg Config) (*Forest, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("rforest: %d samples, %d targets", len(x), len(y))
	}
	nf := len(x[0])
	for i, row := range x {
		if len(row) != nf {
			return nil, fmt.Errorf("rforest: row %d has %d features, want %d", i, len(row), nf)
		}
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{trees: make([]tree, cfg.NumTrees), nFeatures: nf}
	nSplitFeats := int(math.Ceil(cfg.FeatureFrac * float64(nf)))
	if nSplitFeats < 1 {
		nSplitFeats = 1
	}
	for t := range f.trees {
		// Bootstrap sample.
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = rng.Intn(len(x))
		}
		b := &treeBuilder{
			x: x, y: y,
			cfg:        cfg,
			rng:        rand.New(rand.NewSource(rng.Int63())),
			splitFeats: nSplitFeats,
		}
		b.build(idx, 0)
		f.trees[t] = tree{nodes: b.nodes}
	}
	return f, nil
}

// Predict returns the forest's prediction (mean over trees) for one feature
// vector.
func (f *Forest) Predict(x []float64) float64 {
	var s float64
	for i := range f.trees {
		s += f.trees[i].predict(x)
	}
	return s / float64(len(f.trees))
}

// NumFeatures returns the feature width the forest was trained with.
func (f *Forest) NumFeatures() int { return f.nFeatures }

func (t *tree) predict(x []float64) float64 {
	i := int32(0)
	for {
		n := t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.thresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}

type treeBuilder struct {
	x          [][]float64
	y          []float64
	cfg        Config
	rng        *rand.Rand
	splitFeats int
	nodes      []node
}

// build grows the subtree over samples idx and returns its node index.
func (b *treeBuilder) build(idx []int, depth int) int32 {
	self := int32(len(b.nodes))
	b.nodes = append(b.nodes, node{feature: -1})
	mean := b.mean(idx)
	if depth >= b.cfg.MaxDepth || len(idx) < 2*b.cfg.MinLeaf || b.constant(idx) {
		b.nodes[self].value = mean
		return self
	}
	feat, thresh, ok := b.bestSplit(idx)
	if !ok {
		b.nodes[self].value = mean
		return self
	}
	var left, right []int
	for _, i := range idx {
		if b.x[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinLeaf || len(right) < b.cfg.MinLeaf {
		b.nodes[self].value = mean
		return self
	}
	li := b.build(left, depth+1)
	ri := b.build(right, depth+1)
	b.nodes[self] = node{feature: int32(feat), left: li, right: ri, thresh: thresh}
	return self
}

func (b *treeBuilder) mean(idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += b.y[i]
	}
	return s / float64(len(idx))
}

func (b *treeBuilder) constant(idx []int) bool {
	for _, i := range idx[1:] {
		if b.y[i] != b.y[idx[0]] {
			return false
		}
	}
	return true
}

// bestSplit finds the (feature, threshold) minimizing the children's summed
// squared error over a random feature subset.
func (b *treeBuilder) bestSplit(idx []int) (feat int, thresh float64, ok bool) {
	nf := len(b.x[0])
	feats := b.rng.Perm(nf)[:b.splitFeats]
	bestGain := math.Inf(-1)
	// Parent SSE terms.
	var pSum, pSumSq float64
	for _, i := range idx {
		pSum += b.y[i]
		pSumSq += b.y[i] * b.y[i]
	}
	n := float64(len(idx))
	parentSSE := pSumSq - pSum*pSum/n
	order := make([]int, len(idx))
	for _, f := range feats {
		copy(order, idx)
		sort.Slice(order, func(a, c int) bool { return b.x[order[a]][f] < b.x[order[c]][f] })
		var lSum, lSumSq float64
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			lSum += b.y[i]
			lSumSq += b.y[i] * b.y[i]
			// Can't split between equal feature values.
			if b.x[order[k]][f] == b.x[order[k+1]][f] {
				continue
			}
			ln := float64(k + 1)
			rn := n - ln
			rSum := pSum - lSum
			rSumSq := pSumSq - lSumSq
			sse := (lSumSq - lSum*lSum/ln) + (rSumSq - rSum*rSum/rn)
			gain := parentSSE - sse
			if gain > bestGain {
				bestGain = gain
				feat = f
				thresh = (b.x[order[k]][f] + b.x[order[k+1]][f]) / 2
				ok = true
			}
		}
	}
	return feat, thresh, ok
}
