package rforest

import (
	"math"
	"math/rand"
	"testing"
)

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("want error for empty training set")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, Config{}); err == nil {
		t.Fatal("want error for mismatched lengths")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []float64{1, 2}, Config{}); err == nil {
		t.Fatal("want error for ragged rows")
	}
}

func TestConstantTarget(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	y := []float64{5, 5, 5, 5}
	f, err := Train(x, y, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{100, -100}); got != 5 {
		t.Fatalf("constant target predicted %f, want 5", got)
	}
}

func TestLearnsStepFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b})
		if a > 5 {
			y = append(y, 100)
		} else {
			y = append(y, 1)
		}
	}
	f, err := Train(x, y, Config{NumTrees: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p := f.Predict([]float64{9, 5}); math.Abs(p-100) > 15 {
		t.Fatalf("Predict(a=9) = %f, want ~100", p)
	}
	if p := f.Predict([]float64{1, 5}); math.Abs(p-1) > 15 {
		t.Fatalf("Predict(a=1) = %f, want ~1", p)
	}
}

func TestLearnsNonLinearInteraction(t *testing.T) {
	// y = a*b, the kind of interdependence §4.1.2 argues needs ML.
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []float64
	for i := 0; i < 2000; i++ {
		a, b := rng.Float64()*4, rng.Float64()*4
		x = append(x, []float64{a, b})
		y = append(y, a*b)
	}
	f, err := Train(x, y, Config{NumTrees: 25, MaxDepth: 14, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sse, sst float64
	var meanY float64
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(len(y))
	for i := range x {
		d := f.Predict(x[i]) - y[i]
		sse += d * d
		m := y[i] - meanY
		sst += m * m
	}
	if r2 := 1 - sse/sst; r2 < 0.9 {
		t.Fatalf("R^2 = %f on y=a*b, want >= 0.9", r2)
	}
}

func TestPredictionsWithinTargetRange(t *testing.T) {
	// Tree means can never extrapolate outside the observed target range.
	rng := rand.New(rand.NewSource(6))
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
		y = append(y, rng.Float64()*7+3)
	}
	f, err := Train(x, y, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p := f.Predict([]float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10})
		if p < 3 || p > 10 {
			t.Fatalf("prediction %f outside target range [3, 10]", p)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64()})
		y = append(y, rng.Float64())
	}
	f1, _ := Train(x, y, Config{Seed: 42})
	f2, _ := Train(x, y, Config{Seed: 42})
	for i := 0; i < 20; i++ {
		probe := []float64{rng.Float64(), rng.Float64()}
		if f1.Predict(probe) != f2.Predict(probe) {
			t.Fatal("same seed must give identical forests")
		}
	}
}

func TestSingleSample(t *testing.T) {
	f, err := Train([][]float64{{1, 2, 3}}, []float64{9}, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if f.Predict([]float64{0, 0, 0}) != 9 {
		t.Fatal("single-sample forest should predict the sample")
	}
	if f.NumFeatures() != 3 {
		t.Fatalf("NumFeatures = %d", f.NumFeatures())
	}
}

func BenchmarkForestPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	var x [][]float64
	var y []float64
	for i := 0; i < 2000; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()})
		y = append(y, rng.Float64())
	}
	f, _ := Train(x, y, Config{Seed: 11})
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += f.Predict(x[i%len(x)])
	}
	_ = sink
}
