package rmi

import (
	"fmt"

	"flood/internal/wire"
)

// Encode serializes the CDF model.
func (m *CDF) Encode(w *wire.Writer) {
	w.Tag("CDF1")
	w.F64(m.root.slope)
	w.F64(m.root.intercept)
	w.I64(m.minV)
	w.I64(m.maxV)
	w.Int(len(m.leaves))
	for _, lf := range m.leaves {
		w.F64(lf.model.slope)
		w.F64(lf.model.intercept)
		w.F64(lf.lo)
		w.F64(lf.hi)
	}
}

// DecodeCDF reads a CDF model written by Encode.
func DecodeCDF(r *wire.Reader) (*CDF, error) {
	r.Expect("CDF1")
	m := &CDF{}
	m.root.slope = r.F64()
	m.root.intercept = r.F64()
	m.minV = r.I64()
	m.maxV = r.I64()
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("rmi: decoding CDF header: %w", err)
	}
	if n < 1 {
		return nil, fmt.Errorf("rmi: CDF with %d leaves", n)
	}
	// Grow incrementally: a corrupt leaf count must run out of input, not
	// allocate the declared size up front.
	m.leaves = make([]cdfLeaf, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		var lf cdfLeaf
		lf.model.slope = r.F64()
		lf.model.intercept = r.F64()
		lf.lo = r.F64()
		lf.hi = r.F64()
		if r.Err() != nil {
			break
		}
		m.leaves = append(m.leaves, lf)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("rmi: decoding CDF leaves: %w", err)
	}
	return m, nil
}
