package rmi

import "sort"

type posLeaf struct {
	model          linear
	minErr, maxErr int32 // bounds of (true - predicted) over the leaf's keys
}

// PositionIndex is a learned index over a sorted array: Lookup(v) returns the
// index of the first element >= v by predicting a position and then binary
// searching within the leaf's guaranteed error window. This is the RMI-based
// replacement for a B-tree used by the clustered single-dimensional baseline
// (Appendix A) and the RMI contender of Fig. 17.
type PositionIndex struct {
	root   linear
	leaves []posLeaf
	keys   []int64 // the sorted array being indexed (not owned)
	n      int
}

// TrainPosition builds a position index over sorted (ascending). The slice is
// retained and must not be mutated. numLeaves is clamped to [1, len(sorted)].
func TrainPosition(sorted []int64, numLeaves int) *PositionIndex {
	n := len(sorted)
	idx := &PositionIndex{keys: sorted, n: n}
	if n == 0 {
		idx.root = linear{}
		idx.leaves = []posLeaf{{}}
		return idx
	}
	if numLeaves < 1 {
		numLeaves = 1
	}
	if numLeaves > n {
		numLeaves = n
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, v := range sorted {
		xs[i] = float64(v)
		ys[i] = float64(i)
	}
	// Root routes keys to leaves through a monotone linear model over
	// normalized positions.
	rootFit := fitMonotone(xs, ys)
	idx.root = linear{slope: rootFit.slope / float64(n), intercept: rootFit.intercept / float64(n)}
	idx.leaves = make([]posLeaf, numLeaves)
	start := 0
	for leaf := 0; leaf < numLeaves; leaf++ {
		end := start
		for end < n && idx.leafFor(sorted[end]) == leaf {
			end++
		}
		if start == end {
			// Empty leaf: predict the boundary position exactly.
			idx.leaves[leaf] = posLeaf{model: linear{0, float64(start)}}
			continue
		}
		lm := fitLinear(xs[start:end], ys[start:end])
		minE, maxE := int32(0), int32(0)
		for i := start; i < end; i++ {
			e := i - clampInt(int(lm.at(xs[i])), 0, n-1)
			if int32(e) < minE {
				minE = int32(e)
			}
			if int32(e) > maxE {
				maxE = int32(e)
			}
		}
		idx.leaves[leaf] = posLeaf{model: lm, minErr: minE, maxErr: maxE}
		start = end
	}
	return idx
}

func (p *PositionIndex) leafFor(v int64) int {
	return clampInt(int(p.root.at(float64(v))*float64(len(p.leaves))), 0, len(p.leaves)-1)
}

// Lookup returns the index of the first element >= v (sort.SearchInt64s
// semantics) in O(log windowSize) after an O(1) prediction.
func (p *PositionIndex) Lookup(v int64) int {
	return p.LookupAt(func(i int) int64 { return p.keys[i] }, v)
}

// LookupAt is Lookup with values reached through an accessor (e.g. a
// compressed column holding the same sorted data the index was trained on).
// Combined with DropKeys it lets callers avoid retaining a decoded copy of
// the keys.
func (p *PositionIndex) LookupAt(at func(int) int64, v int64) int {
	if p.n == 0 {
		return 0
	}
	lf := p.leaves[p.leafFor(v)]
	pred := clampInt(int(lf.model.at(float64(v))), 0, p.n-1)
	lo := clampInt(pred+int(lf.minErr), 0, p.n)
	hi := clampInt(pred+int(lf.maxErr)+1, 0, p.n)
	// The error bounds hold for keys the leaf saw at training time; for
	// unseen keys, exponentially widen until the window brackets the
	// answer: keys[lo] < v (or lo == 0) and keys[hi-1] >= v (or hi == n).
	width := 1
	for lo > 0 && at(lo) >= v {
		lo -= width
		width <<= 1
		if lo < 0 {
			lo = 0
		}
	}
	width = 1
	for hi < p.n && at(hi-1) < v {
		hi += width
		width <<= 1
		if hi > p.n {
			hi = p.n
		}
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return at(lo+i) >= v })
}

// DropKeys releases the index's reference to the training array. After this
// only LookupAt may be used.
func (p *PositionIndex) DropKeys() { p.keys = nil }

// SizeBytes reports the model footprint (excluding the indexed keys, which
// belong to the data).
func (p *PositionIndex) SizeBytes() int64 {
	return int64(16 + len(p.leaves)*24)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
