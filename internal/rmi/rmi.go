// Package rmi implements Recursive Model Indexes (Kraska et al., SIGMOD'18)
// as used by Flood: monotone per-dimension CDF models that drive grid
// flattening (§5.1), and position indexes with error bounds that implement
// the learned clustered single-dimensional baseline (§7.2, Appendix A).
//
// Models are two-layer: a linear root routes a key to one of L leaves, and
// each leaf is a linear regression over the keys it owns. For CDF models the
// leaves are slope-clamped and range-clamped so the model is monotone
// non-decreasing — the property §6 requires for partitioning points into
// columns.
package rmi

import "slices"

type linear struct {
	slope, intercept float64
}

func (l linear) at(v float64) float64 { return l.slope*v + l.intercept }

// fitLinear least-squares fits y = a*x + b over the given points. A
// degenerate x-range yields a flat line through the mean y.
func fitLinear(xs, ys []float64) linear {
	n := float64(len(xs))
	if len(xs) == 0 {
		return linear{}
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return linear{slope: 0, intercept: sy / n}
	}
	a := (n*sxy - sx*sy) / den
	b := (sy - a*sx) / n
	return linear{slope: a, intercept: b}
}

// fitMonotone fits a linear model but clamps the slope to be non-negative,
// preserving monotonicity for CDF use.
func fitMonotone(xs, ys []float64) linear {
	l := fitLinear(xs, ys)
	if l.slope < 0 {
		var sy float64
		for _, y := range ys {
			sy += y
		}
		return linear{slope: 0, intercept: sy / float64(len(ys))}
	}
	return l
}

type cdfLeaf struct {
	model  linear
	lo, hi float64 // clamp range: the true CDF span of this leaf
}

// CDF is a monotone model of a single attribute's cumulative distribution.
// At(v) approximates P(X <= v) in [0, 1].
type CDF struct {
	root   linear
	leaves []cdfLeaf
	minV   int64
	maxV   int64
}

// TrainCDF fits a CDF model to values (need not be sorted; a sorted copy is
// made). numLeaves controls model capacity; it is clamped to [1, len(values)].
func TrainCDF(values []int64, numLeaves int) *CDF {
	if len(values) == 0 {
		return &CDF{leaves: []cdfLeaf{{model: linear{}, lo: 0, hi: 1}}}
	}
	sorted := append([]int64(nil), values...)
	slices.Sort(sorted)
	if numLeaves < 1 {
		numLeaves = 1
	}
	if numLeaves > len(sorted) {
		numLeaves = len(sorted)
	}
	n := len(sorted)
	// Empirical CDF points: (v_i, (i+1)/n). Using the upper rank makes
	// At(max) ~ 1.
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, v := range sorted {
		xs[i] = float64(v)
		ys[i] = float64(i+1) / float64(n)
	}
	m := &CDF{
		root:   fitMonotone(xs, ys),
		leaves: make([]cdfLeaf, numLeaves),
		minV:   sorted[0],
		maxV:   sorted[n-1],
	}
	// Route every point through the root to its leaf, then fit leaves.
	start := 0
	assign := make([]int, n)
	for i, v := range sorted {
		assign[i] = m.leafFor(v)
	}
	// assign is non-decreasing because root is monotone and input sorted.
	prevHi := 0.0
	for leaf := 0; leaf < numLeaves; leaf++ {
		end := start
		for end < n && assign[end] == leaf {
			end++
		}
		if start == end {
			// Empty leaf: constant at the boundary CDF value.
			m.leaves[leaf] = cdfLeaf{model: linear{0, prevHi}, lo: prevHi, hi: prevHi}
			continue
		}
		lm := fitMonotone(xs[start:end], ys[start:end])
		// Clamp to [prevHi, hi]: the true CDF span this leaf is
		// responsible for. Monotone leaves with non-overlapping clamp
		// ranges keep the whole model monotone.
		hi := ys[end-1]
		m.leaves[leaf] = cdfLeaf{model: lm, lo: prevHi, hi: hi}
		prevHi = hi
		start = end
	}
	return m
}

func (m *CDF) leafFor(v int64) int {
	p := m.root.at(float64(v))
	// Clamp in the float domain before converting: a far-out-of-domain v
	// (e.g. an unbounded query endpoint) times the leaf count can exceed
	// the int64 range, and the overflowing conversion would saturate
	// *negative*, routing +Inf-like keys to leaf 0 and breaking the
	// model's monotonicity.
	pf := p * float64(len(m.leaves))
	if pf >= float64(len(m.leaves)-1) {
		return len(m.leaves) - 1
	}
	if pf <= 0 {
		return 0
	}
	return int(pf)
}

// At evaluates the model: an approximation of the fraction of points <= v,
// clamped to [0, 1] and monotone non-decreasing in v.
func (m *CDF) At(v int64) float64 {
	lf := m.leaves[m.leafFor(v)]
	p := lf.model.at(float64(v))
	if p < lf.lo {
		p = lf.lo
	}
	if p > lf.hi {
		p = lf.hi
	}
	return p
}

// Bucket maps v into one of n equi-CDF buckets: ⌊CDF(v)·n⌋ clamped to
// [0, n-1] (§5.1).
func (m *CDF) Bucket(v int64, n int) int {
	b := int(m.At(v) * float64(n))
	if b < 0 {
		b = 0
	}
	if b >= n {
		b = n - 1
	}
	return b
}

// SizeBytes reports the model footprint.
func (m *CDF) SizeBytes() int64 {
	return int64(16 + len(m.leaves)*32 + 16)
}

// NumLeaves returns the number of leaf models.
func (m *CDF) NumLeaves() int { return len(m.leaves) }
