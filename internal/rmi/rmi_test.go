package rmi

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func skewedValues(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		// Log-normal-ish skew.
		vals[i] = int64(math.Exp(rng.NormFloat64()*2+8)) + rng.Int63n(10)
	}
	return vals
}

func TestCDFMonotone(t *testing.T) {
	vals := skewedValues(5000, 1)
	m := TrainCDF(vals, 64)
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	prev := -1.0
	for _, v := range sorted {
		p := m.At(v)
		if p < prev {
			t.Fatalf("CDF not monotone: At(%d) = %f < %f", v, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("CDF out of range: At(%d) = %f", v, p)
		}
		prev = p
	}
	// Also monotone across arbitrary probes, including unseen values.
	prev = -1
	for v := sorted[0] - 10; v < sorted[len(sorted)-1]+10; v += (sorted[len(sorted)-1] - sorted[0]) / 500 {
		p := m.At(v)
		if p < prev {
			t.Fatalf("CDF not monotone at probe %d: %f < %f", v, p, prev)
		}
		prev = p
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []int64, probes []int64) bool {
		if len(raw) == 0 {
			return true
		}
		m := TrainCDF(raw, 8)
		sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })
		prev := -1.0
		for _, v := range probes {
			p := m.At(v)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFAccuracy(t *testing.T) {
	vals := skewedValues(20000, 2)
	m := TrainCDF(vals, 256)
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := float64(len(sorted))
	var maxErr float64
	for i, v := range sorted {
		trueCDF := float64(i+1) / n
		if e := math.Abs(m.At(v) - trueCDF); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.15 {
		t.Fatalf("CDF max error %.3f too large for 256 leaves on 20k points", maxErr)
	}
}

func TestCDFBucketBalance(t *testing.T) {
	// Flattening exists to even out bucket sizes on skewed data (§5.1).
	vals := skewedValues(30000, 3)
	m := TrainCDF(vals, 256)
	const nb = 16
	counts := make([]int, nb)
	for _, v := range vals {
		counts[m.Bucket(v, nb)]++
	}
	want := len(vals) / nb
	for b, c := range counts {
		if c > want*3 {
			t.Fatalf("bucket %d holds %d points, want <= %d (3x ideal)", b, c, want*3)
		}
	}
}

func TestCDFDegenerateInputs(t *testing.T) {
	m := TrainCDF(nil, 4)
	if p := m.At(42); p < 0 || p > 1 {
		t.Fatalf("empty-model At out of range: %f", p)
	}
	m = TrainCDF([]int64{7}, 4)
	if m.Bucket(7, 10) < 0 || m.Bucket(7, 10) > 9 {
		t.Fatal("single-value bucket out of range")
	}
	m = TrainCDF([]int64{5, 5, 5, 5}, 4)
	if b := m.Bucket(5, 8); b < 0 || b > 7 {
		t.Fatalf("constant-column bucket out of range: %d", b)
	}
	if m.At(4) > m.At(5) || m.At(5) > m.At(6) {
		t.Fatal("constant column not monotone around the value")
	}
}

func TestPositionLookupExact(t *testing.T) {
	for _, numLeaves := range []int{1, 8, 100} {
		vals := skewedValues(8000, 4)
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		idx := TrainPosition(vals, numLeaves)
		probes := append([]int64{vals[0] - 1, vals[len(vals)-1] + 1}, vals[:200]...)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 500; i++ {
			probes = append(probes, vals[rng.Intn(len(vals))]+rng.Int63n(7)-3)
		}
		for _, v := range probes {
			want := sort.Search(len(vals), func(i int) bool { return vals[i] >= v })
			if got := idx.Lookup(v); got != want {
				t.Fatalf("leaves=%d: Lookup(%d) = %d, want %d", numLeaves, v, got, want)
			}
		}
	}
}

func TestPositionLookupProperty(t *testing.T) {
	f := func(raw []int64, probes []int64) bool {
		sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
		idx := TrainPosition(raw, 4)
		for _, v := range probes {
			want := sort.Search(len(raw), func(i int) bool { return raw[i] >= v })
			if idx.Lookup(v) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPositionEmptyAndDuplicates(t *testing.T) {
	idx := TrainPosition(nil, 4)
	if idx.Lookup(5) != 0 {
		t.Fatal("empty index Lookup != 0")
	}
	dup := []int64{3, 3, 3, 3, 3, 3, 7, 7, 7}
	idx = TrainPosition(dup, 3)
	if idx.Lookup(3) != 0 || idx.Lookup(4) != 6 || idx.Lookup(7) != 6 || idx.Lookup(8) != 9 {
		t.Fatalf("duplicate lookups wrong: %d %d %d %d",
			idx.Lookup(3), idx.Lookup(4), idx.Lookup(7), idx.Lookup(8))
	}
}

func TestSizeBytesPositive(t *testing.T) {
	vals := skewedValues(1000, 6)
	if TrainCDF(vals, 16).SizeBytes() <= 0 {
		t.Fatal("CDF SizeBytes must be positive")
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if TrainPosition(vals, 16).SizeBytes() <= 0 {
		t.Fatal("PositionIndex SizeBytes must be positive")
	}
}

func BenchmarkCDFAt(b *testing.B) {
	vals := skewedValues(100000, 7)
	m := TrainCDF(vals, 256)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.At(vals[i%len(vals)])
	}
	_ = sink
}

func BenchmarkPositionLookup(b *testing.B) {
	vals := skewedValues(100000, 8)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	idx := TrainPosition(vals, 316)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += idx.Lookup(vals[i%len(vals)])
	}
	_ = sink
}

// TestCDFBucketMonotoneAtExtremes is the regression test for the leafFor
// overflow: on a tiny-domain column (dictionary codes), an unbounded query
// endpoint's leaf position exceeds int64 in the float domain, and the
// overflowing conversion used to saturate negative — routing +Inf-like keys
// to leaf 0 and collapsing Bucket far below in-domain keys.
func TestCDFBucketMonotoneAtExtremes(t *testing.T) {
	vals := make([]int64, 4000)
	for i := range vals {
		vals[i] = int64(i % 5) // dictionary-like domain {0..4}
	}
	m := TrainCDF(vals, 64)
	const cols = 5
	last := m.Bucket(math.MinInt64, cols)
	probes := []int64{math.MinInt64, -1, 0, 1, 2, 3, 4, 5, 1 << 40, math.MaxInt64}
	for _, v := range probes {
		b := m.Bucket(v, cols)
		if b < last {
			t.Fatalf("Bucket not monotone: Bucket(%d)=%d after %d", v, b, last)
		}
		last = b
	}
	if got := m.Bucket(math.MaxInt64, cols); got != cols-1 {
		t.Fatalf("Bucket(MaxInt64) = %d, want %d", got, cols-1)
	}
}
