package server

import "sync"

// resultCache memoizes aggregate results for hot query shapes, keyed by the
// statement's SQL text and guarded by an epoch version: an entry is served
// only while the version it was computed under is still current. The server
// bumps its version on every acknowledged mutation (insert, delete, update)
// and folds in the adaptive index's generation counter, so a relearn or
// merge swap also invalidates every entry. Invalidation is lazy — a stale
// entry is dropped when a lookup finds it — so mutations stay O(1).
//
// The version an entry is stored under is captured BEFORE its query
// executes. A mutation landing during execution therefore bumps the live
// version past the entry's, and the (possibly half-updated) result is never
// served from cache; it is returned once, to the client that ran it, which
// matches the non-cached consistency contract.
type resultCache struct {
	mu  sync.Mutex
	max int
	m   map[string]cacheEntry
}

// cacheEntry is one memoized aggregate result in the physical int64 domain;
// matched carries the row count the aggregate saw, which typed decoding
// needs to distinguish an empty MIN/MAX from a legitimate extreme value.
type cacheEntry struct {
	ver     uint64
	value   int64
	matched int64
}

// newResultCache sizes a cache; max <= 0 disables caching (nil cache).
func newResultCache(max int) *resultCache {
	if max <= 0 {
		return nil
	}
	return &resultCache{max: max, m: make(map[string]cacheEntry, max)}
}

// get returns the entry for key if it was computed under the current
// version; a stale entry is evicted on the way out.
func (c *resultCache) get(key string, ver uint64) (cacheEntry, bool) {
	if c == nil {
		return cacheEntry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return cacheEntry{}, false
	}
	if e.ver != ver {
		delete(c.m, key)
		return cacheEntry{}, false
	}
	return e, true
}

// put stores an entry, evicting an arbitrary existing entry when the cache
// is full (hot keys re-enter immediately, so precise LRU buys little for a
// cache whose entries are invalidated wholesale by every mutation). An
// existing entry with a newer version is kept.
func (c *resultCache) put(key string, e cacheEntry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.m[key]; ok && old.ver > e.ver {
		return
	}
	if _, ok := c.m[key]; !ok && len(c.m) >= c.max {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[key] = e
}

// len reports the current entry count (tests).
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
