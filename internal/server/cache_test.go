package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestResultCacheBasics(t *testing.T) {
	c := newResultCache(2)
	c.put("a", cacheEntry{ver: 1, value: 10, matched: 3})
	if e, ok := c.get("a", 1); !ok || e.value != 10 || e.matched != 3 {
		t.Fatalf("get(a,1) = %+v %v", e, ok)
	}
	// A version bump makes the entry invisible and evicts it.
	if _, ok := c.get("a", 2); ok {
		t.Fatal("stale entry served across version bump")
	}
	if c.len() != 0 {
		t.Fatalf("stale entry not lazily evicted; len = %d", c.len())
	}
	// Capacity bound: inserting past max evicts, never grows.
	c.put("a", cacheEntry{ver: 2})
	c.put("b", cacheEntry{ver: 2})
	c.put("c", cacheEntry{ver: 2})
	if c.len() != 2 {
		t.Fatalf("cache grew past max: len = %d", c.len())
	}
	// A newer-version entry is not clobbered by a slow writer's older one.
	c.put("k", cacheEntry{ver: 9, value: 99})
	c.put("k", cacheEntry{ver: 5, value: 55})
	if e, ok := c.get("k", 9); !ok || e.value != 99 {
		t.Fatalf("older write clobbered newer entry: %+v %v", e, ok)
	}
	// nil cache (disabled) is inert.
	var nilCache *resultCache
	nilCache.put("x", cacheEntry{})
	if _, ok := nilCache.get("x", 0); ok || nilCache.len() != 0 {
		t.Fatal("nil cache not inert")
	}
}

// TestServerCacheNeverStale is the satellite property test: across a random
// interleaving of queries, inserts, deletes, updates, and forced relearns,
// a cached response is NEVER served across an epoch bump — every response
// (cached or not) must equal a fresh count computed directly against the
// index at that moment.
func TestServerCacheNeverStale(t *testing.T) {
	srv, hs, _ := typedFixture(t, &Config{BatchWindow: 1})
	rng := rand.New(rand.NewSource(331))
	url := hs.URL

	sqls := []string{
		"SELECT COUNT(*) FROM t WHERE city = 'boston'",
		"SELECT COUNT(*) FROM t WHERE dist < 100",
		"SELECT COUNT(*) FROM t",
	}
	fresh := func(sql string) int64 {
		st, err := srv.parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		agg := aggregatorFor(st)
		if _, err := srv.a.ExecuteOrContext(srv.baseCtx, srv.statementQueries(st), agg); err != nil {
			t.Fatal(err)
		}
		return agg.Result()
	}
	hits := 0
	for i := 0; i < 300; i++ {
		switch op := rng.Intn(10); {
		case op < 6: // query, twice so the second can hit the cache
			sql := sqls[rng.Intn(len(sqls))]
			want := fresh(sql)
			for j := 0; j < 2; j++ {
				r, code := postQuery(t, url, sql)
				if code != http.StatusOK {
					t.Fatalf("op %d: status %d", i, code)
				}
				if r.Value != want {
					t.Fatalf("op %d: %q = %d (cached=%v), index says %d — stale cache served",
						i, sql, r.Value, r.Cached, want)
				}
				if r.Cached {
					hits++
				}
			}
		case op < 7:
			postQuery(t, url, fmt.Sprintf("INSERT INTO t VALUES ('boston', 1.25, %d)", rng.Intn(300)))
		case op < 8:
			postQuery(t, url, fmt.Sprintf("DELETE FROM t WHERE dist = %d", rng.Intn(300)))
		case op < 9:
			postQuery(t, url, fmt.Sprintf("UPDATE t SET dist = %d WHERE dist = %d", rng.Intn(300), rng.Intn(300)))
		default: // relearn: the epoch fold must invalidate without a mutation
			if srv.a.TriggerRelearn() {
				srv.a.Wait()
			}
		}
	}
	if hits == 0 {
		t.Fatal("property test never exercised a cache hit")
	}
	if srv.Stats().CacheHits == 0 {
		t.Fatal("server counted no cache hits")
	}
}

// TestServerConcurrentCacheMutateRelearn is the satellite -race test:
// concurrent clients reading through the cache while writers mutate and a
// third goroutine forces relearns. Correctness here is "no race, no error,
// and every response is internally consistent"; staleness is covered by
// the sequential property test above.
func TestServerConcurrentCacheMutateRelearn(t *testing.T) {
	srv, hs, _ := typedFixture(t, &Config{BatchWindow: 1})
	url := hs.URL
	var wg sync.WaitGroup
	var failures atomic.Int64

	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + c)))
			for i := 0; i < 60; i++ {
				sql := fmt.Sprintf("SELECT COUNT(*) FROM t WHERE dist < %d", rng.Intn(300))
				if _, code := postQuery(t, url, sql); code != http.StatusOK {
					failures.Add(1)
				}
			}
		}(c)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + w)))
			for i := 0; i < 30; i++ {
				var sql string
				if rng.Intn(2) == 0 {
					sql = fmt.Sprintf("INSERT INTO t VALUES ('nyc', 1.25, %d)", rng.Intn(300))
				} else {
					sql = fmt.Sprintf("DELETE FROM t WHERE dist = %d", rng.Intn(300))
				}
				if _, code := postQuery(t, url, sql); code != http.StatusOK {
					failures.Add(1)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				srv.a.TriggerRelearn()
			}
		}
	}()
	// Wait for readers/writers by polling the request counter, then stop
	// the relearn loop and join everything.
	for srv.requests.Load() < 4*60+2*30 {
		time.Sleep(5 * time.Millisecond)
	}
	close(done)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed under concurrency", failures.Load())
	}
	srv.a.Wait()
}
