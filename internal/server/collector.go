package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	flood "flood"
)

// errOverloaded reports that the collector's intake queue is full; the
// admission layer maps it to a shed (429) response.
var errOverloaded = errors.New("server: batch collector overloaded")

// batchExecutor is the slice of the index surface the collector drives:
// AdaptiveIndex (and anything wrapping it) satisfies it.
type batchExecutor interface {
	ExecuteBatchContext(ctx context.Context, queries []flood.Query, aggs []flood.Aggregator) ([]flood.Stats, error)
}

// aggJob is one aggregate query waiting to ride a batch. done is buffered so
// the executing goroutine never blocks on a handler that gave up waiting.
type aggJob struct {
	q        flood.Query
	agg      flood.Aggregator
	deadline time.Time // zero = none
	done     chan aggResult
}

// aggResult is the outcome delivered back to the submitting handler.
type aggResult struct {
	stats     flood.Stats
	err       error
	batchSize int
}

// collector is the micro-batching heart of the server: concurrent handlers
// submit single-rectangle aggregate queries, a gather loop groups them —
// waiting up to window for stragglers or until max queries accumulate — and
// each group executes as one ExecuteBatchContext call, which fans the batch
// out across the worker pool (inter-query parallelism) while each member
// runs its zero-allocation sequential scan. Under load this converts N
// concurrent HTTP requests into N/batch calls into the index, which is the
// paper's intended serving arrangement for high QPS.
//
// Deadlines: members whose per-request deadline already passed when the
// batch fires are answered ErrCanceled without scanning; the batch itself
// runs under the EARLIEST remaining member deadline, so one batch never
// outlives the strictest member (fate sharing — with the server's uniform
// request timeout, members differ by at most the gather window).
type collector struct {
	jobs     chan *aggJob
	window   time.Duration
	max      int
	idx      batchExecutor
	base     context.Context
	execs    sync.WaitGroup
	loopDone chan struct{}

	batches      atomic.Int64
	batchedJobs  atomic.Int64
	multiBatches atomic.Int64
	maxBatch     atomic.Int64
}

// newCollector starts the gather loop. base bounds every batch execution;
// cancel it only after close() returns.
func newCollector(idx batchExecutor, window time.Duration, max int, base context.Context) *collector {
	c := &collector{
		jobs:     make(chan *aggJob, 4*max),
		window:   window,
		max:      max,
		idx:      idx,
		base:     base,
		loopDone: make(chan struct{}),
	}
	go c.run()
	return c
}

// submit enqueues a job for the next batch; errOverloaded when the intake
// queue is full (the caller sheds rather than queueing unboundedly).
func (c *collector) submit(j *aggJob) error {
	select {
	case c.jobs <- j:
		return nil
	default:
		return errOverloaded
	}
}

// close flushes: no submits may follow. The gather loop drains every queued
// job into final batches, and close returns once all executions finished.
func (c *collector) close() {
	close(c.jobs)
	<-c.loopDone
	c.execs.Wait()
}

// run is the gather loop: take one job, collect more for up to window (or
// until the batch fills), then hand the batch to a fresh goroutine so
// gathering of the next batch overlaps execution of this one.
func (c *collector) run() {
	defer close(c.loopDone)
	for {
		j, ok := <-c.jobs
		if !ok {
			return
		}
		batch := make([]*aggJob, 1, c.max)
		batch[0] = j
		timer := time.NewTimer(c.window)
	gather:
		for len(batch) < c.max {
			select {
			case j2, ok := <-c.jobs:
				if !ok {
					break gather
				}
				batch = append(batch, j2)
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		c.execs.Add(1)
		go c.execute(batch)
	}
}

// execute runs one gathered batch through ExecuteBatchContext and delivers
// per-member results.
func (c *collector) execute(batch []*aggJob) {
	defer c.execs.Done()
	now := time.Now()
	live := batch[:0]
	var earliest time.Time
	for _, j := range batch {
		if !j.deadline.IsZero() && now.After(j.deadline) {
			j.done <- aggResult{err: flood.ErrCanceled}
			continue
		}
		live = append(live, j)
		if !j.deadline.IsZero() && (earliest.IsZero() || j.deadline.Before(earliest)) {
			earliest = j.deadline
		}
	}
	if len(live) == 0 {
		return
	}
	ctx := c.base
	if !earliest.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(c.base, earliest)
		defer cancel()
	}
	queries := make([]flood.Query, len(live))
	aggs := make([]flood.Aggregator, len(live))
	for i, j := range live {
		queries[i] = j.q
		aggs[i] = j.agg
	}
	stats, err := c.idx.ExecuteBatchContext(ctx, queries, aggs)

	c.batches.Add(1)
	c.batchedJobs.Add(int64(len(live)))
	if len(live) > 1 {
		c.multiBatches.Add(1)
	}
	for {
		cur := c.maxBatch.Load()
		if int64(len(live)) <= cur || c.maxBatch.CompareAndSwap(cur, int64(len(live))) {
			break
		}
	}
	for i, j := range live {
		j.done <- aggResult{stats: stats[i], err: err, batchSize: len(live)}
	}
}
